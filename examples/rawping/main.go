// Rawping demonstrates §4.1.1 on a Protego machine: any user can open a
// raw socket (no setuid ping needed — you can even write your own), but
// the netfilter raw-socket rules confine what leaves the machine: benign
// ICMP passes, fabricated TCP and spoofed-source packets are dropped.
package main

import (
	"fmt"
	"log"

	"protego/internal/netstack"
	"protego/internal/userspace"
	"protego/internal/world"
)

func main() {
	m, err := world.BuildProtego()
	if err != nil {
		log.Fatal(err)
	}
	alice, err := m.Session("alice")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- the stock ping utility, unprivileged ---")
	code, out, errOut, _ := m.Run(alice, []string{userspace.BinPing, "-c", "2", "10.0.0.2"}, nil)
	fmt.Printf("exit %d\n%s%s\n", code, out, errOut)

	fmt.Println("--- a user-written 'enhanced ping': raw sockets straight from the API ---")
	sock, err := m.K.Socket(alice, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP)
	if err != nil {
		log.Fatalf("raw socket: %v", err)
	}
	fmt.Printf("raw socket created by uid %d (tagged unprivileged-raw: %v)\n", alice.UID(), sock.UnprivRaw)
	echo := &netstack.Packet{
		Dst: m.K.Net.HostIP(), Proto: netstack.IPPROTO_ICMP,
		ICMPType: netstack.ICMPEchoRequest, Payload: []byte("custom probe"),
	}
	if err := m.K.SendTo(alice, sock, echo); err != nil {
		log.Fatalf("send echo: %v", err)
	}
	reply, err := m.K.RecvFrom(alice, sock, 0x5F5E100) // 100ms
	if err != nil {
		log.Fatalf("no reply: %v", err)
	}
	fmt.Printf("echo reply from %s: %q\n\n", reply.Src, reply.Payload)

	fmt.Println("--- but unsafe raw traffic is filtered on the way out ---")
	forged := &netstack.Packet{
		Dst: netstack.IPv4(10, 0, 0, 9), Proto: netstack.IPPROTO_TCP,
		SrcPort: 25, DstPort: 6667, Payload: []byte("forged TCP"),
	}
	err = m.K.SendTo(alice, sock, forged)
	fmt.Printf("fabricated raw TCP packet -> %v\n", err)

	fmt.Println("\n--- the rules doing the filtering (iptables -S as root) ---")
	root, _ := m.Session("root")
	_, out, _, _ = m.Run(root, []string{userspace.BinIptables, "-S"}, nil)
	fmt.Print(out)

	fmt.Printf("\npackets sent: %d, dropped by policy: %d\n", m.K.Net.SentPackets(), m.K.Net.DroppedPackets())
}
