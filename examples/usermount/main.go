// Usermount walks the complete Figure 1 story on both systems: the same
// mount requests against baseline Linux (trusted setuid /bin/mount
// enforcing /etc/fstab in userspace) and Protego (policy in the kernel),
// including denial cases, the user/users unmount distinction, and a live
// policy update through the monitoring daemon.
package main

import (
	"fmt"
	"log"
	"time"

	"protego/internal/kernel"
	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

func main() {
	for _, mode := range []kernel.Mode{kernel.ModeLinux, kernel.ModeProtego} {
		fmt.Printf("===== %s =====\n", mode)
		m, err := world.Build(world.Options{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		alice, _ := m.Session("alice")
		bob, _ := m.Session("bob")

		show := func(label string, code int, out, errOut string) {
			fmt.Printf("  %-46s -> exit %d %s", label, code, firstNonEmpty(out, errOut, "\n"))
		}

		code, out, errOut, _ := m.Run(alice, []string{userspace.BinMount, "/dev/cdrom", "/cdrom"}, nil)
		show("alice mounts whitelisted cdrom ('user')", code, out, errOut)

		code, out, errOut, _ = m.Run(bob, []string{userspace.BinUmount, "/cdrom"}, nil)
		show("bob tries to unmount alice's mount", code, out, errOut)

		code, out, errOut, _ = m.Run(alice, []string{userspace.BinUmount, "/cdrom"}, nil)
		show("alice unmounts her own mount", code, out, errOut)

		code, out, errOut, _ = m.Run(alice, []string{userspace.BinMount, "/dev/sdb1", "/media/usb"}, nil)
		show("alice mounts usb stick ('users')", code, out, errOut)

		code, out, errOut, _ = m.Run(bob, []string{userspace.BinUmount, "/media/usb"}, nil)
		show("bob unmounts the 'users' mount", code, out, errOut)

		code, out, errOut, _ = m.Run(alice, []string{userspace.BinMount, "-o", "suid", "/dev/cdrom", "/cdrom"}, nil)
		show("alice requests unsafe 'suid' option", code, out, errOut)

		code, out, errOut, _ = m.Run(alice, []string{userspace.BinMount, "/dev/sdc1", "/mnt/backup"}, nil)
		show("alice mounts non-whitelisted disk", code, out, errOut)

		if mode == kernel.ModeProtego {
			// Live policy update: the administrator edits fstab; the
			// monitoring daemon pushes the change into the kernel.
			fmt.Println("  [admin] whitelists /mnt/backup in /etc/fstab; protegod syncs it")
			stop := make(chan struct{})
			m.Monitor.Start(stop)
			baseline := m.Monitor.SyncCount("mounts")
			fstab, _ := m.K.FS.ReadFile(vfs.RootCred, "/etc/fstab")
			newFstab := string(fstab) + "/dev/sdc1 /mnt/backup ext4 rw,user 0 0\n"
			if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/fstab", []byte(newFstab), 0o644, 0, 0); err != nil {
				log.Fatal(err)
			}
			for m.Monitor.SyncCount("mounts") <= baseline {
				time.Sleep(time.Millisecond)
			}
			close(stop)
			code, out, errOut, _ = m.Run(alice, []string{userspace.BinMount, "/dev/sdc1", "/mnt/backup"}, nil)
			show("alice mounts the newly whitelisted disk", code, out, errOut)
		}
		fmt.Println()
	}
}

func firstNonEmpty(a, b, fallback string) string {
	if a != "" {
		return a
	}
	if b != "" {
		return b
	}
	return fallback
}
