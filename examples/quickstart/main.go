// Quickstart: boot a Protego machine and watch an unprivileged user mount
// a CD-ROM — the paper's opening example — with no setuid binary anywhere
// on the call path.
package main

import (
	"fmt"
	"log"

	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

func main() {
	// Build the Protego machine: simulated kernel, Protego LSM, trusted
	// monitoring daemon (already synchronized from /etc/fstab,
	// /etc/sudoers, /etc/bind), and the deprivileged utilities.
	m, err := world.BuildProtego()
	if err != nil {
		log.Fatal(err)
	}

	// Log in as an ordinary user.
	alice, err := m.Session("alice")
	if err != nil {
		log.Fatal(err)
	}

	// /bin/mount carries no setuid bit on Protego:
	ino, _ := m.K.FS.Lookup(vfs.RootCred, userspace.BinMount)
	fmt.Printf("/bin/mount mode: %s (setuid: %v)\n", ino.Mode, ino.Mode.IsSetuid())

	// ...and yet alice can mount the whitelisted CD-ROM, because the
	// kernel's LSM checks her mount(2) against the /etc/fstab-derived
	// whitelist (Figure 1).
	code, out, errOut, _ := m.Run(alice, []string{userspace.BinMount, "/dev/cdrom", "/cdrom"}, nil)
	fmt.Printf("alice: mount /dev/cdrom /cdrom -> exit %d\n%s%s", code, out, errOut)

	// Anything off the whitelist is refused by the kernel, not by
	// trusted userspace code.
	code, _, errOut, _ = m.Run(alice, []string{userspace.BinMount, "/dev/sdc1", "/mnt/backup"}, nil)
	fmt.Printf("alice: mount /dev/sdc1 /mnt/backup -> exit %d\n%s", code, errOut)

	// The kernel policy is inspectable under /proc.
	status, _ := m.K.FS.ReadFile(vfs.RootCred, "/proc/protego/status")
	fmt.Printf("\n/proc/protego/status:\n%s", status)
}
