// Passwdless demonstrates §4.4 on a Protego machine: the shared credential
// databases are fragmented into per-account files matching DAC
// granularity, so passwd and chsh run without privilege; the monitoring
// daemon keeps the legacy /etc/passwd and /etc/shadow synchronized for
// applications that still read them; and users cannot touch each other's
// records — or even read their own shadow hash without reauthenticating.
package main

import (
	"fmt"
	"log"
	"strings"

	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

func main() {
	m, err := world.BuildProtego()
	if err != nil {
		log.Fatal(err)
	}
	alice, _ := m.Session("alice")
	bob, _ := m.Session("bob")

	fmt.Println("--- the fragmented database ---")
	names, _ := m.K.FS.ReadDir(vfs.RootCred, "/etc/passwds")
	fmt.Printf("/etc/passwds: %s\n", strings.Join(names, " "))
	ino, _ := m.K.FS.Lookup(vfs.RootCred, "/etc/passwds/alice")
	fmt.Printf("/etc/passwds/alice: %s uid=%d (owned by alice herself)\n\n", ino.Mode, ino.UID)

	fmt.Println("--- alice changes her shell, unprivileged ---")
	code, out, errOut, _ := m.Run(alice, []string{userspace.BinChsh, "-s", "/bin/zsh"},
		world.AnswerWith(world.AlicePassword))
	fmt.Printf("chsh -> exit %d %s%s", code, out, errOut)

	// The daemon regenerates the legacy file for old consumers.
	if err := m.Monitor.SyncAccountsFromFragments(); err != nil {
		log.Fatal(err)
	}
	legacy, _ := m.K.FS.ReadFile(vfs.RootCred, "/etc/passwd")
	for _, line := range strings.Split(string(legacy), "\n") {
		if strings.HasPrefix(line, "alice:") {
			fmt.Printf("legacy /etc/passwd now says: %s\n\n", line)
		}
	}

	fmt.Println("--- alice changes her password; the kernel demands reauthentication ---")
	asker := func(prompt string) string {
		fmt.Printf("  prompt: %s\n", prompt)
		if strings.Contains(prompt, "New password") {
			return "correct-horse-battery"
		}
		return world.AlicePassword
	}
	code, out, errOut, _ = m.Run(alice, []string{userspace.BinPasswd}, asker)
	fmt.Printf("passwd -> exit %d %s%s\n", code, out, errOut)

	fmt.Println("--- isolation: bob cannot touch alice's records ---")
	if _, err := m.K.ReadFile(bob, "/etc/passwds/alice"); err != nil {
		fmt.Printf("bob reads  /etc/passwds/alice -> %v\n", err)
	}
	if _, err := m.K.ReadFile(bob, "/etc/shadows/alice"); err != nil {
		fmt.Printf("bob reads  /etc/shadows/alice -> %v\n", err)
	}
	if err := m.K.WriteFile(bob, "/etc/passwds/eve", []byte("eve:x:0:0::/:/bin/sh\n")); err != nil {
		fmt.Printf("bob forges /etc/passwds/eve   -> %v\n", err)
	}

	fmt.Println("\n--- and the new password is live at login ---")
	root, _ := m.Session("root")
	_ = m.Monitor.SyncAccountsFromFragments()
	code, out, _, _ = m.Run(root, []string{userspace.BinLogin, "alice"}, world.AnswerWith("correct-horse-battery"))
	fmt.Printf("login alice (new password) -> exit %d %s", code, out)
	code, _, errOut, _ = m.Run(root, []string{userspace.BinLogin, "alice"}, world.AnswerWith(world.AlicePassword))
	fmt.Printf("login alice (old password) -> exit %d %s", code, errOut)
}
