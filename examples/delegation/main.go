// Delegation demonstrates §4.3 on a Protego machine: sudo-to-root with
// kernel-enforced sudoers rules and authentication recency, the deferred
// setuid-on-exec mechanism for command-restricted rules, lateral
// user-to-user delegation, su with target-password authorization, and
// newgrp with password-protected groups — all without a single setuid
// binary.
package main

import (
	"fmt"
	"log"

	"protego/internal/userspace"
	"protego/internal/world"
)

func main() {
	m, err := world.BuildProtego()
	if err != nil {
		log.Fatal(err)
	}

	run := func(user string, password string, argv ...string) {
		sess, err := m.Session(user)
		if err != nil {
			log.Fatal(err)
		}
		var asker func(string) string
		if password != "" {
			asker = world.AnswerWith(password)
		}
		code, out, errOut, _ := m.Run(sess, argv, asker)
		fmt.Printf("$ %s (as %s) -> exit %d\n%s%s\n", argv[0], user, code, out, errOut)
	}

	fmt.Println("--- sudo to root: 'alice ALL = (root) ALL', password required ---")
	run("alice", world.AlicePassword, userspace.BinSudo, "/usr/bin/id")

	fmt.Println("--- the same with the wrong password ---")
	run("alice", "wrong-password", userspace.BinSudo, "/usr/bin/id")

	fmt.Println("--- NOPASSWD, command-restricted: '%wheel = NOPASSWD: /bin/ls' ---")
	fmt.Println("    charlie may run ls... (setuid defers, exec validates /bin/ls)")
	run("charlie", "", userspace.BinSudo, "/bin/ls", "/tmp")
	fmt.Println("    ...but nothing else (EPERM at exec time, §4.3)")
	run("charlie", "", userspace.BinSudo, "/usr/bin/id")

	fmt.Println("--- lateral delegation: bob prints with alice's credentials ---")
	bob, _ := m.Session("bob")
	if err := m.K.WriteFile(bob, "/tmp/report.txt", []byte("quarterly report")); err != nil {
		log.Fatal(err)
	}
	run("bob", world.BobPassword, userspace.BinSudo, "-u", "alice", userspace.BinLpr, "/tmp/report.txt")

	fmt.Println("--- su: the target's password is the authorization ---")
	run("charlie", world.RootPassword, userspace.BinSu, "root", "-c", "/usr/bin/id")

	fmt.Println("--- newgrp: password-protected group 'ops' ---")
	run("charlie", world.OpsGroupPassword, userspace.BinNewgrp, "ops")

	fmt.Println("--- kernel view of what just happened ---")
	for _, line := range m.K.AuditLog() {
		fmt.Println("audit:", line)
	}
	fmt.Printf("LSM stats: grants=%d defers=%d denials=%d\n",
		m.Protego.Stats.SetuidGrants.Load(), m.Protego.Stats.SetuidDefers.Load(), m.Protego.Stats.SetuidDenials.Load())
}
