// Command protegod demonstrates the trusted monitoring daemon of Figure 1:
// it boots a Protego machine, starts the daemon, then edits the legacy
// configuration files (/etc/fstab, /etc/sudoers.d, /etc/bind) and shows the
// in-kernel policy updating in response — the live policy-synchronization
// loop that keeps Protego backward compatible with legacy configuration.
package main

import (
	"fmt"
	"os"
	"time"

	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

func main() {
	m, err := world.BuildProtego()
	if err != nil {
		fmt.Fprintf(os.Stderr, "protegod: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("protegod: machine booted, initial policy synchronized")
	showPolicy(m, "boot")

	stop := make(chan struct{})
	m.Monitor.Start(stop)
	defer close(stop)

	// The administrator whitelists a new user mount by editing fstab —
	// no kernel interaction, no setuid binary.
	fmt.Println("\nprotegod: appending '/dev/sdc1 /mnt/backup ext4 rw,user' to /etc/fstab ...")
	baseline := m.Monitor.SyncCount("mounts")
	appendLine(m, "/etc/fstab", "/dev/sdc1 /mnt/backup ext4 rw,user 0 0")
	waitSync(m, "mounts", baseline)
	showPolicy(m, "after fstab edit")

	// And the change is live: alice can now mount the backup disk.
	alice, err := m.Session("alice")
	if err != nil {
		fmt.Fprintf(os.Stderr, "protegod: %v\n", err)
		os.Exit(1)
	}
	code, out, errOut, _ := m.Run(alice, []string{userspace.BinMount, "/dev/sdc1", "/mnt/backup"}, nil)
	fmt.Printf("protegod: alice mounts /mnt/backup -> exit %d %s%s", code, out, errOut)

	// A new delegation rule takes effect the same way.
	fmt.Println("\nprotegod: granting charlie NOPASSWD lpr-as-alice via /etc/sudoers.d/extra ...")
	baseline = m.Monitor.SyncCount("delegation")
	writeFile(m, "/etc/sudoers.d/extra", "charlie ALL = (alice) NOPASSWD: /usr/bin/lpr\n")
	waitSync(m, "delegation", baseline)
	charlie, _ := m.Session("charlie")
	writeFile(m, "/tmp/memo.txt", "hello")
	code, out, errOut, _ = m.Run(charlie, []string{userspace.BinSudo, "-u", "alice", userspace.BinLpr, "/tmp/memo.txt"}, nil)
	fmt.Printf("protegod: charlie prints as alice -> exit %d %s%s", code, out, errOut)

	fmt.Println("\nprotegod: final kernel policy state:")
	showPolicy(m, "final")
}

func appendLine(m *world.Machine, path, line string) {
	data, err := m.K.FS.ReadFile(vfs.RootCred, path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "protegod: %v\n", err)
		os.Exit(1)
	}
	writeFile(m, path, string(data)+line+"\n")
}

func writeFile(m *world.Machine, path, content string) {
	if err := m.K.FS.WriteFile(vfs.RootCred, path, []byte(content), 0o644, 0, 0); err != nil {
		fmt.Fprintf(os.Stderr, "protegod: write %s: %v\n", path, err)
		os.Exit(1)
	}
}

func waitSync(m *world.Machine, target string, baseline int) {
	deadline := time.Now().Add(2 * time.Second)
	for m.Monitor.SyncCount(target) <= baseline {
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "protegod: %s sync did not happen\n", target)
			os.Exit(1)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func showPolicy(m *world.Machine, label string) {
	data, err := m.K.FS.ReadFile(vfs.RootCred, "/proc/protego/status")
	if err != nil {
		return
	}
	fmt.Printf("--- /proc/protego/status (%s) ---\n%s", label, data)
}
