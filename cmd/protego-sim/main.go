// Command protego-sim is a scripted shell over the simulated machine. It
// boots a baseline-Linux or Protego image and executes simple commands
// from stdin (or -c), so the two systems can be explored interactively:
//
//	$ protego-sim -mode protego
//	> passwd-for alice alicepw        # answer future prompts for alice
//	> as alice /bin/mount /dev/cdrom /cdrom
//	/dev/cdrom mounted on /cdrom
//	> mounts
//	> as alice /usr/bin/sudo /usr/bin/id
//	> status                          # cat /proc/protego/status
//	> audit
//
// Commands:
//
//	as <user> <binary> [args...]   run a binary as a user
//	passwd-for <user> <password>   set the prompt answer for a user
//	mounts | routes | audit        inspect kernel state
//	status                         read /proc/protego/status
//	cat <path>                     read a file as root
//	help | exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"protego/internal/kernel"
	"protego/internal/vfs"
	"protego/internal/world"
)

func main() {
	modeName := flag.String("mode", "protego", "machine mode: linux or protego")
	script := flag.String("c", "", "run semicolon-separated commands and exit")
	flag.Parse()

	mode := kernel.ModeProtego
	if *modeName == "linux" {
		mode = kernel.ModeLinux
	}
	m, err := world.Build(world.Options{Mode: mode})
	if err != nil {
		fmt.Fprintf(os.Stderr, "protego-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("booted %s machine (host %s)\n", mode, m.K.Net.HostIP())

	passwords := map[string]string{}
	runLine := func(line string) {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return
		}
		switch fields[0] {
		case "help":
			fmt.Println("commands: as, passwd-for, mounts, routes, audit, status, cat, exit")
		case "exit", "quit":
			os.Exit(0)
		case "passwd-for":
			if len(fields) != 3 {
				fmt.Println("usage: passwd-for <user> <password>")
				return
			}
			passwords[fields[1]] = fields[2]
		case "as":
			if len(fields) < 3 {
				fmt.Println("usage: as <user> <binary> [args...]")
				return
			}
			sess, err := m.Session(fields[1])
			if err != nil {
				fmt.Printf("no such user %q\n", fields[1])
				return
			}
			asker := func(string) string { return passwords[fields[1]] }
			code, out, errOut, _ := m.Run(sess, fields[2:], asker)
			fmt.Print(out)
			if errOut != "" {
				fmt.Print(errOut)
			}
			if code != 0 {
				fmt.Printf("(exit %d)\n", code)
			}
		case "mounts":
			fmt.Print(m.K.FS.FormatMtab())
		case "routes":
			for _, r := range m.K.Net.Routes() {
				fmt.Println(r)
			}
		case "audit":
			for _, line := range m.K.AuditLog() {
				fmt.Println(line)
			}
		case "status":
			data, err := m.K.FS.ReadFile(vfs.RootCred, "/proc/protego/status")
			if err != nil {
				fmt.Printf("no status: %v (linux mode?)\n", err)
				return
			}
			fmt.Print(string(data))
		case "cat":
			if len(fields) != 2 {
				fmt.Println("usage: cat <path>")
				return
			}
			// Read through the kernel's syscall path (not the raw VFS) so
			// synthetic files like /proc/trace work and the read itself
			// shows up in the trace.
			root, err := m.Session("root")
			if err != nil {
				fmt.Printf("cat: %v\n", err)
				return
			}
			data, err := m.K.ReadFile(root, fields[1])
			if err != nil {
				fmt.Printf("cat: %v\n", err)
				return
			}
			fmt.Print(string(data))
		default:
			fmt.Printf("unknown command %q (try help)\n", fields[0])
		}
	}

	if *script != "" {
		for _, line := range strings.Split(*script, ";") {
			runLine(strings.TrimSpace(line))
		}
		return
	}
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		runLine(scanner.Text())
		fmt.Print("> ")
	}
}
