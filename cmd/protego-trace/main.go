// Command protego-trace boots a simulated machine, drives a short
// quickstart-style workload through it (mounts on and off the fstab
// whitelist, ping, sudo with a right and a wrong password, a monitord
// resync), and then prints what the kernel tracer saw: the most recent
// events, per-syscall and per-LSM-hook latency histograms, and the
// per-(hook, module, decision) counters.
//
//	protego-trace                  trace a Protego machine
//	protego-trace -mode linux      trace the setuid baseline
//	protego-trace -events 40       show more of the event tail
//	protego-trace -no-workload     boot only; trace just the boot syscalls
//
// The aggregate view is read from /proc/trace/stats *inside* the
// simulation, the same way a user on the machine would read it.
package main

import (
	"flag"
	"fmt"
	"os"

	"protego/internal/bench"
	"protego/internal/kernel"
	"protego/internal/userspace"
	"protego/internal/world"
)

func main() {
	modeName := flag.String("mode", "protego", "machine mode: linux or protego")
	events := flag.Int("events", 25, "number of trailing trace events to print")
	noWorkload := flag.Bool("no-workload", false, "skip the demo workload, trace only the boot")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention pprof profile to this path at exit")
	blockProfile := flag.String("blockprofile", "", "write a blocking pprof profile to this path at exit")
	flag.Parse()

	if *mutexProfile != "" || *blockProfile != "" {
		mf, br := 0, 0
		if *mutexProfile != "" {
			mf = 1
		}
		if *blockProfile != "" {
			br = 1
		}
		bench.EnableContentionProfiling(mf, br)
		defer func() {
			if *mutexProfile != "" {
				if err := bench.DumpProfile("mutex", *mutexProfile); err != nil {
					fmt.Fprintf(os.Stderr, "protego-trace: %v\n", err)
				}
			}
			if *blockProfile != "" {
				if err := bench.DumpProfile("block", *blockProfile); err != nil {
					fmt.Fprintf(os.Stderr, "protego-trace: %v\n", err)
				}
			}
		}()
	}

	mode := kernel.ModeProtego
	if *modeName == "linux" {
		mode = kernel.ModeLinux
	}
	m, err := world.Build(world.Options{Mode: mode})
	if err != nil {
		fmt.Fprintf(os.Stderr, "protego-trace: %v\n", err)
		os.Exit(1)
	}

	if !*noWorkload {
		if err := runWorkload(m); err != nil {
			fmt.Fprintf(os.Stderr, "protego-trace: workload: %v\n", err)
			os.Exit(1)
		}
	}

	st := m.K.Trace.Stats()
	fmt.Printf("=== protego-trace (%s machine) ===\n", mode)
	fmt.Printf("ring: %d/%d events retained, %d emitted, %d dropped\n\n",
		st.Emitted-st.Dropped, st.Capacity, st.Emitted, st.Dropped)

	fmt.Printf("--- last %d events (tail of /proc/trace) ---\n", *events)
	fmt.Print(m.K.Trace.RenderEvents(*events))

	// Read the aggregate view from inside the simulation: /proc/trace/stats
	// is a read-only proc file any task can open.
	root, err := m.Session("root")
	if err != nil {
		fmt.Fprintf(os.Stderr, "protego-trace: %v\n", err)
		os.Exit(1)
	}
	stats, err := m.K.ReadFile(root, kernel.ProcTraceStats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "protego-trace: read %s: %v\n", kernel.ProcTraceStats, err)
		os.Exit(1)
	}
	fmt.Printf("\n--- %s (read in-simulation) ---\n%s", kernel.ProcTraceStats, stats)

	ds := m.K.FS.DcacheStats()
	fmt.Printf("\nfast paths: dcache %d hits / %d misses (ratio %.4f), %d invalidated, %d cached\n",
		ds.Hits, ds.Misses, ds.HitRatio(), ds.Invalidates, ds.Entries)
}

// runWorkload replays the quickstart scenario so every producer emits:
// syscall dispatch, LSM hooks, netfilter verdicts, authsvc checks, and a
// monitord sync cycle.
func runWorkload(m *world.Machine) error {
	alice, err := m.Session("alice")
	if err != nil {
		return err
	}
	run := func(password string, argv ...string) {
		var asker func(string) string
		if password != "" {
			asker = world.AnswerWith(password)
		}
		// Exit codes and output are deliberately discarded: denials are
		// part of the workload and show up in the trace instead.
		_, _, _, _ = m.Run(alice, argv, asker)
	}

	run("", userspace.BinMount, "/dev/cdrom", "/cdrom")        // on the whitelist
	run("", userspace.BinMount, "/dev/sdc1", "/mnt/backup")    // off the whitelist
	run("", userspace.BinPing, "-c", "2", "10.0.0.2")          // raw ICMP through netfilter
	run(world.AlicePassword, userspace.BinSudo, "/usr/bin/id") // password auth, ok
	run("wrong-password", userspace.BinSudo, "/usr/bin/id")    // password auth, fail

	// One policy push, so monitord sync latency appears in the trace.
	if m.Monitor != nil {
		return m.Monitor.SyncMounts()
	}
	return nil
}
