// Command protego-trace boots a simulated machine, drives a short
// quickstart-style workload through it (mounts on and off the fstab
// whitelist, ping, sudo with a right and a wrong password, a monitord
// resync), and then prints what the kernel tracer saw: the most recent
// events, per-syscall and per-LSM-hook latency histograms, and the
// per-(hook, module, decision) counters.
//
//	protego-trace                  trace a Protego machine
//	protego-trace -mode linux      trace the setuid baseline
//	protego-trace -events 40       show more of the event tail
//	protego-trace -no-workload     boot only; trace just the boot syscalls
//	protego-trace -profiles        print the committed golden syscall profiles
//	protego-trace -profile-diff    record this workload's syscall profile and
//	                               diff it against the committed goldens
//
// The aggregate view is read from /proc/trace/stats *inside* the
// simulation, the same way a user on the machine would read it.
package main

import (
	"flag"
	"fmt"
	"os"

	"protego/internal/bench"
	"protego/internal/kernel"
	"protego/internal/seccomp"
	"protego/internal/seccomp/profiles"
	"protego/internal/userspace"
	"protego/internal/world"
)

func main() {
	modeName := flag.String("mode", "protego", "machine mode: linux or protego")
	events := flag.Int("events", 25, "number of trailing trace events to print")
	noWorkload := flag.Bool("no-workload", false, "skip the demo workload, trace only the boot")
	profilesOnly := flag.Bool("profiles", false, "print the committed golden syscall profiles for -mode and exit")
	profileDiff := flag.Bool("profile-diff", false, "record the workload's observed syscall profile and diff it against the committed goldens")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention pprof profile to this path at exit")
	blockProfile := flag.String("blockprofile", "", "write a blocking pprof profile to this path at exit")
	flag.Parse()

	if *mutexProfile != "" || *blockProfile != "" {
		mf, br := 0, 0
		if *mutexProfile != "" {
			mf = 1
		}
		if *blockProfile != "" {
			br = 1
		}
		bench.EnableContentionProfiling(mf, br)
		defer func() {
			if *mutexProfile != "" {
				if err := bench.DumpProfile("mutex", *mutexProfile); err != nil {
					fmt.Fprintf(os.Stderr, "protego-trace: %v\n", err)
				}
			}
			if *blockProfile != "" {
				if err := bench.DumpProfile("block", *blockProfile); err != nil {
					fmt.Fprintf(os.Stderr, "protego-trace: %v\n", err)
				}
			}
		}()
	}

	mode := kernel.ModeProtego
	if *modeName == "linux" {
		mode = kernel.ModeLinux
	}

	if *profilesOnly {
		os.Stdout.Write(profiles.Raw(mode))
		return
	}
	if *profileDiff {
		if err := runProfileDiff(mode); err != nil {
			fmt.Fprintf(os.Stderr, "protego-trace: profile-diff: %v\n", err)
			os.Exit(1)
		}
		return
	}

	m, err := world.Build(world.Options{Mode: mode})
	if err != nil {
		fmt.Fprintf(os.Stderr, "protego-trace: %v\n", err)
		os.Exit(1)
	}

	if !*noWorkload {
		if err := runWorkload(m); err != nil {
			fmt.Fprintf(os.Stderr, "protego-trace: workload: %v\n", err)
			os.Exit(1)
		}
	}

	st := m.K.Trace.Stats()
	fmt.Printf("=== protego-trace (%s machine) ===\n", mode)
	fmt.Printf("ring: %d/%d events retained, %d emitted, %d dropped\n\n",
		st.Emitted-st.Dropped, st.Capacity, st.Emitted, st.Dropped)

	fmt.Printf("--- last %d events (tail of /proc/trace) ---\n", *events)
	fmt.Print(m.K.Trace.RenderEvents(*events))

	// Read the aggregate view from inside the simulation: /proc/trace/stats
	// is a read-only proc file any task can open.
	root, err := m.Session("root")
	if err != nil {
		fmt.Fprintf(os.Stderr, "protego-trace: %v\n", err)
		os.Exit(1)
	}
	stats, err := m.K.ReadFile(root, kernel.ProcTraceStats)
	if err != nil {
		fmt.Fprintf(os.Stderr, "protego-trace: read %s: %v\n", kernel.ProcTraceStats, err)
		os.Exit(1)
	}
	fmt.Printf("\n--- %s (read in-simulation) ---\n%s", kernel.ProcTraceStats, stats)

	ds := m.K.FS.DcacheStats()
	fmt.Printf("\nfast paths: dcache %d hits / %d misses (ratio %.4f), %d invalidated, %d cached\n",
		ds.Hits, ds.Misses, ds.HitRatio(), ds.Invalidates, ds.Entries)
}

// runProfileDiff boots a machine with a learning-mode seccomp recorder
// armed, replays the demo workload, and prints the observed per-binary
// syscall profile (in the committed JSON shape) followed by a diff
// against the committed golden for the mode. A syscall observed beyond a
// binary's learned profile means the goldens are stale — the exit status
// reflects it, mirroring the CI drift gate.
func runProfileDiff(mode kernel.Mode) error {
	m, err := world.Build(world.Options{Mode: mode})
	if err != nil {
		return err
	}
	rec := seccomp.NewRecorder(mode.String())
	m.K.LSM.Register(rec)
	m.K.SetSyscallGate(true)
	if err := runWorkload(m); err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	observed := rec.Set()
	data, err := observed.Encode()
	if err != nil {
		return err
	}
	fmt.Printf("--- observed profile (%s workload) ---\n%s", mode, data)

	learned, err := profiles.Load(mode)
	if err != nil {
		return err
	}
	fmt.Printf("\n--- observed vs committed golden (%s) ---\n", mode)
	stale := 0
	for _, bin := range observed.Binaries() {
		obs := observed.For(bin)
		gold := learned.For(bin)
		if gold == nil {
			fmt.Printf("%s: unprofiled binary (machine union applies)\n", bin)
			continue
		}
		var beyond, unexercised []string
		for _, sn := range kernel.Sysnos() {
			switch {
			case obs.Allows(sn) && !gold.Allows(sn):
				beyond = append(beyond, "+"+sn.String())
			case !obs.Allows(sn) && gold.Allows(sn):
				unexercised = append(unexercised, "-"+sn.String())
			}
		}
		stale += len(beyond)
		fmt.Printf("%s: %d observed / %d learned", bin, obs.Len(), gold.Len())
		for _, d := range append(beyond, unexercised...) {
			fmt.Printf(" %s", d)
		}
		fmt.Println()
	}
	if stale > 0 {
		return fmt.Errorf("%d syscalls observed beyond the learned profiles; regenerate with: "+
			"go test ./internal/seccomp/profiler -run TestGoldenProfilesUpToDate -args -update", stale)
	}
	fmt.Println("no syscall observed beyond its learned profile")
	return nil
}

// runWorkload replays the quickstart scenario so every producer emits:
// syscall dispatch, LSM hooks, netfilter verdicts, authsvc checks, and a
// monitord sync cycle.
func runWorkload(m *world.Machine) error {
	alice, err := m.Session("alice")
	if err != nil {
		return err
	}
	run := func(password string, argv ...string) {
		var asker func(string) string
		if password != "" {
			asker = world.AnswerWith(password)
		}
		// Exit codes and output are deliberately discarded: denials are
		// part of the workload and show up in the trace instead.
		_, _, _, _ = m.Run(alice, argv, asker)
	}

	run("", userspace.BinMount, "/dev/cdrom", "/cdrom")        // on the whitelist
	run("", userspace.BinMount, "/dev/sdc1", "/mnt/backup")    // off the whitelist
	run("", userspace.BinPing, "-c", "2", "10.0.0.2")          // raw ICMP through netfilter
	run(world.AlicePassword, userspace.BinSudo, "/usr/bin/id") // password auth, ok
	run("wrong-password", userspace.BinSudo, "/usr/bin/id")    // password auth, fail

	// One policy push, so monitord sync latency appears in the trace.
	if m.Monitor != nil {
		return m.Monitor.SyncMounts()
	}
	return nil
}
