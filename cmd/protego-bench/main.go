// Command protego-bench regenerates every table and figure of the paper's
// evaluation from the simulation:
//
//	protego-bench -table 1     summary of results
//	protego-bench -table 2     lines of code per component
//	protego-bench -table 3     setuid package installation statistics
//	protego-bench -table 4     the interface policy study
//	protego-bench -table 5     performance overheads (lmbench-style + macro)
//	protego-bench -table 6     historical vulnerabilities, contained
//	protego-bench -table 7     functional equivalence of the utilities
//	protego-bench -table 8     the long tail of remaining setuid binaries
//	protego-bench -figure 1    the mount control-flow comparison
//	protego-bench -all         everything
//
// -quick shrinks the macro workloads for a fast smoke run. -faults runs the
// deterministic fault-injection sweep (seeded by -faultseed) over both
// configurations instead of the tables, exiting non-zero on any panic,
// fail-open decision, or failed recovery. -difffuzz N runs N differential
// syscall-fuzzing traces (seeded by -difffuzzseed) against a fresh
// baseline/Protego pair each, reporting traces/sec and divergence counts
// (merged into the -json report when given) and exiting non-zero on any
// unexplained divergence or invariant violation. -seccomp tabulates the
// per-binary syscall attack-surface reduction from the committed golden
// allowlists and gates the syscall-entry prologue overhead at 5%.
// -vulngen N generates N misconfigured environments (seeded by
// -vulngenseed) and replays the full CVE corpus inside each on mutated
// baseline/Protego snapshot pairs, exiting non-zero on any uncontained
// escalation, invariant violation, or unexplained baseline non-escalation.
package main

import (
	"flag"
	"fmt"
	"os"

	"protego/internal/bench"
	"protego/internal/core"
	"protego/internal/equiv"
	"protego/internal/exploits"
	"protego/internal/kernel"
	"protego/internal/survey"
)

func main() {
	table := flag.Int("table", 0, "table number to regenerate (1-8)")
	figure := flag.Int("figure", 0, "figure number to regenerate (1)")
	all := flag.Bool("all", false, "regenerate everything")
	quick := flag.Bool("quick", false, "reduced workload sizes")
	repo := flag.String("repo", ".", "repository root for line counting (table 2)")
	jsonPath := flag.String("json", "", "also write the table-5 run as a JSON report (e.g. BENCH_protego.json)")
	scaling := flag.Bool("scaling", false, "run only the parallel scaling sweep (GOMAXPROCS 1/2/4/8) and print it")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention pprof profile to this path at exit")
	blockProfile := flag.String("blockprofile", "", "write a blocking pprof profile to this path at exit")
	mutexFrac := flag.Int("mutexfrac", 1, "mutex profile sampling fraction (SetMutexProfileFraction)")
	blockRate := flag.Int("blockrate", 1, "block profile rate in ns (SetBlockProfileRate)")
	faults := flag.Bool("faults", false, "run the deterministic fault-injection sweep over both configurations")
	faultSeed := flag.Int64("faultseed", 42, "seed for the fault-injection sweep (fixes torn-read offsets)")
	diffFuzz := flag.Int("difffuzz", 0, "run N differential-fuzzing traces (baseline vs Protego) instead of the tables")
	diffFuzzSeed := flag.Int64("difffuzzseed", 1, "seed for the differential-fuzzing trace generator")
	fleetN := flag.Int("fleet", 0, "stamp N tenant machines from one golden snapshot and bench clone rate + fleet throughput")
	fleetOps := flag.Int("fleetops", 30, "workload syscalls per tenant for -fleet")
	seccompMode := flag.Bool("seccomp", false, "report per-binary syscall attack-surface reduction and gate the enter() prologue overhead (<5%)")
	vulgenN := flag.Int("vulngen", 0, "generate N misconfigured environments and replay the full CVE corpus inside each")
	vulgenSeed := flag.Int64("vulngenseed", 1, "seed for the vulnerable-environment generator")
	flag.Parse()

	if *mutexProfile != "" || *blockProfile != "" {
		mf, br := 0, 0
		if *mutexProfile != "" {
			mf = *mutexFrac
		}
		if *blockProfile != "" {
			br = *blockRate
		}
		bench.EnableContentionProfiling(mf, br)
		defer func() {
			if *mutexProfile != "" {
				if err := bench.DumpProfile("mutex", *mutexProfile); err != nil {
					fmt.Fprintf(os.Stderr, "protego-bench: %v\n", err)
				}
			}
			if *blockProfile != "" {
				if err := bench.DumpProfile("block", *blockProfile); err != nil {
					fmt.Fprintf(os.Stderr, "protego-bench: %v\n", err)
				}
			}
		}()
	}

	if *faults {
		linux, err := bench.RunFaultSweep(kernel.ModeLinux, *faultSeed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "protego-bench: faults (linux): %v\n", err)
			os.Exit(1)
		}
		protego, err := bench.RunFaultSweep(kernel.ModeProtego, *faultSeed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "protego-bench: faults (protego): %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatFaultSweep(linux, protego))
		bad := len(linux.Panics()) + len(linux.FailOpens()) + len(linux.LivenessFailures()) +
			len(protego.Panics()) + len(protego.FailOpens()) + len(protego.LivenessFailures())
		if bad > 0 {
			fmt.Fprintf(os.Stderr, "protego-bench: faults: %d safety violations\n", bad)
			os.Exit(1)
		}
		return
	}

	if *diffFuzz > 0 {
		rep, err := bench.RunDiffFuzz(*diffFuzz, *diffFuzzSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "protego-bench: difffuzz: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatDiffFuzz(rep))
		if *jsonPath != "" {
			full, err := bench.ReadReport(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "protego-bench: difffuzz: read %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			full.DiffFuzz = rep
			if err := bench.WriteReport(*jsonPath, full); err != nil {
				fmt.Fprintf(os.Stderr, "protego-bench: difffuzz: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("updated %s\n", *jsonPath)
		}
		if !rep.Clean() {
			fmt.Fprintf(os.Stderr, "protego-bench: difffuzz: %d unexplained divergences, %d invariant violations\n",
				rep.UnexplainedDivergences, rep.InvariantViolations)
			os.Exit(1)
		}
		return
	}

	if *vulgenN > 0 {
		rep, err := bench.RunVulngen(*vulgenN, *vulgenSeed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "protego-bench: vulngen: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatVulngen(rep))
		if *jsonPath != "" {
			full, err := bench.ReadReport(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "protego-bench: vulngen: read %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			full.Vulngen = rep
			if err := bench.WriteReport(*jsonPath, full); err != nil {
				fmt.Fprintf(os.Stderr, "protego-bench: vulngen: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("updated %s\n", *jsonPath)
		}
		if !rep.Clean() {
			fmt.Fprintf(os.Stderr, "protego-bench: vulngen: %d uncontained escalations across %d environments\n",
				rep.Uncontained, rep.Environments)
			os.Exit(1)
		}
		return
	}

	if *fleetN > 0 {
		rep, err := bench.RunFleet(*fleetN, *fleetOps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "protego-bench: fleet: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatFleet(rep))
		if *jsonPath != "" {
			full, err := bench.ReadReport(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "protego-bench: fleet: read %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			full.Fleet = rep
			if err := bench.WriteReport(*jsonPath, full); err != nil {
				fmt.Fprintf(os.Stderr, "protego-bench: fleet: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("updated %s\n", *jsonPath)
		}
		if !rep.Clean() {
			fmt.Fprintf(os.Stderr, "protego-bench: fleet: %d isolation problems\n", rep.IsolationProblems)
			os.Exit(1)
		}
		return
	}

	if *seccompMode {
		iters := 0
		if *quick {
			// Below ~5k iterations scheduler noise swamps the few-percent
			// signal the gate is judging.
			iters = 5000
		}
		rep, err := bench.MeasureSeccomp(iters)
		if err != nil {
			fmt.Fprintf(os.Stderr, "protego-bench: seccomp: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatSeccomp(rep))
		if *jsonPath != "" {
			full, err := bench.ReadReport(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "protego-bench: seccomp: read %s: %v\n", *jsonPath, err)
				os.Exit(1)
			}
			full.Seccomp = rep
			if err := bench.WriteReport(*jsonPath, full); err != nil {
				fmt.Fprintf(os.Stderr, "protego-bench: seccomp: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("updated %s\n", *jsonPath)
		}
		if !rep.GatePassed {
			fmt.Fprintf(os.Stderr, "protego-bench: seccomp: enter() overhead gate failed (stat %+.2f%%, open/close %+.2f%%)\n",
				rep.StatOverheadPct, rep.OpenCloseOverheadPct)
			os.Exit(1)
		}
		return
	}

	if *scaling {
		iterScale := 1.0
		if *quick {
			iterScale = 0.05
		}
		rep, err := bench.MeasureScaling(bench.DefaultScalingSweep(), iterScale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "protego-bench: scaling: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatScaling(rep))
		return
	}

	run := func(n int, fn func() error) {
		if *all || *table == n {
			if err := fn(); err != nil {
				fmt.Fprintf(os.Stderr, "protego-bench: table %d: %v\n", n, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	}

	if !*all && *table == 0 && *figure == 0 {
		flag.Usage()
		os.Exit(2)
	}

	run(1, func() error { return printTable1(*quick) })
	run(2, func() error { return printTable2(*repo) })
	run(3, func() error { fmt.Print(survey.FormatTable3()); return nil })
	run(4, func() error { fmt.Print(core.FormatCatalog()); return nil })
	run(5, func() error { return printTable5(*quick, *jsonPath) })
	run(6, func() error { return printTable6() })
	run(7, func() error { return printTable7() })
	run(8, func() error { fmt.Print(survey.FormatTable8()); return nil })

	if *all || *figure == 1 {
		if err := printFigure1(); err != nil {
			fmt.Fprintf(os.Stderr, "protego-bench: figure 1: %v\n", err)
			os.Exit(1)
		}
	}
}

func printTable5(quick bool, jsonPath string) error {
	cfg := bench.DefaultTable5Config()
	if quick {
		cfg.PostalMessages = 50
		cfg.CompileFiles = 50
		cfg.WebRequests = 400
		cfg.WebConcurrency = []int{25, 50}
	}
	rows, err := bench.RunTable5(cfg)
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable5(rows))
	if jsonPath != "" {
		rep, err := bench.BuildReport(rows, quick)
		if err != nil {
			return err
		}
		if err := bench.WriteReport(jsonPath, rep); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (trace emission: %.0f ns/op, under 1µs: %v)\n",
			jsonPath, rep.Emission.NsPerOp, rep.Emission.Under1us)
		if fp := rep.Fastpath; fp != nil {
			fmt.Printf("fast paths: lookup %.0f → %.0f ns/op with dcache (%.1f%% faster), "+
				"mount-flow hit ratio %.4f\n",
				fp.LookupColdNsPerOp, fp.LookupWarmNsPerOp, fp.SpeedupPct, fp.MountFlowHitRatio)
			fmt.Printf("fastpath counters: dcache.hit=%d dcache.miss=%d mountidx.hit=%d nfidx.fastpath=%d\n",
				fp.Counters["dcache.hit"], fp.Counters["dcache.miss"],
				fp.Counters["mountidx.hit"], fp.Counters["nfidx.fastpath"])
		}
		if rep.Scaling != nil {
			fmt.Println()
			fmt.Print(bench.FormatScaling(rep.Scaling))
		}
	}
	return nil
}

func printTable6() error {
	fmt.Println("Table 6: Historical privilege-escalation vulnerabilities")
	fmt.Printf("%-16s %-22s %-16s %10s %10s\n", "CVE", "Utility", "Class", "Linux", "Protego")
	linux, linuxSum, err := exploits.RunAll(kernel.ModeLinux)
	if err != nil {
		return err
	}
	protego, protegoSum, err := exploits.RunAll(kernel.ModeProtego)
	if err != nil {
		return err
	}
	esc := func(r *exploits.Result) string {
		if r.Escalated {
			return "ESCALATED"
		}
		return "contained"
	}
	for i := range linux {
		fmt.Printf("%-16s %-22s %-16s %10s %10s\n",
			linux[i].CVE.ID, linux[i].CVE.Utility, linux[i].CVE.Class, esc(linux[i]), esc(protego[i]))
	}
	fmt.Printf("\nBaseline escalations: %d/%d   Protego escalations: %d/%d (paper: 40/40 deprivileged)\n",
		linuxSum.Escalated, linuxSum.Total, protegoSum.Escalated, protegoSum.Total)
	return nil
}

func printTable7() error {
	reports, err := equiv.RunAll()
	if err != nil {
		return err
	}
	fmt.Print(equiv.FormatTable7(reports))
	fmt.Println("\nStatement coverage of the utility implementations:")
	fmt.Println("  go test -cover ./internal/userspace ./internal/equiv")
	return nil
}
