package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"protego/internal/bench"
	"protego/internal/exploits"
	"protego/internal/kernel"
	"protego/internal/survey"
	"protego/internal/userspace"
	"protego/internal/world"
)

// printTable1 reproduces the summary table by actually running the
// underlying experiments (exploit corpus + microbenchmarks).
func printTable1(quick bool) error {
	fmt.Println("Table 1: Summary of results")

	// Security: the exploit corpus under Protego.
	corpus := exploits.Corpus
	if quick {
		corpus = corpus[:8]
	}
	contained := 0
	for _, cve := range corpus {
		res, err := exploits.RunCVE(kernel.ModeProtego, cve)
		if err != nil {
			return err
		}
		if !res.Escalated {
			contained++
		}
	}

	// Performance: worst-case microbenchmark overhead.
	linux, protego, err := bench.RunMicroPair()
	if err != nil {
		return err
	}
	// Consider only rows whose baseline is long enough to time reliably;
	// sub-50ns operations are dominated by timer jitter.
	worst := 0.0
	for name, l := range linux {
		if l < 0.05 {
			continue
		}
		if oh := (protego[name] - l) / l * 100; oh > worst {
			worst = oh
		}
	}

	fmt.Printf("  %-62s %10s\n", "Net lines of code de-privileged (paper):", "12,717")
	fmt.Printf("  %-62s %9.1f%%\n", "Deployed systems that can eliminate the setuid bit (paper):", survey.CoveragePct)
	fmt.Printf("  %-62s %7d/%d\n", "Historical exploits unprivileged on Protego (measured):", contained, len(corpus))
	fmt.Printf("  %-62s %9.1f%%\n", "Worst microbenchmark overhead (measured; paper <= 7.4%):", worst)
	fmt.Printf("  %-62s %10d\n", "System calls changed:", 8)
	return nil
}

// table2Components maps the paper's Table 2 rows to this repository's
// packages (the simulation implements whole subsystems, not deltas, so the
// magnitudes differ; the roles correspond one-to-one).
var table2Components = []struct {
	Row      string
	PaperLoC string
	Dirs     []string
}{
	{"Kernel: LSM hooks, /proc interface, syscalls", "415", []string{"internal/kernel", "internal/lsm"}},
	{"Protego LSM module (policy checks)", "200", []string{"internal/core"}},
	{"Netfilter extension for raw sockets", "100", []string{"internal/netfilter"}},
	{"Monitoring daemon", "400", []string{"internal/monitord"}},
	{"Authentication utility", "1200", []string{"internal/authsvc"}},
	{"Utilities (iptables, vipw, dmcrypt, mount, sudo, pppd, ...)", "194 net", []string{"internal/userspace"}},
	{"Substrates the paper reused from Linux (VFS, net, accounts)", "-", []string{"internal/vfs", "internal/netstack", "internal/accountdb", "internal/policy"}},
}

func printTable2(repo string) error {
	fmt.Println("Table 2: Lines of code per component (paper deltas vs this reproduction)")
	fmt.Printf("  %-62s %10s %12s\n", "Component", "Paper", "This repo")
	total := 0
	for _, c := range table2Components {
		lines := 0
		for _, dir := range c.Dirs {
			n, err := countGoLines(filepath.Join(repo, dir))
			if err != nil {
				return fmt.Errorf("counting %s: %w", dir, err)
			}
			lines += n
		}
		total += lines
		fmt.Printf("  %-62s %10s %12d\n", c.Row, c.PaperLoC, lines)
	}
	fmt.Printf("  %-62s %10s %12d\n", "Total", "2,598", total)
	return nil
}

// countGoLines counts lines of non-test Go source under dir.
func countGoLines(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	lines := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return 0, err
		}
		lines += strings.Count(string(data), "\n")
	}
	return lines, nil
}

// printFigure1 narrates the mount control flow of Figure 1 on both
// systems, tracing which component enforced the policy.
func printFigure1() error {
	fmt.Println("Figure 1: the mount system call on Linux vs Protego")
	for _, mode := range []kernel.Mode{kernel.ModeLinux, kernel.ModeProtego} {
		m, err := world.Build(world.Options{Mode: mode})
		if err != nil {
			return err
		}
		fmt.Printf("\n--- %s ---\n", strings.ToUpper(mode.String()))
		alice, err := m.Session("alice")
		if err != nil {
			return err
		}
		if mode == kernel.ModeLinux {
			fmt.Println("  [user alice] exec /bin/mount (setuid bit: process becomes euid 0)")
			fmt.Println("  [trusted /bin/mount] reads /etc/fstab, checks the 'user' option itself")
			fmt.Println("  [trusted /bin/mount] issues mount(2) with CAP_SYS_ADMIN")
		} else {
			fmt.Println("  [trusted protegod] parsed /etc/fstab -> wrote whitelist to /proc/protego/mounts")
			fmt.Println("  [user alice] exec /bin/mount (no setuid bit: stays uid 1000)")
			fmt.Println("  [untrusted /bin/mount] issues mount(2) without privilege")
			fmt.Println("  [kernel LSM] checks arguments against the in-kernel whitelist")
		}
		code, out, errOut, _ := m.Run(alice, []string{userspace.BinMount, "/dev/cdrom", "/cdrom"}, nil)
		fmt.Printf("  mount /dev/cdrom /cdrom  -> exit %d, %s", code, firstLine(out+errOut))
		code, _, errOut, _ = m.Run(alice, []string{userspace.BinMount, "/dev/sdc1", "/mnt/backup"}, nil)
		fmt.Printf("  mount /dev/sdc1 /mnt/backup (not whitelisted) -> exit %d, %s", code, firstLine(errOut))
		if mode == kernel.ModeProtego {
			fmt.Println("  audit trail:")
			for _, line := range m.K.AuditLog() {
				fmt.Printf("    %s\n", line)
			}
		}
	}
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i+1]
	}
	return s + "\n"
}
