// Command protego-fleet simulates a multi-tenant fleet: it boots one
// golden Protego machine, freezes it, stamps N tenant machines from the
// snapshot copy-on-write, runs a mixed syscall workload on every tenant
// concurrently, pushes a mount-policy update from the shared control
// plane to all tenants (one monitord reload each), and audits
// cross-tenant isolation.
//
//	protego-fleet -tenants 64 -ops 30          fleet smoke run
//	protego-fleet -tenants 256 -gate 10        CI gate: also require the
//	                                           clone rate to be at least
//	                                           10x a fresh world.Build
//
// Exit status is non-zero on any isolation problem, any tenant missing
// the pushed policy, or (with -gate) a clone rate below the floor.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"protego/internal/fleet"
	"protego/internal/kernel"
	"protego/internal/world"
)

func main() {
	tenants := flag.Int("tenants", 64, "tenant machines to stamp from the golden snapshot")
	ops := flag.Int("ops", 30, "workload syscalls per tenant")
	gate := flag.Float64("gate", 0, "fail unless clone rate is at least this many times the fresh-boot rate (0 = no gate)")
	push := flag.String("push", "/dev/sde1  /mnt/backup  ext4  rw,user,noauto  0 0",
		"fstab row to push from the control plane ('' = skip the push)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "protego-fleet: "+format+"\n", args...)
		os.Exit(1)
	}

	var freshRate float64
	if *gate > 0 {
		const freshN = 3
		start := time.Now()
		for i := 0; i < freshN; i++ {
			if _, err := world.Build(world.Options{Mode: kernel.ModeProtego}); err != nil {
				fail("fresh boot: %v", err)
			}
		}
		freshRate = freshN / time.Since(start).Seconds()
	}

	f, err := fleet.NewManager(kernel.ModeProtego)
	if err != nil {
		fail("%v", err)
	}
	start := time.Now()
	if err := f.Stamp(*tenants); err != nil {
		fail("%v", err)
	}
	cloneSecs := time.Since(start).Seconds()
	cloneRate := float64(*tenants) / cloneSecs
	fmt.Printf("stamped %d tenants in %.3fs (%.1f machines/s)\n", *tenants, cloneSecs, cloneRate)

	start = time.Now()
	if err := f.RunWorkloads(*ops); err != nil {
		fail("workload: %v", err)
	}
	secs := time.Since(start).Seconds()
	fmt.Printf("ran %d ops on each of %d tenants in %.3fs (%.0f fleet ops/s)\n",
		*ops, *tenants, secs, float64(*tenants**ops)/secs)

	if *push != "" {
		if err := f.PushMountPolicy(*push); err != nil {
			fail("policy push: %v", err)
		}
		for _, tn := range f.Tenants() {
			found := false
			for _, r := range tn.Machine.Protego.MountRules() {
				if strings.HasPrefix(*push, r.Device+" ") || strings.Fields(*push)[0] == r.Device {
					found = true
					break
				}
			}
			if !found {
				fail("tenant %d missing pushed policy row", tn.ID)
			}
		}
		fmt.Printf("pushed policy row to %d tenants (one monitord reload each)\n", *tenants)
	}

	if problems := f.CheckIsolation(); len(problems) > 0 {
		fail("isolation violated:\n  %s", strings.Join(problems, "\n  "))
	}
	fmt.Println("isolation: clean (markers, task tables, golden fingerprint)")

	agg := f.AggregateCounters()
	fmt.Print(agg.String())

	if *gate > 0 {
		speedup := cloneRate / freshRate
		fmt.Printf("clone speedup: %.1fx over fresh boot (%.1f/s vs %.1f/s), gate %.1fx\n",
			speedup, cloneRate, freshRate, *gate)
		if speedup < *gate {
			fail("clone rate %.1f/s is only %.1fx fresh boot (%.1f/s), below the %.1fx gate",
				cloneRate, speedup, freshRate, *gate)
		}
	}
}
