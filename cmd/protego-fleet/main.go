// Command protego-fleet simulates a multi-tenant fleet: it boots one
// golden Protego machine, freezes it, stamps N tenant machines from the
// snapshot copy-on-write, runs a mixed syscall workload on every tenant
// concurrently, pushes a mount-policy update from the shared control
// plane to all tenants (one monitord reload each), and audits
// cross-tenant isolation.
//
//	protego-fleet -tenants 64 -ops 30          fleet smoke run
//	protego-fleet -tenants 256 -gate 10        CI gate: also require the
//	                                           clone rate to be at least
//	                                           10x a fresh world.Build
//
// The -gate measurement interleaves fresh boots with clone batches so
// both rates share the same load window (scheduling noise on a shared
// runner hits both alike), gates on the median per-round speedup, and
// retries once with fresh samples before failing.
//
// Exit status is non-zero on any isolation problem, any tenant missing
// the pushed policy, or (with -gate) a clone rate below the floor.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"protego/internal/fleet"
	"protego/internal/kernel"
	"protego/internal/world"
)

// measureSpeedup times the clone rate against the fresh-boot rate with
// interleaved samples: each round runs one fresh world.Build and one
// batch of clones back to back, so both sides see the same scheduler
// load window and a noisy shared runner slows them together instead of
// skewing the ratio. The rounds are summarized by their median, which a
// single descheduled sample cannot drag below the gate. Returns the
// median per-round speedup plus the aggregate clone rate for reporting.
func measureSpeedup(f *fleet.Manager, tenants, rounds int) (speedup, cloneRate float64, err error) {
	speedups := make([]float64, 0, rounds)
	var cloned int
	var cloneSecs float64
	for r := 0; r < rounds; r++ {
		batch := tenants / rounds
		if r == rounds-1 {
			batch = tenants - batch*(rounds-1)
		}
		start := time.Now()
		if _, err := world.Build(world.Options{Mode: kernel.ModeProtego}); err != nil {
			return 0, 0, fmt.Errorf("fresh boot: %w", err)
		}
		freshSecs := time.Since(start).Seconds()
		start = time.Now()
		if err := f.Stamp(batch); err != nil {
			return 0, 0, err
		}
		batchSecs := time.Since(start).Seconds()
		cloned += batch
		cloneSecs += batchSecs
		speedups = append(speedups, float64(batch)/batchSecs*freshSecs)
	}
	sort.Float64s(speedups)
	return speedups[len(speedups)/2], float64(cloned) / cloneSecs, nil
}

func main() {
	tenants := flag.Int("tenants", 64, "tenant machines to stamp from the golden snapshot")
	ops := flag.Int("ops", 30, "workload syscalls per tenant")
	gate := flag.Float64("gate", 0, "fail unless clone rate is at least this many times the fresh-boot rate (0 = no gate)")
	push := flag.String("push", "/dev/sde1  /mnt/backup  ext4  rw,user,noauto  0 0",
		"fstab row to push from the control plane ('' = skip the push)")
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "protego-fleet: "+format+"\n", args...)
		os.Exit(1)
	}

	f, err := fleet.NewManager(kernel.ModeProtego)
	if err != nil {
		fail("%v", err)
	}
	if *gate > 0 {
		// Interleaved, retried measurement: a shared CI runner's
		// scheduling noise hits fresh boots and clone batches alike, and
		// one bad window gets a second chance before the job fails.
		const rounds, attempts = 3, 2
		var speedup, cloneRate float64
		for try := 1; ; try++ {
			speedup, cloneRate, err = measureSpeedup(f, *tenants, rounds)
			if err != nil {
				fail("%v", err)
			}
			fmt.Printf("clone speedup: %.1fx over fresh boot (median of %d interleaved rounds, %.1f machines/s), gate %.1fx\n",
				speedup, rounds, cloneRate, *gate)
			if speedup >= *gate || try >= attempts {
				break
			}
			fmt.Printf("below gate, retrying with fresh samples (%d/%d)\n", try, attempts)
		}
		if speedup < *gate {
			fail("clone speedup %.1fx is below the %.1fx gate after %d attempts", speedup, *gate, attempts)
		}
	} else {
		start := time.Now()
		if err := f.Stamp(*tenants); err != nil {
			fail("%v", err)
		}
		cloneSecs := time.Since(start).Seconds()
		fmt.Printf("stamped %d tenants in %.3fs (%.1f machines/s)\n",
			*tenants, cloneSecs, float64(*tenants)/cloneSecs)
	}
	total := len(f.Tenants())

	start := time.Now()
	if err := f.RunWorkloads(*ops); err != nil {
		fail("workload: %v", err)
	}
	secs := time.Since(start).Seconds()
	fmt.Printf("ran %d ops on each of %d tenants in %.3fs (%.0f fleet ops/s)\n",
		*ops, total, secs, float64(total**ops)/secs)

	if *push != "" {
		if err := f.PushMountPolicy(*push); err != nil {
			fail("policy push: %v", err)
		}
		for _, tn := range f.Tenants() {
			found := false
			for _, r := range tn.Machine.Protego.MountRules() {
				if strings.HasPrefix(*push, r.Device+" ") || strings.Fields(*push)[0] == r.Device {
					found = true
					break
				}
			}
			if !found {
				fail("tenant %d missing pushed policy row", tn.ID)
			}
		}
		fmt.Printf("pushed policy row to %d tenants (one monitord reload each)\n", total)
	}

	if problems := f.CheckIsolation(); len(problems) > 0 {
		fail("isolation violated:\n  %s", strings.Join(problems, "\n  "))
	}
	fmt.Println("isolation: clean (markers, task tables, golden fingerprint)")

	agg := f.AggregateCounters()
	fmt.Print(agg.String())
}
