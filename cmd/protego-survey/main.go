// Command protego-survey reproduces the installation-statistics analyses:
// Table 3 (setuid package popularity, recomputed weighted averages) and
// Table 8 (the long tail of remaining setuid binaries by interface).
package main

import (
	"flag"
	"fmt"
	"os"

	"protego/internal/survey"
)

func main() {
	table := flag.Int("table", 0, "table to print (3 or 8); 0 prints both")
	flag.Parse()
	switch *table {
	case 0:
		fmt.Print(survey.FormatTable3())
		fmt.Println()
		fmt.Print(survey.FormatTable8())
	case 3:
		fmt.Print(survey.FormatTable3())
	case 8:
		fmt.Print(survey.FormatTable8())
	default:
		fmt.Fprintf(os.Stderr, "protego-survey: no table %d (have 3 and 8)\n", *table)
		os.Exit(2)
	}
}
