module protego

go 1.22
