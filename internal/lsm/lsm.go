// Package lsm implements a Linux Security Module-style hook framework for
// the simulated kernel (Wright et al., USENIX Security 2002). The kernel
// invokes every registered module at each mediation point. Unlike stock
// Linux hooks, which are purely restrictive, these hooks carry the Protego
// kernel change (the paper's 415 added lines): at call sites that were
// previously hard-coded capability checks, the kernel now consults the LSM,
// and a module may *grant* an operation the base policy would deny — the
// mount whitelist, bind table, and delegation rules all work this way.
// Modules may equally *deny* operations the base policy would allow, which
// is how the AppArmor baseline (internal/apparmor) behaves.
package lsm

import (
	"sync/atomic"
	"time"

	"protego/internal/caps"
	"protego/internal/trace"
)

// Task is the view of a kernel task exposed to security modules. It is
// implemented by kernel.Task; lsm deliberately does not import the kernel
// package (the dependency points the other way, as in Linux).
type Task interface {
	// PID returns the task's process id.
	PID() int
	// UID returns the real user id.
	UID() int
	// EUID returns the effective user id.
	EUID() int
	// GID returns the real group id.
	GID() int
	// EGID returns the effective group id.
	EGID() int
	// Groups returns the supplementary group ids.
	Groups() []int
	// Capable reports whether the task's effective capability set
	// contains c.
	Capable(c caps.Cap) bool
	// BinaryPath returns the path of the binary the task is executing,
	// used by object-based policies that key on (binary, uid) pairs.
	BinaryPath() string
	// SecurityBlob returns module-private state attached to the task
	// under key, or nil. This models the security pointer in task_struct
	// that the Protego kernel uses to track authentication recency and
	// pending setuid-on-exec state.
	SecurityBlob(key string) any
	// SetSecurityBlob attaches module-private state to the task.
	SetSecurityBlob(key string, v any)
	// SyscallFilter returns the task's dedicated syscall-entry slot and
	// whether it has ever been populated. Unlike the keyed blob map the
	// slot is read lock-free — it sits on every syscall's hot path, the
	// way task_struct keeps its seccomp state in a dedicated field rather
	// than behind the security pointer. At most one syscall-mediating
	// module may own the slot; a stored nil is a meaningful value
	// (distinct from never-populated), letting the owner cache "no
	// per-task filter applies".
	SyscallFilter() (v any, populated bool)
	// SetSyscallFilter populates the syscall-entry slot (nil included).
	SetSyscallFilter(v any)
}

// NullFilterSlot is an embeddable no-op implementation of Task's
// syscall-filter slot for Task implementors that never meet a syscall
// mediator (policy-unit fakes in tests). The kernel's task keeps a real
// lock-free slot instead.
type NullFilterSlot struct{}

// SyscallFilter reports a never-populated slot.
func (NullFilterSlot) SyscallFilter() (any, bool) { return nil, false }

// SetSyscallFilter discards the value.
func (NullFilterSlot) SetSyscallFilter(any) {}

// Decision is a module's opinion about an operation.
type Decision int

// Decisions, in increasing precedence for chain combination (Deny always
// dominates).
const (
	// NoOpinion defers to the kernel's base policy (e.g. "requires
	// CAP_SYS_ADMIN").
	NoOpinion Decision = iota
	// Grant permits the operation even where base policy would deny it —
	// the Protego relaxation for whitelisted objects.
	Grant
	// DeferToExec (setuid/setgid only) reports success to the caller but
	// defers the credential change to the next exec, where the (binary,
	// target user) pair is validated — the paper's setuid-on-exec
	// mechanism (§4.3), needed because enforcement spans two syscalls.
	DeferToExec
	// Deny rejects the operation regardless of base policy.
	Deny
)

// String names the decision.
func (d Decision) String() string {
	switch d {
	case NoOpinion:
		return "no-opinion"
	case Grant:
		return "grant"
	case DeferToExec:
		return "defer-to-exec"
	case Deny:
		return "deny"
	default:
		return "invalid"
	}
}

// MountRequest carries the arguments of a mount(2) call to the hook.
type MountRequest struct {
	Device   string
	Point    string
	FSType   string
	Options  []string
	ReadOnly bool
}

// UmountRequest carries the arguments of umount(2).
type UmountRequest struct {
	Point string
	// Device that is mounted there, if any.
	Device string
	// MountedBy is the uid that created the mount.
	MountedBy int
	// UserMount records whether the mount was created by a non-root user
	// through the user-mount whitelist.
	UserMount bool
}

// SocketRequest carries the arguments of socket(2).
type SocketRequest struct {
	Family int
	Type   int
	Proto  int
	// MarkUnprivRaw is set by a module that grants an unprivileged raw
	// socket; the kernel then tags the socket so netfilter can subject
	// its traffic to the raw-socket rules.
	MarkUnprivRaw bool
}

// BindRequest carries the arguments of bind(2).
type BindRequest struct {
	Family int
	Type   int
	Proto  int
	Port   int
}

// IoctlRequest describes a device ioctl.
type IoctlRequest struct {
	Path string // device path, e.g. /dev/ppp
	Cmd  uint32
	Arg  any
}

// ExecRequest describes an execve(2). Env may be filtered in place by a
// module (Protego sanitizes the environment across delegated transitions).
type ExecRequest struct {
	Path string
	Argv []string
	Env  map[string]string
	// SetuidBit reports whether the binary carries the setuid bit, and
	// FileUID its owner; modules may veto the privilege elevation.
	SetuidBit bool
	FileUID   int
}

// CredUpdate is returned from ExecCheck when a module wants the kernel to
// apply a credential change at exec time (the deferred half of
// setuid-on-exec). Nil pointers mean "leave unchanged".
type CredUpdate struct {
	UID *int
	GID *int
	// Groups, when non-nil, replaces the supplementary groups (the
	// target user's groups on a delegated transition).
	Groups []int
	// DropGroups clears supplementary groups; ignored when Groups is
	// non-nil.
	DropGroups bool
}

// OpenRequest describes a file open for the FileOpen hook.
type OpenRequest struct {
	Path  string
	Write bool
	// OwnerUID and Mode describe the target inode so modules can apply
	// object-based policy without a VFS dependency.
	OwnerUID int
	Mode     uint32
	// DACAllowed reports whether discretionary access control already
	// admits the open; a Grant decision overrides a DAC failure.
	DACAllowed bool
}

// GroupResolver is an optional module capability: resolving the
// supplementary groups of a uid, so the kernel can establish the target's
// groups when it performs a granted credential transition (the task itself
// is unprivileged afterwards and could not).
type GroupResolver interface {
	ResolveGroups(uid int) ([]int, bool)
}

// Module is the full set of mediation hooks. Embed Base to get
// no-opinion defaults and override only the hooks a policy needs.
type Module interface {
	// Name identifies the module in logs and /proc output.
	Name() string

	// MountCheck mediates mount(2).
	MountCheck(t Task, req *MountRequest) (Decision, error)
	// UmountCheck mediates umount(2).
	UmountCheck(t Task, req *UmountRequest) (Decision, error)
	// SocketCreate mediates socket(2); raw/packet socket creation by
	// tasks lacking CAP_NET_RAW reaches here on Protego instead of
	// failing outright.
	SocketCreate(t Task, req *SocketRequest) (Decision, error)
	// BindCheck mediates bind(2) to ports below 1024 by callers lacking
	// CAP_NET_BIND_SERVICE.
	BindCheck(t Task, req *BindRequest) (Decision, error)
	// IoctlCheck mediates privileged device ioctls (route updates, modem
	// configuration, dmcrypt metadata).
	IoctlCheck(t Task, req *IoctlRequest) (Decision, error)
	// SetuidCheck mediates setuid(2) transitions base policy would deny.
	SetuidCheck(t Task, targetUID int) (Decision, error)
	// SetgidCheck mediates setgid(2)/newgrp transitions.
	SetgidCheck(t Task, targetGID int) (Decision, error)
	// ExecCheck mediates execve(2); it may veto the exec or return a
	// credential update to apply (completing a deferred setuid).
	ExecCheck(t Task, req *ExecRequest) (*CredUpdate, error)
	// FileOpen mediates opens: Deny blocks a DAC-admitted open, Grant
	// admits a DAC-denied one (e.g. ssh-keysign reading the host key).
	FileOpen(t Task, req *OpenRequest) (Decision, error)
	// TaskSyscall mediates syscall entry itself: the kernel consults it
	// from the single enter() prologue before dispatching any syscall, so
	// a module can enforce a per-task syscall allowlist (seccomp-style).
	// sysno is the kernel.Sysno catalog number, name its trace name; lsm
	// deliberately takes plain values so the dependency keeps pointing
	// kernel -> lsm. Deny surfaces to the caller as ENOSYS. A module that
	// overrides this hook MUST also implement SyscallMediator, or the
	// chain — which pre-filters the hot path down to mediators at
	// registration — will never call it.
	TaskSyscall(t Task, sysno int, name string) (Decision, error)
}

// SyscallMediator marks modules whose TaskSyscall does real work. The
// chain walks only mediators on the per-syscall hot path, so the many
// modules keeping Base's structural no-op cost nothing there — not even
// an interface dispatch per syscall.
type SyscallMediator interface{ MediatesSyscall() }

// Base provides no-opinion defaults for all hooks.
type Base struct{}

// MountCheck has no opinion by default.
func (Base) MountCheck(Task, *MountRequest) (Decision, error) { return NoOpinion, nil }

// UmountCheck has no opinion by default.
func (Base) UmountCheck(Task, *UmountRequest) (Decision, error) { return NoOpinion, nil }

// SocketCreate has no opinion by default.
func (Base) SocketCreate(Task, *SocketRequest) (Decision, error) { return NoOpinion, nil }

// BindCheck has no opinion by default.
func (Base) BindCheck(Task, *BindRequest) (Decision, error) { return NoOpinion, nil }

// IoctlCheck has no opinion by default.
func (Base) IoctlCheck(Task, *IoctlRequest) (Decision, error) { return NoOpinion, nil }

// SetuidCheck has no opinion by default.
func (Base) SetuidCheck(Task, int) (Decision, error) { return NoOpinion, nil }

// SetgidCheck has no opinion by default.
func (Base) SetgidCheck(Task, int) (Decision, error) { return NoOpinion, nil }

// ExecCheck allows by default with no credential update.
func (Base) ExecCheck(Task, *ExecRequest) (*CredUpdate, error) { return nil, nil }

// FileOpen has no opinion by default.
func (Base) FileOpen(Task, *OpenRequest) (Decision, error) { return NoOpinion, nil }

// TaskSyscall has no opinion by default.
func (Base) TaskSyscall(Task, int, string) (Decision, error) { return NoOpinion, nil }

// combine merges a new decision into an accumulator: Deny dominates, then
// DeferToExec, then Grant, then NoOpinion.
func combine(acc, d Decision) Decision {
	if d > acc {
		return d
	}
	return acc
}

// Chain composes several modules. Deny from any module wins, matching the
// restrictive stacking discipline of Linux LSMs; otherwise the strongest
// permissive decision is reported to the kernel.
type Chain struct {
	modules []Module
	// sysMods is the subset of modules implementing SyscallMediator, the
	// only ones TaskSyscall walks (see that hook's contract).
	sysMods []Module
	// tracer, when set, receives one decision event per hook evaluation
	// (tagged with the winning module) plus per-module decision counts.
	// It is installed once at kernel construction, before any concurrent
	// hook traffic.
	tracer *trace.Tracer
	// sysAllow counts TaskSyscall evaluations where every module had no
	// opinion. That hook runs on every syscall's hot path, so the
	// unanimous-allow case lands in one atomic (surfaced as the
	// lsm.syscall.allow fast-path counter in /proc/trace/stats) instead
	// of the per-call observe/count machinery.
	sysAllow atomic.Uint64
}

// NewChain creates a chain over the given modules (evaluated in order).
func NewChain(modules ...Module) *Chain {
	c := &Chain{}
	for _, m := range modules {
		c.Register(m)
	}
	return c
}

// Register appends a module to the chain.
func (c *Chain) Register(m Module) {
	c.modules = append(c.modules, m)
	if _, ok := m.(SyscallMediator); ok {
		c.sysMods = append(c.sysMods, m)
	}
}

// Modules returns the registered modules in evaluation order.
func (c *Chain) Modules() []Module { return c.modules }

// SetTracer installs the trace sink for hook decisions. Must be called
// before the chain sees concurrent traffic (the kernel does it at boot).
func (c *Chain) SetTracer(tr *trace.Tracer) {
	c.tracer = tr
	if tr != nil {
		tr.RegisterCounter("lsm.syscall.allow", func() uint64 { return c.sysAllow.Load() })
	}
}

// Name implements Module for nested chains.
func (c *Chain) Name() string { return "chain" }

type hookFunc func(m Module) (Decision, error)

// run evaluates hook across the chain. A Deny — or an error, which is
// treated as Deny — short-circuits; otherwise the strongest permissive
// decision accumulates. The winning module (the denier, or the module
// whose opinion raised the accumulator last) is reported to the tracer;
// an empty winner means every module deferred to base policy.
func (c *Chain) run(hook string, t Task, f hookFunc) (Decision, error) {
	var start time.Time
	if c.tracer != nil {
		start = time.Now()
	}
	acc := NoOpinion
	winner := ""
	for _, m := range c.modules {
		dec, err := f(m)
		c.count(hook, m.Name(), dec, err)
		if dec == Deny || err != nil {
			c.observe(hook, t, Deny, m.Name(), err, start)
			return Deny, err
		}
		if next := combine(acc, dec); next != acc {
			acc = next
			winner = m.Name()
		}
	}
	c.observe(hook, t, acc, winner, nil, start)
	return acc, nil
}

// count bumps the per-module decision counter for one consulted module.
func (c *Chain) count(hook, module string, dec Decision, err error) {
	if c.tracer == nil {
		return
	}
	if err != nil {
		dec = Deny
	}
	c.tracer.CountDecision(hook, module, dec.String())
}

// observe emits the hook's decision event.
func (c *Chain) observe(hook string, t Task, dec Decision, winner string, err error, start time.Time) {
	if c.tracer == nil {
		return
	}
	pid, uid := 0, -1
	if t != nil {
		pid, uid = t.PID(), t.UID()
	}
	c.tracer.LSMDecision(hook, pid, uid, dec.String(), winner, err, time.Since(start))
}

// MountCheck runs the hook across the chain.
func (c *Chain) MountCheck(t Task, req *MountRequest) (Decision, error) {
	return c.run("MountCheck", t, func(m Module) (Decision, error) { return m.MountCheck(t, req) })
}

// UmountCheck runs the hook across the chain.
func (c *Chain) UmountCheck(t Task, req *UmountRequest) (Decision, error) {
	return c.run("UmountCheck", t, func(m Module) (Decision, error) { return m.UmountCheck(t, req) })
}

// SocketCreate runs the hook across the chain.
func (c *Chain) SocketCreate(t Task, req *SocketRequest) (Decision, error) {
	return c.run("SocketCreate", t, func(m Module) (Decision, error) { return m.SocketCreate(t, req) })
}

// BindCheck runs the hook across the chain.
func (c *Chain) BindCheck(t Task, req *BindRequest) (Decision, error) {
	return c.run("BindCheck", t, func(m Module) (Decision, error) { return m.BindCheck(t, req) })
}

// IoctlCheck runs the hook across the chain.
func (c *Chain) IoctlCheck(t Task, req *IoctlRequest) (Decision, error) {
	return c.run("IoctlCheck", t, func(m Module) (Decision, error) { return m.IoctlCheck(t, req) })
}

// SetuidCheck runs the hook across the chain.
func (c *Chain) SetuidCheck(t Task, targetUID int) (Decision, error) {
	return c.run("SetuidCheck", t, func(m Module) (Decision, error) { return m.SetuidCheck(t, targetUID) })
}

// SetgidCheck runs the hook across the chain.
func (c *Chain) SetgidCheck(t Task, targetGID int) (Decision, error) {
	return c.run("SetgidCheck", t, func(m Module) (Decision, error) { return m.SetgidCheck(t, targetGID) })
}

// ExecCheck runs the hook across the chain; the first non-nil CredUpdate is
// kept (modules later in the chain still get to veto).
func (c *Chain) ExecCheck(t Task, req *ExecRequest) (*CredUpdate, error) {
	var start time.Time
	if c.tracer != nil {
		start = time.Now()
	}
	var update *CredUpdate
	winner := ""
	for _, m := range c.modules {
		u, err := m.ExecCheck(t, req)
		if err != nil {
			c.count("ExecCheck", m.Name(), Deny, err)
			c.observe("ExecCheck", t, Deny, m.Name(), err, start)
			return nil, err
		}
		dec := NoOpinion
		if u != nil {
			dec = Grant
		}
		c.count("ExecCheck", m.Name(), dec, nil)
		if update == nil && u != nil {
			update = u
			winner = m.Name()
		}
	}
	dec := NoOpinion
	if update != nil {
		dec = Grant
	}
	c.observe("ExecCheck", t, dec, winner, nil, start)
	return update, nil
}

// FileOpen runs the hook across the chain.
func (c *Chain) FileOpen(t Task, req *OpenRequest) (Decision, error) {
	return c.run("FileOpen", t, func(m Module) (Decision, error) { return m.FileOpen(t, req) })
}

// TaskSyscall runs the syscall-entry hook across the chain. The chain
// discipline is the same as run's — Deny or an error short-circuits,
// otherwise the strongest permissive decision wins — but the hook sits on
// every syscall's hot path, so the overwhelmingly common unanimous
// no-opinion outcome bypasses the per-call count/observe machinery and
// bumps the lsm.syscall.allow fast-path counter instead. Effectual
// decisions (a deny, a grant, a module error) still flow through the
// count and observe path, so they appear in /proc/trace/stats exactly
// like every other hook's. Latency is not separately sampled here: the
// per-syscall histograms already bracket the prologue. Only modules
// registered as SyscallMediator are consulted.
func (c *Chain) TaskSyscall(t Task, sysno int, name string) (Decision, error) {
	acc := NoOpinion
	winner := ""
	for _, m := range c.sysMods {
		dec, err := m.TaskSyscall(t, sysno, name)
		if dec == Deny || err != nil {
			c.count("TaskSyscall", m.Name(), dec, err)
			c.observe("TaskSyscall", t, Deny, m.Name(), err, time.Now())
			return Deny, err
		}
		if next := combine(acc, dec); next != acc {
			acc = next
			winner = m.Name()
		}
	}
	if acc == NoOpinion {
		c.sysAllow.Add(1)
		return NoOpinion, nil
	}
	c.count("TaskSyscall", winner, acc, nil)
	c.observe("TaskSyscall", t, acc, winner, nil, time.Now())
	return acc, nil
}

// ResolveGroups queries the first module implementing GroupResolver.
func (c *Chain) ResolveGroups(uid int) ([]int, bool) {
	for _, m := range c.modules {
		if r, ok := m.(GroupResolver); ok {
			if groups, ok := r.ResolveGroups(uid); ok {
				return groups, true
			}
		}
	}
	return nil, false
}

var _ Module = (*Chain)(nil)
