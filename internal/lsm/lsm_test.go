package lsm

import (
	"errors"
	"testing"

	"protego/internal/caps"
	"protego/internal/errno"
	"protego/internal/trace"
)

// scriptedModule returns fixed decisions for chain-combination tests.
type scriptedModule struct {
	Base
	name     string
	mount    Decision
	mountErr error
	setuid   Decision
	groups   []int
	update   *CredUpdate
	execErr  error

	// mountCalls counts MountCheck invocations (short-circuit tests).
	mountCalls int
}

func (m *scriptedModule) Name() string { return m.name }
func (m *scriptedModule) MountCheck(Task, *MountRequest) (Decision, error) {
	m.mountCalls++
	return m.mount, m.mountErr
}
func (m *scriptedModule) SetuidCheck(Task, int) (Decision, error) { return m.setuid, nil }
func (m *scriptedModule) ExecCheck(Task, *ExecRequest) (*CredUpdate, error) {
	return m.update, m.execErr
}
func (m *scriptedModule) ResolveGroups(int) ([]int, bool) {
	if m.groups == nil {
		return nil, false
	}
	return m.groups, true
}

// nullTask satisfies Task for chain tests.
type nullTask struct {
	NullFilterSlot
	blobs map[string]any
}

func (n *nullTask) PID() int              { return 1 }
func (n *nullTask) UID() int              { return 1000 }
func (n *nullTask) EUID() int             { return 1000 }
func (n *nullTask) GID() int              { return 100 }
func (n *nullTask) EGID() int             { return 100 }
func (n *nullTask) Groups() []int         { return nil }
func (n *nullTask) Capable(caps.Cap) bool { return false }
func (n *nullTask) BinaryPath() string    { return "/bin/x" }
func (n *nullTask) SecurityBlob(k string) any {
	return n.blobs[k]
}
func (n *nullTask) SetSecurityBlob(k string, v any) {
	if n.blobs == nil {
		n.blobs = map[string]any{}
	}
	n.blobs[k] = v
}

func TestDecisionString(t *testing.T) {
	cases := map[Decision]string{
		NoOpinion: "no-opinion", Grant: "grant", DeferToExec: "defer-to-exec",
		Deny: "deny", Decision(99): "invalid",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("%d: %q", d, d.String())
		}
	}
}

func TestChainDenyWins(t *testing.T) {
	c := NewChain(
		&scriptedModule{name: "a", mount: Grant},
		&scriptedModule{name: "b", mount: Deny, mountErr: errno.EACCES},
	)
	dec, err := c.MountCheck(&nullTask{}, &MountRequest{})
	if dec != Deny || err != errno.EACCES {
		t.Fatalf("dec=%v err=%v", dec, err)
	}
}

func TestChainGrantBeatsNoOpinion(t *testing.T) {
	c := NewChain(
		&scriptedModule{name: "a", mount: NoOpinion},
		&scriptedModule{name: "b", mount: Grant},
	)
	dec, err := c.MountCheck(&nullTask{}, &MountRequest{})
	if dec != Grant || err != nil {
		t.Fatalf("dec=%v err=%v", dec, err)
	}
}

func TestChainDeferBeatsGrant(t *testing.T) {
	c := NewChain(
		&scriptedModule{name: "a", setuid: Grant},
		&scriptedModule{name: "b", setuid: DeferToExec},
	)
	dec, err := c.SetuidCheck(&nullTask{}, 0)
	if dec != DeferToExec || err != nil {
		t.Fatalf("dec=%v err=%v", dec, err)
	}
}

func TestChainEmptyIsNoOpinion(t *testing.T) {
	c := NewChain()
	dec, err := c.MountCheck(&nullTask{}, &MountRequest{})
	if dec != NoOpinion || err != nil {
		t.Fatalf("dec=%v err=%v", dec, err)
	}
}

func TestChainExecFirstUpdateWins(t *testing.T) {
	uid1, uid2 := 1, 2
	c := NewChain(
		&scriptedModule{name: "a", update: &CredUpdate{UID: &uid1}},
		&scriptedModule{name: "b", update: &CredUpdate{UID: &uid2}},
	)
	u, err := c.ExecCheck(&nullTask{}, &ExecRequest{})
	if err != nil || u == nil || *u.UID != 1 {
		t.Fatalf("update: %+v %v", u, err)
	}
}

func TestChainExecVeto(t *testing.T) {
	c := NewChain(
		&scriptedModule{name: "a"},
		&scriptedModule{name: "b", execErr: errno.EPERM},
	)
	if _, err := c.ExecCheck(&nullTask{}, &ExecRequest{}); !errors.Is(err, errno.EPERM) {
		t.Fatalf("err=%v", err)
	}
}

func TestChainResolveGroups(t *testing.T) {
	c := NewChain(
		&scriptedModule{name: "a"},                      // no resolver data
		&scriptedModule{name: "b", groups: []int{7, 9}}, // resolves
	)
	groups, ok := c.ResolveGroups(1000)
	if !ok || len(groups) != 2 {
		t.Fatalf("groups: %v %v", groups, ok)
	}
	empty := NewChain(&scriptedModule{name: "a"})
	if _, ok := empty.ResolveGroups(1000); ok {
		t.Fatal("resolved from nothing")
	}
}

func TestBaseDefaults(t *testing.T) {
	var b Base
	task := &nullTask{}
	if d, err := b.MountCheck(task, nil); d != NoOpinion || err != nil {
		t.Fatal("MountCheck default")
	}
	if d, _ := b.UmountCheck(task, nil); d != NoOpinion {
		t.Fatal("UmountCheck default")
	}
	if d, _ := b.SocketCreate(task, nil); d != NoOpinion {
		t.Fatal("SocketCreate default")
	}
	if d, _ := b.BindCheck(task, nil); d != NoOpinion {
		t.Fatal("BindCheck default")
	}
	if d, _ := b.IoctlCheck(task, nil); d != NoOpinion {
		t.Fatal("IoctlCheck default")
	}
	if d, _ := b.SetuidCheck(task, 0); d != NoOpinion {
		t.Fatal("SetuidCheck default")
	}
	if d, _ := b.SetgidCheck(task, 0); d != NoOpinion {
		t.Fatal("SetgidCheck default")
	}
	if u, err := b.ExecCheck(task, nil); u != nil || err != nil {
		t.Fatal("ExecCheck default")
	}
	if d, _ := b.FileOpen(task, nil); d != NoOpinion {
		t.Fatal("FileOpen default")
	}
}

func TestCombinePrecedence(t *testing.T) {
	order := []Decision{NoOpinion, Grant, DeferToExec, Deny}
	for i, weaker := range order {
		for _, stronger := range order[i:] {
			if got := combine(weaker, stronger); got != stronger {
				t.Errorf("combine(%v, %v) = %v, want %v", weaker, stronger, got, stronger)
			}
			if got := combine(stronger, weaker); got != stronger {
				t.Errorf("combine(%v, %v) = %v, want %v", stronger, weaker, got, stronger)
			}
		}
	}
}

func TestChainDenyShortCircuits(t *testing.T) {
	tail := &scriptedModule{name: "tail", mount: Grant}
	c := NewChain(
		&scriptedModule{name: "denier", mount: Deny},
		tail,
	)
	dec, err := c.MountCheck(&nullTask{}, &MountRequest{})
	if dec != Deny {
		t.Fatalf("dec=%v err=%v", dec, err)
	}
	if tail.mountCalls != 0 {
		t.Fatalf("module after denier consulted %d times, want 0", tail.mountCalls)
	}
}

func TestChainFirstErrorShortCircuits(t *testing.T) {
	tail := &scriptedModule{name: "tail", mount: Grant}
	c := NewChain(
		// An error with a permissive decision still aborts the chain as
		// Deny: a module that cannot evaluate must fail closed.
		&scriptedModule{name: "broken", mount: Grant, mountErr: errno.EIO},
		tail,
	)
	dec, err := c.MountCheck(&nullTask{}, &MountRequest{})
	if dec != Deny || !errors.Is(err, errno.EIO) {
		t.Fatalf("dec=%v err=%v, want Deny/EIO", dec, err)
	}
	if tail.mountCalls != 0 {
		t.Fatalf("module after error consulted %d times, want 0", tail.mountCalls)
	}
}

func TestChainTracerWinnerAndCounters(t *testing.T) {
	tr := trace.New(64)
	c := NewChain(
		&scriptedModule{name: "quiet", mount: NoOpinion},
		&scriptedModule{name: "granter", mount: Grant},
	)
	c.SetTracer(tr)
	if dec, _ := c.MountCheck(&nullTask{}, &MountRequest{}); dec != Grant {
		t.Fatalf("dec=%v", dec)
	}

	evs := tr.SnapshotKind(trace.KindLSMDecision)
	if len(evs) != 1 {
		t.Fatalf("decision events = %d, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Name != "MountCheck" || ev.Module != "granter" || ev.Decision != "grant" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.PID != 1 || ev.UID != 1000 {
		t.Fatalf("event pid/uid = %d/%d", ev.PID, ev.UID)
	}

	ctrs := tr.Counters()
	if ctrs[trace.CounterKey{Hook: "MountCheck", Module: "quiet", Decision: "no-opinion"}] != 1 {
		t.Fatalf("quiet counter missing: %v", ctrs)
	}
	if ctrs[trace.CounterKey{Hook: "MountCheck", Module: "granter", Decision: "grant"}] != 1 {
		t.Fatalf("granter counter missing: %v", ctrs)
	}
	if tr.HookHistogram("MountCheck").Count != 1 {
		t.Fatalf("hook histogram count = %d", tr.HookHistogram("MountCheck").Count)
	}
}

func TestChainTracerDenierIsWinner(t *testing.T) {
	tr := trace.New(64)
	c := NewChain(
		&scriptedModule{name: "granter", mount: Grant},
		&scriptedModule{name: "denier", mount: Deny, mountErr: errno.EACCES},
	)
	c.SetTracer(tr)
	c.MountCheck(&nullTask{}, &MountRequest{})
	evs := tr.SnapshotKind(trace.KindLSMDecision)
	if len(evs) != 1 || evs[0].Module != "denier" || evs[0].Decision != "deny" {
		t.Fatalf("events = %+v", evs)
	}
	if evs[0].Err == "" {
		t.Fatal("deny event should carry the error")
	}
}

func TestChainTracerExecCheck(t *testing.T) {
	tr := trace.New(64)
	uid := 0
	c := NewChain(
		&scriptedModule{name: "quiet"},
		&scriptedModule{name: "delegator", update: &CredUpdate{UID: &uid}},
	)
	c.SetTracer(tr)
	if _, err := c.ExecCheck(&nullTask{}, &ExecRequest{}); err != nil {
		t.Fatal(err)
	}
	evs := tr.SnapshotKind(trace.KindLSMDecision)
	if len(evs) != 1 || evs[0].Name != "ExecCheck" || evs[0].Module != "delegator" || evs[0].Decision != "grant" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestChainRegister(t *testing.T) {
	c := NewChain()
	c.Register(&scriptedModule{name: "late", mount: Grant})
	if len(c.Modules()) != 1 {
		t.Fatal("register failed")
	}
	dec, _ := c.MountCheck(&nullTask{}, &MountRequest{})
	if dec != Grant {
		t.Fatal("late module ignored")
	}
}
