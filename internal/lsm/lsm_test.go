package lsm

import (
	"errors"
	"testing"

	"protego/internal/caps"
	"protego/internal/errno"
)

// scriptedModule returns fixed decisions for chain-combination tests.
type scriptedModule struct {
	Base
	name     string
	mount    Decision
	mountErr error
	setuid   Decision
	groups   []int
	update   *CredUpdate
	execErr  error
}

func (m *scriptedModule) Name() string { return m.name }
func (m *scriptedModule) MountCheck(Task, *MountRequest) (Decision, error) {
	return m.mount, m.mountErr
}
func (m *scriptedModule) SetuidCheck(Task, int) (Decision, error) { return m.setuid, nil }
func (m *scriptedModule) ExecCheck(Task, *ExecRequest) (*CredUpdate, error) {
	return m.update, m.execErr
}
func (m *scriptedModule) ResolveGroups(int) ([]int, bool) {
	if m.groups == nil {
		return nil, false
	}
	return m.groups, true
}

// nullTask satisfies Task for chain tests.
type nullTask struct{ blobs map[string]any }

func (n *nullTask) PID() int              { return 1 }
func (n *nullTask) UID() int              { return 1000 }
func (n *nullTask) EUID() int             { return 1000 }
func (n *nullTask) GID() int              { return 100 }
func (n *nullTask) EGID() int             { return 100 }
func (n *nullTask) Groups() []int         { return nil }
func (n *nullTask) Capable(caps.Cap) bool { return false }
func (n *nullTask) BinaryPath() string    { return "/bin/x" }
func (n *nullTask) SecurityBlob(k string) any {
	return n.blobs[k]
}
func (n *nullTask) SetSecurityBlob(k string, v any) {
	if n.blobs == nil {
		n.blobs = map[string]any{}
	}
	n.blobs[k] = v
}

func TestDecisionString(t *testing.T) {
	cases := map[Decision]string{
		NoOpinion: "no-opinion", Grant: "grant", DeferToExec: "defer-to-exec",
		Deny: "deny", Decision(99): "invalid",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("%d: %q", d, d.String())
		}
	}
}

func TestChainDenyWins(t *testing.T) {
	c := NewChain(
		&scriptedModule{name: "a", mount: Grant},
		&scriptedModule{name: "b", mount: Deny, mountErr: errno.EACCES},
	)
	dec, err := c.MountCheck(&nullTask{}, &MountRequest{})
	if dec != Deny || err != errno.EACCES {
		t.Fatalf("dec=%v err=%v", dec, err)
	}
}

func TestChainGrantBeatsNoOpinion(t *testing.T) {
	c := NewChain(
		&scriptedModule{name: "a", mount: NoOpinion},
		&scriptedModule{name: "b", mount: Grant},
	)
	dec, err := c.MountCheck(&nullTask{}, &MountRequest{})
	if dec != Grant || err != nil {
		t.Fatalf("dec=%v err=%v", dec, err)
	}
}

func TestChainDeferBeatsGrant(t *testing.T) {
	c := NewChain(
		&scriptedModule{name: "a", setuid: Grant},
		&scriptedModule{name: "b", setuid: DeferToExec},
	)
	dec, err := c.SetuidCheck(&nullTask{}, 0)
	if dec != DeferToExec || err != nil {
		t.Fatalf("dec=%v err=%v", dec, err)
	}
}

func TestChainEmptyIsNoOpinion(t *testing.T) {
	c := NewChain()
	dec, err := c.MountCheck(&nullTask{}, &MountRequest{})
	if dec != NoOpinion || err != nil {
		t.Fatalf("dec=%v err=%v", dec, err)
	}
}

func TestChainExecFirstUpdateWins(t *testing.T) {
	uid1, uid2 := 1, 2
	c := NewChain(
		&scriptedModule{name: "a", update: &CredUpdate{UID: &uid1}},
		&scriptedModule{name: "b", update: &CredUpdate{UID: &uid2}},
	)
	u, err := c.ExecCheck(&nullTask{}, &ExecRequest{})
	if err != nil || u == nil || *u.UID != 1 {
		t.Fatalf("update: %+v %v", u, err)
	}
}

func TestChainExecVeto(t *testing.T) {
	c := NewChain(
		&scriptedModule{name: "a"},
		&scriptedModule{name: "b", execErr: errno.EPERM},
	)
	if _, err := c.ExecCheck(&nullTask{}, &ExecRequest{}); !errors.Is(err, errno.EPERM) {
		t.Fatalf("err=%v", err)
	}
}

func TestChainResolveGroups(t *testing.T) {
	c := NewChain(
		&scriptedModule{name: "a"},                      // no resolver data
		&scriptedModule{name: "b", groups: []int{7, 9}}, // resolves
	)
	groups, ok := c.ResolveGroups(1000)
	if !ok || len(groups) != 2 {
		t.Fatalf("groups: %v %v", groups, ok)
	}
	empty := NewChain(&scriptedModule{name: "a"})
	if _, ok := empty.ResolveGroups(1000); ok {
		t.Fatal("resolved from nothing")
	}
}

func TestBaseDefaults(t *testing.T) {
	var b Base
	task := &nullTask{}
	if d, err := b.MountCheck(task, nil); d != NoOpinion || err != nil {
		t.Fatal("MountCheck default")
	}
	if d, _ := b.UmountCheck(task, nil); d != NoOpinion {
		t.Fatal("UmountCheck default")
	}
	if d, _ := b.SocketCreate(task, nil); d != NoOpinion {
		t.Fatal("SocketCreate default")
	}
	if d, _ := b.BindCheck(task, nil); d != NoOpinion {
		t.Fatal("BindCheck default")
	}
	if d, _ := b.IoctlCheck(task, nil); d != NoOpinion {
		t.Fatal("IoctlCheck default")
	}
	if d, _ := b.SetuidCheck(task, 0); d != NoOpinion {
		t.Fatal("SetuidCheck default")
	}
	if d, _ := b.SetgidCheck(task, 0); d != NoOpinion {
		t.Fatal("SetgidCheck default")
	}
	if u, err := b.ExecCheck(task, nil); u != nil || err != nil {
		t.Fatal("ExecCheck default")
	}
	if d, _ := b.FileOpen(task, nil); d != NoOpinion {
		t.Fatal("FileOpen default")
	}
}

func TestChainRegister(t *testing.T) {
	c := NewChain()
	c.Register(&scriptedModule{name: "late", mount: Grant})
	if len(c.Modules()) != 1 {
		t.Fatal("register failed")
	}
	dec, _ := c.MountCheck(&nullTask{}, &MountRequest{})
	if dec != Grant {
		t.Fatal("late module ignored")
	}
}
