package caps

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCapString(t *testing.T) {
	if CAP_SYS_ADMIN.String() != "CAP_SYS_ADMIN" {
		t.Fatalf("got %q", CAP_SYS_ADMIN.String())
	}
	if Cap(200).String() != "CAP_200" {
		t.Fatalf("got %q", Cap(200).String())
	}
	if !CAP_NET_RAW.Valid() || Cap(NumCaps).Valid() {
		t.Fatal("validity wrong")
	}
}

func TestParseCap(t *testing.T) {
	cases := []struct {
		in   string
		want Cap
		ok   bool
	}{
		{"CAP_SYS_ADMIN", CAP_SYS_ADMIN, true},
		{"cap_net_raw", CAP_NET_RAW, true},
		{"NET_RAW", CAP_NET_RAW, true},
		{" setuid ", CAP_SETUID, true},
		{"CAP_NOT_A_THING", 0, false},
	}
	for _, c := range cases {
		got, ok := ParseCap(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ParseCap(%q) = %v,%v", c.in, got, ok)
		}
	}
}

// Property: every defined capability's name parses back to itself.
func TestParseRoundTrip(t *testing.T) {
	for c := Cap(0); c < NumCaps; c++ {
		got, ok := ParseCap(c.String())
		if !ok || got != c {
			t.Fatalf("round trip %v", c)
		}
	}
}

func TestSetOperations(t *testing.T) {
	s := Of(CAP_SETUID, CAP_SETGID)
	if !s.Has(CAP_SETUID) || s.Has(CAP_SYS_ADMIN) {
		t.Fatal("membership wrong")
	}
	if s.Count() != 2 {
		t.Fatalf("count = %d", s.Count())
	}
	s = s.Remove(CAP_SETUID)
	if s.Has(CAP_SETUID) || !s.Has(CAP_SETGID) {
		t.Fatal("remove wrong")
	}
	if !Empty.IsEmpty() || Full().IsEmpty() {
		t.Fatal("emptiness wrong")
	}
	if Full().Count() != NumCaps {
		t.Fatalf("full count = %d", Full().Count())
	}
	u := Of(CAP_CHOWN).Union(Of(CAP_KILL))
	if u.Count() != 2 {
		t.Fatal("union wrong")
	}
	if u.Intersect(Of(CAP_KILL)) != Of(CAP_KILL) {
		t.Fatal("intersect wrong")
	}
}

func TestSetString(t *testing.T) {
	if Empty.String() != "(none)" {
		t.Fatalf("empty: %q", Empty.String())
	}
	if Full().String() != "(all)" {
		t.Fatalf("full: %q", Full().String())
	}
	s := Of(CAP_SETUID, CAP_NET_RAW).String()
	if !strings.Contains(s, "CAP_SETUID") || !strings.Contains(s, "CAP_NET_RAW") {
		t.Fatalf("set: %q", s)
	}
}

func TestListSorted(t *testing.T) {
	list := Of(CAP_SYS_ADMIN, CAP_CHOWN, CAP_NET_RAW).List()
	if len(list) != 3 || list[0] != CAP_CHOWN || list[2] != CAP_SYS_ADMIN {
		t.Fatalf("list: %v", list)
	}
}

// Properties: add/remove are inverses; union is commutative; count equals
// list length.
func TestSetProperties(t *testing.T) {
	f := func(bits uint64, capN uint8) bool {
		s := Set(bits) & Full()
		c := Cap(capN % NumCaps)
		if !s.Add(c).Has(c) {
			return false
		}
		if s.Remove(c).Has(c) {
			return false
		}
		if s.Count() != len(s.List()) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
