// Package caps models Linux file system capabilities — the coarse, 36-way
// fragmentation of root privilege studied in Section 3.2 of the Protego
// paper. The simulated kernel grants all capabilities to euid-0 tasks by
// default (as Linux does) and LSMs consult these bits through the Capable
// hook. The point of the Protego reproduction is precisely that these bits
// are too coarse: a Cap answers "is the requester root-ish?", never "may any
// user take this action on this object?".
package caps

import (
	"fmt"
	"strings"
)

// Cap identifies a single Linux capability.
type Cap uint8

// Capability numbers follow include/uapi/linux/capability.h.
const (
	CAP_CHOWN            Cap = 0
	CAP_DAC_OVERRIDE     Cap = 1
	CAP_DAC_READ_SEARCH  Cap = 2
	CAP_FOWNER           Cap = 3
	CAP_FSETID           Cap = 4
	CAP_KILL             Cap = 5
	CAP_SETGID           Cap = 6
	CAP_SETUID           Cap = 7
	CAP_SETPCAP          Cap = 8
	CAP_LINUX_IMMUTABLE  Cap = 9
	CAP_NET_BIND_SERVICE Cap = 10
	CAP_NET_BROADCAST    Cap = 11
	CAP_NET_ADMIN        Cap = 12
	CAP_NET_RAW          Cap = 13
	CAP_IPC_LOCK         Cap = 14
	CAP_IPC_OWNER        Cap = 15
	CAP_SYS_MODULE       Cap = 16
	CAP_SYS_RAWIO        Cap = 17
	CAP_SYS_CHROOT       Cap = 18
	CAP_SYS_PTRACE       Cap = 19
	CAP_SYS_PACCT        Cap = 20
	CAP_SYS_ADMIN        Cap = 21
	CAP_SYS_BOOT         Cap = 22
	CAP_SYS_NICE         Cap = 23
	CAP_SYS_RESOURCE     Cap = 24
	CAP_SYS_TIME         Cap = 25
	CAP_SYS_TTY_CONFIG   Cap = 26
	CAP_MKNOD            Cap = 27
	CAP_LEASE            Cap = 28
	CAP_AUDIT_WRITE      Cap = 29
	CAP_AUDIT_CONTROL    Cap = 30
	CAP_SETFCAP          Cap = 31
	CAP_MAC_OVERRIDE     Cap = 32
	CAP_MAC_ADMIN        Cap = 33
	CAP_SYSLOG           Cap = 34
	CAP_WAKE_ALARM       Cap = 35

	// NumCaps is the number of defined capabilities.
	NumCaps = 36
)

var capNames = [NumCaps]string{
	"CAP_CHOWN", "CAP_DAC_OVERRIDE", "CAP_DAC_READ_SEARCH", "CAP_FOWNER",
	"CAP_FSETID", "CAP_KILL", "CAP_SETGID", "CAP_SETUID", "CAP_SETPCAP",
	"CAP_LINUX_IMMUTABLE", "CAP_NET_BIND_SERVICE", "CAP_NET_BROADCAST",
	"CAP_NET_ADMIN", "CAP_NET_RAW", "CAP_IPC_LOCK", "CAP_IPC_OWNER",
	"CAP_SYS_MODULE", "CAP_SYS_RAWIO", "CAP_SYS_CHROOT", "CAP_SYS_PTRACE",
	"CAP_SYS_PACCT", "CAP_SYS_ADMIN", "CAP_SYS_BOOT", "CAP_SYS_NICE",
	"CAP_SYS_RESOURCE", "CAP_SYS_TIME", "CAP_SYS_TTY_CONFIG", "CAP_MKNOD",
	"CAP_LEASE", "CAP_AUDIT_WRITE", "CAP_AUDIT_CONTROL", "CAP_SETFCAP",
	"CAP_MAC_OVERRIDE", "CAP_MAC_ADMIN", "CAP_SYSLOG", "CAP_WAKE_ALARM",
}

// String returns the symbolic name of the capability.
func (c Cap) String() string {
	if int(c) < len(capNames) {
		return capNames[c]
	}
	return fmt.Sprintf("CAP_%d", uint8(c))
}

// Valid reports whether c names a defined capability.
func (c Cap) Valid() bool { return int(c) < NumCaps }

// ParseCap resolves a symbolic capability name ("CAP_SYS_ADMIN",
// case-insensitive, the CAP_ prefix optional) to its Cap value.
func ParseCap(name string) (Cap, bool) {
	n := strings.ToUpper(strings.TrimSpace(name))
	if !strings.HasPrefix(n, "CAP_") {
		n = "CAP_" + n
	}
	for i, s := range capNames {
		if s == n {
			return Cap(i), true
		}
	}
	return 0, false
}

// Set is a bitmask of capabilities. The zero value is the empty set.
type Set uint64

// Empty is the capability set with no capabilities.
const Empty Set = 0

// Full returns the set containing every defined capability — what Linux
// grants a process running as root.
func Full() Set {
	return Set(1)<<NumCaps - 1
}

// Of builds a Set from individual capabilities.
func Of(cs ...Cap) Set {
	var s Set
	for _, c := range cs {
		s = s.Add(c)
	}
	return s
}

// Add returns s with c included.
func (s Set) Add(c Cap) Set { return s | 1<<uint(c) }

// Remove returns s with c excluded.
func (s Set) Remove(c Cap) Set { return s &^ (1 << uint(c)) }

// Has reports whether c is in the set.
func (s Set) Has(c Cap) bool { return s&(1<<uint(c)) != 0 }

// Union returns the union of s and t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns the intersection of s and t.
func (s Set) Intersect(t Set) Set { return s & t }

// IsEmpty reports whether no capability is present.
func (s Set) IsEmpty() bool { return s == 0 }

// Count returns the number of capabilities in the set.
func (s Set) Count() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// List returns the capabilities present, in numeric order.
func (s Set) List() []Cap {
	var out []Cap
	for c := Cap(0); c < NumCaps; c++ {
		if s.Has(c) {
			out = append(out, c)
		}
	}
	return out
}

// String renders the set as a comma-separated list of symbolic names; the
// empty set renders as "(none)" and the full set as "(all)".
func (s Set) String() string {
	if s.IsEmpty() {
		return "(none)"
	}
	if s == Full() {
		return "(all)"
	}
	names := make([]string, 0, s.Count())
	for _, c := range s.List() {
		names = append(names, c.String())
	}
	return strings.Join(names, ",")
}
