package world

import (
	"strings"
	"testing"
	"time"

	"protego/internal/errno"
	"protego/internal/kernel"
	"protego/internal/userspace"
	"protego/internal/vfs"
)

// bothModes runs a scenario against the baseline and Protego images — the
// functional-equivalence methodology of §5.3 ("we validate that the
// utilities have the same output and effects on both systems").
func bothModes(t *testing.T, fn func(t *testing.T, m *Machine)) {
	t.Helper()
	for _, mode := range []kernel.Mode{kernel.ModeLinux, kernel.ModeProtego} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			m, err := Build(Options{Mode: mode})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			fn(t, m)
		})
	}
}

func session(t *testing.T, m *Machine, user string) *kernel.Task {
	t.Helper()
	s, err := m.Session(user)
	if err != nil {
		t.Fatalf("session %s: %v", user, err)
	}
	return s
}

func TestBuildBothModes(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		if !m.K.FS.Exists(vfs.RootCred, "/etc/fstab") {
			t.Fatal("missing /etc/fstab")
		}
		ino, err := m.K.FS.Lookup(vfs.RootCred, userspace.BinMount)
		if err != nil {
			t.Fatalf("mount binary: %v", err)
		}
		wantSetuid := m.K.Mode == kernel.ModeLinux
		if ino.Mode.IsSetuid() != wantSetuid {
			t.Fatalf("mount setuid bit = %v, want %v (mode %s)", ino.Mode.IsSetuid(), wantSetuid, m.K.Mode)
		}
	})
}

func TestSetuidBitCount(t *testing.T) {
	// Protego's headline claim: the setuid bit is eliminated from every
	// studied binary.
	m, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	for _, bin := range SetuidBinaries() {
		ino, err := m.K.FS.Lookup(vfs.RootCred, bin)
		if err != nil {
			t.Fatalf("%s: %v", bin, err)
		}
		if ino.Mode.IsSetuid() {
			t.Errorf("%s still setuid on Protego", bin)
		}
	}
}

// --- Mount (§4.2, Figure 1) ---

func TestUserMountWhitelisted(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, out, errOut, err := m.Run(alice, []string{userspace.BinMount, "/dev/cdrom", "/cdrom"}, nil)
		if code != 0 {
			t.Fatalf("mount failed: code=%d out=%q err=%q execErr=%v", code, out, errOut, err)
		}
		mnt := m.K.FS.MountAt("/cdrom")
		if mnt == nil || mnt.Device != "/dev/cdrom" {
			t.Fatalf("mount table: %+v", mnt)
		}
		if m.K.Mode == kernel.ModeProtego && mnt.MountedBy != UIDAlice {
			t.Fatalf("mounted by %d, want alice", mnt.MountedBy)
		}
	})
}

func TestUserMountNonWhitelistedDenied(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, _, errOut, _ := m.Run(alice, []string{userspace.BinMount, "/dev/sdc1", "/mnt/backup"}, nil)
		if code == 0 {
			t.Fatalf("non-whitelisted mount succeeded: %q", errOut)
		}
		if m.K.FS.MountAt("/mnt/backup") != nil {
			t.Fatal("mount appeared despite denial")
		}
	})
}

func TestUserMountBadOptionsDenied(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		// "suid" is not within the safe/whitelisted option set.
		code, _, _, _ := m.Run(alice, []string{userspace.BinMount, "-o", "suid", "/dev/cdrom", "/cdrom"}, nil)
		if code == 0 {
			t.Fatal("mount with unsafe option succeeded")
		}
	})
}

func TestRootMountAnything(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		root := session(t, m, "root")
		code, _, errOut, _ := m.Run(root, []string{userspace.BinMount, "/dev/sdc1", "/mnt/backup"}, nil)
		if code != 0 {
			t.Fatalf("root mount failed: %s", errOut)
		}
	})
}

func TestUmountPolicy(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		bob := session(t, m, "bob")
		// cdrom has "user": only the mounter may unmount.
		if code, _, e, _ := m.Run(alice, []string{userspace.BinMount, "/dev/cdrom", "/cdrom"}, nil); code != 0 {
			t.Fatalf("mount cdrom: %s", e)
		}
		if code, _, _, _ := m.Run(bob, []string{userspace.BinUmount, "/cdrom"}, nil); code == 0 {
			t.Fatal("bob unmounted alice's user mount")
		}
		if code, _, e, _ := m.Run(alice, []string{userspace.BinUmount, "/cdrom"}, nil); code != 0 {
			t.Fatalf("alice umount own: %s", e)
		}
		// usb has "users": anyone may unmount.
		if code, _, e, _ := m.Run(alice, []string{userspace.BinMount, "/dev/sdb1", "/media/usb"}, nil); code != 0 {
			t.Fatalf("mount usb: %s", e)
		}
		if code, _, e, _ := m.Run(bob, []string{userspace.BinUmount, "/media/usb"}, nil); code != 0 {
			t.Fatalf("bob umount users-mount: %s", e)
		}
	})
}

// --- Raw sockets (§4.1.1) ---

func TestPing(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, out, errOut, _ := m.Run(alice, []string{userspace.BinPing, "-c", "2", "10.0.0.2"}, nil)
		if code != 0 {
			t.Fatalf("ping failed: %q %q", out, errOut)
		}
		if !strings.Contains(out, "2 packets transmitted, 2 received") {
			t.Fatalf("ping output: %q", out)
		}
	})
}

func TestTracerouteAndMtrAndArping(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		for _, argv := range [][]string{
			{userspace.BinTraceroute, "10.0.0.2"},
			{userspace.BinMtr, "10.0.0.2"},
			{userspace.BinArping, "10.0.0.2"},
		} {
			code, out, errOut, _ := m.Run(alice, argv, nil)
			if code != 0 {
				t.Fatalf("%s failed: %q %q", argv[0], out, errOut)
			}
		}
	})
}

func TestRawSocketDirectProtego(t *testing.T) {
	// On Protego any user may open a raw socket directly — no trusted
	// binary required ("any unprivileged user [may] create her own
	// enhanced ping utility").
	m, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	alice := session(t, m, "alice")
	sock, err := m.K.Socket(alice, 2, 3, 1) // AF_INET, SOCK_RAW, ICMP
	if err != nil {
		t.Fatalf("raw socket: %v", err)
	}
	if !sock.UnprivRaw {
		t.Fatal("socket not tagged unprivileged-raw")
	}
}

func TestRawSocketDeniedOnLinux(t *testing.T) {
	m, err := BuildLinux()
	if err != nil {
		t.Fatal(err)
	}
	alice := session(t, m, "alice")
	if _, err := m.K.Socket(alice, 2, 3, 1); err != errno.EPERM {
		t.Fatalf("raw socket on baseline: got %v want EPERM", err)
	}
}

// --- Delegation (§4.3) ---

func TestSudoToRootWithPassword(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, out, errOut, _ := m.Run(alice, []string{userspace.BinSudo, "/usr/bin/id"}, AnswerWith(AlicePassword))
		if code != 0 {
			t.Fatalf("sudo id failed: %q %q", out, errOut)
		}
		if !strings.Contains(out, "uid=0 euid=0") {
			t.Fatalf("sudo id output: %q", out)
		}
	})
}

func TestSudoWrongPasswordDenied(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, out, _, _ := m.Run(alice, []string{userspace.BinSudo, "/usr/bin/id"}, AnswerWith("wrong"))
		if code == 0 {
			t.Fatalf("sudo with wrong password succeeded: %q", out)
		}
	})
}

func TestSudoNoPasswdRestrictedCommand(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		charlie := session(t, m, "charlie")
		// %wheel may run /bin/ls as root without a password...
		code, _, errOut, _ := m.Run(charlie, []string{userspace.BinSudo, "/bin/ls", "/root"}, nil)
		if code != 0 {
			t.Fatalf("charlie sudo ls: %s", errOut)
		}
		// ...but nothing else: the exec-time validation fails (EPERM at
		// exec, the paper's deliberate error-behaviour change).
		code, out, _, _ := m.Run(charlie, []string{userspace.BinSudo, "/usr/bin/id"}, nil)
		if code == 0 {
			t.Fatalf("charlie sudo id should fail: %q", out)
		}
	})
}

func TestSudoUnauthorizedUserDenied(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		bob := session(t, m, "bob")
		code, out, _, _ := m.Run(bob, []string{userspace.BinSudo, "/usr/bin/id"}, AnswerWith(BobPassword))
		if code == 0 {
			t.Fatalf("bob sudo id should fail: %q", out)
		}
	})
}

func TestSudoLateralDelegation(t *testing.T) {
	// The paper's motivating example: Alice allows Bob to run lpr with
	// her credentials (via /etc/sudoers.d/printing) — a lateral move
	// that never touches root on Protego.
	bothModes(t, func(t *testing.T, m *Machine) {
		bob := session(t, m, "bob")
		if err := m.K.WriteFile(bob, "/tmp/doc.txt", []byte("print me")); err != nil {
			t.Fatalf("write doc: %v", err)
		}
		code, _, errOut, _ := m.Run(bob,
			[]string{userspace.BinSudo, "-u", "alice", userspace.BinLpr, "/tmp/doc.txt"},
			AnswerWith(BobPassword))
		if code != 0 {
			t.Fatalf("bob lpr as alice: %s", errOut)
		}
		queue, err := m.K.FS.ReadFile(vfs.RootCred, "/var/spool/lpd/queue")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(queue), "uid=1000") {
			t.Fatalf("job not queued as alice: %q", queue)
		}
	})
}

func TestSuWithTargetPassword(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		charlie := session(t, m, "charlie")
		code, out, errOut, _ := m.Run(charlie,
			[]string{userspace.BinSu, "root", "-c", "/usr/bin/id"}, AnswerWith(RootPassword))
		if code != 0 {
			t.Fatalf("su failed: %q %q", out, errOut)
		}
		if !strings.Contains(out, "uid=0") {
			t.Fatalf("su id output: %q", out)
		}
	})
}

func TestSuWrongPasswordDenied(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		bob := session(t, m, "bob")
		code, out, _, _ := m.Run(bob, []string{userspace.BinSu, "root", "-c", "/usr/bin/id"}, AnswerWith("nope"))
		if code == 0 {
			t.Fatalf("su with wrong password succeeded: %q", out)
		}
		if strings.Contains(out, "uid=0") {
			t.Fatalf("gained root: %q", out)
		}
	})
}

func TestSuLateralMove(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		bob := session(t, m, "bob")
		code, out, _, _ := m.Run(bob, []string{userspace.BinSu, "alice", "-c", "/usr/bin/id"}, AnswerWith(AlicePassword))
		if code != 0 {
			t.Fatalf("su alice failed: %q", out)
		}
		if !strings.Contains(out, "uid=1000 euid=1000") {
			t.Fatalf("su alice id: %q", out)
		}
	})
}

func TestSudoedit(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/secret.conf", []byte("root-only-data"), 0o600, 0, 0); err != nil {
			t.Fatal(err)
		}
		bob := session(t, m, "bob")
		code, out, errOut, _ := m.Run(bob, []string{userspace.BinSudoedit, "/etc/secret.conf"}, AnswerWith(BobPassword))
		if code != 0 {
			t.Fatalf("sudoedit: %q %q", out, errOut)
		}
		if !strings.Contains(out, "root-only-data") {
			t.Fatalf("sudoedit output: %q", out)
		}
		// charlie has no sudoedit rule.
		charlie := session(t, m, "charlie")
		code, out, _, _ = m.Run(charlie, []string{userspace.BinSudoedit, "/etc/secret.conf"}, AnswerWith(CharliePassword))
		if code == 0 && strings.Contains(out, "root-only-data") {
			t.Fatal("charlie read root file via sudoedit")
		}
	})
}

func TestNewgrpPasswordProtectedGroup(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		charlie := session(t, m, "charlie")
		code, out, errOut, _ := m.Run(charlie, []string{userspace.BinNewgrp, "ops"}, AnswerWith(OpsGroupPassword))
		if code != 0 {
			t.Fatalf("newgrp: %q %q", out, errOut)
		}
		if !strings.Contains(out, "gid=20") {
			t.Fatalf("newgrp gid: %q", out)
		}
		// Wrong password.
		code, _, _, _ = m.Run(charlie, []string{userspace.BinNewgrp, "ops"}, AnswerWith("bad"))
		if code == 0 {
			t.Fatal("newgrp with wrong group password succeeded")
		}
	})
}

func TestNewgrpMemberNoPassword(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		// alice is an ops member: no password needed.
		code, out, errOut, _ := m.Run(alice, []string{userspace.BinNewgrp, "ops"}, nil)
		if code != 0 {
			t.Fatalf("member newgrp: %q %q", out, errOut)
		}
	})
}

// --- Credential databases (§4.4) ---

func TestChshOwnShell(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, _, errOut, _ := m.Run(alice, []string{userspace.BinChsh, "-s", "/bin/zsh"}, AnswerWith(AlicePassword))
		if code != 0 {
			t.Fatalf("chsh: %s", errOut)
		}
		if m.K.Mode == kernel.ModeProtego {
			// The fragment is updated; the monitoring daemon would
			// regenerate the legacy file (tested in monitord).
			if err := m.Monitor.SyncAccountsFromFragments(); err != nil {
				t.Fatal(err)
			}
		}
		u, err := m.DB.LookupUser("alice")
		if err != nil {
			t.Fatal(err)
		}
		if u.Shell != "/bin/zsh" {
			t.Fatalf("shell = %q", u.Shell)
		}
	})
}

func TestChshInvalidShellRejected(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, _, _, _ := m.Run(alice, []string{userspace.BinChsh, "-s", "/tmp/evil"}, AnswerWith(AlicePassword))
		if code == 0 {
			t.Fatal("chsh accepted unlisted shell")
		}
	})
}

func TestChfnOwnGecos(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		bob := session(t, m, "bob")
		code, _, errOut, _ := m.Run(bob, []string{userspace.BinChfn, "-f", "Robert"}, AnswerWith(BobPassword))
		if code != 0 {
			t.Fatalf("chfn: %s", errOut)
		}
		if m.K.Mode == kernel.ModeProtego {
			if err := m.Monitor.SyncAccountsFromFragments(); err != nil {
				t.Fatal(err)
			}
		}
		u, _ := m.DB.LookupUser("bob")
		if u.Gecos != "Robert" {
			t.Fatalf("gecos = %q", u.Gecos)
		}
	})
}

func TestPasswdChangeAndLogin(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		answers := map[string]string{"new": "newalicepw"}
		asker := func(prompt string) string {
			if strings.Contains(prompt, "New password") {
				return answers["new"]
			}
			return AlicePassword // current password / reauthentication
		}
		code, out, errOut, _ := m.Run(alice, []string{userspace.BinPasswd}, asker)
		if code != 0 {
			t.Fatalf("passwd: %q %q", out, errOut)
		}
		if m.K.Mode == kernel.ModeProtego {
			if err := m.Monitor.SyncAccountsFromFragments(); err != nil {
				t.Fatal(err)
			}
		}
		// The new password now works at login; the old one does not.
		root := session(t, m, "root")
		code, out, _, _ = m.Run(root, []string{userspace.BinLogin, "alice"}, AnswerWith("newalicepw"))
		if code != 0 || !strings.Contains(out, "Welcome, alice") {
			t.Fatalf("login with new password: code=%d out=%q", code, out)
		}
		code, _, _, _ = m.Run(root, []string{userspace.BinLogin, "alice"}, AnswerWith(AlicePassword))
		if code == 0 {
			t.Fatal("login with old password succeeded")
		}
	})
}

func TestPasswdWrongCurrentDenied(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, _, _, _ := m.Run(alice, []string{userspace.BinPasswd}, AnswerWith("wrongpw"))
		if code == 0 {
			t.Fatal("passwd with wrong current password succeeded")
		}
	})
}

func TestPasswdCannotChangeOthers(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		bob := session(t, m, "bob")
		code, _, _, _ := m.Run(bob, []string{userspace.BinPasswd, "alice"}, AnswerWith(BobPassword))
		if code == 0 {
			t.Fatal("bob changed alice's password")
		}
	})
}

func TestProtegoFragmentIsolation(t *testing.T) {
	// On Protego, bob cannot even read alice's credential fragments —
	// DAC at the policy's granularity.
	m, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	bob := session(t, m, "bob")
	if _, err := m.K.ReadFile(bob, "/etc/passwds/alice"); err == nil {
		t.Fatal("bob read alice's passwd fragment")
	}
	if _, err := m.K.ReadFile(bob, "/etc/shadows/alice"); err == nil {
		t.Fatal("bob read alice's shadow fragment")
	}
	if err := m.K.WriteFile(bob, "/etc/passwds/alice", []byte("alice:x:1000:100:评:/:/bin/sh\n")); err == nil {
		t.Fatal("bob wrote alice's passwd fragment")
	}
	// And nobody unprivileged can mint a new account.
	if err := m.K.WriteFile(bob, "/etc/passwds/eve", []byte("eve:x:0:0::/:/bin/sh\n")); err == nil {
		t.Fatal("bob created a new account fragment")
	}
}

func TestGpasswd(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice") // ops member
		code, _, errOut, _ := m.Run(alice, []string{userspace.BinGpasswd, "ops"}, AnswerWith("newopspw"))
		if code != 0 {
			t.Fatalf("gpasswd: %s", errOut)
		}
		if m.K.Mode == kernel.ModeProtego {
			if err := m.Monitor.SyncAccountsFromFragments(); err != nil {
				t.Fatal(err)
			}
			// Non-members cannot touch the fragment.
			bob := session(t, m, "bob")
			code, _, _, _ := m.Run(bob, []string{userspace.BinGpasswd, "ops"}, AnswerWith("evilpw"))
			if code == 0 {
				t.Fatal("non-member changed group password")
			}
		}
	})
}

// --- Privileged ports (§4.1.3) ---

func TestEximBindsAllocatedPort(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		server := session(t, m, "Debian-exim")
		done := make(chan int, 1)
		go func() {
			code, _, _, _ := m.Run(server, []string{userspace.BinExim, "serve", "1"}, nil)
			done <- code
		}()
		client := session(t, m, "alice")
		var code int
		var errOut string
		for try := 0; try < 100; try++ {
			code, _, errOut, _ = m.Run(client, []string{userspace.BinExim, "send", "alice", "hello-world"}, nil)
			if code == 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if code != 0 {
			t.Fatalf("exim send: %s", errOut)
		}
		if serverCode := <-done; serverCode != 0 {
			t.Fatalf("exim serve exited %d", serverCode)
		}
		mail, err := m.K.FS.ReadFile(vfs.RootCred, "/var/mail/alice")
		if err != nil || !strings.Contains(string(mail), "hello-world") {
			t.Fatalf("mail not delivered: %q %v", mail, err)
		}
	})
}

func TestBindAllocationExclusive(t *testing.T) {
	// On Protego, even a wrong (binary, uid) instance may not take an
	// allocated port — the object-based policy of §4.1.3.
	m, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	alice := session(t, m, "alice")
	// alice runs httpd, but port 80 is allocated to (httpd, www-data).
	code, _, errOut, _ := m.Run(alice, []string{userspace.BinHttpd, "serve", "0"}, nil)
	if code == 0 {
		t.Fatalf("alice bound port 80: %s", errOut)
	}
	// www-data succeeds.
	www := session(t, m, "www-data")
	code, _, errOut, _ = m.Run(www, []string{userspace.BinHttpd, "serve", "0"}, nil)
	if code != 0 {
		t.Fatalf("www-data httpd: %s", errOut)
	}
}

// --- PPP (§4.1.2) ---

func TestPppdSafeSession(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, out, errOut, _ := m.Run(alice, []string{
			userspace.BinPppd, "ppp0", "--param=bsdcomp=15", "--route=192.168.99.0/24",
		}, nil)
		if code != 0 {
			t.Fatalf("pppd: %q %q", out, errOut)
		}
		// The route landed.
		found := false
		for _, r := range m.K.Net.Routes() {
			if r.PrefixLen == 24 && r.Iface == "ppp0" {
				found = true
			}
		}
		if !found {
			t.Fatalf("route missing: %v", m.K.Net.Routes())
		}
	})
}

func TestPppdConflictingRouteDenied(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		// 10.0.0.0/24 overlaps the eth0 route.
		code, _, _, _ := m.Run(alice, []string{userspace.BinPppd, "ppp0", "--route=10.0.0.0/24"}, nil)
		if code == 0 {
			t.Fatal("conflicting route accepted")
		}
	})
}

func TestPppdUnsafeParamDenied(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, _, _, _ := m.Run(alice, []string{userspace.BinPppd, "ppp0", "--param=defaultroute=1"}, nil)
		if code == 0 {
			t.Fatal("unsafe ppp parameter accepted")
		}
	})
}

func TestPppdModemInUseDenied(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		bob := session(t, m, "bob")
		if code, _, e, _ := m.Run(alice, []string{userspace.BinPppd, "ppp0"}, nil); code != 0 {
			t.Fatalf("alice pppd: %s", e)
		}
		if code, _, _, _ := m.Run(bob, []string{userspace.BinPppd, "ppp0"}, nil); code == 0 {
			t.Fatal("bob reconfigured alice's modem")
		}
	})
}

// --- Interface redesigns (§4, §4.5) ---

func TestDmcryptGetDevice(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, out, errOut, _ := m.Run(alice, []string{userspace.BinDmcrypt, "/dev/dm-0"}, nil)
		if code != 0 {
			t.Fatalf("dmcrypt-get-device: %q %q", out, errOut)
		}
		if !strings.Contains(out, "/dev/sda2") {
			t.Fatalf("output: %q", out)
		}
		// The key must never appear in output.
		if strings.Contains(out, "deadbeef") {
			t.Fatalf("key leaked: %q", out)
		}
	})
}

func TestDmcryptIoctlStillPrivilegedOnProtego(t *testing.T) {
	m, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	alice := session(t, m, "alice")
	var info userspace.DMInfo
	if err := m.K.Ioctl(alice, "/dev/dm-0", kernel.DMGETINFO, &info); err == nil {
		t.Fatal("unprivileged DMGETINFO succeeded — key disclosure")
	}
}

func TestSSHKeysign(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, out, errOut, _ := m.Run(alice, []string{userspace.BinSSHKeysign, "data-to-sign"}, nil)
		if code != 0 {
			t.Fatalf("ssh-keysign: %q %q", out, errOut)
		}
		if !strings.HasPrefix(out, "SIG:") {
			t.Fatalf("signature: %q", out)
		}
	})
}

func TestHostKeyUnreadableByOtherBinaries(t *testing.T) {
	m, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	alice := session(t, m, "alice")
	// Direct read (binary "/sbin/init" context) is refused.
	if _, err := m.K.ReadFile(alice, userspace.HostKeyPath); err == nil {
		t.Fatal("host key readable outside ssh-keysign")
	}
}

func TestXserver(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, out, errOut, _ := m.Run(alice, []string{userspace.BinXserver}, nil)
		if code != 0 {
			t.Fatalf("X: %q %q", out, errOut)
		}
	})
}

// --- iptables extension ---

func TestIptablesRootOnly(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		// Unprivileged iptables listing is denied (the binary is not
		// setuid in either mode).
		code, _, _, _ := m.Run(alice, []string{userspace.BinIptables, "-S"}, nil)
		if code == 0 {
			t.Fatal("alice ran iptables")
		}
		root := session(t, m, "root")
		code, out, _, _ := m.Run(root, []string{userspace.BinIptables, "-S"}, nil)
		if code != 0 {
			t.Fatal("root iptables failed")
		}
		if m.K.Mode == kernel.ModeProtego && !strings.Contains(out, "unprivraw") {
			t.Fatalf("protego rules not listed: %q", out)
		}
	})
}

// --- Namespaces (§4.6, §6) ---

func TestChromiumSandbox(t *testing.T) {
	bothModes(t, func(t *testing.T, m *Machine) {
		alice := session(t, m, "alice")
		code, out, errOut, _ := m.Run(alice, []string{userspace.BinChromiumSandbox}, nil)
		if code != 0 {
			t.Fatalf("sandbox: %q %q", out, errOut)
		}
		if !strings.Contains(out, "fake network up") || !strings.Contains(out, "isolation holds") {
			t.Fatalf("sandbox output: %q", out)
		}
	})
}

func TestSandboxSetuidBitOnlyOnBaseline(t *testing.T) {
	// §4.6: namespaces were the one interface where the policy was not
	// yet understood — the sandbox helper keeps its setuid bit on the
	// paper's Linux 3.6.0 baseline but needs none on Protego.
	linux, err := BuildLinux()
	if err != nil {
		t.Fatal(err)
	}
	ino, _ := linux.K.FS.Lookup(vfs.RootCred, userspace.BinChromiumSandbox)
	if !ino.Mode.IsSetuid() {
		t.Fatal("baseline sandbox helper not setuid")
	}
	protego, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	ino, _ = protego.K.FS.Lookup(vfs.RootCred, userspace.BinChromiumSandbox)
	if ino.Mode.IsSetuid() {
		t.Fatal("protego sandbox helper still setuid")
	}
	if !protego.K.UnprivNamespaces() {
		t.Fatal("protego kernel should allow unprivileged namespaces")
	}
}
