package world

import (
	"sync"
	"testing"

	"protego/internal/kernel"
	"protego/internal/userspace"
	"protego/internal/vfs"
)

// TestConcurrentKernelStress is the -race concurrency stress test: N
// worker goroutines each run a session loop of fork/exec/exit (a real
// /bin/ls spawn), dcache-hit stats, and pid lookups, while a reloader
// goroutine hammers monitord policy resyncs (mounts + delegation) the
// whole time. Afterwards the task table must have lost no tasks and the
// tracer's counters must be internally consistent.
func TestConcurrentKernelStress(t *testing.T) {
	const (
		workers = 8
		iters   = 30
	)
	m, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.K.FS.MkdirAll(vfs.RootCred, "/stress/deep/path", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.K.FS.WriteFile(vfs.RootCred, "/stress/deep/path/probe", []byte("x\n"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}

	baseline := m.K.TaskCount()

	stop := make(chan struct{})
	var reloads sync.WaitGroup
	reloads.Add(1)
	go func() {
		defer reloads.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := m.Monitor.SyncMounts(); err != nil {
				t.Errorf("SyncMounts: %v", err)
				return
			}
			if err := m.Monitor.SyncDelegation(); err != nil {
				t.Errorf("SyncDelegation: %v", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := m.Session("alice")
			if err != nil {
				t.Errorf("session: %v", err)
				return
			}
			defer m.K.Exit(sess, 0)
			for i := 0; i < iters; i++ {
				// Dcache-hit stats on a shared deep path.
				if _, err := m.K.Stat(sess, "/stress/deep/path/probe"); err != nil {
					t.Errorf("stat: %v", err)
					return
				}
				// fork/exec/exit of a real binary.
				code, _, stderr, err := m.Run(sess, []string{userspace.BinLs, "/"}, nil)
				if err != nil || code != 0 {
					t.Errorf("ls: code=%d err=%v stderr=%q", code, err, stderr)
					return
				}
				// Shard-read lookups against live churn.
				if got := m.K.Task(sess.PID()); got != sess {
					t.Errorf("Task(%d) lost the session task", sess.PID())
					return
				}
				m.K.Tasks()
			}
		}()
	}
	wg.Wait()
	close(stop)
	reloads.Wait()
	if t.Failed() {
		return
	}

	// No lost tasks: every spawned child exited, every session exited.
	if got := m.K.TaskCount(); got != baseline {
		t.Fatalf("task count after stress = %d, want %d (lost or leaked tasks)", got, baseline)
	}

	// Tracer consistency: per-kind emission counts must sum to the ring
	// total, the stat syscall histogram must have seen at least every
	// explicit stat, and the /proc/trace/stats render the counters feed
	// must be readable from inside the simulation.
	st := m.K.Trace.Stats()
	var byKind uint64
	for _, n := range st.ByKind {
		byKind += n
	}
	if byKind != st.Emitted {
		t.Fatalf("per-kind emissions sum to %d, ring emitted %d", byKind, st.Emitted)
	}
	if h := m.K.Trace.Histogram("stat"); h.Count < workers*iters {
		t.Fatalf("stat histogram count = %d, want >= %d", h.Count, workers*iters)
	}
	root, err := m.Session("root")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := m.K.ReadFile(root, kernel.ProcTraceStats)
	if err != nil {
		t.Fatalf("read %s: %v", kernel.ProcTraceStats, err)
	}
	if len(stats) == 0 {
		t.Fatal("empty /proc/trace/stats after stress")
	}
}
