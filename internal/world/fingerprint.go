package world

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"protego/internal/accountdb"
	"protego/internal/vfs"
)

// Fingerprint serializes the machine's observable state into one canonical
// string, designed so a freshly built baseline image and a freshly built
// Protego image produce the *same* fingerprint, and stay equal as long as
// identical workloads have identical effects. It is the single state
// serializer shared by the equivalence corpus (internal/equiv) and the
// differential fuzzer (internal/difffuzz).
//
// Sections, in order: live-task credentials (a sorted multiset — pids are
// excluded because the two images may fork different child counts inside a
// utility), the VFS tree (type, permissions, ownership, device numbers,
// symlink targets, and a content hash for regular files), the account
// databases (parsed and sorted, rather than raw bytes, because the Protego
// fragment sync rewrites the legacy files in a different record order), the
// mount table, the port-binding table, the routing table, and interface
// state.
//
// Normalizations (all are by-design differences between the two *images*,
// not behavioral divergences):
//
//   - /proc is skipped: /proc/protego exists only on Protego and the trace
//     files are dynamic.
//   - /etc/passwds, /etc/shadows, /etc/groups are skipped (the fragmented
//     database exists only on Protego); on Protego the fragments are first
//     converged into the legacy view via the monitoring daemon, and the
//     legacy files are compared as parsed records.
//   - /var/run/sudo is skipped: the baseline sudo keeps authentication
//     recency in timestamp files, Protego keeps it in the kernel task
//     struct (§4.3), so the bookkeeping location differs by design.
//   - The setuid/setgid bits of the studied binaries are masked — their
//     eradication IS the system under test (Table 1).
//   - /dev/ppp permission bits are masked (0600 baseline vs 0666 Protego,
//     the §4.1.2 relaxation).
func (m *Machine) Fingerprint() string {
	// Converge the Protego-only fragment tree into the legacy account files
	// first, mirroring what the monitoring daemon does continuously.
	if m.Monitor != nil {
		_ = m.Monitor.SyncAccountsFromFragments()
	}

	var b strings.Builder

	b.WriteString("[tasks]\n")
	var taskLines []string
	for _, t := range m.K.Tasks() {
		c := t.Creds()
		groups := append([]int(nil), c.Groups...)
		sort.Ints(groups)
		taskLines = append(taskLines, fmt.Sprintf(
			"uid=%d/%d/%d/%d gid=%d/%d/%d/%d groups=%v caps=%d/%d",
			c.RUID, c.EUID, c.SUID, c.FUID,
			c.RGID, c.EGID, c.SGID, c.FGID,
			groups, uint64(c.Effective), uint64(c.Permitted)))
	}
	sort.Strings(taskLines)
	for _, l := range taskLines {
		b.WriteString(l)
		b.WriteByte('\n')
	}

	b.WriteString("[vfs]\n")
	m.K.FS.Walk(func(path string, ino *vfs.Inode) bool {
		if fingerprintSkip[path] {
			return false
		}
		mode := ino.Mode
		switch {
		case setuidBinaries[path]:
			mode &^= vfs.ModeSetuid | vfs.ModeSetgid
		case path == "/dev/ppp":
			mode &^= vfs.ModeMask
		}
		fmt.Fprintf(&b, "%s %o %d:%d", path, uint32(mode), ino.UID, ino.GID)
		switch {
		case ino.IsProc():
			// Synthetic files have dynamic contents; identity only.
		case mode.IsDevice():
			fmt.Fprintf(&b, " dev=%d,%d", ino.Major, ino.Minor)
		case mode.IsSymlink():
			fmt.Fprintf(&b, " -> %s", string(ino.Data))
		case mode.IsRegular() && !fingerprintSemanticContent[path]:
			h := fnv.New64a()
			h.Write(ino.Data)
			fmt.Fprintf(&b, " len=%d hash=%x", len(ino.Data), h.Sum64())
		}
		b.WriteByte('\n')
		return true
	})

	b.WriteString("[accounts]\n")
	writeAccounts(&b, m)

	b.WriteString("[mounts]\n")
	b.WriteString(m.K.FS.FormatMtab())

	b.WriteString("[ports]\n")
	for _, p := range m.K.Net.BoundPorts() {
		fmt.Fprintf(&b, "%d/%d uid=%d\n", p.Proto, p.Port, p.OwnerUID)
	}

	b.WriteString("[routes]\n")
	var routeLines []string
	for _, r := range m.K.Net.Routes() {
		routeLines = append(routeLines, r.String())
	}
	sort.Strings(routeLines)
	for _, l := range routeLines {
		b.WriteString(l)
		b.WriteByte('\n')
	}

	b.WriteString("[ifaces]\n")
	var ifaceLines []string
	for _, iface := range m.K.Net.Ifaces() {
		var params []string
		for k, v := range iface.Params {
			params = append(params, k+"="+v)
		}
		sort.Strings(params)
		ifaceLines = append(ifaceLines, fmt.Sprintf("%s up=%v inuse=%v owner=%d params=%v",
			iface.Name, iface.Up, iface.InUse, iface.Owner, params))
	}
	sort.Strings(ifaceLines)
	for _, l := range ifaceLines {
		b.WriteString(l)
		b.WriteByte('\n')
	}

	return b.String()
}

// fingerprintSkip prunes subtrees that exist on only one image or that hold
// by-design bookkeeping differences (see Fingerprint).
var fingerprintSkip = map[string]bool{
	"/proc":              true,
	"/var/run/sudo":      true,
	accountdb.PasswdsDir: true,
	accountdb.ShadowsDir: true,
	accountdb.GroupsDir:  true,
}

// fingerprintSemanticContent marks files whose contents are compared as
// parsed, sorted records in the [accounts] section instead of raw bytes
// (the fragment sync rewrites them in a different record order).
var fingerprintSemanticContent = map[string]bool{
	accountdb.PasswdFile: true,
	accountdb.ShadowFile: true,
	accountdb.GroupFile:  true,
}

// writeAccounts serializes the parsed account databases in sorted order.
// Read errors are folded into the fingerprint itself: a missing or corrupt
// database is observable state, and must diverge rather than be skipped.
func writeAccounts(b *strings.Builder, m *Machine) {
	users, err := m.DB.Users()
	if err != nil {
		fmt.Fprintf(b, "users-error: %v\n", err)
	} else {
		lines := make([]string, 0, len(users))
		for i := range users {
			u := &users[i]
			hash, herr := m.DB.ShadowHash(u.Name)
			if herr != nil {
				hash = fmt.Sprintf("shadow-error:%v", herr)
			}
			lines = append(lines, fmt.Sprintf("user %s:%d:%d:%s:%s:%s shadow=%s",
				u.Name, u.UID, u.GID, u.Gecos, u.Home, u.Shell, hash))
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	groups, err := m.DB.Groups()
	if err != nil {
		fmt.Fprintf(b, "groups-error: %v\n", err)
		return
	}
	lines := make([]string, 0, len(groups))
	for i := range groups {
		g := &groups[i]
		members := append([]string(nil), g.Members...)
		sort.Strings(members)
		lines = append(lines, fmt.Sprintf("group %s:%d:%s:%v", g.Name, g.GID, g.Password, members))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
}
