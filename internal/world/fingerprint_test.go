package world

import (
	"strings"
	"testing"

	"protego/internal/vfs"
)

// Fresh images must fingerprint identically: every by-design difference
// between the baseline and Protego builds (fragment tree, /proc/protego,
// setuid bits, /dev/ppp perms) has a normalization rule, and this test is
// the canary for a new build-time asymmetry leaking into the serializer.
func TestFingerprintFreshImagesEqual(t *testing.T) {
	lin, err := BuildLinux()
	if err != nil {
		t.Fatal(err)
	}
	pro, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	a, b := lin.Fingerprint(), pro.Fingerprint()
	if a == b {
		return
	}
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	shown := 0
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			t.Errorf("line %d:\n  linux:   %q\n  protego: %q", i, x, y)
			if shown++; shown > 15 {
				break
			}
		}
	}
	t.Fatal("fresh-image fingerprints differ")
}

// The fingerprint must be stable across repeated serialization of the same
// machine (map iteration anywhere in the pipeline would break shrinking and
// replay) and must actually change when observable state changes.
func TestFingerprintDeterministicAndSensitive(t *testing.T) {
	m, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	f1 := m.Fingerprint()
	f2 := m.Fingerprint()
	if f1 != f2 {
		t.Fatal("fingerprint not deterministic across calls")
	}
	if err := m.K.FS.WriteFile(vfs.RootCred, "/home/alice/fpnote", []byte("x"), 0o644, UIDAlice, GIDUsers); err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint() == f1 {
		t.Fatal("fingerprint unchanged after VFS write")
	}
}
