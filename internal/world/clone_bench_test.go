package world

import (
	"testing"

	"protego/internal/kernel"
)

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(Options{Mode: kernel.ModeProtego}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClone(b *testing.B) {
	m, err := Build(Options{Mode: kernel.ModeProtego})
	if err != nil {
		b.Fatal(err)
	}
	snap := m.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.Clone(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKernelClone(b *testing.B) {
	m, err := Build(Options{Mode: kernel.ModeProtego})
	if err != nil {
		b.Fatal(err)
	}
	m.K.FS.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.K.Clone()
	}
}
