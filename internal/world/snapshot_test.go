package world

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"protego/internal/kernel"
	"protego/internal/netstack"
	"protego/internal/vfs"
)

// TestSnapshotFingerprintEquality is the tentpole guarantee: a fresh
// clone is indistinguishable from its parent under the canonical
// fingerprint, in both modes.
func TestSnapshotFingerprintEquality(t *testing.T) {
	for _, mode := range []kernel.Mode{kernel.ModeLinux, kernel.ModeProtego} {
		t.Run(mode.String(), func(t *testing.T) {
			parent, err := Build(Options{Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			snap := parent.Snapshot()
			clone, err := snap.Clone()
			if err != nil {
				t.Fatal(err)
			}
			pf, cf := parent.Fingerprint(), clone.Fingerprint()
			if pf != cf {
				t.Fatalf("parent/clone fingerprints diverge:\n%s", firstDiff(pf, cf))
			}
		})
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  parent: %s\n  clone:  %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("length %d vs %d", len(al), len(bl))
}

// clonePair builds a Protego golden machine and two clones of it.
func clonePair(t *testing.T) (*Machine, *Machine, *Machine) {
	t.Helper()
	parent, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	snap := parent.Snapshot()
	a, err := snap.Clone()
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.Clone()
	if err != nil {
		t.Fatal(err)
	}
	return parent, a, b
}

// TestCloneIsolationFiles: file creation, overwrite, append, chmod, and
// remove in one clone are invisible to the parent and the sibling.
func TestCloneIsolationFiles(t *testing.T) {
	parent, a, b := clonePair(t)
	base := parent.Fingerprint()
	bBase := b.Fingerprint()

	fs := a.K.FS
	if err := fs.WriteFile(vfs.RootCred, "/etc/tenant-marker", []byte("a"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile(vfs.RootCred, "/etc/motd", []byte("tenant A was here\n")); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(vfs.RootCred, "/etc/shells", []byte("/bin/tenant-sh\n"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(vfs.RootCred, "/etc/fstab", 0o600); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(vfs.RootCred, "/etc/motd"); err != nil {
		t.Fatal(err)
	}

	if parent.K.FS.Exists(vfs.RootCred, "/etc/tenant-marker") {
		t.Fatal("marker leaked into parent")
	}
	if b.K.FS.Exists(vfs.RootCred, "/etc/tenant-marker") {
		t.Fatal("marker leaked into sibling")
	}
	data, err := parent.K.FS.ReadFile(vfs.RootCred, "/etc/motd")
	if err != nil || strings.Contains(string(data), "tenant A") {
		t.Fatalf("parent motd affected: %q err=%v", data, err)
	}
	if got := parent.Fingerprint(); got != base {
		t.Fatalf("parent fingerprint changed:\n%s", firstDiff(base, got))
	}
	if got := b.Fingerprint(); got != bBase {
		t.Fatalf("sibling fingerprint changed:\n%s", firstDiff(bBase, got))
	}
}

// TestCloneIsolationAppendNoScribble: appends on a shared file must not
// scribble on the shared backing array (capacity clamp check).
func TestCloneIsolationAppendNoScribble(t *testing.T) {
	parent, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	before, err := parent.K.FS.ReadFile(vfs.RootCred, "/etc/motd")
	if err != nil {
		t.Fatal(err)
	}
	snap := parent.Snapshot()
	a, _ := snap.Clone()
	b, _ := snap.Clone()
	if err := a.K.FS.AppendFile(vfs.RootCred, "/etc/motd", []byte("AAAA")); err != nil {
		t.Fatal(err)
	}
	if err := b.K.FS.AppendFile(vfs.RootCred, "/etc/motd", []byte("BBBB")); err != nil {
		t.Fatal(err)
	}
	after, _ := parent.K.FS.ReadFile(vfs.RootCred, "/etc/motd")
	if string(after) != string(before) {
		t.Fatalf("parent motd mutated: %q -> %q", before, after)
	}
	ad, _ := a.K.FS.ReadFile(vfs.RootCred, "/etc/motd")
	if string(ad) != string(before)+"AAAA" {
		t.Fatalf("clone A append wrong: %q", ad)
	}
	bd, _ := b.K.FS.ReadFile(vfs.RootCred, "/etc/motd")
	if string(bd) != string(before)+"BBBB" {
		t.Fatalf("clone B append wrong: %q", bd)
	}
}

// TestCloneOpenUnlinkWrite: the classic tempfile idiom — open, unlink,
// then write the fd — performed in a clone. The unlinked descriptor
// points at a snapshot-shared sealed inode with no path left to copy up
// through; the write must land on a private fd-local copy, never on the
// golden image the parent and every sibling share.
func TestCloneOpenUnlinkWrite(t *testing.T) {
	parent, a, b := clonePair(t)
	base := parent.Fingerprint()
	bBase := b.Fingerprint()
	before, err := parent.K.FS.ReadFile(vfs.RootCred, "/etc/motd")
	if err != nil {
		t.Fatal(err)
	}

	root := a.K.Fork(a.Init)
	defer a.K.Exit(root, 0)
	fd, err := a.K.Open(root, "/etc/motd", kernel.O_WRONLY|kernel.O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.K.Unlink(root, "/etc/motd"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.K.Write(root, fd, []byte("tempfile secret")); err != nil {
		t.Fatalf("write to unlinked fd: %v", err)
	}

	after, err := parent.K.FS.ReadFile(vfs.RootCred, "/etc/motd")
	if err != nil || string(after) != string(before) {
		t.Fatalf("unlinked-fd write leaked into golden image: %q err=%v", after, err)
	}
	if got := parent.Fingerprint(); got != base {
		t.Fatalf("parent fingerprint changed:\n%s", firstDiff(base, got))
	}
	if got := b.Fingerprint(); got != bBase {
		t.Fatalf("sibling fingerprint changed:\n%s", firstDiff(bBase, got))
	}
}

// TestCloneFdWriteAfterReplace: a descriptor whose path entry has been
// replaced by a different file must not rebind to the stranger — the
// fd's writes stay fd-local and the new occupant keeps its own contents.
func TestCloneFdWriteAfterReplace(t *testing.T) {
	parent, a, _ := clonePair(t)
	base := parent.Fingerprint()

	root := a.K.Fork(a.Init)
	defer a.K.Exit(root, 0)
	fd, err := a.K.Open(root, "/etc/shells", kernel.O_WRONLY|kernel.O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.K.Unlink(root, "/etc/shells"); err != nil {
		t.Fatal(err)
	}
	if err := a.K.WriteFile(root, "/etc/shells", []byte("stranger\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.K.Write(root, fd, []byte("fd data")); err != nil {
		t.Fatalf("write to replaced fd: %v", err)
	}
	data, err := a.K.FS.ReadFile(vfs.RootCred, "/etc/shells")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "stranger\n" {
		t.Fatalf("fd write landed on the unrelated file now at its path: %q", data)
	}
	if got := parent.Fingerprint(); got != base {
		t.Fatalf("parent fingerprint changed:\n%s", firstDiff(base, got))
	}
}

// TestCloneIsolationTasks: forks and exits in a clone never appear in the
// parent's task table.
func TestCloneIsolationTasks(t *testing.T) {
	parent, a, _ := clonePair(t)
	parentCount := parent.K.TaskCount()
	sess, err := a.Session("alice")
	if err != nil {
		t.Fatal(err)
	}
	if parent.K.TaskCount() != parentCount {
		t.Fatalf("fork in clone changed parent task count: %d -> %d", parentCount, parent.K.TaskCount())
	}
	if parent.K.Task(sess.PID()) != nil {
		t.Fatal("clone session pid resolves in parent")
	}
	// Credential changes in the clone stay in the clone.
	code, _, _, err := a.Run(sess, []string{"/usr/bin/id"}, nil)
	if err != nil || code != 0 {
		t.Fatalf("id in clone: code=%d err=%v", code, err)
	}
}

// TestCloneIsolationMounts: a whitelisted user mount in the clone leaves
// the parent's mount table and fingerprint untouched.
func TestCloneIsolationMounts(t *testing.T) {
	parent, a, b := clonePair(t)
	base := parent.Fingerprint()
	sess, err := a.Session("alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.K.Mount(sess, "/dev/cdrom", "/cdrom", "iso9660", []string{"ro"}); err != nil {
		t.Fatalf("whitelisted mount in clone failed: %v", err)
	}
	if len(parent.K.FS.Mounts()) != 0 {
		t.Fatalf("parent mount table grew: %v", parent.K.FS.Mounts())
	}
	if len(b.K.FS.Mounts()) != 0 {
		t.Fatal("sibling mount table grew")
	}
	if got := parent.Fingerprint(); got != base {
		t.Fatalf("parent fingerprint changed:\n%s", firstDiff(base, got))
	}
	if err := a.K.Umount(sess, "/cdrom"); err == nil {
		// umount by mounter is allowed ("user" option); after detach the
		// parent must still be pristine.
		if got := parent.Fingerprint(); got != base {
			t.Fatal("parent fingerprint changed after clone umount")
		}
	}
}

// TestCloneIsolationPorts: port binds in a clone never occupy the
// parent's or a sibling's port space.
func TestCloneIsolationPorts(t *testing.T) {
	parent, a, b := clonePair(t)
	bindOn := func(m *Machine) error {
		root := m.K.Fork(m.Init)
		defer m.K.Exit(root, 0)
		sock, err := m.K.Socket(root, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP)
		if err != nil {
			return err
		}
		return m.K.Bind(root, sock, 8080)
	}
	if err := bindOn(a); err != nil {
		t.Fatalf("bind in clone A: %v", err)
	}
	// The same port is free in the sibling and the parent.
	if err := bindOn(b); err != nil {
		t.Fatalf("bind in clone B hit clone A's port: %v", err)
	}
	if err := bindOn(parent); err != nil {
		t.Fatalf("bind in parent hit a clone's port: %v", err)
	}
}

// TestCloneIsolationPolicyReload: a monitord-style policy reload in the
// clone (new fstab rule synced into the kernel) must not alter the
// parent's in-kernel whitelist or its /proc files.
func TestCloneIsolationPolicyReload(t *testing.T) {
	parent, a, b := clonePair(t)
	parentRules := len(parent.Protego.MountRules())
	base := parent.Fingerprint()

	extra := "/dev/sde1  /mnt/backup  ext4  rw,user,noauto  0 0\n"
	if err := a.K.FS.AppendFile(vfs.RootCred, "/etc/fstab", []byte(extra)); err != nil {
		t.Fatal(err)
	}
	if err := a.Monitor.SyncMounts(); err != nil {
		t.Fatal(err)
	}
	if len(a.Protego.MountRules()) <= parentRules {
		t.Fatalf("clone reload did not add rule: %d", len(a.Protego.MountRules()))
	}
	if len(parent.Protego.MountRules()) != parentRules {
		t.Fatalf("parent whitelist changed: %d -> %d", parentRules, len(parent.Protego.MountRules()))
	}
	if len(b.Protego.MountRules()) != parentRules {
		t.Fatal("sibling whitelist changed")
	}
	// The parent's /proc/protego/mounts must render the old policy.
	out, err := parent.K.FS.ReadFile(vfs.RootCred, "/proc/protego/mounts")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "/dev/sde1") {
		t.Fatal("clone policy visible through parent /proc")
	}
	if got := parent.Fingerprint(); got != base {
		t.Fatalf("parent fingerprint changed:\n%s", firstDiff(base, got))
	}
}

// TestCloneTraceIsolation: syscalls in a clone land on the clone's
// tracer, not the parent's.
func TestCloneTraceIsolation(t *testing.T) {
	parent, a, _ := clonePair(t)
	before := parent.K.Trace.Stats().Emitted
	sess, err := a.Session("alice")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, _, err := a.Run(sess, []string{"/usr/bin/id"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := parent.K.Trace.Stats().Emitted; got != before {
		t.Fatalf("clone syscalls traced on parent: %d -> %d", before, got)
	}
	if a.K.Trace.Stats().Emitted == 0 {
		t.Fatal("clone tracer saw nothing")
	}
}

// TestConcurrentClones exercises concurrent stamping and mutation from
// one snapshot; run under -race this is the data-race gate for the COW
// machinery.
func TestConcurrentClones(t *testing.T) {
	parent, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	base := parent.Fingerprint()
	snap := parent.Snapshot()
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m, err := snap.Clone()
			if err != nil {
				errs <- err
				return
			}
			marker := fmt.Sprintf("/tmp/tenant-%d", id)
			if err := m.K.FS.WriteFile(vfs.RootCred, marker, []byte("x"), 0o644, 0, 0); err != nil {
				errs <- err
				return
			}
			if err := m.K.FS.AppendFile(vfs.RootCred, "/etc/motd", []byte("hi\n")); err != nil {
				errs <- err
				return
			}
			sess, err := m.Session("alice")
			if err != nil {
				errs <- err
				return
			}
			if code, _, serr, err := m.Run(sess, []string{"/usr/bin/id"}, nil); err != nil || code != 0 {
				errs <- fmt.Errorf("id: code=%d err=%v stderr=%s", code, err, serr)
				return
			}
			for j := 0; j < n; j++ {
				if j != id && m.K.FS.Exists(vfs.RootCred, fmt.Sprintf("/tmp/tenant-%d", j)) {
					errs <- fmt.Errorf("tenant %d sees tenant %d's marker", id, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := parent.Fingerprint(); got != base {
		t.Fatalf("parent fingerprint changed under concurrent clones:\n%s", firstDiff(base, got))
	}
}

// TestSnapshotRepeated: the golden machine can keep mutating between
// snapshots; each clone reflects the parent state at its own clone time.
func TestSnapshotRepeated(t *testing.T) {
	parent, err := BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	snap := parent.Snapshot()
	a, _ := snap.Clone()
	if err := parent.K.FS.WriteFile(vfs.RootCred, "/etc/generation", []byte("2"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	b, err := snap.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if a.K.FS.Exists(vfs.RootCred, "/etc/generation") {
		t.Fatal("earlier clone sees later parent write")
	}
	if !b.K.FS.Exists(vfs.RootCred, "/etc/generation") {
		t.Fatal("later clone missing parent write")
	}
	if pf, bf := parent.Fingerprint(), b.Fingerprint(); pf != bf {
		t.Fatalf("fingerprint mismatch after re-clone:\n%s", firstDiff(pf, bf))
	}
}
