// Package world builds populated machine images for the two systems under
// study: baseline "Linux with AppArmor" (setuid bits on the studied
// binaries, policies enforced in userspace) and Protego (bits cleared,
// policies enforced by the kernel LSM, trusted monitoring daemon and
// authentication service installed). Examples, tests, the exploit harness,
// and every benchmark build their machines here so both configurations
// stay strictly comparable.
package world

import (
	"bytes"
	"fmt"

	"protego/internal/accountdb"
	"protego/internal/apparmor"
	"protego/internal/authsvc"
	"protego/internal/caps"
	"protego/internal/core"
	"protego/internal/errno"
	"protego/internal/faultinject"
	"protego/internal/kernel"
	"protego/internal/monitord"
	"protego/internal/netstack"
	"protego/internal/seccomp"
	"protego/internal/userspace"
	"protego/internal/vfs"
)

// Test-user passwords (documented so examples and tests can authenticate).
const (
	RootPassword     = "rootpw"
	AlicePassword    = "alicepw"
	BobPassword      = "bobpw"
	CharliePassword  = "charliepw"
	OpsGroupPassword = "opspw"
)

// Well-known uids/gids of the image.
const (
	UIDRoot    = 0
	UIDExim    = 101
	UIDWWWData = 33
	UIDAlice   = 1000
	UIDBob     = 1001
	UIDCharlie = 1002

	GIDRoot   = 0
	GIDWheel  = 10
	GIDOps    = 20
	GIDWWW    = 33
	GIDShadow = 42
	GIDUsers  = 100
	GIDExim   = 101
)

// Options configures Build.
type Options struct {
	// Mode selects baseline Linux or Protego.
	Mode kernel.Mode
	// HostIP defaults to 10.0.0.2.
	HostIP netstack.IP
	// AppArmorProfiles loads representative AppArmor profiles on the
	// baseline (the hardened-Ubuntu configuration); by default the
	// module is registered with no profiles, matching the paper's
	// measurement baseline.
	AppArmorProfiles bool
	// SkipInitialSync skips the boot-time monitord synchronization
	// (Protego mode only) so tests can drive it manually.
	SkipInitialSync bool
	// SeccompProfiles, when non-nil, installs the learned syscall
	// allowlists as the last LSM module and arms the kernel's syscall
	// gate, so every syscall entry is checked against the issuing
	// binary's profile. The set must not be mutated after Build; clones
	// and fleet tenants share it by reference.
	SeccompProfiles *seccomp.ProfileSet
	// SeccompAudit makes the installed profiles record violations
	// instead of denying (the difffuzz invariant configuration).
	SeccompAudit bool
}

// Machine is a booted image.
type Machine struct {
	K        *kernel.Kernel
	AppArmor *apparmor.Module
	Protego  *core.Module    // nil on the baseline
	Seccomp  *seccomp.Module // nil unless Options.SeccompProfiles was set
	Monitor  *monitord.Daemon
	Auth     *authsvc.Service
	DB       *accountdb.DB
	Init     *kernel.Task
}

// Build constructs a machine image.
func Build(opts Options) (*Machine, error) {
	if opts.HostIP == 0 {
		opts.HostIP = netstack.IPv4(10, 0, 0, 2)
	}
	k := kernel.New(opts.Mode, opts.HostIP)
	m := &Machine{K: k, DB: accountdb.NewDB(k.FS)}

	if err := m.layoutFilesystem(); err != nil {
		return nil, fmt.Errorf("world: filesystem: %w", err)
	}
	if err := m.writeEtc(); err != nil {
		return nil, fmt.Errorf("world: /etc: %w", err)
	}
	if err := m.makeDevices(); err != nil {
		return nil, fmt.Errorf("world: devices: %w", err)
	}
	m.registerDeviceHandlers()
	userspace.RegisterAll(k)
	if err := m.installBinaries(); err != nil {
		return nil, fmt.Errorf("world: binaries: %w", err)
	}

	// The trace interface is installed in both configurations so the
	// observability surface itself never skews a mode comparison.
	if err := k.InstallTraceProc(); err != nil {
		return nil, fmt.Errorf("world: trace proc: %w", err)
	}

	// AppArmor is present in both configurations (the baseline is
	// "Linux with AppArmor"; Protego extends it).
	m.AppArmor = apparmor.New()
	k.LSM.Register(m.AppArmor)
	if opts.AppArmorProfiles {
		loadSampleProfiles(m.AppArmor)
	}

	m.Auth = authsvc.New(m.DB)
	m.Auth.SetTracer(k.Trace)
	if opts.Mode == kernel.ModeProtego {
		// Protego targets current kernels: unprivileged user+network
		// namespaces are available (Linux >= 3.8, §4.6), so even
		// chromium-sandbox needs no setuid bit.
		k.SetUnprivNamespaces(true)
		m.Protego = core.New(k, m.DB, m.Auth)
		if err := m.Protego.Install(); err != nil {
			return nil, fmt.Errorf("world: protego: %w", err)
		}
		m.Protego.AllowFileReaders(userspace.HostKeyPath, userspace.BinSSHKeysign)
		m.Monitor = monitord.New(k, m.DB, m.Protego)
		if !opts.SkipInitialSync {
			if err := m.Monitor.SyncAll(); err != nil {
				return nil, fmt.Errorf("world: initial sync: %w", err)
			}
		}
	}

	// The seccomp module registers LAST: its ExecCheck swaps the task's
	// profile for the new image, and every module with veto power must
	// have had its chance to short-circuit the exec before that swap.
	if opts.SeccompProfiles != nil {
		m.Seccomp = seccomp.NewModule(opts.SeccompProfiles, opts.SeccompAudit)
		k.LSM.Register(m.Seccomp)
		k.SetSyscallGate(true)
	}

	m.Init = k.InitTask()
	return m, nil
}

// SetFaultInjector arms a fault-injection plan machine-wide: the kernel
// (which fans it out to the VFS and the netstack) and the authentication
// service. Passing nil disarms injection.
func (m *Machine) SetFaultInjector(in *faultinject.Injector) {
	m.K.SetFaultInjector(in)
	m.Auth.SetFaultInjector(in)
}

// BuildLinux builds the baseline image.
func BuildLinux() (*Machine, error) { return Build(Options{Mode: kernel.ModeLinux}) }

// BuildProtego builds the Protego image.
func BuildProtego() (*Machine, error) { return Build(Options{Mode: kernel.ModeProtego}) }

func (m *Machine) layoutFilesystem() error {
	fs := m.K.FS
	dirs := []struct {
		path string
		mode vfs.Mode
		uid  int
		gid  int
	}{
		{"/bin", 0o755, 0, 0},
		{"/sbin", 0o755, 0, 0},
		{"/usr", 0o755, 0, 0},
		{"/usr/bin", 0o755, 0, 0},
		{"/usr/sbin", 0o755, 0, 0},
		{"/usr/lib", 0o755, 0, 0},
		{"/usr/lib/chromium", 0o755, 0, 0},
		{"/etc", 0o755, 0, 0},
		{"/etc/sudoers.d", 0o755, 0, 0},
		{"/etc/ppp", 0o755, 0, 0},
		{"/etc/ssh", 0o755, 0, 0},
		{"/dev", 0o755, 0, 0},
		{"/proc", 0o555, 0, 0},
		{"/sys", 0o555, 0, 0},
		{"/sys/block", 0o555, 0, 0},
		{"/sys/block/dm-0", 0o555, 0, 0},
		{"/sys/block/dm-0/dm", 0o555, 0, 0},
		{"/tmp", 0o777 | vfs.ModeSticky, 0, 0},
		{"/home", 0o755, 0, 0},
		{"/home/alice", 0o700, UIDAlice, GIDUsers},
		{"/home/bob", 0o700, UIDBob, GIDUsers},
		{"/home/charlie", 0o700, UIDCharlie, GIDUsers},
		{"/root", 0o700, 0, 0},
		{"/var", 0o755, 0, 0},
		{"/var/run", 0o755, 0, 0},
		{"/var/run/sudo", 0o700, 0, 0},
		{"/var/mail", 0o775, UIDExim, GIDExim},
		{"/var/spool", 0o755, 0, 0},
		{"/var/spool/lpd", 0o755, 0, 0},
		{"/var/www", 0o755, 0, 0},
		{"/var/log", 0o755, 0, 0},
		{"/cdrom", 0o755, 0, 0},
		{"/media", 0o755, 0, 0},
		{"/media/usb", 0o777, 0, 0},
		{"/mnt", 0o755, 0, 0},
		{"/mnt/backup", 0o755, 0, 0},
	}
	for _, d := range dirs {
		if _, err := fs.Mkdir(vfs.RootCred, d.path, d.mode, d.uid, d.gid); err != nil && err != errno.EEXIST {
			return fmt.Errorf("%s: %w", d.path, err)
		}
	}
	// World-writable print queue (the spooler daemon is out of scope).
	if err := fs.WriteFile(vfs.RootCred, "/var/spool/lpd/queue", nil, 0o666, 0, 0); err != nil {
		return err
	}
	return fs.WriteFile(vfs.RootCred, "/var/www/index.html",
		[]byte("<html><body>It works (protego)</body></html>"), 0o644, 0, 0)
}

func hash(user, password string) string {
	return accountdb.HashPassword(password, "pg"+user)
}

func (m *Machine) writeEtc() error {
	fs := m.K.FS
	users := []accountdb.User{
		{Name: "root", UID: UIDRoot, GID: GIDRoot, Gecos: "root", Home: "/root", Shell: userspace.BinSh},
		{Name: "Debian-exim", UID: UIDExim, GID: GIDExim, Gecos: "mail", Home: "/var/mail", Shell: userspace.BinSh},
		{Name: "www-data", UID: UIDWWWData, GID: GIDWWW, Gecos: "web", Home: "/var/www", Shell: userspace.BinSh},
		{Name: "alice", UID: UIDAlice, GID: GIDUsers, Gecos: "Alice", Home: "/home/alice", Shell: userspace.BinSh},
		{Name: "bob", UID: UIDBob, GID: GIDUsers, Gecos: "Bob", Home: "/home/bob", Shell: userspace.BinSh},
		{Name: "charlie", UID: UIDCharlie, GID: GIDUsers, Gecos: "Charlie", Home: "/home/charlie", Shell: userspace.BinSh},
	}
	shadow := []accountdb.ShadowEntry{
		{Name: "root", Hash: hash("root", RootPassword)},
		{Name: "Debian-exim", Hash: "!"},
		{Name: "www-data", Hash: "!"},
		{Name: "alice", Hash: hash("alice", AlicePassword)},
		{Name: "bob", Hash: hash("bob", BobPassword)},
		{Name: "charlie", Hash: hash("charlie", CharliePassword)},
	}
	groups := []accountdb.Group{
		{Name: "root", GID: GIDRoot},
		{Name: "wheel", GID: GIDWheel, Members: []string{"alice", "charlie"}},
		{Name: "ops", GID: GIDOps, Password: accountdb.HashPassword(OpsGroupPassword, "pggops"), Members: []string{"alice"}},
		{Name: "www-data", GID: GIDWWW},
		{Name: "shadow", GID: GIDShadow},
		{Name: "users", GID: GIDUsers, Members: []string{"alice", "bob", "charlie"}},
		{Name: "Debian-exim", GID: GIDExim},
	}
	files := []struct {
		path     string
		content  string
		mode     vfs.Mode
		uid, gid int
	}{
		{accountdb.PasswdFile, accountdb.FormatPasswd(users), 0o644, 0, 0},
		{accountdb.ShadowFile, accountdb.FormatShadow(shadow), 0o600, 0, GIDShadow},
		{accountdb.GroupFile, accountdb.FormatGroup(groups), 0o644, 0, 0},
		{"/etc/shells", "/bin/sh\n/bin/bash\n/bin/zsh\n", 0o644, 0, 0},
		{"/etc/fstab", fstabContent, 0o644, 0, 0},
		{"/etc/sudoers", sudoersContent, 0o440, 0, 0},
		{"/etc/sudoers.d/printing", "bob ALL = (alice) /usr/bin/lpr\n", 0o440, 0, 0},
		{"/etc/bind", bindContent, 0o644, 0, 0},
		{"/etc/ppp/options", pppOptionsContent, 0o644, 0, 0},
		{userspace.HostKeyPath, "HOSTKEY-SECRET-MATERIAL", 0o600, 0, 0},
		{"/sys/block/dm-0/dm/slaves", "/dev/sda2\n", 0o444, 0, 0},
		{"/etc/motd", "Welcome to the Protego reproduction machine.\n", 0o644, 0, 0},
	}
	for _, f := range files {
		if err := fs.WriteFile(vfs.RootCred, f.path, []byte(f.content), f.mode, f.uid, f.gid); err != nil {
			return fmt.Errorf("%s: %w", f.path, err)
		}
	}
	return nil
}

const fstabContent = `# <device> <mountpoint> <fstype> <options> <dump> <pass>
/dev/sda1  /            ext4     defaults          0 1
/dev/cdrom /cdrom       iso9660  ro,user,noauto    0 0
/dev/sdb1  /media/usb   vfat     rw,users,noauto   0 0
/dev/sdc1  /mnt/backup  ext4     rw                0 0
`

const sudoersContent = `Defaults env_keep = "TERM LANG HOME PATH"
Defaults timestamp_timeout = 5
Cmnd_Alias PRINT = /usr/bin/lpr
root    ALL = (ALL) ALL
alice   ALL = (root) ALL
%wheel  ALL = (root) NOPASSWD: /bin/ls
bob     ALL = (root) /usr/lib/sudoedit-helper
`

const bindContent = `# port proto binary user
25 tcp /usr/sbin/exim4 Debian-exim
80 tcp /usr/sbin/httpd www-data
`

const pppOptionsContent = `# pppd policy
device /dev/ppp
user-routes
safe-param vj-max-slots
asyncmap 0
`

func (m *Machine) makeDevices() error {
	fs := m.K.FS
	pppMode := vfs.Mode(0o600)
	if m.K.Mode == kernel.ModeProtego {
		// Protego relaxes /dev/ppp permissions, replacing a capability
		// check with device file permissions (§4.1.2).
		pppMode = 0o666
	}
	devices := []struct {
		path         string
		typ          vfs.DeviceType
		major, minor int
		mode         vfs.Mode
	}{
		{"/dev/null", vfs.CharDevice, 1, 3, 0o666},
		{"/dev/cdrom", vfs.BlockDevice, 11, 0, 0o660},
		{"/dev/sdb1", vfs.BlockDevice, 8, 17, 0o660},
		{"/dev/sdc1", vfs.BlockDevice, 8, 33, 0o660},
		{"/dev/ppp", vfs.CharDevice, 108, 0, pppMode},
		{"/dev/dm-0", vfs.BlockDevice, 254, 0, 0o660},
		{"/dev/dri0", vfs.CharDevice, 226, 0, 0o666},
	}
	for _, d := range devices {
		if _, err := fs.Mknod(vfs.RootCred, d.path, d.typ, d.major, d.minor, d.mode, 0, 0); err != nil {
			return fmt.Errorf("%s: %w", d.path, err)
		}
	}
	// A ppp0 modem interface for pppd to attach.
	m.K.Net.AddIface(&netstack.Iface{Name: "ppp0", Modem: true})
	return nil
}

func (m *Machine) registerDeviceHandlers() {
	k := m.K
	// /dev/ppp: modem attach/detach/session parameters.
	k.RegisterDevice(userspace.PppDevice, func(t *kernel.Task, cmd uint32, arg any, granted bool) error {
		switch cmd {
		case kernel.PPPIOCATTACH:
			name, ok := arg.(string)
			if !ok {
				return errno.EINVAL
			}
			iface := k.Net.Iface(name)
			if iface == nil || !iface.Modem {
				return errno.ENODEV
			}
			if !granted && !t.Capable(caps.CAP_NET_ADMIN) {
				return errno.EPERM
			}
			if iface.InUse && iface.Owner != t.UID() {
				return errno.EBUSY
			}
			iface.InUse = true
			iface.Owner = t.UID()
			iface.Up = true
			return nil
		case kernel.PPPIOCDETACH:
			name, ok := arg.(string)
			if !ok {
				return errno.EINVAL
			}
			iface := k.Net.Iface(name)
			if iface == nil {
				return errno.ENODEV
			}
			if iface.Owner != t.UID() && !t.Capable(caps.CAP_NET_ADMIN) {
				return errno.EPERM
			}
			iface.InUse = false
			iface.Up = false
			iface.Owner = 0
			return nil
		case kernel.PPPIOCSPARAM:
			kv, ok := arg.([2]string)
			if !ok {
				return errno.EINVAL
			}
			if !granted && !t.Capable(caps.CAP_NET_ADMIN) {
				return errno.EPERM
			}
			for _, iface := range k.Net.Ifaces() {
				if iface.Modem && iface.Owner == t.UID() {
					iface.Params[kv[0]] = kv[1]
				}
			}
			return nil
		default:
			return errno.ENOTTY
		}
	})

	// /dev/dm-0: the dmcrypt metadata ioctl — discloses the key, so it
	// requires CAP_SYS_ADMIN and Protego never grants it.
	k.RegisterDevice("/dev/dm-0", func(t *kernel.Task, cmd uint32, arg any, granted bool) error {
		if cmd != kernel.DMGETINFO {
			return errno.ENOTTY
		}
		if !granted && !t.Capable(caps.CAP_SYS_ADMIN) {
			return errno.EPERM
		}
		info, ok := arg.(*userspace.DMInfo)
		if !ok {
			return errno.EINVAL
		}
		info.PhysicalDevice = "/dev/sda2"
		info.Key = "aes-xts-plain64:deadbeefcafef00d"
		return nil
	})

	// /dev/dri0: video mode control; baseline demands CAP_SYS_ADMIN (and
	// friends), Protego grants it because KMS made the kernel own the
	// context switch.
	k.RegisterDevice(userspace.VideoDevice, func(t *kernel.Task, cmd uint32, arg any, granted bool) error {
		if cmd != kernel.VIDIOCSMODE {
			return errno.ENOTTY
		}
		if !granted && !(t.Capable(caps.CAP_SYS_ADMIN) && t.Capable(caps.CAP_SYS_RAWIO) &&
			t.Capable(caps.CAP_CHOWN) && t.Capable(caps.CAP_DAC_OVERRIDE)) {
			return errno.EPERM
		}
		return nil
	})
}

// setuidBinaries are the studied binaries that carry the setuid bit on the
// baseline; on Protego the bit is simply absent (Table 1: "Percentage of
// deployed systems that can eliminate the setuid bit").
var setuidBinaries = map[string]bool{
	userspace.BinMount: true, userspace.BinUmount: true, userspace.BinFusermount: true,
	userspace.BinPing: true, userspace.BinTraceroute: true, userspace.BinArping: true,
	userspace.BinMtr: true, userspace.BinSudo: true, userspace.BinSudoedit: true,
	userspace.BinSu: true, userspace.BinNewgrp: true, userspace.BinGpasswd: true,
	userspace.BinPasswd: true, userspace.BinChsh: true, userspace.BinChfn: true,
	userspace.BinPppd: true, userspace.BinExim: true, userspace.BinDmcrypt: true,
	userspace.BinSSHKeysign: true, userspace.BinXserver: true, userspace.BinHttpd: true,
	// The one §4.6 concession: on the baseline's pre-3.8 kernel the
	// sandbox helper must be setuid to call unshare(2); on Protego the
	// kernel permits unprivileged user+net namespaces and the bit goes.
	userspace.BinChromiumSandbox: true,
	userspace.BinEject:           true,
	userspace.BinFping:           true,
	userspace.BinTracepath:       true,
}

// SetuidBinaries exposes the baseline's setuid set (for the survey and
// security evaluation).
func SetuidBinaries() []string {
	out := make([]string, 0, len(setuidBinaries))
	for p := range setuidBinaries {
		out = append(out, p)
	}
	return out
}

func (m *Machine) installBinaries() error {
	fs := m.K.FS
	all := []string{
		userspace.BinMount, userspace.BinUmount, userspace.BinFusermount,
		userspace.BinPing, userspace.BinTraceroute, userspace.BinArping, userspace.BinMtr,
		userspace.BinSudo, userspace.BinSudoedit, userspace.BinSudoeditHelper, userspace.BinSu,
		userspace.BinNewgrp, userspace.BinGpasswd, userspace.BinPasswd, userspace.BinChsh,
		userspace.BinChfn, userspace.BinVipw, userspace.BinLogin, userspace.BinPppd,
		userspace.BinExim, userspace.BinDmcrypt, userspace.BinSSHKeysign, userspace.BinXserver,
		userspace.BinSh, userspace.BinID, userspace.BinLs, userspace.BinLpr,
		userspace.BinIptables, userspace.BinHttpd, userspace.BinChromiumSandbox,
		userspace.BinEject, userspace.BinFping, userspace.BinTracepath,
	}
	for _, path := range all {
		mode := vfs.Mode(0o755)
		if m.K.Mode == kernel.ModeLinux && setuidBinaries[path] {
			mode = 0o4755
		}
		if err := fs.WriteFile(vfs.RootCred, path, []byte("#!ELF "+path), mode, 0, 0); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if err := fs.Chmod(vfs.RootCred, path, mode); err != nil {
			return err
		}
	}
	return nil
}

// loadSampleProfiles installs representative AppArmor confinement for the
// baseline's trusted binaries (the hardened configuration of §1's
// discussion: even confined, mount can still change the fs tree).
func loadSampleProfiles(m *apparmor.Module) {
	m.LoadProfile(&apparmor.Profile{
		Binary:         userspace.BinMount,
		MountPoints:    []string{"/cdrom", "/media", "/mnt"},
		WritePaths:     []string{"/etc/mtab", "/var/log"},
		DenyWritePaths: []string{"/etc/shadow", "/etc/passwd"},
	})
	m.LoadProfile(&apparmor.Profile{
		Binary:         userspace.BinPing,
		WritePaths:     []string{"/dev/null"},
		DenyWritePaths: []string{"/etc"},
	})
}

// Session creates a logged-in task for the named user (fork of init with
// the user's credentials, groups, home cwd, and a fresh terminal).
func (m *Machine) Session(username string) (*kernel.Task, error) {
	u, err := m.DB.LookupUser(username)
	if err != nil {
		return nil, fmt.Errorf("world: no user %q", username)
	}
	gids, _ := m.DB.GroupIDsOf(username)
	t := m.K.Fork(m.Init)
	creds := kernel.UserCreds(u.UID, u.GID, gids...)
	if u.UID == 0 {
		creds = kernel.RootCreds()
	}
	t.SetUserCreds(creds)
	_ = m.K.Chdir(t, u.Home)
	t.Stdout = &bytes.Buffer{}
	t.Stderr = &bytes.Buffer{}
	t.Setenv("HOME", u.Home)
	t.Setenv("USER", u.Name)
	return t, nil
}

// Run spawns argv[0] in a child of session with fresh output buffers; the
// asker answers password prompts (nil means "no terminal").
func (m *Machine) Run(session *kernel.Task, argv []string, asker func(string) string) (int, string, string, error) {
	res, err := m.K.Spawn(session, argv[0], argv, nil, kernel.SpawnOpts{Capture: true, Asker: asker})
	return res.Code, res.Stdout, res.Stderr, err
}

// AnswerWith returns an asker that always answers with password.
func AnswerWith(password string) func(string) string {
	return func(string) string { return password }
}
