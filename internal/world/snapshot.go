package world

import (
	"fmt"

	"protego/internal/accountdb"
	"protego/internal/authsvc"
	"protego/internal/monitord"
	"protego/internal/seccomp"
)

// Snapshot is a frozen golden image of a machine. Clone stamps out
// independent machines that share the image's file system copy-on-write,
// so cloning costs a small fraction of a fresh Build. The golden machine
// stays usable; mutations on any side are private (sealed inodes are
// copied up before the first write).
type Snapshot struct {
	src *Machine
}

// Snapshot freezes the machine's file system and returns a handle for
// stamping clones. The machine should be quiescent (no syscalls in
// flight); afterwards it can keep running — its own writes copy up too.
func (m *Machine) Snapshot() *Snapshot {
	m.K.FS.Freeze()
	return &Snapshot{src: m}
}

// Machine returns the golden machine backing the snapshot.
func (s *Snapshot) Machine() *Machine { return s.src }

// Clone builds an independent machine from the snapshot. The kernel,
// task table, credentials, netstack, and netfilter table are deep-copied;
// the file system is shared copy-on-write; the LSM stack (AppArmor, and
// on Protego the core module with its policy state) is recreated against
// the clone with the parent's policies; device handlers and the
// /proc/trace and /proc/protego interfaces are rebound to the clone's
// own objects. At clone time the new machine's Fingerprint equals the
// parent's.
func (s *Snapshot) Clone() (*Machine, error) {
	p := s.src
	k := p.K.Clone()
	m := &Machine{K: k, DB: accountdb.NewDB(k.FS)}
	m.registerDeviceHandlers()
	if err := k.RebindTraceProc(); err != nil {
		return nil, fmt.Errorf("world: clone trace proc: %w", err)
	}

	// Same LSM order as Build: AppArmor first, Protego extends it.
	m.AppArmor = p.AppArmor.Clone()
	k.LSM.Register(m.AppArmor)

	m.Auth = authsvc.New(m.DB)
	m.Auth.SetTracer(k.Trace)
	m.Auth.SetWindow(p.Auth.Window())
	if p.Protego != nil {
		mod, err := p.Protego.CloneInto(k, m.DB, m.Auth)
		if err != nil {
			return nil, fmt.Errorf("world: clone protego: %w", err)
		}
		m.Protego = mod
		m.Monitor = monitord.New(k, m.DB, mod)
	}
	if p.Seccomp != nil {
		// Last in the chain, as in Build. Profiles are immutable, so the
		// clone's module shares the parent's set by reference; tasks keep
		// their inherited profile blobs through Kernel.Clone's blob copy,
		// and the syscall gate itself was copied with the kernel.
		m.Seccomp = seccomp.NewModule(p.Seccomp.Set(), p.Seccomp.Audit())
		k.LSM.Register(m.Seccomp)
	}

	m.Init = k.Task(p.Init.PID())
	if m.Init == nil {
		return nil, fmt.Errorf("world: clone lost init (pid %d)", p.Init.PID())
	}
	return m, nil
}
