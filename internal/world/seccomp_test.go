package world

import (
	"strings"
	"testing"

	"protego/internal/errno"
	"protego/internal/kernel"
	"protego/internal/netstack"
	"protego/internal/seccomp"
	"protego/internal/userspace"
)

// restrictedInitSet builds a machine image whose session tasks (which
// inherit init's binary path until they exec) are allowed everything
// except the given syscalls; the machine union stays full so exec-ed
// children are unconstrained.
func restrictedInitSet(forbid ...kernel.Sysno) *seccomp.ProfileSet {
	set := seccomp.NewSet(kernel.ModeProtego.String())
	set.Machine = seccomp.FullProfile("")
	p := seccomp.FullProfile("/sbin/init")
	for _, sn := range forbid {
		p.Forbid(sn)
	}
	set.Add(p)
	return set
}

func seccompMachine(t *testing.T, set *seccomp.ProfileSet) *Machine {
	t.Helper()
	m, err := Build(Options{Mode: kernel.ModeProtego, SeccompProfiles: set})
	if err != nil {
		t.Fatal(err)
	}
	if m.Seccomp == nil || !m.K.SyscallGate() {
		t.Fatal("Build did not install the seccomp module and arm the gate")
	}
	return m
}

// TestSeccompForkInheritExecSwap pins the profile lifecycle: exec installs
// the new image's profile as the task's blob, fork copies the blob to the
// child, and exec into an unprofiled binary clears it so the task falls
// back to the machine union.
func TestSeccompForkInheritExecSwap(t *testing.T) {
	set := seccomp.NewSet(kernel.ModeProtego.String())
	set.Machine = seccomp.FullProfile("")
	sh := seccomp.FullProfile(userspace.BinSh)
	sh.Forbid(kernel.SysKill)
	set.Add(sh)

	m := seccompMachine(t, set)
	k := m.K
	sess, err := m.Session("root")
	if err != nil {
		t.Fatal(err)
	}

	// Pre-exec: no blob, /sbin/init is unprofiled → machine union → allowed.
	if err := k.Kill(sess, sess.PID(), 15); err != nil {
		t.Fatalf("kill under machine union: %v", err)
	}

	child := k.Fork(sess)
	if code, err := k.Exec(child, userspace.BinSh, []string{userspace.BinSh, "-c", "true"}, nil); err != nil || code != 0 {
		t.Fatalf("exec sh: code=%d err=%v", code, err)
	}
	if p, _ := child.SecurityBlob(seccomp.BlobKey).(*seccomp.Profile); p == nil || p.Binary != userspace.BinSh {
		t.Fatalf("exec did not install the sh profile blob: %v", child.SecurityBlob(seccomp.BlobKey))
	}
	if err := k.Kill(child, child.PID(), 15); !errno.Is(err, errno.ENOSYS) {
		t.Fatalf("kill outside sh profile: err=%v, want ENOSYS", err)
	}

	// Fork inherits the blob: the grandchild is still confined to the sh
	// profile even though it never exec-ed.
	grand := k.Fork(child)
	if err := k.Kill(grand, grand.PID(), 15); !errno.Is(err, errno.ENOSYS) {
		t.Fatalf("kill in forked child of sh: err=%v, want ENOSYS", err)
	}

	// Exec into an unprofiled binary clears the blob → machine union again.
	if code, err := k.Exec(grand, userspace.BinID, nil, nil); err != nil || code != 0 {
		t.Fatalf("exec id: code=%d err=%v", code, err)
	}
	if grand.SecurityBlob(seccomp.BlobKey) != nil {
		t.Fatal("exec into unprofiled binary left a stale profile blob")
	}
	if err := k.Kill(grand, grand.PID(), 15); err != nil {
		t.Fatalf("kill after swap back to machine union: %v", err)
	}
}

// TestSeccompFailClosed: an out-of-profile syscall must return ENOSYS
// through the unified errno helpers, leave no partial state behind, and
// the identical operation must succeed once the gate is disarmed — the
// same discipline the fault-injection error paths are held to.
func TestSeccompFailClosed(t *testing.T) {
	cases := []struct {
		name   string
		forbid kernel.Sysno
		op     func(k *kernel.Kernel, tk *kernel.Task) error
		ghost  string // path that must NOT exist after the denial
	}{
		{"mkdir", kernel.SysMkdir,
			func(k *kernel.Kernel, tk *kernel.Task) error {
				return k.Mkdir(tk, "/tmp/seccomp-dir", 0o755)
			}, "/tmp/seccomp-dir"},
		{"writefile", kernel.SysWriteFile,
			func(k *kernel.Kernel, tk *kernel.Task) error {
				return k.WriteFile(tk, "/tmp/seccomp-file", []byte("x"))
			}, "/tmp/seccomp-file"},
		{"socket", kernel.SysSocket,
			func(k *kernel.Kernel, tk *kernel.Task) error {
				s, err := k.Socket(tk, netstack.AF_INET, netstack.SOCK_DGRAM, netstack.IPPROTO_UDP)
				if err == nil {
					_ = k.CloseSocket(tk, s)
				}
				return err
			}, ""},
		{"unlink", kernel.SysUnlink,
			func(k *kernel.Kernel, tk *kernel.Task) error {
				return k.Unlink(tk, "/etc/motd")
			}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := seccompMachine(t, restrictedInitSet(c.forbid))
			k := m.K
			sess, err := m.Session("root")
			if err != nil {
				t.Fatal(err)
			}
			err = c.op(k, sess)
			if err == nil {
				t.Fatalf("expected ENOSYS, got success")
			}
			if !errno.Is(err, errno.ENOSYS) {
				t.Fatalf("error %v does not unwrap to ENOSYS", err)
			}
			if errno.Of(err) != errno.ENOSYS {
				t.Fatalf("errno.Of(%v) = %v, want ENOSYS", err, errno.Of(err))
			}
			if c.ghost != "" {
				if _, err := k.Stat(sess, c.ghost); !errno.Is(err, errno.ENOENT) {
					t.Fatalf("denied syscall left partial state at %s (stat err=%v)", c.ghost, err)
				}
			}
			// Unlink must not have touched its target either.
			if c.forbid == kernel.SysUnlink {
				if _, err := k.Stat(sess, "/etc/motd"); err != nil {
					t.Fatalf("denied unlink damaged /etc/motd: %v", err)
				}
			}
			// The denial is spent state-free: disarm the gate and the same
			// operation succeeds on the same machine.
			k.SetSyscallGate(false)
			if err := c.op(k, sess); err != nil {
				t.Fatalf("operation still failing after gate disarmed: %v", err)
			}
		})
	}
}

// TestSeccompDecisionsInTraceStats: TaskSyscall outcomes must be visible
// in /proc/trace/stats — denials as decision counters attributed to the
// seccomp module, unanimous allows through the lsm.syscall.allow
// fast-path counter.
func TestSeccompDecisionsInTraceStats(t *testing.T) {
	m := seccompMachine(t, restrictedInitSet(kernel.SysMkdir))
	k := m.K
	sess, err := m.Session("root")
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Mkdir(sess, "/tmp/denied", 0o755); !errno.Is(err, errno.ENOSYS) {
		t.Fatalf("mkdir: err=%v, want ENOSYS", err)
	}
	if _, err := k.ReadFile(sess, "/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	stats, err := k.ReadFile(sess, kernel.ProcTraceStats)
	if err != nil {
		t.Fatal(err)
	}
	text := string(stats)
	if !strings.Contains(text, "lsm.syscall.allow") {
		t.Error("stats missing the lsm.syscall.allow fast-path counter")
	}
	var denyLine bool
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "TaskSyscall") &&
			strings.Contains(line, "seccomp") && strings.Contains(line, "deny") {
			denyLine = true
		}
	}
	if !denyLine {
		t.Errorf("stats missing the seccomp TaskSyscall deny counter:\n%s", text)
	}
}

// TestSeccompSurvivesSnapshotClone: a stamped clone keeps the parent's
// profiles (shared by reference), its armed gate, and its denials; blobs
// installed before the snapshot travel with the cloned tasks.
func TestSeccompSurvivesSnapshotClone(t *testing.T) {
	set := restrictedInitSet(kernel.SysMkdir)
	parent := seccompMachine(t, set)
	snap := parent.Snapshot()
	clone, err := snap.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.Seccomp == nil {
		t.Fatal("clone lost the seccomp module")
	}
	if clone.Seccomp.Set() != set {
		t.Fatal("clone's module does not share the parent's profile set")
	}
	if !clone.K.SyscallGate() {
		t.Fatal("clone's syscall gate is disarmed")
	}
	for name, m := range map[string]*Machine{"parent": parent, "clone": clone} {
		sess, err := m.Session("root")
		if err != nil {
			t.Fatal(err)
		}
		if err := m.K.Mkdir(sess, "/tmp/post-clone", 0o755); !errno.Is(err, errno.ENOSYS) {
			t.Fatalf("%s: mkdir err=%v, want ENOSYS", name, err)
		}
		if _, err := m.K.ReadFile(sess, "/etc/passwd"); err != nil {
			t.Fatalf("%s: allowed syscall failed: %v", name, err)
		}
	}
	// Disarming the clone's gate must not disarm the parent's.
	clone.K.SetSyscallGate(false)
	if !parent.K.SyscallGate() {
		t.Fatal("clone gate state leaked into the parent")
	}
}
