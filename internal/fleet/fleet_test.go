package fleet

import (
	"strings"
	"sync"
	"testing"

	"protego/internal/kernel"
	"protego/internal/vfs"
)

func newFleet(t *testing.T, tenants, ops int) *Manager {
	t.Helper()
	f, err := NewManager(kernel.ModeProtego)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Stamp(tenants); err != nil {
		t.Fatal(err)
	}
	if err := f.RunWorkloads(ops); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFleetSmoke is the CI smoke configuration: 64 tenants from one
// golden image, mixed concurrent workloads, zero cross-tenant leakage.
func TestFleetSmoke(t *testing.T) {
	f := newFleet(t, 64, 30)
	if problems := f.CheckIsolation(); len(problems) > 0 {
		t.Fatalf("isolation violated:\n  %s", strings.Join(problems, "\n  "))
	}
	agg := f.AggregateCounters()
	if agg.Tenants != 64 {
		t.Fatalf("aggregated %d tenants, want 64", agg.Tenants)
	}
	if agg.Emitted == 0 {
		t.Fatal("no trace events aggregated across the fleet")
	}
	for id, n := range agg.ByTenant {
		if n == 0 {
			t.Fatalf("tenant %d emitted no trace events", id)
		}
	}
}

// TestFleetScale is the acceptance floor: 256 concurrent tenant machines
// with per-tenant isolation still holding.
func TestFleetScale(t *testing.T) {
	if testing.Short() {
		t.Skip("256-tenant fleet in -short mode")
	}
	f := newFleet(t, 256, 10)
	if got := len(f.Tenants()); got != 256 {
		t.Fatalf("stamped %d tenants, want 256", got)
	}
	if problems := f.CheckIsolation(); len(problems) > 0 {
		t.Fatalf("isolation violated:\n  %s", strings.Join(problems, "\n  "))
	}
}

// TestFleetPolicyPush: one control-plane push lands the new whitelist
// row on every tenant (config file AND in-kernel policy), the golden
// image stays pre-push, and newly stamped tenants don't inherit it.
func TestFleetPolicyPush(t *testing.T) {
	f := newFleet(t, 8, 5)
	const line = "/dev/sde1  /mnt/backup  ext4  rw,user,noauto  0 0"
	if err := f.PushMountPolicy(line); err != nil {
		t.Fatal(err)
	}
	for _, tn := range f.Tenants() {
		fstab, err := tn.Machine.K.FS.ReadFile(vfs.RootCred, "/etc/fstab")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(fstab), "/dev/sde1") {
			t.Fatalf("tenant %d fstab missing pushed row", tn.ID)
		}
		found := false
		for _, r := range tn.Machine.Protego.MountRules() {
			if r.Device == "/dev/sde1" && r.MountPoint == "/mnt/backup" {
				found = true
			}
		}
		if !found {
			t.Fatalf("tenant %d in-kernel whitelist missing pushed row", tn.ID)
		}
		// The push is live: the tenant's user can now make the mount.
		if err := tn.Machine.K.Mount(tn.Session, "/dev/sde1", "/mnt/backup", "ext4", []string{"rw"}); err != nil {
			t.Fatalf("tenant %d: pushed policy not effective: %v", tn.ID, err)
		}
	}
	goldenFstab, err := f.Golden().K.FS.ReadFile(vfs.RootCred, "/etc/fstab")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(goldenFstab), "/dev/sde1") {
		t.Fatal("policy push leaked into the golden image")
	}
	if err := f.Stamp(1); err != nil {
		t.Fatal(err)
	}
	fresh := f.Tenants()[len(f.Tenants())-1]
	for _, r := range fresh.Machine.Protego.MountRules() {
		if r.Device == "/dev/sde1" {
			t.Fatal("freshly stamped tenant inherited a post-snapshot policy push")
		}
	}
}

// TestFleetConcurrentStamp: concurrent Stamp calls must never mint
// duplicate tenant IDs — a duplicate would collide marker paths and
// read as a false isolation violation.
func TestFleetConcurrentStamp(t *testing.T) {
	f, err := NewManager(kernel.ModeProtego)
	if err != nil {
		t.Fatal(err)
	}
	const stamps, batch = 4, 8
	var wg sync.WaitGroup
	errs := make([]error, stamps)
	for i := 0; i < stamps; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = f.Stamp(batch)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	tenants := f.Tenants()
	if len(tenants) != stamps*batch {
		t.Fatalf("fleet has %d tenants, want %d", len(tenants), stamps*batch)
	}
	seen := make(map[int]bool, len(tenants))
	for _, tn := range tenants {
		if seen[tn.ID] {
			t.Fatalf("duplicate tenant ID %d", tn.ID)
		}
		seen[tn.ID] = true
	}
	if err := f.RunWorkloads(5); err != nil {
		t.Fatal(err)
	}
	if problems := f.CheckIsolation(); len(problems) > 0 {
		t.Fatalf("isolation violated:\n  %s", strings.Join(problems, "\n  "))
	}
}

// TestFleetBaselineMode: the manager also works over baseline-Linux
// images (no Protego module, no monitord) — pushes just skip the reload.
func TestFleetBaselineMode(t *testing.T) {
	f, err := NewManager(kernel.ModeLinux)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Stamp(4); err != nil {
		t.Fatal(err)
	}
	if err := f.RunWorkloads(10); err != nil {
		t.Fatal(err)
	}
	if err := f.PushMountPolicy("/dev/sde1  /mnt/backup  ext4  rw,user,noauto  0 0"); err != nil {
		t.Fatal(err)
	}
	if problems := f.CheckIsolation(); len(problems) > 0 {
		t.Fatalf("isolation violated:\n  %s", strings.Join(problems, "\n  "))
	}
}
