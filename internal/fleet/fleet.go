// Package fleet is a multi-tenant control plane over machine snapshots:
// one golden image is built and frozen, then N tenant machines are
// stamped from it copy-on-write. Each tenant runs its own workload on a
// fully private kernel (task table, netstack, policy, tracer) while
// sharing the unmodified parts of the golden file system; the control
// plane fans policy pushes out to every tenant, aggregates their trace
// counters, and audits cross-tenant isolation against the per-machine
// canonical fingerprint.
//
// The paper's monitord runs one daemon per machine; the fleet manager
// plays the fleet operator above them — a single /etc/fstab change is
// distributed to all tenants and applied by each tenant's own monitord,
// exactly one reload per machine.
package fleet

import (
	"fmt"
	"math/rand"
	"sync"

	"protego/internal/errno"
	"protego/internal/kernel"
	"protego/internal/netstack"
	"protego/internal/userspace"
	"protego/internal/world"
)

// Tenant is one stamped machine plus its long-lived user session.
type Tenant struct {
	ID      int
	Machine *world.Machine
	Session *kernel.Task // alice login, created post-clone
}

// Manager owns the golden image and the tenants stamped from it.
type Manager struct {
	mode     kernel.Mode
	golden   *world.Machine
	snap     *world.Snapshot
	goldenFP string // fingerprint at snapshot time, the isolation oracle

	mu      sync.Mutex
	tenants []*Tenant

	// stampMu serializes Stamp calls end to end: tenant IDs continue from
	// the fleet size, so allocating the ID range and appending the batch
	// must be atomic with respect to other stamps or two callers would
	// mint duplicate IDs (and duplicate marker paths, which would read as
	// false isolation violations).
	stampMu sync.Mutex
}

// NewManager boots one golden machine of the given mode and freezes it.
func NewManager(mode kernel.Mode) (*Manager, error) {
	return NewManagerOpts(world.Options{Mode: mode})
}

// NewManagerOpts boots the golden machine from full build options, for
// fleets whose tenants need more than a bare mode — e.g. machine images
// with seccomp profiles installed, which every stamped tenant inherits
// through the snapshot.
func NewManagerOpts(opts world.Options) (*Manager, error) {
	m, err := world.Build(opts)
	if err != nil {
		return nil, fmt.Errorf("fleet: build golden: %w", err)
	}
	snap := m.Snapshot()
	return &Manager{mode: opts.Mode, golden: m, snap: snap, goldenFP: m.Fingerprint()}, nil
}

// Golden returns the golden machine backing the fleet.
func (f *Manager) Golden() *world.Machine { return f.golden }

// Tenants returns the stamped tenants, in ID order.
func (f *Manager) Tenants() []*Tenant {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Tenant(nil), f.tenants...)
}

// Stamp clones n new tenant machines concurrently and opens a user
// session on each. Tenant IDs continue from the current fleet size;
// concurrent Stamp calls are serialized so the range is allocated and
// committed atomically. The batch joins the fleet all-or-nothing: on any
// clone or session failure the whole batch is discarded — the clones
// hold no external resources, so dropping them is a complete teardown —
// and the fleet is left exactly as before the call.
func (f *Manager) Stamp(n int) error {
	f.stampMu.Lock()
	defer f.stampMu.Unlock()
	f.mu.Lock()
	base := len(f.tenants)
	f.mu.Unlock()

	made := make([]*Tenant, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := f.snap.Clone()
			if err != nil {
				errs[i] = fmt.Errorf("fleet: clone tenant %d: %w", base+i, err)
				return
			}
			sess, err := m.Session("alice")
			if err != nil {
				errs[i] = fmt.Errorf("fleet: tenant %d session: %w", base+i, err)
				return
			}
			made[i] = &Tenant{ID: base + i, Machine: m, Session: sess}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	f.mu.Lock()
	f.tenants = append(f.tenants, made...)
	f.mu.Unlock()
	return nil
}

// RunWorkloads executes ops mixed syscalls on every tenant concurrently.
// Each tenant's stream is seeded by its ID, so runs are deterministic
// per tenant but differ across tenants. The mix covers the subsystems a
// clone must keep private: files, directories, user mounts (whitelisted
// on Protego), sockets and port reservations, and a setuid-free utility
// run. Every tenant also drops a marker file that CheckIsolation later
// uses to prove nothing leaked across machines.
func (f *Manager) RunWorkloads(ops int) error {
	tenants := f.Tenants()
	errs := make([]error, len(tenants))
	var wg sync.WaitGroup
	for i, tn := range tenants {
		wg.Add(1)
		go func(i int, tn *Tenant) {
			defer wg.Done()
			errs[i] = tn.workload(ops)
		}(i, tn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// markerPath is the per-tenant file CheckIsolation audits.
func markerPath(id int) string { return fmt.Sprintf("/tmp/tenant-%d", id) }

func (t *Tenant) workload(ops int) error {
	k := t.Machine.K
	sess := t.Session
	if err := k.WriteFile(sess, markerPath(t.ID), []byte(fmt.Sprintf("tenant %d", t.ID))); err != nil {
		return fmt.Errorf("tenant %d marker: %w", t.ID, err)
	}
	rng := rand.New(rand.NewSource(int64(t.ID) + 1))
	var sock *netstack.Socket
	for op := 0; op < ops; op++ {
		switch rng.Intn(8) {
		case 0:
			path := fmt.Sprintf("/tmp/t%d-f%d", t.ID, rng.Intn(4))
			if err := k.WriteFile(sess, path, []byte(fmt.Sprintf("op %d", op))); err != nil {
				return fmt.Errorf("tenant %d write %s: %w", t.ID, path, err)
			}
		case 1:
			if _, err := k.ReadFile(sess, "/etc/passwd"); err != nil {
				return fmt.Errorf("tenant %d read passwd: %w", t.ID, err)
			}
		case 2:
			// Recreating an existing directory is fine; only the first
			// mkdir of each name does work.
			path := fmt.Sprintf("/home/alice/d%d", rng.Intn(4))
			if err := k.Mkdir(sess, path, 0o755); err != nil && !isExist(err) {
				return fmt.Errorf("tenant %d mkdir %s: %w", t.ID, path, err)
			}
		case 3:
			// Whitelisted user mount (row "/dev/sdb1 /media/usb vfat
			// rw,users,noauto"): granted in-kernel on Protego, root-only
			// on the baseline — either way it must stay tenant-local.
			err := k.Mount(sess, "/dev/sdb1", "/media/usb", "vfat", []string{"rw", "nosuid", "nodev"})
			if err == nil {
				if err := k.Umount(sess, "/media/usb"); err != nil {
					return fmt.Errorf("tenant %d umount: %w", t.ID, err)
				}
			}
		case 4:
			if sock == nil {
				s, err := k.Socket(sess, netstack.AF_INET, netstack.SOCK_DGRAM, netstack.IPPROTO_UDP)
				if err != nil {
					return fmt.Errorf("tenant %d socket: %w", t.ID, err)
				}
				sock = s
				// The same port in every tenant: a shared netstack would
				// refuse all but the first fleet-wide bind.
				if err := k.Bind(sess, sock, 8080); err != nil {
					return fmt.Errorf("tenant %d bind 8080: %w", t.ID, err)
				}
			}
		case 5:
			if sock != nil {
				if err := k.CloseSocket(sess, sock); err != nil {
					return fmt.Errorf("tenant %d close socket: %w", t.ID, err)
				}
				sock = nil
			}
		case 6:
			child := k.Fork(sess)
			k.Exit(child, 0)
		case 7:
			if code, _, stderr, err := t.Machine.Run(sess, []string{userspace.BinID}, nil); err != nil || code != 0 {
				return fmt.Errorf("tenant %d id: code=%d err=%v stderr=%s", t.ID, code, err, stderr)
			}
		}
	}
	if sock != nil {
		if err := k.CloseSocket(sess, sock); err != nil {
			return fmt.Errorf("tenant %d close socket: %w", t.ID, err)
		}
	}
	return nil
}

func isExist(err error) bool {
	return errno.Of(err) == errno.EEXIST
}
