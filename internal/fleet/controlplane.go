package fleet

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"protego/internal/vfs"
)

// Counters is the fleet-wide aggregation of per-tenant trace state: one
// tenant's tracer sees only its own machine (clones start with a fresh
// ring), so the sums here are exactly the per-tenant counters added up.
type Counters struct {
	Tenants  int
	Emitted  uint64
	Dropped  uint64
	ByKind   map[string]uint64
	ByTenant map[int]uint64 // tenant ID -> events emitted there
}

// AggregateCounters collects every tenant's trace stats and sums them.
func (f *Manager) AggregateCounters() Counters {
	agg := Counters{ByKind: map[string]uint64{}, ByTenant: map[int]uint64{}}
	for _, tn := range f.Tenants() {
		s := tn.Machine.K.Trace.Stats()
		agg.Tenants++
		agg.Emitted += s.Emitted
		agg.Dropped += s.Dropped
		agg.ByTenant[tn.ID] = s.Emitted
		for kind, n := range s.ByKind {
			agg.ByKind[kind] += n
		}
	}
	return agg
}

// String renders the aggregate with the busiest kinds first.
func (c Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet trace: tenants=%d emitted=%d dropped=%d\n", c.Tenants, c.Emitted, c.Dropped)
	kinds := make([]string, 0, len(c.ByKind))
	for k, n := range c.ByKind {
		if n > 0 {
			kinds = append(kinds, k)
		}
	}
	sort.Slice(kinds, func(i, j int) bool {
		if c.ByKind[kinds[i]] != c.ByKind[kinds[j]] {
			return c.ByKind[kinds[i]] > c.ByKind[kinds[j]]
		}
		return kinds[i] < kinds[j]
	})
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-12s %d\n", k, c.ByKind[k])
	}
	return b.String()
}

// PushMountPolicy distributes one fstab whitelist row to every tenant
// and has each tenant's monitord reload the in-kernel policy — the
// fleet-operator analog of the paper's config-file-to-kernel sync, done
// once per machine instead of once per config editor. The golden image
// is left untouched: a later Stamp still yields pre-push tenants.
func (f *Manager) PushMountPolicy(fstabLine string) error {
	tenants := f.Tenants()
	errs := make([]error, len(tenants))
	var wg sync.WaitGroup
	for i, tn := range tenants {
		wg.Add(1)
		go func(i int, tn *Tenant) {
			defer wg.Done()
			errs[i] = tn.applyMountPolicy(fstabLine)
		}(i, tn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (tn *Tenant) applyMountPolicy(fstabLine string) error {
	fs := tn.Machine.K.FS
	cur, err := fs.ReadFile(vfs.RootCred, "/etc/fstab")
	if err != nil {
		return fmt.Errorf("fleet: tenant %d read fstab: %w", tn.ID, err)
	}
	updated := strings.TrimRight(string(cur), "\n") + "\n" + strings.TrimSpace(fstabLine) + "\n"
	if err := fs.WriteFile(vfs.RootCred, "/etc/fstab", []byte(updated), 0o644, 0, 0); err != nil {
		return fmt.Errorf("fleet: tenant %d write fstab: %w", tn.ID, err)
	}
	if tn.Machine.Monitor == nil {
		return nil // baseline image: no in-kernel policy to reload
	}
	if err := tn.Machine.Monitor.SyncMounts(); err != nil {
		return fmt.Errorf("fleet: tenant %d sync mounts: %w", tn.ID, err)
	}
	return nil
}

// CheckIsolation audits the fleet for cross-tenant leakage: every tenant
// must see its own marker file and nobody else's, no tenant may hold
// another tenant's tasks, and the golden image's fingerprint must still
// be what it was at snapshot time regardless of everything the tenants
// did. Returns the problems found, empty when the fleet is clean.
func (f *Manager) CheckIsolation() []string {
	tenants := f.Tenants()
	var problems []string
	for _, tn := range tenants {
		fs := tn.Machine.K.FS
		if !fs.Exists(vfs.RootCred, markerPath(tn.ID)) {
			problems = append(problems,
				fmt.Sprintf("tenant %d lost its own marker %s", tn.ID, markerPath(tn.ID)))
		}
		for _, other := range tenants {
			if other.ID != tn.ID && fs.Exists(vfs.RootCred, markerPath(other.ID)) {
				problems = append(problems,
					fmt.Sprintf("tenant %d sees tenant %d's marker", tn.ID, other.ID))
			}
		}
		if got := tn.Machine.K.Task(tn.Session.PID()); got != tn.Session {
			problems = append(problems,
				fmt.Sprintf("tenant %d task table does not own its session pid %d", tn.ID, tn.Session.PID()))
		}
	}
	if fp := f.golden.Fingerprint(); fp != f.goldenFP {
		problems = append(problems, "golden image fingerprint drifted after tenant activity")
	}
	return problems
}
