package fleet

import (
	"testing"

	"protego/internal/errno"
	"protego/internal/kernel"
	"protego/internal/seccomp"
	"protego/internal/world"
)

// TestFleetSeccompSmoke stamps a 256-tenant fleet from a golden image
// with seccomp profiles installed and proves every tenant enforces them
// independently: the crafted profile (everything except kill, for tasks
// still carrying init's image) denies kill with ENOSYS on each tenant
// while the mixed workload — which never needs kill — runs clean, and
// cross-tenant isolation holds with the gate armed fleet-wide.
func TestFleetSeccompSmoke(t *testing.T) {
	set := seccomp.NewSet(kernel.ModeProtego.String())
	set.Machine = seccomp.FullProfile("")
	init := seccomp.FullProfile("/sbin/init")
	init.Forbid(kernel.SysKill)
	set.Add(init)

	f, err := NewManagerOpts(world.Options{Mode: kernel.ModeProtego, SeccompProfiles: set})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Stamp(256); err != nil {
		t.Fatal(err)
	}
	if err := f.RunWorkloads(6); err != nil {
		t.Fatalf("workload under seccomp enforcement: %v", err)
	}
	for _, tn := range f.Tenants() {
		k := tn.Machine.K
		if !k.SyscallGate() {
			t.Fatalf("tenant %d: syscall gate disarmed", tn.ID)
		}
		// Sessions fork from init without exec-ing, so the init profile
		// (sans kill) governs them.
		if err := k.Kill(tn.Session, tn.Session.PID(), 15); !errno.Is(err, errno.ENOSYS) {
			t.Fatalf("tenant %d: kill err=%v, want ENOSYS", tn.ID, err)
		}
		if _, err := k.ReadFile(tn.Session, "/etc/passwd"); err != nil {
			t.Fatalf("tenant %d: in-profile read denied: %v", tn.ID, err)
		}
	}
	if leaks := f.CheckIsolation(); len(leaks) != 0 {
		t.Fatalf("isolation violations with seccomp armed: %v", leaks)
	}
}
