package netfilter

import (
	"math/rand"
	"testing"

	"protego/internal/netstack"
)

// scanOutput is the reference: the pre-index full first-match scan.
func scanOutput(t *Table, pkt *netstack.Packet) Verdict {
	c := t.chains["OUTPUT"]
	for _, r := range c.rules {
		if r.matches(pkt) {
			return r.Verdict
		}
	}
	return c.Policy
}

func TestIndexFirstMatchOrder(t *testing.T) {
	tbl := NewTable()
	// An earlier generic rule must win over a later, more specific one
	// even though the specific rule lives in a "better" bucket.
	mustAppend := func(r *Rule) {
		t.Helper()
		if err := tbl.Append("OUTPUT", r); err != nil {
			t.Fatal(err)
		}
	}
	mustAppend(&Rule{Name: "generic-accept", Proto: AnyProto, Verdict: Accept})
	mustAppend(&Rule{Name: "tcp-80-drop", Proto: netstack.IPPROTO_TCP,
		DstPorts: []int{80}, Verdict: Drop})
	pkt := &netstack.Packet{Proto: netstack.IPPROTO_TCP, DstPort: 80}
	if v := tbl.Output(pkt); v != Accept {
		t.Fatalf("verdict = %v, want Accept (first-match order violated)", v)
	}
}

func TestIndexMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	protos := []int{AnyProto, netstack.IPPROTO_ICMP, netstack.IPPROTO_TCP,
		netstack.IPPROTO_UDP, netstack.IPPROTO_RAW}
	for trial := 0; trial < 50; trial++ {
		tbl := NewTable()
		nrules := rng.Intn(20)
		for i := 0; i < nrules; i++ {
			r := &Rule{
				Name:    "r",
				Proto:   protos[rng.Intn(len(protos))],
				Verdict: Verdict(rng.Intn(2)),
			}
			if rng.Intn(2) == 0 && r.Proto != AnyProto {
				for n := rng.Intn(3); n >= 0; n-- {
					r.DstPorts = append(r.DstPorts, rng.Intn(5))
				}
			}
			if rng.Intn(4) == 0 {
				r.UnprivRawOnly = true
			}
			if rng.Intn(4) == 0 {
				r.SpoofedOnly = true
			}
			if err := tbl.Append("OUTPUT", r); err != nil {
				t.Fatal(err)
			}
		}
		if rng.Intn(2) == 0 {
			tbl.SetPolicy("OUTPUT", Drop)
		}
		for p := 0; p < 40; p++ {
			pkt := &netstack.Packet{
				Proto:         protos[1:][rng.Intn(len(protos)-1)],
				DstPort:       rng.Intn(5),
				FromRaw:       rng.Intn(2) == 0,
				UnprivRaw:     rng.Intn(2) == 0,
				SpoofedSource: rng.Intn(2) == 0,
			}
			want := scanOutput(tbl, pkt)
			if got := tbl.Output(pkt); got != want {
				t.Fatalf("trial %d: indexed verdict %v, scan verdict %v (pkt %+v)",
					trial, got, want, pkt)
			}
		}
	}
}

func TestIndexFastpathCounter(t *testing.T) {
	tbl := NewTable()
	for _, r := range ProtegoDefaultRules() {
		if err := tbl.Append("OUTPUT", r); err != nil {
			t.Fatal(err)
		}
	}
	before := tbl.fastpath.Load()
	// A TCP packet cannot match the ICMP or UDP-probe rules: the index
	// prunes them, so the fastpath counter moves.
	tbl.Output(&netstack.Packet{Proto: netstack.IPPROTO_TCP, DstPort: 22, FromRaw: true})
	if got := tbl.fastpath.Load(); got != before+1 {
		t.Fatalf("fastpath = %d, want %d", got, before+1)
	}
}

func TestIndexRebuiltOnFlush(t *testing.T) {
	tbl := NewTable()
	if err := tbl.Append("OUTPUT", &Rule{Name: "drop-all", Proto: AnyProto, Verdict: Drop}); err != nil {
		t.Fatal(err)
	}
	pkt := &netstack.Packet{Proto: netstack.IPPROTO_UDP, DstPort: 53}
	if v := tbl.Output(pkt); v != Drop {
		t.Fatalf("before flush: %v", v)
	}
	if err := tbl.Flush("OUTPUT"); err != nil {
		t.Fatal(err)
	}
	if v := tbl.Output(pkt); v != Accept {
		t.Fatalf("after flush: %v, want chain policy Accept", v)
	}
}
