package netfilter

import (
	"strings"
	"testing"
	"testing/quick"

	"protego/internal/netstack"
)

func icmpEcho(unpriv bool) *netstack.Packet {
	return &netstack.Packet{
		Proto: netstack.IPPROTO_ICMP, ICMPType: netstack.ICMPEchoRequest,
		FromRaw: true, UnprivRaw: unpriv,
	}
}

func rawTCP(unpriv, spoofed bool) *netstack.Packet {
	return &netstack.Packet{
		Proto: netstack.IPPROTO_TCP, SrcPort: 80, DstPort: 6667,
		FromRaw: true, UnprivRaw: unpriv, SpoofedSource: spoofed,
	}
}

func protegoTable(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable()
	for _, r := range ProtegoDefaultRules() {
		if err := tbl.Append("OUTPUT", r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestDefaultPolicyAccepts(t *testing.T) {
	tbl := NewTable()
	if v := tbl.Output(rawTCP(true, true)); v != Accept {
		t.Fatal("empty table must accept (policy)")
	}
}

func TestProtegoRulesICMPAllowed(t *testing.T) {
	tbl := protegoTable(t)
	if v := tbl.Output(icmpEcho(true)); v != Accept {
		t.Fatal("unprivileged ICMP echo must pass")
	}
	if v := tbl.Output(icmpEcho(false)); v != Accept {
		t.Fatal("privileged ICMP echo must pass")
	}
}

func TestProtegoRulesDropRawTCP(t *testing.T) {
	tbl := protegoTable(t)
	if v := tbl.Output(rawTCP(true, false)); v != Drop {
		t.Fatal("unprivileged raw TCP must drop")
	}
	// Privileged (CAP_NET_RAW) raw TCP is not the extension's concern,
	// unless spoofed.
	if v := tbl.Output(rawTCP(false, false)); v != Accept {
		t.Fatal("privileged raw TCP passes")
	}
	if v := tbl.Output(rawTCP(false, true)); v != Drop {
		t.Fatal("spoofed raw packets always drop")
	}
}

func TestProtegoRulesTraceroutePorts(t *testing.T) {
	tbl := protegoTable(t)
	probe := &netstack.Packet{
		Proto: netstack.IPPROTO_UDP, DstPort: 33434,
		FromRaw: true, UnprivRaw: true,
	}
	if v := tbl.Output(probe); v != Accept {
		t.Fatal("traceroute probe must pass")
	}
	probe.DstPort = 33600 // outside the probe range
	if v := tbl.Output(probe); v != Drop {
		t.Fatal("non-probe unpriv raw UDP must drop")
	}
}

func TestNonRawTrafficUntouched(t *testing.T) {
	tbl := protegoTable(t)
	normal := &netstack.Packet{Proto: netstack.IPPROTO_TCP, DstPort: 80}
	if v := tbl.Output(normal); v != Accept {
		t.Fatal("ordinary TCP must pass")
	}
}

func TestRuleMatchCounters(t *testing.T) {
	tbl := protegoTable(t)
	_ = tbl.Output(icmpEcho(true))
	_ = tbl.Output(rawTCP(true, false))
	stats := tbl.Stats()
	if stats.Matched["allow-unpriv-icmp-echo"] != 1 {
		t.Fatalf("counters: %v", stats.Matched)
	}
	if stats.Matched["drop-unpriv-raw-tcp"] != 1 {
		t.Fatalf("counters: %v", stats.Matched)
	}
}

func TestFirstMatchWins(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Append("OUTPUT", &Rule{Name: "first", Proto: AnyProto, Verdict: Drop})
	_ = tbl.Append("OUTPUT", &Rule{Name: "second", Proto: AnyProto, Verdict: Accept})
	if v := tbl.Output(icmpEcho(false)); v != Drop {
		t.Fatal("first rule should win")
	}
}

func TestFlushAndPolicy(t *testing.T) {
	tbl := protegoTable(t)
	if err := tbl.Flush("OUTPUT"); err != nil {
		t.Fatal(err)
	}
	if v := tbl.Output(rawTCP(true, false)); v != Accept {
		t.Fatal("flushed table accepts")
	}
	if err := tbl.SetPolicy("OUTPUT", Drop); err != nil {
		t.Fatal(err)
	}
	if v := tbl.Output(icmpEcho(false)); v != Drop {
		t.Fatal("policy drop ignored")
	}
	if err := tbl.Flush("NOCHAIN"); err == nil {
		t.Fatal("flush of unknown chain should fail")
	}
	if err := tbl.SetPolicy("NOCHAIN", Drop); err == nil {
		t.Fatal("policy on unknown chain should fail")
	}
	if err := tbl.Append("NOCHAIN", &Rule{}); err == nil {
		t.Fatal("append to unknown chain should fail")
	}
}

func TestUIDMatch(t *testing.T) {
	tbl := NewTable()
	_ = tbl.Append("OUTPUT", &Rule{Name: "block-eve", UIDs: []int{1005}, Proto: AnyProto, Verdict: Drop})
	pkt := icmpEcho(false)
	pkt.SenderUID = 1005
	if v := tbl.Output(pkt); v != Drop {
		t.Fatal("uid rule should match")
	}
	pkt.SenderUID = 1000
	if v := tbl.Output(pkt); v != Accept {
		t.Fatal("other uid should pass")
	}
}

func TestListRendering(t *testing.T) {
	tbl := protegoTable(t)
	out := tbl.List()
	if !strings.Contains(out, "-P OUTPUT ACCEPT") {
		t.Fatalf("missing policy line: %q", out)
	}
	if !strings.Contains(out, "-m unprivraw") || !strings.Contains(out, "-j DROP") {
		t.Fatalf("missing rule rendering: %q", out)
	}
	if !strings.Contains(out, "# drop-spoofed-raw") {
		t.Fatalf("missing rule name: %q", out)
	}
}

func TestRulesSnapshot(t *testing.T) {
	tbl := protegoTable(t)
	rules := tbl.Rules("OUTPUT")
	if len(rules) != len(ProtegoDefaultRules()) {
		t.Fatalf("rules = %d", len(rules))
	}
	if tbl.Rules("NOCHAIN") != nil {
		t.Fatal("unknown chain should yield nil")
	}
}

// Property: a packet that is not raw is never dropped by the Protego
// default rules — the "applications that do not use any privileged
// functionality" guarantee underlying Table 5.
func TestNonRawNeverDroppedProperty(t *testing.T) {
	tbl := protegoTable(t)
	f := func(proto uint8, srcPort, dstPort uint16, icmpType uint8, uid uint16) bool {
		pkt := &netstack.Packet{
			Proto:     int(proto),
			SrcPort:   int(srcPort),
			DstPort:   int(dstPort),
			ICMPType:  int(icmpType),
			SenderUID: int(uid),
		}
		return tbl.Output(pkt) == Accept
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: spoofed raw packets are always dropped by the default rules,
// whatever their other fields.
func TestSpoofedAlwaysDroppedProperty(t *testing.T) {
	tbl := protegoTable(t)
	f := func(proto uint8, dstPort uint16, unpriv bool) bool {
		pkt := &netstack.Packet{
			Proto:         int(proto),
			DstPort:       int(dstPort),
			FromRaw:       true,
			UnprivRaw:     unpriv,
			SpoofedSource: true,
		}
		return tbl.Output(pkt) == Drop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
