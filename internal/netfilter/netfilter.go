// Package netfilter implements the packet-filtering framework the Protego
// prototype extends (≈100 lines of netfilter changes + a 175-line iptables
// extension in the paper). Rules on the OUTPUT chain mediate packets sent
// through raw and packet sockets: Protego lets any user *create* a raw
// socket, but outgoing packets are subject to these rules, so a compromised
// network utility can no longer spoof traffic from other applications'
// sockets (§4.1.1).
package netfilter

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"protego/internal/errno"
	"protego/internal/netstack"
	"protego/internal/trace"
)

// Verdict aliases netstack's filter verdict for rule construction.
type Verdict = netstack.Verdict

// Re-exported verdicts.
const (
	Accept = netstack.Accept
	Drop   = netstack.Drop
)

// AnyProto matches every protocol in a rule.
const AnyProto = -1

// Rule matches packets on the OUTPUT path. Zero-valued match fields are
// wildcards. The UnprivRawOnly field is the paper's netfilter extension:
// such rules consider only packets from raw sockets created without
// CAP_NET_RAW.
type Rule struct {
	Name string

	Proto         int   // AnyProto or IPPROTO_*
	ICMPTypes     []int // nil = any ICMP type (when Proto is ICMP)
	DstPorts      []int // nil = any destination port
	UIDs          []int // nil = any sender uid
	UnprivRawOnly bool  // match only unprivileged raw-socket packets
	RawOnly       bool  // match only raw-socket packets (any privilege)
	SpoofedOnly   bool  // match only packets with a forged source endpoint

	Verdict Verdict

	// hits counts packets this rule matched. An atomic on the rule
	// itself so the verdict fast path never write-locks the table.
	hits atomic.Uint64
}

// matches reports whether the rule applies to the packet.
func (r *Rule) matches(pkt *netstack.Packet) bool {
	if r.UnprivRawOnly && !pkt.UnprivRaw {
		return false
	}
	if r.RawOnly && !pkt.FromRaw {
		return false
	}
	if r.SpoofedOnly && !pkt.SpoofedSource {
		return false
	}
	if r.Proto != AnyProto && r.Proto != 0 && pkt.Proto != r.Proto {
		return false
	}
	if len(r.ICMPTypes) > 0 {
		found := false
		for _, t := range r.ICMPTypes {
			if pkt.ICMPType == t {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(r.DstPorts) > 0 {
		found := false
		for _, p := range r.DstPorts {
			if pkt.DstPort == p {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(r.UIDs) > 0 {
		found := false
		for _, u := range r.UIDs {
			if pkt.SenderUID == u {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// String renders the rule in iptables -S style.
func (r *Rule) String() string {
	var b strings.Builder
	b.WriteString("-A OUTPUT")
	switch r.Proto {
	case netstack.IPPROTO_ICMP:
		b.WriteString(" -p icmp")
	case netstack.IPPROTO_TCP:
		b.WriteString(" -p tcp")
	case netstack.IPPROTO_UDP:
		b.WriteString(" -p udp")
	}
	if len(r.ICMPTypes) > 0 {
		b.WriteString(fmt.Sprintf(" --icmp-type %v", r.ICMPTypes))
	}
	if len(r.DstPorts) > 0 {
		b.WriteString(fmt.Sprintf(" --dports %v", r.DstPorts))
	}
	if r.UnprivRawOnly {
		b.WriteString(" -m unprivraw")
	}
	if r.SpoofedOnly {
		b.WriteString(" -m spoofed")
	}
	if r.Verdict == Drop {
		b.WriteString(" -j DROP")
	} else {
		b.WriteString(" -j ACCEPT")
	}
	if r.Name != "" {
		b.WriteString(" # " + r.Name)
	}
	return b.String()
}

// Chain is an ordered rule list with a default policy.
type Chain struct {
	Name   string
	Policy Verdict
	rules  []*Rule
	idx    *chainIndex
}

// protoPort keys the most specific dispatch bucket.
type protoPort struct {
	proto int
	port  int
}

// chainIndex is the compiled dispatch index over a chain's rules. Each
// bucket holds rule positions in ascending order, so merging the (at most
// three) buckets a packet can hit reproduces first-match-wins semantics
// while skipping every rule that could not match the packet:
//
//   - byProtoPort: rules pinning a protocol and destination ports, one
//     entry per (proto, port) pair
//   - byProto: rules pinning a protocol but no ports
//   - generic: protocol-wildcard rules, candidates for every packet
type chainIndex struct {
	byProtoPort map[protoPort][]int
	byProto     map[int][]int
	generic     []int
}

// rebuildIndexLocked recompiles the dispatch index from c.rules. Caller
// holds the table lock exclusively. Rules are visited in order, so every
// bucket is sorted by rule position.
func (c *Chain) rebuildIndexLocked() {
	idx := &chainIndex{
		byProtoPort: make(map[protoPort][]int),
		byProto:     make(map[int][]int),
	}
	for i, r := range c.rules {
		switch {
		case r.Proto == AnyProto || r.Proto == 0:
			idx.generic = append(idx.generic, i)
		case len(r.DstPorts) > 0:
			for _, p := range r.DstPorts {
				key := protoPort{proto: r.Proto, port: p}
				idx.byProtoPort[key] = append(idx.byProtoPort[key], i)
			}
		default:
			idx.byProto[r.Proto] = append(idx.byProto[r.Proto], i)
		}
	}
	c.idx = idx
}

// Table is a set of chains; the simulation uses a single "filter" table
// with an OUTPUT chain, which is all the Protego extension requires.
type Table struct {
	mu     sync.RWMutex
	chains map[string]*Chain

	// tracer, when set, receives one verdict event per filtered packet.
	// Installed once at kernel construction, before packet traffic starts.
	tracer *trace.Tracer

	// fastpath counts packets whose verdict was reached after the compiled
	// index pruned at least one rule (exported as "nfidx.fastpath").
	fastpath atomic.Uint64
}

// NewTable creates a filter table with an empty, accept-by-default OUTPUT
// chain.
func NewTable() *Table {
	t := &Table{
		chains: make(map[string]*Chain),
	}
	out := &Chain{Name: "OUTPUT", Policy: Accept}
	out.rebuildIndexLocked()
	t.chains["OUTPUT"] = out
	return t
}

// SetTracer installs the trace sink for packet verdicts. Must be called
// before the table sees packet traffic (the kernel does it at boot).
func (t *Table) SetTracer(tr *trace.Tracer) {
	t.tracer = tr
	tr.RegisterCounter("nfidx.fastpath", t.fastpath.Load)
}

// Append adds a rule to the end of chain and recompiles the chain's
// dispatch index.
func (t *Table) Append(chain string, r *Rule) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.chains[chain]
	if !ok {
		return fmt.Errorf("netfilter: no chain %q: %w", chain, errno.ENOENT)
	}
	c.rules = append(c.rules, r)
	c.rebuildIndexLocked()
	return nil
}

// Flush removes all rules from chain and recompiles the chain's dispatch
// index.
func (t *Table) Flush(chain string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.chains[chain]
	if !ok {
		return fmt.Errorf("netfilter: no chain %q: %w", chain, errno.ENOENT)
	}
	c.rules = nil
	c.rebuildIndexLocked()
	return nil
}

// SetPolicy changes the default verdict of chain.
func (t *Table) SetPolicy(chain string, v Verdict) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.chains[chain]
	if !ok {
		return fmt.Errorf("netfilter: no chain %q: %w", chain, errno.ENOENT)
	}
	c.Policy = v
	return nil
}

// Rules returns a snapshot of chain's rules.
func (t *Table) Rules(chain string) []*Rule {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.chains[chain]
	if !ok {
		return nil
	}
	out := make([]*Rule, len(c.rules))
	copy(out, c.rules)
	return out
}

// Output implements netstack.OutputFilter: the first matching rule's
// verdict applies; otherwise the chain policy. Candidate rules come from
// the compiled dispatch index — the (proto, dst-port) bucket, the proto
// bucket, and the generic bucket — merged in ascending rule order so the
// verdict is identical to a full first-match scan.
func (t *Table) Output(pkt *netstack.Packet) Verdict {
	t.mu.RLock()
	c := t.chains["OUTPUT"]
	rules := c.rules
	idx := c.idx
	policy := c.Policy
	t.mu.RUnlock()
	pp := idx.byProtoPort[protoPort{proto: pkt.Proto, port: pkt.DstPort}]
	bp := idx.byProto[pkt.Proto]
	gen := idx.generic
	if len(pp)+len(bp)+len(gen) < len(rules) {
		t.fastpath.Add(1)
	}
	a, b, g := 0, 0, 0
	for a < len(pp) || b < len(bp) || g < len(gen) {
		i := int(^uint(0) >> 1)
		if a < len(pp) && pp[a] < i {
			i = pp[a]
		}
		if b < len(bp) && bp[b] < i {
			i = bp[b]
		}
		if g < len(gen) && gen[g] < i {
			i = gen[g]
		}
		if a < len(pp) && pp[a] == i {
			a++
		}
		if b < len(bp) && bp[b] == i {
			b++
		}
		if g < len(gen) && gen[g] == i {
			g++
		}
		r := rules[i]
		if r.matches(pkt) {
			r.hits.Add(1)
			t.tracer.NetfilterVerdict("OUTPUT", r.Name, verdictName(r.Verdict), pkt.SenderUID)
			return r.Verdict
		}
	}
	t.tracer.NetfilterVerdict("OUTPUT", "", verdictName(policy), pkt.SenderUID)
	return policy
}

// TableStats is a point-in-time snapshot of the table's counters.
type TableStats struct {
	// Matched holds every rule's match count by rule name, summed across
	// chains. Counts live on the rules themselves (per-rule atomics), so
	// they do not survive a Flush of the owning chain.
	Matched map[string]uint64
	// Fastpath counts packets whose verdict came via the compiled
	// dispatch index with at least one rule pruned.
	Fastpath uint64
}

// Stats returns a snapshot of the table's match and fast-path counters.
// It replaces the former Matched/MatchedCounts pair: read one rule's
// count as Stats().Matched["rule-name"].
func (t *Table) Stats() TableStats {
	s := TableStats{
		Matched:  make(map[string]uint64),
		Fastpath: t.fastpath.Load(),
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, c := range t.chains {
		for _, r := range c.rules {
			s.Matched[r.Name] += r.hits.Load()
		}
	}
	return s
}

// verdictName renders a verdict in iptables target style.
func verdictName(v Verdict) string {
	if v == Drop {
		return "DROP"
	}
	return "ACCEPT"
}

// List renders the whole table in iptables -S style.
func (t *Table) List() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b strings.Builder
	for name, c := range t.chains {
		pol := "ACCEPT"
		if c.Policy == Drop {
			pol = "DROP"
		}
		fmt.Fprintf(&b, "-P %s %s\n", name, pol)
		for _, r := range c.rules {
			b.WriteString(r.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// ProtegoDefaultRules returns the default OUTPUT ruleset Protego installs
// for unprivileged raw sockets, mined from the studied setuid binaries
// (ping, traceroute, arping, mtr): benign ICMP is allowed; raw packets that
// forge another socket's TCP/UDP source endpoint are dropped; all other
// unprivileged raw TCP/UDP fabrication is dropped. Non-raw traffic is
// untouched.
func ProtegoDefaultRules() []*Rule {
	return []*Rule{
		{
			Name:        "drop-spoofed-raw",
			RawOnly:     true,
			SpoofedOnly: true,
			Proto:       AnyProto,
			Verdict:     Drop,
		},
		{
			Name:          "allow-unpriv-icmp-echo",
			UnprivRawOnly: true,
			Proto:         netstack.IPPROTO_ICMP,
			ICMPTypes:     []int{netstack.ICMPEchoRequest, netstack.ICMPEchoReply},
			Verdict:       Accept,
		},
		{
			Name:          "allow-unpriv-udp-probe",
			UnprivRawOnly: true,
			Proto:         netstack.IPPROTO_UDP,
			DstPorts:      traceroutePorts(),
			Verdict:       Accept,
		},
		{
			Name:          "drop-unpriv-raw-tcp",
			UnprivRawOnly: true,
			Proto:         netstack.IPPROTO_TCP,
			Verdict:       Drop,
		},
		{
			Name:          "drop-unpriv-raw-udp",
			UnprivRawOnly: true,
			Proto:         netstack.IPPROTO_UDP,
			Verdict:       Drop,
		},
		{
			Name:          "drop-unpriv-raw-other",
			UnprivRawOnly: true,
			Proto:         netstack.IPPROTO_RAW,
			Verdict:       Drop,
		},
	}
}

// traceroutePorts returns the classic UDP probe port range used by
// traceroute (33434–33523), which the default policy whitelists.
func traceroutePorts() []int {
	ports := make([]int, 0, 90)
	for p := 33434; p <= 33523; p++ {
		ports = append(ports, p)
	}
	return ports
}
