package netfilter

// Clone returns a deep copy of the table for machine snapshots: chains
// and rules are duplicated with zeroed hit counters (per-tenant match
// statistics start fresh). The compiled dispatch index is shared — it is
// immutable once built (Append replaces it wholesale on whichever side
// appends), and it only holds rule positions, which are identical in the
// copy. The tracer is not carried over — the owning kernel calls
// SetTracer with the clone's tracer, which also re-registers the
// nfidx.fastpath counter.
func (t *Table) Clone() *Table {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := &Table{chains: make(map[string]*Chain, len(t.chains))}
	for name, ch := range t.chains {
		nc := &Chain{Name: ch.Name, Policy: ch.Policy}
		nc.rules = make([]*Rule, len(ch.rules))
		for i, r := range ch.rules {
			nr := &Rule{
				Name:          r.Name,
				Proto:         r.Proto,
				ICMPTypes:     append([]int(nil), r.ICMPTypes...),
				DstPorts:      append([]int(nil), r.DstPorts...),
				UIDs:          append([]int(nil), r.UIDs...),
				UnprivRawOnly: r.UnprivRawOnly,
				RawOnly:       r.RawOnly,
				SpoofedOnly:   r.SpoofedOnly,
				Verdict:       r.Verdict,
			}
			nc.rules[i] = nr
		}
		nc.idx = ch.idx
		c.chains[name] = nc
	}
	return c
}
