// Package netstack implements the simulated network substrate: interfaces,
// a routing table with conflict detection (the object-based policy pppd
// needs), TCP/UDP/raw/packet sockets with port ownership, ICMP echo, and a
// netfilter-style output hook. The Protego raw-socket policy (§4.1.1) and
// privileged-port policy (§4.1.3) are enforced against this stack.
package netstack

import (
	"fmt"
	"sync"
	"sync/atomic"

	"protego/internal/errno"
	"protego/internal/faultinject"
)

// Address families and socket types, mirroring the Linux constants used by
// the utilities in the study.
const (
	AF_UNIX   = 1
	AF_INET   = 2
	AF_PACKET = 17

	SOCK_STREAM = 1
	SOCK_DGRAM  = 2
	SOCK_RAW    = 3

	IPPROTO_IP   = 0
	IPPROTO_ICMP = 1
	IPPROTO_TCP  = 6
	IPPROTO_UDP  = 17
	IPPROTO_RAW  = 255
)

// ICMP message types used by ping and traceroute.
const (
	ICMPEchoReply    = 0
	ICMPEchoRequest  = 8
	ICMPTimeExceeded = 11
)

// IP is an IPv4 address in host byte order.
type IP uint32

// IPv4 builds an IP from dotted-quad components.
func IPv4(a, b, c, d byte) IP {
	return IP(a)<<24 | IP(b)<<16 | IP(c)<<8 | IP(d)
}

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ParseIP parses a dotted-quad IPv4 address.
func ParseIP(s string) (IP, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, errno.EINVAL
	}
	for _, v := range []int{a, b, c, d} {
		if v < 0 || v > 255 {
			return 0, errno.EINVAL
		}
	}
	return IPv4(byte(a), byte(b), byte(c), byte(d)), nil
}

// Packet is a network datagram traversing the stack.
type Packet struct {
	Src, Dst IP
	Proto    int // IPPROTO_*
	SrcPort  int
	DstPort  int
	ICMPType int
	TTL      int
	Payload  []byte

	// Metadata consumed by the output filter (netfilter). FromRaw marks
	// packets written through a raw or packet socket; UnprivRaw marks
	// those from sockets created *without* CAP_NET_RAW under the Protego
	// relaxation; SpoofedSource marks raw packets whose claimed TCP/UDP
	// source endpoint belongs to a socket owned by someone else.
	FromRaw       bool
	UnprivRaw     bool
	SenderUID     int
	SpoofedSource bool
}

// Verdict is the outcome of the output filter.
type Verdict int

// Filter verdicts.
const (
	Accept Verdict = iota
	Drop
)

// OutputFilter is the netfilter hook on the IP output path. A nil filter
// accepts everything.
type OutputFilter interface {
	Output(pkt *Packet) Verdict
}

// Iface is a network interface. Modem interfaces model the PPP hardware
// pppd configures through privileged ioctls.
type Iface struct {
	Name  string
	Addr  IP
	Up    bool
	Modem bool
	InUse bool // a modem in use may not be reconfigured by another user
	Owner int  // uid using the modem
	// Session parameters configurable by unprivileged users under the
	// Protego ppp policy ("safe options": compression etc.).
	Params map[string]string
}

// Route is a routing table entry. PrefixLen expresses the netmask.
type Route struct {
	Dest      IP
	PrefixLen int
	Gateway   IP
	Iface     string
	Metric    int
	CreatedBy int // uid that installed the route
}

// mask returns the netmask implied by PrefixLen.
func (r Route) mask() IP {
	if r.PrefixLen <= 0 {
		return 0
	}
	if r.PrefixLen >= 32 {
		return ^IP(0)
	}
	return ^IP(0) << (32 - r.PrefixLen)
}

// Matches reports whether ip falls inside the route's destination prefix.
func (r Route) Matches(ip IP) bool {
	return ip&r.mask() == r.Dest&r.mask()
}

// Overlaps reports whether two routes' destination prefixes intersect —
// the conflict check Protego performs before letting an unprivileged pppd
// add a route (§4.1.2).
func (r Route) Overlaps(o Route) bool {
	short := r
	long := o
	if o.PrefixLen < r.PrefixLen {
		short, long = o, r
	}
	return long.Dest&short.mask() == short.Dest&short.mask()
}

// String renders the route like the output of `ip route`.
func (r Route) String() string {
	return fmt.Sprintf("%s/%d via %s dev %s metric %d", r.Dest, r.PrefixLen, r.Gateway, r.Iface, r.Metric)
}

type portKey struct {
	proto int
	port  int
}

// Socket is a communication endpoint.
type Socket struct {
	ID     int
	Family int
	Type   int
	Proto  int

	LocalIP    IP
	LocalPort  int
	RemoteIP   IP
	RemotePort int

	// Owner identity for object-based policies ((binary, uid) pairs).
	OwnerUID    int
	OwnerBinary string

	// UnprivRaw marks a raw/packet socket created without CAP_NET_RAW;
	// the Protego netfilter extension subjects its traffic to filtering.
	UnprivRaw bool

	stack     *Stack
	recvQ     chan *Packet
	acceptQ   chan *Socket
	peer      *Socket
	listening bool
	connected bool
	closed    bool
	mu        sync.Mutex
}

// filterBox wraps the installed OutputFilter so it can be published as a
// single atomic pointer (an interface value cannot be stored atomically
// on its own).
type filterBox struct{ f OutputFilter }

// Stack is a host network stack. Loopback delivery connects sockets on the
// same stack; two stacks can be bridged with Link to model a two-machine
// PPP setup.
//
// Concurrency: mu is a reader/writer lock — the read-mostly paths
// (interface and route lookups, port-owner resolution, route lookup on
// every send) take only read locks, so concurrent senders never
// serialize against each other; mutations (bind, close, iface/route
// changes) take the write lock. The output filter is an atomic snapshot
// (see SetFilter) and the packet counters are atomics, so the send fast
// path acquires mu only in read mode.
type Stack struct {
	mu       sync.RWMutex
	hostIP   IP
	ifaces   map[string]*Iface
	routes   []Route
	ports    map[portKey]*Socket
	sockets  map[int]*Socket
	nextSock int
	linked   *Stack // simple point-to-point peer (PPP tests)

	filter atomic.Pointer[filterBox]

	// faults is the optional fault-injection layer (nil normally); an
	// atomic snapshot like the output filter, loaded once per operation.
	faults atomic.Pointer[faultinject.Injector]

	// Stats observable by tests and benchmarks via SentPackets and
	// DroppedPackets; atomics so the send path never write-locks.
	sentPackets    atomic.Uint64
	droppedPackets atomic.Uint64
}

// NewStack creates a stack with a loopback interface and an eth0 interface
// carrying hostIP.
func NewStack(hostIP IP) *Stack {
	s := &Stack{
		hostIP:  hostIP,
		ifaces:  make(map[string]*Iface),
		ports:   make(map[portKey]*Socket),
		sockets: make(map[int]*Socket),
	}
	s.ifaces["lo"] = &Iface{Name: "lo", Addr: IPv4(127, 0, 0, 1), Up: true, Params: map[string]string{}}
	s.ifaces["eth0"] = &Iface{Name: "eth0", Addr: hostIP, Up: true, Params: map[string]string{}}
	s.routes = []Route{
		{Dest: IPv4(127, 0, 0, 0), PrefixLen: 8, Iface: "lo"},
		{Dest: hostIP & IP(0xFFFFFF00), PrefixLen: 24, Iface: "eth0"},
	}
	return s
}

// HostIP returns the stack's primary address.
func (s *Stack) HostIP() IP { return s.hostIP }

// SetFilter installs the output packet filter (netfilter hook).
//
// Installation is safe while sends are in flight: the filter is
// published with a single atomic store, and each SendTo loads the
// snapshot exactly once per packet. A packet that loaded the old filter
// before the swap completes its verdict under the old filter; every
// packet sent after SetFilter returns is guaranteed to see the new one.
// There are no torn reads and no locks on this path, mirroring how
// Linux swaps netfilter rulesets via RCU.
func (s *Stack) SetFilter(f OutputFilter) {
	s.filter.Store(&filterBox{f: f})
}

// currentFilter returns the installed output filter, or nil.
func (s *Stack) currentFilter() OutputFilter {
	if box := s.filter.Load(); box != nil {
		return box.f
	}
	return nil
}

// SetFaultInjector installs (or removes, with nil) the fault-injection
// layer for the stack's send paths. Normally called through
// kernel.SetFaultInjector.
func (s *Stack) SetFaultInjector(in *faultinject.Injector) {
	s.faults.Store(in)
}

// faultInjector returns the installed injector (possibly nil; all its
// methods are nil-safe).
func (s *Stack) faultInjector() *faultinject.Injector {
	return s.faults.Load()
}

// SentPackets reports how many packets passed the output path.
func (s *Stack) SentPackets() uint64 { return s.sentPackets.Load() }

// DroppedPackets reports how many packets the output filter dropped.
func (s *Stack) DroppedPackets() uint64 { return s.droppedPackets.Load() }

// Link joins two stacks point-to-point so packets addressed to the peer's
// host IP are delivered there (used by the PPP crossover-cable validation).
func Link(a, b *Stack) {
	a.mu.Lock()
	a.linked = b
	a.mu.Unlock()
	b.mu.Lock()
	b.linked = a
	b.mu.Unlock()
}

// AddIface registers an additional interface (e.g. a ppp modem device).
func (s *Stack) AddIface(i *Iface) {
	s.mu.Lock()
	if i.Params == nil {
		i.Params = map[string]string{}
	}
	s.ifaces[i.Name] = i
	s.mu.Unlock()
}

// Iface returns the named interface or nil.
func (s *Stack) Iface(name string) *Iface {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ifaces[name]
}

// Ifaces returns all interfaces.
func (s *Stack) Ifaces() []*Iface {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Iface, 0, len(s.ifaces))
	for _, i := range s.ifaces {
		out = append(out, i)
	}
	return out
}

// Routes returns a snapshot of the routing table.
func (s *Stack) Routes() []Route {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Route, len(s.routes))
	copy(out, s.routes)
	return out
}

// RouteConflicts reports whether r overlaps any existing route — the
// Protego route-integrity check.
func (s *Stack) RouteConflicts(r Route) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, existing := range s.routes {
		if existing.Overlaps(r) {
			return true
		}
	}
	return false
}

// AddRoute installs a route without policy checks (the kernel/LSM layer is
// responsible for mediation).
func (s *Stack) AddRoute(r Route) {
	s.mu.Lock()
	s.routes = append(s.routes, r)
	s.mu.Unlock()
}

// DelRoute removes the first route matching dest/prefix; it returns false
// if no such route exists.
func (s *Stack) DelRoute(dest IP, prefixLen int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, r := range s.routes {
		if r.Dest == dest && r.PrefixLen == prefixLen {
			s.routes = append(s.routes[:i], s.routes[i+1:]...)
			return true
		}
	}
	return false
}

// lookupRoute finds the longest-prefix route for dst, or nil. The caller
// must hold s.mu (read or write).
func (s *Stack) lookupRoute(dst IP) *Route {
	var best *Route
	for i := range s.routes {
		r := &s.routes[i]
		if r.Matches(dst) && (best == nil || r.PrefixLen > best.PrefixLen) {
			best = r
		}
	}
	return best
}

// isLocal reports whether dst addresses this host. It takes its own read
// lock (callers must not hold s.mu).
func (s *Stack) isLocal(dst IP) bool {
	if dst == IPv4(127, 0, 0, 1) || dst == s.hostIP {
		return true
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, i := range s.ifaces {
		if i.Up && i.Addr == dst {
			return true
		}
	}
	return false
}
