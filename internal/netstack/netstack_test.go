package netstack

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"protego/internal/errno"
)

func testStack() *Stack { return NewStack(IPv4(10, 0, 0, 2)) }

func TestIPStringParse(t *testing.T) {
	cases := []string{"0.0.0.0", "127.0.0.1", "10.0.0.2", "255.255.255.255", "192.168.1.100"}
	for _, s := range cases {
		ip, err := ParseIP(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if ip.String() != s {
			t.Fatalf("round trip %s -> %s", s, ip)
		}
	}
	for _, bad := range []string{"", "1.2.3", "256.1.1.1", "a.b.c.d", "-1.0.0.0"} {
		if _, err := ParseIP(bad); err == nil {
			t.Errorf("ParseIP(%q) should fail", bad)
		}
	}
}

func TestIPParseProperty(t *testing.T) {
	f := func(a, b, c, d byte) bool {
		ip := IPv4(a, b, c, d)
		parsed, err := ParseIP(ip.String())
		return err == nil && parsed == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRouteMatching(t *testing.T) {
	r := Route{Dest: IPv4(10, 0, 0, 0), PrefixLen: 24}
	if !r.Matches(IPv4(10, 0, 0, 200)) {
		t.Fatal("should match inside /24")
	}
	if r.Matches(IPv4(10, 0, 1, 1)) {
		t.Fatal("should not match outside /24")
	}
	def := Route{Dest: 0, PrefixLen: 0}
	if !def.Matches(IPv4(8, 8, 8, 8)) {
		t.Fatal("default route matches everything")
	}
	host := Route{Dest: IPv4(10, 0, 0, 5), PrefixLen: 32}
	if !host.Matches(IPv4(10, 0, 0, 5)) || host.Matches(IPv4(10, 0, 0, 6)) {
		t.Fatal("host route must match exactly")
	}
}

func TestRouteOverlap(t *testing.T) {
	cases := []struct {
		a, b Route
		want bool
	}{
		{Route{Dest: IPv4(10, 0, 0, 0), PrefixLen: 24}, Route{Dest: IPv4(10, 0, 0, 128), PrefixLen: 25}, true},
		{Route{Dest: IPv4(10, 0, 0, 0), PrefixLen: 24}, Route{Dest: IPv4(10, 0, 1, 0), PrefixLen: 24}, false},
		{Route{Dest: 0, PrefixLen: 0}, Route{Dest: IPv4(1, 2, 3, 4), PrefixLen: 32}, true},
		{Route{Dest: IPv4(192, 168, 0, 0), PrefixLen: 16}, Route{Dest: IPv4(192, 168, 5, 0), PrefixLen: 24}, true},
	}
	for i, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("case %d: %v", i, got)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("case %d (sym): %v", i, got)
		}
	}
}

// Property: Overlaps is symmetric, and a route always overlaps itself.
func TestRouteOverlapProperty(t *testing.T) {
	f := func(a, b uint32, pa, pb uint8) bool {
		ra := Route{Dest: IP(a), PrefixLen: int(pa % 33)}
		rb := Route{Dest: IP(b), PrefixLen: int(pb % 33)}
		if ra.Overlaps(rb) != rb.Overlaps(ra) {
			return false
		}
		return ra.Overlaps(ra)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteConflicts(t *testing.T) {
	s := testStack()
	// The builder installs 127/8 and 10.0.0/24.
	if !s.RouteConflicts(Route{Dest: IPv4(10, 0, 0, 0), PrefixLen: 25}) {
		t.Fatal("overlapping route should conflict")
	}
	if s.RouteConflicts(Route{Dest: IPv4(192, 168, 9, 0), PrefixLen: 24}) {
		t.Fatal("disjoint route should not conflict")
	}
}

func TestAddDelRoute(t *testing.T) {
	s := testStack()
	before := len(s.Routes())
	s.AddRoute(Route{Dest: IPv4(192, 168, 9, 0), PrefixLen: 24, Iface: "ppp0"})
	if len(s.Routes()) != before+1 {
		t.Fatal("route not added")
	}
	if !s.DelRoute(IPv4(192, 168, 9, 0), 24) {
		t.Fatal("route not deleted")
	}
	if s.DelRoute(IPv4(192, 168, 9, 0), 24) {
		t.Fatal("double delete should fail")
	}
}

func TestSocketLifecycle(t *testing.T) {
	s := testStack()
	sock, err := s.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(sock, 8080); err != nil {
		t.Fatal(err)
	}
	if owner := s.PortOwner(IPPROTO_TCP, 8080); owner != sock {
		t.Fatal("port owner mismatch")
	}
	if err := s.Close(sock); err != nil {
		t.Fatal(err)
	}
	if s.PortOwner(IPPROTO_TCP, 8080) != nil {
		t.Fatal("port not released on close")
	}
	if err := s.Close(sock); err != errno.EBADF {
		t.Fatalf("double close: %v", err)
	}
}

func TestBindConflicts(t *testing.T) {
	s := testStack()
	a, _ := s.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	b, _ := s.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	u, _ := s.NewSocket(AF_INET, SOCK_DGRAM, IPPROTO_UDP)
	if err := s.Bind(a, 80); err != nil {
		t.Fatal(err)
	}
	if err := s.Bind(b, 80); err != errno.EADDRINUSE {
		t.Fatalf("tcp conflict: %v", err)
	}
	// UDP 80 is a different namespace.
	if err := s.Bind(u, 80); err != nil {
		t.Fatalf("udp bind: %v", err)
	}
	if err := s.Bind(a, 70000); err == nil {
		// a is already bound; but first the port must validate
		t.Fatal("port out of range accepted")
	}
}

func TestEphemeralBind(t *testing.T) {
	s := testStack()
	sock, _ := s.NewSocket(AF_INET, SOCK_DGRAM, IPPROTO_UDP)
	if err := s.Bind(sock, 0); err != nil {
		t.Fatal(err)
	}
	if sock.LocalPort < 32768 {
		t.Fatalf("ephemeral port = %d", sock.LocalPort)
	}
}

func TestTCPConnectAcceptSendRecv(t *testing.T) {
	s := testStack()
	server, _ := s.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	if err := s.Bind(server, 9000); err != nil {
		t.Fatal(err)
	}
	if err := s.Listen(server, 4); err != nil {
		t.Fatal(err)
	}
	client, _ := s.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	if err := s.Connect(client, s.HostIP(), 9000); err != nil {
		t.Fatal(err)
	}
	conn, err := s.Accept(server, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Send(client, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := s.Recv(conn, time.Second)
	if err != nil || string(data) != "hello" {
		t.Fatalf("recv: %q %v", data, err)
	}
	if _, err := s.Send(conn, []byte("world")); err != nil {
		t.Fatal(err)
	}
	data, err = s.Recv(client, time.Second)
	if err != nil || string(data) != "world" {
		t.Fatalf("reply: %q %v", data, err)
	}
}

func TestConnectRefused(t *testing.T) {
	s := testStack()
	client, _ := s.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	if err := s.Connect(client, s.HostIP(), 9999); err != errno.ECONNREFUSED {
		t.Fatalf("connect to closed port: %v", err)
	}
}

func TestConnectUnreachable(t *testing.T) {
	s := testStack()
	client, _ := s.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	if err := s.Connect(client, IPv4(203, 0, 113, 7), 80); err != errno.ENETUNREACH {
		t.Fatalf("connect off-net: %v", err)
	}
}

func TestConnectTwiceEISCONN(t *testing.T) {
	s := testStack()
	server, _ := s.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	_ = s.Bind(server, 9000)
	_ = s.Listen(server, 4)
	client, _ := s.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	if err := s.Connect(client, s.HostIP(), 9000); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect(client, s.HostIP(), 9000); err != errno.EISCONN {
		t.Fatalf("double connect: %v", err)
	}
}

func TestUDPDelivery(t *testing.T) {
	s := testStack()
	server, _ := s.NewSocket(AF_INET, SOCK_DGRAM, IPPROTO_UDP)
	if err := s.Bind(server, 5353); err != nil {
		t.Fatal(err)
	}
	client, _ := s.NewSocket(AF_INET, SOCK_DGRAM, IPPROTO_UDP)
	pkt := &Packet{Dst: s.HostIP(), DstPort: 5353, Payload: []byte("query")}
	if err := s.SendTo(client, pkt); err != nil {
		t.Fatal(err)
	}
	got, err := s.RecvFrom(server, time.Second)
	if err != nil || string(got.Payload) != "query" {
		t.Fatalf("udp recv: %v %v", got, err)
	}
	if got.SrcPort != client.LocalPort {
		t.Fatalf("src port not stamped: %+v", got)
	}
}

func TestICMPEcho(t *testing.T) {
	s := testStack()
	sock, _ := s.NewSocket(AF_INET, SOCK_RAW, IPPROTO_ICMP)
	pkt := &Packet{Dst: s.HostIP(), Proto: IPPROTO_ICMP, ICMPType: ICMPEchoRequest, Payload: []byte("ping")}
	if err := s.SendTo(sock, pkt); err != nil {
		t.Fatal(err)
	}
	reply, err := s.RecvFrom(sock, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if reply.ICMPType != ICMPEchoReply || string(reply.Payload) != "ping" {
		t.Fatalf("reply: %+v", reply)
	}
	if reply.Src != s.HostIP() {
		t.Fatalf("reply src: %v", reply.Src)
	}
}

func TestSpoofingDetection(t *testing.T) {
	s := testStack()
	victim, _ := s.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	victim.OwnerUID = 1000
	if err := s.Bind(victim, 8080); err != nil {
		t.Fatal(err)
	}
	attacker, _ := s.NewSocket(AF_INET, SOCK_RAW, IPPROTO_RAW)
	attacker.OwnerUID = 1001
	pkt := &Packet{Dst: s.HostIP(), Proto: IPPROTO_TCP, SrcPort: 8080, DstPort: 9999}
	_ = s.SendTo(attacker, pkt)
	if !pkt.SpoofedSource {
		t.Fatal("spoofing not detected")
	}
	// The owner itself is not "spoofing".
	own, _ := s.NewSocket(AF_INET, SOCK_RAW, IPPROTO_RAW)
	own.OwnerUID = 1000
	pkt2 := &Packet{Dst: s.HostIP(), Proto: IPPROTO_TCP, SrcPort: 8080, DstPort: 9999}
	_ = s.SendTo(own, pkt2)
	if pkt2.SpoofedSource {
		t.Fatal("same-uid packet flagged as spoofed")
	}
}

type dropAll struct{}

func (dropAll) Output(*Packet) Verdict { return Drop }

func TestOutputFilterDrops(t *testing.T) {
	s := testStack()
	s.SetFilter(dropAll{})
	sock, _ := s.NewSocket(AF_INET, SOCK_RAW, IPPROTO_ICMP)
	pkt := &Packet{Dst: s.HostIP(), Proto: IPPROTO_ICMP, ICMPType: ICMPEchoRequest}
	if err := s.SendTo(sock, pkt); err != errno.EPERM {
		t.Fatalf("filtered send: %v", err)
	}
	if s.DroppedPackets() != 1 {
		t.Fatalf("dropped = %d", s.DroppedPackets())
	}
}

func TestLinkedStacks(t *testing.T) {
	a := NewStack(IPv4(10, 0, 0, 2))
	b := NewStack(IPv4(10, 0, 1, 2))
	Link(a, b)
	// a needs a route toward b's network.
	a.AddRoute(Route{Dest: IPv4(10, 0, 1, 0), PrefixLen: 24, Iface: "ppp0"})
	server, _ := b.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	if err := b.Bind(server, 80); err != nil {
		t.Fatal(err)
	}
	if err := b.Listen(server, 4); err != nil {
		t.Fatal(err)
	}
	client, _ := a.NewSocket(AF_INET, SOCK_STREAM, IPPROTO_TCP)
	if err := a.Connect(client, b.HostIP(), 80); err != nil {
		t.Fatalf("cross-stack connect: %v", err)
	}
	if _, err := b.Accept(server, time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestIfaces(t *testing.T) {
	s := testStack()
	if s.Iface("lo") == nil || s.Iface("eth0") == nil {
		t.Fatal("default ifaces missing")
	}
	s.AddIface(&Iface{Name: "ppp0", Modem: true})
	iface := s.Iface("ppp0")
	if iface == nil || !iface.Modem || iface.Params == nil {
		t.Fatalf("ppp0: %+v", iface)
	}
	if len(s.Ifaces()) != 3 {
		t.Fatalf("ifaces = %d", len(s.Ifaces()))
	}
}

func TestRecvTimeout(t *testing.T) {
	s := testStack()
	sock, _ := s.NewSocket(AF_INET, SOCK_DGRAM, IPPROTO_UDP)
	_ = s.Bind(sock, 7000)
	start := time.Now()
	if _, err := s.RecvFrom(sock, 10*time.Millisecond); err != errno.EAGAIN {
		t.Fatalf("timeout: %v", err)
	}
	if time.Since(start) > 200*time.Millisecond {
		t.Fatal("timeout too long")
	}
}

func TestInvalidSocketParams(t *testing.T) {
	s := testStack()
	if _, err := s.NewSocket(99, SOCK_STREAM, 0); err != errno.EINVAL {
		t.Fatalf("bad family: %v", err)
	}
	if _, err := s.NewSocket(AF_INET, 99, 0); err != errno.EINVAL {
		t.Fatalf("bad type: %v", err)
	}
	dgram, _ := s.NewSocket(AF_INET, SOCK_DGRAM, IPPROTO_UDP)
	if err := s.Listen(dgram, 4); err != errno.EINVAL {
		t.Fatalf("listen on dgram: %v", err)
	}
	if err := s.Connect(dgram, s.HostIP(), 80); err != errno.EINVAL {
		t.Fatalf("connect dgram: %v", err)
	}
}

// fixedFilter is a test OutputFilter with a fixed verdict.
type fixedFilter struct {
	verdict Verdict
}

func (f *fixedFilter) Output(*Packet) Verdict { return f.verdict }

// TestSetFilterDuringSends checks the documented SetFilter semantics:
// installing a filter while sends are in flight is safe, every packet
// sees exactly one coherent filter, and the sent/dropped counters
// account for every send attempt.
func TestSetFilterDuringSends(t *testing.T) {
	s := NewStack(IPv4(10, 0, 0, 1))
	const senders = 4
	const perSender = 500

	done := make(chan struct{})
	go func() {
		defer close(done)
		accept := &fixedFilter{verdict: Accept}
		drop := &fixedFilter{verdict: Drop}
		for i := 0; i < 2000; i++ {
			if i%2 == 0 {
				s.SetFilter(drop)
			} else {
				s.SetFilter(accept)
			}
		}
		s.SetFilter(nil)
	}()

	var wg sync.WaitGroup
	var denied atomic.Uint64
	for w := 0; w < senders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sock, err := s.NewSocket(AF_INET, SOCK_DGRAM, IPPROTO_UDP)
			if err != nil {
				t.Errorf("socket: %v", err)
				return
			}
			defer s.Close(sock)
			for i := 0; i < perSender; i++ {
				pkt := &Packet{Dst: IPv4(10, 0, 0, 1), DstPort: 9}
				switch err := s.SendTo(sock, pkt); err {
				case nil:
				case errno.EPERM: // dropped by the filter of the moment
					denied.Add(1)
				default:
					t.Errorf("sendto: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done
	if t.Failed() {
		return
	}
	total := s.SentPackets() + s.DroppedPackets()
	if total != senders*perSender {
		t.Fatalf("sent %d + dropped %d = %d, want %d",
			s.SentPackets(), s.DroppedPackets(), total, senders*perSender)
	}
	if s.DroppedPackets() != denied.Load() {
		t.Fatalf("dropped counter %d, but %d sends returned EPERM",
			s.DroppedPackets(), denied.Load())
	}
}
