package netstack

import "maps"

// Clone returns a deep copy of the stack for machine snapshots:
// interfaces (including modem session parameters), routes, sockets, and
// the bound-port table are duplicated so the clone's network churn never
// shows through to the parent. Cloned sockets get fresh queues and no
// peer link — a cross-machine peer pointer would deliver packets into the
// wrong tenant. The output filter and link partner are deliberately left
// unset; the owning kernel wires both to the clone's own netfilter table.
func (s *Stack) Clone() *Stack {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &Stack{
		hostIP:   s.hostIP,
		ifaces:   make(map[string]*Iface, len(s.ifaces)),
		routes:   append([]Route(nil), s.routes...),
		ports:    make(map[portKey]*Socket, len(s.ports)),
		sockets:  make(map[int]*Socket, len(s.sockets)),
		nextSock: s.nextSock,
	}
	for name, ifc := range s.ifaces {
		ci := *ifc
		if ifc.Params != nil {
			ci.Params = maps.Clone(ifc.Params)
		}
		c.ifaces[name] = &ci
	}
	for id, sock := range s.sockets {
		c.sockets[id] = sock.cloneInto(c)
	}
	for pk, sock := range s.ports {
		if cs, ok := c.sockets[sock.ID]; ok {
			c.ports[pk] = cs
		}
	}
	return c
}

// cloneInto copies the socket's identity and state onto a new stack with
// fresh, empty queues and no peer.
func (sock *Socket) cloneInto(c *Stack) *Socket {
	sock.mu.Lock()
	defer sock.mu.Unlock()
	cs := &Socket{
		ID:          sock.ID,
		Family:      sock.Family,
		Type:        sock.Type,
		Proto:       sock.Proto,
		LocalIP:     sock.LocalIP,
		LocalPort:   sock.LocalPort,
		RemoteIP:    sock.RemoteIP,
		RemotePort:  sock.RemotePort,
		OwnerUID:    sock.OwnerUID,
		OwnerBinary: sock.OwnerBinary,
		UnprivRaw:   sock.UnprivRaw,
		stack:       c,
		recvQ:       make(chan *Packet, recvQueueDepth),
		listening:   sock.listening,
		connected:   sock.connected,
		closed:      sock.closed,
	}
	if sock.acceptQ != nil {
		cs.acceptQ = make(chan *Socket, cap(sock.acceptQ))
	}
	return cs
}
