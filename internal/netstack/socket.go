package netstack

import (
	"sort"
	"time"

	"protego/internal/errno"
	"protego/internal/faultinject"
)

// recvQueueDepth bounds per-socket receive queues; overflowing packets are
// dropped like a full sk_buff backlog.
const recvQueueDepth = 512

// NewSocket allocates a socket on the stack. Privilege checks (CAP_NET_RAW
// for raw sockets) belong to the kernel layer, not here.
func (s *Stack) NewSocket(family, typ, proto int) (*Socket, error) {
	if family != AF_INET && family != AF_PACKET {
		return nil, errno.EINVAL
	}
	if typ != SOCK_STREAM && typ != SOCK_DGRAM && typ != SOCK_RAW {
		return nil, errno.EINVAL
	}
	sock := &Socket{
		Family: family,
		Type:   typ,
		Proto:  proto,
		stack:  s,
		recvQ:  make(chan *Packet, recvQueueDepth),
	}
	s.mu.Lock()
	s.nextSock++
	sock.ID = s.nextSock
	s.sockets[sock.ID] = sock
	s.mu.Unlock()
	return sock, nil
}

// IsRaw reports whether the socket is a raw or packet socket.
func (sock *Socket) IsRaw() bool {
	return sock.Type == SOCK_RAW || sock.Family == AF_PACKET
}

// Stack returns the stack the socket was created on (its network
// namespace).
func (sock *Socket) Stack() *Stack { return sock.stack }

// Bind attaches the socket to a local port. EADDRINUSE if the (proto, port)
// pair is taken. Port ownership is recorded for spoofing detection.
func (s *Stack) Bind(sock *Socket, port int) error {
	if port < 0 || port > 65535 {
		return errno.EINVAL
	}
	proto := sock.effectiveProto()
	s.mu.Lock()
	defer s.mu.Unlock()
	if port == 0 {
		port = s.ephemeralPortLocked(proto)
		if port == 0 {
			return errno.EADDRINUSE
		}
	}
	key := portKey{proto: proto, port: port}
	if _, taken := s.ports[key]; taken {
		return errno.EADDRINUSE
	}
	s.ports[key] = sock
	sock.LocalIP = s.hostIP
	sock.LocalPort = port
	return nil
}

// effectiveProto maps the socket type to the transport protocol used for
// port bookkeeping.
func (sock *Socket) effectiveProto() int {
	switch {
	case sock.Proto != 0 && sock.Proto != IPPROTO_IP:
		return sock.Proto
	case sock.Type == SOCK_STREAM:
		return IPPROTO_TCP
	case sock.Type == SOCK_DGRAM:
		return IPPROTO_UDP
	default:
		return IPPROTO_RAW
	}
}

func (s *Stack) ephemeralPortLocked(proto int) int {
	for p := 32768; p < 61000; p++ {
		if _, taken := s.ports[portKey{proto: proto, port: p}]; !taken {
			return p
		}
	}
	return 0
}

// PortOwner returns the socket bound to (proto, port), or nil.
func (s *Stack) PortOwner(proto, port int) *Socket {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ports[portKey{proto: proto, port: port}]
}

// BoundPort is one row of the stack's port-binding table.
type BoundPort struct {
	Proto    int
	Port     int
	OwnerUID int
}

// BoundPorts returns a snapshot of every (proto, port) reservation with the
// owning socket's uid, sorted by proto then port — the canonical form the
// state-fingerprint serializers compare across machine images.
func (s *Stack) BoundPorts() []BoundPort {
	s.mu.RLock()
	out := make([]BoundPort, 0, len(s.ports))
	for key, sock := range s.ports {
		out = append(out, BoundPort{Proto: key.proto, Port: key.port, OwnerUID: sock.OwnerUID})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Proto != out[j].Proto {
			return out[i].Proto < out[j].Proto
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// Listen marks a stream socket as accepting connections.
func (s *Stack) Listen(sock *Socket, backlog int) error {
	if sock.Type != SOCK_STREAM {
		return errno.EINVAL
	}
	if sock.LocalPort == 0 {
		return errno.EINVAL
	}
	sock.mu.Lock()
	defer sock.mu.Unlock()
	if backlog <= 0 {
		backlog = 16
	}
	sock.acceptQ = make(chan *Socket, backlog)
	sock.listening = true
	return nil
}

// listenQueue returns the accept queue if the socket is listening.
func (sock *Socket) listenQueue() (chan *Socket, bool) {
	sock.mu.Lock()
	defer sock.mu.Unlock()
	return sock.acceptQ, sock.listening
}

// Connect establishes a stream connection to (dst, port). The handshake is
// synchronous: a peer socket is created and queued on the listener.
func (s *Stack) Connect(sock *Socket, dst IP, port int) error {
	if sock.Type != SOCK_STREAM {
		return errno.EINVAL
	}
	if err := s.faultInjector().Check(faultinject.SiteNetConnect); err != nil {
		return err
	}
	sock.mu.Lock()
	if sock.connected {
		sock.mu.Unlock()
		return errno.EISCONN
	}
	sock.mu.Unlock()

	target, err := s.resolveTarget(dst)
	if err != nil {
		return err
	}
	listener := target.PortOwner(IPPROTO_TCP, port)
	if listener == nil {
		return errno.ECONNREFUSED
	}
	acceptQ, listening := listener.listenQueue()
	if !listening {
		return errno.ECONNREFUSED
	}
	// Auto-bind an ephemeral local port.
	if sock.LocalPort == 0 {
		if err := s.Bind(sock, 0); err != nil {
			return err
		}
	}
	server := &Socket{
		Family:     AF_INET,
		Type:       SOCK_STREAM,
		Proto:      IPPROTO_TCP,
		stack:      target,
		recvQ:      make(chan *Packet, recvQueueDepth),
		LocalIP:    listener.LocalIP,
		LocalPort:  listener.LocalPort,
		RemoteIP:   sock.LocalIP,
		RemotePort: sock.LocalPort,
		OwnerUID:   listener.OwnerUID,
		connected:  true,
	}
	server.peer = sock
	sock.mu.Lock()
	sock.peer = server
	sock.connected = true
	sock.RemoteIP = dst
	sock.RemotePort = port
	sock.mu.Unlock()
	select {
	case acceptQ <- server:
		return nil
	default:
		return errno.ECONNREFUSED // backlog full
	}
}

// resolveTarget returns the stack owning dst (this one, or the linked peer).
func (s *Stack) resolveTarget(dst IP) (*Stack, error) {
	if s.isLocal(dst) {
		return s, nil
	}
	s.mu.RLock()
	route := s.lookupRoute(dst)
	linked := s.linked
	s.mu.RUnlock()
	if route == nil {
		return nil, errno.ENETUNREACH
	}
	if linked != nil && linked.isLocal(dst) {
		return linked, nil
	}
	if linked != nil {
		return linked, nil // forward via point-to-point gateway
	}
	return nil, errno.EHOSTUNREACH
}

// Accept dequeues a pending connection from a listening socket.
func (s *Stack) Accept(sock *Socket, timeout time.Duration) (*Socket, error) {
	acceptQ, listening := sock.listenQueue()
	if !listening {
		return nil, errno.EINVAL
	}
	select {
	case conn := <-acceptQ:
		return conn, nil
	case <-time.After(timeout):
		return nil, errno.EAGAIN
	}
}

// Send transmits stream data to the connected peer.
func (s *Stack) Send(sock *Socket, data []byte) (int, error) {
	sock.mu.Lock()
	peer := sock.peer
	connected := sock.connected
	sock.mu.Unlock()
	if !connected || peer == nil {
		return 0, errno.ENOTCONN
	}
	act, ferr := s.faultInjector().CheckSend(faultinject.SiteNetSend)
	if ferr != nil {
		return 0, ferr
	}
	pkt := &Packet{
		Src: sock.LocalIP, Dst: sock.RemoteIP,
		Proto: IPPROTO_TCP, SrcPort: sock.LocalPort, DstPort: sock.RemotePort,
		Payload: append([]byte(nil), data...),
	}
	s.sentPackets.Add(1)
	if act == faultinject.ActDrop {
		// Lost on the wire: the send succeeds, nothing arrives.
		return len(data), nil
	}
	copies := 1
	if act == faultinject.ActDup {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		select {
		case peer.recvQ <- pkt:
		case <-time.After(time.Second):
			return 0, errno.ETIMEDOUT
		}
	}
	return len(data), nil
}

// Recv reads stream data from the socket, blocking up to timeout.
func (s *Stack) Recv(sock *Socket, timeout time.Duration) ([]byte, error) {
	select {
	case pkt, ok := <-sock.recvQ:
		if !ok {
			return nil, errno.ECONNRESET
		}
		return pkt.Payload, nil
	case <-time.After(timeout):
		return nil, errno.EAGAIN
	}
}

// SendTo transmits a datagram (UDP) or a raw packet. Raw packets pass
// through the output filter; this is the path the Protego netfilter
// extension mediates. Spoofing detection fills pkt.SpoofedSource when a raw
// packet claims a TCP/UDP source endpoint bound by a different owner.
func (s *Stack) SendTo(sock *Socket, pkt *Packet) error {
	pkt.Src = s.hostIP
	pkt.SenderUID = sock.OwnerUID
	if sock.IsRaw() {
		pkt.FromRaw = true
		pkt.UnprivRaw = sock.UnprivRaw
		s.detectSpoofing(sock, pkt)
	} else {
		pkt.Proto = sock.effectiveProto()
		if sock.LocalPort == 0 {
			if err := s.Bind(sock, 0); err != nil {
				return err
			}
		}
		pkt.SrcPort = sock.LocalPort
	}

	// One atomic load per packet: see SetFilter for the swap semantics.
	if filter := s.currentFilter(); filter != nil && filter.Output(pkt) == Drop {
		s.droppedPackets.Add(1)
		return errno.EPERM
	}

	// Fault injection sits after the filter verdict: policy drops stay
	// policy drops (EPERM), injected ones model loss on the wire.
	act, ferr := s.faultInjector().CheckSend(faultinject.SiteNetSendTo)
	if ferr != nil {
		return ferr
	}
	s.sentPackets.Add(1)
	if act == faultinject.ActDrop {
		return nil // sent but never delivered
	}

	target, err := s.resolveTarget(pkt.Dst)
	if err != nil {
		return err
	}
	target.deliver(pkt, sock)
	if act == faultinject.ActDup {
		target.deliver(pkt, sock)
	}
	return nil
}

// detectSpoofing marks raw packets that forge another socket's endpoint.
func (s *Stack) detectSpoofing(sock *Socket, pkt *Packet) {
	if pkt.Proto != IPPROTO_TCP && pkt.Proto != IPPROTO_UDP {
		return
	}
	owner := s.PortOwner(pkt.Proto, pkt.SrcPort)
	if owner != nil && owner.ID != sock.ID && owner.OwnerUID != sock.OwnerUID {
		pkt.SpoofedSource = true
	}
}

// deliver routes an inbound packet to the right local socket. ICMP echo
// requests addressed to the host generate a reply sent back to the origin's
// raw ICMP sockets.
func (s *Stack) deliver(pkt *Packet, origin *Socket) {
	switch pkt.Proto {
	case IPPROTO_ICMP:
		if pkt.ICMPType == ICMPEchoRequest && s.isLocal(pkt.Dst) {
			reply := &Packet{
				Src: pkt.Dst, Dst: pkt.Src,
				Proto: IPPROTO_ICMP, ICMPType: ICMPEchoReply,
				Payload: pkt.Payload,
			}
			if origin != nil {
				select {
				case origin.recvQ <- reply:
				default:
				}
			}
			return
		}
		// TTL exceeded etc. delivered to raw sockets below.
		if origin != nil {
			select {
			case origin.recvQ <- pkt:
			default:
			}
		}
	case IPPROTO_UDP:
		if target := s.PortOwner(IPPROTO_UDP, pkt.DstPort); target != nil {
			select {
			case target.recvQ <- pkt:
			default:
			}
		}
	case IPPROTO_TCP:
		if target := s.PortOwner(IPPROTO_TCP, pkt.DstPort); target != nil {
			select {
			case target.recvQ <- pkt:
			default:
			}
		}
	default:
		// Unknown protocol: deliver to the origin socket if local (a
		// raw-protocol loopback), else drop.
		if origin != nil && s.isLocal(pkt.Dst) {
			select {
			case origin.recvQ <- pkt:
			default:
			}
		}
	}
}

// RecvFrom reads a datagram, blocking up to timeout.
func (s *Stack) RecvFrom(sock *Socket, timeout time.Duration) (*Packet, error) {
	select {
	case pkt, ok := <-sock.recvQ:
		if !ok {
			return nil, errno.ECONNRESET
		}
		return pkt, nil
	case <-time.After(timeout):
		return nil, errno.EAGAIN
	}
}

// Close releases the socket and its port reservation.
func (s *Stack) Close(sock *Socket) error {
	sock.mu.Lock()
	if sock.closed {
		sock.mu.Unlock()
		return errno.EBADF
	}
	sock.closed = true
	sock.mu.Unlock()
	s.mu.Lock()
	if sock.LocalPort != 0 {
		key := portKey{proto: sock.effectiveProto(), port: sock.LocalPort}
		if s.ports[key] == sock {
			delete(s.ports, key)
		}
	}
	delete(s.sockets, sock.ID)
	s.mu.Unlock()
	return nil
}
