package vfs

import (
	"strings"
	"testing"
	"testing/quick"

	"protego/internal/caps"
	"protego/internal/errno"
)

// testCred is a minimal credential for DAC tests.
type testCred struct {
	uid, gid int
	groups   []int
	caps     caps.Set
}

func (c testCred) FSUID() int { return c.uid }
func (c testCred) FSGID() int { return c.gid }
func (c testCred) InGroup(gid int) bool {
	for _, g := range c.groups {
		if g == gid {
			return true
		}
	}
	return false
}
func (c testCred) Capable(cp caps.Cap) bool { return c.caps.Has(cp) }

var (
	root  = testCred{uid: 0, gid: 0, caps: caps.Full()}
	alice = testCred{uid: 1000, gid: 1000}
	bob   = testCred{uid: 1001, gid: 1001}
)

func newTestFS(t *testing.T) *FS {
	t.Helper()
	fs := New()
	mustMkdir := func(path string, mode Mode) {
		if _, err := fs.Mkdir(root, path, mode, 0, 0); err != nil {
			t.Fatalf("mkdir %s: %v", path, err)
		}
	}
	mustMkdir("/etc", 0o755)
	mustMkdir("/home", 0o755)
	mustMkdir("/tmp", 0o777|ModeSticky)
	mustMkdir("/dev", 0o755)
	if _, err := fs.Mkdir(root, "/home/alice", 0o700, 1000, 1000); err != nil {
		t.Fatalf("mkdir alice: %v", err)
	}
	return fs
}

func TestCleanPath(t *testing.T) {
	cases := []struct{ in, cwd, want string }{
		{"/", "/", "/"},
		{"/etc/passwd", "/", "/etc/passwd"},
		{"etc/passwd", "/", "/etc/passwd"},
		{"passwd", "/etc", "/etc/passwd"},
		{"../etc/passwd", "/home", "/etc/passwd"},
		{"/a//b///c", "/", "/a/b/c"},
		{"/a/./b/../c", "/", "/a/c"},
		{"/../..", "/", "/"},
		{"..", "/", "/"},
		{".", "/etc", "/etc"},
	}
	for _, c := range cases {
		if got := CleanPath(c.in, c.cwd); got != c.want {
			t.Errorf("CleanPath(%q,%q)=%q want %q", c.in, c.cwd, got, c.want)
		}
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct{ in, dir, base string }{
		{"/etc/passwd", "/etc", "passwd"},
		{"/etc", "/", "etc"},
		{"/", "/", "."},
		{"/a/b/c", "/a/b", "c"},
	}
	for _, c := range cases {
		d, b := SplitPath(c.in)
		if d != c.dir || b != c.base {
			t.Errorf("SplitPath(%q)=(%q,%q) want (%q,%q)", c.in, d, b, c.dir, c.base)
		}
	}
}

func TestIsUnder(t *testing.T) {
	if !IsUnder("/etc/passwd", "/etc") {
		t.Error("IsUnder(/etc/passwd, /etc) should be true")
	}
	if !IsUnder("/etc", "/etc") {
		t.Error("IsUnder(/etc, /etc) should be true")
	}
	if IsUnder("/etcetera", "/etc") {
		t.Error("IsUnder(/etcetera, /etc) should be false")
	}
	if !IsUnder("/anything", "/") {
		t.Error("everything is under /")
	}
}

func TestModeString(t *testing.T) {
	cases := []struct {
		mode Mode
		want string
	}{
		{TypeRegular | 0o4755, "-rwsr-xr-x"}, // setuid-to-root binary
		{TypeRegular | 0o644, "-rw-r--r--"},
		{TypeDir | 0o1777, "drwxrwxrwt"}, // /tmp
		{TypeRegular | 0o4644, "-rwSr--r--"},
		{TypeChar | 0o666, "crw-rw-rw-"},
		{TypeBlock | 0o660, "brw-rw----"},
		{TypeSymlink | 0o777, "lrwxrwxrwx"},
		{TypeRegular | 0o2755, "-rwxr-sr-x"},
	}
	for _, c := range cases {
		if got := c.mode.String(); got != c.want {
			t.Errorf("Mode(%o).String()=%q want %q", uint32(c.mode), got, c.want)
		}
	}
}

func TestCreateAndRead(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/etc/motd", []byte("hello"), 0o644, 0, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	data, err := fs.ReadFile(alice, "/etc/motd")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(data) != "hello" {
		t.Fatalf("got %q", data)
	}
}

func TestDACOwnerOnly(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/etc/shadow", []byte("secret"), 0o600, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(alice, "/etc/shadow"); err != errno.EACCES {
		t.Fatalf("alice reading shadow: got %v want EACCES", err)
	}
	if _, err := fs.ReadFile(root, "/etc/shadow"); err != nil {
		t.Fatalf("root reading shadow: %v", err)
	}
}

func TestDACGroup(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/etc/grouped", []byte("data"), 0o640, 0, 50); err != nil {
		t.Fatal(err)
	}
	member := testCred{uid: 1000, gid: 1000, groups: []int{50}}
	if _, err := fs.ReadFile(member, "/etc/grouped"); err != nil {
		t.Fatalf("group member read: %v", err)
	}
	if _, err := fs.ReadFile(bob, "/etc/grouped"); err != errno.EACCES {
		t.Fatalf("non-member read: got %v want EACCES", err)
	}
}

func TestDACCapabilityOverride(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/etc/shadow", []byte("secret"), 0o600, 0, 0); err != nil {
		t.Fatal(err)
	}
	overrider := testCred{uid: 1000, gid: 1000, caps: caps.Of(caps.CAP_DAC_OVERRIDE)}
	if _, err := fs.ReadFile(overrider, "/etc/shadow"); err != nil {
		t.Fatalf("CAP_DAC_OVERRIDE read: %v", err)
	}
	searcher := testCred{uid: 1000, gid: 1000, caps: caps.Of(caps.CAP_DAC_READ_SEARCH)}
	if _, err := fs.ReadFile(searcher, "/etc/shadow"); err != nil {
		t.Fatalf("CAP_DAC_READ_SEARCH read: %v", err)
	}
	if err := fs.WriteFile(searcher, "/etc/shadow", []byte("x"), 0o600, 0, 0); err != errno.EACCES {
		t.Fatalf("CAP_DAC_READ_SEARCH write should fail: %v", err)
	}
}

func TestDirectorySearchPermission(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/home/alice/secret", []byte("x"), 0o644, 1000, 1000); err != nil {
		t.Fatal(err)
	}
	// bob cannot traverse alice's 0700 home
	if _, err := fs.ReadFile(bob, "/home/alice/secret"); err != errno.EACCES {
		t.Fatalf("bob traverse: got %v want EACCES", err)
	}
	if _, err := fs.ReadFile(alice, "/home/alice/secret"); err != nil {
		t.Fatalf("alice read: %v", err)
	}
}

func TestStickyBitDelete(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(alice, "/tmp/alice.txt", []byte("a"), 0o644, 1000, 1000); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(bob, "/tmp/alice.txt"); err != errno.EPERM {
		t.Fatalf("bob removing alice's /tmp file: got %v want EPERM", err)
	}
	if err := fs.Remove(alice, "/tmp/alice.txt"); err != nil {
		t.Fatalf("alice removing own file: %v", err)
	}
}

func TestWriteClearsSetuid(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/tmp/tool", []byte("v1"), 0o755, 1000, 1000); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(root, "/tmp/tool", 0o4755); err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.Lookup(root, "/tmp/tool")
	if !ino.Mode.IsSetuid() {
		t.Fatal("setuid bit not set")
	}
	// Non-root write clears the bit (anti-tamper rule).
	if err := fs.WriteFile(alice, "/tmp/tool", []byte("evil"), 0o755, 1000, 1000); err != nil {
		t.Fatal(err)
	}
	if ino.Mode.IsSetuid() {
		t.Fatal("setuid bit survived non-root write")
	}
}

func TestChmodRequiresOwner(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/etc/conf", []byte("x"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(alice, "/etc/conf", 0o777); err != errno.EPERM {
		t.Fatalf("alice chmod root file: got %v want EPERM", err)
	}
}

func TestChownRequiresCapChown(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(alice, "/tmp/mine", []byte("x"), 0o644, 1000, 1000); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(alice, "/tmp/mine", 0, 0); err != errno.EPERM {
		t.Fatalf("alice giving file to root: got %v want EPERM", err)
	}
	if err := fs.Chown(root, "/tmp/mine", 0, 0); err != nil {
		t.Fatalf("root chown: %v", err)
	}
}

func TestChownClearsSetuid(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/tmp/tool", []byte("x"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chmod(root, "/tmp/tool", 0o4755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Chown(root, "/tmp/tool", 1000, 1000); err != nil {
		t.Fatal(err)
	}
	ino, _ := fs.Lookup(root, "/tmp/tool")
	if ino.Mode.IsSetuid() {
		t.Fatal("setuid survived chown")
	}
}

func TestSymlink(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/etc/real", []byte("target"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(root, "/etc/real", "/etc/link", 0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(alice, "/etc/link")
	if err != nil {
		t.Fatalf("read via symlink: %v", err)
	}
	if string(data) != "target" {
		t.Fatalf("got %q", data)
	}
	ino, err := fs.LookupNoFollow(root, "/etc/link")
	if err != nil || !ino.Mode.IsSymlink() {
		t.Fatalf("nofollow: %v mode=%v", err, ino.Mode)
	}
}

func TestSymlinkLoop(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.Symlink(root, "/etc/b", "/etc/a", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(root, "/etc/a", "/etc/b", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile(root, "/etc/a"); err != errno.ELOOP {
		t.Fatalf("symlink loop: got %v want ELOOP", err)
	}
}

func TestMknodRequiresCapability(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Mknod(alice, "/dev/evil", CharDevice, 1, 3, 0o666, 1000, 1000); err != errno.EPERM {
		t.Fatalf("alice mknod: got %v want EPERM", err)
	}
	if _, err := fs.Mknod(root, "/dev/null", CharDevice, 1, 3, 0o666, 0, 0); err != nil {
		t.Fatalf("root mknod: %v", err)
	}
}

func TestMountDetach(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Mkdir(root, "/cdrom", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(root, "/cdrom/placeholder", []byte("empty"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	m := &Mount{Device: "/dev/cdrom", Point: "/cdrom", FSType: "iso9660", ReadOnly: true}
	if err := fs.AttachMount(root, m); err != nil {
		t.Fatalf("attach: %v", err)
	}
	// the placeholder is hidden under the mount
	if fs.Exists(root, "/cdrom/placeholder") {
		t.Fatal("placeholder visible after mount")
	}
	// the mount is read-only
	if err := fs.WriteFile(root, "/cdrom/new", []byte("x"), 0o644, 0, 0); err != errno.EROFS {
		t.Fatalf("write under ro mount: got %v want EROFS", err)
	}
	if got := fs.MountAt("/cdrom"); got == nil || got.Device != "/dev/cdrom" {
		t.Fatalf("MountAt: %+v", got)
	}
	if _, err := fs.DetachMount(root, "/cdrom"); err != nil {
		t.Fatalf("detach: %v", err)
	}
	if !fs.Exists(root, "/cdrom/placeholder") {
		t.Fatal("placeholder not restored after umount")
	}
}

func TestMountDeviceBusy(t *testing.T) {
	fs := newTestFS(t)
	for _, d := range []string{"/mnt1", "/mnt2"} {
		if _, err := fs.Mkdir(root, d, 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.AttachMount(root, &Mount{Device: "/dev/sdb1", Point: "/mnt1", FSType: "ext4"}); err != nil {
		t.Fatal(err)
	}
	if err := fs.AttachMount(root, &Mount{Device: "/dev/sdb1", Point: "/mnt2", FSType: "ext4"}); err != errno.EBUSY {
		t.Fatalf("double mount of device: got %v want EBUSY", err)
	}
	if err := fs.AttachMount(root, &Mount{Device: "/dev/sdc1", Point: "/mnt1", FSType: "ext4"}); err != errno.EBUSY {
		t.Fatalf("mount over mountpoint: got %v want EBUSY", err)
	}
}

func TestUmountNotMounted(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.DetachMount(root, "/etc"); err != errno.EINVAL {
		t.Fatalf("umount of non-mount: got %v want EINVAL", err)
	}
}

func TestRemoveMountPointBusy(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Mkdir(root, "/mnt", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.AttachMount(root, &Mount{Device: "/dev/sdb1", Point: "/mnt", FSType: "ext4"}); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(root, "/mnt"); err != errno.EBUSY {
		t.Fatalf("rmdir of mountpoint: got %v want EBUSY", err)
	}
}

func TestFormatMtab(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Mkdir(root, "/mnt", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.AttachMount(root, &Mount{Device: "/dev/sdb1", Point: "/mnt", FSType: "ext4", Options: []string{"rw", "user"}}); err != nil {
		t.Fatal(err)
	}
	mtab := fs.FormatMtab()
	if !strings.Contains(mtab, "/dev/sdb1 /mnt ext4 rw,user 0 0") {
		t.Fatalf("mtab: %q", mtab)
	}
}

func TestWatchEvents(t *testing.T) {
	fs := newTestFS(t)
	w := fs.Watch("/etc")
	defer w.Close()
	if err := fs.WriteFile(root, "/etc/fstab", []byte("x"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Creating a file via WriteFile emits create followed by write.
	ev := <-w.C
	if ev.Op != OpCreate || ev.Path != "/etc/fstab" {
		t.Fatalf("event: %+v", ev)
	}
	ev = <-w.C
	if ev.Op != OpWrite || ev.Path != "/etc/fstab" {
		t.Fatalf("event: %+v", ev)
	}
	if err := fs.WriteFile(root, "/etc/fstab", []byte("y"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	ev = <-w.C
	if ev.Op != OpWrite {
		t.Fatalf("event: %+v", ev)
	}
	// Writes elsewhere do not notify.
	if err := fs.WriteFile(root, "/tmp/other", []byte("z"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-w.C:
		t.Fatalf("unexpected event %+v", ev)
	default:
	}
}

func TestWatchClose(t *testing.T) {
	fs := newTestFS(t)
	w := fs.Watch("/etc")
	w.Close()
	w.Close() // double close is safe
	if err := fs.WriteFile(root, "/etc/x", []byte("1"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-w.C; ok {
		t.Fatal("channel should be closed")
	}
}

func TestProcFile(t *testing.T) {
	fs := newTestFS(t)
	if _, err := fs.Mkdir(root, "/proc", 0o555, 0, 0); err != nil {
		t.Fatal(err)
	}
	var stored []byte
	_, err := fs.CreateProc("/proc/policy", 0o600,
		func(c Cred) ([]byte, error) { return stored, nil },
		func(c Cred, data []byte) error { stored = append([]byte(nil), data...); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(root, "/proc/policy", []byte("rule1"), 0o600, 0, 0); err != nil {
		t.Fatalf("proc write: %v", err)
	}
	data, err := fs.ReadFile(root, "/proc/policy")
	if err != nil || string(data) != "rule1" {
		t.Fatalf("proc read: %q %v", data, err)
	}
	// 0600 root-owned: alice cannot write policy
	if err := fs.WriteFile(alice, "/proc/policy", []byte("evil"), 0o600, 0, 0); err != errno.EACCES {
		t.Fatalf("alice proc write: got %v want EACCES", err)
	}
}

func TestReadDir(t *testing.T) {
	fs := newTestFS(t)
	for _, f := range []string{"/etc/b", "/etc/a", "/etc/c"} {
		if err := fs.WriteFile(root, f, []byte("x"), 0o644, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	names, err := fs.ReadDir(alice, "/etc")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names: %v", names)
	}
}

func TestRename(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/etc/passwd.tmp", []byte("new"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile(root, "/etc/passwd", []byte("old"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(root, "/etc/passwd.tmp", "/etc/passwd"); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile(root, "/etc/passwd")
	if string(data) != "new" {
		t.Fatalf("got %q", data)
	}
	if fs.Exists(root, "/etc/passwd.tmp") {
		t.Fatal("tmp survived rename")
	}
}

func TestAppendFile(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/tmp/log", []byte("a"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendFile(root, "/tmp/log", []byte("b")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.ReadFile(root, "/tmp/log")
	if string(data) != "ab" {
		t.Fatalf("got %q", data)
	}
	if err := fs.AppendFile(root, "/tmp/nolog", []byte("x")); err != errno.ENOENT {
		t.Fatalf("append missing: got %v want ENOENT", err)
	}
}

func TestRemoveNonEmptyDir(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.WriteFile(root, "/etc/x", []byte("1"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(root, "/etc"); err != errno.ENOTEMPTY {
		t.Fatalf("remove non-empty: got %v want ENOTEMPTY", err)
	}
}

func TestMkdirAll(t *testing.T) {
	fs := newTestFS(t)
	if err := fs.MkdirAll(root, "/var/spool/mail", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if !fs.Exists(root, "/var/spool/mail") {
		t.Fatal("missing")
	}
	// Idempotent.
	if err := fs.MkdirAll(root, "/var/spool/mail", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// Property: CleanPath is idempotent and always produces an absolute path
// with no ".", "..", or empty components.
func TestCleanPathProperties(t *testing.T) {
	f := func(segs []string) bool {
		path := strings.Join(segs, "/")
		got := CleanPath(path, "/")
		if !strings.HasPrefix(got, "/") {
			return false
		}
		if CleanPath(got, "/") != got {
			return false
		}
		for _, c := range components(got) {
			if c == "" || c == "." || c == ".." {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any permission bits, the owner's access is decided solely by
// the user class bits; an unrelated user by the other class bits.
func TestDACClassProperty(t *testing.T) {
	fs := New()
	f := func(bits uint16) bool {
		mode := Mode(bits) & PermMask
		ino := fs.newInode(TypeRegular|mode, 1000, 1000)
		ownerOK := checkPerm(alice, ino, MayRead) == nil
		wantOwner := mode&PermUserRead != 0
		otherOK := checkPerm(bob, ino, MayRead) == nil
		wantOther := mode&PermOtherRead != 0
		return ownerOK == wantOwner && otherOK == wantOther
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: mount then unmount restores the directory exactly.
func TestMountRoundTripProperty(t *testing.T) {
	f := func(fileNames []string) bool {
		fs := New()
		if _, err := fs.Mkdir(RootCred, "/mnt", 0o755, 0, 0); err != nil {
			return false
		}
		seen := map[string]bool{}
		var valid []string
		for _, n := range fileNames {
			if n == "" || strings.ContainsAny(n, "/\x00") || n == "." || n == ".." || seen[n] {
				continue
			}
			seen[n] = true
			valid = append(valid, n)
			if err := fs.WriteFile(RootCred, "/mnt/"+n, []byte(n), 0o644, 0, 0); err != nil {
				return false
			}
		}
		if err := fs.AttachMount(RootCred, &Mount{Device: "/dev/x", Point: "/mnt", FSType: "ext4"}); err != nil {
			return false
		}
		names, _ := fs.ReadDir(RootCred, "/mnt")
		if len(names) != 0 {
			return false
		}
		if _, err := fs.DetachMount(RootCred, "/mnt"); err != nil {
			return false
		}
		names, _ = fs.ReadDir(RootCred, "/mnt")
		return len(names) == len(valid)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
