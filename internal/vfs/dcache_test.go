package vfs

import (
	"sync"
	"testing"

	"protego/internal/errno"
)

// dcacheFS builds a small tree with a file reachable through an
// intermediate directory, which the invalidation tests mutate.
func dcacheFS(t *testing.T) *FS {
	t.Helper()
	fs := newTestFS(t)
	if err := fs.MkdirAll(root, "/srv/data/sub", 0o755, 0, 0); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := fs.WriteFile(root, "/srv/data/sub/f", []byte("v1"), 0o644, 0, 0); err != nil {
		t.Fatalf("write: %v", err)
	}
	return fs
}

// warm primes the cache for path and asserts the second lookup hits.
func warm(t *testing.T, fs *FS, c Cred, path string) {
	t.Helper()
	if _, err := fs.Lookup(c, path); err != nil {
		t.Fatalf("warm %s: %v", path, err)
	}
	before := fs.DcacheStats().Hits
	if _, err := fs.Lookup(c, path); err != nil {
		t.Fatalf("warm %s: %v", path, err)
	}
	if got := fs.DcacheStats().Hits; got != before+1 {
		t.Fatalf("warm %s: expected a cache hit (hits %d -> %d)", path, before, got)
	}
}

func TestDcacheHitReturnsSameInode(t *testing.T) {
	fs := dcacheFS(t)
	a, err := fs.Lookup(root, "/srv/data/sub/f")
	if err != nil {
		t.Fatal(err)
	}
	b, err := fs.Lookup(root, "/srv/data/sub/f")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cached lookup returned a different inode")
	}
	st := fs.DcacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected hits and misses, got %+v", st)
	}
}

func TestDcacheUnlinkInvalidates(t *testing.T) {
	fs := dcacheFS(t)
	warm(t, fs, root, "/srv/data/sub/f")
	if err := fs.Remove(root, "/srv/data/sub/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(root, "/srv/data/sub/f"); err != errno.ENOENT {
		t.Fatalf("lookup after unlink: got %v, want ENOENT", err)
	}
}

func TestDcacheRenameOfIntermediateDirInvalidates(t *testing.T) {
	fs := dcacheFS(t)
	warm(t, fs, root, "/srv/data/sub/f")
	if err := fs.Rename(root, "/srv/data", "/srv/moved"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(root, "/srv/data/sub/f"); err != errno.ENOENT {
		t.Fatalf("lookup via old name: got %v, want ENOENT", err)
	}
	if _, err := fs.Lookup(root, "/srv/moved/sub/f"); err != nil {
		t.Fatalf("lookup via new name: %v", err)
	}
}

func TestDcacheChmodOfIntermediateDirReenforced(t *testing.T) {
	fs := dcacheFS(t)
	warm(t, fs, alice, "/srv/data/sub/f")
	// Revoke search permission on the intermediate directory: the warm
	// cache entry must not let alice through.
	if err := fs.Chmod(root, "/srv/data", 0o700); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(alice, "/srv/data/sub/f"); err != errno.EACCES {
		t.Fatalf("lookup after chmod: got %v, want EACCES", err)
	}
	// root still passes.
	if _, err := fs.Lookup(root, "/srv/data/sub/f"); err != nil {
		t.Fatalf("root lookup: %v", err)
	}
}

func TestDcacheHitChecksCurrentCredential(t *testing.T) {
	fs := dcacheFS(t)
	if err := fs.Chmod(root, "/srv/data", 0o700); err != nil {
		t.Fatal(err)
	}
	// Warm the cache as root, then probe as alice: the hit must re-run
	// the MayExec checks with alice's credential and refuse.
	warm(t, fs, root, "/srv/data/sub/f")
	if _, err := fs.Lookup(alice, "/srv/data/sub/f"); err != errno.EACCES {
		t.Fatalf("alice via warm cache: got %v, want EACCES", err)
	}
}

func TestDcacheSymlinkRetarget(t *testing.T) {
	fs := dcacheFS(t)
	if err := fs.WriteFile(root, "/srv/data/other", []byte("v2"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(root, "/srv/data/sub/f", "/srv/link", 0, 0); err != nil {
		t.Fatal(err)
	}
	warm(t, fs, root, "/srv/link")
	// Retarget the link: remove and recreate pointing elsewhere.
	if err := fs.Remove(root, "/srv/link"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Symlink(root, "/srv/data/other", "/srv/link", 0, 0); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(root, "/srv/link")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Fatalf("read via retargeted link: got %q, want %q", data, "v2")
	}
}

func TestDcacheSymlinkEntriesInvalidatedOnAnyMutation(t *testing.T) {
	fs := dcacheFS(t)
	if err := fs.Symlink(root, "/srv/data/sub/f", "/srv/link", 0, 0); err != nil {
		t.Fatal(err)
	}
	warm(t, fs, root, "/srv/link")
	// A structural mutation in an unrelated subtree must still drop the
	// symlink-traversing entry (a symlink can depend on any path).
	if err := fs.Remove(root, "/srv/data/sub/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Lookup(root, "/srv/link"); err != errno.ENOENT {
		t.Fatalf("lookup dangling link: got %v, want ENOENT", err)
	}
}

func TestDcacheMountShadowAndUmountRestore(t *testing.T) {
	fs := dcacheFS(t)
	warm(t, fs, root, "/srv/data/sub/f")
	warm(t, fs, root, "/srv/data")
	m := &Mount{Device: "/dev/sdb1", Point: "/srv/data", FSType: "ext4"}
	if err := fs.AttachMount(root, m); err != nil {
		t.Fatal(err)
	}
	// The graft emptied the directory: the old contents must not be
	// served from the cache.
	if _, err := fs.Lookup(root, "/srv/data/sub/f"); err != errno.ENOENT {
		t.Fatalf("lookup shadowed path: got %v, want ENOENT", err)
	}
	// The mount point itself survives (descendants-only invalidation).
	if _, err := fs.Lookup(root, "/srv/data"); err != nil {
		t.Fatalf("lookup mount point: %v", err)
	}
	if _, err := fs.DetachMount(root, "/srv/data"); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(root, "/srv/data/sub/f")
	if err != nil {
		t.Fatalf("lookup restored path: %v", err)
	}
	if string(data) != "v1" {
		t.Fatalf("restored content: got %q, want %q", data, "v1")
	}
}

func TestDcacheDisableFallsBackToWalk(t *testing.T) {
	fs := dcacheFS(t)
	warm(t, fs, root, "/srv/data/sub/f")
	fs.SetDcacheEnabled(false)
	if n := fs.DcacheStats().Entries; n != 0 {
		t.Fatalf("disable should clear the cache, %d entries remain", n)
	}
	before := fs.DcacheStats()
	if _, err := fs.Lookup(root, "/srv/data/sub/f"); err != nil {
		t.Fatal(err)
	}
	after := fs.DcacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatal("disabled cache should not count hits or misses")
	}
	fs.SetDcacheEnabled(true)
	warm(t, fs, root, "/srv/data/sub/f")
}

func TestDcacheConcurrentLookupsDuringMutation(t *testing.T) {
	fs := dcacheFS(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Both outcomes are legal while the mutator runs; the
				// race detector is the real assertion here.
				_, _ = fs.Lookup(root, "/srv/data/sub/f")
				_, _ = fs.Lookup(alice, "/srv/data/sub")
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := fs.Rename(root, "/srv/data", "/srv/tmp-moved"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename(root, "/srv/tmp-moved", "/srv/data"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Chmod(root, "/srv/data", 0o755); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if _, err := fs.Lookup(root, "/srv/data/sub/f"); err != nil {
		t.Fatalf("final lookup: %v", err)
	}
}
