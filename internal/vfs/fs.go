package vfs

import (
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"protego/internal/caps"
	"protego/internal/errno"
	"protego/internal/faultinject"
)

// FS is an in-memory file system tree with Unix semantics. A single lock
// serializes structural operations; file data reads/writes additionally
// synchronize on the inode so concurrent tasks behave sanely.
type FS struct {
	mu      sync.RWMutex
	root    *Inode
	nextIno uint64

	// dcache caches repeat path resolutions; structural mutations
	// invalidate affected prefixes (see dcache.go for the precise rules).
	dcache *dcache

	watches   []*Watch
	watchSeq  int
	mounts    []*Mount
	mountSave map[string][]savedDir

	// faults is the optional fault-injection layer (nil normally). Checks
	// run before fs.mu is taken, so an injected failure can never leak a
	// lock.
	faults atomic.Pointer[faultinject.Injector]

	// cow marks a frozen (or cloned) file system: mutating operations
	// copy sealed inodes up into private ones first (see cow.go). An
	// atomic so the non-COW fast paths read it without fs.mu.
	cow atomic.Bool
	// cowBreaks counts privatized inodes; cowWriteLocked uses it to
	// detect whether a copy-up happened (guarded by fs.mu).
	cowBreaks uint64
}

type savedDir struct {
	children map[string]*Inode
	mode     Mode
	uid, gid int
}

// rootCred is an all-powerful credential used internally for setup helpers.
type rootCred struct{}

func (rootCred) FSUID() int            { return 0 }
func (rootCred) FSGID() int            { return 0 }
func (rootCred) InGroup(int) bool      { return true }
func (rootCred) Capable(caps.Cap) bool { return true }

// RootCred is a credential with full privilege, for machine-image
// construction and tests. It must never be handed to simulated userspace.
var RootCred Cred = rootCred{}

// New creates an empty file system whose root directory is owned by root
// with mode 0755.
func New() *FS {
	fs := &FS{nextIno: 1, mountSave: make(map[string][]savedDir), dcache: newDcache()}
	fs.root = fs.newInode(TypeDir|0o755, 0, 0)
	fs.root.children = make(map[string]*Inode)
	return fs
}

func (fs *FS) newInode(mode Mode, uid, gid int) *Inode {
	ino := &Inode{
		Ino:   fs.nextIno,
		Mode:  mode,
		UID:   uid,
		GID:   gid,
		Nlink: 1,
		Atime: time.Now(),
		Mtime: time.Now(),
		Ctime: time.Now(),
	}
	fs.nextIno++
	if mode.IsDir() {
		ino.children = make(map[string]*Inode)
	}
	return ino
}

// SetFaultInjector installs (or removes, with nil) the fault-injection
// layer for VFS operations. Normally called through
// kernel.SetFaultInjector.
func (fs *FS) SetFaultInjector(in *faultinject.Injector) {
	fs.faults.Store(in)
}

// faultCheck registers a hit at a vfs.* injection site. Nil-injector safe.
func (fs *FS) faultCheck(site string) error {
	return fs.faults.Load().Check(site)
}

// resolve walks path (already cleaned and absolute) checking MayExec on every
// traversed directory. If followLast is true, a trailing symlink is followed.
func (fs *FS) resolve(c Cred, path string, followLast bool, depth int) (*Inode, error) {
	return fs.resolveTrack(c, path, followLast, depth, nil)
}

// resolveTrack is resolve with an optional walk tracker: when tk is
// non-nil it accumulates every directory the walk permission-checked
// (across symlink recursion) so the result can be inserted into the
// dcache with enough state to re-enforce MayExec on later hits.
func (fs *FS) resolveTrack(c Cred, path string, followLast bool, depth int, tk *walkTrack) (*Inode, error) {
	if depth > 16 {
		return nil, errno.ELOOP
	}
	cur := fs.root
	comps := components(path)
	for i, name := range comps {
		if !cur.Mode.IsDir() {
			return nil, errno.ENOTDIR
		}
		if err := checkPerm(c, cur, MayExec); err != nil {
			return nil, err
		}
		if tk != nil {
			tk.chain = append(tk.chain, cur)
		}
		next, ok := cur.children[name]
		if !ok {
			return nil, errno.ENOENT
		}
		last := i == len(comps)-1
		if next.Mode.IsSymlink() && (!last || followLast) {
			if tk != nil {
				tk.viaSymlink = true
			}
			target := CleanPath(string(next.Data), "/"+joinComps(comps[:i]))
			// target is clean and the remaining components come from an
			// already-cleaned path, so the concatenation needs no re-clean.
			if rest := joinComps(comps[i+1:]); rest != "" {
				if target == "/" {
					target = "/" + rest
				} else {
					target = target + "/" + rest
				}
			}
			return fs.resolveTrack(c, target, followLast, depth+1, tk)
		}
		cur = next
	}
	return cur, nil
}

func joinComps(comps []string) string {
	if len(comps) == 0 {
		return ""
	}
	n := len(comps) - 1
	for _, c := range comps {
		n += len(c)
	}
	var b strings.Builder
	b.Grow(n)
	for i, c := range comps {
		if i > 0 {
			b.WriteByte('/')
		}
		b.WriteString(c)
	}
	return b.String()
}

// Lookup resolves path to an inode, following symlinks.
func (fs *FS) Lookup(c Cred, path string) (*Inode, error) {
	if err := fs.faultCheck(faultinject.SiteVFSLookup); err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.lookupLocked(c, cleanedPath(path, "/"), true)
}

// LookupNoFollow resolves path without following a final symlink.
func (fs *FS) LookupNoFollow(c Cred, path string) (*Inode, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return fs.lookupLocked(c, cleanedPath(path, "/"), false)
}

// Exists reports whether path resolves for credential c.
func (fs *FS) Exists(c Cred, path string) bool {
	_, err := fs.Lookup(c, path)
	return err == nil
}

// lookupParent resolves the parent directory of path and returns it together
// with the base name.
func (fs *FS) lookupParent(c Cred, path string) (*Inode, string, error) {
	clean := cleanedPath(path, "/")
	dir, base := SplitPath(clean)
	if base == "." {
		return nil, "", errno.EINVAL
	}
	parent, err := fs.lookupLocked(c, dir, true)
	if err != nil {
		return nil, "", err
	}
	if !parent.Mode.IsDir() {
		return nil, "", errno.ENOTDIR
	}
	return parent, base, nil
}

// Mkdir creates a directory. The parent must grant write+exec.
func (fs *FS) Mkdir(c Cred, path string, mode Mode, uid, gid int) (*Inode, error) {
	if err := fs.faultCheck(faultinject.SiteVFSMkdir); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	fs.cowWriteLocked(path, false)
	parent, base, err := fs.lookupParent(c, path)
	if err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	if err := checkPerm(c, parent, MayWrite|MayExec); err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	if _, exists := parent.children[base]; exists {
		fs.mu.Unlock()
		return nil, errno.EEXIST
	}
	ino := fs.newInode(TypeDir|mode.Perm(), uid, gid)
	parent.children[base] = ino
	parent.Mtime = time.Now()
	fs.dcache.noteCreate()
	fs.mu.Unlock()
	fs.notify(Event{Op: OpCreate, Path: CleanPath(path, "/")})
	return ino, nil
}

// MkdirAll creates path and any missing parents with the given mode.
func (fs *FS) MkdirAll(c Cred, path string, mode Mode, uid, gid int) error {
	clean := CleanPath(path, "/")
	comps := components(clean)
	cur := "/"
	for _, name := range comps {
		if cur == "/" {
			cur = "/" + name
		} else {
			cur = cur + "/" + name
		}
		if fs.Exists(c, cur) {
			continue
		}
		if _, err := fs.Mkdir(c, cur, mode, uid, gid); err != nil && err != errno.EEXIST {
			return err
		}
	}
	return nil
}

// Create makes a new regular file (failing if it exists) and returns its inode.
func (fs *FS) Create(c Cred, path string, mode Mode, uid, gid int) (*Inode, error) {
	if err := fs.faultCheck(faultinject.SiteVFSCreate); err != nil {
		return nil, err
	}
	fs.mu.Lock()
	fs.cowWriteLocked(path, false)
	parent, base, err := fs.lookupParent(c, path)
	if err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	if err := checkPerm(c, parent, MayWrite|MayExec); err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	if _, exists := parent.children[base]; exists {
		fs.mu.Unlock()
		return nil, errno.EEXIST
	}
	if err := fs.checkReadOnlyLocked(path); err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	ino := fs.newInode(TypeRegular|mode.Perm(), uid, gid)
	parent.children[base] = ino
	parent.Mtime = time.Now()
	fs.dcache.noteCreate()
	fs.mu.Unlock()
	fs.notify(Event{Op: OpCreate, Path: CleanPath(path, "/")})
	return ino, nil
}

// Symlink creates a symbolic link at path pointing to target.
func (fs *FS) Symlink(c Cred, target, path string, uid, gid int) error {
	fs.mu.Lock()
	fs.cowWriteLocked(path, false)
	parent, base, err := fs.lookupParent(c, path)
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	if err := checkPerm(c, parent, MayWrite|MayExec); err != nil {
		fs.mu.Unlock()
		return err
	}
	if _, exists := parent.children[base]; exists {
		fs.mu.Unlock()
		return errno.EEXIST
	}
	ino := fs.newInode(TypeSymlink|0o777, uid, gid)
	ino.Data = []byte(target)
	parent.children[base] = ino
	fs.dcache.noteCreate()
	fs.mu.Unlock()
	fs.notify(Event{Op: OpCreate, Path: CleanPath(path, "/")})
	return nil
}

// Mknod creates a device node. Linux requires CAP_MKNOD; so do we.
func (fs *FS) Mknod(c Cred, path string, devType DeviceType, major, minor int, mode Mode, uid, gid int) (*Inode, error) {
	if !c.Capable(caps.CAP_MKNOD) {
		return nil, errno.EPERM
	}
	fs.mu.Lock()
	fs.cowWriteLocked(path, false)
	parent, base, err := fs.lookupParent(c, path)
	if err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	if _, exists := parent.children[base]; exists {
		fs.mu.Unlock()
		return nil, errno.EEXIST
	}
	t := TypeChar
	if devType == BlockDevice {
		t = TypeBlock
	}
	ino := fs.newInode(t|mode.Perm(), uid, gid)
	ino.Major, ino.Minor, ino.DevType = major, minor, devType
	parent.children[base] = ino
	fs.dcache.noteCreate()
	fs.mu.Unlock()
	fs.notify(Event{Op: OpCreate, Path: CleanPath(path, "/")})
	return ino, nil
}

// CreateProc installs a synthetic file with the given read/write handlers.
// Used by the kernel to expose the /proc policy interface of Figure 1.
func (fs *FS) CreateProc(path string, mode Mode, read ProcReadFunc, write ProcWriteFunc) (*Inode, error) {
	fs.mu.Lock()
	fs.cowWriteLocked(path, false)
	parent, base, err := fs.lookupParent(RootCred, path)
	if err != nil {
		fs.mu.Unlock()
		return nil, err
	}
	if _, exists := parent.children[base]; exists {
		fs.mu.Unlock()
		return nil, errno.EEXIST
	}
	ino := fs.newInode(TypeRegular|mode.Perm(), 0, 0)
	ino.ReadFn = read
	ino.WriteFn = write
	parent.children[base] = ino
	fs.dcache.noteCreate()
	fs.mu.Unlock()
	return ino, nil
}

// ReadFile returns the contents of the file at path, enforcing read
// permission along the way. Proc files call their read handler.
func (fs *FS) ReadFile(c Cred, path string) ([]byte, error) {
	if err := fs.faultCheck(faultinject.SiteVFSReadFile); err != nil {
		return nil, err
	}
	fs.mu.RLock()
	ino, err := fs.lookupLocked(c, cleanedPath(path, "/"), true)
	fs.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	if ino.Mode.IsDir() {
		return nil, errno.EISDIR
	}
	if err := checkPerm(c, ino, MayRead); err != nil {
		return nil, err
	}
	if ino.ReadFn != nil {
		return ino.ReadFn(c)
	}
	ino.mu.Lock()
	data := make([]byte, len(ino.Data))
	copy(data, ino.Data)
	ino.Atime = time.Now()
	ino.mu.Unlock()
	return data, nil
}

// WriteFile replaces the contents of the file at path, creating it with the
// given mode if absent. Write permission (or CAP_DAC_OVERRIDE) is required.
func (fs *FS) WriteFile(c Cred, path string, data []byte, mode Mode, uid, gid int) error {
	if err := fs.faultCheck(faultinject.SiteVFSWriteFile); err != nil {
		return err
	}
	clean := cleanedPath(path, "/")
	fs.mu.RLock()
	ino, err := fs.lookupLocked(c, clean, true)
	fs.mu.RUnlock()
	if err == errno.ENOENT {
		ino, err = fs.Create(c, clean, mode, uid, gid)
		if err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	return fs.writeInode(c, ino, clean, data, false)
}

// AppendFile appends data to the file at path, which must exist.
func (fs *FS) AppendFile(c Cred, path string, data []byte) error {
	clean := cleanedPath(path, "/")
	fs.mu.RLock()
	ino, err := fs.lookupLocked(c, clean, true)
	fs.mu.RUnlock()
	if err != nil {
		return err
	}
	return fs.writeInode(c, ino, clean, data, true)
}

func (fs *FS) writeInode(c Cred, ino *Inode, clean string, data []byte, app bool) error {
	if ino.Mode.IsDir() {
		return errno.EISDIR
	}
	if err := checkPerm(c, ino, MayWrite); err != nil {
		return err
	}
	fs.mu.RLock()
	roErr := fs.checkReadOnlyLocked(clean)
	fs.mu.RUnlock()
	if roErr != nil {
		return roErr
	}
	if ino.WriteFn != nil {
		return ino.WriteFn(c, data)
	}
	if ino.sealed.Load() {
		// Snapshot-shared inode: privatize the path before touching Data.
		// The copy-up can fail (the entry may vanish under a concurrent
		// remove); a write must then fail rather than land on the shared
		// inode, which every sibling snapshot can read.
		fs.mu.Lock()
		fs.cowWriteLocked(clean, true)
		nino, lerr := fs.lookupLocked(c, clean, true)
		if lerr == nil && nino.sealed.Load() {
			lerr = errno.EROFS
		}
		fs.mu.Unlock()
		if lerr != nil {
			return lerr
		}
		ino = nino
	}
	ino.mu.Lock()
	if app {
		ino.Data = append(ino.Data, data...)
	} else {
		ino.Data = append(ino.Data[:0:0], data...)
	}
	// Writing by a non-owner clears setuid/setgid, as Linux does; this is
	// one of the classic hardening rules from the secure-Unix literature
	// cited in §6.
	if c.FSUID() != 0 {
		ino.Mode &^= ModeSetuid | ModeSetgid
	}
	ino.Mtime = time.Now()
	ino.mu.Unlock()
	fs.notify(Event{Op: OpWrite, Path: clean})
	return nil
}

// Remove unlinks the file or empty directory at path. The classic sticky-bit
// rule applies in sticky directories such as /tmp.
func (fs *FS) Remove(c Cred, path string) error {
	if err := fs.faultCheck(faultinject.SiteVFSRemove); err != nil {
		return err
	}
	clean := CleanPath(path, "/")
	fs.mu.Lock()
	fs.cowWriteLocked(clean, false)
	parent, base, err := fs.lookupParent(c, clean)
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	target, ok := parent.children[base]
	if !ok {
		fs.mu.Unlock()
		return errno.ENOENT
	}
	if err := checkPerm(c, parent, MayWrite|MayExec); err != nil {
		fs.mu.Unlock()
		return err
	}
	if parent.Mode&ModeSticky != 0 && c.FSUID() != 0 &&
		c.FSUID() != target.UID && c.FSUID() != parent.UID && !c.Capable(caps.CAP_FOWNER) {
		fs.mu.Unlock()
		return errno.EPERM
	}
	if target.Mode.IsDir() && len(target.children) > 0 {
		fs.mu.Unlock()
		return errno.ENOTEMPTY
	}
	if fs.isMountPointLocked(clean) {
		fs.mu.Unlock()
		return errno.EBUSY
	}
	delete(parent.children, base)
	parent.Mtime = time.Now()
	fs.dcache.invalidate(clean, true)
	fs.mu.Unlock()
	fs.notify(Event{Op: OpRemove, Path: clean})
	return nil
}

// Rename moves oldPath to newPath (replacing a non-directory target).
func (fs *FS) Rename(c Cred, oldPath, newPath string) error {
	if err := fs.faultCheck(faultinject.SiteVFSRename); err != nil {
		return err
	}
	oldClean := CleanPath(oldPath, "/")
	newClean := CleanPath(newPath, "/")
	fs.mu.Lock()
	fs.cowWriteLocked(oldClean, false)
	fs.cowWriteLocked(newClean, false)
	oldParent, oldBase, err := fs.lookupParent(c, oldClean)
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	target, ok := oldParent.children[oldBase]
	if !ok {
		fs.mu.Unlock()
		return errno.ENOENT
	}
	newParent, newBase, err := fs.lookupParent(c, newClean)
	if err != nil {
		fs.mu.Unlock()
		return err
	}
	if err := checkPerm(c, oldParent, MayWrite|MayExec); err != nil {
		fs.mu.Unlock()
		return err
	}
	if err := checkPerm(c, newParent, MayWrite|MayExec); err != nil {
		fs.mu.Unlock()
		return err
	}
	if existing, ok := newParent.children[newBase]; ok && existing.Mode.IsDir() {
		fs.mu.Unlock()
		return errno.EISDIR
	}
	delete(oldParent.children, oldBase)
	newParent.children[newBase] = target
	oldParent.Mtime = time.Now()
	newParent.Mtime = time.Now()
	fs.dcache.invalidate(oldClean, true)
	fs.dcache.invalidate(newClean, true)
	fs.mu.Unlock()
	fs.notify(Event{Op: OpRemove, Path: oldClean})
	fs.notify(Event{Op: OpWrite, Path: newClean})
	return nil
}

// Chmod changes the permission bits. Only the owner or CAP_FOWNER may do so.
// Setting the setgid bit on a file not owned by one of the caller's groups
// silently clears it, as on Linux.
func (fs *FS) Chmod(c Cred, path string, mode Mode) error {
	clean := CleanPath(path, "/")
	ino, err := fs.Lookup(c, clean)
	if err != nil {
		return err
	}
	if c.FSUID() != ino.UID && !c.Capable(caps.CAP_FOWNER) {
		return errno.EPERM
	}
	if mode&ModeSetgid != 0 && c.FSGID() != ino.GID && !c.InGroup(ino.GID) && !c.Capable(caps.CAP_FSETID) {
		mode &^= ModeSetgid
	}
	fs.mu.Lock()
	if ino.sealed.Load() {
		fs.cowWriteLocked(clean, true)
		nino, lerr := fs.lookupLocked(c, clean, true)
		if lerr == nil && nino.sealed.Load() {
			lerr = errno.EROFS
		}
		if lerr != nil {
			fs.mu.Unlock()
			return lerr
		}
		ino = nino
	}
	ino.Mode = ino.Mode.Type() | mode.Perm()
	ino.Ctime = time.Now()
	// Cached chains hold this inode by pointer and re-check MayExec on
	// every hit, so correctness does not depend on this invalidation; it
	// keeps the mutation rule uniform (and the generation honest).
	fs.dcache.invalidate(clean, true)
	fs.mu.Unlock()
	fs.notify(Event{Op: OpChmod, Path: clean})
	return nil
}

// Chown changes ownership; requires CAP_CHOWN (only root may give files
// away, the Linux default). Chown clears setuid/setgid bits.
func (fs *FS) Chown(c Cred, path string, uid, gid int) error {
	clean := CleanPath(path, "/")
	ino, err := fs.Lookup(c, clean)
	if err != nil {
		return err
	}
	if uid != ino.UID && !c.Capable(caps.CAP_CHOWN) {
		return errno.EPERM
	}
	if gid != ino.GID && c.FSUID() != ino.UID && !c.Capable(caps.CAP_CHOWN) {
		return errno.EPERM
	}
	fs.mu.Lock()
	if ino.sealed.Load() {
		fs.cowWriteLocked(clean, true)
		nino, lerr := fs.lookupLocked(c, clean, true)
		if lerr == nil && nino.sealed.Load() {
			lerr = errno.EROFS
		}
		if lerr != nil {
			fs.mu.Unlock()
			return lerr
		}
		ino = nino
	}
	ino.UID, ino.GID = uid, gid
	if ino.Mode.IsRegular() {
		ino.Mode &^= ModeSetuid | ModeSetgid
	}
	ino.Ctime = time.Now()
	fs.dcache.invalidate(clean, true)
	fs.mu.Unlock()
	fs.notify(Event{Op: OpChmod, Path: clean})
	return nil
}

// ReadDir lists the entries of the directory at path.
func (fs *FS) ReadDir(c Cred, path string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ino, err := fs.lookupLocked(c, cleanedPath(path, "/"), true)
	if err != nil {
		return nil, err
	}
	if !ino.Mode.IsDir() {
		return nil, errno.ENOTDIR
	}
	if err := checkPerm(c, ino, MayRead); err != nil {
		return nil, err
	}
	return ino.childNames(), nil
}

// Stat returns the inode at path without permission side effects beyond the
// directory walk.
func (fs *FS) Stat(c Cred, path string) (*Inode, error) {
	return fs.Lookup(c, path)
}
