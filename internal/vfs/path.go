package vfs

import "strings"

// CleanPath normalizes an absolute or relative slash-separated path:
// collapsing repeated slashes, resolving "." and "..". Relative paths are
// resolved against cwd (which must be absolute). The result is always
// absolute and never ends in a slash (except the root itself).
func CleanPath(path, cwd string) string {
	if !strings.HasPrefix(path, "/") {
		if cwd == "" {
			cwd = "/"
		}
		path = cwd + "/" + path
	}
	parts := strings.Split(path, "/")
	stack := make([]string, 0, len(parts))
	for _, p := range parts {
		switch p {
		case "", ".":
		case "..":
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		default:
			stack = append(stack, p)
		}
	}
	return "/" + strings.Join(stack, "/")
}

// cleanedPath returns path unchanged when it is already a cleaned absolute
// path, falling back to CleanPath otherwise. The already-clean check is a
// single allocation-free scan, which keeps repeat lookups of clean paths
// (the overwhelmingly common case on the hot resolution path) from paying
// CleanPath's split/join allocations on every call.
func cleanedPath(path, cwd string) string {
	if isCleanPath(path) {
		return path
	}
	return CleanPath(path, cwd)
}

// isCleanPath reports whether path is absolute with no empty, "." or ".."
// components and no trailing slash (except the root itself).
func isCleanPath(path string) bool {
	if path == "" || path[0] != '/' {
		return false
	}
	if path == "/" {
		return true
	}
	if path[len(path)-1] == '/' {
		return false
	}
	start := 1 // first byte of the current component
	for i := 1; i <= len(path); i++ {
		if i == len(path) || path[i] == '/' {
			seg := path[start:i]
			if seg == "" || seg == "." || seg == ".." {
				return false
			}
			start = i + 1
		}
	}
	return true
}

// SplitPath returns the parent directory and base name of an absolute,
// cleaned path. SplitPath("/") returns ("/", ".").
func SplitPath(path string) (dir, base string) {
	if path == "/" {
		return "/", "."
	}
	i := strings.LastIndexByte(path, '/')
	dir = path[:i]
	if dir == "" {
		dir = "/"
	}
	return dir, path[i+1:]
}

// BaseName returns the final component of path.
func BaseName(path string) string {
	_, base := SplitPath(CleanPath(path, "/"))
	return base
}

// IsUnder reports whether path is equal to or lexically beneath dir (both
// must be cleaned, absolute paths).
func IsUnder(path, dir string) bool {
	if dir == "/" {
		return true
	}
	return path == dir || strings.HasPrefix(path, dir+"/")
}

// components splits a cleaned absolute path into its components.
func components(path string) []string {
	if path == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(path, "/"), "/")
}
