package vfs

import "strings"

// CleanPath normalizes an absolute or relative slash-separated path:
// collapsing repeated slashes, resolving "." and "..". Relative paths are
// resolved against cwd (which must be absolute). The result is always
// absolute and never ends in a slash (except the root itself).
func CleanPath(path, cwd string) string {
	if !strings.HasPrefix(path, "/") {
		if cwd == "" {
			cwd = "/"
		}
		path = cwd + "/" + path
	}
	parts := strings.Split(path, "/")
	stack := make([]string, 0, len(parts))
	for _, p := range parts {
		switch p {
		case "", ".":
		case "..":
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		default:
			stack = append(stack, p)
		}
	}
	return "/" + strings.Join(stack, "/")
}

// SplitPath returns the parent directory and base name of an absolute,
// cleaned path. SplitPath("/") returns ("/", ".").
func SplitPath(path string) (dir, base string) {
	if path == "/" {
		return "/", "."
	}
	i := strings.LastIndexByte(path, '/')
	dir = path[:i]
	if dir == "" {
		dir = "/"
	}
	return dir, path[i+1:]
}

// BaseName returns the final component of path.
func BaseName(path string) string {
	_, base := SplitPath(CleanPath(path, "/"))
	return base
}

// IsUnder reports whether path is equal to or lexically beneath dir (both
// must be cleaned, absolute paths).
func IsUnder(path, dir string) bool {
	if dir == "/" {
		return true
	}
	return path == dir || strings.HasPrefix(path, dir+"/")
}

// components splits a cleaned absolute path into its components.
func components(path string) []string {
	if path == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(path, "/"), "/")
}
