package vfs

import (
	"sort"
	"strings"
	"time"

	"protego/internal/errno"
)

// Mount records one grafted file system, mirroring an /etc/mtab entry.
type Mount struct {
	Device    string   // e.g. /dev/cdrom
	Point     string   // mount point path
	FSType    string   // e.g. iso9660, ext4, vfat
	Options   []string // normalized option list
	ReadOnly  bool
	MountedBy int // uid of the task that performed the mount
	MountTime time.Time
	UserMount bool // true if performed by a non-root uid
}

// HasOption reports whether the mount carries the named option.
func (m *Mount) HasOption(opt string) bool {
	for _, o := range m.Options {
		if o == opt {
			return true
		}
	}
	return false
}

// AttachMount grafts a fresh file system subtree at the directory `point`,
// saving the directory's previous contents so Detach can restore them. This
// implements the mount(2) semantics that the paper's Figure 1 revolves
// around. Policy is NOT checked here — that is the kernel's (and its LSMs')
// job; the VFS only implements mechanism.
func (fs *FS) AttachMount(c Cred, m *Mount) error {
	clean := CleanPath(m.Point, "/")
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cowWriteLocked(clean, true)
	ino, err := fs.lookupLocked(c, clean, true)
	if err != nil {
		return err
	}
	if !ino.Mode.IsDir() {
		return errno.ENOTDIR
	}
	for _, existing := range fs.mounts {
		if existing.Device == m.Device && m.Device != "none" && m.Device != "tmpfs" {
			return errno.EBUSY // device already mounted
		}
		if existing.Point == clean {
			return errno.EBUSY // something already mounted here (no stacking)
		}
	}
	fs.mountSave[clean] = append(fs.mountSave[clean], savedDir{
		children: ino.children,
		mode:     ino.Mode,
		uid:      ino.UID,
		gid:      ino.GID,
	})
	ino.children = make(map[string]*Inode)
	mcopy := *m
	mcopy.Point = clean
	mcopy.MountTime = time.Now()
	sort.Strings(mcopy.Options)
	fs.mounts = append(fs.mounts, &mcopy)
	// The graft swapped the mount point's children but not its inode:
	// cached resolutions *of* the mount point stay valid, everything
	// beneath it does not.
	fs.dcache.invalidate(clean, false)
	return nil
}

// DetachMount removes the mount at point, restoring the directory's
// pre-mount contents. Returns the removed mount record.
func (fs *FS) DetachMount(c Cred, point string) (*Mount, error) {
	clean := CleanPath(point, "/")
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cowWriteLocked(clean, true)
	idx := -1
	for i, m := range fs.mounts {
		if m.Point == clean {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, errno.EINVAL // not mounted
	}
	ino, err := fs.lookupLocked(c, clean, true)
	if err != nil {
		return nil, err
	}
	saves := fs.mountSave[clean]
	if len(saves) == 0 {
		return nil, errno.EINVAL
	}
	save := saves[len(saves)-1]
	fs.mountSave[clean] = saves[:len(saves)-1]
	ino.children = save.children
	m := fs.mounts[idx]
	fs.mounts = append(fs.mounts[:idx], fs.mounts[idx+1:]...)
	fs.dcache.invalidate(clean, false)
	return m, nil
}

// Mounts returns a snapshot of the mount table (most recent last).
func (fs *FS) Mounts() []*Mount {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]*Mount, len(fs.mounts))
	copy(out, fs.mounts)
	return out
}

// MountAt returns the mount whose point is exactly path, if any.
func (fs *FS) MountAt(path string) *Mount {
	clean := CleanPath(path, "/")
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	for _, m := range fs.mounts {
		if m.Point == clean {
			return m
		}
	}
	return nil
}

// isMountPointLocked reports whether path is an active mount point. Caller
// holds fs.mu.
func (fs *FS) isMountPointLocked(path string) bool {
	for _, m := range fs.mounts {
		if m.Point == path {
			return true
		}
	}
	return false
}

// checkReadOnlyLocked returns EROFS when path lies under a read-only mount.
// Caller holds fs.mu (read or write).
func (fs *FS) checkReadOnlyLocked(path string) error {
	clean := CleanPath(path, "/")
	best := ""
	ro := false
	for _, m := range fs.mounts {
		if IsUnder(clean, m.Point) && len(m.Point) > len(best) {
			best = m.Point
			ro = m.ReadOnly
		}
	}
	if ro {
		return errno.EROFS
	}
	return nil
}

// FormatMtab renders the mount table in /etc/mtab style, one mount per line.
func (fs *FS) FormatMtab() string {
	var b strings.Builder
	for _, m := range fs.Mounts() {
		opts := strings.Join(m.Options, ",")
		if opts == "" {
			opts = "defaults"
		}
		b.WriteString(m.Device)
		b.WriteByte(' ')
		b.WriteString(m.Point)
		b.WriteByte(' ')
		b.WriteString(m.FSType)
		b.WriteByte(' ')
		b.WriteString(opts)
		b.WriteString(" 0 0\n")
	}
	return b.String()
}
