package vfs

import (
	"testing"
)

// frozenPair builds a tiny tree with one file, freezes it, and returns
// the parent FS, a clone, and the clone's (sealed, shared) view of the
// file's inode.
func frozenPair(t *testing.T, path string) (*FS, *FS, *Inode) {
	t.Helper()
	fs := New()
	if err := fs.WriteFile(RootCred, path, []byte("golden"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	fs.Freeze()
	clone := fs.Clone()
	ino, err := clone.Lookup(RootCred, path)
	if err != nil {
		t.Fatal(err)
	}
	if !ino.Sealed() {
		t.Fatal("freshly cloned inode not sealed")
	}
	return fs, clone, ino
}

// TestBreakSealInodeRebinds: while the path still names the same file,
// breaking the seal copies up in the tree, so path readers observe the
// descriptor's writes and the returned inode is the tree's private copy.
func TestBreakSealInodeRebinds(t *testing.T) {
	parent, clone, ino := frozenPair(t, "/f")
	priv := clone.BreakSealInode("/f", ino)
	if priv.Sealed() {
		t.Fatal("BreakSealInode returned a sealed inode")
	}
	if priv == ino {
		t.Fatal("BreakSealInode returned the shared inode itself")
	}
	tree, err := clone.Lookup(RootCred, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if tree != priv {
		t.Fatal("private copy not linked at the original path")
	}
	priv.Data = append(priv.Data, '!')
	if data, _ := parent.ReadFile(RootCred, "/f"); string(data) != "golden" {
		t.Fatalf("write leaked into parent: %q", data)
	}
}

// TestBreakSealInodeUnlinked: the open-unlink-write tempfile idiom. With
// the entry removed, the descriptor must get an anonymous private copy —
// never the still-sealed shared inode, whose mutation would leak into
// the parent and every sibling clone.
func TestBreakSealInodeUnlinked(t *testing.T) {
	parent, clone, ino := frozenPair(t, "/f")
	if err := clone.Remove(RootCred, "/f"); err != nil {
		t.Fatal(err)
	}
	priv := clone.BreakSealInode("/f", ino)
	if priv.Sealed() {
		t.Fatal("BreakSealInode returned a sealed inode for an unlinked file")
	}
	if priv == ino {
		t.Fatal("BreakSealInode returned the shared inode for an unlinked file")
	}
	priv.Data = append(priv.Data, []byte(" secret")...)
	if data, _ := parent.ReadFile(RootCred, "/f"); string(data) != "golden" {
		t.Fatalf("unlinked-fd write leaked into parent: %q", data)
	}
	if ino.Sealed() && string(ino.Data) != "golden" {
		t.Fatalf("sealed shared inode mutated: %q", ino.Data)
	}
}

// TestBreakSealInodeReplaced: when a different file now occupies the
// descriptor's path (remove + recreate, or rename over), the descriptor
// must not rebind to the stranger; its writes stay fd-local.
func TestBreakSealInodeReplaced(t *testing.T) {
	_, clone, ino := frozenPair(t, "/f")
	if err := clone.Remove(RootCred, "/f"); err != nil {
		t.Fatal(err)
	}
	if err := clone.WriteFile(RootCred, "/f", []byte("stranger"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	priv := clone.BreakSealInode("/f", ino)
	if priv.Sealed() {
		t.Fatal("BreakSealInode returned a sealed inode")
	}
	if tree, _ := clone.Lookup(RootCred, "/f"); tree == priv {
		t.Fatal("descriptor rebound to the unrelated file now at its path")
	}
	priv.Data = append(priv.Data[:0:0], []byte("fd-local")...)
	if data, _ := clone.ReadFile(RootCred, "/f"); string(data) != "stranger" {
		t.Fatalf("fd write landed on the file now occupying the path: %q", data)
	}
}
