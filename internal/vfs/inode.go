package vfs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"protego/internal/caps"
	"protego/internal/errno"
)

// Cred is the view of a task's credentials the VFS needs for discretionary
// access control. It is satisfied by kernel.Credentials; vfs deliberately
// does not import the kernel package.
type Cred interface {
	// FSUID returns the user id used for file system access checks.
	FSUID() int
	// FSGID returns the primary group id used for access checks.
	FSGID() int
	// InGroup reports whether gid is among the supplementary groups.
	InGroup(gid int) bool
	// Capable reports whether the credential carries the given capability
	// in its effective set.
	Capable(c caps.Cap) bool
}

// DeviceType distinguishes character from block devices.
type DeviceType int

// Device types.
const (
	CharDevice DeviceType = iota
	BlockDevice
)

// ProcReadFunc produces the dynamic contents of a proc-style file. The
// credential of the reading task is supplied so the handler can refuse
// sensitive reads.
type ProcReadFunc func(c Cred) ([]byte, error)

// ProcWriteFunc consumes data written to a proc-style file — this is how the
// Protego monitoring daemon and administrators configure the in-kernel
// policy, exactly as in the paper's Figure 1.
type ProcWriteFunc func(c Cred, data []byte) error

// Inode is a file system object. All field access is serialized through the
// owning FS's lock except where noted.
type Inode struct {
	Ino   uint64
	Mode  Mode
	UID   int
	GID   int
	Nlink int

	// Data holds the contents of regular files and the target of symlinks.
	Data []byte

	// children holds directory entries. Only valid for directories.
	children map[string]*Inode

	// Device identity for device nodes.
	Major, Minor int
	DevType      DeviceType

	// Proc handlers make this inode a synthetic file; reads and writes
	// are redirected to the handlers and Data is unused.
	ReadFn  ProcReadFunc
	WriteFn ProcWriteFunc

	// Times, maintained on modification.
	Atime, Mtime, Ctime time.Time

	// mu guards Data for concurrent file IO on the same inode.
	mu sync.Mutex

	// sealed marks an inode frozen into a copy-on-write snapshot: it may
	// be shared between file systems and must be privatized (copied up)
	// before any mutation. One-way; private copies start unsealed.
	sealed atomic.Bool
}

// Sealed reports whether the inode belongs to a frozen snapshot and must
// be copied up before mutation (see FS.BreakSealInode).
func (ino *Inode) Sealed() bool { return ino.sealed.Load() }

// IsProc reports whether the inode is a synthetic (proc-style) file.
func (ino *Inode) IsProc() bool { return ino.ReadFn != nil || ino.WriteFn != nil }

// Size returns the length of the file contents.
func (ino *Inode) Size() int { return len(ino.Data) }

// childNames returns the sorted names of directory entries.
func (ino *Inode) childNames() []string {
	names := make([]string, 0, len(ino.children))
	for name := range ino.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// accessWant flags for permission checks.
const (
	MayRead  = 4
	MayWrite = 2
	MayExec  = 1
)

// checkPerm performs the classic Unix DAC check of `want` (a bitwise OR of
// MayRead/MayWrite/MayExec) against the inode for credential c, honoring
// CAP_DAC_OVERRIDE and CAP_DAC_READ_SEARCH the way Linux does.
func checkPerm(c Cred, ino *Inode, want int) error {
	mode := ino.Mode
	var granted int
	switch {
	case c.FSUID() == ino.UID:
		granted = int(mode>>6) & 7
	case c.FSGID() == ino.GID || c.InGroup(ino.GID):
		granted = int(mode>>3) & 7
	default:
		granted = int(mode) & 7
	}
	if granted&want == want {
		return nil
	}
	// CAP_DAC_OVERRIDE bypasses rw checks always, and x checks if any
	// execute bit is set or the target is a directory.
	if c.Capable(caps.CAP_DAC_OVERRIDE) {
		if want&MayExec == 0 || mode.IsDir() || mode&0o111 != 0 {
			return nil
		}
	}
	// CAP_DAC_READ_SEARCH bypasses read checks and directory search.
	if c.Capable(caps.CAP_DAC_READ_SEARCH) {
		if want == MayRead || (mode.IsDir() && want&MayWrite == 0) {
			return nil
		}
	}
	return errno.EACCES
}

// CheckAccess exposes the DAC check for LSMs and tests.
func CheckAccess(c Cred, ino *Inode, want int) error { return checkPerm(c, ino, want) }
