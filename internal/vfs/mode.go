// Package vfs implements the simulated virtual file system underlying the
// Protego reproduction: inodes with full Unix permission bits (including the
// setuid bit at the center of the paper), directories, device nodes, a mount
// table, path resolution with DAC checks, and inotify-style watches used by
// the trusted monitoring daemon.
package vfs

import "strings"

// Mode encodes an inode's type and permission bits, mirroring the layout of
// a Unix st_mode: the low 12 bits are permissions (rwxrwxrwx plus
// setuid/setgid/sticky) and the high bits select the file type.
type Mode uint32

// Permission and special bits (octal, as in stat(2)).
const (
	ModeSetuid Mode = 0o4000 // the setuid permission *bit* (04000) of §3.1
	ModeSetgid Mode = 0o2000
	ModeSticky Mode = 0o1000

	PermMask Mode = 0o777 // rwxrwxrwx
	ModeMask Mode = 0o7777

	// Per-class permission bits.
	PermUserRead   Mode = 0o400
	PermUserWrite  Mode = 0o200
	PermUserExec   Mode = 0o100
	PermGroupRead  Mode = 0o040
	PermGroupWrite Mode = 0o020
	PermGroupExec  Mode = 0o010
	PermOtherRead  Mode = 0o004
	PermOtherWrite Mode = 0o002
	PermOtherExec  Mode = 0o001
)

// File type bits.
const (
	TypeRegular Mode = 0o100000
	TypeDir     Mode = 0o040000
	TypeSymlink Mode = 0o120000
	TypeChar    Mode = 0o020000
	TypeBlock   Mode = 0o060000
	TypeFIFO    Mode = 0o010000
	TypeSocket  Mode = 0o140000

	typeMask Mode = 0o170000
)

// Type returns just the file-type bits of m.
func (m Mode) Type() Mode { return m & typeMask }

// Perm returns just the permission bits (including setuid/setgid/sticky).
func (m Mode) Perm() Mode { return m & ModeMask }

// IsDir reports whether m describes a directory.
func (m Mode) IsDir() bool { return m.Type() == TypeDir }

// IsRegular reports whether m describes a regular file.
func (m Mode) IsRegular() bool { return m.Type() == TypeRegular }

// IsSymlink reports whether m describes a symbolic link.
func (m Mode) IsSymlink() bool { return m.Type() == TypeSymlink }

// IsDevice reports whether m describes a character or block device.
func (m Mode) IsDevice() bool { t := m.Type(); return t == TypeChar || t == TypeBlock }

// IsSetuid reports whether the setuid bit is set — the property whose
// eradication is the subject of the paper.
func (m Mode) IsSetuid() bool { return m&ModeSetuid != 0 }

// IsSetgid reports whether the setgid bit is set.
func (m Mode) IsSetgid() bool { return m&ModeSetgid != 0 }

// String renders the mode in ls -l style, e.g. "-rwsr-xr-x" for a
// setuid-to-root binary.
func (m Mode) String() string {
	var b strings.Builder
	switch m.Type() {
	case TypeDir:
		b.WriteByte('d')
	case TypeSymlink:
		b.WriteByte('l')
	case TypeChar:
		b.WriteByte('c')
	case TypeBlock:
		b.WriteByte('b')
	case TypeFIFO:
		b.WriteByte('p')
	case TypeSocket:
		b.WriteByte('s')
	default:
		b.WriteByte('-')
	}
	rwx := func(r, w, x bool, special bool, specialChar byte) {
		if r {
			b.WriteByte('r')
		} else {
			b.WriteByte('-')
		}
		if w {
			b.WriteByte('w')
		} else {
			b.WriteByte('-')
		}
		switch {
		case special && x:
			b.WriteByte(specialChar)
		case special && !x:
			b.WriteByte(specialChar - 'a' + 'A') // 's' -> 'S', 't' -> 'T'
		case x:
			b.WriteByte('x')
		default:
			b.WriteByte('-')
		}
	}
	rwx(m&PermUserRead != 0, m&PermUserWrite != 0, m&PermUserExec != 0, m&ModeSetuid != 0, 's')
	rwx(m&PermGroupRead != 0, m&PermGroupWrite != 0, m&PermGroupExec != 0, m&ModeSetgid != 0, 's')
	rwx(m&PermOtherRead != 0, m&PermOtherWrite != 0, m&PermOtherExec != 0, m&ModeSticky != 0, 't')
	return b.String()
}
