package vfs

import (
	"sync"
	"sync/atomic"
)

// maxDcacheEntries bounds the dentry cache. When the cap is reached the
// whole cache is cleared rather than evicted piecemeal: refilling is one
// walk per path, and a wholesale clear keeps the put path branch-free.
const maxDcacheEntries = 4096

// dkey identifies one cached resolution. Lookups that follow a trailing
// symlink and lookups that do not can resolve to different inodes, so the
// follow flag is part of the key.
type dkey struct {
	path   string
	follow bool
}

// dentry is one cached resolution: the walk's outcome plus everything
// needed to re-enforce permissions on a hit. Authorization is deliberately
// NOT cached — chain holds the directories the original walk
// permission-checked, and every hit re-runs MayExec over them with the
// *current* credential against the *current* inode modes, so a cache hit
// and a cold walk always agree, for every credential.
type dentry struct {
	chain      []*Inode // directories MayExec-checked during the walk, in order
	ino        *Inode   // the resolution result
	viaSymlink bool     // the walk traversed at least one symlink
}

// dcache is the FS's path→dentry cache, the simulated kernel's analogue of
// the Linux VFS dentry cache. Only successful resolutions are cached
// (no negative entries), which is what makes create-type mutations
// invalidation-free: adding a node can never change an existing
// successful walk. Structural mutations that can (unlink, rename,
// mount, umount) invalidate the affected path prefix; entries whose walk
// crossed a symlink are invalidated on every structural mutation, because
// a symlink can make any path depend on any other.
//
// The cache has its own lock, always acquired under FS.mu (read or
// write), never the other way around.
type dcache struct {
	mu      sync.RWMutex
	entries map[dkey]dentry

	disabled atomic.Bool // ablation switch; see FS.SetDcacheEnabled

	// gen counts structural mutations processed (including create-type
	// ones that need no eager invalidation); it is observability, not a
	// validity token — invalidation is eager.
	gen         atomic.Uint64
	hits        atomic.Uint64
	misses      atomic.Uint64
	invalidates atomic.Uint64
}

func newDcache() *dcache {
	return &dcache{entries: make(map[dkey]dentry)}
}

// get returns the cached resolution for (path, follow), if any.
func (d *dcache) get(path string, follow bool) (dentry, bool) {
	d.mu.RLock()
	ent, ok := d.entries[dkey{path, follow}]
	d.mu.RUnlock()
	return ent, ok
}

// put stores a successful resolution. Caller holds FS.mu (read suffices:
// structural mutations take FS.mu exclusively, so the entry cannot go
// stale between the walk and the insert).
func (d *dcache) put(path string, follow bool, ent dentry) {
	d.mu.Lock()
	if len(d.entries) >= maxDcacheEntries {
		d.entries = make(map[dkey]dentry)
	}
	d.entries[dkey{path, follow}] = ent
	d.mu.Unlock()
}

// invalidate removes every entry at or beneath path (beneath only, when
// inclusive is false — the mount case: grafting swaps the mount point's
// children but not the mount-point inode itself) plus every
// symlink-traversing entry. Caller holds FS.mu exclusively.
func (d *dcache) invalidate(path string, inclusive bool) {
	d.gen.Add(1)
	d.mu.Lock()
	var n uint64
	for k, ent := range d.entries {
		if ent.viaSymlink ||
			(inclusive && k.path == path) ||
			strictlyUnder(k.path, path) {
			delete(d.entries, k)
			n++
		}
	}
	d.mu.Unlock()
	d.invalidates.Add(n)
}

// strictlyUnder reports whether p lies strictly beneath dir (both cleaned
// absolute paths). Allocation-free — the sweep runs on every structural
// mutation, so it must not pay IsUnder's string concatenation per entry.
func strictlyUnder(p, dir string) bool {
	if dir == "/" {
		return p != "/"
	}
	return len(p) > len(dir) && p[:len(dir)] == dir && p[len(dir)] == '/'
}

// noteCreate records a create-type structural mutation. Creates cannot
// change any existing successful resolution (only positive results are
// cached), so the generation advances but no entry is dropped.
func (d *dcache) noteCreate() {
	d.gen.Add(1)
}

// clear drops everything (ablation toggle, cap overflow).
func (d *dcache) clear() {
	d.mu.Lock()
	d.entries = make(map[dkey]dentry)
	d.mu.Unlock()
}

func (d *dcache) size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// DcacheStats is a snapshot of the dentry-cache counters.
type DcacheStats struct {
	Hits        uint64
	Misses      uint64
	Invalidates uint64
	Entries     int
	Generation  uint64
}

// HitRatio returns hits/(hits+misses), or 0 when the cache is untouched.
func (s DcacheStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// DcacheStats returns the dentry cache's counters.
func (fs *FS) DcacheStats() DcacheStats {
	d := fs.dcache
	return DcacheStats{
		Hits:        d.hits.Load(),
		Misses:      d.misses.Load(),
		Invalidates: d.invalidates.Load(),
		Entries:     d.size(),
		Generation:  d.gen.Load(),
	}
}

// SetDcacheEnabled toggles the dentry cache (ablation benchmarks compare
// cached vs walk-every-time resolution). Disabling clears the cache.
func (fs *FS) SetDcacheEnabled(on bool) {
	fs.dcache.disabled.Store(!on)
	if !on {
		fs.dcache.clear()
	}
}

// walkTrack accumulates, across symlink recursion, the directories a
// resolve walk permission-checked, for insertion into the dcache.
type walkTrack struct {
	chain      []*Inode
	viaSymlink bool
}

// lookupLocked resolves clean (an already-cleaned absolute path) through
// the dentry cache. Caller holds FS.mu (read or write). On a hit the
// cached walk's directories are re-checked for MayExec with the caller's
// credential; on a miss the full walk runs and, when successful, is
// inserted. Failed walks are not cached.
func (fs *FS) lookupLocked(c Cred, clean string, follow bool) (*Inode, error) {
	d := fs.dcache
	if d.disabled.Load() {
		return fs.resolve(c, clean, follow, 0)
	}
	if ent, ok := d.get(clean, follow); ok {
		d.hits.Add(1)
		for _, dir := range ent.chain {
			if err := checkPerm(c, dir, MayExec); err != nil {
				return nil, err
			}
		}
		return ent.ino, nil
	}
	d.misses.Add(1)
	tk := &walkTrack{}
	ino, err := fs.resolveTrack(c, clean, follow, 0, tk)
	if err != nil {
		return nil, err
	}
	d.put(clean, follow, dentry{chain: tk.chain, ino: ino, viaSymlink: tk.viaSymlink})
	return ino, nil
}
