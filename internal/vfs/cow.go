package vfs

// Copy-on-write snapshots. Freeze seals every inode currently in the
// tree; Clone then produces a new FS that shares the sealed inodes with
// its parent. Both sides privatize ("copy up") the sealed inodes along a
// path before the first mutation, persistent-tree style, so a golden
// image can be stamped into many tenant machines at a tiny fraction of
// the cost of rebuilding one.
//
// Sealing is one-way and race-free by construction: a sealed directory
// only ever holds sealed children (copy-up privatizes parents before
// children, and creating an entry requires a private parent first), so a
// re-Freeze prunes at sealed nodes and never writes to an inode another
// clone can reach.

import (
	"maps"

	"protego/internal/errno"
)

// Freeze seals every inode in the tree — including subtrees stashed by
// AttachMount — and switches the FS into copy-on-write mode. Idempotent:
// re-freezing after private mutations re-seals only the private inodes,
// so repeated Snapshot/Clone cycles work.
func (fs *FS) Freeze() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	sealTree(fs.root)
	for _, saves := range fs.mountSave {
		for _, sd := range saves {
			for _, child := range sd.children {
				sealTree(child)
			}
		}
	}
	fs.cow.Store(true)
}

// sealTree marks ino and every descendant sealed, pruning at
// already-sealed nodes (their subtrees are sealed by invariant).
func sealTree(ino *Inode) {
	if ino.sealed.Load() {
		return
	}
	ino.sealed.Store(true)
	for _, child := range ino.children {
		sealTree(child)
	}
}

// COW reports whether the FS is in copy-on-write mode (frozen or cloned).
func (fs *FS) COW() bool { return fs.cow.Load() }

// Clone returns a new FS sharing this file system's sealed inode tree.
// The FS must be frozen first. The clone starts with a fresh empty
// dcache, no watches, no fault injector, and private copies of the mount
// table and the saved mount-point directories; inodes stay shared until
// either side writes, at which point the writer copies the affected path
// up into private inodes.
func (fs *FS) Clone() *FS {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	c := &FS{
		root:      fs.root,
		nextIno:   fs.nextIno,
		dcache:    newDcache(),
		mountSave: make(map[string][]savedDir, len(fs.mountSave)),
	}
	c.cow.Store(true)
	c.dcache.disabled.Store(fs.dcache.disabled.Load())
	c.mounts = make([]*Mount, len(fs.mounts))
	for i, m := range fs.mounts {
		mc := *m
		mc.Options = append([]string(nil), m.Options...)
		c.mounts[i] = &mc
	}
	for point, saves := range fs.mountSave {
		cs := make([]savedDir, len(saves))
		for i, sd := range saves {
			cs[i] = savedDir{
				children: maps.Clone(sd.children),
				mode:     sd.mode,
				uid:      sd.uid,
				gid:      sd.gid,
			}
		}
		c.mountSave[point] = cs
	}
	return c
}

// cowCopy returns a private, unsealed shallow copy of the inode.
// Directory children maps are cloned (entries still point at shared
// inodes); file data shares the backing array with capacity clamped to
// length, so an append by either side reallocates instead of scribbling
// on bytes the other can read. Fields are read under ino.mu: a sibling
// machine's ReadFile may be bumping Atime on the shared inode.
func (ino *Inode) cowCopy() *Inode {
	ino.mu.Lock()
	defer ino.mu.Unlock()
	cp := &Inode{
		Ino:     ino.Ino,
		Mode:    ino.Mode,
		UID:     ino.UID,
		GID:     ino.GID,
		Nlink:   ino.Nlink,
		Major:   ino.Major,
		Minor:   ino.Minor,
		DevType: ino.DevType,
		ReadFn:  ino.ReadFn,
		WriteFn: ino.WriteFn,
		Atime:   ino.Atime,
		Mtime:   ino.Mtime,
		Ctime:   ino.Ctime,
	}
	if ino.children != nil {
		cp.children = maps.Clone(ino.children)
	}
	if ino.Data != nil {
		cp.Data = ino.Data[:len(ino.Data):len(ino.Data)]
	}
	return cp
}

// copyUpLocked privatizes every sealed inode along path (cleaned,
// absolute), following intermediate symlinks like resolve but with no
// permission checks — mutation rights are established by the caller's own
// lookup. Returns the now-private inode at path. Caller holds fs.mu
// exclusively.
func (fs *FS) copyUpLocked(path string, followLast bool, depth int) (*Inode, error) {
	if depth > 16 {
		return nil, errno.ELOOP
	}
	if fs.root.sealed.Load() {
		fs.root = fs.root.cowCopy()
		fs.cowBreaks++
	}
	cur := fs.root
	comps := components(path)
	for i, name := range comps {
		if !cur.Mode.IsDir() {
			return nil, errno.ENOTDIR
		}
		next, ok := cur.children[name]
		if !ok {
			return nil, errno.ENOENT
		}
		last := i == len(comps)-1
		if next.Mode.IsSymlink() && (!last || followLast) {
			target := CleanPath(string(next.Data), "/"+joinComps(comps[:i]))
			if rest := joinComps(comps[i+1:]); rest != "" {
				if target == "/" {
					target = "/" + rest
				} else {
					target = target + "/" + rest
				}
			}
			return fs.copyUpLocked(target, followLast, depth+1)
		}
		if next.sealed.Load() {
			next = next.cowCopy()
			cur.children[name] = next
			fs.cowBreaks++
		}
		cur = next
	}
	return cur, nil
}

// cowWriteLocked prepares path for mutation on a COW file system by
// privatizing the sealed inodes along it. Resolution errors are
// swallowed: the deepest existing prefix gets privatized — exactly what
// creation sites need for the parent directory — and the caller's own
// lookup reports the real error. Any privatization clears the dcache,
// whose cached chains hold the replaced pointers. Caller holds fs.mu
// exclusively. No-op when not in COW mode.
func (fs *FS) cowWriteLocked(path string, followLast bool) {
	if !fs.cow.Load() {
		return
	}
	before := fs.cowBreaks
	_, _ = fs.copyUpLocked(cleanedPath(path, "/"), followLast, 0)
	if fs.cowBreaks != before {
		fs.dcache.clear()
	}
}

// BreakSealInode returns a writable private inode for a descriptor that
// holds ino, originally opened at path. The kernel's fd-based write path
// uses it when a descriptor's inode is sealed (opened before a snapshot,
// or inherited through a machine clone). If path still resolves to the
// same inode, the copy-up happens in the tree, so path readers observe
// the descriptor's writes. If the directory entry was removed or now
// names a different file — the classic open-unlink-write tempfile idiom,
// or a rename over the name — the descriptor instead gets an anonymous
// private copy: the write stays fd-local and whatever now occupies path
// is untouched. Either way a sealed inode is never mutated, so the
// snapshot sharers stay pristine.
func (fs *FS) BreakSealInode(path string, ino *Inode) *Inode {
	if !ino.sealed.Load() {
		return ino
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cow.Load() {
		before := fs.cowBreaks
		nino, err := fs.copyUpLocked(cleanedPath(path, "/"), true, 0)
		if fs.cowBreaks != before {
			fs.dcache.clear()
		}
		if err == nil && nino.Ino == ino.Ino {
			return nino
		}
	}
	// The entry is gone or replaced since open (or the FS is somehow not
	// in COW mode): privatize the inode itself, off-tree.
	return ino.cowCopy()
}

// RebindProc replaces the proc handlers of an existing synthetic inode
// (file or directory). Machine cloning uses it to point shared proc
// inodes at the clone's own kernel objects; on a COW file system the
// inode is privatized first so the parent's handlers stay untouched.
func (fs *FS) RebindProc(path string, read ProcReadFunc, write ProcWriteFunc) error {
	clean := cleanedPath(path, "/")
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cowWriteLocked(clean, true)
	ino, err := fs.lookupLocked(RootCred, clean, true)
	if err != nil {
		return err
	}
	ino.ReadFn = read
	ino.WriteFn = write
	return nil
}
