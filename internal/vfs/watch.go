package vfs

import "sync"

// Op identifies the kind of file system event delivered to a watch,
// modeled on the inotify framework the paper's monitoring daemon uses.
type Op int

// Event operations.
const (
	OpCreate Op = iota
	OpWrite
	OpRemove
	OpChmod
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpRemove:
		return "remove"
	case OpChmod:
		return "chmod"
	default:
		return "unknown"
	}
}

// Event describes a change to a watched path.
type Event struct {
	Op   Op
	Path string
}

// Watch receives events for a path (or everything beneath a directory
// path). Events are delivered on C; slow consumers drop events rather than
// block the file system, mirroring inotify's queue-overflow behaviour.
type Watch struct {
	id   int
	path string
	fs   *FS
	C    chan Event

	mu     sync.Mutex
	closed bool
}

// Watch registers interest in path. Events fire when path itself or any
// entry lexically beneath it changes.
func (fs *FS) Watch(path string) *Watch {
	w := &Watch{
		path: CleanPath(path, "/"),
		fs:   fs,
		C:    make(chan Event, 256),
	}
	fs.mu.Lock()
	fs.watchSeq++
	w.id = fs.watchSeq
	fs.watches = append(fs.watches, w)
	fs.mu.Unlock()
	return w
}

// Close deregisters the watch and closes its channel.
func (w *Watch) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()

	w.fs.mu.Lock()
	for i, other := range w.fs.watches {
		if other.id == w.id {
			w.fs.watches = append(w.fs.watches[:i], w.fs.watches[i+1:]...)
			break
		}
	}
	w.fs.mu.Unlock()
	close(w.C)
}

// notify fans an event out to matching watches. It must be called without
// fs.mu held to avoid deadlock with watch registration.
func (fs *FS) notify(ev Event) {
	fs.mu.RLock()
	matched := make([]*Watch, 0, 2)
	for _, w := range fs.watches {
		if IsUnder(ev.Path, w.path) {
			matched = append(matched, w)
		}
	}
	fs.mu.RUnlock()
	for _, w := range matched {
		w.mu.Lock()
		if !w.closed {
			select {
			case w.C <- ev:
			default: // queue overflow: drop, like inotify
			}
		}
		w.mu.Unlock()
	}
}
