package vfs

import "sort"

// Walk visits every inode of the tree in depth-first order with children
// sorted by name, calling fn with each absolute path. For directories, fn
// returning false prunes the subtree. The walk runs with kernel privilege
// (no DAC checks) under the FS read lock, so it observes a consistent
// snapshot of the tree structure; it exists for state-fingerprint
// serializers, which must see the whole image regardless of permissions.
func (fs *FS) Walk(fn func(path string, ino *Inode) bool) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	walkLocked("/", fs.root, fn)
}

func walkLocked(path string, ino *Inode, fn func(path string, ino *Inode) bool) {
	if !fn(path, ino) {
		return
	}
	if !ino.Mode.IsDir() {
		return
	}
	names := make([]string, 0, len(ino.children))
	for name := range ino.children {
		names = append(names, name)
	}
	sort.Strings(names)
	prefix := path
	if prefix != "/" {
		prefix += "/"
	}
	for _, name := range names {
		walkLocked(prefix+name, ino.children[name], fn)
	}
}
