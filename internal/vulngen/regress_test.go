package vulngen

import (
	"os"
	"path/filepath"
	"testing"

	"protego/internal/exploits"
)

// Every committed testdata scenario is a shrunk regression reproducer:
// it must decode, replay against the per-class CVE representatives, and
// hold containment.
func TestRegressionScenarios(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.scenario"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < int(shapeCount) {
		t.Fatalf("found %d committed scenarios, want at least one per shape (%d)", len(files), shapeCount)
	}
	seen := map[Shape]bool{}
	corpus := exploits.ClassRepresentatives()
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := DecodeScenario(string(data))
			if err != nil {
				t.Fatal(err)
			}
			seen[sc.Shape] = true
			res, err := ReplayScenario(sc, corpus, Config{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failing() {
				t.Errorf("%s", res)
			}
		})
	}
	t.Cleanup(func() {
		for shape := Shape(0); shape < shapeCount; shape++ {
			if !seen[shape] {
				t.Errorf("no committed regression scenario for shape %s", shape)
			}
		}
	})
}

// The Go-literal replay form a failure report embeds: the alias-cycle
// reproducer that originally crashed policy.expand, committed as code so
// the report format itself stays replayable.
func TestGoLiteralRegressionAliasCycle(t *testing.T) {
	sc := Scenario{
		Shape: ShapeAliasCycle,
		Muts: []Mut{
			{Op: MutAliasCycle, A: 0},
			{Op: MutSyncPolicy, A: 0},
		},
	}
	res, err := ReplayScenario(sc, exploits.ClassRepresentatives()[:1], Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failing() {
		t.Errorf("%s", res)
	}
}
