package vulngen

import (
	"strings"
	"testing"

	"protego/internal/exploits"
)

// Two generators with the same seed must emit identical scenario
// sequences — the property the CI smoke's fixed seed rests on — and the
// shapes must rotate round-robin so a sweep covers all of them evenly.
func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewGenerator(42), NewGenerator(42)
	for i := 0; i < 25; i++ {
		sa, sb := a.Scenario(), b.Scenario()
		if sa.Encode() != sb.Encode() {
			t.Fatalf("scenario %d diverged:\n%s\nvs\n%s", i, sa.Encode(), sb.Encode())
		}
		if want := Shape(i % int(shapeCount)); sa.Shape != want {
			t.Fatalf("scenario %d: shape %s, want %s (round-robin)", i, sa.Shape, want)
		}
	}
	if c := NewGenerator(43); c.Scenario().Encode() == NewGenerator(42).Scenario().Encode() &&
		c.Scenario().Encode() == func() string { g := NewGenerator(42); g.Scenario(); return g.Scenario().Encode() }() {
		t.Fatalf("different seeds produced identical first two scenarios")
	}
}

func TestScenarioEncodeDecodeRoundTrip(t *testing.T) {
	g := NewGenerator(7)
	for i := 0; i < 20; i++ {
		sc := g.Scenario()
		got, err := DecodeScenario(sc.Encode())
		if err != nil {
			t.Fatalf("decode scenario %d: %v\n%s", i, err, sc.Encode())
		}
		if got.Encode() != sc.Encode() {
			t.Fatalf("round trip %d:\n%s\nvs\n%s", i, sc.Encode(), got.Encode())
		}
	}
	if _, err := DecodeScenario("shape no-such-shape\n"); err == nil {
		t.Fatalf("unknown shape decoded")
	}
	if _, err := DecodeScenario("shape fstab-writable\nmut no-such-op 0\n"); err == nil {
		t.Fatalf("unknown mut op decoded")
	}
	if _, err := DecodeScenario("mut sync-policy 0\n"); err == nil {
		t.Fatalf("scenario without shape line decoded")
	}
}

func TestGoLiteral(t *testing.T) {
	sc := Scenario{Shape: ShapeStalePolicy, Muts: []Mut{
		{Op: MutChmodConfig, A: 0}, {Op: MutCrashMonitord}, {Op: MutSyncPolicy},
	}}
	lit := sc.GoLiteral()
	for _, want := range []string{"vulngen.ShapeStalePolicy", "vulngen.MutChmodConfig", "vulngen.MutCrashMonitord"} {
		if !strings.Contains(lit, want) {
			t.Fatalf("GoLiteral missing %q:\n%s", want, lit)
		}
	}
}

// The tentpole smoke: generate environments from a fixed seed and replay
// the per-class CVE representatives inside each. Every baseline must
// escalate and every Protego image must contain, modulo the environments'
// own policy concessions.
func TestSweepSmoke(t *testing.T) {
	envs := 2 * int(shapeCount)
	if testing.Short() {
		envs = int(shapeCount)
	}
	stats, err := Sweep(1, envs, exploits.ClassRepresentatives(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Environments != envs {
		t.Fatalf("environments = %d, want %d", stats.Environments, envs)
	}
	if want := envs * len(exploits.ClassRepresentatives()); stats.Replays != want {
		t.Fatalf("replays = %d, want %d", stats.Replays, want)
	}
	// Two of every five environments (fstab-writable shapes) concede the
	// payload's mount by their own poisoned-but-synced whitelist.
	if stats.Concessions == 0 {
		t.Fatalf("no concessions: the fstab-writable shape's poisoned row should authorize the payload mount")
	}
	for _, f := range stats.Failures {
		t.Errorf("%s", f)
	}
}

// Planted-vulnerability self-test (the difffuzz idiom): with the mount
// whitelist check broken, a non-conceding environment must catch the
// payload's mount landing on Protego, and ddmin must reduce the scenario
// to a single mutation (the break does not depend on the environment, so
// the minimal reproducer is as small as the shrinker can emit).
func TestBreakMountPolicyCaughtAndShrunk(t *testing.T) {
	corpus := exploits.ClassRepresentatives()[:1]
	sc := Scenario{Shape: ShapeAliasCycle, Muts: []Mut{
		{Op: MutAliasCycle},
		{Op: MutChmodConfig, A: 0},
		{Op: MutFstabRow, A: 1},
		{Op: MutSyncPolicy},
	}}
	cfg := Config{BreakMountPolicy: true}
	res, err := ReplayScenario(sc, corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failing() {
		t.Fatalf("broken mount policy not detected")
	}
	found := false
	for _, p := range res.Problems {
		if strings.Contains(p, exploits.ActionMountEtc) || strings.Contains(p, "mount-whitelist") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no mount-related problem reported: %v", res.Problems)
	}

	shrunk := ShrinkScenario(sc, corpus, cfg)
	if len(shrunk.Muts) != 1 {
		t.Fatalf("shrunk to %d muts, want 1:\n%s", len(shrunk.Muts), shrunk.Encode())
	}
	// The minimal scenario still fails, and its Go-literal replay form is
	// what a report would embed.
	re, err := ReplayScenario(shrunk, corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !re.Failing() {
		t.Fatalf("shrunk scenario no longer fails:\n%s", shrunk.GoLiteral())
	}
}

// Per-shape environment semantics, each replayed on the full canonical
// scenario against the class representatives.
func TestShapeSemantics(t *testing.T) {
	corpus := exploits.ClassRepresentatives()[:1]
	g := NewGenerator(0)
	for shape := Shape(0); shape < shapeCount; shape++ {
		sc := Scenario{Shape: shape, Muts: g.canonical(shape)}
		res, err := ReplayScenario(sc, corpus, Config{})
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		if res.Failing() {
			t.Errorf("%s: %s", shape, res)
		}
	}
}
