package vulngen

import (
	"fmt"

	"protego/internal/difffuzz"
	"protego/internal/exploits"
	"protego/internal/kernel"
	"protego/internal/vfs"
	"protego/internal/world"
)

// Config selects replay options.
type Config struct {
	// BreakMountPolicy flips the core-module test hook that grants every
	// unprivileged mount on each Protego clone. Replays with this set
	// MUST fail; it is the planted vulnerability the shrinker self-test
	// reduces against (the difffuzz idiom).
	BreakMountPolicy bool
}

// EnvResult is the outcome of replaying a CVE corpus inside one generated
// environment.
type EnvResult struct {
	Scenario Scenario
	// Replays is the number of CVEs replayed (each on a fresh
	// baseline/Protego clone pair).
	Replays int
	// Concessions counts payload actions that succeeded on Protego
	// because the generated environment's own policy authorized them
	// (e.g. the attacker-authored fstab whitelist row) — contained by
	// policy, not a containment failure.
	Concessions int
	// Problems are the containment failures: uncontained Protego
	// escalations, invariant violations, unexplained baseline
	// non-escalations, stale-policy leaks, refused concessions.
	Problems []string
}

// Failing reports whether the environment found a bug.
func (r *EnvResult) Failing() bool { return len(r.Problems) > 0 }

func (r *EnvResult) String() string {
	if !r.Failing() {
		return fmt.Sprintf("ok: %s (%d replays, %d concessions)", r.Scenario, r.Replays, r.Concessions)
	}
	s := fmt.Sprintf("FAILED: %s:", r.Scenario)
	for _, p := range r.Problems {
		s += "\n  " + p
	}
	return s
}

// envFacts is what the generated environment's Protego policy genuinely
// authorizes the attacker to do — the per-action containment expectations
// derive from it, keyed to exactly the strings the payload records.
type envFacts struct {
	shadowReadable  bool // DAC lets bob read /etc/shadow
	passwdWritable  bool // DAC lets bob write /etc/passwd
	shWritable      bool // DAC lets bob write /bin/sh
	mountConcession bool // in-kernel whitelist matches the payload's mount triple
}

func computeFacts(pro *world.Machine) envFacts {
	can := func(path string, want int) bool {
		ino, err := pro.K.FS.Lookup(vfs.RootCred, path)
		if err != nil {
			return false
		}
		return vfs.CheckAccess(bobCred, ino, want) == nil
	}
	return envFacts{
		shadowReadable:  can("/etc/shadow", vfs.MayRead),
		passwdWritable:  can("/etc/passwd", vfs.MayWrite),
		shWritable:      can("/bin/sh", vfs.MayWrite),
		mountConcession: whitelistsPayloadMount(pro),
	}
}

// whitelistsPayloadMount reports whether the Protego in-kernel mount
// whitelist currently authorizes the exploit payload's mount triple.
func whitelistsPayloadMount(pro *world.Machine) bool {
	if pro.Protego == nil {
		return false
	}
	for _, r := range pro.Protego.MountRules() {
		if r.Device == exploits.PayloadMountDevice && r.MountPoint == exploits.PayloadMountPoint &&
			(r.FSType == "" || r.FSType == "auto" || r.FSType == exploits.PayloadMountFSType) {
			return true
		}
	}
	return false
}

// expectedOnProtego is the per-action containment expectation: true means
// the environment itself (DAC or synced policy) authorizes the action, so
// payload success there is a concession; everything else must fail.
func expectedOnProtego(f envFacts, action string) bool {
	switch action {
	case exploits.ActionReadShadow:
		return f.shadowReadable
	case exploits.ActionAppendPasswd:
		return f.passwdWritable
	case exploits.ActionRootkit:
		return f.shWritable
	case exploits.ActionMountEtc:
		return f.mountConcession
	default:
		// bind 53, raw send, setuid(0): no generated misconfiguration
		// grants these (delegation mutations stay command-restricted, so
		// a deferred transition confers nothing by itself).
		return false
	}
}

// ReplayScenario builds the scenario's environment on a fresh golden
// baseline/Protego pair, runs the shape-level assertions, then replays
// every CVE of the corpus on clone pairs stamped from the mutated
// machines, collecting containment problems.
func ReplayScenario(sc Scenario, corpus []exploits.CVE, cfg Config) (*EnvResult, error) {
	res := &EnvResult{Scenario: sc}
	lin, err := exploits.NewMachine(kernel.ModeLinux)
	if err != nil {
		return nil, err
	}
	pro, err := exploits.NewMachine(kernel.ModeProtego)
	if err != nil {
		return nil, err
	}
	if err := Apply(lin, sc); err != nil {
		return nil, err
	}
	if err := Apply(pro, sc); err != nil {
		return nil, err
	}
	facts := computeFacts(pro)
	checkShape(sc, lin, pro, facts, res)

	// The mutated machines become the environment's golden pair: every
	// CVE replays on a fresh clone, so a successful attack (baseline
	// mount over /etc, a rootkitted /bin/sh) never bleeds into the next
	// replay's world.
	linSnap, proSnap := lin.Snapshot(), pro.Snapshot()
	for _, cve := range corpus {
		linM, err := linSnap.Clone()
		if err != nil {
			return nil, err
		}
		proM, err := proSnap.Clone()
		if err != nil {
			return nil, err
		}
		if cfg.BreakMountPolicy && proM.Protego != nil {
			proM.Protego.TestHookBreakMountPolicy(true)
		}
		linRes, err := exploits.RunCVEOn(linM, cve)
		if err != nil {
			return nil, fmt.Errorf("vulngen: %s baseline: %w", cve.ID, err)
		}
		proRes, err := exploits.RunCVEOn(proM, cve)
		if err != nil {
			return nil, fmt.Errorf("vulngen: %s protego: %w", cve.ID, err)
		}
		res.Replays++
		evalReplay(cve, linRes, proRes, facts, proM, res)
	}
	return res, nil
}

// evalReplay turns one CVE's result pair into problems/concessions.
func evalReplay(cve exploits.CVE, linRes, proRes *exploits.Result, facts envFacts, proM *world.Machine, res *EnvResult) {
	prob := func(format string, args ...any) {
		res.Problems = append(res.Problems, fmt.Sprintf("%s: ", cve.ID)+fmt.Sprintf(format, args...))
	}
	switch {
	case !linRes.Fired:
		prob("baseline payload did not fire")
	case !linRes.Escalated:
		prob("baseline did not escalate (unexplained)")
	}
	if !proRes.Fired {
		prob("protego payload did not fire")
		return
	}
	if proRes.EUID == 0 {
		prob("protego payload ran with euid 0")
	}
	if !proRes.Caps.IsEmpty() {
		prob("protego payload held capabilities %v", proRes.Caps)
	}
	for _, a := range proRes.Attempts {
		want := expectedOnProtego(facts, a.Action)
		switch {
		case a.Succeeded && !want:
			prob("uncontained: %s succeeded on protego", a.Action)
		case !a.Succeeded && want:
			prob("expected concession refused: %s failed (%s)", a.Action, a.Err)
		case a.Succeeded:
			res.Concessions++
		}
	}
	checkTasks(cve, proM, res)
	checkMounts(cve, proM, res)
}

// checkTasks is difffuzz's no-unauthorized-priv invariant: after a replay
// no live Protego task but init may hold euid 0 or capabilities.
func checkTasks(cve exploits.CVE, proM *world.Machine, res *EnvResult) {
	initPID := proM.Init.PID()
	for _, t := range proM.K.Tasks() {
		if t.PID() == initPID {
			continue
		}
		c := t.Creds()
		if c.EUID == 0 || !c.Effective.IsEmpty() || !c.Permitted.IsEmpty() {
			res.Problems = append(res.Problems, fmt.Sprintf(
				"%s: invariant no-unauthorized-priv: task pid=%d holds euid=%d caps=%v/%v",
				cve.ID, t.PID(), c.EUID, c.Effective, c.Permitted))
		}
	}
}

// checkMounts is difffuzz's mount-whitelist invariant: every user mount
// on the Protego image must match an in-kernel whitelist row (or be fuse,
// ownership-checked at grant time).
func checkMounts(cve exploits.CVE, proM *world.Machine, res *EnvResult) {
	if proM.Protego == nil {
		return
	}
	rules := proM.Protego.MountRules()
	for _, mnt := range proM.K.FS.Mounts() {
		if !mnt.UserMount || mnt.FSType == "fuse" {
			continue
		}
		ok := false
		for i := range rules {
			r := &rules[i]
			if r.Device == mnt.Device && r.MountPoint == mnt.Point &&
				(r.FSType == "" || r.FSType == "auto" || r.FSType == mnt.FSType) {
				ok = true
				break
			}
		}
		if !ok {
			res.Problems = append(res.Problems, fmt.Sprintf(
				"%s: invariant mount-whitelist: user mount %s on %s (%s) matches no rule",
				cve.ID, mnt.Device, mnt.Point, mnt.FSType))
		}
	}
}

// checkShape runs the environment-level assertions of the scenario's
// misconfiguration family, before any CVE replays.
func checkShape(sc Scenario, lin, pro *world.Machine, facts envFacts, res *EnvResult) {
	switch sc.Shape {
	case ShapeFstabWritable:
		// The whole point of the shape: the attacker-authored row made it
		// into the kernel, so the payload's mount is a policy concession.
		if !facts.mountConcession {
			res.Problems = append(res.Problems,
				"shape fstab-writable: poisoned row did not reach the in-kernel whitelist")
		}
	case ShapeStalePolicy:
		// The daemon crashed before the poisoning; keep-last-good must
		// have pinned the pre-crash whitelist.
		if facts.mountConcession {
			res.Problems = append(res.Problems,
				"shape stale-policy: poisoned fstab row leaked into the in-kernel whitelist past a crashed monitord")
		}
	case ShapeAliasCycle:
		// Surviving Apply already proves Compile terminated on the cycle
		// (the historical failure was unbounded recursion); the delegation
		// policy must also still be loaded.
		if pro.Protego != nil && pro.Protego.Sudoers() == nil {
			res.Problems = append(res.Problems,
				"shape alias-cycle: delegation policy vanished after the cycle sync")
		}
	case ShapeSetuidDebris:
		for _, mu := range sc.Muts {
			if mu.Op != MutSetuidDebris {
				continue
			}
			path := pick(debrisPool, mu.A)
			if euid, err := probeDebris(lin, path); err != nil {
				res.Problems = append(res.Problems,
					fmt.Sprintf("shape setuid-debris: baseline exec of %s: %v", path, err))
			} else if euid != 0 {
				res.Problems = append(res.Problems, fmt.Sprintf(
					"shape setuid-debris: baseline debris %s did not escalate (euid=%d)", path, euid))
			}
			if euid, err := probeDebris(pro, path); err != nil {
				res.Problems = append(res.Problems,
					fmt.Sprintf("shape setuid-debris: protego exec of %s: %v", path, err))
			} else if euid == 0 {
				res.Problems = append(res.Problems, fmt.Sprintf(
					"shape setuid-debris: protego exec of %s handed out root", path))
			}
		}
	}
}

// probeDebris forks a child of a bob session, execs the debris binary,
// and reports the credentials exec left on the child — the exact move an
// attacker who found the leftover file would make.
func probeDebris(m *world.Machine, path string) (euid int, err error) {
	bob, err := m.Session("bob")
	if err != nil {
		return -1, err
	}
	defer m.K.Exit(bob, 0)
	child := m.K.Fork(bob)
	defer m.K.Exit(child, 0)
	if _, err := m.K.Exec(child, path, []string{path}, nil); err != nil {
		return -1, err
	}
	return child.EUID(), nil
}

// SweepStats aggregates a generated-environment sweep.
type SweepStats struct {
	Seed         int64
	Environments int
	Replays      int
	Concessions  int
	// Failures are the failing environments, in generation order. The
	// caller shrinks them (ShrinkScenario) before reporting.
	Failures []*EnvResult
}

// Sweep generates envs environments from the seed and replays the corpus
// inside each.
func Sweep(seed int64, envs int, corpus []exploits.CVE, cfg Config) (*SweepStats, error) {
	gen := NewGenerator(seed)
	stats := &SweepStats{Seed: seed}
	for i := 0; i < envs; i++ {
		sc := gen.Scenario()
		res, err := ReplayScenario(sc, corpus, cfg)
		if err != nil {
			return nil, fmt.Errorf("vulngen: env %d (%s): %w", i, sc.Shape, err)
		}
		stats.Environments++
		stats.Replays += res.Replays
		stats.Concessions += res.Concessions
		if res.Failing() {
			stats.Failures = append(stats.Failures, res)
		}
	}
	return stats, nil
}

// ShrinkScenario ddmin-reduces a failing scenario's mutation list to a
// minimal sequence that still fails, reusing difffuzz's generic shrinker.
// Replays build fresh clone pairs per check, so the predicate is
// deterministic and the result replays exactly.
func ShrinkScenario(sc Scenario, corpus []exploits.CVE, cfg Config) Scenario {
	muts := difffuzz.ShrinkSlice(sc.Muts, func(ms []Mut) bool {
		res, err := ReplayScenario(Scenario{Shape: sc.Shape, Muts: ms}, corpus, cfg)
		return err == nil && res.Failing()
	})
	return Scenario{Shape: sc.Shape, Muts: muts}
}
