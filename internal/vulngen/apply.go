package vulngen

import (
	"fmt"

	"protego/internal/caps"
	"protego/internal/faultinject"
	"protego/internal/kernel"
	"protego/internal/vfs"
	"protego/internal/world"
)

// userCred is the attacker's (bob's) view for VFS DAC checks: mutations
// that model attacker-authored edits go through real permission checks,
// so a scenario can only "write as bob" where the environment genuinely
// lets bob write.
type userCred struct{ uid, gid int }

func (c userCred) FSUID() int          { return c.uid }
func (c userCred) FSGID() int          { return c.gid }
func (c userCred) InGroup(g int) bool  { return g == c.gid }
func (c userCred) Capable(caps.Cap) bool { return false }

var bobCred = userCred{uid: world.UIDBob, gid: world.GIDUsers}

// Apply builds the scenario's environment on the machine, in mutation
// order. The same scenario applies to both images of a pair; mutations
// that involve Protego-only components (monitord, fault sites) are no-ops
// on the baseline, and the setuid-debris mutation models each image's
// packaging faithfully (bit on the baseline, no bit on Protego).
func Apply(m *world.Machine, sc Scenario) error {
	for i, mu := range sc.Muts {
		if err := applyMut(m, mu); err != nil {
			return fmt.Errorf("vulngen: mut %d (%s): %w", i, mu.Op, err)
		}
	}
	return nil
}

func applyMut(m *world.Machine, mu Mut) error {
	fs := m.K.FS
	switch mu.Op {
	case MutChmodConfig:
		path := pick(configPool, mu.A)
		ino, err := fs.Lookup(vfs.RootCred, path)
		if err != nil {
			return err
		}
		// Keep the file type bits, open the permission bits wide.
		return fs.Chmod(vfs.RootCred, path, (ino.Mode&^vfs.Mode(0o777))|0o666)

	case MutFstabRow:
		return appendLine(m, "/etc/fstab", pick(fstabRowPool, mu.A)+"\n")

	case MutAliasCycle:
		return appendLine(m, "/etc/sudoers", aliasCycleLines)

	case MutDanglingRule:
		rule := fmt.Sprintf("bob ALL = (root) NOPASSWD: %s\n", pick(ghostPool, mu.A))
		return appendLine(m, "/etc/sudoers", rule)

	case MutSetuidDebris:
		path := pick(debrisPool, mu.A)
		mode := vfs.Mode(0o755)
		if m.K.Mode == kernel.ModeLinux {
			// The interrupted upgrade preserved the old package's setuid
			// bit; Protego's packages never carried one, so its debris
			// (written below) is an ordinary root-owned file.
			mode = 0o4755
		}
		if err := fs.WriteFile(vfs.RootCred, path, []byte("#!ELF /bin/sh (upgrade debris)"), mode, 0, 0); err != nil {
			return err
		}
		if err := fs.Chmod(vfs.RootCred, path, mode); err != nil {
			return err
		}
		// The debris behaves like a shell; the probe only needs the
		// credentials exec leaves on the task, so a stub body suffices.
		m.K.RegisterBinary(path, func(*kernel.Kernel, *kernel.Task) int { return 0 })
		return nil

	case MutCrashMonitord:
		if m.Monitor == nil {
			return nil // baseline has no monitoring daemon
		}
		m.SetFaultInjector(faultinject.New(faultinject.CrashedMonitordPlan(1)))
		return nil

	case MutSyncPolicy:
		if m.Monitor == nil {
			return nil // baseline utilities read config at invocation time
		}
		// Sync failure is tolerated by design: bounded-retry
		// keep-last-good is exactly the behavior under test, and the
		// replay asserts what the kernel policy ended up containing.
		_ = m.Monitor.SyncAll()
		return nil
	}
	return fmt.Errorf("unknown mut op %d", mu.Op)
}

// appendLine appends text to the config file at path, authored by the
// attacker when DAC lets him write it (the world-writable-config story)
// and by root (the careless administrator) otherwise.
func appendLine(m *world.Machine, path, text string) error {
	fs := m.K.FS
	ino, err := fs.Lookup(vfs.RootCred, path)
	if err != nil {
		return err
	}
	cred := vfs.Cred(vfs.RootCred)
	if vfs.CheckAccess(bobCred, ino, vfs.MayWrite) == nil {
		cred = bobCred
	}
	old, err := fs.ReadFile(cred, path)
	if err != nil {
		return err
	}
	data := old
	if len(data) > 0 && data[len(data)-1] != '\n' {
		data = append(data, '\n')
	}
	data = append(data, text...)
	return fs.WriteFile(cred, path, data, ino.Mode&0o7777, ino.UID, ino.GID)
}
