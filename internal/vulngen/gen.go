package vulngen

import "math/rand"

// Generator produces scenarios deterministically from a seed. Shapes
// rotate round-robin so every fixed-size sweep covers all of them evenly;
// pool selectors and noise come from the seeded stream, so two generators
// with the same seed emit identical scenario sequences (the property the
// CI smoke and the regression story both rest on).
type Generator struct {
	rng  *rand.Rand
	next int
}

// NewGenerator returns a generator for the seed.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Scenario emits the next generated environment.
func (g *Generator) Scenario() Scenario {
	shape := Shape(g.next % int(shapeCount))
	g.next++
	sc := Scenario{Shape: shape, Muts: g.canonical(shape)}
	g.addNoise(&sc)
	return sc
}

// canonical is the mutation skeleton each shape is built from — also the
// minimal form ddmin shrinks a failing scenario of that shape back to.
func (g *Generator) canonical(shape Shape) []Mut {
	sel := func() uint8 { return uint8(g.rng.Intn(256)) }
	switch shape {
	case ShapeFstabWritable:
		return []Mut{
			{Op: MutChmodConfig, A: cfgFstab},
			{Op: MutFstabRow, A: rowPoison},
			{Op: MutSyncPolicy},
		}
	case ShapeStalePolicy:
		return []Mut{
			{Op: MutChmodConfig, A: cfgFstab},
			{Op: MutCrashMonitord},
			{Op: MutFstabRow, A: rowPoison},
			{Op: MutSyncPolicy},
		}
	case ShapeAliasCycle:
		return []Mut{
			{Op: MutAliasCycle},
			{Op: MutSyncPolicy},
		}
	case ShapeDanglingDelegation:
		return []Mut{
			{Op: MutDanglingRule, A: sel()},
			{Op: MutSyncPolicy},
		}
	case ShapeSetuidDebris:
		return []Mut{
			{Op: MutSetuidDebris, A: sel()},
		}
	}
	return nil
}

// addNoise inserts 0–2 benign mutations at random positions before the
// scenario's last mutation, so the canonical shape is exercised amid
// unrelated configuration churn (what ddmin later strips away).
func (g *Generator) addNoise(sc *Scenario) {
	n := g.rng.Intn(3)
	for i := 0; i < n; i++ {
		var m Mut
		switch g.rng.Intn(3) {
		case 0:
			m = Mut{Op: MutChmodConfig, A: uint8(g.rng.Intn(256))}
		case 1:
			// Benign user-mountable rows only — never the poison row,
			// which would change the shape's concession story.
			m = Mut{Op: MutFstabRow, A: uint8(1 + g.rng.Intn(len(fstabRowPool)-1))}
		case 2:
			m = Mut{Op: MutSyncPolicy}
		}
		pos := g.rng.Intn(len(sc.Muts))
		sc.Muts = append(sc.Muts[:pos], append([]Mut{m}, sc.Muts[pos:]...)...)
	}
}
