// Package vulngen generates vulnerable environments: a seeded fuzzer that
// mutates the machine images' policy and utility configuration into known
// misconfiguration shapes — world-writable fstab entries, sudoers alias
// cycles, setuid debris left by interrupted upgrades, stale in-kernel
// policy after a crashed monitord, dangling delegation rules — and then
// replays the Table-6 CVE corpus inside each generated environment on a
// baseline/Protego golden-snapshot pair. The assertion is the paper's
// central claim under adversarial configuration: the baseline still
// escalates and Protego still contains, except where the generated
// environment's own policy explicitly concedes an action (a whitelist row
// the "administrator" wrote is a concession, not a containment failure).
// Failing environments are ddmin-shrunk (difffuzz.ShrinkSlice) to minimal
// scenarios and committed as testdata regression files.
package vulngen

import (
	"fmt"
	"strconv"
	"strings"
)

// MutOp is one misconfiguration mutation kind.
type MutOp uint8

const (
	// MutChmodConfig makes a pool config file world-writable (the
	// administrator slip every shape builds on).
	MutChmodConfig MutOp = iota
	// MutFstabRow appends a pool fstab row — authored by the attacker
	// (bob) when the file is writable to him, by root otherwise.
	MutFstabRow
	// MutAliasCycle writes a mutually recursive Cmnd_Alias pair into
	// sudoers, attached to a %wheel rule (bob is not in wheel). This is
	// the mutation that found the policy.expand unbounded-recursion crash.
	MutAliasCycle
	// MutDanglingRule appends a NOPASSWD delegation rule for a binary
	// that does not exist (the "ModeledBy" leftover of a removed package).
	MutDanglingRule
	// MutSetuidDebris drops a root-owned shell copy left by an
	// interrupted upgrade: setuid on the baseline image (its packages
	// carry the bit), plain 0755 on Protego (its packages never did).
	MutSetuidDebris
	// MutCrashMonitord arms the faultinject crashed-monitord plan: every
	// later config read by the daemon fails, so no re-sync can land.
	MutCrashMonitord
	// MutSyncPolicy asks monitord for a full re-sync, tolerating failure
	// (bounded-retry keep-last-good is exactly what is under test).
	MutSyncPolicy

	mutOpCount
)

var mutOpNames = [mutOpCount]string{
	"chmod-config", "fstab-row", "alias-cycle", "dangling-rule",
	"setuid-debris", "crash-monitord", "sync-policy",
}

func (o MutOp) String() string {
	if int(o) < len(mutOpNames) {
		return mutOpNames[o]
	}
	return fmt.Sprintf("MutOp(%d)", uint8(o))
}

// goNames are the Go identifier forms used by GoLiteral.
var mutOpGoNames = [mutOpCount]string{
	"MutChmodConfig", "MutFstabRow", "MutAliasCycle", "MutDanglingRule",
	"MutSetuidDebris", "MutCrashMonitord", "MutSyncPolicy",
}

// Mut is one mutation step. A selects from the op's pool, reduced modulo
// the pool size at apply time, so every byte decodes to an applicable
// mutation and shrinking a field never produces an invalid scenario (the
// difffuzz trace-grammar property).
type Mut struct {
	Op MutOp
	A  uint8
}

// Shape names the misconfiguration family a scenario instantiates; it
// selects which environment-level containment assertions run on top of
// the per-CVE ones.
type Shape uint8

const (
	// ShapeFstabWritable: fstab goes world-writable, the attacker writes
	// himself a whitelist row, the daemon syncs it. The mount the payload
	// then performs is a policy concession — contained BY POLICY, so the
	// row must be in the in-kernel whitelist when the mount lands.
	ShapeFstabWritable Shape = iota
	// ShapeStalePolicy: monitord crashes before the attacker poisons
	// fstab; the attempted re-sync must fail (keep-last-good) and the
	// poisoned row must never reach the in-kernel whitelist.
	ShapeStalePolicy
	// ShapeAliasCycle: mutually recursive command aliases in sudoers.
	// Compile must terminate (regression: unbounded recursion) and bob
	// must gain no transition.
	ShapeAliasCycle
	// ShapeDanglingDelegation: a NOPASSWD rule whose command no longer
	// exists. The deferred setuid-on-exec must confer nothing.
	ShapeDanglingDelegation
	// ShapeSetuidDebris: an interrupted upgrade left a root-owned shell
	// copy behind. On the baseline it carries the setuid bit and hands
	// out root; on Protego the bit never existed and exec stays at the
	// caller's credentials.
	ShapeSetuidDebris

	shapeCount
)

var shapeNames = [shapeCount]string{
	"fstab-writable", "stale-policy", "alias-cycle",
	"dangling-delegation", "setuid-debris",
}

func (s Shape) String() string {
	if int(s) < len(shapeNames) {
		return shapeNames[s]
	}
	return fmt.Sprintf("Shape(%d)", uint8(s))
}

// Scenario is one generated environment: a shape plus the mutation
// sequence that builds it (canonical muts plus generator noise).
type Scenario struct {
	Shape Shape
	Muts  []Mut
}

// Mutation pools. Selectors index these modulo length.

// configPool are the policy/utility config files MutChmodConfig can relax.
var configPool = []string{"/etc/fstab", "/etc/sudoers", "/etc/bind"}

const (
	cfgFstab   = 0 // configPool index of /etc/fstab
	cfgSudoers = 1 // configPool index of /etc/sudoers
)

// fstabRowPool are the rows MutFstabRow appends. Index 0 is the poison
// row: a user-mountable whitelist entry matching exactly the exploit
// payload's mount triple (exploits.PayloadMount*). The rest are benign
// user-mountable rows for generator noise.
var fstabRowPool = []string{
	"evil       /etc         ext4  rw,user,noauto  0 0",
	"/dev/sdd1  /mnt/backup  ext4  rw,user,noauto  0 0",
	"/dev/sde1  /media/usb   vfat  rw,users,noauto 0 0",
}

const rowPoison = 0 // fstabRowPool index of the /etc takeover row

// ghostPool are the nonexistent binaries MutDanglingRule delegates to.
var ghostPool = []string{
	"/usr/bin/vg-ghost-helper",
	"/usr/sbin/vg-removed-daemon",
	"/usr/lib/vg-upgrade-hook",
}

// debrisPool are the paths MutSetuidDebris drops a root shell copy at.
var debrisPool = []string{
	"/bin/sh.dpkg-old",
	"/usr/bin/sudo.dpkg-tmp",
	"/tmp/sh.upgrade-17",
}

// aliasCycleLines is the sudoers fragment MutAliasCycle appends: two
// mutually recursive command aliases reachable from a %wheel rule. Bob is
// not in wheel, so a correct expansion grants him nothing; an incorrect
// one used to recurse without bound at Compile time.
const aliasCycleLines = `Cmnd_Alias VG_CYC_A = VG_CYC_B, /bin/ls
Cmnd_Alias VG_CYC_B = VG_CYC_A, /usr/bin/id
%wheel ALL = (root) NOPASSWD: VG_CYC_A
`

func pick(pool []string, sel uint8) string { return pool[int(sel)%len(pool)] }

// Encode renders the scenario in the line-oriented text form committed
// under testdata/. Lines: "shape <name>" then one "mut <op> <A>" per
// mutation; '#' starts a comment.
func (s Scenario) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "shape %s\n", s.Shape)
	for _, m := range s.Muts {
		fmt.Fprintf(&b, "mut %s %d\n", m.Op, m.A)
	}
	return b.String()
}

// DecodeScenario parses the Encode text form.
func DecodeScenario(text string) (Scenario, error) {
	var sc Scenario
	sawShape := false
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "shape":
			if len(fields) != 2 {
				return sc, fmt.Errorf("vulngen: line %d: want 'shape <name>'", lineNo+1)
			}
			found := false
			for i, n := range shapeNames {
				if n == fields[1] {
					sc.Shape, found = Shape(i), true
					break
				}
			}
			if !found {
				return sc, fmt.Errorf("vulngen: line %d: unknown shape %q", lineNo+1, fields[1])
			}
			sawShape = true
		case "mut":
			if len(fields) != 3 {
				return sc, fmt.Errorf("vulngen: line %d: want 'mut <op> <A>'", lineNo+1)
			}
			op := MutOp(mutOpCount)
			for i, n := range mutOpNames {
				if n == fields[1] {
					op = MutOp(i)
					break
				}
			}
			if op == mutOpCount {
				return sc, fmt.Errorf("vulngen: line %d: unknown mut op %q", lineNo+1, fields[1])
			}
			a, err := strconv.ParseUint(fields[2], 10, 8)
			if err != nil {
				return sc, fmt.Errorf("vulngen: line %d: selector: %v", lineNo+1, err)
			}
			sc.Muts = append(sc.Muts, Mut{Op: op, A: uint8(a)})
		default:
			return sc, fmt.Errorf("vulngen: line %d: unknown directive %q", lineNo+1, fields[0])
		}
	}
	if !sawShape {
		return sc, fmt.Errorf("vulngen: no shape line")
	}
	return sc, nil
}

// GoLiteral renders the scenario as a compilable Go composite literal,
// the replay form embedded in failure reports: paste it into a test and
// pass it to ReplayScenario to reproduce the exact failure.
func (s Scenario) GoLiteral() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vulngen.Scenario{\n\tShape: vulngen.Shape%s,\n\tMuts: []vulngen.Mut{\n", goShapeName(s.Shape))
	for _, m := range s.Muts {
		fmt.Fprintf(&b, "\t\t{Op: vulngen.%s, A: %d},\n", mutOpGoNames[m.Op], m.A)
	}
	b.WriteString("\t},\n}")
	return b.String()
}

func goShapeName(s Shape) string {
	switch s {
	case ShapeFstabWritable:
		return "FstabWritable"
	case ShapeStalePolicy:
		return "StalePolicy"
	case ShapeAliasCycle:
		return "AliasCycle"
	case ShapeDanglingDelegation:
		return "DanglingDelegation"
	case ShapeSetuidDebris:
		return "SetuidDebris"
	}
	return fmt.Sprintf("(%d)", uint8(s))
}

// String renders a compact human-readable scenario summary.
func (s Scenario) String() string {
	parts := make([]string, 0, len(s.Muts))
	for _, m := range s.Muts {
		parts = append(parts, fmt.Sprintf("%s(%d)", m.Op, m.A))
	}
	return fmt.Sprintf("%s: %s", s.Shape, strings.Join(parts, " "))
}
