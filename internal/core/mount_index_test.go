package core

import (
	"testing"

	"protego/internal/caps"
	"protego/internal/lsm"
)

// idxTask is an unprivileged task for exercising the whitelist directly.
type idxTask struct {
	lsm.NullFilterSlot
	uid int
}

func (t idxTask) PID() int                    { return 100 }
func (t idxTask) UID() int                    { return t.uid }
func (t idxTask) EUID() int                   { return t.uid }
func (t idxTask) GID() int                    { return t.uid }
func (t idxTask) EGID() int                   { return t.uid }
func (t idxTask) Groups() []int               { return nil }
func (t idxTask) Capable(caps.Cap) bool       { return false }
func (t idxTask) BinaryPath() string          { return "/bin/mount" }
func (t idxTask) SecurityBlob(string) any     { return nil }
func (t idxTask) SetSecurityBlob(string, any) {}

func idxModule() *Module {
	m := &Module{}
	m.SetMountRules([]MountRule{
		{Device: "/dev/cdrom", MountPoint: "/cdrom", FSType: "iso9660",
			Options: []string{"uid=1000"}},
		{Device: "/dev/sdb1", MountPoint: "/media/usb", FSType: "vfat",
			AnyUserUnmount: true},
	})
	return m
}

func mountReq(dev, point, fstype string, opts ...string) *lsm.MountRequest {
	return &lsm.MountRequest{Device: dev, Point: point, FSType: fstype, Options: opts}
}

func TestMountIndexGrantsWhitelisted(t *testing.T) {
	m := idxModule()
	alice := idxTask{uid: 1000}
	cases := []struct {
		req  *lsm.MountRequest
		want lsm.Decision
	}{
		// Exact rule match.
		{mountReq("/dev/cdrom", "/cdrom", "iso9660"), lsm.Grant},
		// Safe options are always merged into the allowed set...
		{mountReq("/dev/cdrom", "/cdrom", "iso9660", "ro", "nosuid", "nodev"), lsm.Grant},
		// ...as are the rule's own options.
		{mountReq("/dev/cdrom", "/cdrom", "iso9660", "uid=1000", "ro"), lsm.Grant},
		// "auto" in the request matches any rule fstype and vice versa.
		{mountReq("/dev/cdrom", "/cdrom", "auto"), lsm.Grant},
		// Unsafe option not in the rule: denied.
		{mountReq("/dev/cdrom", "/cdrom", "iso9660", "suid"), lsm.NoOpinion},
		// Wrong fstype: denied.
		{mountReq("/dev/cdrom", "/cdrom", "ext4"), lsm.NoOpinion},
		// (device, point) not in the whitelist at all.
		{mountReq("/dev/cdrom", "/mnt", "iso9660"), lsm.NoOpinion},
		{mountReq("/dev/sda1", "/cdrom", "iso9660"), lsm.NoOpinion},
	}
	for _, c := range cases {
		got, err := m.MountCheck(alice, c.req)
		if err != nil {
			t.Fatalf("MountCheck(%+v): %v", c.req, err)
		}
		if got != c.want {
			t.Errorf("MountCheck(%+v) = %v, want %v", c.req, got, c.want)
		}
	}
}

func TestMountIndexHitCounter(t *testing.T) {
	m := idxModule()
	alice := idxTask{uid: 1000}
	before := m.mountIdxHits.Load()
	// Index hit: the (device, point) pair has whitelist rows, whatever
	// the final verdict.
	m.MountCheck(alice, mountReq("/dev/cdrom", "/cdrom", "ext4"))
	m.MountCheck(alice, mountReq("/dev/cdrom", "/cdrom", "iso9660"))
	// Index miss: unknown pair.
	m.MountCheck(alice, mountReq("/dev/zero", "/nowhere", "ext4"))
	if got := m.mountIdxHits.Load(); got != before+2 {
		t.Fatalf("mountIdxHits = %d, want %d", got, before+2)
	}
}

func TestMountIndexTracksRuleMutations(t *testing.T) {
	m := idxModule()
	alice := idxTask{uid: 1000}
	req := mountReq("/dev/sdc1", "/mnt/extra", "ext4")
	if d, _ := m.MountCheck(alice, req); d != lsm.NoOpinion {
		t.Fatalf("before add: %v", d)
	}
	m.AddMountRule(MountRule{Device: "/dev/sdc1", MountPoint: "/mnt/extra", FSType: "ext4"})
	if d, _ := m.MountCheck(alice, req); d != lsm.Grant {
		t.Fatalf("after add: %v", d)
	}
	m.RemoveMountRules("/dev/sdc1", "/mnt/extra")
	if d, _ := m.MountCheck(alice, req); d != lsm.NoOpinion {
		t.Fatalf("after remove: %v", d)
	}
}

func TestUmountUsersIndex(t *testing.T) {
	m := idxModule()
	bob := idxTask{uid: 1001}
	// "users" mount point: anyone may unmount.
	d, _ := m.UmountCheck(bob, &lsm.UmountRequest{
		Point: "/media/usb", Device: "/dev/sdb1", MountedBy: 1000, UserMount: true,
	})
	if d != lsm.Grant {
		t.Fatalf("users umount by other uid: %v", d)
	}
	// "user" mount point: only the mounting uid.
	d, _ = m.UmountCheck(bob, &lsm.UmountRequest{
		Point: "/cdrom", Device: "/dev/cdrom", MountedBy: 1000, UserMount: true,
	})
	if d != lsm.NoOpinion {
		t.Fatalf("user umount by other uid: %v", d)
	}
	// The mounting uid always may.
	d, _ = m.UmountCheck(idxTask{uid: 1000}, &lsm.UmountRequest{
		Point: "/cdrom", Device: "/dev/cdrom", MountedBy: 1000, UserMount: true,
	})
	if d != lsm.Grant {
		t.Fatalf("user umount by owner: %v", d)
	}
}
