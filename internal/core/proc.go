package core

import (
	"fmt"
	"strings"

	"protego/internal/errno"
	"protego/internal/policy"
	"protego/internal/vfs"
)

// /proc configuration paths (Figure 1: "a trusted daemon reads the
// policies from /etc/fstab and configures the Protego LSM through a file
// in /proc").
const (
	ProcDir        = "/proc/protego"
	ProcMounts     = ProcDir + "/mounts"
	ProcBind       = ProcDir + "/bind"
	ProcDelegation = ProcDir + "/delegation"
	ProcPPP        = ProcDir + "/ppp"
	ProcStatus     = ProcDir + "/status"
)

// setupProc creates the /proc/protego files. They are root-owned mode 0600:
// only the administrator (or the trusted monitoring daemon) may configure
// policy.
func (m *Module) setupProc() error {
	if err := m.k.FS.MkdirAll(vfs.RootCred, ProcDir, 0o555, 0, 0); err != nil {
		return err
	}
	type procFile struct {
		path  string
		read  vfs.ProcReadFunc
		write vfs.ProcWriteFunc
	}
	files := []procFile{
		{ProcMounts, m.readMounts, m.writeMounts},
		{ProcBind, m.readBind, m.writeBind},
		{ProcDelegation, m.readDelegation, m.writeDelegation},
		{ProcPPP, m.readPPP, m.writePPP},
		{ProcStatus, m.readStatus, nil},
	}
	for _, f := range files {
		mode := vfs.Mode(0o600)
		if f.write == nil {
			mode = 0o444
		}
		if err := m.k.RegisterProcFile(f.path, mode, f.read, f.write); err != nil {
			return err
		}
	}
	return nil
}

func requireRoot(c vfs.Cred) error {
	if c.FSUID() != 0 {
		return errno.EPERM
	}
	return nil
}

func (m *Module) readMounts(vfs.Cred) ([]byte, error) {
	var b strings.Builder
	for _, r := range m.MountRules() {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

// writeMounts accepts the grammar:
//
//	add <device> <mountpoint> <fstype> <options|-> <user|users>
//	del <device> <mountpoint>
//	clear
//
// The batch is staged against a copy of the whitelist and swapped in only
// if every command parses: a failure halfway through the usual
// "clear\nadd…" reload must never leave the kernel with a
// partially-applied (possibly empty) whitelist.
func (m *Module) writeMounts(c vfs.Cred, data []byte) error {
	if err := requireRoot(c); err != nil {
		return err
	}
	cmds, err := policy.ParseProcCommands(data)
	if err != nil {
		return errno.EINVAL
	}
	staged := m.MountRules()
	for _, cmd := range cmds {
		switch cmd.Verb {
		case "add":
			rule, err := parseMountRuleArgs(cmd.Args)
			if err != nil {
				return err
			}
			staged = append(staged, rule)
		case "del":
			if len(cmd.Args) != 2 {
				return errno.EINVAL
			}
			dev, point := cmd.Args[0], vfs.CleanPath(cmd.Args[1], "/")
			kept := staged[:0]
			for _, r := range staged {
				if !(r.Device == dev && r.MountPoint == point) {
					kept = append(kept, r)
				}
			}
			staged = kept
		case "clear":
			staged = staged[:0]
		}
	}
	m.SetMountRules(staged)
	return nil
}

func (m *Module) readBind(vfs.Cred) ([]byte, error) {
	return []byte(strings.Join(m.BindAllocations(), "\n") + "\n"), nil
}

// writeBind accepts:
//
//	add <port> <tcp|udp> <binary> <uid>
//	del <port> <tcp|udp>
//	clear
//
// Like writeMounts, the batch is staged against a copy of the allocation
// table and swapped in only when every command parses.
func (m *Module) writeBind(c vfs.Cred, data []byte) error {
	if err := requireRoot(c); err != nil {
		return err
	}
	cmds, err := policy.ParseProcCommands(data)
	if err != nil {
		return errno.EINVAL
	}
	m.mu.RLock()
	staged := make(map[bindKey]BindTarget, len(m.bindTable))
	for k, v := range m.bindTable {
		staged[k] = v
	}
	m.mu.RUnlock()
	for _, cmd := range cmds {
		switch cmd.Verb {
		case "add":
			key, target, err := parseBindArgs(cmd.Args)
			if err != nil {
				return err
			}
			staged[key] = target
		case "del":
			if len(cmd.Args) != 2 {
				return errno.EINVAL
			}
			key, _, err := parseBindArgs(append(cmd.Args, "/", "0"))
			if err != nil {
				return err
			}
			delete(staged, key)
		case "clear":
			staged = make(map[bindKey]BindTarget)
		}
	}
	m.mu.Lock()
	m.bindTable = staged
	m.mu.Unlock()
	return nil
}

func (m *Module) readDelegation(vfs.Cred) ([]byte, error) {
	s := m.Sudoers()
	if s == nil {
		return []byte("# no delegation policy loaded\n"), nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %d rules, timeout %s\n", len(s.Rules), s.TimestampTimeout)
	for i := range s.Rules {
		r := &s.Rules[i]
		tag := ""
		if r.NoPasswd {
			tag = "NOPASSWD: "
		}
		fmt.Fprintf(&b, "%s %s = (%s) %s%s\n", r.User, r.Host,
			strings.Join(r.RunAs, ","), tag, strings.Join(r.Commands, ", "))
	}
	return []byte(b.String()), nil
}

// writeDelegation replaces the delegation policy with the sudoers-format
// text written to the file (the paper: "an /etc/sudoers-like syntax for
// delegation").
func (m *Module) writeDelegation(c vfs.Cred, data []byte) error {
	if err := requireRoot(c); err != nil {
		return err
	}
	s, err := policy.ParseSudoers(string(data))
	if err != nil {
		return errno.EINVAL
	}
	m.SetSudoers(s)
	return nil
}

func (m *Module) readPPP(vfs.Cred) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var b strings.Builder
	if m.ppp != nil {
		for _, p := range m.ppp.SafeParams {
			fmt.Fprintf(&b, "safe-param %s\n", p)
		}
		if m.ppp.AllowUserRoutes {
			b.WriteString("user-routes\n")
		}
		for _, d := range m.ppp.Devices {
			fmt.Fprintf(&b, "device %s\n", d)
		}
	}
	return []byte(b.String()), nil
}

// writePPP replaces the PPP policy with /etc/ppp/options-format text.
func (m *Module) writePPP(c vfs.Cred, data []byte) error {
	if err := requireRoot(c); err != nil {
		return err
	}
	o, err := policy.ParsePPPOptions(string(data))
	if err != nil {
		return errno.EINVAL
	}
	m.SetPPP(o)
	return nil
}

func (m *Module) readStatus(vfs.Cred) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var b strings.Builder
	b.WriteString("protego: enabled\n")
	fmt.Fprintf(&b, "mount-whitelist-entries: %d\n", len(m.mounts))
	fmt.Fprintf(&b, "bind-allocations: %d\n", len(m.bindTable))
	rules := 0
	if m.sudoers != nil {
		rules = len(m.sudoers.Rules)
	}
	fmt.Fprintf(&b, "delegation-rules: %d\n", rules)
	fmt.Fprintf(&b, "allow-unpriv-raw: %v\n", m.allowUnprivRaw)
	st := m.Stats.Snapshot()
	fmt.Fprintf(&b, "stats: mount-grants=%d mount-denials=%d bind-grants=%d bind-denials=%d setuid-grants=%d setuid-defers=%d setuid-denials=%d raw-grants=%d route-grants=%d route-denials=%d\n",
		st.MountGrants, st.MountDenials, st.BindGrants, st.BindDenials,
		st.SetuidGrants, st.SetuidDefers, st.SetuidDenials,
		st.RawSockGrants, st.RouteGrants, st.RouteDenials)
	return []byte(b.String()), nil
}
