package core

import (
	"protego/internal/errno"
	"protego/internal/kernel"
	"protego/internal/lsm"
	"protego/internal/netstack"
)

// SocketCreate grants raw and packet sockets to unprivileged tasks
// (§4.1.1). The kernel tags granted sockets as unprivileged-raw, so every
// packet they emit traverses the netfilter OUTPUT rules installed by
// Install — benign ICMP passes, spoofed or fabricated TCP/UDP is dropped.
// This is strictly stronger than the baseline: on Linux a compromised ping
// (running with CAP_NET_RAW) can spoof packets from other sockets; on
// Protego it cannot.
func (m *Module) SocketCreate(t lsm.Task, req *lsm.SocketRequest) (lsm.Decision, error) {
	raw := req.Type == netstack.SOCK_RAW || req.Family == netstack.AF_PACKET
	if !raw || t.Capable(capNetRaw) {
		return lsm.NoOpinion, nil
	}
	m.mu.RLock()
	allow := m.allowUnprivRaw
	m.mu.RUnlock()
	if !allow {
		return lsm.NoOpinion, nil
	}
	req.MarkUnprivRaw = true
	m.bumpStat(&m.Stats.RawSockGrants)
	return lsm.Grant, nil
}

// IoctlCheck mediates the privileged device ioctls of Table 4:
//
//   - route additions (SIOCADDRT): granted to unprivileged tasks when the
//     administrator enabled user routes in /etc/ppp/options AND the new
//     route does not conflict with any existing route (§4.1.2);
//   - route deletions: granted only for routes the same user created;
//   - modem session parameters (PPPIOCSPARAM): granted for parameters the
//     ppp policy marks safe (compression, congestion control, ...);
//   - modem attach (PPPIOCATTACH): granted for whitelisted devices that
//     are not in use by another user;
//   - dmcrypt metadata (DMGETINFO): never granted — the ioctl discloses
//     key material, so Protego abandons it for a /sys file that exposes
//     only the physical device (the interface-design fix of §4);
//   - video mode setting (VIDIOCSMODE): granted, because with KMS the
//     kernel owns video state context switching (§4.5) and drawing needs
//     no privilege.
func (m *Module) IoctlCheck(t lsm.Task, req *lsm.IoctlRequest) (lsm.Decision, error) {
	switch req.Cmd {
	case kernel.SIOCADDRT:
		return m.checkRouteAdd(t, req)
	case kernel.SIOCDELRT:
		return m.checkRouteDel(t, req)
	case kernel.PPPIOCSPARAM:
		return m.checkPPPParam(t, req)
	case kernel.PPPIOCATTACH:
		return m.checkPPPAttach(t, req)
	case kernel.PPPIOCDETACH:
		return lsm.Grant, nil // detaching your own session is harmless
	case kernel.DMGETINFO:
		// Root-only forever; unprivileged readers use /sys.
		return lsm.NoOpinion, nil
	case kernel.VIDIOCSMODE:
		return lsm.Grant, nil
	default:
		return lsm.NoOpinion, nil
	}
}

func (m *Module) checkRouteAdd(t lsm.Task, req *lsm.IoctlRequest) (lsm.Decision, error) {
	if t.Capable(capNetAdmin) {
		return lsm.NoOpinion, nil
	}
	m.mu.RLock()
	allowed := m.ppp != nil && m.ppp.AllowUserRoutes
	m.mu.RUnlock()
	if !allowed {
		return lsm.NoOpinion, nil
	}
	route, ok := req.Arg.(netstack.Route)
	if !ok {
		return lsm.Deny, errno.EINVAL
	}
	// The route-integrity check: a new unprivileged route must not
	// conflict with (overlap) any existing route.
	if m.k.Net.RouteConflicts(route) {
		m.bumpStat(&m.Stats.RouteDenials)
		return lsm.Deny, errno.EPERM
	}
	m.bumpStat(&m.Stats.RouteGrants)
	return lsm.Grant, nil
}

func (m *Module) checkRouteDel(t lsm.Task, req *lsm.IoctlRequest) (lsm.Decision, error) {
	if t.Capable(capNetAdmin) {
		return lsm.NoOpinion, nil
	}
	want, ok := req.Arg.(netstack.Route)
	if !ok {
		return lsm.Deny, errno.EINVAL
	}
	for _, r := range m.k.Net.Routes() {
		if r.Dest == want.Dest && r.PrefixLen == want.PrefixLen {
			if r.CreatedBy == t.UID() && r.CreatedBy != 0 {
				return lsm.Grant, nil
			}
			return lsm.NoOpinion, nil
		}
	}
	return lsm.NoOpinion, nil
}

func (m *Module) checkPPPParam(t lsm.Task, req *lsm.IoctlRequest) (lsm.Decision, error) {
	if t.Capable(capNetAdmin) {
		return lsm.NoOpinion, nil
	}
	kv, ok := req.Arg.([2]string)
	if !ok {
		return lsm.Deny, errno.EINVAL
	}
	m.mu.RLock()
	safe := m.ppp != nil && m.ppp.ParamSafe(kv[0])
	m.mu.RUnlock()
	if safe {
		return lsm.Grant, nil
	}
	return lsm.NoOpinion, nil
}

func (m *Module) checkPPPAttach(t lsm.Task, req *lsm.IoctlRequest) (lsm.Decision, error) {
	if t.Capable(capNetAdmin) {
		return lsm.NoOpinion, nil
	}
	m.mu.RLock()
	allowed := m.ppp != nil && m.ppp.DeviceAllowed(req.Path)
	m.mu.RUnlock()
	if !allowed {
		return lsm.NoOpinion, nil
	}
	// A modem already in use by a different user may not be reconfigured
	// ("a user may configure a modem (if not in use)").
	name, ok := req.Arg.(string)
	if !ok {
		return lsm.Deny, errno.EINVAL
	}
	iface := m.k.Net.Iface(name)
	if iface != nil && iface.InUse && iface.Owner != t.UID() {
		return lsm.Deny, errno.EBUSY
	}
	return lsm.Grant, nil
}
