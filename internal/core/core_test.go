package core_test

import (
	"strings"
	"testing"
	"time"

	"protego/internal/core"
	"protego/internal/errno"
	"protego/internal/kernel"
	"protego/internal/netstack"
	"protego/internal/policy"
	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

func protegoMachine(t *testing.T) *world.Machine {
	t.Helper()
	m, err := world.BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func session(t *testing.T, m *world.Machine, user string) *kernel.Task {
	t.Helper()
	s, err := m.Session(user)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// --- mount whitelist ---

func TestMountRulesFromFstab(t *testing.T) {
	entries, err := policy.ParseFstab(`
/dev/sda1  /           ext4    defaults        0 1
/dev/cdrom /cdrom      iso9660 ro,user,noauto  0 0
/dev/sdb1  /media/usb  vfat    rw,users        0 0
`)
	if err != nil {
		t.Fatal(err)
	}
	rules := core.MountRulesFromFstab(entries)
	if len(rules) != 2 {
		t.Fatalf("rules = %d (root fs must be excluded)", len(rules))
	}
	var cdrom, usb *core.MountRule
	for i := range rules {
		switch rules[i].MountPoint {
		case "/cdrom":
			cdrom = &rules[i]
		case "/media/usb":
			usb = &rules[i]
		}
	}
	if cdrom == nil || usb == nil {
		t.Fatalf("rules: %+v", rules)
	}
	if cdrom.AnyUserUnmount {
		t.Fatal("'user' entry marked users")
	}
	if !usb.AnyUserUnmount {
		t.Fatal("'users' entry not marked")
	}
}

func TestMountWhitelistMatching(t *testing.T) {
	m := protegoMachine(t)
	alice := session(t, m, "alice")
	// fstype "auto" on the request side matches a typed rule.
	if err := m.K.Mount(alice, "/dev/cdrom", "/cdrom", "auto", []string{"ro"}); err != nil {
		t.Fatalf("auto fstype: %v", err)
	}
	if err := m.K.Umount(alice, "/cdrom"); err != nil {
		t.Fatal(err)
	}
	// Wrong fstype is refused.
	if err := m.K.Mount(alice, "/dev/cdrom", "/cdrom", "ext4", nil); err != errno.EPERM {
		t.Fatalf("wrong fstype: %v", err)
	}
	// Wrong mountpoint is refused.
	if err := m.K.Mount(alice, "/dev/cdrom", "/tmp", "iso9660", nil); err != errno.EPERM {
		t.Fatalf("wrong point: %v", err)
	}
	// Wrong device is refused.
	if err := m.K.Mount(alice, "/dev/sdc1", "/cdrom", "iso9660", nil); err != errno.EPERM {
		t.Fatalf("wrong device: %v", err)
	}
	if m.Protego.Stats.MountDenials.Load() == 0 {
		t.Fatal("denials not counted")
	}
}

func TestMountRuleString(t *testing.T) {
	r := core.MountRule{Device: "/dev/cdrom", MountPoint: "/cdrom", FSType: "iso9660",
		Options: []string{"ro"}, AnyUserUnmount: false}
	if r.String() != "/dev/cdrom /cdrom iso9660 ro user" {
		t.Fatalf("string: %q", r.String())
	}
	r.Options = nil
	r.AnyUserUnmount = true
	if r.String() != "/dev/cdrom /cdrom iso9660 - users" {
		t.Fatalf("string: %q", r.String())
	}
}

// --- /proc interface ---

func procWrite(t *testing.T, m *world.Machine, path, data string) error {
	t.Helper()
	ino, err := m.K.FS.Lookup(vfs.RootCred, path)
	if err != nil {
		t.Fatal(err)
	}
	return ino.WriteFn(vfs.RootCred, []byte(data))
}

func TestProcMountsGrammar(t *testing.T) {
	m := protegoMachine(t)
	if err := procWrite(t, m, core.ProcMounts, "clear\nadd /dev/z /mnt auto - users\n"); err != nil {
		t.Fatal(err)
	}
	rules := m.Protego.MountRules()
	if len(rules) != 1 || rules[0].Device != "/dev/z" || !rules[0].AnyUserUnmount {
		t.Fatalf("rules: %+v", rules)
	}
	if err := procWrite(t, m, core.ProcMounts, "del /dev/z /mnt\n"); err != nil {
		t.Fatal(err)
	}
	if len(m.Protego.MountRules()) != 0 {
		t.Fatal("del failed")
	}
	// Bad grammar is rejected.
	for _, bad := range []string{"add /dev/z /mnt auto -", "add /dev/z /mnt auto - wat", "explode"} {
		if err := procWrite(t, m, core.ProcMounts, bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	// Reads render the current rules.
	data, err := m.K.FS.ReadFile(vfs.RootCred, core.ProcMounts)
	if err != nil {
		t.Fatal(err)
	}
	_ = data
}

func TestProcBindGrammar(t *testing.T) {
	m := protegoMachine(t)
	if err := procWrite(t, m, core.ProcBind, "clear\nadd 99 tcp /bin/thing 1000\n"); err != nil {
		t.Fatal(err)
	}
	allocs := m.Protego.BindAllocations()
	if len(allocs) != 1 || allocs[0] != "99 tcp /bin/thing 1000" {
		t.Fatalf("allocs: %v", allocs)
	}
	if err := procWrite(t, m, core.ProcBind, "del 99 tcp\n"); err != nil {
		t.Fatal(err)
	}
	if len(m.Protego.BindAllocations()) != 0 {
		t.Fatal("del failed")
	}
	for _, bad := range []string{"add 0 tcp /b 1", "add 2000 tcp /b 1", "add 99 sctp /b 1", "add 99 tcp /b x"} {
		if err := procWrite(t, m, core.ProcBind, bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestProcDelegationRoundTrip(t *testing.T) {
	m := protegoMachine(t)
	if err := procWrite(t, m, core.ProcDelegation, "dave ALL = (root) NOPASSWD: /bin/ls\n"); err != nil {
		t.Fatal(err)
	}
	s := m.Protego.Sudoers()
	if len(s.Rules) != 1 || s.Rules[0].User != "dave" {
		t.Fatalf("rules: %+v", s.Rules)
	}
	data, err := m.K.FS.ReadFile(vfs.RootCred, core.ProcDelegation)
	if err != nil || !strings.Contains(string(data), "dave") {
		t.Fatalf("read: %q %v", data, err)
	}
	if err := procWrite(t, m, core.ProcDelegation, "broken ="); err == nil {
		t.Fatal("bad sudoers accepted")
	}
}

func TestProcWritesRequireRoot(t *testing.T) {
	m := protegoMachine(t)
	alice := session(t, m, "alice")
	// DAC already blocks (0600 root), so go through the kernel path.
	if err := m.K.WriteFile(alice, core.ProcMounts, []byte("clear")); err == nil {
		t.Fatal("unprivileged policy write accepted")
	}
}

func TestProcStatus(t *testing.T) {
	m := protegoMachine(t)
	data, err := m.K.FS.ReadFile(vfs.RootCred, core.ProcStatus)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protego: enabled", "mount-whitelist-entries: 2", "delegation-rules:"} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("status missing %q: %s", want, data)
		}
	}
}

func TestProcPPPRoundTrip(t *testing.T) {
	m := protegoMachine(t)
	if err := procWrite(t, m, core.ProcPPP, "device /dev/ppp\nuser-routes\nsafe-param foo\n"); err != nil {
		t.Fatal(err)
	}
	data, err := m.K.FS.ReadFile(vfs.RootCred, core.ProcPPP)
	if err != nil || !strings.Contains(string(data), "safe-param foo") || !strings.Contains(string(data), "user-routes") {
		t.Fatalf("ppp read: %q %v", data, err)
	}
}

// --- raw sockets (referenced by the Table 4 catalog) ---

func TestRawSocketFiltering(t *testing.T) {
	m := protegoMachine(t)
	alice := session(t, m, "alice")
	sock, err := m.K.Socket(alice, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP)
	if err != nil {
		t.Fatal(err)
	}
	// Benign ICMP passes.
	echo := &netstack.Packet{Dst: m.K.Net.HostIP(), Proto: netstack.IPPROTO_ICMP,
		ICMPType: netstack.ICMPEchoRequest, Payload: []byte("hi")}
	if err := m.K.SendTo(alice, sock, echo); err != nil {
		t.Fatalf("icmp: %v", err)
	}
	// Fabricated TCP is dropped.
	forged := &netstack.Packet{Dst: m.K.Net.HostIP(), Proto: netstack.IPPROTO_TCP,
		SrcPort: 12345, DstPort: 80}
	if err := m.K.SendTo(alice, sock, forged); err != errno.EPERM {
		t.Fatalf("forged tcp: %v", err)
	}
	// Spoofing another socket's endpoint is dropped even for root's raw
	// sockets.
	root := session(t, m, "root")
	victim, err := m.K.Socket(alice, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.K.Bind(alice, victim, 8080); err != nil {
		t.Fatal(err)
	}
	rootRaw, err := m.K.Socket(root, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_RAW)
	if err != nil {
		t.Fatal(err)
	}
	spoof := &netstack.Packet{Dst: m.K.Net.HostIP(), Proto: netstack.IPPROTO_TCP,
		SrcPort: 8080, DstPort: 99}
	if err := m.K.SendTo(root, rootRaw, spoof); err != errno.EPERM {
		t.Fatalf("spoofed from root raw: %v", err)
	}
}

func TestRawSocketAblationToggle(t *testing.T) {
	m := protegoMachine(t)
	m.Protego.SetAllowUnprivRaw(false)
	alice := session(t, m, "alice")
	if _, err := m.K.Socket(alice, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP); err != errno.EPERM {
		t.Fatalf("toggle ignored: %v", err)
	}
}

// --- delegation internals ---

func TestPendingSetuidLifecycle(t *testing.T) {
	m := protegoMachine(t)
	charlie := session(t, m, "charlie") // %wheel NOPASSWD: /bin/ls
	if err := m.K.Setuid(charlie, 0); err != nil {
		t.Fatalf("deferred setuid: %v", err)
	}
	if uid, ok := core.PendingSetuid(charlie); !ok || uid != 0 {
		t.Fatalf("pending: %d %v", uid, ok)
	}
	// Creds unchanged until exec.
	if charlie.EUID() != world.UIDCharlie {
		t.Fatal("privilege before exec")
	}
	// Exec of the whitelisted command applies the pending transition.
	var sawRoot bool
	probe := "/bin/probe-pending"
	m.K.RegisterBinary(probe, func(k *kernel.Kernel, t *kernel.Task) int {
		sawRoot = t.EUID() == 0
		return 0
	})
	if err := m.K.FS.WriteFile(vfs.RootCred, probe, []byte("ELF"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	// probe is NOT whitelisted: exec must fail with EPERM (no terminal
	// for the su fallback).
	if _, err := m.K.Exec(charlie, probe, []string{probe}, nil); err != errno.EPERM {
		t.Fatalf("non-whitelisted exec: %v", err)
	}
	if _, ok := core.PendingSetuid(charlie); ok {
		t.Fatal("pending survived failed exec")
	}
	// A fresh deferred transition followed by the whitelisted command.
	if err := m.K.Setuid(charlie, 0); err != nil {
		t.Fatal(err)
	}
	code, err := m.K.Exec(charlie, "/bin/ls", []string{"/bin/ls", "/tmp"}, nil)
	if err != nil || code != 0 {
		t.Fatalf("whitelisted exec: code=%d err=%v", code, err)
	}
	_ = sawRoot
}

func TestEnvSanitizedAcrossDeferredTransition(t *testing.T) {
	m := protegoMachine(t)
	charlie := session(t, m, "charlie")
	charlie.Setenv("LD_PRELOAD", "/tmp/evil.so")
	charlie.Setenv("TERM", "vt100")
	var env map[string]string
	// /bin/ls is whitelisted; observe its environment via a wrapper.
	m.K.RegisterBinary("/bin/ls", func(k *kernel.Kernel, t *kernel.Task) int {
		env = t.Env()
		return 0
	})
	if err := m.K.Setuid(charlie, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.K.Exec(charlie, "/bin/ls", []string{"/bin/ls"}, copyEnv(charlie.Env())); err != nil {
		t.Fatal(err)
	}
	if env["LD_PRELOAD"] != "" {
		t.Fatal("LD_PRELOAD crossed the transition")
	}
	if env["TERM"] != "vt100" {
		t.Fatal("env_keep variable lost")
	}
}

func copyEnv(in map[string]string) map[string]string {
	out := make(map[string]string, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// --- recency ---

func TestRecencyExpiryForcesReauth(t *testing.T) {
	m := protegoMachine(t)
	now := time.Now()
	m.Auth.SetClock(func() time.Time { return now })
	alice := session(t, m, "alice")
	prompts := 0
	alice.Asker = func(string) string { prompts++; return world.AlicePassword }
	if err := m.K.Setuid(alice, 0); err != nil {
		t.Fatal(err)
	}
	if prompts != 1 {
		t.Fatalf("prompts = %d", prompts)
	}
	// Do it again within the window from a fresh fork: stamp inherited.
	fresh := m.K.Fork(alice)
	fresh.SetUserCreds(kernel.UserCreds(world.UIDAlice, world.GIDUsers, world.GIDWheel, world.GIDOps))
	if err := m.K.Setuid(fresh, 0); err != nil {
		t.Fatal(err)
	}
	if prompts != 1 {
		t.Fatalf("re-prompted within window: %d", prompts)
	}
	// After the window, authentication is demanded again.
	now = now.Add(6 * time.Minute)
	again := m.K.Fork(alice)
	again.SetUserCreds(kernel.UserCreds(world.UIDAlice, world.GIDUsers, world.GIDWheel, world.GIDOps))
	if err := m.K.Setuid(again, 0); err != nil {
		t.Fatal(err)
	}
	if prompts != 2 {
		t.Fatalf("expiry ignored: prompts = %d", prompts)
	}
}

// --- identity cache ---

func TestIdentityCacheInvalidation(t *testing.T) {
	m := protegoMachine(t)
	if groups, ok := m.Protego.ResolveGroups(world.UIDAlice); !ok || len(groups) != 2 {
		t.Fatalf("alice groups: %v %v", groups, ok)
	}
	// Add dave behind the cache's back.
	data, _ := m.K.FS.ReadFile(vfs.RootCred, "/etc/passwd")
	updated := string(data) + "dave:x:1003:100:Dave:/home/dave:/bin/sh\n"
	if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/passwd", []byte(updated), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Protego.ResolveGroups(1003); ok {
		t.Fatal("stale cache resolved unknown uid")
	}
	m.Protego.InvalidateIdentity()
	if _, ok := m.Protego.ResolveGroups(1003); !ok {
		t.Fatal("invalidation did not refresh")
	}
}

// --- file grants ---

func TestFileGrantOnlyForWhitelistedBinary(t *testing.T) {
	m := protegoMachine(t)
	alice := session(t, m, "alice")
	// Reading the host key via the ssh-keysign binary works (world test
	// covers it); directly it must not, nor may another binary gain
	// write access.
	if _, err := m.K.ReadFile(alice, userspace.HostKeyPath); err == nil {
		t.Fatal("direct host key read")
	}
	if err := m.K.WriteFile(alice, userspace.HostKeyPath, []byte("evil")); err == nil {
		t.Fatal("host key write")
	}
}

// --- Table 4 catalog ---

func TestCatalogWellFormed(t *testing.T) {
	if len(core.Catalog) != 10 {
		t.Fatalf("catalog rows = %d, want 10 (Table 4)", len(core.Catalog))
	}
	for _, e := range core.Catalog {
		if e.Interface == "" || e.KernelPolicy == "" || e.SystemPolicy == "" || e.Approach == "" {
			t.Errorf("incomplete row: %+v", e)
		}
		if len(e.UsedBy) == 0 {
			t.Errorf("%s: no users", e.Interface)
		}
	}
	out := core.FormatCatalog()
	if !strings.Contains(out, "mount, umount") || !strings.Contains(out, "KMS") {
		t.Fatalf("render: %.200q", out)
	}
}
