package core

import (
	"sync"
)

// identityCache memoizes uid→username and username→groups lookups so that
// hot-path policy checks (setuid, bind) do not reparse /etc/passwd on every
// system call. The monitoring daemon invalidates it when the account
// databases change; it also refreshes lazily on miss.
type identityCache struct {
	mu      sync.RWMutex
	uidName map[int]string
	nameUID map[string]int
	groups  map[string][]string // username -> group names
	valid   bool
}

// InvalidateIdentity drops the cached uid/name/groups mappings; the next
// lookup reloads from the databases.
func (m *Module) InvalidateIdentity() {
	m.identity.mu.Lock()
	m.identity.valid = false
	m.identity.mu.Unlock()
}

func (m *Module) refreshIdentityLocked() {
	c := &m.identity
	c.uidName = make(map[int]string)
	c.nameUID = make(map[string]int)
	c.groups = make(map[string][]string)
	users, err := m.db.Users()
	if err != nil {
		c.valid = true // negative cache until invalidated
		return
	}
	for i := range users {
		c.uidName[users[i].UID] = users[i].Name
		c.nameUID[users[i].Name] = users[i].UID
	}
	for i := range users {
		names, err := m.db.GroupNamesOf(users[i].Name)
		if err == nil {
			c.groups[users[i].Name] = names
		}
	}
	c.valid = true
}

// userName resolves a uid to a username ("" if unknown).
func (m *Module) userName(uid int) string {
	c := &m.identity
	c.mu.RLock()
	if c.valid {
		name := c.uidName[uid]
		c.mu.RUnlock()
		return name
	}
	c.mu.RUnlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.valid {
		m.refreshIdentityLocked()
	}
	return c.uidName[uid]
}

// ResolveGroups implements lsm.GroupResolver: the supplementary group ids
// of a uid, consulted by the kernel when it applies a granted credential
// transition.
func (m *Module) ResolveGroups(uid int) ([]int, bool) {
	name := m.userName(uid)
	if name == "" {
		return nil, false
	}
	groups, err := m.db.GroupIDsOf(name)
	if err != nil {
		return nil, false
	}
	return groups, true
}

// userGroups returns the group names of a username.
func (m *Module) userGroups(name string) []string {
	c := &m.identity
	c.mu.RLock()
	if c.valid {
		gs := c.groups[name]
		c.mu.RUnlock()
		return gs
	}
	c.mu.RUnlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.valid {
		m.refreshIdentityLocked()
	}
	return c.groups[name]
}
