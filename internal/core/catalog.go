package core

import (
	"fmt"
	"strings"
)

// CatalogEntry is one row of the paper's Table 4: a system abstraction
// whose kernel policy was mismatched to the system policy, forcing a
// setuid-to-root point solution — and Protego's approach to unifying them.
// Every row is backed by executable checks in this repository; Validation
// names the test functions demonstrating the row's behaviour.
type CatalogEntry struct {
	Interface       string
	UsedBy          []string
	KernelPolicy    string
	SystemPolicy    string
	SecurityConcern string
	Approach        string
	Validation      []string
}

// Catalog is Table 4.
var Catalog = []CatalogEntry{
	{
		Interface:       "socket",
		UsedBy:          []string{"ping", "ping6", "arping", "mtr", "traceroute6", "iputils"},
		KernelPolicy:    "Creating raw or packet sockets requires CAP_NET_RAW.",
		SystemPolicy:    "Users may send and receive safe, non TCP/UDP packets, such as ICMP.",
		SecurityConcern: "Raw sockets allow sending both benign packets (e.g., ICMP) and packets that appear to come from sockets owned by another process.",
		Approach:        "Allow any user to create a raw or packet socket, but outgoing packets are subject to firewall rules that filter unsafe packets.",
		Validation:      []string{"world.TestPing", "world.TestRawSocketDirectProtego", "core.TestRawSocketFiltering"},
	},
	{
		Interface:       "ioctl (ppp)",
		UsedBy:          []string{"pppd"},
		KernelPolicy:    "Only the administrator may configure modem hardware or modify routing tables.",
		SystemPolicy:    "A user may configure a modem (if not in use) and add routes that don't conflict with existing routes.",
		SecurityConcern: "Protect the integrity of routes for unrelated applications.",
		Approach:        "Add LSM hooks that verify routes do not conflict with old rules when requested by non-root users.",
		Validation:      []string{"world.TestPppdSafeSession", "world.TestPppdConflictingRouteDenied", "world.TestPppdModemInUseDenied"},
	},
	{
		Interface:       "ioctl (dmcrypt)",
		UsedBy:          []string{"dmcrypt-get-device"},
		KernelPolicy:    "Require CAP_SYS_ADMIN to read dmcrypt metadata.",
		SystemPolicy:    "Any user may read the public portion of dmcrypt metadata (e.g., device set).",
		SecurityConcern: "The same ioctl discloses both the physical devices and the encryption keys.",
		Approach:        "Abandon this ioctl for a /sys file that only discloses the physical devices.",
		Validation:      []string{"world.TestDmcryptGetDevice", "world.TestDmcryptIoctlStillPrivilegedOnProtego"},
	},
	{
		Interface:       "bind",
		UsedBy:          []string{"procmail", "sensible-mda", "exim4"},
		KernelPolicy:    "Require CAP_NET_BIND_SERVICE to bind to ports < 1024.",
		SystemPolicy:    "Mail server should generally run without root privilege.",
		SecurityConcern: "Prevent untrustworthy applications from running on well-known ports.",
		Approach:        "System policies allocating low-numbered ports to specific (binary, userid) pairs.",
		Validation:      []string{"world.TestEximBindsAllocatedPort", "world.TestBindAllocationExclusive"},
	},
	{
		Interface:       "mount, umount",
		UsedBy:          []string{"fusermount", "mount", "umount"},
		KernelPolicy:    "Mounting or unmounting a file system requires CAP_SYS_ADMIN.",
		SystemPolicy:    "Any user may mount or unmount entries in /etc/fstab with the user(s) option.",
		SecurityConcern: "Protect the integrity of trusted directories (e.g., /etc, /lib).",
		Approach:        "Add LSM hooks that permit anyone to mount a white-listed file system with safe locations and options.",
		Validation:      []string{"world.TestUserMountWhitelisted", "world.TestUserMountNonWhitelistedDenied", "world.TestUmountPolicy"},
	},
	{
		Interface:       "setuid, setgid",
		UsedBy:          []string{"polkit-agent-helper-1", "sudo", "pkexec", "dbus-daemon-launch-helper", "su", "sudoedit", "newgrp"},
		KernelPolicy:    "Only allowed with CAP_SETUID.",
		SystemPolicy:    "Permit delegation of commands as configured by administrator, in some cases requiring recent reauthentication.",
		SecurityConcern: "Require authentication and authorization to execute as another user.",
		Approach:        "Add LSM hooks that check delegation rules encoded in files like /etc/sudoers, and a kernel abstraction for recency.",
		Validation:      []string{"world.TestSudoToRootWithPassword", "world.TestSudoNoPasswdRestrictedCommand", "world.TestSuWithTargetPassword", "world.TestNewgrpPasswordProtectedGroup"},
	},
	{
		Interface:       "credential databases",
		UsedBy:          []string{"chfn", "chsh", "gpasswd", "lppasswd", "passwd"},
		KernelPolicy:    "Only root can modify these files (or read /etc/shadow).",
		SystemPolicy:    "A user may change her own entry to update password, shell, etc.",
		SecurityConcern: "Prevent users from accessing or modifying each other's accounts.",
		Approach:        "Fragment the database to per-user or per-group configuration files, matching DAC granularity.",
		Validation:      []string{"world.TestPasswdChangeAndLogin", "world.TestChshOwnShell", "world.TestProtegoFragmentIsolation"},
	},
	{
		Interface:       "host private ssh key",
		UsedBy:          []string{"ssh-keysign"},
		KernelPolicy:    "Only root may read the key (FS permissions).",
		SystemPolicy:    "Allow non-root users to sign their public key with the host key (disabled by default).",
		SecurityConcern: "A user should be able to acquire a host key signature without copying the host key.",
		Approach:        "Restrict file access to specific binaries instead of, or in addition to, user IDs.",
		Validation:      []string{"world.TestSSHKeysign", "world.TestHostKeyUnreadableByOtherBinaries"},
	},
	{
		Interface:       "video driver control state",
		UsedBy:          []string{"X"},
		KernelPolicy:    "Root must set the video card control state, required by older drivers.",
		SystemPolicy:    "Any user may start an X server.",
		SecurityConcern: "An untrustworthy application could misconfigure another application's video state.",
		Approach:        "Linux now context switches video devices in the kernel, called KMS.",
		Validation:      []string{"world.TestXserver"},
	},
	{
		Interface:       "/dev/pts* terminal slaves",
		UsedBy:          []string{"pt_chown"},
		KernelPolicy:    "Root must allocate pts slaves on pre-2.1 kernels.",
		SystemPolicy:    "Users may create terminal sessions.",
		SecurityConcern: "This utility has been obviated for 17 years, but is still shipped.",
		Approach:        "Ignore.",
		Validation:      nil,
	},
}

// FormatCatalog renders Table 4 as text.
func FormatCatalog() string {
	var b strings.Builder
	b.WriteString("Table 4: System abstractions used by commonly installed setuid utilities\n\n")
	for i := range Catalog {
		e := &Catalog[i]
		fmt.Fprintf(&b, "Interface:  %s\n", e.Interface)
		fmt.Fprintf(&b, "  Used by:          %s\n", strings.Join(e.UsedBy, ", "))
		fmt.Fprintf(&b, "  Kernel policy:    %s\n", e.KernelPolicy)
		fmt.Fprintf(&b, "  System policy:    %s\n", e.SystemPolicy)
		fmt.Fprintf(&b, "  Security concern: %s\n", e.SecurityConcern)
		fmt.Fprintf(&b, "  Protego approach: %s\n", e.Approach)
		if len(e.Validation) > 0 {
			fmt.Fprintf(&b, "  Validated by:     %s\n", strings.Join(e.Validation, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
