// Package core implements the Protego LSM — the paper's primary
// contribution. It migrates the policies historically encoded in
// setuid-to-root binaries into the (simulated) kernel:
//
//   - a user-mount whitelist synchronized from /etc/fstab (§4.2, Figure 1)
//   - a privileged-port allocation table from /etc/bind (§4.1.3)
//   - delegation rules from /etc/sudoers with authentication recency and
//     deferred setuid-on-exec (§4.3)
//   - unprivileged raw sockets subject to netfilter rules (§4.1.1)
//   - PPP route/modem policies with route-conflict checking (§4.1.2)
//   - per-account credential files and trusted-binary file grants (§4.4)
//
// The module exposes /proc/protego/* configuration files using a simple
// grammar; the monitoring daemon (internal/monitord) keeps them
// synchronized with the legacy configuration files.
package core

import (
	"sync"
	"sync/atomic"

	"protego/internal/accountdb"
	"protego/internal/authsvc"
	"protego/internal/kernel"
	"protego/internal/lsm"
	"protego/internal/netfilter"
	"protego/internal/policy"
)

// Module is the Protego LSM.
type Module struct {
	lsm.Base

	k    *kernel.Kernel
	db   *accountdb.DB
	auth *authsvc.Service

	mu sync.RWMutex

	// Policy state (the in-kernel mirrors of the legacy config files).
	mounts     []MountRule
	bindTable  map[bindKey]BindTarget
	sudoers    *policy.Sudoers
	ppp        *policy.PPPOptions
	fileGrants map[string][]string // path -> binaries allowed despite DAC

	// Compiled mount-whitelist indexes, rebuilt on every rule change so
	// MountCheck/UmountCheck are map probes instead of linear scans.
	mountIdx    map[mountKey][]compiledMountRule
	umountUsers map[string]bool // mount points carrying "users"

	// mountIdxHits counts MountCheck decisions resolved via the compiled
	// index (exported through the tracer as "mountidx.hit").
	mountIdxHits atomic.Uint64

	// Feature toggles; all default to the paper's configuration.
	allowUnprivRaw    bool
	requireShadowAuth bool
	allowSuFallback   bool

	// brokenMountPolicy deliberately grants every unprivileged mount,
	// bypassing the whitelist. It exists ONLY so the differential fuzzer
	// can prove it detects a broken policy; nothing in the simulated
	// system sets it.
	brokenMountPolicy bool

	// identity caches the uid<->name mapping so hot-path policy checks
	// do not reparse /etc/passwd (monitord invalidates on change).
	identity identityCache

	// Stats for tests and the evaluation harness.
	Stats Stats
}

// Stats counts policy decisions. Each field is an atomic so the hot
// LSM hook paths bump it without taking the module lock; read with
// Load (the totals are monotonic, per-CPU-counter style).
type Stats struct {
	MountGrants   atomic.Int64
	MountDenials  atomic.Int64
	BindGrants    atomic.Int64
	BindDenials   atomic.Int64
	SetuidGrants  atomic.Int64
	SetuidDefers  atomic.Int64
	SetuidDenials atomic.Int64
	RawSockGrants atomic.Int64
	RouteGrants   atomic.Int64
	RouteDenials  atomic.Int64
	FileGrants    atomic.Int64
	FileDenials   atomic.Int64
}

// StatsSnapshot is a point-in-time copy of Stats with plain fields — the
// same snapshot-struct shape as netfilter.TableStats, for readers that
// want one consistent view instead of twelve atomic loads.
type StatsSnapshot struct {
	MountGrants   int64
	MountDenials  int64
	BindGrants    int64
	BindDenials   int64
	SetuidGrants  int64
	SetuidDefers  int64
	SetuidDenials int64
	RawSockGrants int64
	RouteGrants   int64
	RouteDenials  int64
	FileGrants    int64
	FileDenials   int64
}

// Snapshot reads every counter once and returns the plain-value copy.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		MountGrants:   s.MountGrants.Load(),
		MountDenials:  s.MountDenials.Load(),
		BindGrants:    s.BindGrants.Load(),
		BindDenials:   s.BindDenials.Load(),
		SetuidGrants:  s.SetuidGrants.Load(),
		SetuidDefers:  s.SetuidDefers.Load(),
		SetuidDenials: s.SetuidDenials.Load(),
		RawSockGrants: s.RawSockGrants.Load(),
		RouteGrants:   s.RouteGrants.Load(),
		RouteDenials:  s.RouteDenials.Load(),
		FileGrants:    s.FileGrants.Load(),
		FileDenials:   s.FileDenials.Load(),
	}
}

// New creates the Protego module over the kernel's substrates. Call
// Install to register it with the kernel, set up the /proc interface, and
// load the default netfilter rules.
func New(k *kernel.Kernel, db *accountdb.DB, auth *authsvc.Service) *Module {
	return &Module{
		k:                 k,
		db:                db,
		auth:              auth,
		bindTable:         make(map[bindKey]BindTarget),
		ppp:               policy.DefaultPPPOptions(),
		fileGrants:        make(map[string][]string),
		allowUnprivRaw:    true,
		requireShadowAuth: true,
		allowSuFallback:   true,
	}
}

// Install registers the module in the kernel's LSM chain, creates the
// /proc/protego configuration files, and installs the default raw-socket
// netfilter rules.
func (m *Module) Install() error {
	m.k.LSM.Register(m)
	m.k.Trace.RegisterCounter("mountidx.hit", m.mountIdxHits.Load)
	if err := m.setupProc(); err != nil {
		return err
	}
	for _, r := range netfilter.ProtegoDefaultRules() {
		if err := m.k.Filter.Append("OUTPUT", r); err != nil {
			return err
		}
	}
	return nil
}

// Name implements lsm.Module.
func (m *Module) Name() string { return "protego" }

// Auth returns the authentication service (used by trusted utilities).
func (m *Module) Auth() *authsvc.Service { return m.auth }

// SetSudoers replaces the delegation policy and propagates the
// timestamp_timeout to the authentication service.
func (m *Module) SetSudoers(s *policy.Sudoers) {
	m.mu.Lock()
	m.sudoers = s
	m.mu.Unlock()
	if s != nil {
		m.auth.SetWindow(s.TimestampTimeout)
	}
}

// Sudoers returns the current delegation policy (may be nil).
func (m *Module) Sudoers() *policy.Sudoers {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.sudoers
}

// SetPPP replaces the PPP policy.
func (m *Module) SetPPP(o *policy.PPPOptions) {
	m.mu.Lock()
	m.ppp = o
	m.mu.Unlock()
}

// AllowFileReaders grants the listed binaries read access to path despite
// DAC — the ssh-keysign host-key rule of §4.4/Table 4 ("restrict file
// access to specific binaries instead of, or in addition to, user IDs").
func (m *Module) AllowFileReaders(path string, binaries ...string) {
	m.mu.Lock()
	m.fileGrants[path] = append(m.fileGrants[path], binaries...)
	m.mu.Unlock()
}

// SetAllowUnprivRaw toggles the raw-socket relaxation (for ablations).
func (m *Module) SetAllowUnprivRaw(on bool) {
	m.mu.Lock()
	m.allowUnprivRaw = on
	m.mu.Unlock()
}

// TestHookBreakMountPolicy disables the mount whitelist check, granting
// every unprivileged mount request. This is a deliberate vulnerability
// switch for the differential fuzzer's self-test (it must catch the
// resulting invariant violations and shrink them); it has no legitimate
// runtime use.
func (m *Module) TestHookBreakMountPolicy(on bool) {
	m.mu.Lock()
	m.brokenMountPolicy = on
	m.mu.Unlock()
}

// SetRequireShadowAuth toggles the reauthentication-before-shadow-read
// policy (for ablations).
func (m *Module) SetRequireShadowAuth(on bool) {
	m.mu.Lock()
	m.requireShadowAuth = on
	m.mu.Unlock()
}

// SetAllowSuFallback toggles the target-password (su) transition policy.
func (m *Module) SetAllowSuFallback(on bool) {
	m.mu.Lock()
	m.allowSuFallback = on
	m.mu.Unlock()
}

func (m *Module) suFallbackEnabled() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.allowSuFallback
}

var _ lsm.Module = (*Module)(nil)
