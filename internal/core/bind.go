package core

import (
	"fmt"
	"sort"
	"strconv"

	"protego/internal/errno"
	"protego/internal/lsm"
	"protego/internal/netstack"
	"protego/internal/policy"
)

type bindKey struct {
	proto int // IPPROTO_TCP or IPPROTO_UDP
	port  int
}

// BindTarget is the single application instance a privileged port is
// allocated to: a (binary path, uid) pair (§4.1.3).
type BindTarget struct {
	Binary string
	UID    int
}

// SetBindTable replaces the privileged-port allocation table.
func (m *Module) SetBindTable(entries []policy.BindEntry, resolveUID func(user string) (int, bool)) error {
	table := make(map[bindKey]BindTarget, len(entries))
	for i := range entries {
		e := &entries[i]
		proto := netstack.IPPROTO_TCP
		if e.Proto == "udp" {
			proto = netstack.IPPROTO_UDP
		}
		uid, ok := resolveUID(e.User)
		if !ok {
			return fmt.Errorf("bind table: unknown user %q", e.User)
		}
		table[bindKey{proto: proto, port: e.Port}] = BindTarget{Binary: e.Binary, UID: uid}
	}
	m.mu.Lock()
	m.bindTable = table
	m.mu.Unlock()
	return nil
}

// AddBindAllocation installs one allocation directly (the /proc path).
func (m *Module) AddBindAllocation(proto, port int, binary string, uid int) {
	m.mu.Lock()
	m.bindTable[bindKey{proto: proto, port: port}] = BindTarget{Binary: binary, UID: uid}
	m.mu.Unlock()
}

// BindAllocations renders the table sorted by port for /proc reads.
func (m *Module) BindAllocations() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var lines []string
	for k, v := range m.bindTable {
		proto := "tcp"
		if k.proto == netstack.IPPROTO_UDP {
			proto = "udp"
		}
		lines = append(lines, fmt.Sprintf("%d %s %s %d", k.port, proto, v.Binary, v.UID))
	}
	sort.Strings(lines)
	return lines
}

// BindCheck enforces the allocation: if a privileged port is allocated, only
// the matching (binary, uid) instance may bind it — even a privileged
// caller may not hijack another service's port (closing the "malicious web
// server also acts as a mail server" hole). Unallocated ports fall back to
// base policy (CAP_NET_BIND_SERVICE).
func (m *Module) BindCheck(t lsm.Task, req *lsm.BindRequest) (lsm.Decision, error) {
	proto := req.Proto
	if proto == 0 || proto == netstack.IPPROTO_IP {
		if req.Type == netstack.SOCK_STREAM {
			proto = netstack.IPPROTO_TCP
		} else {
			proto = netstack.IPPROTO_UDP
		}
	}
	m.mu.RLock()
	target, allocated := m.bindTable[bindKey{proto: proto, port: req.Port}]
	m.mu.RUnlock()
	if !allocated {
		return lsm.NoOpinion, nil
	}
	if target.Binary == t.BinaryPath() && target.UID == t.EUID() {
		m.bumpStat(&m.Stats.BindGrants)
		return lsm.Grant, nil
	}
	m.bumpStat(&m.Stats.BindDenials)
	return lsm.Deny, errno.EACCES
}

// parseBindArgs parses the /proc grammar fields:
//
//	add <port> <tcp|udp> <binary> <uid>
func parseBindArgs(args []string) (bindKey, BindTarget, error) {
	if len(args) != 4 {
		return bindKey{}, BindTarget{}, errno.EINVAL
	}
	port, err := strconv.Atoi(args[0])
	if err != nil || port <= 0 || port >= 1024 {
		return bindKey{}, BindTarget{}, errno.EINVAL
	}
	var proto int
	switch args[1] {
	case "tcp":
		proto = netstack.IPPROTO_TCP
	case "udp":
		proto = netstack.IPPROTO_UDP
	default:
		return bindKey{}, BindTarget{}, errno.EINVAL
	}
	uid, err := strconv.Atoi(args[3])
	if err != nil || uid < 0 {
		return bindKey{}, BindTarget{}, errno.EINVAL
	}
	return bindKey{proto: proto, port: port}, BindTarget{Binary: args[2], UID: uid}, nil
}
