package core

import (
	"sync/atomic"

	"protego/internal/caps"
	"protego/internal/errno"
	"protego/internal/lsm"
	"protego/internal/policy"
)

// Capability shorthands used across the module.
const (
	capSysAdmin = caps.CAP_SYS_ADMIN
	capSetuid   = caps.CAP_SETUID
	capSetgid   = caps.CAP_SETGID
	capNetRaw   = caps.CAP_NET_RAW
	capNetAdmin = caps.CAP_NET_ADMIN
)

// blobPendingSetuid is the task security-blob key recording a deferred
// setuid-on-exec (§4.3): setuid reported success, but the credential
// change happens at the next exec once the target binary is validated.
const blobPendingSetuid = "protego.pending_setuid"

type pendingSetuid struct {
	TargetUID int
}

// PendingSetuid reports the deferred target uid on t, if any (exposed for
// tests and the simulator shell).
func PendingSetuid(t lsm.Task) (int, bool) {
	v := t.SecurityBlob(blobPendingSetuid)
	if v == nil {
		return 0, false
	}
	p, ok := v.(pendingSetuid)
	return p.TargetUID, ok
}

// SetuidCheck mediates lateral transitions (§4.3). The kernel consults this
// hook only when base policy already refused (no CAP_SETUID, target not in
// {ruid, suid}). The decision procedure follows the paper:
//
//  1. Look up a delegation rule permitting (user → target) in the
//     synchronized sudoers policy. No rule → no opinion (base EPERM).
//  2. Unless the rule says NOPASSWD, require a recent authentication of
//     the *current* user, invoking the trusted authentication service to
//     take over the terminal if needed.
//  3. If the rule permits any command (ALL), grant the change immediately:
//     every check has succeeded, so privilege may now be conferred.
//  4. If the rule restricts commands, report success but defer the change
//     to exec (setuid-on-exec), where the requested binary is validated.
func (m *Module) SetuidCheck(t lsm.Task, targetUID int) (lsm.Decision, error) {
	sudoers := m.Sudoers()
	if sudoers == nil {
		return lsm.NoOpinion, nil
	}
	user := m.userName(t.UID())
	target := m.userName(targetUID)
	if user == "" || target == "" {
		return lsm.NoOpinion, nil
	}
	grant, ok := sudoers.LookupTransition(user, m.userGroups(user), target)
	if !ok {
		// The su policy (§4.3): with no delegation rule, knowing the
		// *target* user's password is both authentication and
		// authorization. The trusted service collects it; failure
		// falls through to base policy (EPERM).
		if m.suFallbackEnabled() {
			if err := m.auth.AuthenticateUser(t, target, false); err == nil {
				m.bumpStat(&m.Stats.SetuidGrants)
				return lsm.Grant, nil
			}
		}
		m.bumpStat(&m.Stats.SetuidDenials)
		return lsm.NoOpinion, nil
	}
	if !grant.NoPasswd {
		if err := m.auth.EnsureRecent(t, user); err != nil {
			// The caller may be running su, not sudo: knowing the
			// *target's* password authorizes the transition (§4.3).
			if m.suFallbackEnabled() && m.auth.AuthenticateUser(t, target, false) == nil {
				m.bumpStat(&m.Stats.SetuidGrants)
				return lsm.Grant, nil
			}
			m.k.Auditf("protego: setuid auth failed: uid=%d target=%d", t.UID(), targetUID)
			m.bumpStat(&m.Stats.SetuidDenials)
			return lsm.Deny, errno.EPERM
		}
	}
	if grant.AnyCommand {
		m.bumpStat(&m.Stats.SetuidGrants)
		return lsm.Grant, nil
	}
	t.SetSecurityBlob(blobPendingSetuid, pendingSetuid{TargetUID: targetUID})
	m.bumpStat(&m.Stats.SetuidDefers)
	return lsm.DeferToExec, nil
}

// SetgidCheck mediates group transitions. Two policies grant beyond base:
// password-protected groups (the newgrp flow — authenticate with the
// group's password), and explicit sudoers delegation to "%group" targets.
func (m *Module) SetgidCheck(t lsm.Task, targetGID int) (lsm.Decision, error) {
	group, err := m.db.LookupGID(targetGID)
	if err != nil {
		return lsm.NoOpinion, nil
	}
	if group.Password != "" {
		if err := m.auth.AuthenticateGroup(t, group.Name); err != nil {
			m.k.Auditf("protego: setgid group auth failed: uid=%d gid=%d", t.UID(), targetGID)
			return lsm.Deny, errno.EPERM
		}
		return lsm.Grant, nil
	}
	sudoers := m.Sudoers()
	if sudoers == nil {
		return lsm.NoOpinion, nil
	}
	user := m.userName(t.UID())
	if user == "" {
		return lsm.NoOpinion, nil
	}
	grant, ok := sudoers.LookupTransition(user, m.userGroups(user), "%"+group.Name)
	if !ok {
		return lsm.NoOpinion, nil
	}
	if !grant.NoPasswd {
		if err := m.auth.EnsureRecent(t, user); err != nil {
			return lsm.Deny, errno.EPERM
		}
	}
	return lsm.Grant, nil
}

// ExecCheck completes a deferred setuid-on-exec: the requested binary must
// be permitted for the pending (user → target) pair, or the exec fails
// with EPERM (the paper's deliberate change in error behaviour). On
// success the environment is sanitized per the sudoers env_keep policy and
// the kernel applies the credential change.
func (m *Module) ExecCheck(t lsm.Task, req *lsm.ExecRequest) (*lsm.CredUpdate, error) {
	v := t.SecurityBlob(blobPendingSetuid)
	if v == nil {
		return nil, nil
	}
	t.SetSecurityBlob(blobPendingSetuid, nil)
	pending, ok := v.(pendingSetuid)
	if !ok {
		return nil, errno.EPERM
	}
	sudoers := m.Sudoers()
	if sudoers == nil {
		return nil, errno.EPERM
	}
	user := m.userName(t.UID())
	target := m.userName(pending.TargetUID)
	if user == "" || target == "" {
		return nil, errno.EPERM
	}
	grant, allowed := sudoers.LookupCommand(user, m.userGroups(user), target, req.Path)
	if !allowed {
		// "The authentication service may also ask for the target
		// user's password at this point" (§4.3): the su flow, where
		// knowing the target's password authorizes the exec.
		if m.suFallbackEnabled() && m.auth.AuthenticateUser(t, target, false) == nil {
			grant = policy.Grant{}
		} else {
			m.k.Auditf("protego: setuid-on-exec denied: %s -> %s exec %s", user, target, req.Path)
			m.bumpStat(&m.Stats.SetuidDenials)
			return nil, errno.EPERM
		}
	}
	req.Env = sudoers.SanitizeEnv(req.Env, grant)
	uid := pending.TargetUID
	update := &lsm.CredUpdate{UID: &uid, DropGroups: true}
	if tu, err := m.db.LookupUser(target); err == nil {
		g := tu.GID
		update.GID = &g
		if groups, err := m.db.GroupIDsOf(target); err == nil {
			update.Groups = groups
			if update.Groups == nil {
				update.Groups = []int{}
			}
		}
	}
	m.bumpStat(&m.Stats.SetuidGrants)
	return update, nil
}

// bumpStat increments a decision counter. Lock-free: the Stats fields
// are atomics, so hook fast paths never contend on the module lock just
// to account a grant.
func (m *Module) bumpStat(p *atomic.Int64) {
	p.Add(1)
}
