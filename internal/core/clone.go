package core

import (
	"maps"

	"protego/internal/accountdb"
	"protego/internal/authsvc"
	"protego/internal/kernel"
	"protego/internal/vfs"
)

// CloneInto copies the module's policy state onto a freshly cloned
// kernel and installs it there: the new module is registered in k's LSM
// chain, its mount-index counter lands on k's tracer, and the shared
// /proc/protego inodes are privatized and rebound to the new module's
// handlers. Unlike Install, no default netfilter rules are appended (the
// cloned table already carries them) and no monitord sync runs — the
// golden image was synced before the snapshot.
//
// Parsed policy objects (sudoers, ppp options) are immutable once
// installed, so the pointers are shared; everything mutable — mount
// whitelist, bind table, file grants, toggles — is copied. Decision
// statistics and the identity cache start fresh, giving per-tenant
// counters.
func (m *Module) CloneInto(k *kernel.Kernel, db *accountdb.DB, auth *authsvc.Service) (*Module, error) {
	c := New(k, db, auth)
	m.mu.RLock()
	c.mounts = append([]MountRule(nil), m.mounts...)
	c.bindTable = maps.Clone(m.bindTable)
	c.sudoers = m.sudoers
	c.ppp = m.ppp
	for path, bins := range m.fileGrants {
		c.fileGrants[path] = append([]string(nil), bins...)
	}
	c.allowUnprivRaw = m.allowUnprivRaw
	c.requireShadowAuth = m.requireShadowAuth
	c.allowSuFallback = m.allowSuFallback
	c.brokenMountPolicy = m.brokenMountPolicy
	m.mu.RUnlock()
	c.mu.Lock()
	c.rebuildMountIndexLocked()
	c.mu.Unlock()
	auth.SetWindow(m.auth.Window())

	k.LSM.Register(c)
	k.Trace.RegisterCounter("mountidx.hit", c.mountIdxHits.Load)
	if err := c.rebindProc(); err != nil {
		return nil, err
	}
	return c, nil
}

// rebindProc repoints the /proc/protego files at this module's handlers;
// the shared snapshot inodes are copied up first so the parent machine's
// policy interface stays its own.
func (m *Module) rebindProc() error {
	files := []struct {
		path  string
		read  vfs.ProcReadFunc
		write vfs.ProcWriteFunc
	}{
		{ProcMounts, m.readMounts, m.writeMounts},
		{ProcBind, m.readBind, m.writeBind},
		{ProcDelegation, m.readDelegation, m.writeDelegation},
		{ProcPPP, m.readPPP, m.writePPP},
		{ProcStatus, m.readStatus, nil},
	}
	for _, f := range files {
		if err := m.k.FS.RebindProc(f.path, f.read, f.write); err != nil {
			return err
		}
	}
	return nil
}
