package core

import (
	"strings"

	"protego/internal/accountdb"
	"protego/internal/errno"
	"protego/internal/lsm"
)

// FileOpen implements the file policies of §4.4 and Table 4:
//
//   - Trusted-binary grants: files like the ssh host private key may be
//     read by specific whitelisted binaries (ssh-keysign) even though DAC
//     denies — "restrict file access to specific binaries instead of, or
//     in addition to, user IDs". Writes are never granted this way.
//
//   - Shadow reauthentication: reading a per-user shadow fragment
//     (/etc/shadows/<user>) requires a recent authentication even by its
//     owner, mitigating hash leaks from a compromised user process.
func (m *Module) FileOpen(t lsm.Task, req *lsm.OpenRequest) (lsm.Decision, error) {
	// Trusted services running as root are exempt: authentication code
	// is trusted in both systems (§5.2).
	if t.EUID() == 0 {
		return lsm.NoOpinion, nil
	}

	if strings.HasPrefix(req.Path, accountdb.ShadowsDir+"/") {
		m.mu.RLock()
		require := m.requireShadowAuth
		m.mu.RUnlock()
		if require && !m.auth.RecentlyAuthenticated(t) {
			// The trusted authentication service takes over the
			// terminal (§4.3); only if that fails is the open
			// refused.
			user := m.userName(t.UID())
			if user == "" || m.auth.EnsureRecent(t, user) != nil {
				m.k.Auditf("protego: shadow read without recent auth: uid=%d path=%s", t.UID(), req.Path)
				m.bumpStat(&m.Stats.FileDenials)
				return lsm.Deny, errno.EACCES
			}
		}
		return lsm.NoOpinion, nil // DAC still applies (owner-only)
	}

	if req.DACAllowed || req.Write {
		return lsm.NoOpinion, nil
	}
	m.mu.RLock()
	readers := m.fileGrants[req.Path]
	m.mu.RUnlock()
	for _, binary := range readers {
		if binary == t.BinaryPath() {
			m.bumpStat(&m.Stats.FileGrants)
			return lsm.Grant, nil
		}
	}
	return lsm.NoOpinion, nil
}
