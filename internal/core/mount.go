package core

import (
	"fmt"
	"sort"
	"strings"

	"protego/internal/errno"
	"protego/internal/lsm"
	"protego/internal/policy"
	"protego/internal/vfs"
)

// MountRule is one row of the in-kernel user-mount whitelist, mirroring a
// "user"/"users" entry of /etc/fstab. A mount(2) call from a task without
// CAP_SYS_ADMIN succeeds only if its arguments match a rule (Figure 1).
type MountRule struct {
	Device     string
	MountPoint string
	FSType     string // "" or "auto" matches any fs type
	Options    []string
	// AnyUserUnmount corresponds to the "users" option: anyone may
	// unmount; "user" restricts unmounting to the mounting uid.
	AnyUserUnmount bool
}

// safeUserMountOptions are options a user may always request (mount(8)
// forces nosuid/nodev on user mounts; ro is always safe).
var safeUserMountOptions = map[string]bool{
	"ro": true, "nosuid": true, "nodev": true, "noexec": true,
	"user": true, "users": true, "noauto": true, "sync": true,
}

// mountKey is the compiled whitelist's dispatch key: every rule pins both
// a device and a mount point, so the per-call check reduces to one map
// probe plus the fstype/option comparison of the (usually single)
// candidate row.
type mountKey struct {
	device string
	point  string
}

// compiledMountRule is one whitelist row with its allowed-options set
// precomputed at install time — the per-call map allocation the linear
// scan paid on every mount(2) is paid once per rule change instead.
type compiledMountRule struct {
	fsType  string
	allowed map[string]bool
}

// compileMountRule precomputes the rule's allowed-options set (the rule's
// own options merged with safeUserMountOptions).
func compileMountRule(r *MountRule) compiledMountRule {
	allowed := make(map[string]bool, len(r.Options)+len(safeUserMountOptions))
	for o := range safeUserMountOptions {
		allowed[o] = true
	}
	for _, o := range r.Options {
		allowed[o] = true
	}
	return compiledMountRule{fsType: r.FSType, allowed: allowed}
}

// matches reports whether the request's fstype and options are covered;
// device and mount point were already matched by the index key.
func (r *compiledMountRule) matches(req *lsm.MountRequest) bool {
	if r.fsType != "" && r.fsType != "auto" && req.FSType != r.fsType && req.FSType != "auto" {
		return false
	}
	for _, o := range req.Options {
		if !r.allowed[o] {
			return false
		}
	}
	return true
}

// rebuildMountIndexLocked recompiles the whitelist indexes from m.mounts.
// Caller holds m.mu exclusively.
func (m *Module) rebuildMountIndexLocked() {
	idx := make(map[mountKey][]compiledMountRule, len(m.mounts))
	users := make(map[string]bool)
	for i := range m.mounts {
		r := &m.mounts[i]
		key := mountKey{device: r.Device, point: r.MountPoint}
		idx[key] = append(idx[key], compileMountRule(r))
		if r.AnyUserUnmount {
			users[r.MountPoint] = true
		}
	}
	m.mountIdx = idx
	m.umountUsers = users
}

// String renders the rule in the /proc grammar's field order.
func (r *MountRule) String() string {
	opts := strings.Join(r.Options, ",")
	if opts == "" {
		opts = "-"
	}
	fstype := r.FSType
	if fstype == "" {
		fstype = "auto"
	}
	who := "user"
	if r.AnyUserUnmount {
		who = "users"
	}
	return fmt.Sprintf("%s %s %s %s %s", r.Device, r.MountPoint, fstype, opts, who)
}

// SetMountRules replaces the whitelist and recompiles the dispatch index.
func (m *Module) SetMountRules(rules []MountRule) {
	m.mu.Lock()
	m.mounts = append([]MountRule(nil), rules...)
	m.rebuildMountIndexLocked()
	m.mu.Unlock()
}

// AddMountRule appends one rule and recompiles the dispatch index.
func (m *Module) AddMountRule(r MountRule) {
	m.mu.Lock()
	m.mounts = append(m.mounts, r)
	m.rebuildMountIndexLocked()
	m.mu.Unlock()
}

// RemoveMountRules deletes every rule matching (device, point) and
// recompiles the dispatch index (the /proc grammar's "del" verb).
func (m *Module) RemoveMountRules(device, point string) {
	m.mu.Lock()
	kept := m.mounts[:0]
	for _, r := range m.mounts {
		if !(r.Device == device && r.MountPoint == point) {
			kept = append(kept, r)
		}
	}
	m.mounts = kept
	m.rebuildMountIndexLocked()
	m.mu.Unlock()
}

// MountRules returns a snapshot of the whitelist.
func (m *Module) MountRules() []MountRule {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return append([]MountRule(nil), m.mounts...)
}

// MountRulesFromFstab converts the user-mountable entries of a parsed
// fstab into whitelist rows (the monitoring daemon's translation).
func MountRulesFromFstab(entries []policy.FstabEntry) []MountRule {
	var rules []MountRule
	for i := range entries {
		e := &entries[i]
		if !e.UserMountable() {
			continue
		}
		rules = append(rules, MountRule{
			Device:         e.Device,
			MountPoint:     vfs.CleanPath(e.MountPoint, "/"),
			FSType:         e.FSType,
			Options:        append([]string(nil), e.Options...),
			AnyUserUnmount: e.AnyUserUnmountable(),
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].MountPoint < rules[j].MountPoint })
	return rules
}

// MountCheck implements the Figure 1 flow: an unprivileged mount succeeds
// iff its arguments match the whitelist.
func (m *Module) MountCheck(t lsm.Task, req *lsm.MountRequest) (lsm.Decision, error) {
	if t.Capable(capSysAdmin) {
		return lsm.NoOpinion, nil // administrator path: base policy
	}
	m.mu.RLock()
	broken := m.brokenMountPolicy
	m.mu.RUnlock()
	if broken {
		// Test hook: whitelist check disabled (see TestHookBreakMountPolicy).
		m.bumpStat(&m.Stats.MountGrants)
		return lsm.Grant, nil
	}
	// FUSE mounts (fusermount) are grantable over directories the caller
	// owns: the file system contents are under the user's control anyway,
	// so ownership of the mount point is the natural object-based policy.
	if req.FSType == "fuse" {
		if ino, err := m.k.FS.Lookup(vfs.RootCred, req.Point); err == nil &&
			ino.Mode.IsDir() && ino.UID == t.UID() {
			m.bumpStat(&m.Stats.MountGrants)
			return lsm.Grant, nil
		}
		m.bumpStat(&m.Stats.MountDenials)
		return lsm.NoOpinion, nil
	}
	m.mu.RLock()
	cands := m.mountIdx[mountKey{device: req.Device, point: req.Point}]
	m.mu.RUnlock()
	if len(cands) > 0 {
		// The (device, point) probe found whitelist rows: the decision is
		// resolved from the compiled index without scanning the table.
		m.mountIdxHits.Add(1)
	}
	matched := false
	for i := range cands {
		if cands[i].matches(req) {
			matched = true
			break
		}
	}
	if matched {
		m.bumpStat(&m.Stats.MountGrants)
		return lsm.Grant, nil
	}
	m.bumpStat(&m.Stats.MountDenials)
	return lsm.NoOpinion, nil // base policy denies (EPERM)
}

// UmountCheck grants unprivileged unmounts of user mounts: the mounting
// user always may; anyone may when the whitelist row says "users".
func (m *Module) UmountCheck(t lsm.Task, req *lsm.UmountRequest) (lsm.Decision, error) {
	if t.Capable(capSysAdmin) {
		return lsm.NoOpinion, nil
	}
	if !req.UserMount {
		return lsm.NoOpinion, nil // only user mounts are user-unmountable
	}
	if req.MountedBy == t.UID() {
		return lsm.Grant, nil
	}
	m.mu.RLock()
	anyUser := m.umountUsers[req.Point]
	m.mu.RUnlock()
	if anyUser {
		return lsm.Grant, nil
	}
	return lsm.NoOpinion, nil
}

// parseMountRuleArgs parses the /proc grammar fields:
//
//	add <device> <mountpoint> <fstype> <options|-> <user|users>
func parseMountRuleArgs(args []string) (MountRule, error) {
	if len(args) != 5 {
		return MountRule{}, errno.EINVAL
	}
	r := MountRule{
		Device:     args[0],
		MountPoint: vfs.CleanPath(args[1], "/"),
		FSType:     args[2],
	}
	if args[3] != "-" {
		r.Options = strings.Split(args[3], ",")
	}
	switch args[4] {
	case "user":
	case "users":
		r.AnyUserUnmount = true
	default:
		return MountRule{}, errno.EINVAL
	}
	return r, nil
}
