package core_test

import (
	"strings"
	"testing"

	"protego/internal/core"
	"protego/internal/errno"
	"protego/internal/kernel"
	"protego/internal/netstack"
	"protego/internal/policy"
	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

func TestSetBindTableResolvesUsers(t *testing.T) {
	m := protegoMachine(t)
	entries := []policy.BindEntry{
		{Port: 587, Proto: "tcp", Binary: "/usr/sbin/exim4", User: "Debian-exim"},
		{Port: 53, Proto: "udp", Binary: "/usr/sbin/named", User: "root"},
	}
	resolve := func(user string) (int, bool) {
		u, err := m.DB.LookupUser(user)
		if err != nil {
			return 0, false
		}
		return u.UID, true
	}
	if err := m.Protego.SetBindTable(entries, resolve); err != nil {
		t.Fatal(err)
	}
	allocs := m.Protego.BindAllocations()
	if len(allocs) != 2 {
		t.Fatalf("allocations: %v", allocs)
	}
	// Unknown users fail the whole update.
	bad := []policy.BindEntry{{Port: 25, Proto: "tcp", Binary: "/b", User: "ghost"}}
	if err := m.Protego.SetBindTable(bad, resolve); err == nil {
		t.Fatal("ghost user accepted")
	}
}

func TestAddBindAllocationDirect(t *testing.T) {
	m := protegoMachine(t)
	m.Protego.AddBindAllocation(netstack.IPPROTO_UDP, 514, "/usr/sbin/syslogd", 0)
	found := false
	for _, line := range m.Protego.BindAllocations() {
		if strings.Contains(line, "514 udp /usr/sbin/syslogd 0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("allocation missing: %v", m.Protego.BindAllocations())
	}
}

func TestProcBindRead(t *testing.T) {
	m := protegoMachine(t)
	data, err := m.K.FS.ReadFile(vfs.RootCred, core.ProcBind)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "25 tcp /usr/sbin/exim4 101") {
		t.Fatalf("bind proc read: %q", data)
	}
}

func TestSetgidSudoersGroupDelegation(t *testing.T) {
	// A sudoers rule can delegate a *group* target: "%<group>" in the
	// runas list, honored by SetgidCheck.
	m := protegoMachine(t)
	sudoers, err := policy.ParseSudoers("bob ALL = (%www-data) NOPASSWD: ALL\n")
	if err != nil {
		t.Fatal(err)
	}
	m.Protego.SetSudoers(sudoers)
	bob := session(t, m, "bob")
	if err := m.K.Setgid(bob, world.GIDWWW); err != nil {
		t.Fatalf("delegated setgid: %v", err)
	}
	if bob.EGID() != world.GIDWWW {
		t.Fatalf("egid = %d", bob.EGID())
	}
	// charlie has no such rule and ops requires a password he won't give.
	charlie := session(t, m, "charlie")
	if err := m.K.Setgid(charlie, world.GIDWWW); err != errno.EPERM {
		t.Fatalf("undelegated setgid: %v", err)
	}
}

func TestSetgidUnknownGroupNoOpinion(t *testing.T) {
	m := protegoMachine(t)
	bob := session(t, m, "bob")
	if err := m.K.Setgid(bob, 9999); err != errno.EPERM {
		t.Fatalf("setgid to unknown gid: %v", err)
	}
}

func TestRouteDeleteOwnRouteGranted(t *testing.T) {
	m := protegoMachine(t)
	alice := session(t, m, "alice")
	// alice installs a route via the ppp policy path...
	code, _, errOut, _ := m.Run(alice, []string{userspace.BinPppd, "ppp0", "--route=192.168.42.0/24"}, nil)
	if code != 0 {
		t.Fatalf("pppd: %s", errOut)
	}
	// ...and may delete her own route.
	if err := m.K.DelRoute(alice, netstack.IPv4(192, 168, 42, 0), 24); err != nil {
		t.Fatalf("delete own route: %v", err)
	}
	// But not routes she does not own.
	root := session(t, m, "root")
	if err := m.K.AddRoute(root, netstack.Route{Dest: netstack.IPv4(172, 16, 0, 0), PrefixLen: 16, Iface: "eth0"}); err != nil {
		t.Fatal(err)
	}
	if err := m.K.DelRoute(alice, netstack.IPv4(172, 16, 0, 0), 16); err != errno.EPERM {
		t.Fatalf("delete root's route: %v", err)
	}
	// Deleting something nonexistent is no opinion -> EPERM for users.
	if err := m.K.DelRoute(alice, netstack.IPv4(1, 2, 3, 4), 32); err != errno.EPERM {
		t.Fatalf("delete missing route: %v", err)
	}
}

func TestShadowAuthToggle(t *testing.T) {
	m := protegoMachine(t)
	m.Protego.SetRequireShadowAuth(false)
	alice := session(t, m, "alice")
	// With the ablation toggle off, the owner reads her fragment with
	// plain DAC and no prompt.
	if _, err := m.K.ReadFile(alice, "/etc/shadows/alice"); err != nil {
		t.Fatalf("shadow read with auth disabled: %v", err)
	}
	// Other users' fragments remain DAC-protected.
	if _, err := m.K.ReadFile(alice, "/etc/shadows/bob"); err == nil {
		t.Fatal("cross-user shadow read")
	}
}

func TestSuFallbackToggle(t *testing.T) {
	m := protegoMachine(t)
	m.Protego.SetAllowSuFallback(false)
	bob := session(t, m, "bob")
	bob.Asker = world.AnswerWith(world.AlicePassword)
	// With su fallback off, knowing alice's password no longer
	// authorizes bob -> alice (no delegation rule covers it).
	if err := m.K.Setuid(bob, world.UIDAlice); err != errno.EPERM {
		t.Fatalf("su fallback disabled: %v", err)
	}
}

func TestModuleIdentity(t *testing.T) {
	m := protegoMachine(t)
	if m.Protego.Name() != "protego" {
		t.Fatalf("name: %q", m.Protego.Name())
	}
	if m.Protego.Auth() != m.Auth {
		t.Fatal("auth service mismatch")
	}
}

func TestVideoIoctlGranted(t *testing.T) {
	m := protegoMachine(t)
	alice := session(t, m, "alice")
	if err := m.K.Ioctl(alice, userspace.VideoDevice, kernel.VIDIOCSMODE, "640x480"); err != nil {
		t.Fatalf("KMS mode set: %v", err)
	}
}

func TestPppDetachGranted(t *testing.T) {
	m := protegoMachine(t)
	alice := session(t, m, "alice")
	if err := m.K.Ioctl(alice, userspace.PppDevice, kernel.PPPIOCATTACH, "ppp0"); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := m.K.Ioctl(alice, userspace.PppDevice, kernel.PPPIOCDETACH, "ppp0"); err != nil {
		t.Fatalf("detach: %v", err)
	}
	// After detach, bob can attach.
	bob := session(t, m, "bob")
	if err := m.K.Ioctl(bob, userspace.PppDevice, kernel.PPPIOCATTACH, "ppp0"); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
}

func TestUnknownIoctlNoOpinion(t *testing.T) {
	m := protegoMachine(t)
	alice := session(t, m, "alice")
	// An unknown command on a known device: no grant, handler ENOTTY.
	if err := m.K.Ioctl(alice, userspace.PppDevice, 0xDEAD, nil); err != errno.ENOTTY {
		t.Fatalf("unknown ioctl: %v", err)
	}
}
