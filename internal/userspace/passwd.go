package userspace

import (
	"strings"

	"protego/internal/accountdb"
	"protego/internal/kernel"
)

// saltFor derives a deterministic salt for a user (a stand-in for random
// salt generation, keeping the simulation reproducible).
func saltFor(name string) string { return "pg" + name }

// PasswdMain implements passwd(1).
//
// Baseline: setuid root; to let a user change one record the process can
// rewrite the entire shared /etc/shadow — the six-capability operation the
// paper calls out. Protego: the user writes only her own
// /etc/shadows/<user> fragment; the kernel requires a recent
// authentication before the fragment opens (the trusted service takes the
// terminal), and the monitoring daemon regenerates the legacy file.
func PasswdMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	user, err := currentUser(k, t)
	if err != nil {
		t.Errorf("passwd: cannot identify caller\n")
		return 1
	}
	targetName := user.Name
	if len(args) == 1 {
		targetName = args[0]
	} else if len(args) > 1 {
		t.Errorf("usage: passwd [user]\n")
		return 1
	}

	if !protego(k) {
		if t.EUID() != 0 {
			t.Errorf("passwd: must be setuid root\n")
			return 1
		}
		maybeExploit(k, t) // CVE-2006-3378 et al.
		if t.UID() != 0 && targetName != user.Name {
			t.Errorf("passwd: You may not view or modify password information for %s.\n", targetName)
			return 1
		}
		shadowData, err := k.ReadFile(t, "/etc/shadow")
		if err != nil {
			t.Errorf("passwd: cannot read shadow: %v\n", err)
			return 1
		}
		entries, err := accountdb.ParseShadow(string(shadowData))
		if err != nil {
			t.Errorf("passwd: corrupt shadow file\n")
			return 1
		}
		idx := -1
		for i := range entries {
			if entries[i].Name == targetName {
				idx = i
				break
			}
		}
		if idx < 0 {
			t.Errorf("passwd: user %s not found\n", targetName)
			return 1
		}
		if t.UID() != 0 {
			current := t.Ask("Current password: ")
			if !accountdb.VerifyPassword(entries[idx].Hash, current) {
				t.Errorf("passwd: Authentication failure\n")
				return 1
			}
		}
		newPassword := t.Ask("New password: ")
		if newPassword == "" {
			t.Errorf("passwd: no password supplied\n")
			return 1
		}
		entries[idx].Hash = accountdb.HashPassword(newPassword, saltFor(targetName))
		if err := k.WriteFile(t, "/etc/shadow", []byte(accountdb.FormatShadow(entries))); err != nil {
			t.Errorf("passwd: cannot update shadow: %v\n", err)
			return 1
		}
		t.Printf("passwd: password updated successfully\n")
		return 0
	}

	// ---- Protego: deprivileged; own fragment only. ----
	maybeExploit(k, t)
	if targetName != user.Name && t.UID() != 0 {
		t.Errorf("passwd: You may not view or modify password information for %s.\n", targetName)
		return 1
	}
	fragment := accountdb.ShadowsDir + "/" + targetName
	// Opening the fragment triggers the kernel's reauthentication
	// requirement; the trusted service collects the current password.
	if _, err := k.ReadFile(t, fragment); err != nil {
		t.Errorf("passwd: Authentication failure\n")
		return 1
	}
	newPassword := t.Ask("New password: ")
	if newPassword == "" {
		t.Errorf("passwd: no password supplied\n")
		return 1
	}
	entry := accountdb.ShadowEntry{Name: targetName, Hash: accountdb.HashPassword(newPassword, saltFor(targetName))}
	if err := k.WriteFile(t, fragment, []byte(entry.Line()+"\n")); err != nil {
		t.Errorf("passwd: cannot update %s: %v\n", fragment, err)
		return 1
	}
	t.Printf("passwd: password updated successfully\n")
	return 0
}

// readOwnFragment loads and parses the caller's passwd fragment.
func readOwnFragment(k *kernel.Kernel, t *kernel.Task, name string) (*accountdb.User, error) {
	data, err := k.ReadFile(t, accountdb.PasswdsDir+"/"+name)
	if err != nil {
		return nil, err
	}
	users, err := accountdb.ParsePasswd(string(data))
	if err != nil || len(users) != 1 {
		return nil, err
	}
	return &users[0], nil
}

// updateOwnFragment validates and writes the caller's modified record.
func updateOwnFragment(k *kernel.Kernel, t *kernel.Task, u *accountdb.User) error {
	line := u.Line()
	if err := accountdb.ValidatePasswdLine(line, u.Name, u.UID, u.GID); err != nil {
		return err
	}
	return k.WriteFile(t, accountdb.PasswdsDir+"/"+u.Name, []byte(line+"\n"))
}

// updateSharedPasswd is the baseline path: rewrite the whole /etc/passwd
// with one record changed (requires root).
func updateSharedPasswd(k *kernel.Kernel, t *kernel.Task, updated *accountdb.User) error {
	data, err := k.ReadFile(t, "/etc/passwd")
	if err != nil {
		return err
	}
	users, err := accountdb.ParsePasswd(string(data))
	if err != nil {
		return err
	}
	for i := range users {
		if users[i].Name == updated.Name {
			users[i] = *updated
		}
	}
	return k.WriteFile(t, "/etc/passwd", []byte(accountdb.FormatPasswd(users)))
}

// ChshMain implements chsh(1): change the caller's login shell. The new
// shell must be listed in /etc/shells.
func ChshMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 2 || args[0] != "-s" {
		t.Errorf("usage: chsh -s <shell>\n")
		return 1
	}
	shell := args[1]
	user, err := currentUser(k, t)
	if err != nil {
		t.Errorf("chsh: cannot identify caller\n")
		return 1
	}
	if shells, err := k.ReadFile(t, "/etc/shells"); err == nil {
		ok := false
		for _, s := range strings.Fields(string(shells)) {
			if s == shell {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("chsh: %s is an invalid shell\n", shell)
			return 1
		}
	}

	if !protego(k) {
		if t.EUID() != 0 {
			t.Errorf("chsh: must be setuid root\n")
			return 1
		}
		maybeExploit(k, t) // CVE-2005-1335, CVE-2011-0721
		user.Shell = shell
		if err := updateSharedPasswd(k, t, user); err != nil {
			t.Errorf("chsh: %v\n", err)
			return 1
		}
	} else {
		maybeExploit(k, t)
		u, err := readOwnFragment(k, t, user.Name)
		if err != nil || u == nil {
			t.Errorf("chsh: cannot read your record\n")
			return 1
		}
		u.Shell = shell
		if err := updateOwnFragment(k, t, u); err != nil {
			t.Errorf("chsh: %v\n", err)
			return 1
		}
	}
	t.Printf("Shell changed.\n")
	return 0
}

// ChfnMain implements chfn(1): change the caller's GECOS field.
func ChfnMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 2 || args[0] != "-f" {
		t.Errorf("usage: chfn -f <full name>\n")
		return 1
	}
	fullName := args[1]
	if strings.ContainsAny(fullName, ":\n") {
		t.Errorf("chfn: invalid characters in name\n")
		return 1
	}
	user, err := currentUser(k, t)
	if err != nil {
		t.Errorf("chfn: cannot identify caller\n")
		return 1
	}

	if !protego(k) {
		if t.EUID() != 0 {
			t.Errorf("chfn: must be setuid root\n")
			return 1
		}
		maybeExploit(k, t) // CVE-2002-1616
		user.Gecos = fullName
		if err := updateSharedPasswd(k, t, user); err != nil {
			t.Errorf("chfn: %v\n", err)
			return 1
		}
	} else {
		maybeExploit(k, t)
		u, err := readOwnFragment(k, t, user.Name)
		if err != nil || u == nil {
			t.Errorf("chfn: cannot read your record\n")
			return 1
		}
		u.Gecos = fullName
		if err := updateOwnFragment(k, t, u); err != nil {
			t.Errorf("chfn: %v\n", err)
			return 1
		}
	}
	t.Printf("Name changed.\n")
	return 0
}

// GpasswdMain implements gpasswd(1): set a group password. Baseline: root
// rewrites /etc/group. Protego: group members update the group's own
// fragment (root-owned, group-writable — DAC at the policy's granularity).
func GpasswdMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("usage: gpasswd <group>\n")
		return 1
	}
	groupName := args[0]
	db := accountdb.NewDB(k.FS)
	group, err := db.LookupGroup(groupName)
	if err != nil {
		t.Errorf("gpasswd: group %s does not exist\n", groupName)
		return 1
	}
	password := t.Ask("New group password: ")
	if password == "" {
		t.Errorf("gpasswd: no password supplied\n")
		return 1
	}
	group.Password = accountdb.HashPassword(password, saltFor("g"+groupName))

	if !protego(k) {
		if t.EUID() != 0 {
			t.Errorf("gpasswd: must be setuid root\n")
			return 1
		}
		maybeExploit(k, t)
		data, err := k.ReadFile(t, "/etc/group")
		if err != nil {
			t.Errorf("gpasswd: %v\n", err)
			return 1
		}
		groups, err := accountdb.ParseGroup(string(data))
		if err != nil {
			t.Errorf("gpasswd: corrupt group file\n")
			return 1
		}
		for i := range groups {
			if groups[i].Name == groupName {
				groups[i] = *group
			}
		}
		if err := k.WriteFile(t, "/etc/group", []byte(accountdb.FormatGroup(groups))); err != nil {
			t.Errorf("gpasswd: %v\n", err)
			return 1
		}
	} else {
		maybeExploit(k, t)
		fragment := accountdb.GroupsDir + "/" + groupName
		if err := k.WriteFile(t, fragment, []byte(group.Line()+"\n")); err != nil {
			t.Errorf("gpasswd: %v (are you a member of %s?)\n", err, groupName)
			return 1
		}
	}
	t.Printf("gpasswd: password for group %s updated\n", groupName)
	return 0
}

// VipwMain is the administrator's database editor, modified on Protego
// (+40 lines in the paper) to edit per-user files instead of the shared
// database: vipw -s <user> <shell>.
func VipwMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if t.EUID() != 0 {
		t.Errorf("vipw: permission denied\n")
		return 1
	}
	if len(args) != 3 || args[0] != "-s" {
		t.Errorf("usage: vipw -s <user> <shell>\n")
		return 1
	}
	name, shell := args[1], args[2]
	if !protego(k) {
		db := accountdb.NewDB(k.FS)
		user, err := db.LookupUser(name)
		if err != nil {
			t.Errorf("vipw: user %s not found\n", name)
			return 1
		}
		user.Shell = shell
		if err := updateSharedPasswd(k, t, user); err != nil {
			t.Errorf("vipw: %v\n", err)
			return 1
		}
		return 0
	}
	u, err := readOwnFragment(k, t, name)
	if err != nil || u == nil {
		t.Errorf("vipw: cannot read fragment for %s\n", name)
		return 1
	}
	u.Shell = shell
	line := u.Line()
	if err := k.WriteFile(t, accountdb.PasswdsDir+"/"+name, []byte(line+"\n")); err != nil {
		t.Errorf("vipw: %v\n", err)
		return 1
	}
	return 0
}
