package userspace

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"time"

	"protego/internal/accountdb"
	"protego/internal/authsvc"
	"protego/internal/kernel"
)

// LoginMain implements login(1) — a trusted service in both systems (it is
// started by init as root, not setuid-invoked by users). It authenticates
// the named user, stamps the in-kernel authentication recency (the code the
// Protego authentication utility was refactored from), switches
// credentials, and starts the user's shell.
func LoginMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("usage: login <user>\n")
		return 1
	}
	if t.EUID() != 0 {
		t.Errorf("login: must run as root\n")
		return 1
	}
	user, err := userByName(k, args[0])
	if err != nil {
		t.Errorf("login: unknown user %s\n", args[0])
		return 1
	}
	password := t.Ask("Password: ")
	shadow, err := k.ReadFile(t, "/etc/shadow")
	if err != nil {
		t.Errorf("login: cannot read shadow\n")
		return 1
	}
	entries, _ := accountdb.ParseShadow(string(shadow))
	authenticated := false
	for i := range entries {
		if entries[i].Name == user.Name && accountdb.VerifyPassword(entries[i].Hash, password) {
			authenticated = true
			break
		}
	}
	if !authenticated {
		t.Errorf("Login incorrect\n")
		return 1
	}
	// Stamp authentication recency in the task security blob — the
	// session begins freshly authenticated (§4.3).
	t.SetSecurityBlob(authsvc.BlobLastAuth, time.Now())
	db := accountdb.NewDB(k.FS)
	gids, _ := db.GroupIDsOf(user.Name)
	_ = k.Setgroups(t, gids)
	_ = k.Setgid(t, user.GID)
	if err := k.Setuid(t, user.UID); err != nil {
		t.Errorf("login: %v\n", err)
		return 1
	}
	shell := user.Shell
	if shell == "" {
		shell = BinSh
	}
	t.Printf("Welcome, %s\n", user.Name)
	code, err := k.Exec(t, shell, []string{shell}, map[string]string{
		"HOME": user.Home, "USER": user.Name, "SHELL": shell,
		"PATH": "/bin:/sbin:/usr/bin:/usr/sbin",
	})
	if err != nil {
		return 1
	}
	return code
}

// DMInfo is the result of the dmcrypt DMGETINFO ioctl: the paper's point
// is that this single ioctl discloses both the harmless physical device
// *and* the encryption key, forcing privilege onto any reader.
type DMInfo struct {
	PhysicalDevice string
	Key            string
}

// DmcryptMain implements dmcrypt-get-device: report the physical device
// under an encrypted block device. Baseline: privileged DMGETINFO ioctl.
// Protego: a 4-line change — read /sys, which discloses only the device.
func DmcryptMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("usage: dmcrypt-get-device <dm-device>\n")
		return 1
	}
	dev := args[0]
	maybeExploit(k, t)
	if !protego(k) {
		var info DMInfo
		if err := k.Ioctl(t, dev, kernel.DMGETINFO, &info); err != nil {
			t.Errorf("dmcrypt-get-device: %v\n", err)
			return 1
		}
		t.Printf("%s\n", info.PhysicalDevice)
		return 0
	}
	// Protego path: the /sys file exposes only the public portion.
	name := dev[strings.LastIndexByte(dev, '/')+1:]
	data, err := k.ReadFile(t, "/sys/block/"+name+"/dm/slaves")
	if err != nil {
		t.Errorf("dmcrypt-get-device: %v\n", err)
		return 1
	}
	t.Printf("%s", data)
	return 0
}

// HostKeyPath is the ssh host private key location.
const HostKeyPath = "/etc/ssh/ssh_host_key"

// SSHKeysignMain signs the caller-supplied data with the host key.
// Baseline: setuid root to read the 0600 key. Protego: the kernel grants
// the read to this specific binary path (§4.4) — user id checks alone
// cannot express "only ssh-keysign".
func SSHKeysignMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("usage: ssh-keysign <data>\n")
		return 1
	}
	maybeExploit(k, t)
	key, err := k.ReadFile(t, HostKeyPath)
	if err != nil {
		t.Errorf("ssh-keysign: cannot read host key: %v\n", err)
		return 1
	}
	h := sha256.Sum256(append(key, []byte(args[0])...))
	t.Printf("SIG:%s\n", hex.EncodeToString(h[:8]))
	return 0
}

// VideoDevice is the video control device the X server configures.
const VideoDevice = "/dev/dri0"

// XserverMain is the X server stand-in: it sets the video mode (the
// operation that historically demanded 4 capabilities) and draws.
// Baseline: setuid root. Protego: KMS — the kernel context-switches video
// state, so mode setting is grantable to any console user (§4.5).
func XserverMain(k *kernel.Kernel, t *kernel.Task) int {
	maybeExploit(k, t) // CVE-2002-0517, CVE-2006-4447
	if err := k.Ioctl(t, VideoDevice, kernel.VIDIOCSMODE, "1024x768"); err != nil {
		t.Errorf("X: cannot set video mode: %v\n", err)
		return 1
	}
	t.Printf("X server running at 1024x768\n")
	return 0
}

// ShMain is the minimal shell: `sh` exits 0, `sh -c /path args...`
// replaces itself with the named program.
func ShMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) >= 2 && args[0] == "-c" {
		fields := strings.Fields(args[1])
		if len(fields) > 0 && strings.HasPrefix(fields[0], "/") {
			code, err := k.Exec(t, fields[0], fields, nil)
			if err != nil {
				t.Errorf("sh: %s: %v\n", fields[0], err)
				return 127
			}
			return code
		}
	}
	return 0
}

// IDMain prints the caller's identity, like id(1).
func IDMain(k *kernel.Kernel, t *kernel.Task) int {
	t.Printf("uid=%d euid=%d gid=%d egid=%d groups=%v\n",
		t.UID(), t.EUID(), t.GID(), t.EGID(), t.Groups())
	return 0
}

// LsMain lists a directory (used as a harmless delegated command).
func LsMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	dir := t.Cwd()
	if len(args) == 1 {
		dir = args[0]
	}
	names, err := k.ReadDir(t, dir)
	if err != nil {
		t.Errorf("ls: %s: %v\n", dir, err)
		return 1
	}
	for _, n := range names {
		t.Printf("%s\n", n)
	}
	return 0
}

// LprMain queues a print job — the paper's delegation example ("Alice may
// allow Bob to issue the lpr command to print with her credentials").
func LprMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("usage: lpr <file>\n")
		return 1
	}
	data, err := k.ReadFile(t, args[0])
	if err != nil {
		t.Errorf("lpr: %s: %v\n", args[0], err)
		return 1
	}
	job := "job uid=" + itoa(t.EUID()) + " bytes=" + itoa(len(data)) + "\n"
	if err := k.AppendFile(t, "/var/spool/lpd/queue", []byte(job)); err != nil {
		t.Errorf("lpr: cannot queue: %v\n", err)
		return 1
	}
	t.Printf("request id is 1 (1 file)\n")
	return 0
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
