package userspace

import (
	"protego/internal/kernel"
	"protego/internal/netstack"
)

// The remaining high-popularity packages of Table 3: eject (99.24% of
// systems), fping (26.92%), and iputils-tracepath (95.39%). All are setuid
// to root on the baseline and deprivileged on Protego through the same two
// interfaces already studied: umount (§4.2) and raw sockets (§4.1.1).
const (
	BinEject     = "/usr/bin/eject"
	BinFping     = "/usr/bin/fping"
	BinTracepath = "/usr/bin/tracepath"
)

// EjectMain implements eject(1): unmount the removable medium if mounted,
// then eject it. The unmount is governed by the same user/users policy as
// umount — in the trusted binary on the baseline, in the kernel on Protego.
func EjectMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	device := "/dev/cdrom"
	if len(args) == 1 {
		device = args[0]
	} else if len(args) > 1 {
		t.Errorf("usage: eject [device]\n")
		return 1
	}
	if _, err := k.Stat(t, device); err != nil {
		t.Errorf("eject: %s: %v\n", device, err)
		return 1
	}
	maybeExploit(k, t)
	// Find the device's mount point, if any.
	var point string
	for _, m := range k.FS.Mounts() {
		if m.Device == device {
			point = m.Point
			break
		}
	}
	if point != "" {
		if !protego(k) && t.UID() != 0 {
			m := k.FS.MountAt(point)
			entry := resolveFstab(k, t, []string{point})
			permitted := entry != nil &&
				(entry.HasOption("users") || (entry.HasOption("user") && m != nil && m.MountedBy == t.UID()))
			if !permitted {
				t.Errorf("eject: unmount of %s failed: Operation not permitted\n", point)
				return 1
			}
		}
		if err := k.Umount(t, point); err != nil {
			t.Errorf("eject: unmount of %s failed: %v\n", point, err)
			return 1
		}
	}
	t.Printf("%s ejected\n", device)
	return 0
}

// FpingMain implements fping(8): probe several hosts with one ICMP echo
// each and report alive/unreachable per host.
func FpingMain(k *kernel.Kernel, t *kernel.Task) int {
	hosts := t.Argv()[1:]
	if len(hosts) == 0 {
		t.Errorf("usage: fping <host>...\n")
		return 1
	}
	sock, err := k.Socket(t, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP)
	if err != nil {
		t.Errorf("fping: socket: %v\n", err)
		return 1
	}
	defer k.CloseSocket(t, sock)
	maybeExploit(k, t)
	if !protego(k) && t.UID() != 0 && t.EUID() == 0 {
		if err := k.Seteuid(t, t.UID()); err != nil {
			return 1
		}
	}
	alive := 0
	for _, host := range hosts {
		ip, err := netstack.ParseIP(host)
		if err != nil {
			t.Printf("%s address not found\n", host)
			continue
		}
		pkt := &netstack.Packet{
			Dst: ip, Proto: netstack.IPPROTO_ICMP,
			ICMPType: netstack.ICMPEchoRequest, Payload: []byte("fping"),
		}
		if err := k.SendTo(t, sock, pkt); err != nil {
			t.Printf("%s is unreachable\n", host)
			continue
		}
		if _, err := k.RecvFrom(t, sock, recvTimeout); err != nil {
			t.Printf("%s is unreachable\n", host)
			continue
		}
		alive++
		t.Printf("%s is alive\n", host)
	}
	if alive == 0 {
		return 1
	}
	return 0
}

// TracepathMain implements tracepath(8): UDP path probing like traceroute,
// without needing superuser on modern systems — but the iputils build in
// the study carries the setuid bit for the raw receive path.
func TracepathMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("usage: tracepath <dest>\n")
		return 1
	}
	dest, err := netstack.ParseIP(args[0])
	if err != nil {
		t.Errorf("tracepath: %s: Name or service not known\n", args[0])
		return 1
	}
	sock, err := k.Socket(t, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_UDP)
	if err != nil {
		t.Errorf("tracepath: socket: %v\n", err)
		return 1
	}
	defer k.CloseSocket(t, sock)
	maybeExploit(k, t)
	if !protego(k) && t.UID() != 0 && t.EUID() == 0 {
		if err := k.Seteuid(t, t.UID()); err != nil {
			return 1
		}
	}
	for ttl := 1; ttl <= 2; ttl++ {
		pkt := &netstack.Packet{
			Dst: dest, Proto: netstack.IPPROTO_UDP,
			DstPort: 33433 + ttl, TTL: ttl, Payload: []byte("tracepath"),
		}
		if err := k.SendTo(t, sock, pkt); err != nil {
			t.Errorf("tracepath: probe: %v\n", err)
			return 1
		}
		t.Printf("%2d:  %s  asymm\n", ttl, dest)
	}
	t.Printf("     Resume: pmtu 1500\n")
	return 0
}

// installIputils registers the three binaries (called from RegisterAll).
func installIputils(k *kernel.Kernel) {
	k.RegisterBinary(BinEject, EjectMain)
	k.RegisterBinary(BinFping, FpingMain)
	k.RegisterBinary(BinTracepath, TracepathMain)
}
