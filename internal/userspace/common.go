// Package userspace reimplements the setuid-to-root command-line utilities
// of the paper's study as simulated programs: mount, umount, fusermount,
// ping, traceroute, arping, mtr, sudo, sudoedit, su, newgrp, gpasswd,
// passwd, chsh, chfn, vipw, login, pppd, exim, dmcrypt-get-device,
// ssh-keysign, and an X-server stand-in. Each program runs in two worlds:
//
//   - Baseline Linux: the binary's inode carries the setuid bit, so the
//     program executes with euid 0 and enforces the relevant policy itself
//     (reading /etc/fstab, /etc/sudoers, shadow files, ...), dropping
//     privilege when it can. This is the trusted-binary model whose 40
//     historical privilege escalations Table 6 catalogs.
//
//   - Protego: the setuid bit is absent. The program runs with the
//     invoking user's credentials and simply issues system calls; the
//     kernel's Protego LSM enforces the equivalent policy. The only code
//     difference, as in the paper (Table 2), is the removal of hard-coded
//     "must be root" checks.
//
// The exploit-injection hook models a compromised utility: when the
// environment carries PROTEGO_EXPLOIT, the program invokes the attacker
// payload at the point where historical vulnerabilities executed —
// *after* privilege elevation on the baseline.
package userspace

import (
	"strings"

	"protego/internal/accountdb"
	"protego/internal/kernel"
)

// Binary paths, as installed by the world builder.
const (
	BinMount      = "/bin/mount"
	BinUmount     = "/bin/umount"
	BinFusermount = "/bin/fusermount"
	BinPing       = "/bin/ping"
	BinTraceroute = "/usr/bin/traceroute"
	BinArping     = "/usr/bin/arping"
	BinMtr        = "/usr/bin/mtr"
	BinSudo       = "/usr/bin/sudo"
	BinSudoedit   = "/usr/bin/sudoedit"
	BinSu         = "/bin/su"
	BinNewgrp     = "/usr/bin/newgrp"
	BinGpasswd    = "/usr/bin/gpasswd"
	BinPasswd     = "/usr/bin/passwd"
	BinChsh       = "/usr/bin/chsh"
	BinChfn       = "/usr/bin/chfn"
	BinVipw       = "/usr/sbin/vipw"
	BinLogin      = "/bin/login"
	BinPppd       = "/usr/sbin/pppd"
	BinExim       = "/usr/sbin/exim4"
	BinDmcrypt    = "/sbin/dmcrypt-get-device"
	BinSSHKeysign = "/usr/lib/ssh-keysign"
	BinXserver    = "/usr/bin/X"
	BinSh         = "/bin/sh"
	BinID         = "/usr/bin/id"
	BinLs         = "/bin/ls"
	BinLpr        = "/usr/bin/lpr"
	BinIptables   = "/sbin/iptables"
)

// ExploitEnv is the environment variable that triggers the injected
// exploit payload inside a utility (the simulation of "an attacker
// exploits an input parsing bug").
const ExploitEnv = "PROTEGO_EXPLOIT"

// maybeExploit fires the machine's armed exploit payload, if any
// (kernel.SetExploitHook). The hook lives on the kernel — per machine,
// not a package global — so parallel CVE replays on snapshot clones never
// observe each other's payloads.
func maybeExploit(k *kernel.Kernel, t *kernel.Task) {
	hook := k.ExploitHook()
	if hook == nil {
		return
	}
	if cve := t.Getenv(ExploitEnv); cve != "" {
		hook(k, t, cve)
	}
}

// protego reports whether the kernel enforces Protego policies (the
// deprivileged build of the utility).
func protego(k *kernel.Kernel) bool { return k.Mode == kernel.ModeProtego }

// currentUser resolves the task's real uid to a passwd record.
func currentUser(k *kernel.Kernel, t *kernel.Task) (*accountdb.User, error) {
	return accountdb.NewDB(k.FS).LookupUID(t.UID())
}

// userByName resolves a username.
func userByName(k *kernel.Kernel, name string) (*accountdb.User, error) {
	return accountdb.NewDB(k.FS).LookupUser(name)
}

// splitKV splits "key=value" (value may be empty).
func splitKV(s string) (string, string) {
	if i := strings.IndexByte(s, '='); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, ""
}

// RegisterAll installs every utility program in the kernel's binary
// registry. The world builder creates the corresponding inodes (with or
// without setuid bits, per mode).
func RegisterAll(k *kernel.Kernel) {
	k.RegisterBinary(BinMount, MountMain)
	k.RegisterBinary(BinUmount, UmountMain)
	k.RegisterBinary(BinFusermount, FusermountMain)
	k.RegisterBinary(BinPing, PingMain)
	k.RegisterBinary(BinTraceroute, TracerouteMain)
	k.RegisterBinary(BinArping, ArpingMain)
	k.RegisterBinary(BinMtr, MtrMain)
	k.RegisterBinary(BinSudo, SudoMain)
	k.RegisterBinary(BinSudoedit, SudoeditMain)
	k.RegisterBinary(BinSudoeditHelper, SudoeditHelperMain)
	k.RegisterBinary(BinSu, SuMain)
	k.RegisterBinary(BinNewgrp, NewgrpMain)
	k.RegisterBinary(BinGpasswd, GpasswdMain)
	k.RegisterBinary(BinPasswd, PasswdMain)
	k.RegisterBinary(BinChsh, ChshMain)
	k.RegisterBinary(BinChfn, ChfnMain)
	k.RegisterBinary(BinVipw, VipwMain)
	k.RegisterBinary(BinLogin, LoginMain)
	k.RegisterBinary(BinPppd, PppdMain)
	k.RegisterBinary(BinExim, EximMain)
	k.RegisterBinary(BinDmcrypt, DmcryptMain)
	k.RegisterBinary(BinSSHKeysign, SSHKeysignMain)
	k.RegisterBinary(BinXserver, XserverMain)
	k.RegisterBinary(BinSh, ShMain)
	k.RegisterBinary(BinID, IDMain)
	k.RegisterBinary(BinLs, LsMain)
	k.RegisterBinary(BinLpr, LprMain)
	k.RegisterBinary(BinIptables, IptablesMain)
	k.RegisterBinary(BinHttpd, HttpdMain)
	k.RegisterBinary(BinChromiumSandbox, ChromiumSandboxMain)
	installIputils(k)
}
