package userspace

import (
	"strconv"
	"time"

	"protego/internal/kernel"
	"protego/internal/netstack"
)

// BinHttpd is the web server used by the ApacheBench-style benchmark.
const BinHttpd = "/usr/sbin/httpd"

// HTTPPort is the privileged port the server binds.
const HTTPPort = 80

// HttpdMain implements a minimal web server:
//
//	httpd serve <n>   accept and answer n requests, then exit
//
// Baseline: started as root to bind port 80 (CAP_NET_BIND_SERVICE), then
// drops privilege. Protego: started as www-data; the kernel's /etc/bind
// allocation grants port 80 to this (binary, uid) instance.
func HttpdMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 2 || args[0] != "serve" {
		t.Errorf("usage: httpd serve <n>\n")
		return 1
	}
	n, err := strconv.Atoi(args[1])
	if err != nil || n < 0 {
		t.Errorf("httpd: bad count %q\n", args[1])
		return 1
	}
	sock, err := k.Socket(t, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP)
	if err != nil {
		t.Errorf("httpd: socket: %v\n", err)
		return 1
	}
	defer k.CloseSocket(t, sock)
	if err := k.Bind(t, sock, HTTPPort); err != nil {
		t.Errorf("httpd: cannot bind port %d: %v\n", HTTPPort, err)
		return 1
	}
	if err := k.Listen(t, sock, 256); err != nil {
		t.Errorf("httpd: listen: %v\n", err)
		return 1
	}
	if !protego(k) && t.UID() != 0 && t.EUID() == 0 {
		if err := k.Seteuid(t, t.UID()); err != nil {
			return 1
		}
	}
	body, err := k.ReadFile(t, "/var/www/index.html")
	if err != nil {
		body = []byte("<html>protego</html>")
	}
	response := append([]byte("HTTP/1.0 200 OK\r\n\r\n"), body...)
	for i := 0; i < n; i++ {
		conn, err := k.Accept(t, sock, 2*time.Second)
		if err != nil {
			t.Errorf("httpd: accept: %v\n", err)
			return 1
		}
		if _, err := k.Recv(t, conn, 2*time.Second); err != nil {
			continue
		}
		_, _ = k.Send(t, conn, response)
	}
	return 0
}
