package userspace_test

import (
	"strings"
	"testing"

	"protego/internal/kernel"
	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

// run executes a binary as the given user on a fresh machine of each mode
// and returns the Protego result (callers that care about the baseline use
// runOn directly).
func runOn(t *testing.T, mode kernel.Mode, user string, asker func(string) string, argv ...string) (int, string, string) {
	t.Helper()
	m, err := world.Build(world.Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.Session(user)
	if err != nil {
		t.Fatal(err)
	}
	code, out, errOut, _ := m.Run(sess, argv, asker)
	return code, out, errOut
}

func bothModes(t *testing.T, fn func(t *testing.T, mode kernel.Mode)) {
	for _, mode := range []kernel.Mode{kernel.ModeLinux, kernel.ModeProtego} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) { fn(t, mode) })
	}
}

// --- usage errors (the exhaustive-flag half of Table 7's coverage) ---

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{userspace.BinUmount},
		{userspace.BinPing},
		{userspace.BinPing, "-c"},
		{userspace.BinPing, "-c", "-3", "10.0.0.2"},
		{userspace.BinTraceroute},
		{userspace.BinArping},
		{userspace.BinMtr},
		{userspace.BinSudo},
		{userspace.BinSudoedit},
		{userspace.BinNewgrp},
		{userspace.BinNewgrp, "a", "b"},
		{userspace.BinGpasswd},
		{userspace.BinPasswd, "x", "y"},
		{userspace.BinChsh},
		{userspace.BinChsh, "-x", "/bin/sh"},
		{userspace.BinChfn},
		{userspace.BinLogin},
		{userspace.BinPppd},
		{userspace.BinExim},
		{userspace.BinExim, "bogus"},
		{userspace.BinExim, "serve"},
		{userspace.BinExim, "serve", "NaN"},
		{userspace.BinExim, "send", "rcpt"},
		{userspace.BinDmcrypt},
		{userspace.BinSSHKeysign},
		{userspace.BinLpr},
		{userspace.BinHttpd},
		{userspace.BinHttpd, "serve", "NaN"},
		{userspace.BinMount, "-t"},
		{userspace.BinMount, "-o"},
		{userspace.BinVipw},
	}
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		for _, argv := range cases {
			code, _, errOut := runOn(t, mode, "alice", nil, argv...)
			if code == 0 {
				t.Errorf("%v: expected failure, got success", argv)
			}
			if errOut == "" {
				t.Errorf("%v: no diagnostic", argv)
			}
		}
	})
}

// --- id / ls / sh / lpr ---

func TestIDOutput(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, out, _ := runOn(t, mode, "alice", nil, userspace.BinID)
		if code != 0 || !strings.Contains(out, "uid=1000 euid=1000") {
			t.Fatalf("id: %d %q", code, out)
		}
	})
}

func TestLs(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, out, _ := runOn(t, mode, "alice", nil, userspace.BinLs, "/etc")
		if code != 0 || !strings.Contains(out, "fstab") {
			t.Fatalf("ls: %d %q", code, out)
		}
		code, _, errOut := runOn(t, mode, "alice", nil, userspace.BinLs, "/nosuch")
		if code == 0 || errOut == "" {
			t.Fatal("ls of missing dir")
		}
		// Permission-denied listing.
		code, _, _ = runOn(t, mode, "bob", nil, userspace.BinLs, "/home/alice")
		if code == 0 {
			t.Fatal("bob listed alice's home")
		}
	})
}

func TestShDashC(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, out, _ := runOn(t, mode, "alice", nil, userspace.BinSh, "-c", userspace.BinID)
		if code != 0 || !strings.Contains(out, "uid=1000") {
			t.Fatalf("sh -c id: %d %q", code, out)
		}
		// Non-path command is a no-op success (minimal shell).
		code, _, _ = runOn(t, mode, "alice", nil, userspace.BinSh, "-c", "true")
		if code != 0 {
			t.Fatal("sh -c true")
		}
		// Missing binary.
		code, _, _ = runOn(t, mode, "alice", nil, userspace.BinSh, "-c", "/bin/nothere")
		if code != 127 {
			t.Fatalf("sh -c missing: %d", code)
		}
	})
}

func TestLprQueues(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		m, err := world.Build(world.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		alice, _ := m.Session("alice")
		if err := m.K.WriteFile(alice, "/tmp/j.txt", []byte("12345")); err != nil {
			t.Fatal(err)
		}
		code, out, errOut, _ := m.Run(alice, []string{userspace.BinLpr, "/tmp/j.txt"}, nil)
		if code != 0 {
			t.Fatalf("lpr: %s", errOut)
		}
		if !strings.Contains(out, "request id") {
			t.Fatalf("lpr out: %q", out)
		}
		queue, _ := m.K.FS.ReadFile(vfs.RootCred, "/var/spool/lpd/queue")
		if !strings.Contains(string(queue), "uid=1000 bytes=5") {
			t.Fatalf("queue: %q", queue)
		}
		// Missing file.
		code, _, _, _ = m.Run(alice, []string{userspace.BinLpr, "/tmp/none"}, nil)
		if code == 0 {
			t.Fatal("lpr of missing file")
		}
	})
}

// --- mount list / fusermount ---

func TestMountListsTable(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		m, err := world.Build(world.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		alice, _ := m.Session("alice")
		if code, _, e, _ := m.Run(alice, []string{userspace.BinMount, "/dev/cdrom", "/cdrom"}, nil); code != 0 {
			t.Fatalf("mount: %s", e)
		}
		code, out, _, _ := m.Run(alice, []string{userspace.BinMount}, nil)
		if code != 0 || !strings.Contains(out, "/dev/cdrom /cdrom iso9660") {
			t.Fatalf("mount list: %d %q", code, out)
		}
	})
}

func TestFusermount(t *testing.T) {
	// Policy: a user may FUSE-mount only over a directory she owns —
	// enforced by the trusted binary on the baseline and by the kernel
	// on Protego.
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		m, err := world.Build(world.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		alice, _ := m.Session("alice")
		// Not alice's directory: refused.
		code, _, _, _ := m.Run(alice, []string{userspace.BinFusermount, "/mnt"}, nil)
		if code == 0 {
			t.Fatal("fuse mount over root-owned dir succeeded")
		}
		// Her own directory: permitted, and unmountable again.
		if err := m.K.Mkdir(alice, "/home/alice/fusepoint", 0o755); err != nil {
			t.Fatal(err)
		}
		code, _, errOut, _ := m.Run(alice, []string{userspace.BinFusermount, "/home/alice/fusepoint"}, nil)
		if code != 0 {
			t.Fatalf("fuse mount over own dir: %s", errOut)
		}
		if m.K.FS.MountAt("/home/alice/fusepoint") == nil {
			t.Fatal("fuse mount missing from table")
		}
		code, _, errOut, _ = m.Run(alice, []string{userspace.BinFusermount, "-u", "/home/alice/fusepoint"}, nil)
		if code != 0 {
			t.Fatalf("fusermount -u: %s", errOut)
		}
	})
}

func TestFusermountUsage(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, _, _ := runOn(t, mode, "alice", nil, userspace.BinFusermount, "-u")
		if code == 0 {
			t.Fatal("bad usage accepted")
		}
	})
}

// --- vipw ---

func TestVipwRootOnly(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, _, _ := runOn(t, mode, "alice", nil, userspace.BinVipw, "-s", "alice", "/bin/zsh")
		if code == 0 {
			t.Fatal("vipw by non-root")
		}
	})
}

func TestVipwEditsShell(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		m, err := world.Build(world.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		root, _ := m.Session("root")
		code, _, errOut, _ := m.Run(root, []string{userspace.BinVipw, "-s", "bob", "/bin/zsh"}, nil)
		if code != 0 {
			t.Fatalf("vipw: %s", errOut)
		}
		if mode == kernel.ModeProtego {
			if err := m.Monitor.SyncAccountsFromFragments(); err != nil {
				t.Fatal(err)
			}
		}
		u, err := m.DB.LookupUser("bob")
		if err != nil || u.Shell != "/bin/zsh" {
			t.Fatalf("shell: %+v %v", u, err)
		}
		// Unknown user.
		code, _, _, _ = m.Run(root, []string{userspace.BinVipw, "-s", "ghost", "/bin/zsh"}, nil)
		if code == 0 {
			t.Fatal("vipw of ghost user")
		}
	})
}

// --- login ---

func TestLoginFlow(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, out, _ := runOn(t, mode, "root", world.AnswerWith(world.AlicePassword), userspace.BinLogin, "alice")
		if code != 0 || !strings.Contains(out, "Welcome, alice") {
			t.Fatalf("login: %d %q", code, out)
		}
		code, _, _ = runOn(t, mode, "root", world.AnswerWith("bad"), userspace.BinLogin, "alice")
		if code == 0 {
			t.Fatal("wrong password login")
		}
		code, _, _ = runOn(t, mode, "root", nil, userspace.BinLogin, "ghost")
		if code == 0 {
			t.Fatal("login of ghost user")
		}
		// login requires root.
		code, _, _ = runOn(t, mode, "bob", world.AnswerWith(world.AlicePassword), userspace.BinLogin, "alice")
		if code == 0 {
			t.Fatal("non-root login")
		}
	})
}

// --- traceroute / arping output ---

func TestTracerouteOutput(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, out, errOut := runOn(t, mode, "alice", nil, userspace.BinTraceroute, "10.0.0.2")
		if code != 0 {
			t.Fatalf("traceroute: %s", errOut)
		}
		if !strings.Contains(out, "traceroute to 10.0.0.2") {
			t.Fatalf("out: %q", out)
		}
		code, _, _ = runOn(t, mode, "alice", nil, userspace.BinTraceroute, "bogus-host")
		if code == 0 {
			t.Fatal("traceroute to bogus host")
		}
	})
}

func TestArpingOutput(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, out, errOut := runOn(t, mode, "alice", nil, userspace.BinArping, "10.0.0.2")
		if code != 0 {
			t.Fatalf("arping: %s", errOut)
		}
		if !strings.Contains(out, "ARPING") {
			t.Fatalf("out: %q", out)
		}
	})
}

// --- dmcrypt error path ---

func TestDmcryptUnknownDevice(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, _, _ := runOn(t, mode, "alice", nil, userspace.BinDmcrypt, "/dev/dm-9")
		if code == 0 {
			t.Fatal("unknown dm device accepted")
		}
	})
}

// --- pppd error paths ---

func TestPppdUnknownIface(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, _, _ := runOn(t, mode, "alice", nil, userspace.BinPppd, "ppp9")
		if code == 0 {
			t.Fatal("attach to missing iface")
		}
	})
}

func TestPppdBadRoute(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		for _, bad := range []string{"--route=notanip/24", "--route=10.0.0.0", "--route=10.0.0.0/99", "--mystery"} {
			code, _, _ := runOn(t, mode, "alice", nil, userspace.BinPppd, "ppp0", bad)
			if code == 0 {
				t.Errorf("pppd accepted %q", bad)
			}
		}
	})
}

// --- iptables parsing ---

func TestIptablesAppendAndFlush(t *testing.T) {
	m, err := world.BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	root, _ := m.Session("root")
	code, _, errOut, _ := m.Run(root, []string{userspace.BinIptables, "-A", "OUTPUT", "-p", "udp", "-m", "spoofed", "-j", "DROP"}, nil)
	if code != 0 {
		t.Fatalf("append: %s", errOut)
	}
	_, out, _, _ := m.Run(root, []string{userspace.BinIptables, "-S"}, nil)
	if !strings.Contains(out, "-p udp") {
		t.Fatalf("rule missing: %q", out)
	}
	code, _, _, _ = m.Run(root, []string{userspace.BinIptables, "-F", "OUTPUT"}, nil)
	if code != 0 {
		t.Fatal("flush failed")
	}
	_, out, _, _ = m.Run(root, []string{userspace.BinIptables, "-S"}, nil)
	if strings.Contains(out, "unprivraw") {
		t.Fatalf("flush incomplete: %q", out)
	}
	// Parse errors.
	for _, argv := range [][]string{
		{userspace.BinIptables, "-A"},
		{userspace.BinIptables, "-A", "OUTPUT", "-p"},
		{userspace.BinIptables, "-A", "OUTPUT", "-p", "sctp"},
		{userspace.BinIptables, "-F"},
		{userspace.BinIptables, "-X", "OUTPUT"},
	} {
		code, _, _, _ := m.Run(root, argv, nil)
		if code == 0 {
			t.Errorf("accepted %v", argv)
		}
	}
}

// --- newgrp starts a shell with the new gid ---

func TestNewgrpShellGid(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		code, out, errOut := runOn(t, mode, "alice", nil, userspace.BinNewgrp, "ops")
		if code != 0 {
			t.Fatalf("newgrp: %s", errOut)
		}
		if !strings.Contains(out, "gid=20") {
			t.Fatalf("gid output: %q", out)
		}
	})
}

// --- ssh-keysign determinism ---

func TestSSHKeysignDeterministic(t *testing.T) {
	bothModes(t, func(t *testing.T, mode kernel.Mode) {
		_, out1, _ := runOn(t, mode, "alice", nil, userspace.BinSSHKeysign, "data")
		_, out2, _ := runOn(t, mode, "alice", nil, userspace.BinSSHKeysign, "data")
		if out1 != out2 || !strings.HasPrefix(out1, "SIG:") {
			t.Fatalf("signatures: %q %q", out1, out2)
		}
		_, other, _ := runOn(t, mode, "alice", nil, userspace.BinSSHKeysign, "different")
		if other == out1 {
			t.Fatal("signature ignores input")
		}
	})
}

// --- cross-mode: signatures agree (same key, same hash) ---

func TestSSHKeysignCrossModeEqual(t *testing.T) {
	_, linuxSig, _ := runOn(t, kernel.ModeLinux, "alice", nil, userspace.BinSSHKeysign, "payload")
	_, protegoSig, _ := runOn(t, kernel.ModeProtego, "alice", nil, userspace.BinSSHKeysign, "payload")
	if linuxSig != protegoSig {
		t.Fatalf("cross-mode signatures differ: %q %q", linuxSig, protegoSig)
	}
}
