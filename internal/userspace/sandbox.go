package userspace

import (
	"time"

	"protego/internal/kernel"
	"protego/internal/netstack"
)

// BinChromiumSandbox is the sandboxing helper of §4.6: "until version 3.8,
// ... sandboxing utilities, such as chromium-sandbox, had to run
// setuid-to-root" because creating namespaces required privilege.
const BinChromiumSandbox = "/usr/lib/chromium/chromium-sandbox"

// ChromiumSandboxMain creates a user+network namespace sandbox and proves
// the paper's two points about namespaces (§6):
//
//  1. Inside the sandbox the process can use "privileged" abstractions
//     freely — it creates a raw socket and pings inside its fake network,
//     with no capability and no Protego policy involved.
//  2. The fake network has no route to the outside world: connecting to
//     the host's real address fails. Namespaces isolate; they cannot
//     delegate safe access to *shared* resources, which is exactly the
//     problem Protego solves.
//
// On kernels without unprivileged namespaces (the baseline's Linux 3.6.0)
// the helper needs its setuid bit to call unshare(2) at all.
func ChromiumSandboxMain(k *kernel.Kernel, t *kernel.Task) int {
	maybeExploit(k, t)
	if err := k.Unshare(t, kernel.CLONE_NEWUSER|kernel.CLONE_NEWNET); err != nil {
		t.Errorf("chromium-sandbox: unshare: %v (need setuid on kernels < 3.8)\n", err)
		return 1
	}
	// Point 1: namespace-local raw networking, no privilege needed.
	sock, err := k.Socket(t, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP)
	if err != nil {
		t.Errorf("chromium-sandbox: raw socket inside sandbox: %v\n", err)
		return 1
	}
	defer k.CloseSocket(t, sock)
	inside := &netstack.Packet{
		Dst:      netstack.IPv4(10, 200, 0, 2), // the sandbox's own fake address
		Proto:    netstack.IPPROTO_ICMP,
		ICMPType: netstack.ICMPEchoRequest,
		Payload:  []byte("sandbox ping"),
	}
	if err := k.SendTo(t, sock, inside); err != nil {
		t.Errorf("chromium-sandbox: ping inside sandbox: %v\n", err)
		return 1
	}
	if _, err := k.RecvFrom(t, sock, 100*time.Millisecond); err != nil {
		t.Errorf("chromium-sandbox: no echo inside sandbox: %v\n", err)
		return 1
	}
	t.Printf("sandbox: fake network up, icmp echo ok\n")

	// Point 2: the outside world is unreachable from the fake network.
	outside, err := k.Socket(t, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP)
	if err != nil {
		t.Errorf("chromium-sandbox: tcp socket: %v\n", err)
		return 1
	}
	defer k.CloseSocket(t, outside)
	if err := k.Connect(t, outside, netstack.IPv4(10, 0, 0, 2), 80); err == nil {
		t.Errorf("chromium-sandbox: BREACH: reached the host network from the sandbox\n")
		return 1
	}
	t.Printf("sandbox: host network unreachable, isolation holds\n")
	return 0
}
