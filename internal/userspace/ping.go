package userspace

import (
	"fmt"
	"strconv"
	"time"

	"protego/internal/kernel"
	"protego/internal/netstack"
)

// recvTimeout bounds waits for network replies in the simulation.
const recvTimeout = 250 * time.Millisecond

// PingMain implements ping(8) over a raw ICMP socket.
//
// Baseline: the binary is setuid root so socket(AF_INET, SOCK_RAW) passes
// the CAP_NET_RAW check; following best practice it drops privilege with
// setuid(getuid()) immediately after creating the socket — but the
// historical CVEs (1999-1208, 2000-1213, 2000-1214, 2001-0499) executed
// before or despite the drop, which is where the exploit hook fires.
// Protego: any user may create the raw socket; outgoing packets are
// subject to the netfilter raw-socket rules (§4.1.1).
func PingMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	count := 1
	var destArg string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-c":
			if i+1 >= len(args) {
				t.Errorf("ping: -c needs an argument\n")
				return 1
			}
			i++
			n, err := strconv.Atoi(args[i])
			if err != nil || n <= 0 {
				t.Errorf("ping: bad count %q\n", args[i])
				return 1
			}
			count = n
		default:
			destArg = args[i]
		}
	}
	if destArg == "" {
		t.Errorf("ping: usage: ping [-c count] <dest>\n")
		return 1
	}
	dest, err := netstack.ParseIP(destArg)
	if err != nil {
		t.Errorf("ping: unknown host %s\n", destArg)
		return 1
	}

	sock, err := k.Socket(t, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP)
	if err != nil {
		t.Errorf("ping: socket: %v (are you root?)\n", err)
		return 1
	}
	defer k.CloseSocket(t, sock)

	// Injection point: the socket is open; on the baseline the process
	// is still euid 0 here, about to drop privilege.
	maybeExploit(k, t)

	// Drop privilege after the last privileged call, as the audited
	// binaries do (§3.1).
	if !protego(k) && t.UID() != 0 && t.EUID() == 0 {
		if err := k.Seteuid(t, t.UID()); err != nil {
			t.Errorf("ping: cannot drop privilege: %v\n", err)
			return 1
		}
	}

	received := 0
	for seq := 1; seq <= count; seq++ {
		payload := []byte(fmt.Sprintf("protego-ping seq=%d", seq))
		pkt := &netstack.Packet{
			Dst:      dest,
			Proto:    netstack.IPPROTO_ICMP,
			ICMPType: netstack.ICMPEchoRequest,
			Payload:  payload,
		}
		if err := k.SendTo(t, sock, pkt); err != nil {
			t.Errorf("ping: sendto: %v\n", err)
			return 1
		}
		reply, err := k.RecvFrom(t, sock, recvTimeout)
		if err != nil {
			t.Printf("Request timeout for icmp_seq %d\n", seq)
			continue
		}
		if reply.ICMPType == netstack.ICMPEchoReply {
			received++
			t.Printf("%d bytes from %s: icmp_seq=%d\n", len(reply.Payload), reply.Src, seq)
		}
	}
	t.Printf("%d packets transmitted, %d received\n", count, received)
	if received == 0 {
		return 1
	}
	return 0
}

// TracerouteMain implements a UDP-probe traceroute: probes to the classic
// 33434+ port range, which the default Protego netfilter rules whitelist.
func TracerouteMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("traceroute: usage: traceroute <dest>\n")
		return 1
	}
	dest, err := netstack.ParseIP(args[0])
	if err != nil {
		t.Errorf("traceroute: unknown host %s\n", args[0])
		return 1
	}
	sock, err := k.Socket(t, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_UDP)
	if err != nil {
		t.Errorf("traceroute: socket: %v\n", err)
		return 1
	}
	defer k.CloseSocket(t, sock)
	maybeExploit(k, t)
	if !protego(k) && t.UID() != 0 && t.EUID() == 0 {
		if err := k.Seteuid(t, t.UID()); err != nil {
			return 1
		}
	}
	t.Printf("traceroute to %s, 3 hops max\n", dest)
	for ttl := 1; ttl <= 3; ttl++ {
		pkt := &netstack.Packet{
			Dst:     dest,
			Proto:   netstack.IPPROTO_UDP,
			DstPort: 33433 + ttl,
			TTL:     ttl,
			Payload: []byte("probe"),
		}
		if err := k.SendTo(t, sock, pkt); err != nil {
			t.Errorf("traceroute: probe ttl=%d: %v\n", ttl, err)
			return 1
		}
		t.Printf(" %d  %s\n", ttl, dest)
	}
	return 0
}

// ArpingMain sends probes over a packet socket (AF_PACKET), the second
// flavor of privileged socket in the study.
func ArpingMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("arping: usage: arping <dest>\n")
		return 1
	}
	dest, err := netstack.ParseIP(args[0])
	if err != nil {
		t.Errorf("arping: unknown host %s\n", args[0])
		return 1
	}
	sock, err := k.Socket(t, netstack.AF_PACKET, netstack.SOCK_RAW, 0)
	if err != nil {
		t.Errorf("arping: socket: %v\n", err)
		return 1
	}
	defer k.CloseSocket(t, sock)
	maybeExploit(k, t)
	pkt := &netstack.Packet{
		Dst:      dest,
		Proto:    netstack.IPPROTO_ICMP, // stand-in for an ARP frame
		ICMPType: netstack.ICMPEchoRequest,
		Payload:  []byte("who-has"),
	}
	if err := k.SendTo(t, sock, pkt); err != nil {
		t.Errorf("arping: send: %v\n", err)
		return 1
	}
	t.Printf("ARPING %s: 1 probe sent\n", dest)
	return 0
}

// MtrMain combines ping and traceroute (the mtr-tiny package, CVEs
// 2000-0172, 2002-0497, 2004-1224).
func MtrMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("mtr: usage: mtr <dest>\n")
		return 1
	}
	dest, err := netstack.ParseIP(args[0])
	if err != nil {
		t.Errorf("mtr: unknown host %s\n", args[0])
		return 1
	}
	sock, err := k.Socket(t, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP)
	if err != nil {
		t.Errorf("mtr: socket: %v\n", err)
		return 1
	}
	defer k.CloseSocket(t, sock)
	maybeExploit(k, t)
	if !protego(k) && t.UID() != 0 && t.EUID() == 0 {
		if err := k.Seteuid(t, t.UID()); err != nil {
			return 1
		}
	}
	pkt := &netstack.Packet{
		Dst:      dest,
		Proto:    netstack.IPPROTO_ICMP,
		ICMPType: netstack.ICMPEchoRequest,
		Payload:  []byte("mtr probe"),
	}
	if err := k.SendTo(t, sock, pkt); err != nil {
		t.Errorf("mtr: send: %v\n", err)
		return 1
	}
	if _, err := k.RecvFrom(t, sock, recvTimeout); err != nil {
		t.Printf("HOST: %s  Loss%%: 100.0\n", dest)
		return 1
	}
	t.Printf("HOST: %s  Loss%%: 0.0%%  Snt: 1\n", dest)
	return 0
}
