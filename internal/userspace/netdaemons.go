package userspace

import (
	"strconv"
	"strings"
	"time"

	"protego/internal/kernel"
	"protego/internal/netfilter"
	"protego/internal/netstack"
)

// PppDevice is the PPP control device. Protego changed its file system
// permissions to be more permissive, replacing a capability check with
// device file permissions (§4.1.2).
const PppDevice = "/dev/ppp"

// PppdMain implements the PPP daemon's privileged surface:
//
//	pppd <iface> [--param key=value]... [--route a.b.c.d/len]...
//
// Baseline: setuid root; when invoked by a non-root user it enforces the
// /etc/ppp/options policy itself (safe session parameters only; routes
// only if enabled and non-conflicting) and then issues the privileged
// ioctls with euid 0. Protego: it just issues the ioctls; the kernel's
// LSM enforces the same policy (and the route-conflict check).
func PppdMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) < 1 {
		t.Errorf("usage: pppd <iface> [--param k=v] [--route ip/len]\n")
		return 1
	}
	iface := args[0]
	var params [][2]string
	var routes []netstack.Route
	for _, a := range args[1:] {
		switch {
		case strings.HasPrefix(a, "--param"):
			kv := strings.TrimPrefix(a, "--param=")
			key, val := splitKV(kv)
			params = append(params, [2]string{key, val})
		case strings.HasPrefix(a, "--route="):
			spec := strings.TrimPrefix(a, "--route=")
			route, err := parseRouteSpec(spec, iface)
			if err != nil {
				t.Errorf("pppd: bad route %q\n", spec)
				return 1
			}
			routes = append(routes, route)
		default:
			t.Errorf("pppd: unknown argument %q\n", a)
			return 1
		}
	}

	maybeExploit(k, t)

	if !protego(k) && t.UID() != 0 {
		// Trusted-binary policy enforcement: parse /etc/ppp/options
		// and refuse unsafe requests before using euid-0 powers.
		if t.EUID() != 0 {
			t.Errorf("pppd: must be setuid root\n")
			return 1
		}
		opts, err := readPPPOptions(k, t)
		if err != nil {
			t.Errorf("pppd: cannot read options: %v\n", err)
			return 1
		}
		if !opts.DeviceAllowed(PppDevice) {
			t.Errorf("pppd: device not permitted for users\n")
			return 1
		}
		for _, p := range params {
			if !opts.ParamSafe(p[0]) {
				t.Errorf("pppd: option %q not permitted\n", p[0])
				return 1
			}
		}
		for _, r := range routes {
			if !opts.AllowUserRoutes() || k.Net.RouteConflicts(r) {
				t.Errorf("pppd: route %s not permitted\n", r)
				return 1
			}
		}
	}

	if err := k.Ioctl(t, PppDevice, kernel.PPPIOCATTACH, iface); err != nil {
		t.Errorf("pppd: attach %s: %v\n", iface, err)
		return 1
	}
	// Once attached, a failed parameter or route request must tear the
	// session back down; otherwise a refusal on Protego (where the checks
	// happen at the ioctl, after attach) would strand the modem in-use
	// while the baseline (which pre-checks before any euid-0 action)
	// leaves it free.
	fail := func() int {
		_ = k.Ioctl(t, PppDevice, kernel.PPPIOCDETACH, iface)
		return 1
	}
	for _, p := range params {
		if err := k.Ioctl(t, PppDevice, kernel.PPPIOCSPARAM, p); err != nil {
			t.Errorf("pppd: set %s: %v\n", p[0], err)
			return fail()
		}
	}
	for _, r := range routes {
		if err := k.AddRoute(t, r); err != nil {
			t.Errorf("pppd: route %s: %v\n", r, err)
			return fail()
		}
	}
	t.Printf("pppd: %s up\n", iface)
	return 0
}

func readPPPOptions(k *kernel.Kernel, t *kernel.Task) (*pppOptions, error) {
	data, err := k.ReadFile(t, "/etc/ppp/options")
	if err != nil {
		return nil, err
	}
	return parsePPPOptionsLite(string(data)), nil
}

// pppOptions is the utility's own view of the options file (the baseline
// duplicates the kernel parser — that duplication is exactly the trusted
// code the paper deprivileges).
type pppOptions struct {
	safe    map[string]bool
	routes  bool
	devices map[string]bool
}

func parsePPPOptionsLite(data string) *pppOptions {
	o := &pppOptions{
		safe:    map[string]bool{"bsdcomp": true, "deflate": true, "vj-max-slots": true, "mtu": true, "mru": true, "asyncmap": true, "lcp-echo-interval": true},
		devices: map[string]bool{},
	}
	for _, line := range strings.Split(data, "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "safe-param":
			if len(fields) == 2 {
				o.safe[fields[1]] = true
			}
		case "user-routes":
			o.routes = true
		case "device":
			if len(fields) == 2 {
				o.devices[fields[1]] = true
			}
		}
	}
	return o
}

func (o *pppOptions) ParamSafe(name string) bool     { return o.safe[name] }
func (o *pppOptions) DeviceAllowed(path string) bool { return o.devices[path] }
func (o *pppOptions) AllowUserRoutes() bool          { return o.routes }

func parseRouteSpec(spec, iface string) (netstack.Route, error) {
	slash := strings.IndexByte(spec, '/')
	if slash < 0 {
		return netstack.Route{}, strconv.ErrSyntax
	}
	ip, err := netstack.ParseIP(spec[:slash])
	if err != nil {
		return netstack.Route{}, err
	}
	prefix, err := strconv.Atoi(spec[slash+1:])
	if err != nil || prefix < 0 || prefix > 32 {
		return netstack.Route{}, strconv.ErrSyntax
	}
	return netstack.Route{Dest: ip, PrefixLen: prefix, Iface: iface, Metric: 10}, nil
}

// MailSpoolDir receives delivered messages.
const MailSpoolDir = "/var/mail"

// SMTPPort is the privileged port exim binds.
const SMTPPort = 25

// EximMain implements the mail server surface used by the Postal-style
// benchmark and the bind-policy tests:
//
//	exim4 serve <n>          accept and deliver n messages, then exit
//	exim4 send <rcpt> <msg>  submit a message to the local server
//
// Baseline: started as root to pass the CAP_NET_BIND_SERVICE check, then
// drops privilege after binding. Protego: started directly as the
// Debian-exim user; the kernel's /etc/bind allocation grants port 25 to
// this (binary, uid) instance only (§4.1.3).
func EximMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) < 1 {
		t.Errorf("usage: exim4 serve <n> | send <rcpt> <msg>\n")
		return 1
	}
	switch args[0] {
	case "serve":
		if len(args) != 2 {
			t.Errorf("exim4: serve needs a count\n")
			return 1
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n < 0 {
			t.Errorf("exim4: bad count %q\n", args[1])
			return 1
		}
		return eximServe(k, t, n)
	case "send":
		if len(args) != 3 {
			t.Errorf("exim4: send needs <rcpt> <msg>\n")
			return 1
		}
		return eximSend(k, t, args[1], args[2])
	default:
		t.Errorf("exim4: unknown command %q\n", args[0])
		return 1
	}
}

func eximServe(k *kernel.Kernel, t *kernel.Task, n int) int {
	// Historical exim CVEs (2010-2023, 2010-2024) ran while root on the
	// baseline, during startup before the privilege drop.
	maybeExploit(k, t)
	sock, err := k.Socket(t, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP)
	if err != nil {
		t.Errorf("exim4: socket: %v\n", err)
		return 1
	}
	defer k.CloseSocket(t, sock)
	if err := k.Bind(t, sock, SMTPPort); err != nil {
		t.Errorf("exim4: cannot bind port %d: %v\n", SMTPPort, err)
		return 1
	}
	if err := k.Listen(t, sock, 64); err != nil {
		t.Errorf("exim4: listen: %v\n", err)
		return 1
	}
	if !protego(k) && t.UID() != 0 && t.EUID() == 0 {
		if err := k.Seteuid(t, t.UID()); err != nil {
			return 1
		}
	}
	for i := 0; i < n; i++ {
		conn, err := k.Accept(t, sock, 2*time.Second)
		if err != nil {
			t.Errorf("exim4: accept: %v\n", err)
			return 1
		}
		data, err := k.Recv(t, conn, 2*time.Second)
		if err != nil {
			continue
		}
		rcpt, msg := splitKV(string(data))
		if rcpt == "" {
			continue
		}
		spool := MailSpoolDir + "/" + rcpt
		if err := k.AppendFile(t, spool, []byte(msg+"\n")); err != nil {
			_ = k.WriteFile(t, spool, []byte(msg+"\n"))
		}
		_, _ = k.Send(t, conn, []byte("250 OK"))
	}
	return 0
}

func eximSend(k *kernel.Kernel, t *kernel.Task, rcpt, msg string) int {
	sock, err := k.Socket(t, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP)
	if err != nil {
		t.Errorf("exim4: socket: %v\n", err)
		return 1
	}
	defer k.CloseSocket(t, sock)
	if err := k.Connect(t, sock, k.Net.HostIP(), SMTPPort); err != nil {
		t.Errorf("exim4: connect: %v\n", err)
		return 1
	}
	if _, err := k.Send(t, sock, []byte(rcpt+"="+msg)); err != nil {
		t.Errorf("exim4: send: %v\n", err)
		return 1
	}
	if _, err := k.Recv(t, sock, 2*time.Second); err != nil {
		t.Errorf("exim4: no ack: %v\n", err)
		return 1
	}
	return 0
}

// IptablesMain is the administrator's interface to the netfilter table —
// the paper extends iptables by 175 lines for the raw-socket rules. Only
// the flavors the evaluation needs are implemented:
//
//	iptables -S                                    list rules
//	iptables -A OUTPUT -p <proto> [-m unprivraw] -j <ACCEPT|DROP>
//	iptables -F OUTPUT                             flush
func IptablesMain(k *kernel.Kernel, t *kernel.Task) int {
	if t.EUID() != 0 {
		t.Errorf("iptables: permission denied (you must be root)\n")
		return 1
	}
	args := t.Argv()[1:]
	if len(args) == 0 || args[0] == "-S" {
		t.Printf("%s", k.Filter.List())
		return 0
	}
	switch args[0] {
	case "-F":
		if len(args) != 2 {
			t.Errorf("iptables: -F needs a chain\n")
			return 1
		}
		if err := k.Filter.Flush(args[1]); err != nil {
			t.Errorf("iptables: %v\n", err)
			return 1
		}
		return 0
	case "-A":
		rule, chain, err := parseIptablesAppend(args[1:])
		if err != nil {
			t.Errorf("iptables: %v\n", err)
			return 1
		}
		if err := k.Filter.Append(chain, rule); err != nil {
			t.Errorf("iptables: %v\n", err)
			return 1
		}
		return 0
	default:
		t.Errorf("iptables: unsupported command %q\n", args[0])
		return 1
	}
}

func parseIptablesAppend(args []string) (*netfilter.Rule, string, error) {
	if len(args) < 1 {
		return nil, "", strconv.ErrSyntax
	}
	chain := args[0]
	rule := &netfilter.Rule{Proto: netfilter.AnyProto, Verdict: netfilter.Accept}
	for i := 1; i < len(args); i++ {
		switch args[i] {
		case "-p":
			i++
			if i >= len(args) {
				return nil, "", strconv.ErrSyntax
			}
			switch args[i] {
			case "icmp":
				rule.Proto = netstack.IPPROTO_ICMP
			case "tcp":
				rule.Proto = netstack.IPPROTO_TCP
			case "udp":
				rule.Proto = netstack.IPPROTO_UDP
			default:
				return nil, "", strconv.ErrSyntax
			}
		case "-m":
			i++
			if i >= len(args) {
				return nil, "", strconv.ErrSyntax
			}
			switch args[i] {
			case "unprivraw":
				rule.UnprivRawOnly = true
			case "spoofed":
				rule.SpoofedOnly = true
			}
		case "-j":
			i++
			if i >= len(args) {
				return nil, "", strconv.ErrSyntax
			}
			if args[i] == "DROP" {
				rule.Verdict = netfilter.Drop
			}
		}
	}
	return rule, chain, nil
}
