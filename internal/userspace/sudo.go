package userspace

import (
	"fmt"
	"strings"
	"time"

	"protego/internal/accountdb"
	"protego/internal/errno"
	"protego/internal/kernel"
	"protego/internal/policy"
)

// BinSudoeditHelper performs sudoedit's privileged file access after a
// validated setuid-on-exec transition (Protego mode).
const BinSudoeditHelper = "/usr/lib/sudoedit-helper"

// sudoTimestampDir holds the baseline sudo's per-user authentication
// timestamps (the userspace ancestor of Protego's in-kernel recency).
const sudoTimestampDir = "/var/run/sudo"

// readSudoers loads and parses /etc/sudoers plus /etc/sudoers.d/* with the
// task's credentials (euid 0 on the baseline).
func readSudoers(k *kernel.Kernel, t *kernel.Task) (*policy.Sudoers, error) {
	var b strings.Builder
	data, err := k.ReadFile(t, "/etc/sudoers")
	if err != nil {
		return nil, err
	}
	b.Write(data)
	b.WriteByte('\n')
	if names, err := k.ReadDir(t, "/etc/sudoers.d"); err == nil {
		for _, name := range names {
			frag, err := k.ReadFile(t, "/etc/sudoers.d/"+name)
			if err == nil {
				b.Write(frag)
				b.WriteByte('\n')
			}
		}
	}
	return policy.ParseSudoers(b.String())
}

// baselineAuthenticate implements the setuid sudo's own password check:
// recent timestamp file, or prompt and verify against /etc/shadow (which
// the euid-0 process can read), then refresh the timestamp.
func baselineAuthenticate(k *kernel.Kernel, t *kernel.Task, user *accountdb.User, window time.Duration) bool {
	stampPath := sudoTimestampDir + "/" + user.Name
	if ino, err := k.FS.Lookup(t.Creds(), stampPath); err == nil {
		if time.Since(ino.Mtime) <= window {
			return true
		}
	}
	password := t.Ask("[sudo] password for " + user.Name + ": ")
	shadow, err := k.ReadFile(t, "/etc/shadow")
	if err != nil {
		return false
	}
	entries, err := accountdb.ParseShadow(string(shadow))
	if err != nil {
		return false
	}
	for i := range entries {
		if entries[i].Name == user.Name {
			if accountdb.VerifyPassword(entries[i].Hash, password) {
				_ = k.WriteFile(t, stampPath, []byte("1"))
				return true
			}
			return false
		}
	}
	return false
}

// SudoMain implements sudo(8): sudo [-u target] command [args...]
//
// Baseline: the binary runs euid 0 from the moment of exec; it parses
// sudoers, authenticates, sanitizes the environment, and only then
// switches uid — every historical exploit in Table 6 ran inside this
// window. Protego: the process never holds privilege; setuid(2) consults
// the kernel's delegation policy (authenticating via the trusted service),
// and for command-restricted rules the transition completes at exec, where
// the kernel validates the binary.
func SudoMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	targetName := "root"
	if len(args) >= 2 && args[0] == "-u" {
		targetName = args[1]
		args = args[2:]
	}
	if len(args) == 0 {
		t.Errorf("usage: sudo [-u user] command [args...]\n")
		return 1
	}
	cmd := args[0]
	user, err := currentUser(k, t)
	if err != nil {
		t.Errorf("sudo: cannot identify caller: %v\n", err)
		return 1
	}
	target, err := userByName(k, targetName)
	if err != nil {
		t.Errorf("sudo: unknown user %s\n", targetName)
		return 1
	}

	if !protego(k) {
		// ---- Trusted-binary path (euid 0 throughout). ----
		if t.EUID() != 0 {
			t.Errorf("sudo: must be setuid root\n")
			return 1
		}
		sudoers, err := readSudoers(k, t)
		if err != nil {
			t.Errorf("sudo: cannot read sudoers: %v\n", err)
			return 1
		}
		// Injection point: parsing attacker-influenced input with
		// full privilege (CVE-2002-0184, CVE-2009-0034, ...).
		maybeExploit(k, t)
		db := accountdb.NewDB(k.FS)
		groups, _ := db.GroupNamesOf(user.Name)
		grant, ok := sudoers.LookupCommand(user.Name, groups, targetName, cmd)
		if !ok {
			t.Errorf("sudo: %s is not allowed to run %s as %s\n", user.Name, cmd, targetName)
			return 1
		}
		if user.UID != 0 && !grant.NoPasswd {
			if !baselineAuthenticate(k, t, user, sudoers.TimestampTimeout) {
				t.Errorf("sudo: authentication failure\n")
				return 1
			}
		}
		env := sudoers.SanitizeEnv(t.Env(), grant)
		env["SUDO_USER"] = user.Name
		// Establish the target's groups while still privileged, then
		// switch uid last (the classic ordering from "Setuid
		// Demystified").
		gids, _ := db.GroupIDsOf(targetName)
		_ = k.Setgroups(t, gids)
		_ = k.Setgid(t, target.GID)
		if err := k.Setuid(t, target.UID); err != nil {
			t.Errorf("sudo: setuid: %v\n", err)
			return 1
		}
		code, err := k.Exec(t, cmd, args, env)
		if err != nil {
			t.Errorf("sudo: %s: %v\n", cmd, err)
			return 1
		}
		return code
	}

	// ---- Deprivileged path: the kernel enforces everything. ----
	maybeExploit(k, t) // a compromised sudo holds no privilege here
	env := t.Env()
	env["SUDO_USER"] = user.Name
	if err := k.Setuid(t, target.UID); err != nil {
		if err == errno.EPERM {
			t.Errorf("sudo: %s is not allowed to run as %s\n", user.Name, targetName)
		} else {
			t.Errorf("sudo: %v\n", err)
		}
		return 1
	}
	// On an immediately-granted transition the task now holds the
	// target's privilege and can establish the target's groups; on a
	// deferred transition these calls fail harmlessly and the kernel
	// sets the groups at exec.
	if k.Geteuid(t) == target.UID {
		db := accountdb.NewDB(k.FS)
		gids, _ := db.GroupIDsOf(targetName)
		_ = k.Setgroups(t, gids)
		_ = k.Setgid(t, target.GID)
	}
	code, err := k.Exec(t, cmd, args, env)
	if err != nil {
		// The deferred setuid-on-exec check failed: the command is
		// not whitelisted for this delegation (§4.3).
		t.Errorf("sudo: %s: %v\n", cmd, err)
		return 1
	}
	return code
}

// SuMain implements su(1): su [target] [-c command]. Authorization is the
// *target's* password (§4.3).
func SuMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	targetName := "root"
	var command string
	for i := 0; i < len(args); i++ {
		if args[i] == "-c" {
			if i+1 >= len(args) {
				t.Errorf("su: -c needs an argument\n")
				return 1
			}
			i++
			command = args[i]
		} else {
			targetName = args[i]
		}
	}
	target, err := userByName(k, targetName)
	if err != nil {
		t.Errorf("su: user %s does not exist\n", targetName)
		return 1
	}

	if !protego(k) {
		if t.EUID() != 0 {
			t.Errorf("su: must be setuid root\n")
			return 1
		}
		maybeExploit(k, t) // CVE-2000-0996, CVE-2002-0816
		if t.UID() != 0 {
			password := t.Ask("Password: ")
			shadow, err := k.ReadFile(t, "/etc/shadow")
			if err != nil {
				t.Errorf("su: cannot read shadow\n")
				return 1
			}
			entries, _ := accountdb.ParseShadow(string(shadow))
			ok := false
			for i := range entries {
				if entries[i].Name == targetName && accountdb.VerifyPassword(entries[i].Hash, password) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("su: Authentication failure\n")
				return 1
			}
		}
		gids, _ := accountdb.NewDB(k.FS).GroupIDsOf(targetName)
		_ = k.Setgroups(t, gids)
		_ = k.Setgid(t, target.GID)
		if err := k.Setuid(t, target.UID); err != nil {
			t.Errorf("su: %v\n", err)
			return 1
		}
	} else {
		maybeExploit(k, t)
		// The kernel's su policy collects and verifies the target's
		// password through the trusted authentication service.
		if err := k.Setuid(t, target.UID); err != nil {
			t.Errorf("su: Authentication failure\n")
			return 1
		}
		if k.Geteuid(t) == target.UID {
			gids, _ := accountdb.NewDB(k.FS).GroupIDsOf(targetName)
			_ = k.Setgroups(t, gids)
			_ = k.Setgid(t, target.GID)
		}
	}

	shell := target.Shell
	if shell == "" {
		shell = BinSh
	}
	argv := []string{shell}
	if command != "" {
		argv = append(argv, "-c", command)
	}
	code, err := k.Exec(t, shell, argv, nil)
	if err != nil {
		t.Errorf("su: %s: %v\n", shell, err)
		return 1
	}
	return code
}

// SudoeditMain implements sudoedit <file>: privileged file access through
// delegation. On the baseline the euid-0 process reads the file itself
// after a sudoers check; on Protego it defers a root transition and execs
// the whitelisted helper, so only the helper's narrow operation ever runs
// with privilege.
func SudoeditMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("usage: sudoedit <file>\n")
		return 1
	}
	file := args[0]
	user, err := currentUser(k, t)
	if err != nil {
		t.Errorf("sudoedit: cannot identify caller: %v\n", err)
		return 1
	}

	if !protego(k) {
		if t.EUID() != 0 {
			t.Errorf("sudoedit: must be setuid root\n")
			return 1
		}
		sudoers, err := readSudoers(k, t)
		if err != nil {
			t.Errorf("sudoedit: cannot read sudoers: %v\n", err)
			return 1
		}
		maybeExploit(k, t) // CVE-2004-1689
		db := accountdb.NewDB(k.FS)
		groups, _ := db.GroupNamesOf(user.Name)
		if _, ok := sudoers.LookupCommand(user.Name, groups, "root", BinSudoeditHelper); !ok {
			t.Errorf("sudoedit: %s may not edit files as root\n", user.Name)
			return 1
		}
		data, err := k.ReadFile(t, file)
		if err != nil {
			t.Errorf("sudoedit: %s: %v\n", file, err)
			return 1
		}
		t.Printf("%s", data)
		return 0
	}

	maybeExploit(k, t)
	if err := k.Setuid(t, 0); err != nil {
		t.Errorf("sudoedit: not permitted\n")
		return 1
	}
	code, err := k.Exec(t, BinSudoeditHelper, []string{BinSudoeditHelper, file}, nil)
	if err != nil {
		t.Errorf("sudoedit: %v\n", err)
		return 1
	}
	return code
}

// SudoeditHelperMain is the privileged tail of sudoedit: it runs only
// after the kernel has validated the delegated transition.
func SudoeditHelperMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("sudoedit-helper: usage: sudoedit-helper <file>\n")
		return 1
	}
	data, err := k.ReadFile(t, args[0])
	if err != nil {
		t.Errorf("sudoedit-helper: %s: %v\n", args[0], err)
		return 1
	}
	t.Printf("%s", data)
	return 0
}

// NewgrpMain implements newgrp(1): join a (possibly password-protected)
// group and start a shell with the new primary gid.
func NewgrpMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("usage: newgrp <group>\n")
		return 1
	}
	db := accountdb.NewDB(k.FS)
	group, err := db.LookupGroup(args[0])
	if err != nil {
		t.Errorf("newgrp: group %s does not exist\n", args[0])
		return 1
	}
	user, err := currentUser(k, t)
	if err != nil {
		t.Errorf("newgrp: cannot identify caller\n")
		return 1
	}

	if !protego(k) {
		if t.EUID() != 0 {
			t.Errorf("newgrp: must be setuid root\n")
			return 1
		}
		maybeExploit(k, t) // 6 historical CVEs, Table 6
		member := false
		for _, m := range group.Members {
			if m == user.Name {
				member = true
				break
			}
		}
		if !member && user.GID != group.GID {
			if group.Password == "" {
				t.Errorf("newgrp: permission denied\n")
				return 1
			}
			password := t.Ask("Password: ")
			if !accountdb.VerifyPassword(group.Password, password) {
				t.Errorf("newgrp: permission denied\n")
				return 1
			}
		}
		if err := k.Setgid(t, group.GID); err != nil {
			t.Errorf("newgrp: %v\n", err)
			return 1
		}
		if err := k.Setuid(t, user.UID); err != nil {
			t.Errorf("newgrp: %v\n", err)
			return 1
		}
	} else {
		maybeExploit(k, t)
		// Base policy admits members; the Protego LSM authenticates
		// password-protected groups via the trusted service.
		if err := k.Setgid(t, group.GID); err != nil {
			t.Errorf("newgrp: permission denied\n")
			return 1
		}
	}

	fmt.Fprintf(t.Stdout, "gid=%d\n", t.EGID())
	code, err := k.Exec(t, BinSh, []string{BinSh}, nil)
	if err != nil {
		return 1
	}
	return code
}
