package userspace

import (
	"strings"

	"protego/internal/kernel"
	"protego/internal/policy"
	"protego/internal/vfs"
)

// MountMain implements mount(8):
//
//	mount [-t fstype] [-o opt,opt] <device|mountpoint> [mountpoint]
//
// Baseline: the binary is setuid root. When invoked by a non-root real
// uid, it reads /etc/fstab itself and refuses anything not marked
// user-mountable — the trusted-binary policy check of Figure 1 (left).
// Protego: the hard-coded root check is removed; the call goes straight to
// mount(2) and the kernel whitelist decides (Figure 1, right).
func MountMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	fstype := "auto"
	var opts []string
	var positional []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-t":
			if i+1 >= len(args) {
				t.Errorf("mount: -t needs an argument\n")
				return 1
			}
			i++
			fstype = args[i]
		case "-o":
			if i+1 >= len(args) {
				t.Errorf("mount: -o needs an argument\n")
				return 1
			}
			i++
			for _, o := range strings.Split(args[i], ",") {
				if o != "" && o != "defaults" {
					opts = append(opts, o)
				}
			}
		default:
			positional = append(positional, args[i])
		}
	}
	if len(positional) == 0 {
		// No arguments: print the mount table, like mount(8).
		t.Printf("%s", k.FS.FormatMtab())
		return 0
	}

	entry := resolveFstab(k, t, positional)
	var device, point string
	switch {
	case len(positional) == 2:
		device, point = positional[0], positional[1]
	case entry != nil:
		device, point = entry.Device, entry.MountPoint
	default:
		t.Errorf("mount: can't find %s in /etc/fstab\n", positional[0])
		return 1
	}
	if entry != nil {
		if fstype == "auto" {
			fstype = entry.FSType
		}
		if len(opts) == 0 {
			opts = append(opts, entry.Options...)
		}
	}

	// The injection point: argument/fstab parsing is where mount's
	// historical vulnerabilities lived (CVE-2006-2183, CVE-2007-5191).
	// On the baseline the process is euid 0 here.
	maybeExploit(k, t)

	if !protego(k) && t.UID() != 0 {
		// Trusted-binary policy enforcement (baseline only).
		if entry == nil || !entry.UserMountable() {
			t.Errorf("mount: only root can mount %s on %s\n", device, point)
			return 1
		}
		if !optionsAllowed(opts, entry) {
			t.Errorf("mount: option not permitted for user mount\n")
			return 1
		}
	}
	if err := k.Mount(t, device, point, fstype, opts); err != nil {
		t.Errorf("mount: %s: %v\n", point, err)
		return 1
	}
	t.Printf("%s mounted on %s\n", device, point)
	return 0
}

// resolveFstab finds the fstab entry matching the positional arguments
// (by device or by mount point).
func resolveFstab(k *kernel.Kernel, t *kernel.Task, positional []string) *policy.FstabEntry {
	data, err := k.ReadFile(t, "/etc/fstab")
	if err != nil {
		return nil
	}
	entries, err := policy.ParseFstab(string(data))
	if err != nil {
		return nil
	}
	want := positional[0]
	wantPoint := want
	if len(positional) == 2 {
		wantPoint = positional[1]
	}
	for i := range entries {
		e := &entries[i]
		if e.Device == want || vfs.CleanPath(e.MountPoint, "/") == vfs.CleanPath(wantPoint, "/") {
			return e
		}
	}
	return nil
}

// optionsAllowed checks requested options against a user fstab entry (the
// baseline utility's userspace version of the kernel whitelist check).
func optionsAllowed(opts []string, entry *policy.FstabEntry) bool {
	allowed := map[string]bool{
		"ro": true, "nosuid": true, "nodev": true, "noexec": true,
		"user": true, "users": true, "noauto": true, "sync": true,
	}
	for _, o := range entry.Options {
		allowed[o] = true
	}
	for _, o := range opts {
		if !allowed[o] {
			return false
		}
	}
	return true
}

// UmountMain implements umount(8).
func UmountMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) != 1 {
		t.Errorf("umount: usage: umount <mountpoint>\n")
		return 1
	}
	point := vfs.CleanPath(args[0], t.Cwd())

	maybeExploit(k, t)

	if !protego(k) && t.UID() != 0 {
		m := k.FS.MountAt(point)
		if m == nil {
			t.Errorf("umount: %s: not mounted\n", point)
			return 1
		}
		entry := resolveFstab(k, t, []string{point})
		switch {
		case entry != nil && entry.HasOption("users"):
			// anyone may unmount
		case entry != nil && entry.HasOption("user") && m.MountedBy == t.UID():
			// the mounting user may unmount
		default:
			t.Errorf("umount: %s: only root can unmount\n", point)
			return 1
		}
	}
	if err := k.Umount(t, point); err != nil {
		t.Errorf("umount: %s: %v\n", point, err)
		return 1
	}
	t.Printf("%s unmounted\n", point)
	return 0
}

// FusermountMain is the FUSE mount helper. Its policy — a user may mount a
// FUSE file system over a directory she owns — is enforced by the trusted
// binary on the baseline and by the kernel on Protego.
func FusermountMain(k *kernel.Kernel, t *kernel.Task) int {
	args := t.Argv()[1:]
	if len(args) == 2 && args[0] == "-u" {
		if err := k.Umount(t, args[1]); err != nil {
			t.Errorf("fusermount: %v\n", err)
			return 1
		}
		return 0
	}
	if len(args) != 1 {
		t.Errorf("fusermount: usage: fusermount <mountpoint> | -u <mountpoint>\n")
		return 1
	}
	point := args[0]
	maybeExploit(k, t)
	if !protego(k) && t.UID() != 0 {
		ino, err := k.Stat(t, point)
		if err != nil || !ino.Mode.IsDir() || ino.UID != t.UID() {
			t.Errorf("fusermount: user has no write access to mountpoint %s\n", point)
			return 1
		}
	}
	if err := k.Mount(t, "fuse", point, "fuse", []string{"user"}); err != nil {
		t.Errorf("fusermount: %v\n", err)
		return 1
	}
	return 0
}
