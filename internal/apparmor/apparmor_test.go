package apparmor

import (
	"testing"

	"protego/internal/caps"
	"protego/internal/lsm"
)

type aaTask struct {
	lsm.NullFilterSlot
	binary string
}

func (t *aaTask) PID() int                    { return 1 }
func (t *aaTask) UID() int                    { return 1000 }
func (t *aaTask) EUID() int                   { return 0 } // confined setuid binary
func (t *aaTask) GID() int                    { return 100 }
func (t *aaTask) EGID() int                   { return 100 }
func (t *aaTask) Groups() []int               { return nil }
func (t *aaTask) Capable(caps.Cap) bool       { return true }
func (t *aaTask) BinaryPath() string          { return t.binary }
func (t *aaTask) SecurityBlob(string) any     { return nil }
func (t *aaTask) SetSecurityBlob(string, any) {}

func confinedMount() *Profile {
	return &Profile{
		Binary:         "/bin/mount",
		MountPoints:    []string{"/cdrom", "/media"},
		WritePaths:     []string{"/etc/mtab", "/var/log"},
		DenyWritePaths: []string{"/etc/shadow"},
	}
}

func TestUnconfinedNoOpinion(t *testing.T) {
	m := New()
	task := &aaTask{binary: "/bin/anything"}
	d, err := m.FileOpen(task, &lsm.OpenRequest{Path: "/etc/shadow", Write: true})
	if d != lsm.NoOpinion || err != nil {
		t.Fatalf("unconfined: %v %v", d, err)
	}
}

func TestConfinedWriteDenied(t *testing.T) {
	m := New()
	m.LoadProfile(confinedMount())
	task := &aaTask{binary: "/bin/mount"}
	// Outside the write set.
	d, err := m.FileOpen(task, &lsm.OpenRequest{Path: "/etc/passwd", Write: true})
	if d != lsm.Deny || err == nil {
		t.Fatalf("outside write set: %v %v", d, err)
	}
	// Deny list beats write list.
	d, _ = m.FileOpen(task, &lsm.OpenRequest{Path: "/etc/shadow", Write: true})
	if d != lsm.Deny {
		t.Fatal("deny list ignored")
	}
	// Inside the write set.
	d, _ = m.FileOpen(task, &lsm.OpenRequest{Path: "/var/log/syslog", Write: true})
	if d != lsm.NoOpinion {
		t.Fatal("allowed write denied")
	}
	// Reads are unconstrained by this profile.
	d, _ = m.FileOpen(task, &lsm.OpenRequest{Path: "/etc/passwd", Write: false})
	if d != lsm.NoOpinion {
		t.Fatal("read denied")
	}
	if m.Denials != 2 {
		t.Fatalf("denials = %d", m.Denials)
	}
}

func TestConfinedMountPoints(t *testing.T) {
	m := New()
	m.LoadProfile(confinedMount())
	task := &aaTask{binary: "/bin/mount"}
	d, _ := m.MountCheck(task, &lsm.MountRequest{Point: "/cdrom"})
	if d != lsm.NoOpinion {
		t.Fatal("allowed mount denied")
	}
	d, _ = m.MountCheck(task, &lsm.MountRequest{Point: "/media/usb"})
	if d != lsm.NoOpinion {
		t.Fatal("nested mount denied")
	}
	d, err := m.MountCheck(task, &lsm.MountRequest{Point: "/etc"})
	if d != lsm.Deny || err == nil {
		t.Fatal("profile escape: mount over /etc")
	}
}

func TestComplainMode(t *testing.T) {
	m := New()
	p := confinedMount()
	p.Complain = true
	m.LoadProfile(p)
	task := &aaTask{binary: "/bin/mount"}
	d, _ := m.FileOpen(task, &lsm.OpenRequest{Path: "/etc/passwd", Write: true})
	if d != lsm.NoOpinion {
		t.Fatal("complain mode enforced")
	}
	if m.Denials != 0 {
		t.Fatal("complain mode counted a denial")
	}
}

func TestProfileManagement(t *testing.T) {
	m := New()
	m.LoadProfile(confinedMount())
	if m.Profiles() != 1 {
		t.Fatal("profile not loaded")
	}
	m.RemoveProfile("/bin/mount")
	if m.Profiles() != 0 {
		t.Fatal("profile not removed")
	}
	task := &aaTask{binary: "/bin/mount"}
	d, _ := m.FileOpen(task, &lsm.OpenRequest{Path: "/etc/passwd", Write: true})
	if d != lsm.NoOpinion {
		t.Fatal("removed profile still enforced")
	}
}

func TestEmptyWriteSetUnrestricted(t *testing.T) {
	m := New()
	m.LoadProfile(&Profile{Binary: "/bin/ping", DenyWritePaths: []string{"/etc"}})
	task := &aaTask{binary: "/bin/ping"}
	d, _ := m.FileOpen(task, &lsm.OpenRequest{Path: "/tmp/x", Write: true})
	if d != lsm.NoOpinion {
		t.Fatal("empty write set should be unrestricted outside deny list")
	}
	d, _ = m.FileOpen(task, &lsm.OpenRequest{Path: "/etc/hosts", Write: true})
	if d != lsm.Deny {
		t.Fatal("deny list not applied")
	}
}
