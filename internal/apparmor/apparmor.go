// Package apparmor implements a small path-confinement LSM in the style of
// AppArmor, the module the Protego prototype extends and the baseline the
// paper measures against ("Linux with AppArmor"). Profiles attach to
// binaries and restrict which paths a confined task may write and which
// mount points it may operate on. As the paper's §1 explains, this enforces
// least privilege from the *administrator's* perspective only: a confined
// but compromised mount can still "arbitrarily change the file system
// tree" within its profile; it is Protego's object-based policies that
// protect against the unprivileged user.
package apparmor

import (
	"strings"
	"sync"

	"protego/internal/errno"
	"protego/internal/lsm"
	"protego/internal/vfs"
)

// Profile confines one binary.
type Profile struct {
	// Binary is the path of the confined executable.
	Binary string
	// WritePaths are path prefixes the task may write; empty means
	// unrestricted writes.
	WritePaths []string
	// DenyWritePaths are path prefixes always refused, evaluated before
	// WritePaths.
	DenyWritePaths []string
	// MountPoints are path prefixes the task may mount over; empty
	// means unrestricted (subject to base policy).
	MountPoints []string
	// Complain puts the profile in complain (audit-only) mode.
	Complain bool
}

func underAny(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if vfs.IsUnder(path, strings.TrimSuffix(p, "/")) {
			return true
		}
	}
	return false
}

// Module is the AppArmor LSM.
type Module struct {
	lsm.Base
	mu       sync.RWMutex
	profiles map[string]*Profile

	// Denials counts enforced denials, observable by tests.
	Denials int
}

// New creates an AppArmor module with no profiles loaded (the permissive
// baseline configuration the paper benchmarks against).
func New() *Module {
	return &Module{profiles: make(map[string]*Profile)}
}

// Name implements lsm.Module.
func (m *Module) Name() string { return "apparmor" }

// LoadProfile installs (or replaces) a profile.
func (m *Module) LoadProfile(p *Profile) {
	m.mu.Lock()
	m.profiles[vfs.CleanPath(p.Binary, "/")] = p
	m.mu.Unlock()
}

// RemoveProfile unloads the profile for binary.
func (m *Module) RemoveProfile(binary string) {
	m.mu.Lock()
	delete(m.profiles, vfs.CleanPath(binary, "/"))
	m.mu.Unlock()
}

// Profiles returns the number of loaded profiles.
func (m *Module) Profiles() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.profiles)
}

func (m *Module) profileFor(t lsm.Task) *Profile {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.profiles[t.BinaryPath()]
}

// FileOpen denies writes outside the profile's write set.
func (m *Module) FileOpen(t lsm.Task, req *lsm.OpenRequest) (lsm.Decision, error) {
	p := m.profileFor(t)
	if p == nil || !req.Write {
		return lsm.NoOpinion, nil
	}
	if underAny(req.Path, p.DenyWritePaths) ||
		(len(p.WritePaths) > 0 && !underAny(req.Path, p.WritePaths)) {
		if p.Complain {
			return lsm.NoOpinion, nil
		}
		m.mu.Lock()
		m.Denials++
		m.mu.Unlock()
		return lsm.Deny, errno.EACCES
	}
	return lsm.NoOpinion, nil
}

// MountCheck denies mounts outside the profile's mount set.
func (m *Module) MountCheck(t lsm.Task, req *lsm.MountRequest) (lsm.Decision, error) {
	p := m.profileFor(t)
	if p == nil || len(p.MountPoints) == 0 {
		return lsm.NoOpinion, nil
	}
	if !underAny(req.Point, p.MountPoints) {
		if p.Complain {
			return lsm.NoOpinion, nil
		}
		m.mu.Lock()
		m.Denials++
		m.mu.Unlock()
		return lsm.Deny, errno.EACCES
	}
	return lsm.NoOpinion, nil
}

var _ lsm.Module = (*Module)(nil)

// Clone returns an independent module with the same profiles loaded and a
// fresh denial counter. Profiles are immutable once loaded, so the
// pointers are shared; the map is copied so LoadProfile/RemoveProfile on
// either side stays private. Used by machine snapshots.
func (m *Module) Clone() *Module {
	m.mu.RLock()
	defer m.mu.RUnlock()
	c := New()
	for path, p := range m.profiles {
		c.profiles[path] = p
	}
	return c
}
