// Package authsvc implements the trusted authentication utility of the
// Protego design (Table 2: 1,200 lines refactored from login and newgrp).
// The kernel launches it when a setuid/setgid transition requires
// authentication: it takes over the task's terminal, collects a password,
// verifies it against the (fragmented) shadow database, and stamps the
// task's security blob with the authentication time. The Protego LSM
// consults the stamp to enforce the recency requirement (§4.3): a setuid
// system call without a recent authentication of the current user triggers
// this service, unless a sudoers NOPASSWD directive applies.
package authsvc

import (
	"sync"
	"sync/atomic"
	"time"

	"protego/internal/accountdb"
	"protego/internal/errno"
	"protego/internal/faultinject"
	"protego/internal/lsm"
	"protego/internal/policy"
	"protego/internal/trace"
)

// BlobLastAuth is the task security blob key holding the last successful
// authentication time (a time.Time) — the paper's task_struct field.
const BlobLastAuth = "auth.last"

// Prompter is anything that can answer an interactive prompt; kernel.Task
// implements it (the simulated terminal).
type Prompter interface {
	Ask(prompt string) string
}

// Service is the authentication utility.
type Service struct {
	db *accountdb.DB

	mu sync.Mutex
	// Window is the recency window (sudo's timestamp_timeout).
	window time.Duration
	// now is injectable for tests.
	now func() time.Time

	// Attempts counts password verifications, observable in tests and
	// the ablation benchmarks.
	Attempts int

	// tracer, when set, receives one auth event per check. Installed at
	// world build, before the service handles requests.
	tracer *trace.Tracer

	// faults, when armed, perturbs shadow-database lookups (verification
	// timeouts, database I/O errors). Nil means no injection.
	faults atomic.Pointer[faultinject.Injector]
}

// New creates a service over the account database with the default
// 5-minute window.
func New(db *accountdb.DB) *Service {
	return &Service{
		db:     db,
		window: policy.DefaultTimestampTimeout,
		now:    time.Now,
	}
}

// SetTracer installs the trace sink for authentication checks.
func (s *Service) SetTracer(tr *trace.Tracer) { s.tracer = tr }

// SetFaultInjector arms fault injection on the shadow-database path.
func (s *Service) SetFaultInjector(in *faultinject.Injector) { s.faults.Store(in) }

// maxVerifyRetries bounds how many consecutive verification timeouts the
// service absorbs before failing closed.
const maxVerifyRetries = 2

// shadowHash resolves the user's shadow hash through the fault injector:
// a verification timeout (authsvc.verify, ETIMEDOUT) is retried up to
// maxVerifyRetries times; any other verify error, and any database error
// (authsvc.db), fails closed immediately. Either way an error here can
// only ever deny — never grant — authentication.
func (s *Service) shadowHash(user string) (string, error) {
	in := s.faults.Load()
	for attempt := 0; ; attempt++ {
		err := in.Check(faultinject.SiteAuthVerify)
		if err == nil {
			break
		}
		if !errno.Is(err, errno.ETIMEDOUT) || attempt >= maxVerifyRetries {
			return "", err
		}
	}
	if err := in.Check(faultinject.SiteAuthDB); err != nil {
		return "", err
	}
	return s.db.ShadowHash(user)
}

// observe emits one auth event; t may be nil for non-task checks.
func (s *Service) observe(mechanism, subject string, t lsm.Task, ok bool) {
	pid, uid := 0, -1
	if t != nil {
		pid, uid = t.PID(), t.UID()
	}
	s.tracer.AuthCheck(mechanism, subject, pid, uid, ok)
}

// SetWindow adjusts the recency window (driven by the sudoers
// timestamp_timeout directive via the monitoring daemon).
func (s *Service) SetWindow(d time.Duration) {
	s.mu.Lock()
	s.window = d
	s.mu.Unlock()
}

// Window returns the current recency window.
func (s *Service) Window() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window
}

// SetClock injects a time source for tests.
func (s *Service) SetClock(now func() time.Time) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

func (s *Service) clock() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now()
}

// Stamp records a successful authentication on the task.
func (s *Service) Stamp(t lsm.Task) {
	t.SetSecurityBlob(BlobLastAuth, s.clock())
}

// RecentlyAuthenticated reports whether the task authenticated within the
// window.
func (s *Service) RecentlyAuthenticated(t lsm.Task) bool {
	v := t.SecurityBlob(BlobLastAuth)
	if v == nil {
		return false
	}
	last, ok := v.(time.Time)
	if !ok {
		return false
	}
	return s.clock().Sub(last) <= s.Window()
}

// VerifyPassword checks a password for the named user against the shadow
// database without prompting.
func (s *Service) VerifyPassword(user, password string) bool {
	s.mu.Lock()
	s.Attempts++
	s.mu.Unlock()
	hash, err := s.shadowHash(user)
	if err != nil {
		return false
	}
	return accountdb.VerifyPassword(hash, password)
}

// AuthenticateUser takes over the terminal and asks for the named user's
// password (sudo asks for the *calling* user's, su for the *target*'s; the
// caller chooses). On success, if the authenticated user is the task's own
// real identity, the recency stamp is updated. Returns EACCES on failure
// or when the task has no terminal.
func (s *Service) AuthenticateUser(t lsm.Task, user string, ownIdentity bool) error {
	p, ok := t.(Prompter)
	if !ok {
		s.observe("password", user, t, false)
		return errno.EACCES
	}
	password := p.Ask("[protego-auth] password for " + user + ": ")
	if !s.VerifyPassword(user, password) {
		s.observe("password", user, t, false)
		return errno.EACCES
	}
	s.observe("password", user, t, true)
	if ownIdentity {
		s.Stamp(t)
	}
	return nil
}

// AuthenticateGroup asks for a password-protected group's password (the
// newgrp flow of §4.3).
func (s *Service) AuthenticateGroup(t lsm.Task, group string) (err error) {
	defer func() { s.observe("group", group, t, err == nil) }()
	g, err := s.db.LookupGroup(group)
	if err != nil {
		return errno.EACCES
	}
	if g.Password == "" {
		return errno.EACCES // not a password-protected group
	}
	p, ok := t.(Prompter)
	if !ok {
		return errno.EACCES
	}
	password := p.Ask("[protego-auth] password for group " + group + ": ")
	s.mu.Lock()
	s.Attempts++
	s.mu.Unlock()
	if !accountdb.VerifyPassword(g.Password, password) {
		return errno.EACCES
	}
	return nil
}

// EnsureRecent authenticates the task's own user unless already recent.
// This is the entry point the Protego LSM calls on setuid (§4.3).
func (s *Service) EnsureRecent(t lsm.Task, ownUser string) error {
	if s.RecentlyAuthenticated(t) {
		s.observe("recency", ownUser, t, true)
		return nil
	}
	s.observe("recency", ownUser, t, false)
	return s.AuthenticateUser(t, ownUser, true)
}
