package authsvc

import (
	"testing"
	"time"

	"protego/internal/accountdb"
	"protego/internal/caps"
	"protego/internal/lsm"
	"protego/internal/vfs"
)

// fakeTask implements lsm.Task plus Prompter for isolated service tests.
type fakeTask struct {
	lsm.NullFilterSlot
	uid    int
	blobs  map[string]any
	answer string
	asked  []string
}

func newFakeTask(uid int) *fakeTask {
	return &fakeTask{uid: uid, blobs: map[string]any{}}
}

func (f *fakeTask) PID() int                  { return 1 }
func (f *fakeTask) UID() int                  { return f.uid }
func (f *fakeTask) EUID() int                 { return f.uid }
func (f *fakeTask) GID() int                  { return 100 }
func (f *fakeTask) EGID() int                 { return 100 }
func (f *fakeTask) Groups() []int             { return nil }
func (f *fakeTask) Capable(caps.Cap) bool     { return false }
func (f *fakeTask) BinaryPath() string        { return "/bin/test" }
func (f *fakeTask) SecurityBlob(k string) any { return f.blobs[k] }
func (f *fakeTask) SetSecurityBlob(k string, v any) {
	if v == nil {
		delete(f.blobs, k)
		return
	}
	f.blobs[k] = v
}
func (f *fakeTask) Ask(prompt string) string {
	f.asked = append(f.asked, prompt)
	return f.answer
}

func testService(t *testing.T) *Service {
	t.Helper()
	fs := vfs.New()
	if _, err := fs.Mkdir(vfs.RootCred, "/etc", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	passwd := "alice:x:1000:100:A:/home/alice:/bin/sh\n"
	shadow := "alice:" + accountdb.HashPassword("alicepw", "s") + ":0:0:99999:7:::\n"
	group := "users:x:100:alice\nops:" + accountdb.HashPassword("opspw", "g") + ":20:alice\nfree:x:30:\n"
	for path, content := range map[string]string{
		accountdb.PasswdFile: passwd,
		accountdb.ShadowFile: shadow,
		accountdb.GroupFile:  group,
	} {
		if err := fs.WriteFile(vfs.RootCred, path, []byte(content), 0o600, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	return New(accountdb.NewDB(fs))
}

func TestVerifyPassword(t *testing.T) {
	s := testService(t)
	if !s.VerifyPassword("alice", "alicepw") {
		t.Fatal("correct password rejected")
	}
	if s.VerifyPassword("alice", "wrong") {
		t.Fatal("wrong password accepted")
	}
	if s.VerifyPassword("mallory", "x") {
		t.Fatal("unknown user accepted")
	}
	if s.Attempts != 3 {
		t.Fatalf("attempts = %d", s.Attempts)
	}
}

func TestAuthenticateUserStampsOwnIdentity(t *testing.T) {
	s := testService(t)
	task := newFakeTask(1000)
	task.answer = "alicepw"
	if err := s.AuthenticateUser(task, "alice", true); err != nil {
		t.Fatal(err)
	}
	if !s.RecentlyAuthenticated(task) {
		t.Fatal("stamp missing")
	}
	if len(task.asked) != 1 {
		t.Fatalf("prompts: %v", task.asked)
	}
}

func TestAuthenticateOtherIdentityDoesNotStamp(t *testing.T) {
	s := testService(t)
	task := newFakeTask(1001)
	task.answer = "alicepw"
	if err := s.AuthenticateUser(task, "alice", false); err != nil {
		t.Fatal(err)
	}
	if s.RecentlyAuthenticated(task) {
		t.Fatal("target-auth must not stamp the caller's recency")
	}
}

func TestAuthenticateUserFailure(t *testing.T) {
	s := testService(t)
	task := newFakeTask(1000)
	task.answer = "nope"
	if err := s.AuthenticateUser(task, "alice", true); err == nil {
		t.Fatal("wrong password accepted")
	}
	if s.RecentlyAuthenticated(task) {
		t.Fatal("failure stamped recency")
	}
}

func TestRecencyWindow(t *testing.T) {
	s := testService(t)
	now := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	s.SetClock(func() time.Time { return now })
	task := newFakeTask(1000)
	s.Stamp(task)
	if !s.RecentlyAuthenticated(task) {
		t.Fatal("fresh stamp rejected")
	}
	now = now.Add(4 * time.Minute)
	if !s.RecentlyAuthenticated(task) {
		t.Fatal("within window rejected")
	}
	now = now.Add(2 * time.Minute) // total 6m > 5m default
	if s.RecentlyAuthenticated(task) {
		t.Fatal("expired stamp accepted")
	}
	// Widening the window revives it.
	s.SetWindow(10 * time.Minute)
	if !s.RecentlyAuthenticated(task) {
		t.Fatal("wider window rejected")
	}
}

func TestEnsureRecentPromptsOnlyWhenStale(t *testing.T) {
	s := testService(t)
	task := newFakeTask(1000)
	task.answer = "alicepw"
	if err := s.EnsureRecent(task, "alice"); err != nil {
		t.Fatal(err)
	}
	if len(task.asked) != 1 {
		t.Fatalf("prompts: %d", len(task.asked))
	}
	// Second call within the window: no prompt.
	if err := s.EnsureRecent(task, "alice"); err != nil {
		t.Fatal(err)
	}
	if len(task.asked) != 1 {
		t.Fatalf("re-prompted: %v", task.asked)
	}
}

func TestAuthenticateGroup(t *testing.T) {
	s := testService(t)
	task := newFakeTask(1000)
	task.answer = "opspw"
	if err := s.AuthenticateGroup(task, "ops"); err != nil {
		t.Fatal(err)
	}
	task.answer = "bad"
	if err := s.AuthenticateGroup(task, "ops"); err == nil {
		t.Fatal("wrong group password accepted")
	}
	// A group without a password cannot be joined this way.
	task.answer = ""
	if err := s.AuthenticateGroup(task, "free"); err == nil {
		t.Fatal("password-less group authenticated")
	}
	if err := s.AuthenticateGroup(task, "nosuch"); err == nil {
		t.Fatal("unknown group authenticated")
	}
}

func TestCorruptBlobIsNotRecent(t *testing.T) {
	s := testService(t)
	task := newFakeTask(1000)
	task.SetSecurityBlob(BlobLastAuth, "not a time")
	if s.RecentlyAuthenticated(task) {
		t.Fatal("corrupt blob accepted")
	}
}
