package faultinject

import (
	"reflect"
	"strings"
	"testing"

	"protego/internal/errno"
	"protego/internal/trace"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if err := in.Check("vfs.lookup"); err != nil {
		t.Fatalf("nil Check: %v", err)
	}
	if act, err := in.CheckSend("netstack.sendto"); act != ActNone || err != nil {
		t.Fatalf("nil CheckSend: %v %v", act, err)
	}
	data := []byte("hello")
	if out, err := in.CheckData("monitord.read.fstab", data); err != nil || string(out) != "hello" {
		t.Fatalf("nil CheckData: %q %v", out, err)
	}
	in.SetEnabled(false)
	in.SetTracer(nil)
	if in.Injections() != 0 || in.Records() != nil || in.InjectedSites() != nil {
		t.Fatal("nil accessors should be zero")
	}
}

func TestNthAndLimitScheduling(t *testing.T) {
	in := New(Plan{Seed: 1, Rules: []Rule{
		{Site: SiteVFSReadFile, Action: ActErr, Err: errno.EIO, Nth: 3},
		{Site: SiteVFSLookup, Action: ActErr, Err: errno.ENOMEM, Every: 2, Limit: 2},
	}})
	for i := 1; i <= 5; i++ {
		err := in.Check(SiteVFSReadFile)
		if (i == 3) != (err != nil) {
			t.Fatalf("readfile hit %d: err=%v", i, err)
		}
		if i == 3 && !errno.Is(err, errno.EIO) {
			t.Fatalf("readfile hit 3: want EIO, got %v", err)
		}
	}
	var fired int
	for i := 1; i <= 10; i++ {
		if err := in.Check(SiteVFSLookup); err != nil {
			fired++
			if i%2 != 0 {
				t.Fatalf("every=2 fired on odd hit %d", i)
			}
			if !errno.Is(err, errno.ENOMEM) {
				t.Fatalf("lookup: want ENOMEM, got %v", err)
			}
		}
	}
	if fired != 2 {
		t.Fatalf("limit=2: fired %d times", fired)
	}
	if got := in.Injections(); got != 3 {
		t.Fatalf("Injections = %d, want 3", got)
	}
}

func TestPrefixMatchAndSendActions(t *testing.T) {
	in := New(Plan{Seed: 7, Rules: []Rule{
		{Site: "netstack.*", Action: ActDrop, Nth: 1},
		{Site: SiteNetSendTo, Action: ActDup, Nth: 2},
	}})
	if act, err := in.CheckSend(SiteNetSendTo); act != ActDrop || err != nil {
		t.Fatalf("first sendto: %v %v", act, err)
	}
	if act, err := in.CheckSend(SiteNetSendTo); act != ActDup || err != nil {
		t.Fatalf("second sendto: %v %v", act, err)
	}
	if act, err := in.CheckSend(SiteNetSend); act != ActDrop || err != nil {
		t.Fatalf("first send (prefix): %v %v", act, err)
	}
	if act, err := in.CheckSend(SiteNetSendTo); act != ActNone || err != nil {
		t.Fatalf("third sendto: %v %v", act, err)
	}
}

func TestTornDataIsDeterministic(t *testing.T) {
	cfg := []byte("/dev/cdrom /cdrom iso9660 ro,user,noauto 0 0\n/dev/sda1 /usb vfat users 0 0\n")
	tear := func() []byte {
		in := New(Plan{Seed: 42, Rules: []Rule{{Site: SiteMonFstab, Action: ActTorn}}})
		out, err := in.CheckData(SiteMonFstab, cfg)
		if err != nil {
			t.Fatalf("CheckData: %v", err)
		}
		return out
	}
	a, b := tear(), tear()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("torn output not deterministic:\n%q\n%q", a, b)
	}
	if !strings.HasSuffix(string(a), "\x00torn") {
		t.Fatalf("torn output missing marker tail: %q", a)
	}
	if len(a) >= len(cfg)+5 {
		t.Fatalf("torn output not truncated: %d vs %d", len(a), len(cfg))
	}
}

func TestProbabilisticReplayDeterminism(t *testing.T) {
	run := func() []Record {
		in := New(Plan{Seed: 99, Rules: []Rule{
			{Site: "vfs.*", Action: ActErr, Err: errno.EIO, Prob: 0.3},
		}})
		for i := 0; i < 200; i++ {
			_ = in.Check(SiteVFSLookup)
			_ = in.Check(SiteVFSReadFile)
		}
		return in.Records()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("prob=0.3 over 400 hits fired zero times")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different records")
	}
}

func TestDisableStopsInjection(t *testing.T) {
	in := New(Plan{Seed: 1, Rules: []Rule{{Site: SiteVFSLookup, Action: ActErr, Err: errno.EIO}}})
	if err := in.Check(SiteVFSLookup); err == nil {
		t.Fatal("enabled injector did not fire")
	}
	in.SetEnabled(false)
	if err := in.Check(SiteVFSLookup); err != nil {
		t.Fatalf("disabled injector fired: %v", err)
	}
	in.SetEnabled(true)
	if err := in.Check(SiteVFSLookup); err == nil {
		t.Fatal("re-enabled injector did not fire")
	}
}

func TestTracerReceivesInjectionRecords(t *testing.T) {
	tr := trace.New(64)
	in := New(Plan{Seed: 1, Rules: []Rule{{Site: SiteAuthVerify, Action: ActErr, Err: errno.ETIMEDOUT, Limit: 2}}})
	in.SetTracer(tr)
	for i := 0; i < 4; i++ {
		_ = in.Check(SiteAuthVerify)
	}
	evs := tr.SnapshotKind(trace.KindFaultInject)
	if len(evs) != 2 {
		t.Fatalf("trace ring has %d fault events, want 2", len(evs))
	}
	if evs[0].Name != SiteAuthVerify || evs[0].Module != "err" || evs[0].Err != "ETIMEDOUT" {
		t.Fatalf("bad fault event: %+v", evs[0])
	}
}

func TestPlanRoundTrip(t *testing.T) {
	text := `# sweep plan
seed 42
inject vfs.readfile EIO nth=2
inject netstack.sendto DROP every=3 limit=5
inject monitord.read.fstab TORN
inject authsvc.verify ETIMEDOUT prob=0.5
`
	p, err := ParsePlan(text)
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 42 || len(p.Rules) != 4 {
		t.Fatalf("parsed %+v", p)
	}
	if p.Rules[0].Action != ActErr || p.Rules[0].Err != errno.EIO || p.Rules[0].Nth != 2 {
		t.Fatalf("rule 0: %+v", p.Rules[0])
	}
	if p.Rules[1].Action != ActDrop || p.Rules[1].Every != 3 || p.Rules[1].Limit != 5 {
		t.Fatalf("rule 1: %+v", p.Rules[1])
	}
	if p.Rules[2].Action != ActTorn {
		t.Fatalf("rule 2: %+v", p.Rules[2])
	}
	if p.Rules[3].Action != ActErr || p.Rules[3].Err != errno.ETIMEDOUT || p.Rules[3].Prob != 0.5 {
		t.Fatalf("rule 3: %+v", p.Rules[3])
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p, p2)
	}
}

func TestPlanErrors(t *testing.T) {
	for _, bad := range []string{
		"frob vfs.lookup EIO",
		"inject vfs.lookup",
		"inject vfs.lookup EWHAT",
		"inject vfs.lookup EIO nth=x",
		"inject vfs.lookup EIO prob=2",
		"inject vfs.lookup EIO when=now",
		"seed one",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestCatalogCoversAllSweepSubsystems(t *testing.T) {
	cat := Catalog()
	if len(cat) < 25 {
		t.Fatalf("catalog has %d sites, want >= 25", len(cat))
	}
	groups := map[string]bool{}
	seen := map[string]bool{}
	for _, s := range cat {
		if seen[s.Name] {
			t.Errorf("duplicate site %q", s.Name)
		}
		seen[s.Name] = true
		if len(s.Actions) == 0 {
			t.Errorf("site %q has no actions", s.Name)
		}
		groups[strings.SplitN(s.Name, ".", 2)[0]] = true
	}
	for _, g := range []string{"vfs", "syscall", "netstack", "monitord", "authsvc"} {
		if !groups[g] {
			t.Errorf("catalog missing subsystem %q", g)
		}
	}
}
