// Package faultinject is a deterministic, seedable fault-injection layer
// for the simulated kernel. Subsystems register *sites* — named points in
// the syscall dispatch path, the VFS, the netstack send path, monitord's
// config reads, and the auth service — and an Injector decides, per hit,
// whether to perturb the operation: fail it with a chosen errno, drop or
// duplicate a packet, or tear a config read mid-file.
//
// Faults are scheduled by (site, nth-hit, every-k, probability) rules under
// a fixed seed, so a plan replays the exact same fault sequence on every
// run; every injection is additionally recorded on the internal/trace ring
// (KindFaultInject) and in the injector's own bounded record log.
//
// The zero *Injector (nil) is a valid no-op: every method is nil-safe, so
// call sites thread checks unconditionally without branching.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"protego/internal/errno"
	"protego/internal/trace"
)

// Action is the kind of perturbation a rule applies at its site.
type Action int

// Actions. ActNone is the zero value and means "no fault fired".
const (
	ActNone Action = iota
	// ActErr fails the operation with the rule's errno.
	ActErr
	// ActDrop silently discards a packet (netstack send sites only).
	ActDrop
	// ActDup delivers a packet twice (netstack send sites only).
	ActDup
	// ActTorn truncates a config read at a seeded offset and appends
	// garbage, modeling a torn/partial read (monitord read sites only).
	ActTorn
)

// String names the action as it appears in plans and trace records.
func (a Action) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActErr:
		return "err"
	case ActDrop:
		return "drop"
	case ActDup:
		return "dup"
	case ActTorn:
		return "torn"
	default:
		return "invalid"
	}
}

// Rule schedules one fault. A rule matches a site when Site equals it
// exactly or, if Site ends in '*', when the site has the preceding prefix.
// Of the scheduling fields, the first non-zero one governs: Nth fires on
// exactly the nth hit (1-based), Every fires on every k-th hit, Prob fires
// with that probability under the injector's seeded RNG; with all three
// zero the rule fires on every hit. Limit, when non-zero, caps the total
// number of firings.
type Rule struct {
	Site   string
	Action Action
	Err    errno.Errno // injected errno for ActErr (ignored otherwise)
	Nth    uint64
	Every  uint64
	Prob   float64
	Limit  uint64
}

func (r Rule) matches(site string) bool {
	if p, ok := strings.CutSuffix(r.Site, "*"); ok {
		return strings.HasPrefix(site, p)
	}
	return r.Site == site
}

// String renders the rule as one plan line.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString("inject ")
	b.WriteString(r.Site)
	b.WriteByte(' ')
	switch r.Action {
	case ActErr:
		b.WriteString(r.Err.Name())
	default:
		b.WriteString(strings.ToUpper(r.Action.String()))
	}
	if r.Nth > 0 {
		fmt.Fprintf(&b, " nth=%d", r.Nth)
	}
	if r.Every > 0 {
		fmt.Fprintf(&b, " every=%d", r.Every)
	}
	if r.Prob > 0 {
		fmt.Fprintf(&b, " prob=%g", r.Prob)
	}
	if r.Limit > 0 {
		fmt.Fprintf(&b, " limit=%d", r.Limit)
	}
	return b.String()
}

// Record is one injection, in firing order. Comparing two runs' record
// slices is the replay-determinism check.
type Record struct {
	// Seq is the injector-local firing sequence (dense, starts at 0).
	Seq uint64
	// Site is the injection site name.
	Site string
	// Action is what was done.
	Action Action
	// Err is the injected errno (ActErr only).
	Err errno.Errno
	// Hit is the site's 1-based hit count when the fault fired.
	Hit uint64
}

// maxRecords bounds the injector's record log (matching the trace ring's
// default capacity); past it, firings still count but are not retained.
const maxRecords = 4096

// Injector evaluates rules at sites. Create one with New, wire it with
// SetTracer, and hand it to the kernel (Kernel.SetFaultInjector fans it
// out to the VFS and netstack). All methods are safe for concurrent use
// and safe on a nil receiver.
type Injector struct {
	mu       sync.Mutex
	seed     int64
	rng      *rand.Rand
	rules    []Rule
	fired    []uint64 // per-rule firing counts (Limit accounting)
	hits     map[string]uint64
	records  []Record
	injected uint64 // total firings, including ones past maxRecords
	disabled bool
	tracer   *trace.Tracer
}

// New creates an injector for the plan. The plan's seed fixes the RNG used
// by probabilistic rules and torn-read cut offsets.
func New(plan Plan) *Injector {
	rules := make([]Rule, len(plan.Rules))
	copy(rules, plan.Rules)
	return &Injector{
		seed:  plan.Seed,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		rules: rules,
		fired: make([]uint64, len(rules)),
		hits:  make(map[string]uint64),
	}
}

// SetTracer routes injection records onto a trace ring (KindFaultInject).
func (in *Injector) SetTracer(tr *trace.Tracer) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.tracer = tr
	in.mu.Unlock()
}

// SetEnabled turns injection on or off. While disabled, checks return
// immediately without counting hits — the sweep harness disables the
// injector before its liveness pass.
func (in *Injector) SetEnabled(on bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.disabled = !on
	in.mu.Unlock()
}

// Seed returns the plan seed the injector was built with.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// hit registers one hit at site and returns the action to apply, if any.
// Caller holds no locks; tracer emission happens outside in.mu.
func (in *Injector) hit(site string) (Action, errno.Errno, bool) {
	if in == nil {
		return ActNone, 0, false
	}
	in.mu.Lock()
	if in.disabled {
		in.mu.Unlock()
		return ActNone, 0, false
	}
	in.hits[site]++
	h := in.hits[site]
	for i := range in.rules {
		r := &in.rules[i]
		if !r.matches(site) {
			continue
		}
		if r.Limit > 0 && in.fired[i] >= r.Limit {
			continue
		}
		fire := false
		switch {
		case r.Nth > 0:
			fire = h == r.Nth
		case r.Every > 0:
			fire = h%r.Every == 0
		case r.Prob > 0:
			fire = in.rng.Float64() < r.Prob
		default:
			fire = true
		}
		if !fire {
			continue
		}
		in.fired[i]++
		rec := Record{Seq: in.injected, Site: site, Action: r.Action, Err: r.Err, Hit: h}
		in.injected++
		if len(in.records) < maxRecords {
			in.records = append(in.records, rec)
		}
		act, e, tr := r.Action, r.Err, in.tracer
		in.mu.Unlock()
		name := ""
		if act == ActErr {
			name = e.Name()
		}
		tr.FaultInject(site, act.String(), name, h)
		return act, e, true
	}
	in.mu.Unlock()
	return ActNone, 0, false
}

// Check registers a hit at site and returns the injected error, if an
// error-action rule fired (drop/dup/torn rules never fire here). This is
// the form threaded through syscall entry points and VFS operations.
func (in *Injector) Check(site string) error {
	act, e, ok := in.hit(site)
	if !ok || act != ActErr {
		return nil
	}
	return fmt.Errorf("faultinject: %s: %w", site, e)
}

// CheckSend registers a hit at a netstack send site. It returns ActDrop or
// ActDup for the caller to apply to the packet, a non-nil error for an
// error rule, or (ActNone, nil) when nothing fired.
func (in *Injector) CheckSend(site string) (Action, error) {
	act, e, ok := in.hit(site)
	if !ok {
		return ActNone, nil
	}
	switch act {
	case ActErr:
		return ActNone, fmt.Errorf("faultinject: %s: %w", site, e)
	case ActDrop, ActDup:
		return act, nil
	default:
		return ActNone, nil
	}
}

// CheckData registers a hit at a config-read site and perturbs data: a
// torn rule truncates it at a seeded offset and appends a garbage tail
// (guaranteeing every config parser errors rather than silently accepting
// a prefix), an error rule fails the read outright. Otherwise data is
// returned unchanged.
func (in *Injector) CheckData(site string, data []byte) ([]byte, error) {
	act, e, ok := in.hit(site)
	if !ok {
		return data, nil
	}
	switch act {
	case ActErr:
		return nil, fmt.Errorf("faultinject: %s: %w", site, e)
	case ActTorn:
		in.mu.Lock()
		cut := 0
		if len(data) > 0 {
			cut = in.rng.Intn(len(data))
		}
		in.mu.Unlock()
		torn := make([]byte, 0, cut+5)
		torn = append(torn, data[:cut]...)
		torn = append(torn, "\x00torn"...)
		return torn, nil
	default:
		return data, nil
	}
}

// Records returns the retained injection records, in firing order.
func (in *Injector) Records() []Record {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Record, len(in.records))
	copy(out, in.records)
	return out
}

// Injections returns the total number of firings (including any past the
// record-log cap).
func (in *Injector) Injections() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// InjectedSites returns the distinct sites that fired, sorted.
func (in *Injector) InjectedSites() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	seen := make(map[string]bool, len(in.records))
	for _, r := range in.records {
		seen[r.Site] = true
	}
	in.mu.Unlock()
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SiteHits returns a copy of the per-site hit counts (every check, fired
// or not).
func (in *Injector) SiteHits() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.hits))
	for k, v := range in.hits {
		out[k] = v
	}
	return out
}
