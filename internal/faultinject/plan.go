package faultinject

import (
	"fmt"
	"strconv"
	"strings"

	"protego/internal/errno"
)

// Plan is a seed plus an ordered rule list. Its text form is:
//
//	# comment
//	seed 42
//	inject <site> <ERRNO|DROP|DUP|TORN> [nth=N] [every=K] [prob=P] [limit=N]
//
// where <site> is a name from the catalog (or a prefix ending in '*') and
// <ERRNO> is a symbolic errno name such as EIO. The same plan text with
// the same workload reproduces the same injections, record for record.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// String renders the plan in its parseable text form.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed %d\n", p.Seed)
	for _, r := range p.Rules {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// ParsePlan parses the plan text format. Unknown directives, malformed
// schedule options, and unknown errno names are errors.
func ParsePlan(text string) (Plan, error) {
	var p Plan
	for i, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "seed":
			if len(fields) != 2 {
				return Plan{}, fmt.Errorf("plan line %d: seed wants one value", i+1)
			}
			n, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("plan line %d: bad seed %q", i+1, fields[1])
			}
			p.Seed = n
		case "inject":
			if len(fields) < 3 {
				return Plan{}, fmt.Errorf("plan line %d: inject wants <site> <fault>", i+1)
			}
			r := Rule{Site: fields[1]}
			switch what := fields[2]; what {
			case "DROP":
				r.Action = ActDrop
			case "DUP":
				r.Action = ActDup
			case "TORN":
				r.Action = ActTorn
			default:
				e, ok := errno.FromName(what)
				if !ok {
					return Plan{}, fmt.Errorf("plan line %d: unknown fault %q", i+1, what)
				}
				r.Action, r.Err = ActErr, e
			}
			for _, opt := range fields[3:] {
				k, v, ok := strings.Cut(opt, "=")
				if !ok {
					return Plan{}, fmt.Errorf("plan line %d: bad option %q", i+1, opt)
				}
				switch k {
				case "prob":
					f, err := strconv.ParseFloat(v, 64)
					if err != nil || f < 0 || f > 1 {
						return Plan{}, fmt.Errorf("plan line %d: bad prob %q", i+1, v)
					}
					r.Prob = f
				case "nth", "every", "limit":
					n, err := strconv.ParseUint(v, 10, 64)
					if err != nil {
						return Plan{}, fmt.Errorf("plan line %d: bad %s %q", i+1, k, v)
					}
					switch k {
					case "nth":
						r.Nth = n
					case "every":
						r.Every = n
					case "limit":
						r.Limit = n
					}
				default:
					return Plan{}, fmt.Errorf("plan line %d: unknown option %q", i+1, k)
				}
			}
			p.Rules = append(p.Rules, r)
		default:
			return Plan{}, fmt.Errorf("plan line %d: unknown directive %q", i+1, fields[0])
		}
	}
	return p, nil
}
