package faultinject

import "protego/internal/errno"

// MonitordReadSites is the prefix matching every monitord config-read
// site (monitord.read.fstab, .sudoers, .bind, .ppp, .accounts).
const MonitordReadSites = "monitord.read.*"

// CrashedMonitordPlan models a monitoring daemon that crashed and stays
// down: from the first hit on, every config read it would perform fails
// with EIO, so no re-sync can ever land and the in-kernel /proc/protego
// policy is pinned at its last synchronized state (keep-last-good).
//
// This is the composition site the vulnerable-environment generator
// (internal/vulngen) builds its "stale policy" shape on: poison a config
// file, crash the daemon, attempt a sync — the poisoned policy must NOT
// reach the kernel, and the stale in-kernel whitelist keeps containing
// what it contained before the crash.
func CrashedMonitordPlan(seed int64) Plan {
	return Plan{
		Seed: seed,
		Rules: []Rule{
			{Site: MonitordReadSites, Action: ActErr, Err: errno.EIO},
		},
	}
}
