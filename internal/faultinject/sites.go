package faultinject

import "protego/internal/errno"

// Registered injection sites. Site names are dotted paths grouped by the
// subsystem that checks them; a rule with Site "vfs.*" matches the whole
// group. The sweep harness (internal/bench.RunFaultSweep) iterates
// Catalog() so a site added here is automatically swept.
const (
	// VFS operations (checked before the fs lock is taken).
	SiteVFSLookup    = "vfs.lookup"
	SiteVFSReadFile  = "vfs.readfile"
	SiteVFSWriteFile = "vfs.writefile"
	SiteVFSCreate    = "vfs.create"
	SiteVFSMkdir     = "vfs.mkdir"
	SiteVFSRemove    = "vfs.remove"
	SiteVFSRename    = "vfs.rename"

	// Kernel syscall entry points (checked right after the trace enter
	// event, before any locks or LSM hooks).
	SiteSysOpen      = "syscall.open"
	SiteSysRead      = "syscall.read"
	SiteSysWrite     = "syscall.write"
	SiteSysReadFile  = "syscall.readfile"
	SiteSysWriteFile = "syscall.writefile"
	SiteSysMount     = "syscall.mount"
	SiteSysUmount    = "syscall.umount"
	SiteSysExec      = "syscall.exec"
	SiteSysSocket    = "syscall.socket"
	SiteSysBind      = "syscall.bind"
	SiteSysSetuid    = "syscall.setuid"

	// Netstack send paths (after the netfilter verdict, modeling loss on
	// the wire rather than policy drops).
	SiteNetSend    = "netstack.send"
	SiteNetSendTo  = "netstack.sendto"
	SiteNetConnect = "netstack.connect"

	// Monitord config reads (torn-read injection point).
	SiteMonFstab    = "monitord.read.fstab"
	SiteMonSudoers  = "monitord.read.sudoers"
	SiteMonBind     = "monitord.read.bind"
	SiteMonPPP      = "monitord.read.ppp"
	SiteMonAccounts = "monitord.read.accounts"

	// Auth service: credential verification (timeout-retriable) and the
	// account database lookup behind it (fail-closed).
	SiteAuthVerify = "authsvc.verify"
	SiteAuthDB     = "authsvc.db"
)

// SiteSpec describes one registered site for sweep enumeration: which
// actions make sense there and which errnos are worth injecting.
type SiteSpec struct {
	Name    string
	Actions []Action
	Errnos  []errno.Errno
}

// Catalog enumerates every registered site. The fault sweep derives its
// plan matrix from this list.
func Catalog() []SiteSpec {
	fsErr := []errno.Errno{errno.ENOMEM, errno.EIO}
	errOnly := []Action{ActErr}
	return []SiteSpec{
		{SiteVFSLookup, errOnly, fsErr},
		{SiteVFSReadFile, errOnly, fsErr},
		{SiteVFSWriteFile, errOnly, fsErr},
		{SiteVFSCreate, errOnly, fsErr},
		{SiteVFSMkdir, errOnly, fsErr},
		{SiteVFSRemove, errOnly, fsErr},
		{SiteVFSRename, errOnly, fsErr},

		{SiteSysOpen, errOnly, fsErr},
		{SiteSysRead, errOnly, fsErr},
		{SiteSysWrite, errOnly, fsErr},
		{SiteSysReadFile, errOnly, fsErr},
		{SiteSysWriteFile, errOnly, fsErr},
		{SiteSysMount, errOnly, []errno.Errno{errno.ENOMEM, errno.EIO, errno.EBUSY}},
		{SiteSysUmount, errOnly, []errno.Errno{errno.ENOMEM, errno.EBUSY}},
		{SiteSysExec, errOnly, []errno.Errno{errno.ENOMEM, errno.EIO}},
		{SiteSysSocket, errOnly, []errno.Errno{errno.ENOMEM, errno.ENOBUFS}},
		{SiteSysBind, errOnly, []errno.Errno{errno.ENOMEM}},
		{SiteSysSetuid, errOnly, []errno.Errno{errno.EAGAIN}},

		{SiteNetSend, []Action{ActErr, ActDrop, ActDup}, []errno.Errno{errno.ENOBUFS}},
		{SiteNetSendTo, []Action{ActErr, ActDrop, ActDup}, []errno.Errno{errno.ENOBUFS, errno.ENETUNREACH}},
		{SiteNetConnect, errOnly, []errno.Errno{errno.ETIMEDOUT, errno.ENOBUFS}},

		{SiteMonFstab, []Action{ActTorn, ActErr}, []errno.Errno{errno.EIO}},
		{SiteMonSudoers, []Action{ActTorn, ActErr}, []errno.Errno{errno.EIO}},
		{SiteMonBind, []Action{ActTorn, ActErr}, []errno.Errno{errno.EIO}},
		{SiteMonPPP, []Action{ActTorn, ActErr}, []errno.Errno{errno.EIO}},
		{SiteMonAccounts, []Action{ActTorn, ActErr}, []errno.Errno{errno.EIO}},

		{SiteAuthVerify, errOnly, []errno.Errno{errno.ETIMEDOUT}},
		{SiteAuthDB, errOnly, []errno.Errno{errno.EIO}},
	}
}
