package policy

import (
	"sort"
	"strings"
)

// compiledSudoRule is one delegation rule with its alias expansions
// resolved into lookup sets, so the per-call checks are map probes
// instead of recursive alias walks.
type compiledSudoRule struct {
	anyRunas bool
	runas    map[string]bool
	// anyCmd: some expanded command spec is ALL. litAll: the unexpanded
	// command list contains a literal ALL (what Grant.AnyCommand reports
	// from LookupCommand; LookupTransition reports anyCmd || litAll,
	// matching the uncompiled predicates exactly).
	anyCmd   bool
	litAll   bool
	cmdPaths map[string]bool
	cmdDirs  []string // directory specs ("/usr/bin/"): prefix-matched
}

// sudoIndex dispatches delegation lookups by requesting principal. Each
// bucket holds rule positions in ascending order; merging the buckets a
// caller can hit preserves first-match-wins.
type sudoIndex struct {
	rules   []compiledSudoRule
	byUser  map[string][]int
	byGroup map[string][]int
	anyUser []int
}

// Compile resolves every alias once and builds the per-user/per-group
// dispatch index. ParseSudoers calls it automatically; callers that build
// a Sudoers by hand may call it too, or rely on the uncompiled slow path.
func (s *Sudoers) Compile() {
	idx := &sudoIndex{
		rules:   make([]compiledSudoRule, len(s.Rules)),
		byUser:  make(map[string][]int),
		byGroup: make(map[string][]int),
	}
	for i := range s.Rules {
		rule := &s.Rules[i]
		for _, u := range expand(rule.User, s.UserAliases) {
			switch {
			case u == "ALL":
				idx.anyUser = append(idx.anyUser, i)
			case strings.HasPrefix(u, "%"):
				g := strings.TrimPrefix(u, "%")
				idx.byGroup[g] = append(idx.byGroup[g], i)
			default:
				idx.byUser[u] = append(idx.byUser[u], i)
			}
		}
		cr := &idx.rules[i]
		cr.runas = make(map[string]bool, len(rule.RunAs))
		for _, r := range rule.RunAs {
			for _, rr := range expand(r, s.RunAsAliases) {
				if rr == "ALL" {
					cr.anyRunas = true
				} else {
					cr.runas[rr] = true
				}
			}
		}
		cr.litAll = hasALL(rule.Commands)
		cr.cmdPaths = make(map[string]bool, len(rule.Commands))
		for _, c := range rule.Commands {
			for _, cc := range expand(c, s.CmndAliases) {
				if cc == "ALL" {
					cr.anyCmd = true
					continue
				}
				path := strings.Fields(cc)[0]
				if strings.HasSuffix(path, "/") {
					cr.cmdDirs = append(cr.cmdDirs, path)
				}
				cr.cmdPaths[path] = true
			}
		}
	}
	s.idx = idx
}

// candidates returns, in rule order without duplicates, the positions of
// every rule whose User field covers the caller.
func (idx *sudoIndex) candidates(user string, groups []string) []int {
	cands := append([]int(nil), idx.byUser[user]...)
	for _, g := range groups {
		cands = append(cands, idx.byGroup[g]...)
	}
	cands = append(cands, idx.anyUser...)
	sort.Ints(cands)
	out := cands[:0]
	prev := -1
	for _, i := range cands {
		if i != prev {
			out = append(out, i)
			prev = i
		}
	}
	return out
}

func (cr *compiledSudoRule) runasMatch(target string) bool {
	return cr.anyRunas || cr.runas[target]
}

func (cr *compiledSudoRule) cmdMatch(cmd string) bool {
	if cr.anyCmd || cr.cmdPaths[cmd] {
		return true
	}
	for _, d := range cr.cmdDirs {
		if strings.HasPrefix(cmd, d) {
			return true
		}
	}
	return false
}
