package policy

import (
	"fmt"
	"strings"
)

// ProcCommand is one line of the simple grammar Protego accepts on its
// /proc configuration files (the paper: "Protego provides ... files in
// /proc for configuration inputs using a simple grammar"). The verbs are:
//
//	add <args...>   # insert a policy entry
//	del <args...>   # remove a matching entry
//	clear           # remove all entries
//
// Each policy file interprets the argument fields with its own schema (a
// mount whitelist row, a bind table row, a sudoers-like delegation row).
type ProcCommand struct {
	Verb string
	Args []string
}

// ParseProcCommands tokenizes a /proc write into commands, one per line.
func ParseProcCommands(data []byte) ([]ProcCommand, error) {
	var cmds []ProcCommand
	for lineNo, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		verb := strings.ToLower(fields[0])
		switch verb {
		case "add", "del":
			if len(fields) < 2 {
				return nil, fmt.Errorf("proc line %d: %s needs arguments", lineNo+1, verb)
			}
		case "clear":
			if len(fields) != 1 {
				return nil, fmt.Errorf("proc line %d: clear takes no arguments", lineNo+1)
			}
		default:
			return nil, fmt.Errorf("proc line %d: unknown verb %q", lineNo+1, fields[0])
		}
		cmds = append(cmds, ProcCommand{Verb: verb, Args: fields[1:]})
	}
	return cmds, nil
}

// FormatProcAdd renders an "add" command for the given fields; the
// monitoring daemon uses this to push parsed legacy configuration into the
// kernel.
func FormatProcAdd(fields ...string) string {
	return "add " + strings.Join(fields, " ")
}
