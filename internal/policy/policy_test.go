package policy

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// --- fstab ---

func TestParseFstabBasic(t *testing.T) {
	entries, err := ParseFstab(`
# comment
/dev/sda1  /            ext4     defaults          0 1
/dev/cdrom /cdrom       iso9660  ro,user,noauto    0 0

/dev/sdb1  /media/usb   vfat     rw,users          0 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	rootfs := entries[0]
	if rootfs.Device != "/dev/sda1" || rootfs.MountPoint != "/" || rootfs.FSType != "ext4" {
		t.Fatalf("root entry: %+v", rootfs)
	}
	if len(rootfs.Options) != 0 {
		t.Fatalf("'defaults' should yield no options: %v", rootfs.Options)
	}
	if rootfs.Pass != 1 {
		t.Fatalf("pass = %d", rootfs.Pass)
	}
	if rootfs.UserMountable() {
		t.Fatal("root fs should not be user-mountable")
	}
	cdrom := entries[1]
	if !cdrom.UserMountable() || cdrom.AnyUserUnmountable() {
		t.Fatalf("cdrom options: %+v", cdrom)
	}
	if !cdrom.ReadOnly() {
		t.Fatal("cdrom should be ro")
	}
	usb := entries[2]
	if !usb.UserMountable() || !usb.AnyUserUnmountable() {
		t.Fatalf("usb options: %+v", usb)
	}
	if usb.Dump != 0 || usb.Pass != 2 {
		t.Fatalf("usb dump/pass: %+v", usb)
	}
}

func TestParseFstabErrors(t *testing.T) {
	cases := []string{
		"/dev/sda1 / ext4",            // too few fields
		"/dev/sda1 / ext4 defaults x", // bad dump
		"/dev/sda1 / ext4 rw 0 x",     // bad pass
	}
	for _, in := range cases {
		if _, err := ParseFstab(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestFstabRoundTrip(t *testing.T) {
	e := FstabEntry{Device: "/dev/cdrom", MountPoint: "/cdrom", FSType: "iso9660",
		Options: []string{"ro", "user"}, Pass: 2}
	parsed, err := ParseFstab(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 1 || parsed[0].Device != e.Device || !parsed[0].UserMountable() || parsed[0].Pass != 2 {
		t.Fatalf("round trip: %+v", parsed)
	}
}

// Property: parsing never panics and every returned entry has non-empty
// device/mountpoint/fstype fields.
func TestParseFstabProperty(t *testing.T) {
	f := func(lines []string) bool {
		entries, err := ParseFstab(strings.Join(lines, "\n"))
		if err != nil {
			return true
		}
		for _, e := range entries {
			if e.Device == "" || e.MountPoint == "" || e.FSType == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- sudoers ---

const sampleSudoers = `
Defaults env_keep = "TERM LANG"
Defaults timestamp_timeout = 10
User_Alias ADMINS = alice, dave
Cmnd_Alias PRINT = /usr/bin/lpr, /usr/bin/lpq
Runas_Alias OPERATORS = backup, archive

root    ALL = (ALL) ALL
ADMINS  ALL = (root) ALL
%wheel  ALL = (root) NOPASSWD: /bin/ls, /usr/bin/stat
bob     ALL = (alice) PRINT
carol   ALL = (OPERATORS) NOPASSWD: /usr/local/bin/backup.sh
eve     ALL = (root) SETENV: /bin/true
frank   ALL = (root) /usr/sbin/
`

func TestParseSudoers(t *testing.T) {
	s, err := ParseSudoers(sampleSudoers)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 7 {
		t.Fatalf("rules = %d", len(s.Rules))
	}
	if s.TimestampTimeout != 10*time.Minute {
		t.Fatalf("timeout = %v", s.TimestampTimeout)
	}
	if len(s.EnvKeep) != 2 || s.EnvKeep[0] != "TERM" {
		t.Fatalf("env_keep = %v", s.EnvKeep)
	}
	if got := s.UserAliases["ADMINS"]; len(got) != 2 || got[1] != "dave" {
		t.Fatalf("ADMINS = %v", got)
	}
}

func TestSudoersLookupTransition(t *testing.T) {
	s, err := ParseSudoers(sampleSudoers)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		user   string
		groups []string
		target string
		want   bool
		noPw   bool
		anyCmd bool
	}{
		{"root", nil, "anyone", true, false, true},
		{"alice", nil, "root", true, false, true}, // via ADMINS alias
		{"dave", nil, "root", true, false, true},  // via ADMINS alias
		{"zed", []string{"wheel"}, "root", true, true, false},
		{"bob", nil, "alice", true, false, false},
		{"bob", nil, "root", false, false, false},
		{"carol", nil, "backup", true, true, false}, // via Runas_Alias
		{"carol", nil, "archive", true, true, false},
		{"carol", nil, "root", false, false, false},
		{"mallory", nil, "root", false, false, false},
	}
	for _, c := range cases {
		g, ok := s.LookupTransition(c.user, c.groups, c.target)
		if ok != c.want {
			t.Errorf("%s->%s: ok=%v want %v", c.user, c.target, ok, c.want)
			continue
		}
		if !ok {
			continue
		}
		if g.NoPasswd != c.noPw {
			t.Errorf("%s->%s: NoPasswd=%v want %v", c.user, c.target, g.NoPasswd, c.noPw)
		}
		if g.AnyCommand != c.anyCmd {
			t.Errorf("%s->%s: AnyCommand=%v want %v", c.user, c.target, g.AnyCommand, c.anyCmd)
		}
	}
}

func TestSudoersLookupCommand(t *testing.T) {
	s, err := ParseSudoers(sampleSudoers)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		user, target, cmd string
		groups            []string
		want              bool
	}{
		{"bob", "alice", "/usr/bin/lpr", nil, true}, // via Cmnd_Alias
		{"bob", "alice", "/usr/bin/lpq", nil, true},
		{"bob", "alice", "/bin/rm", nil, false},
		{"zed", "root", "/bin/ls", []string{"wheel"}, true},
		{"zed", "root", "/bin/cat", []string{"wheel"}, false},
		{"alice", "root", "/anything/at/all", nil, true},
		{"frank", "root", "/usr/sbin/service", nil, true}, // directory spec
		{"frank", "root", "/usr/bin/service", nil, false},
	}
	for _, c := range cases {
		_, ok := s.LookupCommand(c.user, c.groups, c.target, c.cmd)
		if ok != c.want {
			t.Errorf("%s->%s %s: ok=%v want %v", c.user, c.target, c.cmd, ok, c.want)
		}
	}
}

func TestSudoersSanitizeEnv(t *testing.T) {
	s, err := ParseSudoers(sampleSudoers)
	if err != nil {
		t.Fatal(err)
	}
	env := map[string]string{
		"TERM": "xterm", "LANG": "C", "LD_PRELOAD": "/tmp/evil.so", "IFS": ".",
	}
	g, ok := s.LookupCommand("bob", nil, "alice", "/usr/bin/lpr")
	if !ok {
		t.Fatal("lookup failed")
	}
	clean := s.SanitizeEnv(env, g)
	if _, ok := clean["LD_PRELOAD"]; ok {
		t.Fatal("LD_PRELOAD survived sanitization")
	}
	if clean["TERM"] != "xterm" {
		t.Fatalf("TERM lost: %v", clean)
	}
	// SETENV rules keep everything.
	gEve, ok := s.LookupCommand("eve", nil, "root", "/bin/true")
	if !ok {
		t.Fatal("eve lookup failed")
	}
	dirty := s.SanitizeEnv(env, gEve)
	if dirty["LD_PRELOAD"] != "/tmp/evil.so" {
		t.Fatal("SETENV rule should keep env")
	}
}

func TestSudoersParseErrors(t *testing.T) {
	cases := []string{
		"alice ALL (root) ALL",       // missing '='
		"alice = (root) ALL",         // missing host
		"alice ALL = (root ALL",      // unclosed runas
		"alice ALL = (root)",         // no commands
		"User_Alias lower = alice",   // lower-case alias
		"Cmnd_Alias X =",             // empty alias
		"Defaults env_keep \"TERM\"", // malformed env_keep
		"Defaults timestamp_timeout = x",
	}
	for _, in := range cases {
		if _, err := ParseSudoers(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestSudoersLineContinuation(t *testing.T) {
	s, err := ParseSudoers("alice ALL = (root) /bin/a, \\\n /bin/b\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 1 || len(s.Rules[0].Commands) != 2 {
		t.Fatalf("rules: %+v", s.Rules)
	}
}

// Regression (found by the vulngen misconfiguration fuzzer): a Cmnd_Alias
// cycle in /etc/sudoers must parse and match without unbounded recursion.
// The pre-fix expand() only skipped direct self-references, so the
// mutual cycle below overflowed the stack inside Compile — a
// config-triggered crash reachable through the monitoring daemon's
// delegation sync.
func TestSudoersAliasCycle(t *testing.T) {
	s, err := ParseSudoers(`Cmnd_Alias LOOP_A = LOOP_B, /bin/ls
Cmnd_Alias LOOP_B = LOOP_A, /usr/bin/id
%wheel ALL = (root) NOPASSWD: LOOP_A
`)
	if err != nil {
		t.Fatal(err)
	}
	// The cycle degrades to its reachable terminal members: both commands
	// stay matchable, the cycle itself confers nothing extra.
	groups := []string{"wheel"}
	if _, ok := s.LookupCommand("alice", groups, "root", "/bin/ls"); !ok {
		t.Fatal("terminal member /bin/ls lost through the cycle")
	}
	if _, ok := s.LookupCommand("alice", groups, "root", "/usr/bin/id"); !ok {
		t.Fatal("terminal member /usr/bin/id lost through the cycle")
	}
	if _, ok := s.LookupCommand("alice", groups, "root", "/bin/sh"); ok {
		t.Fatal("cycle granted an unlisted command")
	}
	// A user alias cycle with no terminal members matches no one.
	s2, err := ParseSudoers(`User_Alias CYC_X = CYC_Y
User_Alias CYC_Y = CYC_X
CYC_X ALL = (root) ALL
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.LookupTransition("alice", nil, "root"); ok {
		t.Fatal("empty user-alias cycle granted a transition")
	}
}

func TestSudoersDefaultTimeout(t *testing.T) {
	s, err := ParseSudoers("alice ALL = (root) ALL\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.TimestampTimeout != DefaultTimestampTimeout {
		t.Fatalf("timeout = %v", s.TimestampTimeout)
	}
}

// Property: parser never panics; rules that parse always have user, host,
// at least one runas, and at least one command.
func TestSudoersProperty(t *testing.T) {
	f := func(lines []string) bool {
		s, err := ParseSudoers(strings.Join(lines, "\n"))
		if err != nil {
			return true
		}
		for _, r := range s.Rules {
			if r.User == "" || r.Host == "" || len(r.RunAs) == 0 || len(r.Commands) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- /etc/bind ---

func TestParseBind(t *testing.T) {
	entries, err := ParseBind(`
# mail
25 tcp /usr/sbin/exim4 Debian-exim
80 tcp /usr/sbin/httpd www-data
514 udp /usr/sbin/syslogd root
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("entries = %d", len(entries))
	}
	if entries[0].Port != 25 || entries[0].Proto != "tcp" || entries[0].User != "Debian-exim" {
		t.Fatalf("entry: %+v", entries[0])
	}
	if entries[2].Proto != "udp" {
		t.Fatalf("entry: %+v", entries[2])
	}
}

func TestParseBindErrors(t *testing.T) {
	cases := []string{
		"25 tcp /usr/sbin/exim4",   // missing user
		"0 tcp /x u",               // port 0
		"1024 tcp /x u",            // not privileged
		"25 sctp /x u",             // bad proto
		"25 tcp relative/path u",   // relative binary
		"25 tcp /a u\n25 tcp /b v", // duplicate allocation
	}
	for _, in := range cases {
		if _, err := ParseBind(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestBindSamePortDifferentProto(t *testing.T) {
	entries, err := ParseBind("53 tcp /usr/sbin/named bind\n53 udp /usr/sbin/named bind\n")
	if err != nil {
		t.Fatalf("tcp+udp on same port should be fine: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d", len(entries))
	}
}

func TestBindEntryString(t *testing.T) {
	e := BindEntry{Port: 25, Proto: "tcp", Binary: "/usr/sbin/exim4", User: "mail"}
	if e.String() != "25 tcp /usr/sbin/exim4 mail" {
		t.Fatalf("string: %q", e.String())
	}
}

// --- ppp options ---

func TestParsePPPOptions(t *testing.T) {
	o, err := ParsePPPOptions(`
# policy
device /dev/ppp
user-routes
safe-param vj-max-slots
asyncmap 0
noauth
`)
	if err != nil {
		t.Fatal(err)
	}
	if !o.AllowUserRoutes {
		t.Fatal("user-routes not parsed")
	}
	if !o.DeviceAllowed("/dev/ppp") || o.DeviceAllowed("/dev/ttyS0") {
		t.Fatalf("devices: %v", o.Devices)
	}
	if !o.ParamSafe("vj-max-slots") || !o.ParamSafe("bsdcomp") {
		t.Fatal("safe params missing")
	}
	if o.ParamSafe("defaultroute") {
		t.Fatal("defaultroute must not be safe")
	}
}

func TestParsePPPOptionsErrors(t *testing.T) {
	cases := []string{
		"safe-param",            // missing name
		"device relative",       // relative device
		"some option with args", // too many fields
	}
	for _, in := range cases {
		if _, err := ParsePPPOptions(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestDefaultPPPOptions(t *testing.T) {
	o := DefaultPPPOptions()
	if o.AllowUserRoutes {
		t.Fatal("routes must default off")
	}
	if len(o.Devices) != 0 {
		t.Fatal("devices must default empty")
	}
}

// --- proc grammar ---

func TestParseProcCommands(t *testing.T) {
	cmds, err := ParseProcCommands([]byte(`
# setup
clear
add /dev/cdrom /cdrom iso9660 ro user
del /dev/cdrom /cdrom
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) != 3 {
		t.Fatalf("cmds = %d", len(cmds))
	}
	if cmds[0].Verb != "clear" || cmds[1].Verb != "add" || cmds[2].Verb != "del" {
		t.Fatalf("verbs: %+v", cmds)
	}
	if len(cmds[1].Args) != 5 {
		t.Fatalf("add args: %v", cmds[1].Args)
	}
}

func TestParseProcCommandsErrors(t *testing.T) {
	cases := []string{"add", "del", "clear x", "frobnicate a b"}
	for _, in := range cases {
		if _, err := ParseProcCommands([]byte(in)); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestFormatProcAdd(t *testing.T) {
	line := FormatProcAdd("25", "tcp", "/usr/sbin/exim4", "101")
	cmds, err := ParseProcCommands([]byte(line))
	if err != nil || len(cmds) != 1 || cmds[0].Verb != "add" || len(cmds[0].Args) != 4 {
		t.Fatalf("round trip: %v %v", cmds, err)
	}
}
