// Package policy implements parsers for the legacy, policy-relevant
// configuration files the paper's study identifies: /etc/fstab (user
// mounts), /etc/sudoers and /etc/sudoers.d (delegation), /etc/bind
// (privileged-port allocation), and /etc/ppp/options (PPP session policy),
// plus the simple line-oriented grammar Protego uses on its /proc
// configuration files. The monitoring daemon parses these files and pushes
// the results into the kernel; administrators can also write the /proc
// grammar directly.
package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// FstabEntry is one line of /etc/fstab.
type FstabEntry struct {
	Device     string
	MountPoint string
	FSType     string
	Options    []string
	Dump       int
	Pass       int
}

// HasOption reports whether the entry carries the named mount option.
func (e *FstabEntry) HasOption(opt string) bool {
	for _, o := range e.Options {
		if o == opt {
			return true
		}
	}
	return false
}

// UserMountable reports whether the administrator marked the entry
// mountable by unprivileged users via the "user" or "users" option — the
// operational constraint the mount utilities (and now the Protego LSM)
// enforce.
func (e *FstabEntry) UserMountable() bool {
	return e.HasOption("user") || e.HasOption("users")
}

// AnyUserUnmountable reports whether any user may unmount the entry
// ("users"), as opposed to only the user who mounted it ("user").
func (e *FstabEntry) AnyUserUnmountable() bool { return e.HasOption("users") }

// ReadOnly reports whether the entry mounts read-only.
func (e *FstabEntry) ReadOnly() bool { return e.HasOption("ro") }

// String renders the entry in fstab format.
func (e *FstabEntry) String() string {
	opts := strings.Join(e.Options, ",")
	if opts == "" {
		opts = "defaults"
	}
	return fmt.Sprintf("%s %s %s %s %d %d", e.Device, e.MountPoint, e.FSType, opts, e.Dump, e.Pass)
}

// ParseFstab parses the contents of /etc/fstab. Blank lines and #-comments
// are skipped; short lines are an error (a malformed fstab must not
// silently widen the mount whitelist).
func ParseFstab(data string) ([]FstabEntry, error) {
	var entries []FstabEntry
	for lineNo, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("fstab line %d: expected at least 4 fields, got %d", lineNo+1, len(fields))
		}
		e := FstabEntry{
			Device:     fields[0],
			MountPoint: fields[1],
			FSType:     fields[2],
		}
		for _, opt := range strings.Split(fields[3], ",") {
			opt = strings.TrimSpace(opt)
			if opt != "" && opt != "defaults" {
				e.Options = append(e.Options, opt)
			}
		}
		if len(fields) > 4 {
			n, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fmt.Errorf("fstab line %d: bad dump field %q", lineNo+1, fields[4])
			}
			e.Dump = n
		}
		if len(fields) > 5 {
			n, err := strconv.Atoi(fields[5])
			if err != nil {
				return nil, fmt.Errorf("fstab line %d: bad pass field %q", lineNo+1, fields[5])
			}
			e.Pass = n
		}
		entries = append(entries, e)
	}
	return entries, nil
}
