package policy

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SudoRule is one authorization line of /etc/sudoers:
//
//	user HOST = (runas-list) [NOPASSWD:] command-list
//
// The user may be a username, a %group, an alias, or ALL. Protego extends
// the same grammar to express the policies of su, sudoedit, newgrp, dbus,
// and policykit (§4.3), so each rule also records which utility family it
// governs via the comment-free grammar below.
type SudoRule struct {
	// User is the requesting principal: "alice", "%wheel", "ADMINS"
	// (alias), or "ALL".
	User string
	// Host is matched against the local hostname; almost always "ALL".
	Host string
	// RunAs lists target users the rule delegates ("root", "alice",
	// "ALL"). An empty list means root only, matching sudo's default.
	RunAs []string
	// NoPasswd disables the recent-authentication requirement.
	NoPasswd bool
	// SetEnv permits environment inheritance across the transition.
	SetEnv bool
	// Commands lists permitted command paths, possibly with arguments
	// ("ALL" permits any command).
	Commands []string
}

// Sudoers is the parsed delegation policy.
type Sudoers struct {
	Rules        []SudoRule
	UserAliases  map[string][]string
	CmndAliases  map[string][]string
	RunAsAliases map[string][]string
	// EnvKeep lists environment variables preserved across delegated
	// transitions; everything else is sanitized.
	EnvKeep []string
	// TimestampTimeout is the authentication recency window (sudo's
	// default of 5 minutes).
	TimestampTimeout time.Duration

	// idx is the compiled dispatch index built by Compile; nil falls back
	// to the alias-expanding scan (hand-built Sudoers values still work).
	idx *sudoIndex
}

// DefaultTimestampTimeout is sudo's classic 5-minute window (§4.3: "sudo
// only checks the password if a password has not been entered on the
// terminal in the last 5 minutes").
const DefaultTimestampTimeout = 5 * time.Minute

// ParseSudoers parses /etc/sudoers content. The grammar supports Defaults
// (env_keep, timestamp_timeout), User_Alias / Cmnd_Alias / Runas_Alias
// definitions, and authorization rules. Line continuations with '\' are
// honored. A parse error aborts the whole file: a half-applied delegation
// policy is worse than none.
func ParseSudoers(data string) (*Sudoers, error) {
	s := &Sudoers{
		UserAliases:      make(map[string][]string),
		CmndAliases:      make(map[string][]string),
		RunAsAliases:     make(map[string][]string),
		TimestampTimeout: DefaultTimestampTimeout,
		EnvKeep:          []string{"TERM", "LANG", "HOME", "PATH"},
	}
	// Join continuation lines.
	raw := strings.ReplaceAll(data, "\\\n", " ")
	for lineNo, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "Defaults"):
			if err := s.parseDefaults(strings.TrimSpace(strings.TrimPrefix(line, "Defaults"))); err != nil {
				return nil, fmt.Errorf("sudoers line %d: %v", lineNo+1, err)
			}
		case strings.HasPrefix(line, "User_Alias"):
			if err := parseAlias(line, "User_Alias", s.UserAliases); err != nil {
				return nil, fmt.Errorf("sudoers line %d: %v", lineNo+1, err)
			}
		case strings.HasPrefix(line, "Cmnd_Alias"):
			if err := parseAlias(line, "Cmnd_Alias", s.CmndAliases); err != nil {
				return nil, fmt.Errorf("sudoers line %d: %v", lineNo+1, err)
			}
		case strings.HasPrefix(line, "Runas_Alias"):
			if err := parseAlias(line, "Runas_Alias", s.RunAsAliases); err != nil {
				return nil, fmt.Errorf("sudoers line %d: %v", lineNo+1, err)
			}
		default:
			rule, err := parseRule(line)
			if err != nil {
				return nil, fmt.Errorf("sudoers line %d: %v", lineNo+1, err)
			}
			s.Rules = append(s.Rules, rule)
		}
	}
	s.Compile()
	return s, nil
}

func (s *Sudoers) parseDefaults(rest string) error {
	switch {
	case strings.HasPrefix(rest, "env_keep"):
		eq := strings.IndexAny(rest, "=")
		if eq < 0 {
			return fmt.Errorf("bad env_keep: %q", rest)
		}
		val := strings.Trim(strings.TrimSpace(rest[eq+1:]), `"`)
		add := strings.HasSuffix(strings.TrimSpace(rest[:eq]), "+")
		vars := strings.Fields(val)
		if add {
			s.EnvKeep = append(s.EnvKeep, vars...)
		} else {
			s.EnvKeep = vars
		}
		return nil
	case strings.HasPrefix(rest, "timestamp_timeout"):
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("bad timestamp_timeout: %q", rest)
		}
		minutes, err := strconv.ParseFloat(strings.TrimSpace(rest[eq+1:]), 64)
		if err != nil {
			return fmt.Errorf("bad timestamp_timeout value: %v", err)
		}
		s.TimestampTimeout = time.Duration(minutes * float64(time.Minute))
		return nil
	default:
		// Unknown Defaults directives are tolerated (sudo has dozens).
		return nil
	}
}

func parseAlias(line, keyword string, into map[string][]string) error {
	rest := strings.TrimSpace(strings.TrimPrefix(line, keyword))
	eq := strings.IndexByte(rest, '=')
	if eq < 0 {
		return fmt.Errorf("bad %s: %q", keyword, line)
	}
	name := strings.TrimSpace(rest[:eq])
	if name == "" || name != strings.ToUpper(name) {
		return fmt.Errorf("%s name must be upper case: %q", keyword, name)
	}
	var members []string
	for _, m := range strings.Split(rest[eq+1:], ",") {
		m = strings.TrimSpace(m)
		if m != "" {
			members = append(members, m)
		}
	}
	if len(members) == 0 {
		return fmt.Errorf("%s %s has no members", keyword, name)
	}
	into[name] = members
	return nil
}

// parseRule parses "user host = (runas) [NOPASSWD:] [SETENV:] cmd, cmd".
func parseRule(line string) (SudoRule, error) {
	var rule SudoRule
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return rule, fmt.Errorf("missing '=': %q", line)
	}
	left := strings.Fields(line[:eq])
	if len(left) != 2 {
		return rule, fmt.Errorf("expected 'user host' before '=': %q", line)
	}
	rule.User, rule.Host = left[0], left[1]

	rest := strings.TrimSpace(line[eq+1:])
	if strings.HasPrefix(rest, "(") {
		close := strings.IndexByte(rest, ')')
		if close < 0 {
			return rule, fmt.Errorf("unclosed runas list: %q", line)
		}
		for _, r := range strings.Split(rest[1:close], ",") {
			r = strings.TrimSpace(r)
			if r != "" {
				rule.RunAs = append(rule.RunAs, r)
			}
		}
		rest = strings.TrimSpace(rest[close+1:])
	}
	if len(rule.RunAs) == 0 {
		rule.RunAs = []string{"root"}
	}
	for {
		switch {
		case strings.HasPrefix(rest, "NOPASSWD:"):
			rule.NoPasswd = true
			rest = strings.TrimSpace(strings.TrimPrefix(rest, "NOPASSWD:"))
		case strings.HasPrefix(rest, "PASSWD:"):
			rule.NoPasswd = false
			rest = strings.TrimSpace(strings.TrimPrefix(rest, "PASSWD:"))
		case strings.HasPrefix(rest, "SETENV:"):
			rule.SetEnv = true
			rest = strings.TrimSpace(strings.TrimPrefix(rest, "SETENV:"))
		default:
			goto commands
		}
	}
commands:
	for _, c := range strings.Split(rest, ",") {
		c = strings.TrimSpace(c)
		if c != "" {
			rule.Commands = append(rule.Commands, c)
		}
	}
	if len(rule.Commands) == 0 {
		return rule, fmt.Errorf("rule has no commands: %q", line)
	}
	return rule, nil
}

// expand resolves an alias name through the alias table, following nested
// aliases. A seen set breaks alias cycles (Cmnd_Alias A = B; B = A): each
// alias is expanded at most once per lookup, so a cyclic definition
// degrades to its reachable terminal members instead of recursing without
// bound. (Found by the vulngen misconfiguration fuzzer: the previous
// version only skipped self-references, so a two-alias cycle written into
// /etc/sudoers would overflow the stack when the monitoring daemon synced
// the delegation policy — a config-triggered kernel-side crash.)
func expand(name string, aliases map[string][]string) []string {
	return expandSeen(name, aliases, nil)
}

func expandSeen(name string, aliases map[string][]string, seen map[string]bool) []string {
	members, ok := aliases[name]
	if !ok {
		return []string{name}
	}
	if seen == nil {
		seen = make(map[string]bool, 4)
	}
	seen[name] = true
	var out []string
	for _, m := range members {
		if seen[m] {
			continue
		}
		out = append(out, expandSeen(m, aliases, seen)...)
	}
	return out
}

// userMatches reports whether the rule's User field covers the requesting
// principal.
func (s *Sudoers) userMatches(ruleUser, user string, groups []string) bool {
	for _, u := range expand(ruleUser, s.UserAliases) {
		if u == "ALL" || u == user {
			return true
		}
		if strings.HasPrefix(u, "%") {
			want := strings.TrimPrefix(u, "%")
			for _, g := range groups {
				if g == want {
					return true
				}
			}
		}
	}
	return false
}

// runasMatches reports whether the rule delegates to target.
func (s *Sudoers) runasMatches(rule *SudoRule, target string) bool {
	for _, r := range rule.RunAs {
		for _, rr := range expand(r, s.RunAsAliases) {
			if rr == "ALL" || rr == target {
				return true
			}
		}
	}
	return false
}

// commandMatches reports whether the rule permits cmd (an absolute path).
func (s *Sudoers) commandMatches(rule *SudoRule, cmd string) bool {
	for _, c := range rule.Commands {
		for _, cc := range expand(c, s.CmndAliases) {
			if cc == "ALL" {
				return true
			}
			// A command spec may carry arguments; the path is the
			// first token.
			path := strings.Fields(cc)[0]
			if path == cmd {
				return true
			}
			// Directory specs ("/usr/bin/") permit anything inside.
			if strings.HasSuffix(path, "/") && strings.HasPrefix(cmd, path) {
				return true
			}
		}
	}
	return false
}

// Grant summarizes what a delegation lookup authorizes.
type Grant struct {
	Rule *SudoRule
	// NoPasswd reports that authentication recency is not required.
	NoPasswd bool
	// AnyCommand reports the rule permits every command (ALL).
	AnyCommand bool
}

// LookupTransition finds a rule permitting user (with groups) to run as
// target, regardless of command. This answers the Protego setuid hook's
// question: "could this task exec at least one permissible binary as the
// pending user?" (§4.3).
func (s *Sudoers) LookupTransition(user string, groups []string, target string) (Grant, bool) {
	if s.idx != nil {
		for _, i := range s.idx.candidates(user, groups) {
			cr := &s.idx.rules[i]
			if !cr.runasMatch(target) {
				continue
			}
			rule := &s.Rules[i]
			return Grant{
				Rule:       rule,
				NoPasswd:   rule.NoPasswd,
				AnyCommand: cr.anyCmd || cr.litAll,
			}, true
		}
		return Grant{}, false
	}
	for i := range s.Rules {
		rule := &s.Rules[i]
		if !s.userMatches(rule.User, user, groups) {
			continue
		}
		if !s.runasMatches(rule, target) {
			continue
		}
		return Grant{
			Rule:       rule,
			NoPasswd:   rule.NoPasswd,
			AnyCommand: s.commandMatches(rule, "ALL") || hasALL(rule.Commands),
		}, true
	}
	return Grant{}, false
}

func hasALL(cmds []string) bool {
	for _, c := range cmds {
		if c == "ALL" {
			return true
		}
	}
	return false
}

// LookupCommand finds a rule permitting user to run cmd as target — the
// exec-time half of setuid-on-exec enforcement.
func (s *Sudoers) LookupCommand(user string, groups []string, target, cmd string) (Grant, bool) {
	if s.idx != nil {
		for _, i := range s.idx.candidates(user, groups) {
			cr := &s.idx.rules[i]
			if !cr.runasMatch(target) || !cr.cmdMatch(cmd) {
				continue
			}
			rule := &s.Rules[i]
			return Grant{Rule: rule, NoPasswd: rule.NoPasswd, AnyCommand: cr.litAll}, true
		}
		return Grant{}, false
	}
	for i := range s.Rules {
		rule := &s.Rules[i]
		if !s.userMatches(rule.User, user, groups) {
			continue
		}
		if !s.runasMatches(rule, target) {
			continue
		}
		if !s.commandMatches(rule, cmd) {
			continue
		}
		return Grant{Rule: rule, NoPasswd: rule.NoPasswd, AnyCommand: hasALL(rule.Commands)}, true
	}
	return Grant{}, false
}

// SanitizeEnv filters env down to the EnvKeep whitelist (unless the
// matched rule carries SETENV). The returned map is fresh.
func (s *Sudoers) SanitizeEnv(env map[string]string, g Grant) map[string]string {
	if g.Rule != nil && g.Rule.SetEnv {
		out := make(map[string]string, len(env))
		for k, v := range env {
			out[k] = v
		}
		return out
	}
	out := make(map[string]string, len(s.EnvKeep))
	for _, k := range s.EnvKeep {
		if v, ok := env[k]; ok {
			out[k] = v
		}
	}
	return out
}
