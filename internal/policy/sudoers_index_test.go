package policy

import (
	"testing"
)

const indexedSudoers = `
User_Alias ADMINS = alice, %wheel
Cmnd_Alias EDITORS = /usr/bin/vi, /usr/bin/nano args here
Runas_Alias OPS = root, operator

ADMINS ALL = (OPS) EDITORS
bob    ALL = (ALL) NOPASSWD: /usr/sbin/
%audit ALL = (root) /usr/bin/last
carol  ALL = (root) ALL
ALL    ALL = (root) /bin/ping
`

// TestCompiledLookupMatchesSlowPath drives the compiled index and the
// alias-expanding scan over the same query matrix and requires identical
// answers — grant/deny, matched rule, and every Grant field.
func TestCompiledLookupMatchesSlowPath(t *testing.T) {
	s, err := ParseSudoers(indexedSudoers)
	if err != nil {
		t.Fatal(err)
	}
	if s.idx == nil {
		t.Fatal("ParseSudoers did not compile the index")
	}
	slow := *s
	slow.idx = nil

	users := []string{"alice", "bob", "carol", "dave", "eve"}
	groupSets := [][]string{nil, {"wheel"}, {"audit"}, {"wheel", "audit"}, {"users"}}
	targets := []string{"root", "operator", "alice", "nobody"}
	cmds := []string{"/usr/bin/vi", "/usr/bin/nano", "/usr/sbin/useradd",
		"/usr/bin/last", "/bin/ping", "/bin/sh", "/usr/sbin/"}

	for _, u := range users {
		for _, gs := range groupSets {
			for _, tgt := range targets {
				fg, fok := s.LookupTransition(u, gs, tgt)
				sg, sok := slow.LookupTransition(u, gs, tgt)
				if fok != sok || fg != sg {
					t.Errorf("LookupTransition(%s,%v,%s): fast (%+v,%v) != slow (%+v,%v)",
						u, gs, tgt, fg, fok, sg, sok)
				}
				for _, cmd := range cmds {
					fg, fok := s.LookupCommand(u, gs, tgt, cmd)
					sg, sok := slow.LookupCommand(u, gs, tgt, cmd)
					if fok != sok || fg != sg {
						t.Errorf("LookupCommand(%s,%v,%s,%s): fast (%+v,%v) != slow (%+v,%v)",
							u, gs, tgt, cmd, fg, fok, sg, sok)
					}
				}
			}
		}
	}
}

func TestCompiledLookupSemantics(t *testing.T) {
	s, err := ParseSudoers(indexedSudoers)
	if err != nil {
		t.Fatal(err)
	}
	// Alias member by name.
	if g, ok := s.LookupCommand("alice", nil, "operator", "/usr/bin/vi"); !ok || g.NoPasswd {
		t.Fatalf("alice vi as operator: %+v %v", g, ok)
	}
	// Alias member by group.
	if _, ok := s.LookupCommand("frank", []string{"wheel"}, "root", "/usr/bin/nano"); !ok {
		t.Fatal("wheel member denied EDITORS")
	}
	// Directory spec is a prefix match.
	if g, ok := s.LookupCommand("bob", nil, "alice", "/usr/sbin/useradd"); !ok || !g.NoPasswd {
		t.Fatalf("bob useradd: %+v %v", g, ok)
	}
	if _, ok := s.LookupCommand("bob", nil, "alice", "/usr/bin/vi"); ok {
		t.Fatal("bob vi should be denied (outside /usr/sbin/)")
	}
	// ALL command grants any command and reports AnyCommand.
	if g, ok := s.LookupTransition("carol", nil, "root"); !ok || !g.AnyCommand {
		t.Fatalf("carol transition: %+v %v", g, ok)
	}
	// ALL user row matches anyone, but only for its command.
	if _, ok := s.LookupCommand("eve", nil, "root", "/bin/ping"); !ok {
		t.Fatal("ALL-user ping rule should match eve")
	}
	if _, ok := s.LookupCommand("eve", nil, "root", "/bin/sh"); ok {
		t.Fatal("eve /bin/sh should be denied")
	}
	// Runas outside the rule's list is denied.
	if _, ok := s.LookupCommand("alice", nil, "nobody", "/usr/bin/vi"); ok {
		t.Fatal("alice as nobody should be denied")
	}
}
