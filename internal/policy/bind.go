package policy

import (
	"fmt"
	"strconv"
	"strings"
)

// BindEntry allocates one privileged TCP or UDP port to a single
// application instance, identified by a (binary path, user) pair — the
// object-based policy of §4.1.3. The policy file /etc/bind contains one
// entry per line:
//
//	25  tcp  /usr/sbin/exim4   Debian-exim
//	80  tcp  /usr/sbin/apache2 www-data
//	514 udp  /usr/sbin/syslogd root
type BindEntry struct {
	Port   int
	Proto  string // "tcp" or "udp"
	Binary string
	User   string // username, resolved to a uid by the monitoring daemon
}

// String renders the entry in /etc/bind format.
func (e *BindEntry) String() string {
	return fmt.Sprintf("%d %s %s %s", e.Port, e.Proto, e.Binary, e.User)
}

// ParseBind parses /etc/bind. Each privileged port may map to only one
// application instance; duplicates are an error.
func ParseBind(data string) ([]BindEntry, error) {
	var entries []BindEntry
	seen := make(map[string]bool)
	for lineNo, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("bind line %d: expected 'port proto binary user', got %q", lineNo+1, line)
		}
		port, err := strconv.Atoi(fields[0])
		if err != nil || port <= 0 || port >= 1024 {
			return nil, fmt.Errorf("bind line %d: port must be in 1..1023, got %q", lineNo+1, fields[0])
		}
		proto := strings.ToLower(fields[1])
		if proto != "tcp" && proto != "udp" {
			return nil, fmt.Errorf("bind line %d: proto must be tcp or udp, got %q", lineNo+1, fields[1])
		}
		if !strings.HasPrefix(fields[2], "/") {
			return nil, fmt.Errorf("bind line %d: binary must be an absolute path, got %q", lineNo+1, fields[2])
		}
		key := proto + "/" + fields[0]
		if seen[key] {
			return nil, fmt.Errorf("bind line %d: duplicate allocation of %s port %d", lineNo+1, proto, port)
		}
		seen[key] = true
		entries = append(entries, BindEntry{Port: port, Proto: proto, Binary: fields[2], User: fields[3]})
	}
	return entries, nil
}
