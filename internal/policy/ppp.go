package policy

import (
	"fmt"
	"strings"
)

// PPPOptions is the policy mined from /etc/ppp/options (§4.1.2): which
// modem session parameters unprivileged users may set, whether they may
// install routes over a ppp link (subject to the kernel's conflict check),
// and which modem devices they may attach.
type PPPOptions struct {
	// SafeParams are session parameters configurable without privilege
	// (compression, congestion control, mtu, ...).
	SafeParams []string
	// AllowUserRoutes permits unprivileged route additions over ppp
	// links when the address range was not previously reachable.
	AllowUserRoutes bool
	// Devices lists modem device paths users may attach.
	Devices []string
}

// ParamSafe reports whether name may be configured by an unprivileged user.
func (o *PPPOptions) ParamSafe(name string) bool {
	for _, p := range o.SafeParams {
		if p == name {
			return true
		}
	}
	return false
}

// DeviceAllowed reports whether the modem device may be attached by users.
func (o *PPPOptions) DeviceAllowed(path string) bool {
	for _, d := range o.Devices {
		if d == path {
			return true
		}
	}
	return false
}

// DefaultPPPOptions returns the paper's defaults: only safe session
// parameters, no user routes, no devices.
func DefaultPPPOptions() *PPPOptions {
	return &PPPOptions{
		SafeParams: []string{"bsdcomp", "deflate", "vj-max-slots", "mtu", "mru", "asyncmap", "lcp-echo-interval"},
	}
}

// ParsePPPOptions parses /etc/ppp/options. Recognized directives:
//
//	safe-param <name>       # add a user-settable session parameter
//	user-routes             # allow non-conflicting user routes
//	device <path>           # whitelist a modem device for users
//
// plus the standard pppd option lines, which are ignored for policy
// purposes but must be syntactically plausible (a bare word or word+value).
func ParsePPPOptions(data string) (*PPPOptions, error) {
	o := DefaultPPPOptions()
	for lineNo, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "safe-param":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ppp options line %d: safe-param needs a name", lineNo+1)
			}
			o.SafeParams = append(o.SafeParams, fields[1])
		case "user-routes":
			o.AllowUserRoutes = true
		case "device":
			if len(fields) != 2 || !strings.HasPrefix(fields[1], "/") {
				return nil, fmt.Errorf("ppp options line %d: device needs an absolute path", lineNo+1)
			}
			o.Devices = append(o.Devices, fields[1])
		default:
			if len(fields) > 2 {
				return nil, fmt.Errorf("ppp options line %d: unrecognized directive %q", lineNo+1, line)
			}
			// Standard pppd option; not policy-relevant.
		}
	}
	return o, nil
}
