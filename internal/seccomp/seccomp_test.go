package seccomp

import (
	"bytes"
	"strings"
	"testing"

	"protego/internal/caps"
	"protego/internal/kernel"
	"protego/internal/lsm"
)

func TestProfileBitmask(t *testing.T) {
	p := NewProfile("/bin/x")
	if p.Len() != 0 {
		t.Fatalf("fresh profile allows %d syscalls, want 0", p.Len())
	}
	p.Allow(kernel.SysOpen)
	p.Allow(kernel.SysKill)
	if !p.Allows(kernel.SysOpen) || !p.Allows(kernel.SysKill) {
		t.Fatal("Allow did not take")
	}
	if p.Allows(kernel.SysMount) {
		t.Fatal("profile allows a syscall never added")
	}
	p.Forbid(kernel.SysKill)
	if p.Allows(kernel.SysKill) {
		t.Fatal("Forbid did not take")
	}
	if got := p.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}

	full := FullProfile("")
	if got := full.Len(); got != kernel.NumSysno-1 {
		t.Fatalf("FullProfile allows %d syscalls, want the whole catalog (%d)",
			got, kernel.NumSysno-1)
	}
	cl := full.Clone()
	cl.Forbid(kernel.SysOpen)
	if !full.Allows(kernel.SysOpen) {
		t.Fatal("mutating a clone leaked into the original")
	}
}

func TestSetEncodeDecodeRoundTrip(t *testing.T) {
	s := NewSet("protego")
	s.Observe("/bin/ping", kernel.SysSocket)
	s.Observe("/bin/ping", kernel.SysSendTo)
	s.Observe("/usr/bin/passwd", kernel.SysReadFile)
	s.Observe("/usr/bin/passwd", kernel.SysWriteFile)
	s.Observe("", kernel.SysStat) // init-style task, machine-only

	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("encode → decode → encode not byte-identical:\n%s\nvs\n%s", data, data2)
	}
	if got.Mode != "protego" {
		t.Fatalf("mode = %q", got.Mode)
	}
	if p := got.For("/bin/ping"); p == nil || !p.Allows(kernel.SysSocket) || p.Allows(kernel.SysReadFile) {
		t.Fatal("decoded /bin/ping profile wrong")
	}
	if !got.Machine.Allows(kernel.SysStat) {
		t.Fatal("machine union lost a syscall across the round trip")
	}
	// Observing an invalid sysno must be a no-op, not a corrupted mask.
	s.Observe("/bin/ping", kernel.SysInvalid)
	s.Observe("/bin/ping", kernel.Sysno(250))
	if s.For("/bin/ping").Len() != 2 {
		t.Fatal("invalid observation grew the profile")
	}
}

func TestDecodeRejectsUnknownName(t *testing.T) {
	bad := []byte(`{"mode":"linux","defaultAction":"SCMP_ACT_ERRNO",` +
		`"machine":{"names":["open","clone3"],"action":"SCMP_ACT_ALLOW"},"binaries":[]}`)
	_, err := Decode(bad)
	if err == nil || !strings.Contains(err.Error(), "clone3") {
		t.Fatalf("Decode accepted a stale profile, err=%v", err)
	}
}

// fakeTask is the minimal lsm.Task for exercising the module without a
// kernel: a binary path plus a blob map, like task_struct's security slot.
type fakeTask struct {
	pid       int
	binary    string
	blobs     map[string]any
	filter    any
	filterSet bool
}

func (f *fakeTask) PID() int              { return f.pid }
func (f *fakeTask) UID() int              { return 1000 }
func (f *fakeTask) EUID() int             { return 1000 }
func (f *fakeTask) GID() int              { return 1000 }
func (f *fakeTask) EGID() int             { return 1000 }
func (f *fakeTask) Groups() []int         { return nil }
func (f *fakeTask) Capable(caps.Cap) bool { return false }
func (f *fakeTask) BinaryPath() string    { return f.binary }
func (f *fakeTask) SecurityBlob(key string) any {
	return f.blobs[key]
}
func (f *fakeTask) SetSecurityBlob(key string, v any) {
	if f.blobs == nil {
		f.blobs = map[string]any{}
	}
	if v == nil {
		delete(f.blobs, key)
		return
	}
	f.blobs[key] = v
}
func (f *fakeTask) SyscallFilter() (any, bool) { return f.filter, f.filterSet }
func (f *fakeTask) SetSyscallFilter(v any)     { f.filter, f.filterSet = v, true }

func testSet() *ProfileSet {
	s := NewSet("linux")
	s.Observe("/bin/ping", kernel.SysSocket)
	s.Observe("/usr/bin/passwd", kernel.SysWriteFile)
	return s
}

func TestModuleProfileResolution(t *testing.T) {
	m := NewModule(testSet(), false)

	// No blob, profiled binary path → that binary's profile.
	tk := &fakeTask{pid: 1, binary: "/bin/ping"}
	if dec, _ := m.TaskSyscall(tk, int(kernel.SysSocket), "socket"); dec != lsm.NoOpinion {
		t.Fatalf("in-profile syscall: dec=%v, want NoOpinion", dec)
	}
	if dec, _ := m.TaskSyscall(tk, int(kernel.SysKill), "kill"); dec != lsm.Deny {
		t.Fatalf("out-of-profile syscall: dec=%v, want Deny", dec)
	}

	// No blob, unprofiled binary → machine union.
	tk = &fakeTask{pid: 2, binary: "/bin/unknown"}
	if dec, _ := m.TaskSyscall(tk, int(kernel.SysWriteFile), "writefile"); dec != lsm.NoOpinion {
		t.Fatalf("machine-union syscall: dec=%v, want NoOpinion", dec)
	}
	if dec, _ := m.TaskSyscall(tk, int(kernel.SysMount), "mount"); dec != lsm.Deny {
		t.Fatalf("outside machine union: dec=%v, want Deny", dec)
	}

	// ExecCheck into a profiled binary installs its blob; the blob wins
	// over the (stale) binary-path lookup until the next exec.
	tk = &fakeTask{pid: 3, binary: "/bin/ping"}
	if _, err := m.ExecCheck(tk, &lsm.ExecRequest{Path: "/usr/bin/passwd"}); err != nil {
		t.Fatal(err)
	}
	if p, _ := tk.SecurityBlob(BlobKey).(*Profile); p == nil || p.Binary != "/usr/bin/passwd" {
		t.Fatalf("exec did not swap the blob: %v", tk.SecurityBlob(BlobKey))
	}
	if dec, _ := m.TaskSyscall(tk, int(kernel.SysWriteFile), "writefile"); dec != lsm.NoOpinion {
		t.Fatal("blob profile not consulted after exec")
	}
	// Exec into an unprofiled binary clears the blob → machine union.
	if _, err := m.ExecCheck(tk, &lsm.ExecRequest{Path: "/bin/unknown"}); err != nil {
		t.Fatal(err)
	}
	if tk.SecurityBlob(BlobKey) != nil {
		t.Fatal("exec into unprofiled binary left a stale blob")
	}
}

func TestModuleAuditRecordsInsteadOfDenying(t *testing.T) {
	m := NewModule(testSet(), true)
	tk := &fakeTask{pid: 7, binary: "/bin/ping"}
	if dec, err := m.TaskSyscall(tk, int(kernel.SysKill), "kill"); dec != lsm.NoOpinion || err != nil {
		t.Fatalf("audit mode denied: dec=%v err=%v", dec, err)
	}
	v := m.TakeViolations()
	if len(v) != 1 || v[0].PID != 7 || v[0].Binary != "/bin/ping" || v[0].Sysno != kernel.SysKill {
		t.Fatalf("violations = %+v", v)
	}
	if again := m.TakeViolations(); len(again) != 0 {
		t.Fatal("TakeViolations did not drain")
	}
}
