// Package profiles holds the committed golden syscall profiles, one
// document per machine image, in the Moby/OCI profiles/ JSON shape. They
// are regenerated deterministically from the functional corpora by
// internal/seccomp/profiler (go test ./internal/seccomp/profiler -run
// TestGoldenProfilesUpToDate -args -update); the same test, without the
// flag, is the CI drift gate.
package profiles

import (
	_ "embed"
	"fmt"

	"protego/internal/kernel"
	"protego/internal/seccomp"
)

//go:embed linux.json
var linuxJSON []byte

//go:embed protego.json
var protegoJSON []byte

// Raw returns the committed bytes of the mode's profile document.
func Raw(mode kernel.Mode) []byte {
	if mode == kernel.ModeProtego {
		return protegoJSON
	}
	return linuxJSON
}

// Load decodes the committed profile set for mode.
func Load(mode kernel.Mode) (*seccomp.ProfileSet, error) {
	set, err := seccomp.Decode(Raw(mode))
	if err != nil {
		return nil, fmt.Errorf("profiles: %s: %w", mode, err)
	}
	return set, nil
}
