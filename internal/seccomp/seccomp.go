// Package seccomp implements trace-derived per-binary syscall allowlists.
// A profiler replays the functional corpora (equiv scenarios + difffuzz
// traces) on an instrumented machine and records, per registered binary,
// the set of syscalls it actually issues; the learned profiles compile to
// bitmask filters over the kernel.Sysno catalog and are enforced from the
// kernel's single enter() prologue through the TaskSyscall LSM hook,
// failing violations closed with ENOSYS. The committed JSON shape follows
// the Moby/OCI profiles/ convention (sorted "names" lists with
// SCMP_ACT_ALLOW against an SCMP_ACT_ERRNO default) so profile drift is
// always a reviewable diff.
package seccomp

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"

	"protego/internal/kernel"
)

// maskWords sizes the allowlist bitmask to the syscall catalog.
const maskWords = (kernel.NumSysno + 63) / 64

// Profile is one binary's (or the whole machine's) syscall allowlist: a
// bitmask over the kernel.Sysno catalog. The zero value denies everything.
type Profile struct {
	// Binary is the profiled binary's path, or "" for a machine profile.
	Binary string
	mask   [maskWords]uint64
}

// NewProfile returns an empty (deny-everything) profile for binary.
func NewProfile(binary string) *Profile { return &Profile{Binary: binary} }

// FullProfile returns a profile allowing the entire catalog; benchmarks
// use it to measure the enforcement mechanism's cost without any policy
// denials, and tests subtract from it to craft targeted denials.
func FullProfile(binary string) *Profile {
	p := NewProfile(binary)
	for _, sn := range kernel.Sysnos() {
		p.Allow(sn)
	}
	return p
}

// Allow adds sn to the allowlist.
func (p *Profile) Allow(sn kernel.Sysno) {
	if int(sn) < kernel.NumSysno {
		p.mask[int(sn)/64] |= 1 << (uint(sn) % 64)
	}
}

// Forbid removes sn from the allowlist.
func (p *Profile) Forbid(sn kernel.Sysno) {
	if int(sn) < kernel.NumSysno {
		p.mask[int(sn)/64] &^= 1 << (uint(sn) % 64)
	}
}

// Allows reports whether sn is in the allowlist.
func (p *Profile) Allows(sn kernel.Sysno) bool {
	if int(sn) >= kernel.NumSysno {
		return false
	}
	return p.mask[int(sn)/64]&(1<<(uint(sn)%64)) != 0
}

// Len counts the allowed syscalls.
func (p *Profile) Len() int {
	n := 0
	for _, w := range p.mask {
		n += bits.OnesCount64(w)
	}
	return n
}

// Syscalls returns the allowed syscalls in catalog order.
func (p *Profile) Syscalls() []kernel.Sysno {
	out := make([]kernel.Sysno, 0, p.Len())
	for _, sn := range kernel.Sysnos() {
		if p.Allows(sn) {
			out = append(out, sn)
		}
	}
	return out
}

// Names returns the allowed syscalls' trace names, sorted alphabetically
// — the Moby profile convention, and what makes encoded profiles
// byte-identical across learning runs.
func (p *Profile) Names() []string {
	out := make([]string, 0, p.Len())
	for _, sn := range p.Syscalls() {
		out = append(out, sn.String())
	}
	sort.Strings(out)
	return out
}

// Clone returns an independent copy.
func (p *Profile) Clone() *Profile {
	cp := *p
	return &cp
}

// ProfileSet holds a machine image's learned profiles: one per profiled
// binary plus the machine-wide union applied to tasks running unprofiled
// binaries. Learning mutates the set (through Observe, serialized by the
// Recorder); once handed to an enforcing module it must be treated as
// immutable — enforcement reads it lock-free on every syscall, and clones
// and fleet tenants share the same set by reference.
type ProfileSet struct {
	// Mode names the image the set was learned on ("linux"/"protego").
	Mode string
	// Machine is the union of every syscall observed on the image.
	Machine *Profile
	bins    map[string]*Profile
}

// NewSet returns an empty set for the named mode.
func NewSet(mode string) *ProfileSet {
	return &ProfileSet{Mode: mode, Machine: NewProfile(""), bins: map[string]*Profile{}}
}

// Observe records that binary issued sn, growing both the binary's
// profile and the machine union.
func (s *ProfileSet) Observe(binary string, sn kernel.Sysno) {
	if !sn.Valid() {
		return
	}
	p := s.bins[binary]
	if p == nil {
		p = NewProfile(binary)
		s.bins[binary] = p
	}
	p.Allow(sn)
	s.Machine.Allow(sn)
}

// For returns binary's profile, or nil when it was never profiled.
func (s *ProfileSet) For(binary string) *Profile { return s.bins[binary] }

// Add installs a pre-built profile, replacing any existing one for the
// same binary.
func (s *ProfileSet) Add(p *Profile) { s.bins[p.Binary] = p }

// Binaries lists the profiled binaries, sorted.
func (s *ProfileSet) Binaries() []string {
	out := make([]string, 0, len(s.bins))
	for b := range s.bins {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// Seccomp actions in the committed profile shape.
const (
	ActAllow = "SCMP_ACT_ALLOW"
	ActErrno = "SCMP_ACT_ERRNO"
)

// profileJSON is one allowlist in the committed shape.
type profileJSON struct {
	Binary string   `json:"binary,omitempty"`
	Names  []string `json:"names"`
	Action string   `json:"action"`
}

// setJSON is the committed golden-profile document.
type setJSON struct {
	Mode          string        `json:"mode"`
	DefaultAction string        `json:"defaultAction"`
	Machine       profileJSON   `json:"machine"`
	Binaries      []profileJSON `json:"binaries"`
}

// Encode renders the set in the committed golden shape: binaries and
// names sorted, two-space indent, trailing newline. Equal contents encode
// byte-identically, which is what the CI drift gate compares.
func (s *ProfileSet) Encode() ([]byte, error) {
	doc := setJSON{
		Mode:          s.Mode,
		DefaultAction: ActErrno,
		Machine:       profileJSON{Names: s.Machine.Names(), Action: ActAllow},
		Binaries:      make([]profileJSON, 0, len(s.bins)),
	}
	for _, b := range s.Binaries() {
		doc.Binaries = append(doc.Binaries, profileJSON{
			Binary: b,
			Names:  s.bins[b].Names(),
			Action: ActAllow,
		})
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Decode parses an encoded set, resolving names through the catalog.
// Unknown names are an error: a profile referencing a syscall the catalog
// does not know is stale, not ignorable.
func Decode(data []byte) (*ProfileSet, error) {
	var doc setJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	s := NewSet(doc.Mode)
	fill := func(p *Profile, names []string) error {
		for _, name := range names {
			sn, ok := kernel.FromName(name)
			if !ok {
				return fmt.Errorf("seccomp: unknown syscall %q in %s profile", name, doc.Mode)
			}
			p.Allow(sn)
		}
		return nil
	}
	if err := fill(s.Machine, doc.Machine.Names); err != nil {
		return nil, err
	}
	for _, pj := range doc.Binaries {
		p := NewProfile(pj.Binary)
		if err := fill(p, pj.Names); err != nil {
			return nil, err
		}
		s.bins[pj.Binary] = p
	}
	return s, nil
}
