// Package profiler learns the per-binary syscall profiles from the
// functional corpora: every equiv scenario plus the exact difffuzz trace
// corpus CI executes, replayed on instrumented clones of both golden
// images with a recording seccomp module watching the TaskSyscall hook.
// The corpus is fixed and a profile is a union of observations, so the
// result is deterministic: regenerated profiles are byte-identical to the
// committed goldens unless kernel or utility behavior actually changed.
package profiler

import (
	"fmt"

	"protego/internal/difffuzz"
	"protego/internal/equiv"
	"protego/internal/kernel"
	"protego/internal/seccomp"
	"protego/internal/world"
)

// CorpusSeed is one difffuzz generator stream in the learning corpus.
type CorpusSeed struct {
	Seed int64
	N    int
}

// CorpusSeeds mirrors the difffuzz sweep CI executes (the TestDiffFuzz
// seeds and trace counts; the bench's -difffuzz run is a prefix of the
// first stream). Learning from exactly what CI replays is what makes the
// audit invariant's "0 unexplained violations" a meaningful statement.
var CorpusSeeds = []CorpusSeed{{Seed: 1, N: 200}, {Seed: 2, N: 60}, {Seed: 3, N: 60}, {Seed: 4, N: 60}}

// Learn replays the full corpus and returns the learned profile set for
// each image.
func Learn() (linux, protego *seccomp.ProfileSet, err error) {
	recs := map[kernel.Mode]*seccomp.Recorder{
		kernel.ModeLinux:   seccomp.NewRecorder(kernel.ModeLinux.String()),
		kernel.ModeProtego: seccomp.NewRecorder(kernel.ModeProtego.String()),
	}
	// instrument registers the mode's recorder (always last in the chain,
	// like the enforcing module it stands in for) and arms the syscall
	// gate, so session setup and scenario syscalls are observed exactly
	// where enforcement will later mediate them.
	instrument := func(m *world.Machine) {
		m.K.LSM.Register(recs[m.K.Mode])
		m.K.SetSyscallGate(true)
	}

	// Equiv corpus: every scenario of every utility, each on a private
	// clone of a profiler-local golden pair (scenarios mutate state).
	for _, mode := range []kernel.Mode{kernel.ModeLinux, kernel.ModeProtego} {
		golden, err := world.Build(world.Options{Mode: mode})
		if err != nil {
			return nil, nil, fmt.Errorf("profiler: build %s: %w", mode, err)
		}
		snap := golden.Snapshot()
		for _, u := range equiv.Utilities() {
			scenarios := equiv.Scenarios[u]
			for i := range scenarios {
				m, err := snap.Clone()
				if err != nil {
					return nil, nil, fmt.Errorf("profiler: clone %s: %w", mode, err)
				}
				instrument(m)
				if err := scenarios[i].ReplayOn(m); err != nil {
					return nil, nil, fmt.Errorf("profiler: %s/%s on %s: %w", u, scenarios[i].Name, mode, err)
				}
			}
		}
	}

	// Difffuzz corpus: the CI sweep's exact seeds and counts, replayed
	// without fingerprint comparison (learning wants syscalls, not
	// verdicts). Each Replay drives both images.
	for _, c := range CorpusSeeds {
		gen := difffuzz.NewGenerator(c.Seed)
		for i := 0; i < c.N; i++ {
			if err := difffuzz.Replay(gen.Next(), instrument); err != nil {
				return nil, nil, fmt.Errorf("profiler: difffuzz seed %d trace %d: %w", c.Seed, i, err)
			}
		}
	}
	return recs[kernel.ModeLinux].Set(), recs[kernel.ModeProtego].Set(), nil
}
