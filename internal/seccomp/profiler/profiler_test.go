package profiler

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"protego/internal/kernel"
	"protego/internal/seccomp"
	"protego/internal/seccomp/profiles"
)

var update = flag.Bool("update", false, "regenerate the committed golden profiles")

// TestGoldenProfilesUpToDate is the CI drift gate: it relearns both
// images' profiles from the corpus and compares byte-for-byte against the
// committed goldens, so any behavior change that moves a utility's
// syscall footprint shows up as a reviewable JSON diff. Regenerate with:
//
//	go test ./internal/seccomp/profiler -run TestGoldenProfilesUpToDate -args -update
func TestGoldenProfilesUpToDate(t *testing.T) {
	lin, pro, err := Learn()
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	for _, c := range []struct {
		mode kernel.Mode
		set  *seccomp.ProfileSet
		file string
	}{
		{kernel.ModeLinux, lin, "linux.json"},
		{kernel.ModeProtego, pro, "protego.json"},
	} {
		data, err := c.set.Encode()
		if err != nil {
			t.Fatalf("encode %s: %v", c.mode, err)
		}
		if *update {
			path := filepath.Join("..", "profiles", c.file)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatalf("write %s: %v", path, err)
			}
			t.Logf("wrote %s (%d binaries, machine profile %d syscalls)",
				path, len(c.set.Binaries()), c.set.Machine.Len())
			continue
		}
		if !bytes.Equal(data, profiles.Raw(c.mode)) {
			t.Errorf("%s profile drifted from committed golden %s;\n"+
				"regenerate with: go test ./internal/seccomp/profiler -run TestGoldenProfilesUpToDate -args -update\n"+
				"and review the diff", c.mode, c.file)
		}
	}
}

// TestLearnDeterminism proves the profiler's core property: the same
// corpus yields byte-identical profiles, run to run. Without it the drift
// gate would flake instead of gating.
func TestLearnDeterminism(t *testing.T) {
	lin1, pro1, err := Learn()
	if err != nil {
		t.Fatalf("Learn #1: %v", err)
	}
	lin2, pro2, err := Learn()
	if err != nil {
		t.Fatalf("Learn #2: %v", err)
	}
	for _, c := range []struct {
		name string
		a, b *seccomp.ProfileSet
	}{{"linux", lin1, lin2}, {"protego", pro1, pro2}} {
		da, err := c.a.Encode()
		if err != nil {
			t.Fatal(err)
		}
		db, err := c.b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(da, db) {
			t.Errorf("%s: two Learn runs over the same corpus produced different profiles", c.name)
		}
	}
}
