package seccomp

import (
	"sync"

	"protego/internal/kernel"
	"protego/internal/lsm"
)

// BlobKey is the task security-blob slot holding the task's active
// profile. ExecCheck swaps it by binary path; Fork's blob copy inherits
// it, so children keep the parent image's allowlist until they exec.
const BlobKey = "seccomp.profile"

// Violation is one syscall outside the task's learned profile, recorded
// by an audit-mode module instead of denied.
type Violation struct {
	PID    int
	Binary string
	Sysno  kernel.Sysno
}

// Module enforces a ProfileSet as an LSM module. In audit mode it records
// violations instead of denying — difffuzz runs it that way to assert the
// standing invariant that no utility ever exceeds its learned profile
// without perturbing the trace under test.
//
// Register it LAST in the chain: its ExecCheck swaps the task's profile
// blob for the new image, and every module with veto power must have had
// its chance to short-circuit the exec before that swap happens.
type Module struct {
	lsm.Base
	set   *ProfileSet
	audit bool

	mu   sync.Mutex
	viol []Violation
}

// NewModule wraps set in an enforcing (or, with audit, record-only)
// module. The set must not be mutated afterwards.
func NewModule(set *ProfileSet, audit bool) *Module {
	return &Module{set: set, audit: audit}
}

// Name implements lsm.Module.
func (m *Module) Name() string {
	if m.audit {
		return "seccomp-audit"
	}
	return "seccomp"
}

// Set returns the profile set the module enforces.
func (m *Module) Set() *ProfileSet { return m.set }

// Audit reports whether the module records violations instead of denying.
func (m *Module) Audit() bool { return m.audit }

// MediatesSyscall registers the module for the chain's syscall hot path.
func (*Module) MediatesSyscall() {}

// ExecCheck swaps the task's profile for the new image's. An unprofiled
// binary clears the blob, so TaskSyscall falls back to the machine-wide
// union rather than inheriting the previous image's allowlist. Both the
// blob (the inspectable, fork-inherited record) and the task's lock-free
// syscall-filter slot are rewritten; the slot is what TaskSyscall reads
// on every syscall.
func (m *Module) ExecCheck(t lsm.Task, req *lsm.ExecRequest) (*lsm.CredUpdate, error) {
	p := m.set.For(req.Path)
	if p != nil {
		t.SetSecurityBlob(BlobKey, p)
	} else {
		t.SetSecurityBlob(BlobKey, nil)
	}
	t.SetSyscallFilter(p)
	return nil, nil
}

// resolve populates a cold task's syscall-filter slot: the blob a fork
// inherited, else the profile keyed by the task's binary path (covers
// tasks that never exec-ed, like init), else nil meaning "unprofiled —
// machine union applies". Profiles are immutable and the binary path
// only changes at exec, where ExecCheck rewrites the slot, so the cached
// value never goes stale. A by-path hit is also written to the blob; the
// machine-union case deliberately leaves the blob nil — that is how
// ExecCheck marks "unprofiled", and tests read the distinction back.
func (m *Module) resolve(t lsm.Task) *Profile {
	p, _ := t.SecurityBlob(BlobKey).(*Profile)
	if p == nil {
		if p = m.set.For(t.BinaryPath()); p != nil {
			t.SetSecurityBlob(BlobKey, p)
		}
	}
	t.SetSyscallFilter(p)
	return p
}

// TaskSyscall checks the syscall against the task's active profile: the
// filter slot installed at exec (or by a previous resolve), else the
// machine union. Out-of-profile syscalls Deny — surfaced by the kernel's
// enter() prologue as ENOSYS — or are recorded when auditing.
func (m *Module) TaskSyscall(t lsm.Task, sysno int, name string) (lsm.Decision, error) {
	v, populated := t.SyscallFilter()
	if !populated {
		v = m.resolve(t)
	}
	p, _ := v.(*Profile)
	if p == nil {
		p = m.set.Machine
	}
	sn := kernel.Sysno(sysno)
	if p.Allows(sn) {
		return lsm.NoOpinion, nil
	}
	if m.audit {
		m.mu.Lock()
		m.viol = append(m.viol, Violation{PID: t.PID(), Binary: t.BinaryPath(), Sysno: sn})
		m.mu.Unlock()
		return lsm.NoOpinion, nil
	}
	return lsm.Deny, nil
}

// TakeViolations drains the audit log.
func (m *Module) TakeViolations() []Violation {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.viol
	m.viol = nil
	return out
}

// Recorder is the learning-mode module: it allows everything and records
// (binary, syscall) pairs into a ProfileSet. One recorder may be shared
// across the many machines a profiling run boots; its mutex serializes
// the set mutation.
type Recorder struct {
	lsm.Base
	mu  sync.Mutex
	set *ProfileSet
}

// NewRecorder returns a recorder accumulating into a fresh set for mode.
func NewRecorder(mode string) *Recorder { return &Recorder{set: NewSet(mode)} }

// Name implements lsm.Module.
func (r *Recorder) Name() string { return "seccomp-record" }

// MediatesSyscall registers the recorder for the chain's syscall hot path.
func (*Recorder) MediatesSyscall() {}

// TaskSyscall records the observation and never objects.
func (r *Recorder) TaskSyscall(t lsm.Task, sysno int, name string) (lsm.Decision, error) {
	r.mu.Lock()
	r.set.Observe(t.BinaryPath(), kernel.Sysno(sysno))
	r.mu.Unlock()
	return lsm.NoOpinion, nil
}

// Set returns the profiles recorded so far.
func (r *Recorder) Set() *ProfileSet { return r.set }
