package kernel

import (
	"bytes"
	"fmt"
	"sync"

	"protego/internal/errno"
	"protego/internal/lsm"
	"protego/internal/netfilter"
	"protego/internal/netstack"
	"protego/internal/trace"
	"protego/internal/vfs"
)

// Mode selects which system the kernel models.
type Mode int

// Kernel modes.
const (
	// ModeLinux is the baseline: the setuid bit elevates at exec, the
	// 8 studied syscalls hard-require capabilities, policy lives in
	// trusted userspace binaries.
	ModeLinux Mode = iota
	// ModeProtego is the paper's system: setuid bits are cleared from
	// the studied binaries and the Protego LSM enforces the equivalent
	// policies in the kernel.
	ModeProtego
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeProtego {
		return "protego"
	}
	return "linux"
}

// Program is the entry point of a simulated binary. It runs synchronously
// in the context of the task (exec does not return; the program's return
// value is the process exit code).
type Program func(k *Kernel, t *Task) int

// IoctlHandler implements a device's ioctl surface. granted reports whether
// an LSM granted the (otherwise privileged) operation; base capability
// policy is the handler's responsibility.
type IoctlHandler func(t *Task, cmd uint32, arg any, granted bool) error

// Kernel ties together the substrates: VFS, network stack, netfilter, the
// LSM chain, the task table, and the binary registry.
type Kernel struct {
	Mode   Mode
	FS     *vfs.FS
	Net    *netstack.Stack
	Filter *netfilter.Table
	LSM    *lsm.Chain
	// Trace is the kernel's observability substrate: every syscall, LSM
	// decision, netfilter verdict, and audit line lands in its ring.
	Trace *trace.Tracer

	mu       sync.Mutex
	tasks    map[int]*Task
	nextPID  int
	binaries map[string]Program
	devices  map[string]IoctlHandler
	unprivNS bool
}

// New creates a kernel in the given mode with an empty file system and a
// network stack at hostIP. The netfilter table is installed as the stack's
// output filter.
func New(mode Mode, hostIP netstack.IP) *Kernel {
	k := &Kernel{
		Mode:     mode,
		FS:       vfs.New(),
		Net:      netstack.NewStack(hostIP),
		Filter:   netfilter.NewTable(),
		LSM:      lsm.NewChain(),
		Trace:    trace.New(trace.DefaultCapacity),
		tasks:    make(map[int]*Task),
		binaries: make(map[string]Program),
		devices:  make(map[string]IoctlHandler),
	}
	k.Net.SetFilter(k.Filter)
	k.LSM.SetTracer(k.Trace)
	k.Filter.SetTracer(k.Trace)
	// Surface the VFS dentry-cache counters as fast-path counters in
	// /proc/trace/stats; the FS owns the hot atomics, the tracer reads
	// them lazily.
	fs := k.FS
	k.Trace.RegisterCounter("dcache.hit", func() uint64 { return fs.DcacheStats().Hits })
	k.Trace.RegisterCounter("dcache.miss", func() uint64 { return fs.DcacheStats().Misses })
	k.Trace.RegisterCounter("dcache.invalidate", func() uint64 { return fs.DcacheStats().Invalidates })
	return k
}

// Auditf records a security-relevant event as a structured KindAudit record
// on the trace ring. Retention is bounded by the ring capacity
// (trace.DefaultCapacity events); older lines are overwritten, with the
// shortfall visible via AuditDropped.
func (k *Kernel) Auditf(format string, args ...any) {
	k.Trace.Audit(fmt.Sprintf(format, args...))
}

// AuditLog returns the retained security-audit lines, oldest first. The log
// is a filtered view of the trace ring, so it holds at most the ring
// capacity's worth of recent events.
func (k *Kernel) AuditLog() []string {
	evs := k.Trace.SnapshotKind(trace.KindAudit)
	out := make([]string, 0, len(evs))
	for _, ev := range evs {
		out = append(out, ev.Msg)
	}
	return out
}

// AuditDropped reports how many audit lines have aged out of the bounded
// log (emitted minus retained).
func (k *Kernel) AuditDropped() uint64 {
	total := k.Trace.EmittedKind(trace.KindAudit)
	retained := uint64(len(k.Trace.SnapshotKind(trace.KindAudit)))
	if retained >= total {
		return 0
	}
	return total - retained
}

// RegisterBinary installs a program at path in the binary registry. The
// corresponding inode must be created separately (by the world builder) —
// the registry is the simulation's stand-in for the executable's text.
func (k *Kernel) RegisterBinary(path string, prog Program) {
	k.mu.Lock()
	k.binaries[vfs.CleanPath(path, "/")] = prog
	k.mu.Unlock()
}

// LookupBinary returns the program registered at path, or nil.
func (k *Kernel) LookupBinary(path string) Program {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.binaries[vfs.CleanPath(path, "/")]
}

// RegisterDevice installs an ioctl handler for the device at path.
func (k *Kernel) RegisterDevice(path string, h IoctlHandler) {
	k.mu.Lock()
	k.devices[vfs.CleanPath(path, "/")] = h
	k.mu.Unlock()
}

// InitTask creates the first task (pid 1) running as root with the given
// binary name, cwd /.
func (k *Kernel) InitTask() *Task {
	t := &Task{
		k:           k,
		creds:       RootCreds(),
		cwd:         "/",
		binary:      "/sbin/init",
		argv:        []string{"/sbin/init"},
		env:         map[string]string{"PATH": "/bin:/sbin:/usr/bin:/usr/sbin"},
		blobs:       make(map[string]any),
		fds:         make(map[int]*FileDesc),
		sigHandlers: make(map[int]func(int)),
		Stdout:      &bytes.Buffer{},
		Stderr:      &bytes.Buffer{},
		Stdin:       &bytes.Buffer{},
	}
	k.mu.Lock()
	k.nextPID++
	t.pid = k.nextPID
	k.tasks[t.pid] = t
	k.mu.Unlock()
	return t
}

// Fork clones the calling task: credentials, cwd, environment, security
// blobs, and terminal plumbing are inherited; the file descriptor table is
// copied (descriptors reference the same open files).
func (k *Kernel) Fork(parent *Task) *Task {
	parent.mu.Lock()
	child := &Task{
		k:           k,
		ppid:        parent.pid,
		creds:       parent.creds.Clone(),
		cwd:         parent.cwd,
		binary:      parent.binary,
		argv:        append([]string(nil), parent.argv...),
		env:         copyEnv(parent.env),
		blobs:       copyBlobs(parent.blobs),
		fds:         make(map[int]*FileDesc, len(parent.fds)),
		nextFD:      parent.nextFD,
		sigHandlers: make(map[int]func(int)),
		Stdout:      parent.Stdout,
		Stderr:      parent.Stderr,
		Stdin:       parent.Stdin,
		Asker:       parent.Asker,
	}
	for fd, f := range parent.fds {
		if f.CloseOnExec {
			// descriptors survive fork; CLOEXEC only matters at exec
			child.fds[fd] = f
			continue
		}
		child.fds[fd] = f
	}
	parent.mu.Unlock()

	k.mu.Lock()
	k.nextPID++
	child.pid = k.nextPID
	k.tasks[child.pid] = child
	k.mu.Unlock()
	return child
}

func copyEnv(env map[string]string) map[string]string {
	out := make(map[string]string, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func copyBlobs(blobs map[string]any) map[string]any {
	out := make(map[string]any, len(blobs))
	for k, v := range blobs {
		out[k] = v
	}
	return out
}

// Exit terminates the task with the given code and releases its resources.
func (k *Kernel) Exit(t *Task, code int) {
	t.mu.Lock()
	if t.exited {
		t.mu.Unlock()
		return
	}
	t.exited = true
	t.exitCode = code
	t.fds = make(map[int]*FileDesc)
	t.mu.Unlock()
	k.mu.Lock()
	delete(k.tasks, t.pid)
	k.mu.Unlock()
}

// Task returns the task with the given pid, or nil.
func (k *Kernel) Task(pid int) *Task {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.tasks[pid]
}

// Tasks returns a snapshot of all live tasks.
func (k *Kernel) Tasks() []*Task {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]*Task, 0, len(k.tasks))
	for _, t := range k.tasks {
		out = append(out, t)
	}
	return out
}

// Exec replaces the calling task's image with the program at path, applying
// setuid-bit elevation (the baseline's trust mechanism) and any LSM
// credential update (Protego's deferred setuid-on-exec). The program runs
// to completion; its return value is the task's exit code. Exec returns an
// error without running anything if the binary cannot be executed or the
// LSM vetoes (e.g. a delegated transition to a non-whitelisted command,
// which surfaces as EPERM at exec time exactly as described in §4.3).
func (k *Kernel) Exec(t *Task, path string, argv []string, env map[string]string) (code int, err error) {
	// The exit event is emitted when control transfers to the new image,
	// not when the program finishes: the program's own syscalls must not
	// nest inside the exec latency sample.
	tok := k.sysEnter("exec", t)
	fail := func(ferr error) (int, error) {
		k.Trace.SyscallExit(tok, ferr)
		return -1, ferr
	}
	clean := vfs.CleanPath(path, t.Cwd())
	creds := t.credsRef()
	ino, err := k.FS.Lookup(creds, clean)
	if err != nil {
		return fail(err)
	}
	if !ino.Mode.IsRegular() {
		return fail(errno.EACCES)
	}
	if err := vfs.CheckAccess(creds, ino, vfs.MayExec); err != nil {
		return fail(err)
	}
	prog := k.LookupBinary(clean)
	if prog == nil {
		return fail(errno.ENOEXEC)
	}
	if env == nil {
		env = copyEnv(t.Env())
	}
	req := &lsm.ExecRequest{
		Path:      clean,
		Argv:      argv,
		Env:       env,
		SetuidBit: ino.Mode.IsSetuid(),
		FileUID:   ino.UID,
	}
	update, err := k.LSM.ExecCheck(t, req)
	if err != nil {
		k.Auditf("exec denied: pid=%d uid=%d path=%s: %v", t.PID(), t.UID(), clean, err)
		return fail(err)
	}

	newCreds := creds.Clone()
	if ino.Mode.IsSetuid() {
		// The setuid *bit* (§3.1): the process executes as the
		// binary's owner regardless of who exec-ed it.
		newCreds.EUID = ino.UID
		newCreds.FUID = ino.UID
		newCreds.SUID = ino.UID
		newCreds.recomputeCaps()
	}
	if ino.Mode.IsSetgid() {
		newCreds.EGID = ino.GID
		newCreds.FGID = ino.GID
		newCreds.SGID = ino.GID
	}
	if update != nil {
		if update.UID != nil {
			newCreds.setAllUIDs(*update.UID)
			newCreds.recomputeCaps()
		}
		if update.GID != nil {
			newCreds.setAllGIDs(*update.GID)
		}
		switch {
		case update.Groups != nil:
			newCreds.Groups = append([]int(nil), update.Groups...)
		case update.DropGroups:
			newCreds.Groups = nil
		}
	}

	t.mu.Lock()
	t.creds = newCreds
	t.binary = clean
	t.argv = append([]string(nil), argv...)
	t.env = req.Env // possibly filtered by the LSM
	// Close-on-exec descriptors are closed, per POSIX; Protego marks the
	// shadow file handle CLOEXEC so it cannot be inherited (§4.4).
	for fd, f := range t.fds {
		if f.CloseOnExec {
			delete(t.fds, fd)
		}
	}
	t.mu.Unlock()

	k.Trace.SyscallExit(tok, nil)
	return prog(k, t), nil
}

// Spawn is the fork+exec+wait convenience used by shells, utilities, and
// tests: it runs path in a child of parent and returns the child's exit
// code. The child shares the parent's terminal.
func (k *Kernel) Spawn(parent *Task, path string, argv []string, env map[string]string) (int, error) {
	child := k.Fork(parent)
	code, err := k.Exec(child, path, argv, env)
	k.Exit(child, code)
	return code, err
}

// SpawnCapture runs path in a child with fresh stdout/stderr buffers and an
// optional prompt answerer, returning the exit code and captured output.
func (k *Kernel) SpawnCapture(parent *Task, path string, argv []string, env map[string]string, asker func(string) string) (code int, stdout, stderr string, err error) {
	child := k.Fork(parent)
	var out, errOut bytes.Buffer
	child.Stdout = &out
	child.Stderr = &errOut
	if asker != nil {
		child.Asker = asker
	}
	code, err = k.Exec(child, path, argv, env)
	k.Exit(child, code)
	return code, out.String(), errOut.String(), err
}

// denyErr converts an LSM deny into a concrete error.
func denyErr(err error, fallback errno.Errno) error {
	if err != nil {
		return err
	}
	return fallback
}
