package kernel

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"protego/internal/errno"
	"protego/internal/faultinject"
	"protego/internal/lsm"
	"protego/internal/netfilter"
	"protego/internal/netstack"
	"protego/internal/trace"
	"protego/internal/vfs"
)

// Mode selects which system the kernel models.
type Mode int

// Kernel modes.
const (
	// ModeLinux is the baseline: the setuid bit elevates at exec, the
	// 8 studied syscalls hard-require capabilities, policy lives in
	// trusted userspace binaries.
	ModeLinux Mode = iota
	// ModeProtego is the paper's system: setuid bits are cleared from
	// the studied binaries and the Protego LSM enforces the equivalent
	// policies in the kernel.
	ModeProtego
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeProtego {
		return "protego"
	}
	return "linux"
}

// Program is the entry point of a simulated binary. It runs synchronously
// in the context of the task (exec does not return; the program's return
// value is the process exit code).
type Program func(k *Kernel, t *Task) int

// IoctlHandler implements a device's ioctl surface. granted reports whether
// an LSM granted the (otherwise privileged) operation; base capability
// policy is the handler's responsibility.
type IoctlHandler func(t *Task, cmd uint32, arg any, granted bool) error

// taskShards is the number of pid-hashed shards in the task table. A
// power of two so the shard index is a mask; 16 keeps contention
// negligible for any realistic core count while the per-shard maps stay
// dense. PIDs are sequential, so masking the low bits round-robins
// fork/exit traffic evenly across shards.
const taskShards = 16

// taskShard is one slice of the task table with its own lock. Fork and
// exit write-lock only the shard owning the child's pid; Task and Tasks
// take read locks, so pid lookups never serialize behind process churn
// on other shards.
type taskShard struct {
	mu sync.RWMutex
	m  map[int]*Task
}

// Kernel ties together the substrates: VFS, network stack, netfilter, the
// LSM chain, the task table, and the binary registry.
//
// Concurrency model (see DESIGN.md): the task table is sharded by pid;
// the binary and device registries are copy-on-write snapshots (written
// only at boot by the world builder, read lock-free on every exec and
// ioctl); nextPID and the namespace flag are atomics. There is no global
// kernel lock, and no lock is ever held while calling into another
// subsystem, so there is no kernel-level lock ordering to violate.
type Kernel struct {
	Mode   Mode
	FS     *vfs.FS
	Net    *netstack.Stack
	Filter *netfilter.Table
	LSM    *lsm.Chain
	// Trace is the kernel's observability substrate: every syscall, LSM
	// decision, netfilter verdict, and audit line lands in its ring.
	Trace *trace.Tracer

	shards  [taskShards]taskShard
	nextPID atomic.Int64

	// regMu serializes the (rare, boot-time) registry writers; readers
	// load the current snapshot without any lock.
	regMu    sync.Mutex
	binaries atomic.Pointer[map[string]Program]
	devices  atomic.Pointer[map[string]IoctlHandler]

	unprivNS atomic.Bool

	// sysGate arms the TaskSyscall LSM hook inside the enter() prologue.
	// Off by default; the world builder flips it on when a seccomp module
	// joins the chain, so machines without one pay a single atomic load.
	sysGate atomic.Bool

	// faults is the optional fault-injection layer (nil in normal runs).
	// An atomic pointer so the sweep harness can install/replace it while
	// syscalls are in flight; checks read the snapshot lock-free.
	faults atomic.Pointer[faultinject.Injector]

	// exploitHook is this machine's armed exploit payload (nil in normal
	// runs; see exploit.go). Per-kernel — not a package global — so CVE
	// replays on snapshot clones never serialize or cross-arm. Clones
	// start unarmed.
	exploitHook atomic.Pointer[ExploitFunc]
}

// shardFor returns the task-table shard owning pid.
func (k *Kernel) shardFor(pid int) *taskShard {
	return &k.shards[uint(pid)&(taskShards-1)]
}

// New creates a kernel in the given mode with an empty file system and a
// network stack at hostIP. The netfilter table is installed as the stack's
// output filter.
func New(mode Mode, hostIP netstack.IP) *Kernel {
	k := &Kernel{
		Mode:   mode,
		FS:     vfs.New(),
		Net:    netstack.NewStack(hostIP),
		Filter: netfilter.NewTable(),
		LSM:    lsm.NewChain(),
		Trace:  trace.New(trace.DefaultCapacity),
	}
	for i := range k.shards {
		k.shards[i].m = make(map[int]*Task)
	}
	emptyBins := make(map[string]Program)
	k.binaries.Store(&emptyBins)
	emptyDevs := make(map[string]IoctlHandler)
	k.devices.Store(&emptyDevs)
	k.Net.SetFilter(k.Filter)
	k.LSM.SetTracer(k.Trace)
	k.Filter.SetTracer(k.Trace)
	k.registerDcacheCounters()
	return k
}

// registerDcacheCounters surfaces the VFS dentry-cache counters as
// fast-path counters in /proc/trace/stats; the FS owns the hot atomics,
// the tracer reads them lazily. Called at construction and again after
// Clone (the clone has its own FS and tracer).
func (k *Kernel) registerDcacheCounters() {
	fs := k.FS
	k.Trace.RegisterCounter("dcache.hit", func() uint64 { return fs.DcacheStats().Hits })
	k.Trace.RegisterCounter("dcache.miss", func() uint64 { return fs.DcacheStats().Misses })
	k.Trace.RegisterCounter("dcache.invalidate", func() uint64 { return fs.DcacheStats().Invalidates })
}

// SetFaultInjector installs (or, with nil, removes) the fault-injection
// layer and fans it out to the VFS and the netstack. The injector's trace
// output is routed onto the kernel's ring so injections interleave with
// the syscalls they perturb.
func (k *Kernel) SetFaultInjector(in *faultinject.Injector) {
	in.SetTracer(k.Trace)
	k.faults.Store(in)
	k.FS.SetFaultInjector(in)
	k.Net.SetFaultInjector(in)
}

// FaultInjector returns the installed fault injector, or nil.
func (k *Kernel) FaultInjector() *faultinject.Injector {
	return k.faults.Load()
}

// faultCheck registers a hit at a syscall-entry injection site, returning
// the injected error if one fired. Nil-injector safe and lock-free.
func (k *Kernel) faultCheck(site string) error {
	return k.faults.Load().Check(site)
}

// Auditf records a security-relevant event as a structured KindAudit record
// on the trace ring. Retention is bounded by the ring capacity
// (trace.DefaultCapacity events); older lines are overwritten, with the
// shortfall visible via AuditDropped.
func (k *Kernel) Auditf(format string, args ...any) {
	k.Trace.Audit(fmt.Sprintf(format, args...))
}

// AuditLog returns the retained security-audit lines, oldest first. The log
// is a filtered view of the trace ring, so it holds at most the ring
// capacity's worth of recent events.
func (k *Kernel) AuditLog() []string {
	evs := k.Trace.SnapshotKind(trace.KindAudit)
	out := make([]string, 0, len(evs))
	for _, ev := range evs {
		out = append(out, ev.Msg)
	}
	return out
}

// AuditDropped reports how many audit lines have aged out of the bounded
// log (emitted minus retained).
func (k *Kernel) AuditDropped() uint64 {
	total := k.Trace.EmittedKind(trace.KindAudit)
	retained := uint64(len(k.Trace.SnapshotKind(trace.KindAudit)))
	if retained >= total {
		return 0
	}
	return total - retained
}

// RegisterBinary installs a program at path in the binary registry. The
// corresponding inode must be created separately (by the world builder) —
// the registry is the simulation's stand-in for the executable's text.
// Registration publishes a fresh copy-on-write snapshot: it is safe while
// execs are in flight, and Exec's LookupBinary never takes a lock.
func (k *Kernel) RegisterBinary(path string, prog Program) {
	clean := vfs.CleanPath(path, "/")
	k.regMu.Lock()
	old := *k.binaries.Load()
	next := make(map[string]Program, len(old)+1)
	for p, fn := range old {
		next[p] = fn
	}
	next[clean] = prog
	k.binaries.Store(&next)
	k.regMu.Unlock()
}

// LookupBinary returns the program registered at path, or nil. Lock-free:
// it reads the current registry snapshot.
func (k *Kernel) LookupBinary(path string) Program {
	return (*k.binaries.Load())[vfs.CleanPath(path, "/")]
}

// RegisterDevice installs an ioctl handler for the device at path,
// publishing a fresh copy-on-write snapshot like RegisterBinary.
func (k *Kernel) RegisterDevice(path string, h IoctlHandler) {
	clean := vfs.CleanPath(path, "/")
	k.regMu.Lock()
	old := *k.devices.Load()
	next := make(map[string]IoctlHandler, len(old)+1)
	for p, fn := range old {
		next[p] = fn
	}
	next[clean] = h
	k.devices.Store(&next)
	k.regMu.Unlock()
}

// lookupDevice returns the ioctl handler for the (already cleaned) device
// path, or nil. Lock-free snapshot read, like LookupBinary.
func (k *Kernel) lookupDevice(clean string) IoctlHandler {
	return (*k.devices.Load())[clean]
}

// InitTask creates the first task (pid 1) running as root with the given
// binary name, cwd /.
func (k *Kernel) InitTask() *Task {
	t := &Task{
		k:           k,
		creds:       RootCreds(),
		cwd:         "/",
		binary:      "/sbin/init",
		argv:        []string{"/sbin/init"},
		env:         map[string]string{"PATH": "/bin:/sbin:/usr/bin:/usr/sbin"},
		blobs:       make(map[string]any),
		fds:         make(map[int]*FileDesc),
		sigHandlers: make(map[int]func(int)),
		Stdout:      &bytes.Buffer{},
		Stderr:      &bytes.Buffer{},
		Stdin:       &bytes.Buffer{},
	}
	t.pid = int(k.nextPID.Add(1))
	sh := k.shardFor(t.pid)
	sh.mu.Lock()
	sh.m[t.pid] = t
	sh.mu.Unlock()
	return t
}

// Fork clones the calling task: credentials, cwd, environment, security
// blobs, and terminal plumbing are inherited; the file descriptor table is
// copied (descriptors reference the same open files).
func (k *Kernel) Fork(parent *Task) *Task {
	parent.mu.Lock()
	child := &Task{
		k:           k,
		ppid:        parent.pid,
		creds:       parent.creds.Clone(),
		cwd:         parent.cwd,
		binary:      parent.binary,
		argv:        append([]string(nil), parent.argv...),
		env:         copyEnv(parent.env),
		blobs:       copyBlobs(parent.blobs),
		fds:         make(map[int]*FileDesc, len(parent.fds)),
		nextFD:      parent.nextFD,
		sigHandlers: make(map[int]func(int)),
		Stdout:      parent.Stdout,
		Stderr:      parent.Stderr,
		Stdin:       parent.Stdin,
		Asker:       parent.Asker,
	}
	for fd, f := range parent.fds {
		if f.CloseOnExec {
			// descriptors survive fork; CLOEXEC only matters at exec
			child.fds[fd] = f
			continue
		}
		child.fds[fd] = f
	}
	// Like seccomp filters across fork(2): the syscall-entry slot is
	// inherited (boxes are immutable, so the pointer is shared).
	child.sysFilter.Store(parent.sysFilter.Load())
	parent.mu.Unlock()

	child.pid = int(k.nextPID.Add(1))
	sh := k.shardFor(child.pid)
	sh.mu.Lock()
	sh.m[child.pid] = child
	sh.mu.Unlock()
	return child
}

func copyEnv(env map[string]string) map[string]string {
	out := make(map[string]string, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func copyBlobs(blobs map[string]any) map[string]any {
	out := make(map[string]any, len(blobs))
	for k, v := range blobs {
		out[k] = v
	}
	return out
}

// Exit terminates the task with the given code and releases its resources.
func (k *Kernel) Exit(t *Task, code int) {
	t.mu.Lock()
	if t.exited {
		t.mu.Unlock()
		return
	}
	t.exited = true
	t.exitCode = code
	t.fds = make(map[int]*FileDesc)
	t.mu.Unlock()
	sh := k.shardFor(t.pid)
	sh.mu.Lock()
	delete(sh.m, t.pid)
	sh.mu.Unlock()
}

// Task returns the task with the given pid, or nil. Read-locks only the
// shard owning pid.
func (k *Kernel) Task(pid int) *Task {
	sh := k.shardFor(pid)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.m[pid]
}

// Tasks returns a snapshot of all live tasks. The snapshot is assembled
// shard by shard: it is consistent per shard but not across shards (a
// fork racing with the walk may or may not be included), which matches
// what /proc readers see on a real kernel.
func (k *Kernel) Tasks() []*Task {
	var out []*Task
	for i := range k.shards {
		sh := &k.shards[i]
		sh.mu.RLock()
		for _, t := range sh.m {
			out = append(out, t)
		}
		sh.mu.RUnlock()
	}
	return out
}

// TaskCount returns the number of live tasks.
func (k *Kernel) TaskCount() int {
	n := 0
	for i := range k.shards {
		sh := &k.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Exec replaces the calling task's image with the program at path, applying
// setuid-bit elevation (the baseline's trust mechanism) and any LSM
// credential update (Protego's deferred setuid-on-exec). The program runs
// to completion; its return value is the task's exit code. Exec returns an
// error without running anything if the binary cannot be executed or the
// LSM vetoes (e.g. a delegated transition to a non-whitelisted command,
// which surfaces as EPERM at exec time exactly as described in §4.3).
func (k *Kernel) Exec(t *Task, path string, argv []string, env map[string]string) (code int, err error) {
	// The exit event is emitted when control transfers to the new image,
	// not when the program finishes: the program's own syscalls must not
	// nest inside the exec latency sample.
	tok, perr := k.enter(t, SysExec)
	fail := func(ferr error) (int, error) {
		k.Trace.SyscallExit(tok, ferr)
		return -1, ferr
	}
	if perr != nil {
		return fail(perr)
	}
	clean := vfs.CleanPath(path, t.Cwd())
	creds := t.credsRef()
	ino, err := k.FS.Lookup(creds, clean)
	if err != nil {
		return fail(err)
	}
	if !ino.Mode.IsRegular() {
		return fail(errno.EACCES)
	}
	if err := vfs.CheckAccess(creds, ino, vfs.MayExec); err != nil {
		return fail(err)
	}
	prog := k.LookupBinary(clean)
	if prog == nil {
		return fail(errno.ENOEXEC)
	}
	if env == nil {
		env = copyEnv(t.Env())
	}
	if len(argv) == 0 {
		// Like the Linux ELF loader, guarantee argv[0]: utilities index
		// t.Argv() unconditionally and an empty vector is a caller bug,
		// not something every program should have to defend against.
		argv = []string{clean}
	}
	req := &lsm.ExecRequest{
		Path:      clean,
		Argv:      argv,
		Env:       env,
		SetuidBit: ino.Mode.IsSetuid(),
		FileUID:   ino.UID,
	}
	update, err := k.LSM.ExecCheck(t, req)
	if err != nil {
		k.Auditf("exec denied: pid=%d uid=%d path=%s: %v", t.PID(), t.UID(), clean, err)
		return fail(err)
	}

	newCreds := creds.Clone()
	if ino.Mode.IsSetuid() {
		// The setuid *bit* (§3.1): the process executes as the
		// binary's owner regardless of who exec-ed it.
		newCreds.EUID = ino.UID
		newCreds.FUID = ino.UID
		newCreds.SUID = ino.UID
		newCreds.recomputeCaps()
	}
	if ino.Mode.IsSetgid() {
		newCreds.EGID = ino.GID
		newCreds.FGID = ino.GID
		newCreds.SGID = ino.GID
	}
	if update != nil {
		if update.UID != nil {
			newCreds.setAllUIDs(*update.UID)
			newCreds.recomputeCaps()
		}
		if update.GID != nil {
			newCreds.setAllGIDs(*update.GID)
		}
		switch {
		case update.Groups != nil:
			newCreds.Groups = append([]int(nil), update.Groups...)
		case update.DropGroups:
			newCreds.Groups = nil
		}
	}

	t.mu.Lock()
	t.creds = newCreds
	t.binary = clean
	t.argv = append([]string(nil), argv...)
	t.env = req.Env // possibly filtered by the LSM
	// Close-on-exec descriptors are closed, per POSIX; Protego marks the
	// shadow file handle CLOEXEC so it cannot be inherited (§4.4).
	for fd, f := range t.fds {
		if f.CloseOnExec {
			delete(t.fds, fd)
		}
	}
	t.mu.Unlock()

	k.Trace.SyscallExit(tok, nil)
	return prog(k, t), nil
}

// SpawnOpts configures Spawn. The zero value runs the child on the
// parent's terminal with the parent's prompt answerer.
type SpawnOpts struct {
	// Capture gives the child fresh stdout/stderr buffers whose contents
	// are returned in SpawnResult instead of reaching the parent's
	// terminal.
	Capture bool
	// Asker, when non-nil, answers the child's password prompts.
	Asker func(string) string
}

// SpawnResult is the outcome of a Spawn: the child's exit code and, when
// SpawnOpts.Capture was set, its terminal output.
type SpawnResult struct {
	Code   int
	Stdout string
	Stderr string
}

// Spawn is the fork+exec+wait convenience used by shells, utilities, and
// tests: it runs path in a child of parent and returns the child's exit
// code plus (with opts.Capture) its captured output.
func (k *Kernel) Spawn(parent *Task, path string, argv []string, env map[string]string, opts SpawnOpts) (SpawnResult, error) {
	child := k.Fork(parent)
	var out, errOut *bytes.Buffer
	if opts.Capture {
		out, errOut = &bytes.Buffer{}, &bytes.Buffer{}
		child.Stdout = out
		child.Stderr = errOut
	}
	if opts.Asker != nil {
		child.Asker = opts.Asker
	}
	code, err := k.Exec(child, path, argv, env)
	k.Exit(child, code)
	res := SpawnResult{Code: code}
	if opts.Capture {
		res.Stdout = out.String()
		res.Stderr = errOut.String()
	}
	return res, err
}

// denyErr converts an LSM deny into a concrete error.
func denyErr(err error, fallback errno.Errno) error {
	if err != nil {
		return err
	}
	return fallback
}
