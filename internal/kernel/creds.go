// Package kernel implements the simulated operating system kernel at the
// heart of the Protego reproduction: tasks with full Unix credentials and
// Linux-style capability sets, the system call layer (file system, mount,
// network, identity, exec), the /proc policy-configuration interface, and
// the LSM mediation points. Two kernel "builds" share this code: the
// baseline (setuid bits honored, policies enforced in userspace, AppArmor
// confinement) and Protego (setuid bits absent, policies enforced here via
// the Protego LSM).
package kernel

import (
	"fmt"

	"protego/internal/caps"
)

// Credentials is a task's subjective security context, following the Linux
// cred struct: real, effective, saved, and filesystem user/group ids, the
// supplementary groups, and the capability sets.
type Credentials struct {
	RUID, EUID, SUID, FUID int
	RGID, EGID, SGID, FGID int
	Groups                 []int

	Effective   caps.Set
	Permitted   caps.Set
	Inheritable caps.Set
}

// RootCreds returns the credentials of a root task: uid/gid 0 and the full
// capability set, as Linux grants by default (§3.2: "By default, Linux
// gives all capabilities to a process running as root").
func RootCreds() *Credentials {
	full := caps.Full()
	return &Credentials{
		Effective: full,
		Permitted: full,
	}
}

// UserCreds returns the credentials of an ordinary user task with no
// capabilities.
func UserCreds(uid, gid int, groups ...int) *Credentials {
	return &Credentials{
		RUID: uid, EUID: uid, SUID: uid, FUID: uid,
		RGID: gid, EGID: gid, SGID: gid, FGID: gid,
		Groups: append([]int(nil), groups...),
	}
}

// Clone returns a deep copy of the credentials.
func (c *Credentials) Clone() *Credentials {
	out := *c
	out.Groups = append([]int(nil), c.Groups...)
	return &out
}

// FSUID implements vfs.Cred.
func (c *Credentials) FSUID() int { return c.FUID }

// FSGID implements vfs.Cred.
func (c *Credentials) FSGID() int { return c.FGID }

// InGroup implements vfs.Cred.
func (c *Credentials) InGroup(gid int) bool {
	if gid == c.EGID || gid == c.FGID {
		return true
	}
	for _, g := range c.Groups {
		if g == gid {
			return true
		}
	}
	return false
}

// Capable implements vfs.Cred: membership of cap in the effective set.
func (c *Credentials) Capable(cp caps.Cap) bool { return c.Effective.Has(cp) }

// IsRoot reports whether the effective uid is 0.
func (c *Credentials) IsRoot() bool { return c.EUID == 0 }

// setAllUIDs sets every uid field (the effect of a privileged setuid).
func (c *Credentials) setAllUIDs(uid int) {
	c.RUID, c.EUID, c.SUID, c.FUID = uid, uid, uid, uid
}

// setAllGIDs sets every gid field.
func (c *Credentials) setAllGIDs(gid int) {
	c.RGID, c.EGID, c.SGID, c.FGID = gid, gid, gid, gid
}

// recomputeCaps applies the Linux rule that transitioning the effective uid
// away from 0 drops the effective capability set, and transitioning to 0
// raises it to the full set.
func (c *Credentials) recomputeCaps() {
	if c.EUID == 0 {
		c.Effective = caps.Full()
		c.Permitted = caps.Full()
	} else if c.RUID != 0 && c.SUID != 0 {
		c.Effective = caps.Empty
		c.Permitted = caps.Empty
	} else {
		// euid != 0 but some identity is still root: effective caps
		// are dropped but remain permitted (re-raisable), as Linux
		// does for temporarily-deprivileged setuid daemons.
		c.Effective = caps.Empty
	}
}

// String summarizes the credentials for logs and the simulator shell.
func (c *Credentials) String() string {
	return fmt.Sprintf("uid=%d(%d,%d) gid=%d(%d,%d) groups=%v caps=%s",
		c.RUID, c.EUID, c.SUID, c.RGID, c.EGID, c.SGID, c.Groups, c.Effective)
}
