package kernel

import (
	"fmt"
	"sync"
	"testing"

	"protego/internal/netstack"
)

// TestTaskTableSharding exercises the sharded task table: concurrent
// fork/exit churn against concurrent pid lookups and snapshots, plus
// registry writes racing lock-free lookups. PIDs must stay unique and no
// task may be lost.
func TestTaskTableSharding(t *testing.T) {
	k := New(ModeProtego, netstack.IPv4(10, 0, 0, 1))
	init := k.InitTask()
	const (
		workers = 8
		iters   = 200
	)
	pids := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				child := k.Fork(init)
				pids[w] = append(pids[w], child.PID())
				if got := k.Task(child.PID()); got != child {
					t.Errorf("Task(%d) = %p, want %p", child.PID(), got, child)
					return
				}
				k.Tasks()
				if i%16 == 0 {
					// Registry writes race the lock-free reads.
					path := fmt.Sprintf("/bin/conc%d-%d", w, i)
					k.RegisterBinary(path, func(*Kernel, *Task) int { return 0 })
					if k.LookupBinary(path) == nil {
						t.Errorf("LookupBinary(%s) lost a registration", path)
						return
					}
				}
				k.SetUnprivNamespaces(i%2 == 0)
				k.UnprivNamespaces()
				if i%2 == 0 {
					k.Exit(child, 0)
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	seen := make(map[int]bool)
	for _, list := range pids {
		for _, pid := range list {
			if seen[pid] {
				t.Fatalf("pid %d allocated twice", pid)
			}
			seen[pid] = true
		}
	}
	// Odd iterations left their child alive: half the forks per worker.
	want := 1 + workers*iters/2 // init + survivors
	if got := k.TaskCount(); got != want {
		t.Fatalf("TaskCount = %d, want %d", got, want)
	}
	for _, task := range k.Tasks() {
		if got := k.Task(task.PID()); got != task {
			t.Fatalf("snapshot task %d not resolvable", task.PID())
		}
	}
}
