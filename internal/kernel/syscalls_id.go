package kernel

import (
	"protego/internal/caps"
	"protego/internal/errno"
	"protego/internal/lsm"
)

// The get*id family cannot fail on Linux and returns no error here either:
// a seccomp denial is recorded on the trace (and in the profile stats) but
// the id is still returned, matching how an errno-returning getuid would be
// read by callers that never check it.

// Getuid returns the real uid.
func (k *Kernel) Getuid(t *Task) int {
	tok, err := k.enter(t, SysGetuid)
	k.Trace.SyscallExit(tok, err)
	return t.UID()
}

// Geteuid returns the effective uid.
func (k *Kernel) Geteuid(t *Task) int {
	tok, err := k.enter(t, SysGeteuid)
	k.Trace.SyscallExit(tok, err)
	return t.EUID()
}

// Getgid returns the real gid.
func (k *Kernel) Getgid(t *Task) int {
	tok, err := k.enter(t, SysGetgid)
	k.Trace.SyscallExit(tok, err)
	return t.GID()
}

// Getegid returns the effective gid.
func (k *Kernel) Getegid(t *Task) int {
	tok, err := k.enter(t, SysGetegid)
	k.Trace.SyscallExit(tok, err)
	return t.EGID()
}

// Getpid returns the process id; it is the "null syscall" used by the
// lmbench-style microbenchmark (and therefore the purest measure of the
// trace layer's per-syscall emission cost).
func (k *Kernel) Getpid(t *Task) int {
	tok, err := k.enter(t, SysGetpid)
	pid := t.PID()
	k.Trace.SyscallExit(tok, err)
	return pid
}

// Setuid implements setuid(2) with the Protego extension. Base policy is
// Linux's: CAP_SETUID sets all three ids; otherwise the target must equal
// the real or saved uid. Transitions outside base policy — the lateral
// moves of §4.3 — are referred to the LSM, which may Grant (the kernel
// performs the change immediately), Deny (EPERM), or DeferToExec (success
// is reported but the change is applied at the next exec once the target
// binary is validated against the delegation rules).
func (k *Kernel) Setuid(t *Task, uid int) (err error) {
	tok, err := k.enter(t, SysSetuid)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	if uid < 0 {
		return errno.EINVAL
	}
	creds := t.credsRef()

	if creds.Capable(caps.CAP_SETUID) {
		t.mu.Lock()
		t.creds = creds.Clone()
		t.creds.setAllUIDs(uid)
		t.creds.recomputeCaps()
		t.mu.Unlock()
		return nil
	}
	// Unprivileged: may move the effective uid between real and saved.
	if uid == creds.RUID || uid == creds.SUID {
		t.mu.Lock()
		t.creds = creds.Clone()
		t.creds.EUID = uid
		t.creds.FUID = uid
		t.mu.Unlock()
		return nil
	}
	dec, err := k.LSM.SetuidCheck(t, uid)
	switch dec {
	case lsm.Grant:
		// Restrict inheritance through granted transitions (§4.3):
		// the caller's supplementary groups do not carry over; the
		// kernel establishes the target's groups (the deprivileged
		// task could not do so itself afterwards).
		groups, _ := k.LSM.ResolveGroups(uid)
		t.mu.Lock()
		t.creds = creds.Clone()
		t.creds.setAllUIDs(uid)
		t.creds.Groups = append([]int(nil), groups...)
		t.creds.recomputeCaps()
		t.mu.Unlock()
		return nil
	case lsm.DeferToExec:
		// Success is reported to the caller; the credential change is
		// pending and will be validated (and applied) at exec.
		return nil
	default:
		k.Auditf("setuid denied: pid=%d uid=%d target=%d", t.PID(), t.UID(), uid)
		return denyErr(err, errno.EPERM)
	}
}

// Seteuid implements seteuid(2): unprivileged tasks may set the effective
// uid to any of the real, effective, or saved uids.
func (k *Kernel) Seteuid(t *Task, uid int) (err error) {
	tok, err := k.enter(t, SysSeteuid)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	creds := t.credsRef()
	if creds.Capable(caps.CAP_SETUID) || uid == creds.RUID || uid == creds.EUID || uid == creds.SUID {
		t.mu.Lock()
		t.creds = creds.Clone()
		t.creds.EUID = uid
		t.creds.FUID = uid
		t.creds.recomputeCaps()
		t.mu.Unlock()
		return nil
	}
	return errno.EPERM
}

// Setgid implements setgid(2) with the Protego extension for
// password-protected groups (newgrp, §4.3).
func (k *Kernel) Setgid(t *Task, gid int) (err error) {
	tok, err := k.enter(t, SysSetgid)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	if gid < 0 {
		return errno.EINVAL
	}
	creds := t.credsRef()
	if creds.Capable(caps.CAP_SETGID) {
		t.mu.Lock()
		t.creds = creds.Clone()
		t.creds.setAllGIDs(gid)
		t.mu.Unlock()
		return nil
	}
	if gid == creds.RGID || gid == creds.SGID || creds.InGroup(gid) {
		t.mu.Lock()
		t.creds = creds.Clone()
		t.creds.EGID = gid
		t.creds.FGID = gid
		t.mu.Unlock()
		return nil
	}
	dec, err := k.LSM.SetgidCheck(t, gid)
	switch dec {
	case lsm.Grant:
		t.mu.Lock()
		t.creds = creds.Clone()
		t.creds.setAllGIDs(gid)
		t.mu.Unlock()
		return nil
	case lsm.DeferToExec:
		return nil
	default:
		k.Auditf("setgid denied: pid=%d uid=%d target=%d", t.PID(), t.UID(), gid)
		return denyErr(err, errno.EPERM)
	}
}

// Setgroups replaces the supplementary groups; requires CAP_SETGID.
func (k *Kernel) Setgroups(t *Task, groups []int) (err error) {
	tok, err := k.enter(t, SysSetgroups)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	creds := t.credsRef()
	if !creds.Capable(caps.CAP_SETGID) {
		return errno.EPERM
	}
	t.mu.Lock()
	t.creds = creds.Clone()
	t.creds.Groups = append([]int(nil), groups...)
	t.mu.Unlock()
	return nil
}
