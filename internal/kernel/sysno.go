package kernel

import (
	"protego/internal/errno"
	"protego/internal/faultinject"
	"protego/internal/lsm"
	"protego/internal/trace"
)

// Sysno is the kernel's syscall catalog number. Every public syscall
// method on Kernel dispatches through the enter() prologue keyed by its
// Sysno, which is also the bit position in a seccomp-style allowlist
// bitmask. Names match the trace names the methods have always emitted,
// so histograms and tooling keyed on them are unaffected by the catalog.
type Sysno uint8

// The syscall catalog. SysInvalid is deliberately zero so an unset Sysno
// can never alias a real syscall.
const (
	SysInvalid Sysno = iota

	// File system.
	SysOpen
	SysRead
	SysWrite
	SysClose
	SysFcntl
	SysStat
	SysAccess
	SysReadFile
	SysWriteFile
	SysAppendFile
	SysMkdir
	SysUnlink
	SysRename
	SysChmod
	SysChown
	SysReadDir
	SysChdir

	// Identity and credentials.
	SysGetuid
	SysGeteuid
	SysGetgid
	SysGetegid
	SysGetpid
	SysSetuid
	SysSeteuid
	SysSetgid
	SysSetgroups

	// Mounts.
	SysMount
	SysUmount

	// Network.
	SysSocket
	SysBind
	SysListen
	SysAccept
	SysConnect
	SysSend
	SysRecv
	SysSendTo
	SysRecvFrom
	SysCloseSock
	SysAddRoute
	SysDelRoute

	// Devices, signals, processes.
	SysIoctl
	SysSigAction
	SysKill
	SysExec

	sysnoCount
)

// NumSysno is the catalog size, including the SysInvalid slot; seccomp
// bitmask filters are sized by it.
const NumSysno = int(sysnoCount)

// sysNames are the catalog's trace names, indexed by Sysno.
var sysNames = [sysnoCount]string{
	SysInvalid:    "invalid",
	SysOpen:       "open",
	SysRead:       "read",
	SysWrite:      "write",
	SysClose:      "close",
	SysFcntl:      "fcntl",
	SysStat:       "stat",
	SysAccess:     "access",
	SysReadFile:   "readfile",
	SysWriteFile:  "writefile",
	SysAppendFile: "appendfile",
	SysMkdir:      "mkdir",
	SysUnlink:     "unlink",
	SysRename:     "rename",
	SysChmod:      "chmod",
	SysChown:      "chown",
	SysReadDir:    "readdir",
	SysChdir:      "chdir",
	SysGetuid:     "getuid",
	SysGeteuid:    "geteuid",
	SysGetgid:     "getgid",
	SysGetegid:    "getegid",
	SysGetpid:     "getpid",
	SysSetuid:     "setuid",
	SysSeteuid:    "seteuid",
	SysSetgid:     "setgid",
	SysSetgroups:  "setgroups",
	SysMount:      "mount",
	SysUmount:     "umount",
	SysSocket:     "socket",
	SysBind:       "bind",
	SysListen:     "listen",
	SysAccept:     "accept",
	SysConnect:    "connect",
	SysSend:       "send",
	SysRecv:       "recv",
	SysSendTo:     "sendto",
	SysRecvFrom:   "recvfrom",
	SysCloseSock:  "closesock",
	SysAddRoute:   "addroute",
	SysDelRoute:   "delroute",
	SysIoctl:      "ioctl",
	SysSigAction:  "sigaction",
	SysKill:       "kill",
	SysExec:       "exec",
}

// String returns the syscall's trace name.
func (s Sysno) String() string {
	if s >= sysnoCount {
		return "invalid"
	}
	return sysNames[s]
}

// Valid reports whether s names a real catalog entry.
func (s Sysno) Valid() bool { return s > SysInvalid && s < sysnoCount }

// sysByName is the reverse catalog, built once at init.
var sysByName = func() map[string]Sysno {
	m := make(map[string]Sysno, NumSysno)
	for s := SysInvalid + 1; s < sysnoCount; s++ {
		m[sysNames[s]] = s
	}
	return m
}()

// FromName resolves a trace name back to its catalog number.
func FromName(name string) (Sysno, bool) {
	s, ok := sysByName[name]
	return s, ok
}

// Sysnos returns every real catalog entry, in catalog order.
func Sysnos() []Sysno {
	out := make([]Sysno, 0, NumSysno-1)
	for s := SysInvalid + 1; s < sysnoCount; s++ {
		out = append(out, s)
	}
	return out
}

// sysFaultSites maps a Sysno to its syscall-entry fault-injection site.
// Only the sites the fault sweep has always covered exist; an empty entry
// means the syscall has no entry-point injection site. The table IS the
// prologue's fault behavior, so the per-method faultCheck boilerplate
// could fold into enter() without changing the sweep's expectations.
var sysFaultSites = [sysnoCount]string{
	SysOpen:      faultinject.SiteSysOpen,
	SysRead:      faultinject.SiteSysRead,
	SysWrite:     faultinject.SiteSysWrite,
	SysReadFile:  faultinject.SiteSysReadFile,
	SysWriteFile: faultinject.SiteSysWriteFile,
	SysMount:     faultinject.SiteSysMount,
	SysUmount:    faultinject.SiteSysUmount,
	SysExec:      faultinject.SiteSysExec,
	SysSocket:    faultinject.SiteSysSocket,
	SysBind:      faultinject.SiteSysBind,
	SysSetuid:    faultinject.SiteSysSetuid,
}

// enter is the single syscall-entry prologue: every public syscall method
// dispatches through it. It (1) begins the trace sample, (2) consults the
// TaskSyscall LSM hook when the syscall gate is armed — a Deny fails the
// call closed with ENOSYS before any syscall work happens — and (3)
// registers the entry-point fault-injection site. The returned token must
// reach Trace.SyscallExit on every return path (methods defer it); a
// non-nil error means the syscall body must not run.
//
// With the gate unarmed (no seccomp module installed — every machine
// until the world builder opts in) the added cost over the old hand-
// rolled prologues is one atomic load.
func (k *Kernel) enter(t *Task, sn Sysno) (trace.SyscallToken, error) {
	tok := k.sysEnter(sn.String(), t)
	if k.sysGate.Load() && t != nil {
		dec, err := k.LSM.TaskSyscall(t, int(sn), sn.String())
		if dec == lsm.Deny {
			k.Auditf("syscall denied by seccomp: pid=%d uid=%d sys=%s bin=%s",
				t.PID(), t.UID(), sn, t.BinaryPath())
			return tok, denyErr(err, errno.ENOSYS)
		}
	}
	if site := sysFaultSites[sn]; site != "" {
		if err := k.faultCheck(site); err != nil {
			return tok, err
		}
	}
	return tok, nil
}

// SetSyscallGate arms (or disarms) the TaskSyscall hook in the enter()
// prologue. The world builder arms it when a seccomp module joins the LSM
// chain; unarmed, syscalls skip the hook entirely.
func (k *Kernel) SetSyscallGate(on bool) { k.sysGate.Store(on) }

// SyscallGate reports whether the TaskSyscall hook is armed.
func (k *Kernel) SyscallGate() bool { return k.sysGate.Load() }
