package kernel

import (
	"testing"

	"protego/internal/errno"
	"protego/internal/faultinject"
	"protego/internal/vfs"
)

// mountableKernel extends the test kernel with a block device and a mount
// point so Mount can succeed once the injected fault clears.
func mountableKernel(t *testing.T) *Kernel {
	t.Helper()
	k := testKernel(t)
	if _, err := k.FS.Mkdir(vfs.RootCred, "/mnt", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.Mknod(vfs.RootCred, "/dev/cdrom", vfs.BlockDevice, 11, 0, 0o660, 0, 0); err != nil {
		t.Fatal(err)
	}
	return k
}

// Every injectable errno on the hot file and mount paths must surface
// unchanged through the unified errno helpers, and the operation must
// succeed once the fault clears — the failure may not corrupt state.
func TestSyscallFaultErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		site string
		errs []errno.Errno
		op   func(k *Kernel, tk *Task) error
	}{
		{"open", faultinject.SiteSysOpen, []errno.Errno{errno.ENOMEM, errno.EIO},
			func(k *Kernel, tk *Task) error {
				fd, err := k.Open(tk, "/etc/motd", O_RDONLY)
				if err == nil {
					_ = k.CloseFD(tk, fd)
				}
				return err
			}},
		{"read_file", faultinject.SiteSysReadFile, []errno.Errno{errno.ENOMEM, errno.EIO},
			func(k *Kernel, tk *Task) error {
				_, err := k.ReadFile(tk, "/etc/motd")
				return err
			}},
		{"vfs_lookup", faultinject.SiteVFSLookup, []errno.Errno{errno.ENOMEM, errno.EIO},
			func(k *Kernel, tk *Task) error {
				_, err := k.ReadFile(tk, "/etc/motd")
				return err
			}},
		{"vfs_read_file", faultinject.SiteVFSReadFile, []errno.Errno{errno.ENOMEM, errno.EIO},
			func(k *Kernel, tk *Task) error {
				_, err := k.FS.ReadFile(vfs.RootCred, "/etc/motd")
				return err
			}},
		{"mount", faultinject.SiteSysMount, []errno.Errno{errno.ENOMEM, errno.EIO, errno.EBUSY},
			func(k *Kernel, tk *Task) error {
				err := k.Mount(tk, "/dev/cdrom", "/mnt", "iso9660", []string{"ro"})
				if err == nil {
					_ = k.Umount(tk, "/mnt")
				}
				return err
			}},
	}
	for _, c := range cases {
		for _, e := range c.errs {
			t.Run(c.name+"/"+e.Name(), func(t *testing.T) {
				k := mountableKernel(t)
				root := k.InitTask()
				in := faultinject.New(faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
					{Site: c.site, Action: faultinject.ActErr, Err: e, Nth: 1},
				}})
				k.SetFaultInjector(in)
				err := c.op(k, root)
				if err == nil {
					t.Fatalf("expected injected %s, got success", e.Name())
				}
				if !errno.Is(err, e) {
					t.Fatalf("error %v does not unwrap to %s", err, e.Name())
				}
				if errno.Of(err) != e {
					t.Fatalf("errno.Of(%v) = %v, want %v", err, errno.Of(err), e)
				}
				if in.Injections() != 1 {
					t.Fatalf("injections = %d, want 1", in.Injections())
				}
				// The nth=1 rule is spent: the same operation must now
				// succeed — a failed syscall may not poison kernel state.
				if err := c.op(k, root); err != nil {
					t.Fatalf("operation still failing after fault cleared: %v", err)
				}
			})
		}
	}
}
