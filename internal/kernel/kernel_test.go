package kernel

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"protego/internal/caps"
	"protego/internal/errno"
	"protego/internal/lsm"
	"protego/internal/netstack"
	"protego/internal/vfs"
)

func testKernel(t *testing.T) *Kernel {
	t.Helper()
	k := New(ModeLinux, netstack.IPv4(10, 0, 0, 2))
	for _, dir := range []string{"/bin", "/etc", "/dev", "/home"} {
		if _, err := k.FS.Mkdir(vfs.RootCred, dir, 0o755, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k.FS.Mkdir(vfs.RootCred, "/tmp", 0o777|vfs.ModeSticky, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.FS.WriteFile(vfs.RootCred, "/etc/motd", []byte("hello world"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	return k
}

func userTask(k *Kernel, uid, gid int) *Task {
	init := k.InitTask()
	t := k.Fork(init)
	t.SetUserCreds(UserCreds(uid, gid))
	return t
}

// --- credentials ---

func TestRootCredsHaveAllCaps(t *testing.T) {
	c := RootCreds()
	if !c.Capable(caps.CAP_SYS_ADMIN) || !c.Capable(caps.CAP_NET_RAW) {
		t.Fatal("root must hold all capabilities")
	}
	if !c.IsRoot() {
		t.Fatal("euid should be 0")
	}
}

func TestUserCredsHaveNoCaps(t *testing.T) {
	c := UserCreds(1000, 100, 10, 20)
	for cp := caps.Cap(0); cp < caps.NumCaps; cp++ {
		if c.Capable(cp) {
			t.Fatalf("user holds %v", cp)
		}
	}
	if !c.InGroup(10) || !c.InGroup(20) || !c.InGroup(100) {
		t.Fatal("groups wrong")
	}
	if c.InGroup(55) {
		t.Fatal("phantom group")
	}
}

func TestCredsCloneIsDeep(t *testing.T) {
	a := UserCreds(1000, 100, 10)
	b := a.Clone()
	b.Groups[0] = 99
	b.EUID = 0
	if a.Groups[0] != 10 || a.EUID != 1000 {
		t.Fatal("clone aliased")
	}
}

func TestRecomputeCapsProperty(t *testing.T) {
	// Property: after setting all uids, caps are full iff uid is 0.
	f := func(uid uint16) bool {
		c := RootCreds()
		c.setAllUIDs(int(uid))
		c.recomputeCaps()
		if uid == 0 {
			return c.Effective == caps.Full()
		}
		return c.Effective.IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// --- identity syscalls ---

func TestSetuidPrivileged(t *testing.T) {
	k := testKernel(t)
	root := k.InitTask()
	task := k.Fork(root)
	if err := k.Setuid(task, 1000); err != nil {
		t.Fatal(err)
	}
	c := task.Creds()
	if c.RUID != 1000 || c.EUID != 1000 || c.SUID != 1000 {
		t.Fatalf("creds: %+v", c)
	}
	if !c.Effective.IsEmpty() {
		t.Fatal("caps survived transition away from root")
	}
	// And there is no way back.
	if err := k.Setuid(task, 0); err != errno.EPERM {
		t.Fatalf("return to root: %v", err)
	}
}

func TestSetuidUnprivilegedSelf(t *testing.T) {
	k := testKernel(t)
	task := userTask(k, 1000, 100)
	if err := k.Setuid(task, 1000); err != nil {
		t.Fatal(err)
	}
	if err := k.Setuid(task, 1001); err != errno.EPERM {
		t.Fatalf("lateral without policy: %v", err)
	}
}

func TestSeteuidSwapsWithinSaved(t *testing.T) {
	k := testKernel(t)
	root := k.InitTask()
	task := k.Fork(root)
	// Simulate a setuid binary that got euid 1000 saved 0.
	task.SetUserCreds(&Credentials{RUID: 1000, EUID: 0, SUID: 0, FUID: 0, Effective: caps.Full(), Permitted: caps.Full()})
	if err := k.Seteuid(task, 1000); err != nil {
		t.Fatal(err)
	}
	if task.EUID() != 1000 {
		t.Fatal("euid not dropped")
	}
	// Saved uid 0 permits re-raising.
	if err := k.Seteuid(task, 0); err != nil {
		t.Fatalf("re-raise via saved uid: %v", err)
	}
}

func TestSetgidSemantics(t *testing.T) {
	k := testKernel(t)
	task := userTask(k, 1000, 100)
	task.SetUserCreds(UserCreds(1000, 100, 20))
	if err := k.Setgid(task, 20); err != nil {
		t.Fatalf("member setgid: %v", err)
	}
	if task.EGID() != 20 {
		t.Fatal("egid unchanged")
	}
	if err := k.Setgid(task, 999); err != errno.EPERM {
		t.Fatalf("non-member setgid: %v", err)
	}
}

func TestSetgroupsRequiresCap(t *testing.T) {
	k := testKernel(t)
	task := userTask(k, 1000, 100)
	if err := k.Setgroups(task, []int{1, 2}); err != errno.EPERM {
		t.Fatalf("unprivileged setgroups: %v", err)
	}
	root := k.InitTask()
	if err := k.Setgroups(root, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
}

// --- LSM-mediated setuid ---

// fakeLSM scripts hook decisions for kernel tests.
type fakeLSM struct {
	lsm.Base
	setuidDec  lsm.Decision
	execUpdate *lsm.CredUpdate
	execErr    error
}

func (f *fakeLSM) Name() string { return "fake" }
func (f *fakeLSM) SetuidCheck(lsm.Task, int) (lsm.Decision, error) {
	return f.setuidDec, nil
}
func (f *fakeLSM) ExecCheck(t lsm.Task, req *lsm.ExecRequest) (*lsm.CredUpdate, error) {
	return f.execUpdate, f.execErr
}

func TestSetuidLSMGrant(t *testing.T) {
	k := testKernel(t)
	k.LSM.Register(&fakeLSM{setuidDec: lsm.Grant})
	task := userTask(k, 1000, 100)
	if err := k.Setuid(task, 1001); err != nil {
		t.Fatal(err)
	}
	c := task.Creds()
	if c.RUID != 1001 || c.EUID != 1001 {
		t.Fatalf("creds: %+v", c)
	}
}

func TestSetuidLSMDeferReportsSuccess(t *testing.T) {
	k := testKernel(t)
	k.LSM.Register(&fakeLSM{setuidDec: lsm.DeferToExec})
	task := userTask(k, 1000, 100)
	if err := k.Setuid(task, 1001); err != nil {
		t.Fatal(err)
	}
	// Success reported, but no privilege conferred.
	if task.EUID() != 1000 {
		t.Fatal("creds changed before exec")
	}
}

func TestSetuidLSMDeny(t *testing.T) {
	k := testKernel(t)
	k.LSM.Register(&fakeLSM{setuidDec: lsm.Deny})
	task := userTask(k, 1000, 100)
	if err := k.Setuid(task, 1001); err != errno.EPERM {
		t.Fatalf("deny: %v", err)
	}
}

// --- fork/exec ---

func installBinary(t *testing.T, k *Kernel, path string, mode vfs.Mode, prog Program) {
	t.Helper()
	if err := k.FS.WriteFile(vfs.RootCred, path, []byte("ELF"), mode, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.FS.Chmod(vfs.RootCred, path, mode); err != nil {
		t.Fatal(err)
	}
	k.RegisterBinary(path, prog)
}

func TestExecRunsProgram(t *testing.T) {
	k := testKernel(t)
	installBinary(t, k, "/bin/hello", 0o755, func(k *Kernel, t *Task) int {
		t.Printf("hello from %s", t.Argv()[1])
		return 7
	})
	task := userTask(k, 1000, 100)
	var out bytes.Buffer
	task.Stdout = &out
	code, err := k.Exec(task, "/bin/hello", []string{"/bin/hello", "tests"}, nil)
	if err != nil || code != 7 {
		t.Fatalf("exec: code=%d err=%v", code, err)
	}
	if out.String() != "hello from tests" {
		t.Fatalf("stdout: %q", out.String())
	}
}

func TestExecSetuidBitElevates(t *testing.T) {
	k := testKernel(t)
	var seenEUID int
	var seenCaps caps.Set
	installBinary(t, k, "/bin/suid", 0o4755, func(k *Kernel, t *Task) int {
		seenEUID = t.EUID()
		seenCaps = t.Creds().Effective
		return 0
	})
	task := userTask(k, 1000, 100)
	if _, err := k.Exec(task, "/bin/suid", []string{"/bin/suid"}, nil); err != nil {
		t.Fatal(err)
	}
	if seenEUID != 0 {
		t.Fatalf("euid in setuid binary = %d", seenEUID)
	}
	if seenCaps != caps.Full() {
		t.Fatal("setuid-root binary should hold all caps")
	}
	// The real uid stays the invoking user's.
	if task.UID() != 1000 {
		t.Fatal("ruid changed")
	}
}

func TestExecNoSetuidBitNoElevation(t *testing.T) {
	k := testKernel(t)
	var seenEUID int
	installBinary(t, k, "/bin/plain", 0o755, func(k *Kernel, t *Task) int {
		seenEUID = t.EUID()
		return 0
	})
	task := userTask(k, 1000, 100)
	if _, err := k.Exec(task, "/bin/plain", []string{"/bin/plain"}, nil); err != nil {
		t.Fatal(err)
	}
	if seenEUID != 1000 {
		t.Fatalf("euid = %d", seenEUID)
	}
}

func TestExecDeniedWithoutExecPerm(t *testing.T) {
	k := testKernel(t)
	installBinary(t, k, "/bin/rootonly", 0o700, func(*Kernel, *Task) int { return 0 })
	task := userTask(k, 1000, 100)
	if _, err := k.Exec(task, "/bin/rootonly", []string{"/bin/rootonly"}, nil); err != errno.EACCES {
		t.Fatalf("exec: %v", err)
	}
}

func TestExecMissingBinary(t *testing.T) {
	k := testKernel(t)
	task := userTask(k, 1000, 100)
	if _, err := k.Exec(task, "/bin/nothere", []string{"x"}, nil); err != errno.ENOENT {
		t.Fatalf("exec: %v", err)
	}
	// Present file without a registered program is ENOEXEC.
	if err := k.FS.WriteFile(vfs.RootCred, "/bin/garbage", []byte("x"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Exec(task, "/bin/garbage", []string{"x"}, nil); err != errno.ENOEXEC {
		t.Fatalf("exec: %v", err)
	}
}

func TestExecAppliesLSMCredUpdate(t *testing.T) {
	k := testKernel(t)
	uid := 1001
	gid := 200
	k.LSM.Register(&fakeLSM{execUpdate: &lsm.CredUpdate{UID: &uid, GID: &gid, Groups: []int{7, 8}}})
	var seen *Credentials
	installBinary(t, k, "/bin/target", 0o755, func(k *Kernel, t *Task) int {
		seen = t.Creds()
		return 0
	})
	task := userTask(k, 1000, 100)
	if _, err := k.Exec(task, "/bin/target", []string{"/bin/target"}, nil); err != nil {
		t.Fatal(err)
	}
	if seen.RUID != 1001 || seen.EGID != 200 || len(seen.Groups) != 2 {
		t.Fatalf("creds: %+v", seen)
	}
}

func TestExecVetoedByLSM(t *testing.T) {
	k := testKernel(t)
	k.LSM.Register(&fakeLSM{execErr: errno.EPERM})
	installBinary(t, k, "/bin/x", 0o755, func(*Kernel, *Task) int { return 0 })
	task := userTask(k, 1000, 100)
	if _, err := k.Exec(task, "/bin/x", []string{"/bin/x"}, nil); err != errno.EPERM {
		t.Fatalf("exec: %v", err)
	}
}

func TestExecClosesCloexecFDs(t *testing.T) {
	k := testKernel(t)
	installBinary(t, k, "/bin/noop", 0o755, func(*Kernel, *Task) int { return 0 })
	task := userTask(k, 1000, 100)
	fd, err := k.Open(task, "/etc/motd", O_RDONLY|O_CLOEXEC)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := k.Open(task, "/etc/motd", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Exec(task, "/bin/noop", []string{"/bin/noop"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Read(task, fd, 1); err != errno.EBADF {
		t.Fatalf("cloexec fd survived: %v", err)
	}
	if _, err := k.Read(task, keep, 1); err != nil {
		t.Fatalf("normal fd lost: %v", err)
	}
}

func TestForkInheritance(t *testing.T) {
	k := testKernel(t)
	parent := userTask(k, 1000, 100)
	parent.Setenv("FOO", "bar")
	parent.SetSecurityBlob("stamp", 42)
	child := k.Fork(parent)
	if child.PID() == parent.PID() {
		t.Fatal("same pid")
	}
	if child.PPID() != parent.PID() {
		t.Fatal("ppid wrong")
	}
	if child.Getenv("FOO") != "bar" {
		t.Fatal("env not inherited")
	}
	if child.SecurityBlob("stamp") != 42 {
		t.Fatal("blobs not inherited")
	}
	// Child env mutation does not touch the parent.
	child.Setenv("FOO", "baz")
	if parent.Getenv("FOO") != "bar" {
		t.Fatal("env aliased")
	}
	// Child cred mutation does not touch the parent.
	if err := k.Setuid(child, 1000); err != nil {
		t.Fatal(err)
	}
}

func TestExitRemovesTask(t *testing.T) {
	k := testKernel(t)
	task := userTask(k, 1000, 100)
	pid := task.PID()
	k.Exit(task, 3)
	if k.Task(pid) != nil {
		t.Fatal("task still present")
	}
	exited, code := task.Exited()
	if !exited || code != 3 {
		t.Fatalf("exit state: %v %d", exited, code)
	}
	k.Exit(task, 9) // double exit is a no-op
	if _, code := task.Exited(); code != 3 {
		t.Fatal("double exit changed code")
	}
}

func TestSpawnCaptureOpt(t *testing.T) {
	k := testKernel(t)
	installBinary(t, k, "/bin/echo", 0o755, func(k *Kernel, t *Task) int {
		t.Printf("out")
		t.Errorf("err")
		return 0
	})
	parent := userTask(k, 1000, 100)
	res, err := k.Spawn(parent, "/bin/echo", []string{"/bin/echo"}, nil, SpawnOpts{Capture: true})
	if err != nil || res.Code != 0 || res.Stdout != "out" || res.Stderr != "err" {
		t.Fatalf("spawn: %d %q %q %v", res.Code, res.Stdout, res.Stderr, err)
	}
}

// --- fd syscalls ---

func TestOpenReadWriteClose(t *testing.T) {
	k := testKernel(t)
	task := userTask(k, 1000, 100)
	fd, err := k.Open(task, "/tmp/file", O_RDWR|O_CREAT)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := k.Write(task, fd, []byte("abcdef")); err != nil || n != 6 {
		t.Fatalf("write: %d %v", n, err)
	}
	// Reset position by reopening.
	if err := k.CloseFD(task, fd); err != nil {
		t.Fatal(err)
	}
	fd, err = k.Open(task, "/tmp/file", O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	data, err := k.Read(task, fd, 3)
	if err != nil || string(data) != "abc" {
		t.Fatalf("read: %q %v", data, err)
	}
	data, err = k.Read(task, fd, 10)
	if err != nil || string(data) != "def" {
		t.Fatalf("read rest: %q %v", data, err)
	}
	data, err = k.Read(task, fd, 10)
	if err != nil || data != nil {
		t.Fatalf("read eof: %q %v", data, err)
	}
	if _, err := k.Write(task, fd, []byte("x")); err != errno.EBADF {
		t.Fatalf("write to rdonly: %v", err)
	}
	if err := k.CloseFD(task, fd); err != nil {
		t.Fatal(err)
	}
	if err := k.CloseFD(task, fd); err != errno.EBADF {
		t.Fatalf("double close: %v", err)
	}
}

func TestOpenAppendAndTrunc(t *testing.T) {
	k := testKernel(t)
	task := userTask(k, 1000, 100)
	if err := k.WriteFile(task, "/tmp/log", []byte("first")); err != nil {
		t.Fatal(err)
	}
	fd, err := k.Open(task, "/tmp/log", O_WRONLY|O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(task, fd, []byte("+more")); err != nil {
		t.Fatal(err)
	}
	data, _ := k.ReadFile(task, "/tmp/log")
	if string(data) != "first+more" {
		t.Fatalf("append: %q", data)
	}
	if _, err := k.Open(task, "/tmp/log", O_WRONLY|O_TRUNC); err != nil {
		t.Fatal(err)
	}
	data, _ = k.ReadFile(task, "/tmp/log")
	if len(data) != 0 {
		t.Fatalf("trunc: %q", data)
	}
}

func TestReadDirAndChdir(t *testing.T) {
	k := testKernel(t)
	task := userTask(k, 1000, 100)
	if err := k.Chdir(task, "/etc"); err != nil {
		t.Fatal(err)
	}
	if task.Cwd() != "/etc" {
		t.Fatal("cwd not changed")
	}
	// Relative path resolution against cwd.
	data, err := k.ReadFile(task, "motd")
	if err != nil || string(data) != "hello world" {
		t.Fatalf("relative read: %q %v", data, err)
	}
	if err := k.Chdir(task, "/etc/motd"); err != errno.ENOTDIR {
		t.Fatalf("chdir to file: %v", err)
	}
	if err := k.Chdir(task, "/nosuch"); err != errno.ENOENT {
		t.Fatalf("chdir missing: %v", err)
	}
}

// --- mount syscall privilege ---

func TestMountRequiresPrivilege(t *testing.T) {
	k := testKernel(t)
	if _, err := k.FS.Mkdir(vfs.RootCred, "/mnt", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	user := userTask(k, 1000, 100)
	if err := k.Mount(user, "/dev/sdb1", "/mnt", "ext4", nil); err != errno.EPERM {
		t.Fatalf("user mount: %v", err)
	}
	root := k.InitTask()
	if err := k.Mount(root, "/dev/sdb1", "/mnt", "ext4", nil); err != nil {
		t.Fatalf("root mount: %v", err)
	}
	if err := k.Umount(user, "/mnt"); err != errno.EPERM {
		t.Fatalf("user umount: %v", err)
	}
	if err := k.Umount(root, "/mnt"); err != nil {
		t.Fatalf("root umount: %v", err)
	}
	if err := k.Umount(root, "/mnt"); err != errno.EINVAL {
		t.Fatalf("umount non-mounted: %v", err)
	}
}

// --- sockets ---

func TestSocketRawRequiresCapNetRaw(t *testing.T) {
	k := testKernel(t)
	user := userTask(k, 1000, 100)
	if _, err := k.Socket(user, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP); err != errno.EPERM {
		t.Fatalf("raw: %v", err)
	}
	if _, err := k.Socket(user, netstack.AF_PACKET, netstack.SOCK_RAW, 0); err != errno.EPERM {
		t.Fatalf("packet: %v", err)
	}
	if _, err := k.Socket(user, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP); err != nil {
		t.Fatalf("tcp: %v", err)
	}
	root := k.InitTask()
	if _, err := k.Socket(root, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP); err != nil {
		t.Fatalf("root raw: %v", err)
	}
}

func TestBindPrivilegedPorts(t *testing.T) {
	k := testKernel(t)
	user := userTask(k, 1000, 100)
	sock, err := k.Socket(user, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Bind(user, sock, 80); err != errno.EACCES {
		t.Fatalf("user bind 80: %v", err)
	}
	if err := k.Bind(user, sock, 8080); err != nil {
		t.Fatalf("user bind 8080: %v", err)
	}
	root := k.InitTask()
	rsock, _ := k.Socket(root, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP)
	if err := k.Bind(root, rsock, 80); err != nil {
		t.Fatalf("root bind 80: %v", err)
	}
}

// --- routes ---

func TestRoutePrivilege(t *testing.T) {
	k := testKernel(t)
	user := userTask(k, 1000, 100)
	r := netstack.Route{Dest: netstack.IPv4(192, 168, 50, 0), PrefixLen: 24, Iface: "eth0"}
	if err := k.AddRoute(user, r); err != errno.EPERM {
		t.Fatalf("user route: %v", err)
	}
	root := k.InitTask()
	if err := k.AddRoute(root, r); err != nil {
		t.Fatalf("root route: %v", err)
	}
	if err := k.DelRoute(user, r.Dest, r.PrefixLen); err != errno.EPERM {
		t.Fatalf("user del: %v", err)
	}
	if err := k.DelRoute(root, r.Dest, r.PrefixLen); err != nil {
		t.Fatalf("root del: %v", err)
	}
	if err := k.DelRoute(root, r.Dest, r.PrefixLen); err != errno.ESRCH {
		t.Fatalf("del missing: %v", err)
	}
}

// --- ioctl ---

func TestIoctlDispatch(t *testing.T) {
	k := testKernel(t)
	if _, err := k.FS.Mknod(vfs.RootCred, "/dev/thing", vfs.CharDevice, 10, 1, 0o666, 0, 0); err != nil {
		t.Fatal(err)
	}
	var gotCmd uint32
	k.RegisterDevice("/dev/thing", func(t *Task, cmd uint32, arg any, granted bool) error {
		gotCmd = cmd
		return nil
	})
	user := userTask(k, 1000, 100)
	if err := k.Ioctl(user, "/dev/thing", 0x42, nil); err != nil {
		t.Fatal(err)
	}
	if gotCmd != 0x42 {
		t.Fatal("handler not called")
	}
	// ioctl on a non-device is ENOTTY.
	if err := k.Ioctl(user, "/etc/motd", 0x42, nil); err != errno.ENOTTY {
		t.Fatalf("ioctl on file: %v", err)
	}
	// ioctl on a device without a handler is ENOTTY.
	if _, err := k.FS.Mknod(vfs.RootCred, "/dev/mute", vfs.CharDevice, 10, 2, 0o666, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Ioctl(user, "/dev/mute", 1, nil); err != errno.ENOTTY {
		t.Fatalf("ioctl no handler: %v", err)
	}
	// Device DAC applies.
	if _, err := k.FS.Mknod(vfs.RootCred, "/dev/priv", vfs.CharDevice, 10, 3, 0o600, 0, 0); err != nil {
		t.Fatal(err)
	}
	k.RegisterDevice("/dev/priv", func(*Task, uint32, any, bool) error { return nil })
	if err := k.Ioctl(user, "/dev/priv", 1, nil); err != errno.EACCES {
		t.Fatalf("ioctl without perm: %v", err)
	}
}

// --- signals, pipes ---

func TestSignals(t *testing.T) {
	k := testKernel(t)
	task := userTask(k, 1000, 100)
	got := 0
	if err := k.SigAction(task, 10, func(sig int) { got = sig }); err != nil {
		t.Fatal(err)
	}
	if err := k.SigAction(task, 0, nil); err != errno.EINVAL {
		t.Fatalf("bad signal: %v", err)
	}
	if err := k.Kill(task, task.PID(), 10); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatal("handler not invoked")
	}
	if err := k.Kill(task, 99999, 10); err != errno.ESRCH {
		t.Fatalf("kill missing: %v", err)
	}
	// Cross-uid kill denied.
	other := userTask(k, 2000, 200)
	if err := k.Kill(other, task.PID(), 10); err != errno.EPERM {
		t.Fatalf("cross-uid kill: %v", err)
	}
	// Root may signal anyone.
	root := k.InitTask()
	if err := k.Kill(root, task.PID(), 10); err != nil {
		t.Fatalf("root kill: %v", err)
	}
}

func TestPipes(t *testing.T) {
	k := testKernel(t)
	p := k.NewPipe()
	if _, err := p.Write([]byte("token")); err != nil {
		t.Fatal(err)
	}
	data, err := p.Read(time.Second)
	if err != nil || string(data) != "token" {
		t.Fatalf("pipe: %q %v", data, err)
	}
	if _, err := p.Read(5 * time.Millisecond); err != errno.EAGAIN {
		t.Fatalf("empty pipe read: %v", err)
	}
	p.Close()
	if _, err := p.Read(time.Second); err != errno.EPIPE {
		t.Fatalf("closed pipe: %v", err)
	}
}

// --- audit ---

func TestAuditLog(t *testing.T) {
	k := testKernel(t)
	user := userTask(k, 1000, 100)
	if _, err := k.FS.Mkdir(vfs.RootCred, "/mnt", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	_ = k.Mount(user, "/dev/x", "/mnt", "ext4", nil)
	log := k.AuditLog()
	if len(log) == 0 {
		t.Fatal("denial not audited")
	}
}

// --- proc registration ---

func TestRegisterProcFile(t *testing.T) {
	k := testKernel(t)
	if _, err := k.FS.Mkdir(vfs.RootCred, "/proc", 0o555, 0, 0); err != nil {
		t.Fatal(err)
	}
	var stored string
	err := k.RegisterProcFile("/proc/test", 0o600,
		func(vfs.Cred) ([]byte, error) { return []byte(stored), nil },
		func(c vfs.Cred, data []byte) error { stored = string(data); return nil })
	if err != nil {
		t.Fatal(err)
	}
	root := k.InitTask()
	if err := k.WriteFile(root, "/proc/test", []byte("policy")); err != nil {
		t.Fatal(err)
	}
	data, err := k.ReadFile(root, "/proc/test")
	if err != nil || string(data) != "policy" {
		t.Fatalf("proc: %q %v", data, err)
	}
	user := userTask(k, 1000, 100)
	if err := k.WriteFile(user, "/proc/test", []byte("evil")); err == nil {
		t.Fatal("user wrote root proc file")
	}
}
