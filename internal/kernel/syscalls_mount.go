package kernel

import (
	"protego/internal/caps"
	"protego/internal/errno"
	"protego/internal/lsm"
	"protego/internal/vfs"
)

// hasOpt reports whether opts contains opt.
func hasOpt(opts []string, opt string) bool {
	for _, o := range opts {
		if o == opt {
			return true
		}
	}
	return false
}

// Mount implements mount(2). Base policy: CAP_SYS_ADMIN required (the
// coarse check that forced /bin/mount to be setuid root). On Protego, the
// LSM hook consults the in-kernel user-mount whitelist synchronized from
// /etc/fstab and may Grant the call for an unprivileged task — the right
// half of the paper's Figure 1.
func (k *Kernel) Mount(t *Task, device, point, fstype string, options []string) (err error) {
	tok, err := k.enter(t, SysMount)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	req := &lsm.MountRequest{
		Device:   device,
		Point:    vfs.CleanPath(point, t.Cwd()),
		FSType:   fstype,
		Options:  append([]string(nil), options...),
		ReadOnly: hasOpt(options, "ro"),
	}
	dec, err := k.LSM.MountCheck(t, req)
	if dec == lsm.Deny {
		k.Auditf("mount denied by lsm: pid=%d uid=%d dev=%s point=%s", t.PID(), t.UID(), device, req.Point)
		return denyErr(err, errno.EPERM)
	}
	privileged := t.Capable(caps.CAP_SYS_ADMIN)
	if !privileged && dec != lsm.Grant {
		k.Auditf("mount denied: pid=%d uid=%d dev=%s point=%s (no CAP_SYS_ADMIN)", t.PID(), t.UID(), device, req.Point)
		return errno.EPERM
	}
	// Mechanism. The attach resolves the mount point with the caller's
	// credentials, so a user cannot mount over a directory she cannot
	// even reach.
	m := &vfs.Mount{
		Device:    device,
		Point:     req.Point,
		FSType:    fstype,
		Options:   req.Options,
		ReadOnly:  req.ReadOnly,
		MountedBy: t.UID(),
		UserMount: !privileged,
	}
	return k.FS.AttachMount(t.credsRef(), m)
}

// Umount implements umount(2) under the same split: CAP_SYS_ADMIN or an
// LSM grant (user entries in /etc/fstab are unmountable by users).
func (k *Kernel) Umount(t *Task, point string) (err error) {
	tok, err := k.enter(t, SysUmount)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	clean := vfs.CleanPath(point, t.Cwd())
	existing := k.FS.MountAt(clean)
	if existing == nil {
		return errno.EINVAL
	}
	req := &lsm.UmountRequest{
		Point:     clean,
		Device:    existing.Device,
		MountedBy: existing.MountedBy,
		UserMount: existing.UserMount,
	}
	dec, err := k.LSM.UmountCheck(t, req)
	if dec == lsm.Deny {
		k.Auditf("umount denied by lsm: pid=%d uid=%d point=%s", t.PID(), t.UID(), clean)
		return denyErr(err, errno.EPERM)
	}
	if !t.Capable(caps.CAP_SYS_ADMIN) && dec != lsm.Grant {
		k.Auditf("umount denied: pid=%d uid=%d point=%s", t.PID(), t.UID(), clean)
		return errno.EPERM
	}
	_, err = k.FS.DetachMount(t.credsRef(), clean)
	return err
}
