package kernel

import (
	"time"

	"protego/internal/caps"
	"protego/internal/errno"
	"protego/internal/lsm"
	"protego/internal/netstack"
)

// Socket implements socket(2). Base policy: raw and packet sockets require
// CAP_NET_RAW (which is why ping is setuid root on the baseline). On
// Protego the LSM grants unprivileged raw sockets, tagging them so the
// netfilter extension filters their outgoing packets (§4.1.1).
func (k *Kernel) Socket(t *Task, family, typ, proto int) (sock *netstack.Socket, err error) {
	tok, err := k.enter(t, SysSocket)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return nil, err
	}
	raw := typ == netstack.SOCK_RAW || family == netstack.AF_PACKET
	req := &lsm.SocketRequest{Family: family, Type: typ, Proto: proto}
	dec, err := k.LSM.SocketCreate(t, req)
	if dec == lsm.Deny {
		k.Auditf("socket denied by lsm: pid=%d uid=%d type=%d", t.PID(), t.UID(), typ)
		return nil, denyErr(err, errno.EPERM)
	}
	// Namespace-local privilege: inside a private network namespace the
	// creator holds CAP_NET_RAW over the fake network (§6) — externally
	// invisible, so no policy is needed.
	privileged := t.Capable(caps.CAP_NET_RAW) || k.nsPrivileged(t)
	if raw && !privileged && dec != lsm.Grant {
		k.Auditf("socket denied: pid=%d uid=%d raw socket without CAP_NET_RAW", t.PID(), t.UID())
		return nil, errno.EPERM
	}
	sock, serr := k.stackFor(t).NewSocket(family, typ, proto)
	if serr != nil {
		return nil, serr
	}
	sock.OwnerUID = t.EUID()
	sock.OwnerBinary = t.BinaryPath()
	if raw && !t.Capable(caps.CAP_NET_RAW) && !k.nsPrivileged(t) {
		// Granted by the LSM: subject this socket's output to the
		// raw-socket netfilter rules.
		sock.UnprivRaw = true
	}
	return sock, nil
}

// Bind implements bind(2). Base policy: ports below 1024 require
// CAP_NET_BIND_SERVICE. On Protego the LSM consults the /etc/bind port
// allocation table mapping each privileged port to one (binary, uid)
// application instance (§4.1.3).
func (k *Kernel) Bind(t *Task, sock *netstack.Socket, port int) (err error) {
	tok, err := k.enter(t, SysBind)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	if port > 0 && port < 1024 {
		req := &lsm.BindRequest{
			Family: sock.Family,
			Type:   sock.Type,
			Proto:  sock.Proto,
			Port:   port,
		}
		dec, err := k.LSM.BindCheck(t, req)
		if dec == lsm.Deny {
			k.Auditf("bind denied by lsm: pid=%d uid=%d port=%d bin=%s", t.PID(), t.UID(), port, t.BinaryPath())
			return denyErr(err, errno.EACCES)
		}
		if !t.Capable(caps.CAP_NET_BIND_SERVICE) && dec != lsm.Grant {
			k.Auditf("bind denied: pid=%d uid=%d port=%d (no CAP_NET_BIND_SERVICE)", t.PID(), t.UID(), port)
			return errno.EACCES
		}
	}
	return sock.Stack().Bind(sock, port)
}

// Listen implements listen(2).
func (k *Kernel) Listen(t *Task, sock *netstack.Socket, backlog int) (err error) {
	tok, err := k.enter(t, SysListen)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	return sock.Stack().Listen(sock, backlog)
}

// Accept implements accept(2) with a timeout (the simulation has no
// blocking-forever semantics).
func (k *Kernel) Accept(t *Task, sock *netstack.Socket, timeout time.Duration) (conn *netstack.Socket, err error) {
	tok, err := k.enter(t, SysAccept)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return nil, err
	}
	return sock.Stack().Accept(sock, timeout)
}

// Connect implements connect(2).
func (k *Kernel) Connect(t *Task, sock *netstack.Socket, dst netstack.IP, port int) (err error) {
	tok, err := k.enter(t, SysConnect)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	return sock.Stack().Connect(sock, dst, port)
}

// Send implements send(2) on a connected stream socket.
func (k *Kernel) Send(t *Task, sock *netstack.Socket, data []byte) (n int, err error) {
	tok, err := k.enter(t, SysSend)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return 0, err
	}
	return sock.Stack().Send(sock, data)
}

// Recv implements recv(2).
func (k *Kernel) Recv(t *Task, sock *netstack.Socket, timeout time.Duration) (buf []byte, err error) {
	tok, err := k.enter(t, SysRecv)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return nil, err
	}
	return sock.Stack().Recv(sock, timeout)
}

// SendTo implements sendto(2) for datagram and raw sockets. Raw packets
// pass the netfilter OUTPUT chain inside the stack.
func (k *Kernel) SendTo(t *Task, sock *netstack.Socket, pkt *netstack.Packet) (err error) {
	tok, err := k.enter(t, SysSendTo)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	return sock.Stack().SendTo(sock, pkt)
}

// RecvFrom implements recvfrom(2).
func (k *Kernel) RecvFrom(t *Task, sock *netstack.Socket, timeout time.Duration) (pkt *netstack.Packet, err error) {
	tok, err := k.enter(t, SysRecvFrom)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return nil, err
	}
	return sock.Stack().RecvFrom(sock, timeout)
}

// CloseSocket releases the socket.
func (k *Kernel) CloseSocket(t *Task, sock *netstack.Socket) (err error) {
	tok, err := k.enter(t, SysCloseSock)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	return sock.Stack().Close(sock)
}

// Route ioctl commands (SIOCADDRT/SIOCDELRT equivalents).
const (
	SIOCADDRT uint32 = 0x890B
	SIOCDELRT uint32 = 0x890C
)

// AddRoute mediates routing table updates. Base policy: CAP_NET_ADMIN. On
// Protego the LSM grants route additions by unprivileged pppd sessions when
// the new route does not conflict with existing routes (§4.1.2).
func (k *Kernel) AddRoute(t *Task, r netstack.Route) (err error) {
	tok, err := k.enter(t, SysAddRoute)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	// Routes inside a private network namespace affect nobody else: the
	// namespace creator manages them freely (§6).
	if ns := k.netNSOf(t); ns != nil {
		if ns.owner != t.UID() && !t.Capable(caps.CAP_NET_ADMIN) {
			return errno.EPERM
		}
		r.CreatedBy = t.UID()
		ns.stack.AddRoute(r)
		return nil
	}
	req := &lsm.IoctlRequest{Path: "route", Cmd: SIOCADDRT, Arg: r}
	dec, err := k.LSM.IoctlCheck(t, req)
	if dec == lsm.Deny {
		k.Auditf("route add denied by lsm: pid=%d uid=%d route=%s", t.PID(), t.UID(), r)
		return denyErr(err, errno.EPERM)
	}
	if !t.Capable(caps.CAP_NET_ADMIN) && dec != lsm.Grant {
		k.Auditf("route add denied: pid=%d uid=%d route=%s", t.PID(), t.UID(), r)
		return errno.EPERM
	}
	r.CreatedBy = t.UID()
	k.Net.AddRoute(r)
	return nil
}

// DelRoute mediates route removal: CAP_NET_ADMIN, or an LSM grant limited
// to routes the same user created.
func (k *Kernel) DelRoute(t *Task, dest netstack.IP, prefixLen int) (err error) {
	tok, err := k.enter(t, SysDelRoute)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	if ns := k.netNSOf(t); ns != nil {
		if ns.owner != t.UID() && !t.Capable(caps.CAP_NET_ADMIN) {
			return errno.EPERM
		}
		if !ns.stack.DelRoute(dest, prefixLen) {
			return errno.ESRCH
		}
		return nil
	}
	req := &lsm.IoctlRequest{Path: "route", Cmd: SIOCDELRT, Arg: netstack.Route{Dest: dest, PrefixLen: prefixLen}}
	dec, err := k.LSM.IoctlCheck(t, req)
	if dec == lsm.Deny {
		return denyErr(err, errno.EPERM)
	}
	if !t.Capable(caps.CAP_NET_ADMIN) && dec != lsm.Grant {
		return errno.EPERM
	}
	if !k.Net.DelRoute(dest, prefixLen) {
		return errno.ESRCH
	}
	return nil
}
