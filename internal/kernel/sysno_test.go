package kernel

import "testing"

// TestSysnoCatalog pins the catalog's invariants: every entry round-trips
// through String/FromName, names are unique, and the invalid sentinel
// stays outside the valid range. The committed golden profiles reference
// syscalls by these names, so a rename here is a breaking change to every
// profile on disk.
func TestSysnoCatalog(t *testing.T) {
	all := Sysnos()
	if len(all) != NumSysno-1 {
		t.Fatalf("Sysnos() returned %d entries, want %d (NumSysno minus the invalid slot)",
			len(all), NumSysno-1)
	}
	seen := map[string]Sysno{}
	for _, sn := range all {
		if !sn.Valid() {
			t.Errorf("Sysnos() returned invalid entry %d", sn)
		}
		name := sn.String()
		if name == "" || name == "invalid" {
			t.Errorf("Sysno(%d) has no trace name", sn)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("name %q claimed by both Sysno(%d) and Sysno(%d)", name, prev, sn)
		}
		seen[name] = sn
		back, ok := FromName(name)
		if !ok || back != sn {
			t.Errorf("FromName(%q) = (%d, %v), want (%d, true)", name, back, ok, sn)
		}
	}

	if SysInvalid.Valid() {
		t.Error("SysInvalid reports Valid")
	}
	if got := SysInvalid.String(); got != "invalid" {
		t.Errorf("SysInvalid.String() = %q, want %q", got, "invalid")
	}
	if _, ok := FromName("invalid"); ok {
		t.Error("FromName resolved the invalid sentinel")
	}
	if _, ok := FromName("no-such-syscall"); ok {
		t.Error("FromName resolved an unknown name")
	}

	// A few spot checks that the trace names kernel methods have always
	// emitted survived the catalog extraction.
	for name, want := range map[string]Sysno{
		"open": SysOpen, "readfile": SysReadFile, "exec": SysExec,
		"closesock": SysCloseSock, "fcntl": SysFcntl, "setuid": SysSetuid,
	} {
		if got, ok := FromName(name); !ok || got != want {
			t.Errorf("FromName(%q) = (%d, %v), want (%d, true)", name, got, ok, want)
		}
	}
}
