package kernel

import (
	"testing"
	"testing/quick"

	"protego/internal/netstack"
	"protego/internal/vfs"
)

// TestNoEscalationByIdentitySyscalls is the base-policy security invariant
// underneath everything else: with no LSM grants in play, NO sequence of
// setuid/seteuid/setgid/setgroups calls lets an unprivileged task reach
// euid 0 or acquire a capability. (Protego's grants are then the *only*
// doors, and each is policy-checked.)
func TestNoEscalationByIdentitySyscalls(t *testing.T) {
	f := func(ops []uint8, args []uint16) bool {
		k := New(ModeLinux, netstack.IPv4(10, 0, 0, 2))
		init := k.InitTask()
		task := k.Fork(init)
		task.SetUserCreds(UserCreds(1000, 100, 20, 30))
		for i, op := range ops {
			arg := 0
			if len(args) > 0 {
				arg = int(args[i%len(args)]) % 4000
			}
			switch op % 4 {
			case 0:
				_ = k.Setuid(task, arg)
			case 1:
				_ = k.Seteuid(task, arg)
			case 2:
				_ = k.Setgid(task, arg)
			case 3:
				_ = k.Setgroups(task, []int{arg})
			}
			c := task.Creds()
			if c.EUID == 0 || c.RUID == 0 || c.SUID == 0 || c.FUID == 0 {
				return false
			}
			if !c.Effective.IsEmpty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestNoEscalationByExec extends the invariant across exec: executing any
// non-setuid binary never raises privilege.
func TestNoEscalationByExec(t *testing.T) {
	k := New(ModeLinux, netstack.IPv4(10, 0, 0, 2))
	if _, err := k.FS.Mkdir(vfs.RootCred, "/bin", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []vfs.Mode{0o755, 0o777, 0o4644 /* setuid but not executable-by-virtue-of-suid-only */} {
		path := "/bin/probe"
		if err := k.FS.WriteFile(vfs.RootCred, path, []byte("ELF"), mode, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := k.FS.Chmod(vfs.RootCred, path, mode); err != nil {
			t.Fatal(err)
		}
		var sawEUID = -1
		k.RegisterBinary(path, func(k *Kernel, t *Task) int {
			sawEUID = t.EUID()
			return 0
		})
		init := k.InitTask()
		task := k.Fork(init)
		task.SetUserCreds(UserCreds(1000, 100))
		_, err := k.Exec(task, path, []string{path}, nil)
		if mode == 0o4644 {
			// Not executable by the user: exec must fail outright.
			if err == nil {
				t.Fatalf("mode %o: exec of non-executable succeeded", mode)
			}
			continue
		}
		if err != nil {
			t.Fatalf("mode %o: %v", mode, err)
		}
		if mode.IsSetuid() {
			continue // (not reached: 4644 handled above)
		}
		if sawEUID != 1000 {
			t.Fatalf("mode %o: euid %d", mode, sawEUID)
		}
		if err := k.FS.Remove(vfs.RootCred, path); err != nil {
			t.Fatal(err)
		}
	}
}
