package kernel

import (
	"protego/internal/errno"
	"protego/internal/lsm"
	"protego/internal/vfs"
)

// Open flags, mirroring fcntl.h.
const (
	O_RDONLY  = 0x0
	O_WRONLY  = 0x1
	O_RDWR    = 0x2
	O_CREAT   = 0x40
	O_TRUNC   = 0x200
	O_APPEND  = 0x400
	O_CLOEXEC = 0x80000
)

// FileDesc is an open file description.
type FileDesc struct {
	Ino         *vfs.Inode
	Path        string
	Flags       int
	Pos         int
	CloseOnExec bool
}

// fileOpenHook consults the LSM FileOpen hook, combining its decision with
// the DAC outcome: Grant overrides a DAC failure, Deny overrides a DAC
// success.
func (k *Kernel) fileOpenHook(t *Task, path string, ino *vfs.Inode, write bool, dacErr error) error {
	req := &lsm.OpenRequest{
		Path:       path,
		Write:      write,
		OwnerUID:   ino.UID,
		Mode:       uint32(ino.Mode),
		DACAllowed: dacErr == nil,
	}
	dec, err := k.LSM.FileOpen(t, req)
	switch dec {
	case lsm.Deny:
		k.Auditf("open denied by lsm: pid=%d uid=%d path=%s", t.PID(), t.UID(), path)
		return denyErr(err, errno.EACCES)
	case lsm.Grant:
		return nil
	default:
		return dacErr
	}
}

// Open opens path and installs a descriptor in the task's fd table.
func (k *Kernel) Open(t *Task, path string, flags int) (fd int, err error) {
	tok, err := k.enter(t, SysOpen)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return -1, err
	}
	clean := vfs.CleanPath(path, t.Cwd())
	creds := t.credsRef()
	ino, err := k.FS.Lookup(creds, clean)
	if errno.Is(err, errno.ENOENT) && flags&O_CREAT != 0 {
		want := vfs.MayWrite
		ino, err = k.FS.Create(creds, clean, 0o644, creds.FUID, creds.FGID)
		if err != nil {
			return -1, err
		}
		_ = want
	} else if err != nil {
		return -1, err
	}
	if ino.Mode.IsDir() && flags&(O_WRONLY|O_RDWR) != 0 {
		return -1, errno.EISDIR
	}
	write := flags&(O_WRONLY|O_RDWR|O_APPEND|O_TRUNC) != 0
	var want int
	if write {
		want = vfs.MayWrite
	}
	if flags&O_RDWR != 0 || flags&0x3 == O_RDONLY {
		want |= vfs.MayRead
	}
	dacErr := vfs.CheckAccess(creds, ino, want)
	if err := k.fileOpenHook(t, clean, ino, write, dacErr); err != nil {
		return -1, err
	}
	if flags&O_TRUNC != 0 && ino.Mode.IsRegular() && !ino.IsProc() {
		// A sealed inode is shared with a snapshot: truncate a private
		// copy, never the shared one.
		ino = k.FS.BreakSealInode(clean, ino)
		ino.Data = nil
	}
	desc := &FileDesc{
		Ino:         ino,
		Path:        clean,
		Flags:       flags,
		CloseOnExec: flags&O_CLOEXEC != 0,
	}
	t.mu.Lock()
	n := t.nextFD
	t.nextFD++
	t.fds[n] = desc
	t.mu.Unlock()
	return n, nil
}

// fdesc resolves an fd number to its description.
func (t *Task) fdesc(fd int) (*FileDesc, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	f, ok := t.fds[fd]
	if !ok {
		return nil, errno.EBADF
	}
	return f, nil
}

// Read reads up to n bytes from the descriptor.
func (k *Kernel) Read(t *Task, fd, n int) (buf []byte, err error) {
	tok, err := k.enter(t, SysRead)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return nil, err
	}
	f, err := t.fdesc(fd)
	if err != nil {
		return nil, err
	}
	if f.Ino.ReadFn != nil {
		return f.Ino.ReadFn(t.credsRef())
	}
	data := f.Ino.Data
	if f.Pos >= len(data) {
		return nil, nil // EOF
	}
	end := f.Pos + n
	if end > len(data) {
		end = len(data)
	}
	out := make([]byte, end-f.Pos)
	copy(out, data[f.Pos:end])
	f.Pos = end
	return out, nil
}

// Write writes data at the descriptor's position (or appends with O_APPEND).
func (k *Kernel) Write(t *Task, fd int, data []byte) (n int, err error) {
	tok, err := k.enter(t, SysWrite)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return 0, err
	}
	f, err := t.fdesc(fd)
	if err != nil {
		return 0, err
	}
	if f.Flags&0x3 == O_RDONLY && f.Flags&(O_APPEND|O_TRUNC) == 0 {
		return 0, errno.EBADF
	}
	if f.Ino.WriteFn != nil {
		if err := f.Ino.WriteFn(t.credsRef(), data); err != nil {
			return 0, err
		}
		return len(data), nil
	}
	if f.Ino.Sealed() {
		// The descriptor's inode is shared with a snapshot; rebind to a
		// private copy before mutating file data. When the path entry was
		// unlinked or replaced since open (open-unlink-write), the copy is
		// anonymous and the write stays fd-local.
		f.Ino = k.FS.BreakSealInode(f.Path, f.Ino)
	}
	if f.Flags&O_APPEND != 0 {
		f.Ino.Data = append(f.Ino.Data, data...)
		f.Pos = len(f.Ino.Data)
		return len(data), nil
	}
	for len(f.Ino.Data) < f.Pos {
		f.Ino.Data = append(f.Ino.Data, 0)
	}
	f.Ino.Data = append(f.Ino.Data[:f.Pos], data...)
	f.Pos += len(data)
	return len(data), nil
}

// CloseFD releases a descriptor.
func (k *Kernel) CloseFD(t *Task, fd int) (err error) {
	tok, err := k.enter(t, SysClose)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.fds[fd]; !ok {
		return errno.EBADF
	}
	delete(t.fds, fd)
	return nil
}

// SetCloseOnExec marks a descriptor close-on-exec (Protego marks shadow
// file handles this way so they cannot be inherited, §4.4).
func (k *Kernel) SetCloseOnExec(t *Task, fd int, on bool) (err error) {
	tok, err := k.enter(t, SysFcntl)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	f, err := t.fdesc(fd)
	if err != nil {
		return err
	}
	f.CloseOnExec = on
	return nil
}

// Stat returns the inode at path.
func (k *Kernel) Stat(t *Task, path string) (ino *vfs.Inode, err error) {
	tok, err := k.enter(t, SysStat)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return nil, err
	}
	return k.FS.Stat(t.credsRef(), vfs.CleanPath(path, t.Cwd()))
}

// Access reports whether the task may access path with the given rights.
func (k *Kernel) Access(t *Task, path string, want int) (err error) {
	tok, err := k.enter(t, SysAccess)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	ino, err := k.FS.Stat(t.credsRef(), vfs.CleanPath(path, t.Cwd()))
	if err != nil {
		return err
	}
	return vfs.CheckAccess(t.credsRef(), ino, want)
}

// ReadFile is the open+read+close convenience used by the utilities. All
// LSM open mediation applies.
func (k *Kernel) ReadFile(t *Task, path string) (buf []byte, err error) {
	tok, err := k.enter(t, SysReadFile)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return nil, err
	}
	clean := vfs.CleanPath(path, t.Cwd())
	creds := t.credsRef()
	ino, err := k.FS.Lookup(creds, clean)
	if err != nil {
		return nil, err
	}
	// A directory with a read handler is a synthetic proc file rendered on
	// read (e.g. /proc/trace); plain directories stay EISDIR.
	if ino.Mode.IsDir() && ino.ReadFn == nil {
		return nil, errno.EISDIR
	}
	dacErr := vfs.CheckAccess(creds, ino, vfs.MayRead)
	if err := k.fileOpenHook(t, clean, ino, false, dacErr); err != nil {
		return nil, err
	}
	if ino.ReadFn != nil {
		return ino.ReadFn(creds)
	}
	out := make([]byte, len(ino.Data))
	copy(out, ino.Data)
	return out, nil
}

// WriteFile is the open+write+close convenience (creates with mode 0644
// owned by the task's fsuid when absent). LSM open mediation applies.
func (k *Kernel) WriteFile(t *Task, path string, data []byte) (err error) {
	tok, err := k.enter(t, SysWriteFile)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	clean := vfs.CleanPath(path, t.Cwd())
	creds := t.credsRef()
	ino, err := k.FS.Lookup(creds, clean)
	if errno.Is(err, errno.ENOENT) {
		return k.FS.WriteFile(creds, clean, data, 0o644, creds.FUID, creds.FGID)
	}
	if err != nil {
		return err
	}
	dacErr := vfs.CheckAccess(creds, ino, vfs.MayWrite)
	if hookErr := k.fileOpenHook(t, clean, ino, true, dacErr); hookErr != nil {
		return hookErr
	}
	if ino.WriteFn != nil {
		return ino.WriteFn(creds, data)
	}
	// Passed mediation: perform the write as the file's own logic would.
	return k.FS.WriteFile(vfs.RootCred, clean, data, ino.Mode, ino.UID, ino.GID)
}

// AppendFile appends to an existing file with LSM mediation.
func (k *Kernel) AppendFile(t *Task, path string, data []byte) (err error) {
	tok, err := k.enter(t, SysAppendFile)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	clean := vfs.CleanPath(path, t.Cwd())
	creds := t.credsRef()
	ino, err := k.FS.Lookup(creds, clean)
	if err != nil {
		return err
	}
	dacErr := vfs.CheckAccess(creds, ino, vfs.MayWrite)
	if hookErr := k.fileOpenHook(t, clean, ino, true, dacErr); hookErr != nil {
		return hookErr
	}
	return k.FS.AppendFile(vfs.RootCred, clean, data)
}

// Mkdir creates a directory owned by the task's fsuid.
func (k *Kernel) Mkdir(t *Task, path string, mode vfs.Mode) (err error) {
	tok, err := k.enter(t, SysMkdir)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	creds := t.credsRef()
	_, err = k.FS.Mkdir(creds, vfs.CleanPath(path, t.Cwd()), mode, creds.FUID, creds.FGID)
	return err
}

// Unlink removes a file.
func (k *Kernel) Unlink(t *Task, path string) (err error) {
	tok, err := k.enter(t, SysUnlink)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	return k.FS.Remove(t.credsRef(), vfs.CleanPath(path, t.Cwd()))
}

// Rename moves a file.
func (k *Kernel) Rename(t *Task, oldPath, newPath string) (err error) {
	tok, err := k.enter(t, SysRename)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	return k.FS.Rename(t.credsRef(), vfs.CleanPath(oldPath, t.Cwd()), vfs.CleanPath(newPath, t.Cwd()))
}

// Chmod changes permission bits.
func (k *Kernel) Chmod(t *Task, path string, mode vfs.Mode) (err error) {
	tok, err := k.enter(t, SysChmod)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	return k.FS.Chmod(t.credsRef(), vfs.CleanPath(path, t.Cwd()), mode)
}

// Chown changes ownership.
func (k *Kernel) Chown(t *Task, path string, uid, gid int) (err error) {
	tok, err := k.enter(t, SysChown)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	return k.FS.Chown(t.credsRef(), vfs.CleanPath(path, t.Cwd()), uid, gid)
}

// ReadDir lists a directory.
func (k *Kernel) ReadDir(t *Task, path string) (names []string, err error) {
	tok, err := k.enter(t, SysReadDir)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return nil, err
	}
	return k.FS.ReadDir(t.credsRef(), vfs.CleanPath(path, t.Cwd()))
}

// Chdir changes the working directory.
func (k *Kernel) Chdir(t *Task, path string) (err error) {
	tok, err := k.enter(t, SysChdir)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	clean := vfs.CleanPath(path, t.Cwd())
	ino, err := k.FS.Lookup(t.credsRef(), clean)
	if err != nil {
		return err
	}
	if !ino.Mode.IsDir() {
		return errno.ENOTDIR
	}
	if err := vfs.CheckAccess(t.credsRef(), ino, vfs.MayExec); err != nil {
		return err
	}
	t.mu.Lock()
	t.cwd = clean
	t.mu.Unlock()
	return nil
}
