package kernel

import (
	"protego/internal/caps"
	"protego/internal/errno"
	"protego/internal/netstack"
)

// Namespace unshare flags (a subset of clone(2)'s CLONE_NEW*).
const (
	CLONE_NEWUSER = 0x10000000
	CLONE_NEWNET  = 0x40000000
)

// netNS is the per-task namespace state.
type netNS struct {
	stack *netstack.Stack
	// owner is the uid that created the namespace; inside it, that uid
	// holds namespace-local privilege ("a process can appear to have
	// any capability, but any externally visible operation is subject
	// to the original user's privilege", §6).
	owner int
}

// blobNetNS keys the task's network namespace in its security blobs (so it
// is inherited across fork, like Linux namespaces).
const blobNetNS = "kernel.netns"

// blobUserNS marks membership in a user namespace.
const blobUserNS = "kernel.userns"

// UnprivNamespaces models the kernel version split of §4.6: Linux ≥3.8
// allows unprivileged user+network namespaces ("the security implications
// are now better understood"); earlier kernels require CAP_SYS_ADMIN,
// which is why chromium-sandbox shipped setuid-to-root. The baseline world
// builder leaves this false (Linux 3.6.0, the paper's base); Protego runs
// on the same kernel but the sandbox helper is the one binary that §4.6
// concedes may keep the setuid bit — or the administrator upgrades.
func (k *Kernel) SetUnprivNamespaces(on bool) {
	k.unprivNS.Store(on)
}

// UnprivNamespaces reports the current setting. The flag is an atomic:
// unshare-heavy workloads read it on every call without touching a lock.
func (k *Kernel) UnprivNamespaces() bool {
	return k.unprivNS.Load()
}

// Unshare implements unshare(2) for user and network namespaces.
//
//   - CLONE_NEWUSER: permitted for unprivileged tasks only when the kernel
//     allows unprivileged namespaces; the task becomes "namespace root"
//     without gaining any host privilege.
//   - CLONE_NEWNET: requires CAP_SYS_ADMIN, or a simultaneous/prior user
//     namespace. The task receives a fresh, isolated network stack with a
//     private address and no link to the outside world.
func (k *Kernel) Unshare(t *Task, flags int) error {
	if flags&^(CLONE_NEWUSER|CLONE_NEWNET) != 0 {
		return errno.EINVAL
	}
	if flags == 0 {
		return errno.EINVAL
	}
	newUser := flags&CLONE_NEWUSER != 0
	newNet := flags&CLONE_NEWNET != 0

	if newUser {
		if !t.Capable(caps.CAP_SYS_ADMIN) && !k.UnprivNamespaces() {
			k.Auditf("unshare(NEWUSER) denied: pid=%d uid=%d (kernel < 3.8 semantics)", t.PID(), t.UID())
			return errno.EPERM
		}
		t.SetSecurityBlob(blobUserNS, true)
	}
	if newNet {
		inUserNS := t.SecurityBlob(blobUserNS) != nil
		if !t.Capable(caps.CAP_SYS_ADMIN) && !inUserNS {
			k.Auditf("unshare(NEWNET) denied: pid=%d uid=%d", t.PID(), t.UID())
			return errno.EPERM
		}
		// A private stack: loopback plus a private address, no link.
		ns := &netNS{
			stack: netstack.NewStack(netstack.IPv4(10, 200, 0, 2)),
			owner: t.UID(),
		}
		t.SetSecurityBlob(blobNetNS, ns)
	}
	return nil
}

// InUserNamespace reports whether the task entered a user namespace.
func (k *Kernel) InUserNamespace(t *Task) bool {
	return t.SecurityBlob(blobUserNS) != nil
}

// netNSOf returns the task's private network namespace, or nil when it
// uses the host network.
func (k *Kernel) netNSOf(t *Task) *netNS {
	v := t.SecurityBlob(blobNetNS)
	if v == nil {
		return nil
	}
	ns, _ := v.(*netNS)
	return ns
}

// stackFor resolves the network stack a task's socket operations use.
func (k *Kernel) stackFor(t *Task) *netstack.Stack {
	if ns := k.netNSOf(t); ns != nil {
		return ns.stack
	}
	return k.Net
}

// nsPrivileged reports namespace-local privilege: the creator of a network
// namespace is "root inside" for operations confined to that namespace.
func (k *Kernel) nsPrivileged(t *Task) bool {
	ns := k.netNSOf(t)
	return ns != nil && ns.owner == t.UID()
}
