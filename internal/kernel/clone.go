package kernel

import (
	"bytes"
	"maps"

	"protego/internal/lsm"
	"protego/internal/trace"
	"protego/internal/vfs"
)

// Clone returns an independent copy of the kernel backed by a
// copy-on-write snapshot of its file system. The FS is frozen (idempotent
// and cheap when already frozen) and shared until first write; the
// netstack, netfilter table, task table, and credentials are deep-copied;
// the clone gets its own tracer, its own empty LSM chain, and an empty
// device registry. The binary registry snapshot is shared — programs are
// stateless functions and registration is already copy-on-write.
//
// The world layer finishes the job (LSM modules, device handlers, proc
// handler rebinding) in Snapshot.Clone; a bare Kernel.Clone still runs
// syscalls, but its /proc/trace and /proc/protego files point at the
// parent until rebound.
func (k *Kernel) Clone() *Kernel {
	k.FS.Freeze()
	c := &Kernel{
		Mode:   k.Mode,
		FS:     k.FS.Clone(),
		Net:    k.Net.Clone(),
		Filter: k.Filter.Clone(),
		LSM:    lsm.NewChain(),
		Trace:  trace.New(trace.DefaultCapacity),
	}
	for i := range c.shards {
		c.shards[i].m = make(map[int]*Task)
	}
	c.Net.SetFilter(c.Filter)
	c.LSM.SetTracer(c.Trace)
	c.Filter.SetTracer(c.Trace)
	c.registerDcacheCounters()

	c.nextPID.Store(k.nextPID.Load())
	c.unprivNS.Store(k.unprivNS.Load())
	// The gate is part of machine identity: a clone of a seccomp-enforcing
	// machine keeps enforcing once the world layer re-registers the module.
	c.sysGate.Store(k.sysGate.Load())
	c.binaries.Store(k.binaries.Load())
	emptyDevs := make(map[string]IoctlHandler)
	c.devices.Store(&emptyDevs)

	// Clone the task table shard by shard. File descriptions shared
	// between tasks (fork semantics: one offset) stay shared between the
	// cloned tasks, so descriptor identity survives the snapshot.
	fdMap := make(map[*FileDesc]*FileDesc)
	for i := range k.shards {
		sh := &k.shards[i]
		sh.mu.RLock()
		for pid, t := range sh.m {
			c.shards[i].m[pid] = t.cloneInto(c, fdMap)
		}
		sh.mu.RUnlock()
	}
	return c
}

// cloneInto deep-copies the task onto kernel c: credentials, environment,
// security blobs (including a private network namespace, if any), and
// descriptors are private to the clone; stdio buffers start fresh.
func (t *Task) cloneInto(c *Kernel, fdMap map[*FileDesc]*FileDesc) *Task {
	t.mu.Lock()
	defer t.mu.Unlock()
	nt := &Task{
		k:           c,
		pid:         t.pid,
		ppid:        t.ppid,
		creds:       t.creds.Clone(),
		cwd:         t.cwd,
		binary:      t.binary,
		argv:        append([]string(nil), t.argv...),
		env:         maps.Clone(t.env),
		blobs:       cloneBlobs(t.blobs),
		fds:         make(map[int]*FileDesc, len(t.fds)),
		nextFD:      t.nextFD,
		sigHandlers: maps.Clone(t.sigHandlers),
		Stdout:      &bytes.Buffer{},
		Stderr:      &bytes.Buffer{},
		Stdin:       &bytes.Buffer{},
		Asker:       t.Asker,
		exited:      t.exited,
		exitCode:    t.exitCode,
	}
	for fd, f := range t.fds {
		nf, ok := fdMap[f]
		if !ok {
			cp := *f
			nf = &cp
			fdMap[f] = nf
		}
		nt.fds[fd] = nf
	}
	// The syscall-entry slot carries a profile the clone's re-registered
	// seccomp module shares by reference, so the pointer copies over.
	nt.sysFilter.Store(t.sysFilter.Load())
	return nt
}

// cloneBlobs copies the security-blob map. Blob values are immutable
// value types except the network namespace, whose private stack must be
// deep-copied so namespace traffic stays inside the clone.
func cloneBlobs(blobs map[string]any) map[string]any {
	if blobs == nil {
		return nil
	}
	out := make(map[string]any, len(blobs))
	for key, v := range blobs {
		if ns, ok := v.(*netNS); ok {
			out[key] = &netNS{stack: ns.stack.Clone(), owner: ns.owner}
			continue
		}
		out[key] = v
	}
	return out
}

// RebindTraceProc repoints /proc/trace and /proc/trace/stats at this
// kernel's tracer. Machine cloning calls it after Kernel.Clone — the
// cloned FS still holds the parent's render closures; RebindProc
// privatizes the shared inodes before swapping handlers.
func (k *Kernel) RebindTraceProc() error {
	if err := k.FS.RebindProc(ProcTrace, func(vfs.Cred) ([]byte, error) {
		return []byte(k.Trace.RenderEvents(0)), nil
	}, nil); err != nil {
		return err
	}
	return k.FS.RebindProc(ProcTraceStats, func(vfs.Cred) ([]byte, error) {
		return []byte(k.Trace.RenderStats()), nil
	}, nil)
}
