package kernel

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"protego/internal/caps"
)

// Task is a simulated process. It implements lsm.Task so security modules
// can interrogate it, and carries the per-task security blobs the Protego
// kernel stores in task_struct (authentication recency, pending
// setuid-on-exec).
type Task struct {
	k *Kernel

	pid  int
	ppid int

	mu     sync.Mutex
	creds  *Credentials
	cwd    string
	binary string
	argv   []string
	env    map[string]string
	blobs  map[string]any

	// sysFilter is the dedicated syscall-entry slot (lsm.Task's
	// SyscallFilter), read lock-free on every enter() — the analogue of
	// task_struct keeping seccomp state in its own field instead of
	// behind the security pointer. Boxes are immutable once stored, so
	// fork and machine clone inherit by copying the pointer.
	sysFilter atomic.Pointer[sysFilterSlot]

	fds    map[int]*FileDesc
	nextFD int

	sigHandlers map[int]func(sig int)

	// Stdout and Stderr capture program output; Stdin supplies input
	// (password prompts read from here unless an Asker is installed).
	Stdout io.Writer
	Stderr io.Writer
	Stdin  *bytes.Buffer

	// Asker, when set, answers interactive prompts (the simulated
	// terminal). The authentication service uses it to collect
	// passwords.
	Asker func(prompt string) string

	exited   bool
	exitCode int
}

// PID implements lsm.Task.
func (t *Task) PID() int { return t.pid }

// PPID returns the parent process id.
func (t *Task) PPID() int { return t.ppid }

// UID implements lsm.Task (real uid).
func (t *Task) UID() int { t.mu.Lock(); defer t.mu.Unlock(); return t.creds.RUID }

// EUID implements lsm.Task.
func (t *Task) EUID() int { t.mu.Lock(); defer t.mu.Unlock(); return t.creds.EUID }

// GID implements lsm.Task.
func (t *Task) GID() int { t.mu.Lock(); defer t.mu.Unlock(); return t.creds.RGID }

// EGID implements lsm.Task.
func (t *Task) EGID() int { t.mu.Lock(); defer t.mu.Unlock(); return t.creds.EGID }

// Groups implements lsm.Task.
func (t *Task) Groups() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]int(nil), t.creds.Groups...)
}

// Capable implements lsm.Task.
func (t *Task) Capable(c caps.Cap) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.creds.Capable(c)
}

// BinaryPath implements lsm.Task.
func (t *Task) BinaryPath() string { t.mu.Lock(); defer t.mu.Unlock(); return t.binary }

// SecurityBlob implements lsm.Task.
func (t *Task) SecurityBlob(key string) any {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.blobs[key]
}

// SetSecurityBlob implements lsm.Task.
func (t *Task) SetSecurityBlob(key string, v any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if v == nil {
		delete(t.blobs, key)
		return
	}
	t.blobs[key] = v
}

// sysFilterSlot boxes a SyscallFilter value so an explicitly stored nil
// stays distinguishable from a never-populated slot.
type sysFilterSlot struct{ v any }

// SyscallFilter implements lsm.Task.
func (t *Task) SyscallFilter() (any, bool) {
	if s := t.sysFilter.Load(); s != nil {
		return s.v, true
	}
	return nil, false
}

// SetSyscallFilter implements lsm.Task.
func (t *Task) SetSyscallFilter(v any) { t.sysFilter.Store(&sysFilterSlot{v: v}) }

// Creds returns a snapshot copy of the task's credentials.
func (t *Task) Creds() *Credentials {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.creds.Clone()
}

// credsRef returns the live credentials (internal use under kernel control).
func (t *Task) credsRef() *Credentials {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.creds
}

// setCreds replaces the task's credentials.
func (t *Task) setCreds(c *Credentials) {
	t.mu.Lock()
	t.creds = c
	t.mu.Unlock()
}

// SetUserCreds replaces the task's credentials wholesale. It models a
// privileged login/session setup and is used by the world builder and
// tests; simulated userspace must go through the setuid family instead.
func (t *Task) SetUserCreds(c *Credentials) { t.setCreds(c.Clone()) }

// Cwd returns the task's working directory.
func (t *Task) Cwd() string { t.mu.Lock(); defer t.mu.Unlock(); return t.cwd }

// Env returns the task's environment (live map; exec replaces it).
func (t *Task) Env() map[string]string { t.mu.Lock(); defer t.mu.Unlock(); return t.env }

// Getenv returns the named environment variable.
func (t *Task) Getenv(key string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.env[key]
}

// Setenv sets an environment variable.
func (t *Task) Setenv(key, value string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.env[key] = value
}

// Argv returns the current program arguments.
func (t *Task) Argv() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.argv...)
}

// Exited reports whether the task has exited, and its code.
func (t *Task) Exited() (bool, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exited, t.exitCode
}

// Printf writes formatted output to the task's stdout.
func (t *Task) Printf(format string, args ...any) {
	if t.Stdout != nil {
		fmt.Fprintf(t.Stdout, format, args...)
	}
}

// Errorf writes formatted output to the task's stderr.
func (t *Task) Errorf(format string, args ...any) {
	if t.Stderr != nil {
		fmt.Fprintf(t.Stderr, format, args...)
	}
}

// Ask answers an interactive prompt using the installed Asker, or returns
// the empty string when the task has no terminal.
func (t *Task) Ask(prompt string) string {
	if t.Asker != nil {
		return t.Asker(prompt)
	}
	return ""
}
