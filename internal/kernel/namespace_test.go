package kernel

import (
	"testing"
	"time"

	"protego/internal/errno"
	"protego/internal/netstack"
	"protego/internal/vfs"
)

func TestUnshareRequiresPrivilegeOnOldKernels(t *testing.T) {
	k := testKernel(t) // unprivNS defaults false: pre-3.8 semantics
	user := userTask(k, 1000, 100)
	if err := k.Unshare(user, CLONE_NEWUSER); err != errno.EPERM {
		t.Fatalf("unprivileged NEWUSER on old kernel: %v", err)
	}
	if err := k.Unshare(user, CLONE_NEWNET); err != errno.EPERM {
		t.Fatalf("unprivileged NEWNET: %v", err)
	}
	root := k.InitTask()
	if err := k.Unshare(root, CLONE_NEWUSER|CLONE_NEWNET); err != nil {
		t.Fatalf("privileged unshare: %v", err)
	}
}

func TestUnshareUnprivilegedOnModernKernels(t *testing.T) {
	k := testKernel(t)
	k.SetUnprivNamespaces(true)
	user := userTask(k, 1000, 100)
	if err := k.Unshare(user, CLONE_NEWUSER|CLONE_NEWNET); err != nil {
		t.Fatalf("unshare: %v", err)
	}
	if !k.InUserNamespace(user) {
		t.Fatal("user namespace not recorded")
	}
	if k.stackFor(user) == k.Net {
		t.Fatal("network namespace not private")
	}
	// NEWNET still requires a user namespace (or caps) even on modern
	// kernels.
	fresh := userTask(k, 1001, 100)
	if err := k.Unshare(fresh, CLONE_NEWNET); err != errno.EPERM {
		t.Fatalf("bare NEWNET: %v", err)
	}
}

func TestUnshareInvalidFlags(t *testing.T) {
	k := testKernel(t)
	root := k.InitTask()
	if err := k.Unshare(root, 0); err != errno.EINVAL {
		t.Fatalf("zero flags: %v", err)
	}
	if err := k.Unshare(root, 0x1); err != errno.EINVAL {
		t.Fatalf("unknown flags: %v", err)
	}
}

func TestNamespaceLocalRawSockets(t *testing.T) {
	k := testKernel(t)
	k.SetUnprivNamespaces(true)
	user := userTask(k, 1000, 100)
	// Outside a namespace: raw denied (no LSM grant on this bare kernel).
	if _, err := k.Socket(user, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP); err != errno.EPERM {
		t.Fatalf("raw outside ns: %v", err)
	}
	if err := k.Unshare(user, CLONE_NEWUSER|CLONE_NEWNET); err != nil {
		t.Fatal(err)
	}
	// Inside: namespace-local privilege suffices, and the socket is not
	// tagged for host raw-socket filtering (it never touches the host).
	sock, err := k.Socket(user, netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP)
	if err != nil {
		t.Fatalf("raw inside ns: %v", err)
	}
	if sock.UnprivRaw {
		t.Fatal("namespace socket tagged unpriv-raw")
	}
	// ICMP echo works against the namespace's own address.
	pkt := &netstack.Packet{
		Dst: netstack.IPv4(10, 200, 0, 2), Proto: netstack.IPPROTO_ICMP,
		ICMPType: netstack.ICMPEchoRequest, Payload: []byte("x"),
	}
	if err := k.SendTo(user, sock, pkt); err != nil {
		t.Fatalf("ns ping: %v", err)
	}
	if _, err := k.RecvFrom(user, sock, time.Second); err != nil {
		t.Fatalf("ns echo: %v", err)
	}
}

func TestNamespaceCannotReachHost(t *testing.T) {
	k := testKernel(t)
	k.SetUnprivNamespaces(true)
	// A host service is listening.
	root := k.InitTask()
	hostSock, err := k.Socket(root, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Bind(root, hostSock, 80); err != nil {
		t.Fatal(err)
	}
	if err := k.Listen(root, hostSock, 4); err != nil {
		t.Fatal(err)
	}
	// The sandboxed task cannot reach it.
	user := userTask(k, 1000, 100)
	if err := k.Unshare(user, CLONE_NEWUSER|CLONE_NEWNET); err != nil {
		t.Fatal(err)
	}
	client, err := k.Socket(user, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Connect(user, client, netstack.IPv4(10, 0, 0, 2), 80); err == nil {
		t.Fatal("sandbox reached the host network")
	}
}

func TestNamespaceRoutesAreLocal(t *testing.T) {
	k := testKernel(t)
	k.SetUnprivNamespaces(true)
	user := userTask(k, 1000, 100)
	if err := k.Unshare(user, CLONE_NEWUSER|CLONE_NEWNET); err != nil {
		t.Fatal(err)
	}
	r := netstack.Route{Dest: netstack.IPv4(10, 0, 0, 0), PrefixLen: 8, Iface: "veth0"}
	// Inside the namespace, the (conflicting-looking) route is fine: it
	// affects only the fake network.
	if err := k.AddRoute(user, r); err != nil {
		t.Fatalf("ns route: %v", err)
	}
	// The host routing table is untouched.
	for _, hostRoute := range k.Net.Routes() {
		if hostRoute.Iface == "veth0" {
			t.Fatal("namespace route leaked to host")
		}
	}
	if err := k.DelRoute(user, r.Dest, r.PrefixLen); err != nil {
		t.Fatalf("ns route del: %v", err)
	}
}

func TestNamespaceSharedResourcesStillPolicyChecked(t *testing.T) {
	// The paper's §6 punchline: "namespaces cannot safely allow access to
	// shared system resources, such as passwd updating the password
	// database". Inside a sandbox, writes to the shared /etc/shadow are
	// still governed by the original user's credentials.
	k := testKernel(t)
	k.SetUnprivNamespaces(true)
	if err := k.FS.WriteFile(vfs.RootCred, "/etc/shadow", []byte("root:x:"), 0o600, 0, 0); err != nil {
		t.Fatal(err)
	}
	user := userTask(k, 1000, 100)
	if err := k.Unshare(user, CLONE_NEWUSER|CLONE_NEWNET); err != nil {
		t.Fatal(err)
	}
	if err := k.WriteFile(user, "/etc/shadow", []byte("pwned")); err == nil {
		t.Fatal("sandboxed task wrote the shared shadow database")
	}
	// Host mounts likewise.
	if _, err := k.FS.Mkdir(vfs.RootCred, "/mnt", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.Mount(user, "/dev/x", "/mnt", "ext4", nil); err != errno.EPERM {
		t.Fatalf("sandboxed mount on shared tree: %v", err)
	}
}

func TestNamespaceInheritedAcrossFork(t *testing.T) {
	k := testKernel(t)
	k.SetUnprivNamespaces(true)
	user := userTask(k, 1000, 100)
	if err := k.Unshare(user, CLONE_NEWUSER|CLONE_NEWNET); err != nil {
		t.Fatal(err)
	}
	child := k.Fork(user)
	if k.stackFor(child) != k.stackFor(user) {
		t.Fatal("child not in parent's namespace")
	}
}
