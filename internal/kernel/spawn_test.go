package kernel

import (
	"strings"
	"testing"

	"protego/internal/vfs"
)

// registerProbe installs a binary that records what the program actually
// observes at entry: its argv and selected environment variables.
func registerProbe(t *testing.T, k *Kernel, path string) {
	t.Helper()
	if err := k.FS.WriteFile(vfs.RootCred, path, []byte("#!probe"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	k.RegisterBinary(path, func(_ *Kernel, task *Task) int {
		task.Printf("argv=%q env.HOME=%q env.MARK=%q",
			task.Argv(), task.Getenv("HOME"), task.Getenv("MARK"))
		return 0
	})
}

func TestSpawnEmptyArgvDefaultsToPath(t *testing.T) {
	k := testKernel(t)
	registerProbe(t, k, "/bin/probe")
	u := userTask(k, 1000, 100)

	for _, argv := range [][]string{nil, {}} {
		res, err := k.Spawn(u, "/bin/probe", argv, nil, SpawnOpts{Capture: true})
		if err != nil {
			t.Fatalf("argv=%v: %v", argv, err)
		}
		if res.Code != 0 {
			t.Fatalf("argv=%v: exit %d, stderr %q", argv, res.Code, res.Stderr)
		}
		if !strings.Contains(res.Stdout, `argv=["/bin/probe"]`) {
			t.Fatalf("argv=%v: argv[0] not defaulted to binary path: %q", argv, res.Stdout)
		}
	}
}

func TestSpawnRelativePathArgvZeroIsCleaned(t *testing.T) {
	k := testKernel(t)
	registerProbe(t, k, "/bin/probe")
	u := userTask(k, 1000, 100)
	if err := k.Chdir(u, "/bin"); err != nil {
		t.Fatal(err)
	}
	res, err := k.Spawn(u, "probe", nil, nil, SpawnOpts{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, `argv=["/bin/probe"]`) {
		t.Fatalf("defaulted argv[0] should be the cleaned absolute path: %q", res.Stdout)
	}
}

func TestSpawnNilEnvInheritsParent(t *testing.T) {
	k := testKernel(t)
	registerProbe(t, k, "/bin/probe")
	u := userTask(k, 1000, 100)
	u.Setenv("HOME", "/home/u")
	u.Setenv("MARK", "inherited")

	res, err := k.Spawn(u, "/bin/probe", []string{"probe"}, nil, SpawnOpts{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, `env.HOME="/home/u"`) || !strings.Contains(res.Stdout, `env.MARK="inherited"`) {
		t.Fatalf("nil env must inherit the parent environment: %q", res.Stdout)
	}
}

func TestSpawnExplicitEnvReplacesParent(t *testing.T) {
	k := testKernel(t)
	registerProbe(t, k, "/bin/probe")
	u := userTask(k, 1000, 100)
	u.Setenv("HOME", "/home/u")
	u.Setenv("MARK", "inherited")

	res, err := k.Spawn(u, "/bin/probe", []string{"probe"},
		map[string]string{"MARK": "explicit"}, SpawnOpts{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Stdout, `env.MARK="explicit"`) {
		t.Fatalf("explicit env value lost: %q", res.Stdout)
	}
	if !strings.Contains(res.Stdout, `env.HOME=""`) {
		t.Fatalf("explicit env must fully replace, not merge with, the parent's: %q", res.Stdout)
	}
}

func TestSpawnEnvInheritanceIsCopy(t *testing.T) {
	k := testKernel(t)
	if err := k.FS.WriteFile(vfs.RootCred, "/bin/mutate", []byte("#!m"), 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	k.RegisterBinary("/bin/mutate", func(_ *Kernel, task *Task) int {
		env := task.Env()
		env["MARK"] = "mutated-by-child"
		return 0
	})
	u := userTask(k, 1000, 100)
	u.Setenv("MARK", "parent")

	if _, err := k.Spawn(u, "/bin/mutate", nil, nil, SpawnOpts{Capture: true}); err != nil {
		t.Fatal(err)
	}
	if got := u.Getenv("MARK"); got != "parent" {
		t.Fatalf("child env mutation leaked into parent: MARK=%q", got)
	}
}

func TestSpawnCaptureIsolatesParentBuffers(t *testing.T) {
	k := testKernel(t)
	registerProbe(t, k, "/bin/probe")
	u := userTask(k, 1000, 100)
	var parentOut strings.Builder
	u.Stdout = &parentOut

	res, err := k.Spawn(u, "/bin/probe", nil, nil, SpawnOpts{Capture: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout == "" {
		t.Fatal("captured stdout empty")
	}
	if parentOut.Len() != 0 {
		t.Fatalf("capture mode leaked output to the parent terminal: %q", parentOut.String())
	}
}
