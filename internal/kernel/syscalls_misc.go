package kernel

import (
	"time"

	"protego/internal/errno"
	"protego/internal/lsm"
	"protego/internal/vfs"
)

// Device ioctl commands used by the studied utilities.
const (
	// PPPIOCSPARAM configures a modem session parameter (arg is a
	// [2]string{key, value}); safe parameters are grantable to
	// unprivileged users under the ppp options policy.
	PPPIOCSPARAM uint32 = 0x7401
	// PPPIOCATTACH claims a modem device for a ppp session.
	PPPIOCATTACH uint32 = 0x7402
	// PPPIOCDETACH releases a modem device.
	PPPIOCDETACH uint32 = 0x7403
	// DMGETINFO returns the full dmcrypt metadata — including key
	// material, which is why the baseline requires CAP_SYS_ADMIN and
	// why Protego abandons this ioctl for a /sys file (§4 Table 4).
	DMGETINFO uint32 = 0x7601
	// VIDIOCSMODE sets the video card control state (the X server's
	// privileged operation, obviated by KMS).
	VIDIOCSMODE uint32 = 0x7701
)

// Ioctl implements ioctl(2) on device files. The device's DAC bits are
// checked first (Protego changed /dev/ppp permissions to be more
// permissive, replacing a capability check with device file permissions);
// then the LSM mediates; then the registered device handler runs with the
// grant decision.
func (k *Kernel) Ioctl(t *Task, devPath string, cmd uint32, arg any) (err error) {
	tok, err := k.enter(t, SysIoctl)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	clean := vfs.CleanPath(devPath, t.Cwd())
	creds := t.credsRef()
	ino, err := k.FS.Lookup(creds, clean)
	if err != nil {
		return err
	}
	if !ino.Mode.IsDevice() && !ino.IsProc() {
		return errno.ENOTTY
	}
	if err := vfs.CheckAccess(creds, ino, vfs.MayRead); err != nil {
		return err
	}
	req := &lsm.IoctlRequest{Path: clean, Cmd: cmd, Arg: arg}
	dec, lerr := k.LSM.IoctlCheck(t, req)
	if dec == lsm.Deny {
		k.Auditf("ioctl denied by lsm: pid=%d uid=%d dev=%s cmd=%#x", t.PID(), t.UID(), clean, cmd)
		return denyErr(lerr, errno.EPERM)
	}
	handler := k.lookupDevice(clean)
	if handler == nil {
		return errno.ENOTTY
	}
	return handler(t, cmd, arg, dec == lsm.Grant)
}

// SigAction installs a signal handler (lmbench "sig install").
func (k *Kernel) SigAction(t *Task, sig int, handler func(int)) (err error) {
	tok, err := k.enter(t, SysSigAction)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	if sig <= 0 || sig > 64 {
		return errno.EINVAL
	}
	t.mu.Lock()
	t.sigHandlers[sig] = handler
	t.mu.Unlock()
	return nil
}

// Kill delivers a signal to the target pid. Permission follows Unix rules:
// same real/effective uid, or CAP_KILL.
func (k *Kernel) Kill(t *Task, pid, sig int) (err error) {
	tok, err := k.enter(t, SysKill)
	defer func() { k.Trace.SyscallExit(tok, err) }()
	if err != nil {
		return err
	}
	target := k.Task(pid)
	if target == nil {
		return errno.ESRCH
	}
	tc := t.credsRef()
	oc := target.credsRef()
	if tc.EUID != 0 && tc.RUID != oc.RUID && tc.EUID != oc.RUID && !t.Capable(5 /* CAP_KILL */) {
		return errno.EPERM
	}
	target.mu.Lock()
	handler := target.sigHandlers[sig]
	target.mu.Unlock()
	if handler != nil {
		handler(sig)
	}
	return nil
}

// Pipe is a unidirectional byte channel between tasks, used by the
// lmbench-style pipe latency benchmark and the shell plumbing.
type Pipe struct {
	ch chan []byte
}

// NewPipe creates a pipe with a bounded buffer.
func (k *Kernel) NewPipe() *Pipe {
	return &Pipe{ch: make(chan []byte, 64)}
}

// Write sends data into the pipe, blocking if full.
func (p *Pipe) Write(data []byte) (int, error) {
	buf := make([]byte, len(data))
	copy(buf, data)
	select {
	case p.ch <- buf:
		return len(data), nil
	case <-time.After(5 * time.Second):
		return 0, errno.EPIPE
	}
}

// Read receives the next chunk from the pipe.
func (p *Pipe) Read(timeout time.Duration) ([]byte, error) {
	select {
	case data, ok := <-p.ch:
		if !ok {
			return nil, errno.EPIPE
		}
		return data, nil
	case <-time.After(timeout):
		return nil, errno.EAGAIN
	}
}

// Close closes the write end.
func (p *Pipe) Close() { close(p.ch) }

// UnixSocketPair returns a connected pair of in-kernel byte channels
// (AF_UNIX stream semantics) for the lmbench AF_UNIX latency test.
func (k *Kernel) UnixSocketPair() (*Pipe, *Pipe) {
	return k.NewPipe(), k.NewPipe()
}

// RegisterProcFile exposes a synthetic file under /proc. Policy modules use
// this for their configuration interface; the path's parents must exist.
func (k *Kernel) RegisterProcFile(path string, mode vfs.Mode, read vfs.ProcReadFunc, write vfs.ProcWriteFunc) error {
	_, err := k.FS.CreateProc(vfs.CleanPath(path, "/"), mode, read, write)
	return err
}
