package kernel

import (
	"protego/internal/trace"
	"protego/internal/vfs"
)

// sysEnter begins tracing one syscall invocation on behalf of t, tolerating
// a nil or kernel-less task (events are then tagged pid=0 uid=-1). The
// returned token must be handed to Trace.SyscallExit on the return path.
func (k *Kernel) sysEnter(name string, t *Task) trace.SyscallToken {
	pid, uid := 0, -1
	if t != nil {
		pid, uid = t.PID(), t.UID()
	}
	return k.Trace.SyscallEnter(name, pid, uid)
}

// Trace proc paths.
const (
	// ProcTrace renders the retained trace events when read (the directory
	// doubles as a synthetic file, like /proc/self on Linux doubles as a
	// symlink).
	ProcTrace = "/proc/trace"
	// ProcTraceStats renders ring occupancy, latency histograms, and
	// decision counters.
	ProcTraceStats = ProcTrace + "/stats"
)

// InstallTraceProc exposes the tracer read-only under /proc: reading
// /proc/trace returns the event log, /proc/trace/stats the aggregate view.
// /proc must already exist (the world builder creates it in both modes so
// the observability surface never skews a mode comparison).
func (k *Kernel) InstallTraceProc() error {
	if err := k.FS.MkdirAll(vfs.RootCred, ProcTrace, 0o555, 0, 0); err != nil {
		return err
	}
	dir, err := k.FS.Lookup(vfs.RootCred, ProcTrace)
	if err != nil {
		return err
	}
	dir.ReadFn = func(vfs.Cred) ([]byte, error) {
		return []byte(k.Trace.RenderEvents(0)), nil
	}
	_, err = k.FS.CreateProc(ProcTraceStats, 0o444, func(vfs.Cred) ([]byte, error) {
		return []byte(k.Trace.RenderStats()), nil
	}, nil)
	return err
}
