package errno

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorMessages(t *testing.T) {
	if EPERM.Error() != "operation not permitted" {
		t.Fatalf("EPERM: %q", EPERM.Error())
	}
	if ENOENT.Error() != "no such file or directory" {
		t.Fatalf("ENOENT: %q", ENOENT.Error())
	}
	// Errors without a friendly message fall back to the name.
	if E2BIG.Error() != "E2BIG" {
		t.Fatalf("E2BIG: %q", E2BIG.Error())
	}
	if Errno(9999).Error() != "errno 9999" {
		t.Fatalf("unknown: %q", Errno(9999).Error())
	}
}

func TestName(t *testing.T) {
	if EACCES.Name() != "EACCES" {
		t.Fatalf("name: %q", EACCES.Name())
	}
	if Errno(9999).Name() != "errno(9999)" {
		t.Fatalf("name: %q", Errno(9999).Name())
	}
}

func TestErrorsIs(t *testing.T) {
	var err error = EPERM
	if !errors.Is(err, EPERM) {
		t.Fatal("errors.Is failed on identity")
	}
	if errors.Is(err, EACCES) {
		t.Fatal("errors.Is matched a different errno")
	}
	wrapped := fmt.Errorf("context: %w", EACCES)
	if !errors.Is(wrapped, EACCES) {
		t.Fatal("errors.Is failed through wrapping")
	}
}

func TestOf(t *testing.T) {
	if Of(nil) != 0 {
		t.Fatal("Of(nil)")
	}
	if Of(EPERM) != EPERM {
		t.Fatal("Of(EPERM)")
	}
	if Of(errors.New("other")) != 0 {
		t.Fatal("Of(non-errno)")
	}
}

func TestFromNameRoundTrip(t *testing.T) {
	// Every named errno must survive Name → FromName unchanged, and the
	// reverse direction must hold too — the fault-injection plan parser
	// and the difffuzz reproducer printer both rely on this bijection.
	for e, n := range names {
		got, ok := FromName(n)
		if !ok {
			t.Fatalf("FromName(%q) unknown", n)
		}
		if got != e {
			t.Fatalf("FromName(%q) = %d, want %d", n, got, e)
		}
		if got.Name() != n {
			t.Fatalf("Name round-trip for %q gave %q", n, got.Name())
		}
	}
}

func TestFromNameUnknown(t *testing.T) {
	for _, n := range []string{"", "ENOSUCH", "eperm", "EPERM ", "errno(9999)"} {
		if e, ok := FromName(n); ok {
			t.Fatalf("FromName(%q) unexpectedly resolved to %v", n, e)
		} else if e != 0 {
			t.Fatalf("FromName(%q) returned non-zero errno %d with ok=false", n, e)
		}
	}
}

func TestOfUnwrapsWrappedErrno(t *testing.T) {
	wrapped := fmt.Errorf("mount: %w", EBUSY)
	if Of(wrapped) != EBUSY {
		t.Fatalf("Of should see through %%w wrapping, got %v", Of(wrapped))
	}
	double := fmt.Errorf("outer: %w", wrapped)
	if Of(double) != EBUSY {
		t.Fatalf("Of should unwrap repeatedly, got %v", Of(double))
	}
}

func TestIsHelper(t *testing.T) {
	if !Is(fmt.Errorf("x: %w", EACCES), EACCES) {
		t.Fatal("Is failed through wrapping")
	}
	if Is(nil, EACCES) {
		t.Fatal("Is(nil) matched")
	}
	if Is(EPERM, EACCES) {
		t.Fatal("Is matched a different errno")
	}
}

func TestDistinctNames(t *testing.T) {
	seen := map[string]Errno{}
	for e := range names {
		n := e.Name()
		if prev, ok := seen[n]; ok {
			t.Fatalf("duplicate name %s for %d and %d", n, prev, e)
		}
		seen[n] = e
	}
}
