package errno

import (
	"errors"
	"fmt"
	"testing"
)

func TestErrorMessages(t *testing.T) {
	if EPERM.Error() != "operation not permitted" {
		t.Fatalf("EPERM: %q", EPERM.Error())
	}
	if ENOENT.Error() != "no such file or directory" {
		t.Fatalf("ENOENT: %q", ENOENT.Error())
	}
	// Errors without a friendly message fall back to the name.
	if E2BIG.Error() != "E2BIG" {
		t.Fatalf("E2BIG: %q", E2BIG.Error())
	}
	if Errno(9999).Error() != "errno 9999" {
		t.Fatalf("unknown: %q", Errno(9999).Error())
	}
}

func TestName(t *testing.T) {
	if EACCES.Name() != "EACCES" {
		t.Fatalf("name: %q", EACCES.Name())
	}
	if Errno(9999).Name() != "errno(9999)" {
		t.Fatalf("name: %q", Errno(9999).Name())
	}
}

func TestErrorsIs(t *testing.T) {
	var err error = EPERM
	if !errors.Is(err, EPERM) {
		t.Fatal("errors.Is failed on identity")
	}
	if errors.Is(err, EACCES) {
		t.Fatal("errors.Is matched a different errno")
	}
	wrapped := fmt.Errorf("context: %w", EACCES)
	if !errors.Is(wrapped, EACCES) {
		t.Fatal("errors.Is failed through wrapping")
	}
}

func TestOf(t *testing.T) {
	if Of(nil) != 0 {
		t.Fatal("Of(nil)")
	}
	if Of(EPERM) != EPERM {
		t.Fatal("Of(EPERM)")
	}
	if Of(errors.New("other")) != 0 {
		t.Fatal("Of(non-errno)")
	}
}

func TestDistinctNames(t *testing.T) {
	seen := map[string]Errno{}
	for e := range names {
		n := e.Name()
		if prev, ok := seen[n]; ok {
			t.Fatalf("duplicate name %s for %d and %d", n, prev, e)
		}
		seen[n] = e
	}
}
