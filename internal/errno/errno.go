// Package errno defines the Unix-style error numbers used throughout the
// simulated kernel. Every syscall in the simulation reports failure with an
// Errno so that userspace utilities can reproduce the exact error behaviour
// of their Linux counterparts (e.g. the Protego setuid-on-exec mechanism
// converts a delegation failure into EPERM at exec time rather than at
// setuid time).
package errno

import (
	"errors"
	"fmt"
)

// Errno is a Unix error number. The zero value means "no error" and must
// never be returned as an error.
type Errno int

// Error numbers mirror their Linux values where it matters for tests, but
// only identity (not the numeric value) is relied upon by the simulation.
const (
	EPERM        Errno = 1  // Operation not permitted
	ENOENT       Errno = 2  // No such file or directory
	ESRCH        Errno = 3  // No such process
	EINTR        Errno = 4  // Interrupted system call
	EIO          Errno = 5  // I/O error
	ENXIO        Errno = 6  // No such device or address
	E2BIG        Errno = 7  // Argument list too long
	ENOEXEC      Errno = 8  // Exec format error
	EBADF        Errno = 9  // Bad file number
	ECHILD       Errno = 10 // No child processes
	EAGAIN       Errno = 11 // Try again
	ENOMEM       Errno = 12 // Out of memory
	EACCES       Errno = 13 // Permission denied
	EFAULT       Errno = 14 // Bad address
	ENOTBLK      Errno = 15 // Block device required
	EBUSY        Errno = 16 // Device or resource busy
	EEXIST       Errno = 17 // File exists
	EXDEV        Errno = 18 // Cross-device link
	ENODEV       Errno = 19 // No such device
	ENOTDIR      Errno = 20 // Not a directory
	EISDIR       Errno = 21 // Is a directory
	EINVAL       Errno = 22 // Invalid argument
	ENFILE       Errno = 23 // File table overflow
	EMFILE       Errno = 24 // Too many open files
	ENOTTY       Errno = 25 // Not a typewriter
	ETXTBSY      Errno = 26 // Text file busy
	EFBIG        Errno = 27 // File too large
	ENOSPC       Errno = 28 // No space left on device
	ESPIPE       Errno = 29 // Illegal seek
	EROFS        Errno = 30 // Read-only file system
	EMLINK       Errno = 31 // Too many links
	EPIPE        Errno = 32 // Broken pipe
	ERANGE       Errno = 34 // Math result not representable
	ENAMETOOLONG Errno = 36 // File name too long
	ENOSYS       Errno = 38 // Function not implemented
	ENOTEMPTY    Errno = 39 // Directory not empty
	ELOOP        Errno = 40 // Too many symbolic links encountered

	EADDRINUSE    Errno = 98  // Address already in use
	EADDRNOTAVAIL Errno = 99  // Cannot assign requested address
	ENETUNREACH   Errno = 101 // Network is unreachable
	ECONNRESET    Errno = 104 // Connection reset by peer
	ENOBUFS       Errno = 105 // No buffer space available
	EISCONN       Errno = 106 // Transport endpoint is already connected
	ENOTCONN      Errno = 107 // Transport endpoint is not connected
	ETIMEDOUT     Errno = 110 // Connection timed out
	ECONNREFUSED  Errno = 111 // Connection refused
	EHOSTUNREACH  Errno = 113 // No route to host
	EALREADY      Errno = 114 // Operation already in progress
)

var names = map[Errno]string{
	EPERM:         "EPERM",
	ENOENT:        "ENOENT",
	ESRCH:         "ESRCH",
	EINTR:         "EINTR",
	EIO:           "EIO",
	ENXIO:         "ENXIO",
	E2BIG:         "E2BIG",
	ENOEXEC:       "ENOEXEC",
	EBADF:         "EBADF",
	ECHILD:        "ECHILD",
	EAGAIN:        "EAGAIN",
	ENOMEM:        "ENOMEM",
	EACCES:        "EACCES",
	EFAULT:        "EFAULT",
	ENOTBLK:       "ENOTBLK",
	EBUSY:         "EBUSY",
	EEXIST:        "EEXIST",
	EXDEV:         "EXDEV",
	ENODEV:        "ENODEV",
	ENOTDIR:       "ENOTDIR",
	EISDIR:        "EISDIR",
	EINVAL:        "EINVAL",
	ENFILE:        "ENFILE",
	EMFILE:        "EMFILE",
	ENOTTY:        "ENOTTY",
	ETXTBSY:       "ETXTBSY",
	EFBIG:         "EFBIG",
	ENOSPC:        "ENOSPC",
	ESPIPE:        "ESPIPE",
	EROFS:         "EROFS",
	EMLINK:        "EMLINK",
	EPIPE:         "EPIPE",
	ERANGE:        "ERANGE",
	ENAMETOOLONG:  "ENAMETOOLONG",
	ENOSYS:        "ENOSYS",
	ENOTEMPTY:     "ENOTEMPTY",
	ELOOP:         "ELOOP",
	EADDRINUSE:    "EADDRINUSE",
	EADDRNOTAVAIL: "EADDRNOTAVAIL",
	ENETUNREACH:   "ENETUNREACH",
	ECONNRESET:    "ECONNRESET",
	ENOBUFS:       "ENOBUFS",
	EISCONN:       "EISCONN",
	ENOTCONN:      "ENOTCONN",
	ETIMEDOUT:     "ETIMEDOUT",
	ECONNREFUSED:  "ECONNREFUSED",
	EHOSTUNREACH:  "EHOSTUNREACH",
	EALREADY:      "EALREADY",
}

var messages = map[Errno]string{
	EPERM:        "operation not permitted",
	ENOENT:       "no such file or directory",
	ESRCH:        "no such process",
	EACCES:       "permission denied",
	EBUSY:        "device or resource busy",
	EEXIST:       "file exists",
	ENODEV:       "no such device",
	ENOTDIR:      "not a directory",
	EISDIR:       "is a directory",
	EINVAL:       "invalid argument",
	EBADF:        "bad file descriptor",
	EADDRINUSE:   "address already in use",
	ENETUNREACH:  "network is unreachable",
	ECONNREFUSED: "connection refused",
	EROFS:        "read-only file system",
	ENOSYS:       "function not implemented",
	ENOTEMPTY:    "directory not empty",
	ENOTTY:       "inappropriate ioctl for device",
}

// Error implements the error interface.
func (e Errno) Error() string {
	if msg, ok := messages[e]; ok {
		return msg
	}
	if name, ok := names[e]; ok {
		return name
	}
	return fmt.Sprintf("errno %d", int(e))
}

// Name returns the symbolic constant name, e.g. "EPERM".
func (e Errno) Name() string {
	if name, ok := names[e]; ok {
		return name
	}
	return fmt.Sprintf("errno(%d)", int(e))
}

// Is reports whether err is (or wraps) the receiver. It allows
// errors.Is(err, errno.EPERM) comparisons on wrapped syscall errors.
func (e Errno) Is(err error) bool {
	other, ok := err.(Errno)
	return ok && other == e
}

// Is reports whether err is, or wraps, the error number e. It is the
// package-level spelling of errors.Is(err, e) used by tests and the fault
// sweep: errno.Is(err, errno.EACCES).
func Is(err error, e Errno) bool {
	return errors.Is(err, e)
}

// Of extracts the Errno from err (unwrapping as needed), returning 0 if
// err is nil or carries no Errno.
func Of(err error) Errno {
	if err == nil {
		return 0
	}
	var e Errno
	if errors.As(err, &e) {
		return e
	}
	return 0
}

var byName = func() map[string]Errno {
	m := make(map[string]Errno, len(names))
	for e, n := range names {
		m[n] = e
	}
	return m
}()

// FromName resolves a symbolic constant name such as "EPERM" to its Errno.
// It is used by the fault-injection plan parser.
func FromName(name string) (Errno, bool) {
	e, ok := byName[name]
	return e, ok
}
