package trace

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestFastpathCounterRegistryReadsLazily(t *testing.T) {
	tr := New(16)
	var n atomic.Uint64
	tr.RegisterCounter("dcache.hit", n.Load)
	n.Store(7)
	if got := tr.FastpathCounters()["dcache.hit"]; got != 7 {
		t.Fatalf("dcache.hit = %d, want 7 (must read at snapshot time)", got)
	}
	n.Add(3)
	if got := tr.FastpathCounters()["dcache.hit"]; got != 10 {
		t.Fatalf("dcache.hit = %d, want 10", got)
	}
}

func TestFastpathCounterReplaceAndNilSafety(t *testing.T) {
	tr := New(16)
	tr.RegisterCounter("x", func() uint64 { return 1 })
	tr.RegisterCounter("x", func() uint64 { return 2 })
	if got := tr.FastpathCounters()["x"]; got != 2 {
		t.Fatalf("x = %d, want 2 (re-registration replaces the reader)", got)
	}
	var nilTr *Tracer
	nilTr.RegisterCounter("x", func() uint64 { return 1 })
	if m := nilTr.FastpathCounters(); m != nil {
		t.Fatalf("nil tracer FastpathCounters = %v, want nil", m)
	}
	tr.RegisterCounter("nil-reader", nil) // must not panic at read time
	_ = tr.FastpathCounters()
}

func TestRenderStatsFastpathSection(t *testing.T) {
	tr := New(16)
	out := tr.RenderStats()
	if strings.Contains(out, "fastpath counters:") {
		t.Fatal("empty registry must not render a fastpath section")
	}
	tr.RegisterCounter("dcache.hit", func() uint64 { return 9 })
	tr.RegisterCounter("dcache.miss", func() uint64 { return 1 })
	tr.RegisterCounter("mountidx.hit", func() uint64 { return 5 })
	out = tr.RenderStats()
	for _, want := range []string{
		"fastpath counters:", "dcache.hit", "dcache.miss", "mountidx.hit",
		"dcache.hit_ratio", "0.9000",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderStats missing %q:\n%s", want, out)
		}
	}
}
