package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Ring is a fixed-capacity, overwrite-oldest event buffer. The write cursor
// is a single atomic counter, so claiming a slot never contends on a lock
// shared with other writers; each slot carries its own tiny mutex that only
// serializes the (rare) case of a writer lapping a concurrent reader or a
// slower writer on the same slot. Capacity is always a power of two so the
// slot index is a mask, not a division.
type Ring struct {
	slots []Event
	locks []sync.Mutex
	mask  uint64
	// cursor is the next sequence number to be claimed; it only grows.
	cursor atomic.Uint64
}

// NewRing creates a ring with at least the requested capacity, rounded up
// to a power of two (minimum 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring{
		slots: make([]Event, n),
		locks: make([]sync.Mutex, n),
		mask:  uint64(n - 1),
	}
}

// Cap returns the ring capacity (a power of two).
func (r *Ring) Cap() int { return len(r.slots) }

// Append claims the next sequence number and stores the event, overwriting
// the event cap slots older. It returns the assigned sequence number.
func (r *Ring) Append(ev Event) uint64 {
	seq := r.cursor.Add(1) - 1
	ev.Seq = seq
	i := seq & r.mask
	r.locks[i].Lock()
	// A slower writer holding an older claim for this slot must not
	// clobber a newer event that already landed (the cursor, not arrival
	// order, defines age).
	if r.slots[i].Seq <= seq || r.slots[i].Time.IsZero() {
		r.slots[i] = ev
	}
	r.locks[i].Unlock()
	return seq
}

// Emitted returns the total number of events ever appended.
func (r *Ring) Emitted() uint64 { return r.cursor.Load() }

// Dropped returns how many events have been overwritten (emitted beyond
// capacity). Concurrent in-flight writes may transiently make the retained
// snapshot smaller than Emitted-Dropped; once writers quiesce the identity
// retained == Emitted() - Dropped() holds exactly.
func (r *Ring) Dropped() uint64 {
	n := r.cursor.Load()
	c := uint64(len(r.slots))
	if n <= c {
		return 0
	}
	return n - c
}

// Snapshot copies the retained events in sequence order (oldest first).
// Slots mid-overwrite by a concurrent writer are skipped rather than
// returned torn.
func (r *Ring) Snapshot() []Event {
	cur := r.cursor.Load()
	c := uint64(len(r.slots))
	start := uint64(0)
	if cur > c {
		start = cur - c
	}
	out := make([]Event, 0, cur-start)
	for seq := start; seq < cur; seq++ {
		i := seq & r.mask
		r.locks[i].Lock()
		ev := r.slots[i]
		r.locks[i].Unlock()
		// The slot may hold an older event (writer claimed seq but has
		// not stored yet) or a newer one (we were lapped); keep only
		// events still inside the snapshot window, dropping duplicates
		// below.
		if ev.Time.IsZero() || ev.Seq < start || ev.Seq >= cur {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	// Deduplicate: lapped reads can observe the same slot generation via
	// two window positions.
	dedup := out[:0]
	for i, ev := range out {
		if i == 0 || ev.Seq != out[i-1].Seq {
			dedup = append(dedup, ev)
		}
	}
	return dedup
}
