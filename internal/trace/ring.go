package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ringChunkShift sets the chunk granularity: 32 events per chunk keeps
// the first-emit allocation a few KB (small-object malloc, no large-span
// zeroing) instead of the whole ring.
const (
	ringChunkShift = 5
	ringChunkSize  = 1 << ringChunkShift
)

// ringChunk is one lazily-allocated span of slots. Each slot carries its
// own tiny mutex that only serializes the (rare) case of a writer lapping
// a concurrent reader or a slower writer on the same slot.
type ringChunk struct {
	slots [ringChunkSize]Event
	locks [ringChunkSize]sync.Mutex
}

// Ring is a fixed-capacity, overwrite-oldest event buffer. The write cursor
// is a single atomic counter, so claiming a slot never contends on a lock
// shared with other writers. Capacity is always a power of two so the slot
// index is a mask, not a division.
//
// Slot storage is allocated in chunks on first touch: a tracer that never
// emits costs a few words, and one that emits a little pays for one chunk,
// not capacity*sizeof(Event). This is what keeps machine snapshots cheap —
// every cloned kernel gets its own tracer, and most machines in a big
// fleet only ever emit a handful of events.
type Ring struct {
	capacity int
	mask     uint64
	chunks   []atomic.Pointer[ringChunk]
	// cursor is the next sequence number to be claimed; it only grows.
	cursor atomic.Uint64
}

// NewRing creates a ring with at least the requested capacity, rounded up
// to a power of two (minimum 2). No slot storage is allocated until the
// first Append.
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	nChunks := n >> ringChunkShift
	if nChunks == 0 {
		nChunks = 1
	}
	return &Ring{capacity: n, mask: uint64(n - 1), chunks: make([]atomic.Pointer[ringChunk], nChunks)}
}

// Cap returns the ring capacity (a power of two).
func (r *Ring) Cap() int { return r.capacity }

// chunkFor returns slot i's chunk, installing it on first use. Losing the
// install race just means using the winner's chunk.
func (r *Ring) chunkFor(i uint64) *ringChunk {
	p := &r.chunks[i>>ringChunkShift]
	if c := p.Load(); c != nil {
		return c
	}
	fresh := &ringChunk{}
	if p.CompareAndSwap(nil, fresh) {
		return fresh
	}
	return p.Load()
}

// Append claims the next sequence number and stores the event, overwriting
// the event cap slots older. It returns the assigned sequence number.
func (r *Ring) Append(ev Event) uint64 {
	seq := r.cursor.Add(1) - 1
	ev.Seq = seq
	i := seq & r.mask
	c := r.chunkFor(i)
	j := i & (ringChunkSize - 1)
	c.locks[j].Lock()
	// A slower writer holding an older claim for this slot must not
	// clobber a newer event that already landed (the cursor, not arrival
	// order, defines age).
	if c.slots[j].Seq <= seq || c.slots[j].Time.IsZero() {
		c.slots[j] = ev
	}
	c.locks[j].Unlock()
	return seq
}

// Emitted returns the total number of events ever appended.
func (r *Ring) Emitted() uint64 { return r.cursor.Load() }

// Dropped returns how many events have been overwritten (emitted beyond
// capacity). Concurrent in-flight writes may transiently make the retained
// snapshot smaller than Emitted-Dropped; once writers quiesce the identity
// retained == Emitted() - Dropped() holds exactly.
func (r *Ring) Dropped() uint64 {
	n := r.cursor.Load()
	c := uint64(r.capacity)
	if n <= c {
		return 0
	}
	return n - c
}

// Snapshot copies the retained events in sequence order (oldest first).
// Slots mid-overwrite by a concurrent writer are skipped rather than
// returned torn.
func (r *Ring) Snapshot() []Event {
	cur := r.cursor.Load()
	c := uint64(r.capacity)
	start := uint64(0)
	if cur > c {
		start = cur - c
	}
	out := make([]Event, 0, cur-start)
	for seq := start; seq < cur; seq++ {
		i := seq & r.mask
		// A nil chunk holds no stored events — at worst a writer has
		// claimed a seq here but not installed storage yet, which is the
		// same claimed-but-unstored case skipped below.
		ch := r.chunks[i>>ringChunkShift].Load()
		if ch == nil {
			continue
		}
		j := i & (ringChunkSize - 1)
		ch.locks[j].Lock()
		ev := ch.slots[j]
		ch.locks[j].Unlock()
		// The slot may hold an older event (writer claimed seq but has
		// not stored yet) or a newer one (we were lapped); keep only
		// events still inside the snapshot window, dropping duplicates
		// below.
		if ev.Time.IsZero() || ev.Seq < start || ev.Seq >= cur {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	// Deduplicate: lapped reads can observe the same slot generation via
	// two window positions.
	dedup := out[:0]
	for i, ev := range out {
		if i == 0 || ev.Seq != out[i-1].Seq {
			dedup = append(dedup, ev)
		}
	}
	return dedup
}
