package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the default ring size: 4096 events (a power of two).
// This is also the retention cap of the legacy kernel audit log, which is
// a filtered view of the same ring.
const DefaultCapacity = 4096

// CounterKey identifies one (hook, module, decision) decision counter.
type CounterKey struct {
	Hook     string
	Module   string
	Decision string
}

// Tracer owns the event ring, the latency histograms, and the decision
// counters. One tracer is created per simulated kernel; every producer in
// the kernel emits through it. All methods are safe for concurrent use.
type Tracer struct {
	ring *Ring

	// emitted counts events per kind (never decremented), so consumers
	// can compute per-kind drop counts against a ring snapshot.
	emitted [numKinds]atomic.Uint64

	histMu sync.RWMutex
	hists  map[string]*Histogram

	// counters maps CounterKey → sharded atomic slot (see counters.go).
	// The map is a copy-on-write snapshot: ctrMu serializes only the
	// slow path that introduces a new key.
	ctrMu    sync.Mutex
	counters atomic.Pointer[map[CounterKey]*ctrSlot]

	// fastpath holds lazily-read monotonic counters registered by the
	// kernel's fast-path layers (dcache, compiled policy indexes). The
	// owning subsystem keeps the hot atomic; the tracer only reads it at
	// snapshot/render time, so registration adds zero hot-path cost.
	fpMu     sync.RWMutex
	fastpath map[string]func() uint64
}

// New creates a tracer whose ring holds at least capacity events
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	tr := &Tracer{
		ring:     NewRing(capacity),
		hists:    make(map[string]*Histogram),
		fastpath: make(map[string]func() uint64),
	}
	empty := make(map[CounterKey]*ctrSlot)
	tr.counters.Store(&empty)
	return tr
}

// RegisterCounter registers a named fast-path counter whose value is read
// lazily (at render/snapshot time) through the supplied function. The
// subsystem owning the counter keeps the hot atomic and pays nothing per
// event. Registering an existing name replaces the reader.
func (tr *Tracer) RegisterCounter(name string, read func() uint64) {
	if tr == nil || read == nil {
		return
	}
	tr.fpMu.Lock()
	tr.fastpath[name] = read
	tr.fpMu.Unlock()
}

// FastpathCounters reads every registered fast-path counter.
func (tr *Tracer) FastpathCounters() map[string]uint64 {
	if tr == nil {
		return nil
	}
	tr.fpMu.RLock()
	readers := make(map[string]func() uint64, len(tr.fastpath))
	for k, f := range tr.fastpath {
		readers[k] = f
	}
	tr.fpMu.RUnlock()
	out := make(map[string]uint64, len(readers))
	for k, f := range readers {
		out[k] = f()
	}
	return out
}

// Emit stamps and appends an arbitrary event.
func (tr *Tracer) Emit(ev Event) {
	if tr == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if ev.Kind < numKinds {
		tr.emitted[ev.Kind].Add(1)
	}
	tr.ring.Append(ev)
}

// SyscallToken carries the state between a syscall's enter and exit event.
type SyscallToken struct {
	name  string
	pid   int
	uid   int
	start time.Time
}

// SyscallEnter emits the enter event and returns the token the matching
// SyscallExit consumes.
func (tr *Tracer) SyscallEnter(name string, pid, uid int) SyscallToken {
	tok := SyscallToken{name: name, pid: pid, uid: uid, start: time.Now()}
	if tr != nil {
		tr.Emit(Event{Kind: KindSyscallEnter, Name: name, PID: pid, UID: uid, Time: tok.start})
	}
	return tok
}

// SyscallExit emits the exit event, records the latency in the syscall's
// histogram, and tags the event with the error, if any.
func (tr *Tracer) SyscallExit(tok SyscallToken, err error) {
	if tr == nil {
		return
	}
	lat := time.Since(tok.start)
	ev := Event{Kind: KindSyscallExit, Name: tok.name, PID: tok.pid, UID: tok.uid, Latency: lat}
	if err != nil {
		ev.Err = err.Error()
	}
	tr.Emit(ev)
	tr.histogram("syscall", tok.name).Observe(lat)
}

// LSMDecision records one chain hook evaluation: the final decision, the
// module whose opinion won (empty for base policy), and the hook latency.
func (tr *Tracer) LSMDecision(hook string, pid, uid int, decision, winner string, err error, lat time.Duration) {
	if tr == nil {
		return
	}
	ev := Event{Kind: KindLSMDecision, Name: hook, PID: pid, UID: uid,
		Module: winner, Decision: decision, Latency: lat}
	if err != nil {
		ev.Err = err.Error()
	}
	tr.Emit(ev)
	tr.histogram("lsm", hook).Observe(lat)
}

// CountDecision bumps the (hook, module, decision) counter — one bump per
// module consulted, independent of which module won the chain. The bump
// is lock-free after a key's first use: a snapshot map read plus one
// atomic add on a random stripe of the key's sharded slot.
func (tr *Tracer) CountDecision(hook, module, decision string) {
	if tr == nil {
		return
	}
	tr.slotFor(CounterKey{Hook: hook, Module: module, Decision: decision}).bump()
}

// NetfilterVerdict records an OUTPUT-chain verdict; rule is the matching
// rule name (empty when the chain's default policy applied).
func (tr *Tracer) NetfilterVerdict(chain, rule, verdict string, senderUID int) {
	if tr == nil {
		return
	}
	tr.Emit(Event{Kind: KindNetfilterVerdict, Name: chain, UID: senderUID,
		Module: rule, Decision: verdict})
	tr.CountDecision("netfilter:"+chain, ruleOrPolicy(rule), verdict)
}

func ruleOrPolicy(rule string) string {
	if rule == "" {
		return "(policy)"
	}
	return rule
}

// MonitordSync stamps one monitoring-daemon reparse/push cycle.
func (tr *Tracer) MonitordSync(target string, lat time.Duration, err error) {
	if tr == nil {
		return
	}
	ev := Event{Kind: KindMonitordSync, Name: target, Latency: lat}
	if err != nil {
		ev.Err = err.Error()
	}
	tr.Emit(ev)
	tr.histogram("monitord", target).Observe(lat)
}

// AuthCheck records an authentication-service check: mechanism is
// "password", "recency", or "group"; subject is the user or group name.
func (tr *Tracer) AuthCheck(mechanism, subject string, pid, uid int, ok bool) {
	if tr == nil {
		return
	}
	outcome := "ok"
	if !ok {
		outcome = "fail"
	}
	tr.Emit(Event{Kind: KindAuthCheck, Name: subject, PID: pid, UID: uid,
		Module: mechanism, Decision: outcome})
	tr.CountDecision("auth:"+mechanism, mechanism, outcome)
}

// FaultInject records one deliberate fault injection: site is the
// registered injection site, action the fault kind ("err", "drop", "dup",
// "torn"), errname the injected errno's symbolic name (empty for non-error
// actions), and hit the site's 1-based hit count at injection time. The
// record is what makes a failing sweep run replayable.
func (tr *Tracer) FaultInject(site, action, errname string, hit uint64) {
	if tr == nil {
		return
	}
	tr.Emit(Event{Kind: KindFaultInject, Name: site, Module: action,
		Err: errname, Msg: fmt.Sprintf("hit=%d", hit)})
	tr.CountDecision("fault:"+site, action, "injected")
}

// Audit emits a legacy audit line as a structured event.
func (tr *Tracer) Audit(msg string) {
	if tr == nil {
		return
	}
	tr.Emit(Event{Kind: KindAudit, Msg: msg})
}

// histogram returns the named histogram, creating it on first use. Names
// are namespaced "<group>:<name>" internally.
func (tr *Tracer) histogram(group, name string) *Histogram {
	key := group + ":" + name
	tr.histMu.RLock()
	h := tr.hists[key]
	tr.histMu.RUnlock()
	if h != nil {
		return h
	}
	tr.histMu.Lock()
	defer tr.histMu.Unlock()
	if h = tr.hists[key]; h == nil {
		h = &Histogram{}
		tr.hists[key] = h
	}
	return h
}

// --- consumer API ---

// Snapshot returns the retained events, oldest first.
func (tr *Tracer) Snapshot() []Event { return tr.ring.Snapshot() }

// SnapshotKind returns the retained events of one kind, oldest first.
func (tr *Tracer) SnapshotKind(k Kind) []Event {
	all := tr.ring.Snapshot()
	out := make([]Event, 0, len(all))
	for _, ev := range all {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// Histogram returns the latency stats for one syscall (zero stats when the
// syscall was never observed).
func (tr *Tracer) Histogram(syscall string) HistStats {
	return tr.histStats("syscall:" + syscall)
}

// HookHistogram returns the latency stats for one LSM hook.
func (tr *Tracer) HookHistogram(hook string) HistStats {
	return tr.histStats("lsm:" + hook)
}

func (tr *Tracer) histStats(key string) HistStats {
	tr.histMu.RLock()
	h := tr.hists[key]
	tr.histMu.RUnlock()
	if h == nil {
		return HistStats{}
	}
	return h.Stats()
}

// Histograms returns every histogram's stats keyed by "<group>:<name>".
func (tr *Tracer) Histograms() map[string]HistStats {
	tr.histMu.RLock()
	keys := make([]string, 0, len(tr.hists))
	for k := range tr.hists {
		keys = append(keys, k)
	}
	tr.histMu.RUnlock()
	out := make(map[string]HistStats, len(keys))
	for _, k := range keys {
		out[k] = tr.histStats(k)
	}
	return out
}

// Counters returns a copy of the decision counters, merging each key's
// stripes into a single total.
func (tr *Tracer) Counters() map[CounterKey]uint64 {
	snap := *tr.counters.Load()
	out := make(map[CounterKey]uint64, len(snap))
	for k, slot := range snap {
		out[k] = slot.sum()
	}
	return out
}

// Stats summarizes ring occupancy.
type Stats struct {
	Capacity int
	Emitted  uint64
	Dropped  uint64
	// ByKind counts emissions per kind name.
	ByKind map[string]uint64
}

// Stats returns ring occupancy and per-kind emission counts.
func (tr *Tracer) Stats() Stats {
	s := Stats{
		Capacity: tr.ring.Cap(),
		Emitted:  tr.ring.Emitted(),
		Dropped:  tr.ring.Dropped(),
		ByKind:   make(map[string]uint64, numKinds),
	}
	for i := 0; i < numKinds; i++ {
		s.ByKind[Kind(i).String()] = tr.emitted[i].Load()
	}
	return s
}

// EmittedKind returns how many events of one kind were ever emitted.
func (tr *Tracer) EmittedKind(k Kind) uint64 { return tr.emitted[k].Load() }

// --- rendering (the /proc/trace files and the CLI report) ---

// RenderEvents renders the newest max retained events (all when max <= 0)
// as one line per event, oldest first.
func (tr *Tracer) RenderEvents(max int) string {
	evs := tr.Snapshot()
	if max > 0 && len(evs) > max {
		evs = evs[len(evs)-max:]
	}
	var b strings.Builder
	for _, ev := range evs {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderStats renders ring stats, latency histograms, and decision
// counters as the /proc/trace/stats text.
func (tr *Tracer) RenderStats() string {
	var b strings.Builder
	s := tr.Stats()
	fmt.Fprintf(&b, "ring: capacity=%d emitted=%d dropped=%d\n", s.Capacity, s.Emitted, s.Dropped)
	for _, kind := range KindNames() {
		fmt.Fprintf(&b, "emitted[%s]: %d\n", kind, s.ByKind[kind])
	}

	hists := tr.Histograms()
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		b.WriteString("\nlatency histograms (log2 ns buckets):\n")
		for _, k := range keys {
			st := hists[k]
			fmt.Fprintf(&b, "  %-28s %s  %s\n", k, st.String(), st.Sparkline())
		}
	}

	ctrs := tr.Counters()
	ckeys := make([]CounterKey, 0, len(ctrs))
	for k := range ctrs {
		ckeys = append(ckeys, k)
	}
	sort.Slice(ckeys, func(i, j int) bool {
		a, b := ckeys[i], ckeys[j]
		if a.Hook != b.Hook {
			return a.Hook < b.Hook
		}
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		return a.Decision < b.Decision
	})
	if len(ckeys) > 0 {
		b.WriteString("\ndecision counters:\n")
		for _, k := range ckeys {
			fmt.Fprintf(&b, "  %-24s %-16s %-14s %d\n", k.Hook, k.Module, k.Decision, ctrs[k])
		}
	}

	if fp := tr.FastpathCounters(); len(fp) > 0 {
		fkeys := make([]string, 0, len(fp))
		for k := range fp {
			fkeys = append(fkeys, k)
		}
		sort.Strings(fkeys)
		b.WriteString("\nfastpath counters:\n")
		for _, k := range fkeys {
			fmt.Fprintf(&b, "  %-24s %d\n", k, fp[k])
		}
		if total := fp["dcache.hit"] + fp["dcache.miss"]; total > 0 {
			fmt.Fprintf(&b, "  %-24s %.4f\n", "dcache.hit_ratio", float64(fp["dcache.hit"])/float64(total))
		}
	}
	return b.String()
}
