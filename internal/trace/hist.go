package trace

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-spaced latency buckets: bucket i counts
// durations in [2^i, 2^(i+1)) nanoseconds, so the histogram spans 1ns up to
// ~34s (2^35 ns) with one final overflow bucket — wide enough for any
// simulated syscall and cheap enough to keep per syscall name.
const histBuckets = 36

// Histogram is a lock-free log-spaced latency histogram. All fields are
// updated with atomics; snapshots are read without stopping writers.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	for {
		old := h.maxNs.Load()
		if d.Nanoseconds() <= old || h.maxNs.CompareAndSwap(old, d.Nanoseconds()) {
			break
		}
	}
}

// HistStats is a point-in-time summary of a histogram.
type HistStats struct {
	Count uint64
	// MeanNs, P50Ns, P95Ns, P99Ns, MaxNs are nanoseconds; the quantiles
	// are bucket-interpolated (geometric midpoint of the landing bucket).
	MeanNs float64
	P50Ns  float64
	P95Ns  float64
	P99Ns  float64
	MaxNs  int64
	// Buckets holds the per-bucket counts for consumers that want the
	// full shape (index i covers [2^i, 2^(i+1)) ns).
	Buckets [histBuckets]uint64
}

// Stats summarizes the histogram.
func (h *Histogram) Stats() HistStats {
	var s HistStats
	for i := range h.counts {
		s.Buckets[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.MaxNs = h.maxNs.Load()
	if s.Count == 0 {
		return s
	}
	s.MeanNs = float64(h.sumNs.Load()) / float64(s.Count)
	s.P50Ns = quantile(s.Buckets[:], s.Count, 0.50)
	s.P95Ns = quantile(s.Buckets[:], s.Count, 0.95)
	s.P99Ns = quantile(s.Buckets[:], s.Count, 0.99)
	return s
}

// quantile returns the bucket-interpolated q-quantile in nanoseconds.
func quantile(buckets []uint64, total uint64, q float64) float64 {
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range buckets {
		cum += c
		if cum >= target {
			lo := float64(uint64(1) << uint(i))
			return lo * math.Sqrt2 // geometric midpoint of [2^i, 2^(i+1))
		}
	}
	return float64(uint64(1) << uint(len(buckets)-1))
}

// String renders "count mean/p50/p99/max".
func (s HistStats) String() string {
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, fmtNs(s.MeanNs), fmtNs(s.P50Ns), fmtNs(s.P95Ns), fmtNs(s.P99Ns), fmtNs(float64(s.MaxNs)))
}

// Sparkline renders the occupied bucket range as a compact bar string, the
// ftrace-histogram look: one glyph per bucket between the first and last
// non-empty bucket.
func (s HistStats) Sparkline() string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	first, last := -1, -1
	var peak uint64
	for i, c := range s.Buckets {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
			if c > peak {
				peak = c
			}
		}
	}
	if first < 0 {
		return ""
	}
	out := make([]rune, 0, last-first+1)
	for i := first; i <= last; i++ {
		c := s.Buckets[i]
		if c == 0 {
			out = append(out, ' ')
			continue
		}
		idx := int(float64(len(glyphs)-1) * float64(c) / float64(peak))
		out = append(out, glyphs[idx])
	}
	return string(out)
}

// fmtNs renders nanoseconds with an adaptive unit.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
