package trace

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingCapacityRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {4096, 4096},
	}
	for _, c := range cases {
		if got := NewRing(c.in).Cap(); got != c.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestRingOverwriteOldest(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Kind: KindAudit, Msg: "m", Time: time.Now()})
	}
	if r.Emitted() != 10 {
		t.Fatalf("Emitted = %d, want 10", r.Emitted())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(evs))
	}
	// Oldest retained event is seq 6; sequence must be dense and ordered.
	for i, ev := range evs {
		if ev.Seq != uint64(6+i) {
			t.Errorf("Snapshot[%d].Seq = %d, want %d", i, ev.Seq, 6+i)
		}
	}
}

func TestRingSnapshotBeforeWrap(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 3; i++ {
		r.Append(Event{Kind: KindAudit, Time: time.Now()})
	}
	if got := len(r.Snapshot()); got != 3 {
		t.Fatalf("Snapshot len = %d, want 3", got)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

// TestRingConcurrentWriters is the satellite concurrency property: parallel
// writers must not corrupt the cursor or lose more events than the drop
// counter accounts for. Run with -race.
func TestRingConcurrentWriters(t *testing.T) {
	const (
		writers  = 8
		perWriter = 5000
	)
	r := NewRing(1024)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Append(Event{Kind: KindSyscallExit, Name: "getpid", PID: w, Time: time.Now()})
			}
		}(w)
	}
	// Concurrent readers exercise the torn-slot path.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)

	if got := r.Emitted(); got != writers*perWriter {
		t.Fatalf("Emitted = %d, want %d (cursor corrupted)", got, writers*perWriter)
	}
	// After writers quiesce the identity retained == emitted - dropped
	// holds exactly.
	evs := r.Snapshot()
	want := r.Emitted() - r.Dropped()
	if uint64(len(evs)) != want {
		t.Fatalf("retained %d events, want emitted-dropped = %d", len(evs), want)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("snapshot not dense at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{100, 200, 400, 800, 1600} {
		h.Observe(d * time.Nanosecond)
	}
	s := h.Stats()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.MeanNs != 620 {
		t.Fatalf("MeanNs = %v, want 620", s.MeanNs)
	}
	if s.MaxNs != 1600 {
		t.Fatalf("MaxNs = %d, want 1600", s.MaxNs)
	}
	// p50 lands in the bucket of 400ns ([256,512)).
	if s.P50Ns < 256 || s.P50Ns >= 512 {
		t.Fatalf("P50Ns = %v, want within [256,512)", s.P50Ns)
	}
	// p99 lands in the bucket of 1600ns ([1024,2048)).
	if s.P99Ns < 1024 || s.P99Ns >= 2048 {
		t.Fatalf("P99Ns = %v, want within [1024,2048)", s.P99Ns)
	}
	if s.Sparkline() == "" {
		t.Fatal("Sparkline empty for non-empty histogram")
	}
}

func TestHistogramZeroAndOverflow(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(time.Duration(1) << 62)
	s := h.Stats()
	if s.Buckets[0] != 1 {
		t.Errorf("zero duration not in bucket 0")
	}
	if s.Buckets[histBuckets-1] != 1 {
		t.Errorf("huge duration not in overflow bucket")
	}
}

func TestTracerSyscallRoundTrip(t *testing.T) {
	tr := New(64)
	tok := tr.SyscallEnter("open", 42, 1000)
	tr.SyscallExit(tok, errors.New("EACCES"))

	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(evs))
	}
	if evs[0].Kind != KindSyscallEnter || evs[1].Kind != KindSyscallExit {
		t.Fatalf("kinds = %v %v", evs[0].Kind, evs[1].Kind)
	}
	if evs[1].Err != "EACCES" {
		t.Fatalf("exit Err = %q", evs[1].Err)
	}
	if evs[1].PID != 42 || evs[1].UID != 1000 {
		t.Fatalf("exit pid/uid = %d/%d", evs[1].PID, evs[1].UID)
	}
	h := tr.Histogram("open")
	if h.Count != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count)
	}
	if tr.Histogram("never-called").Count != 0 {
		t.Fatal("unknown syscall should report zero stats")
	}
}

func TestTracerCountersAndStats(t *testing.T) {
	tr := New(64)
	tr.LSMDecision("MountCheck", 1, 1000, "grant", "protego", nil, time.Microsecond)
	tr.CountDecision("MountCheck", "protego", "grant")
	tr.CountDecision("MountCheck", "protego", "grant")
	tr.CountDecision("MountCheck", "apparmor", "no-opinion")
	tr.NetfilterVerdict("OUTPUT", "drop-unpriv-raw-tcp", "DROP", 1000)
	tr.AuthCheck("password", "alice", 7, 1000, false)
	tr.Audit("mount denied")

	ctrs := tr.Counters()
	if ctrs[CounterKey{"MountCheck", "protego", "grant"}] != 2 {
		t.Fatalf("counter = %d, want 2", ctrs[CounterKey{"MountCheck", "protego", "grant"}])
	}
	s := tr.Stats()
	if s.Emitted != 4 {
		t.Fatalf("Emitted = %d, want 4", s.Emitted)
	}
	if s.ByKind["lsm"] != 1 || s.ByKind["netfilter"] != 1 || s.ByKind["auth"] != 1 || s.ByKind["audit"] != 1 {
		t.Fatalf("ByKind = %v", s.ByKind)
	}
	if tr.EmittedKind(KindAudit) != 1 {
		t.Fatalf("EmittedKind(audit) = %d", tr.EmittedKind(KindAudit))
	}

	out := tr.RenderStats()
	for _, want := range []string{"ring: capacity=64", "lsm:MountCheck", "decision counters:", "drop-unpriv-raw-tcp"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderStats missing %q:\n%s", want, out)
		}
	}
	if got := tr.RenderEvents(2); strings.Count(got, "\n") != 2 {
		t.Errorf("RenderEvents(2) returned %q", got)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tok := tr.SyscallEnter("open", 1, 2)
	tr.SyscallExit(tok, nil)
	tr.LSMDecision("MountCheck", 1, 2, "deny", "", nil, 0)
	tr.CountDecision("h", "m", "d")
	tr.NetfilterVerdict("OUTPUT", "", "ACCEPT", 0)
	tr.MonitordSync("mounts", 0, nil)
	tr.AuthCheck("password", "alice", 1, 2, true)
	tr.Audit("x")
	tr.Emit(Event{Kind: KindAudit})
}

func TestSnapshotKindFiltering(t *testing.T) {
	tr := New(64)
	tr.Audit("one")
	tr.SyscallExit(tr.SyscallEnter("open", 1, 2), nil)
	tr.Audit("two")
	audits := tr.SnapshotKind(KindAudit)
	if len(audits) != 2 || audits[0].Msg != "one" || audits[1].Msg != "two" {
		t.Fatalf("SnapshotKind(audit) = %+v", audits)
	}
}

func TestTracerConcurrentMixedUse(t *testing.T) {
	tr := New(256)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				switch i % 4 {
				case 0:
					tr.SyscallExit(tr.SyscallEnter("getpid", w, w), nil)
				case 1:
					tr.LSMDecision("FileOpen", w, w, "no-opinion", "", nil, time.Nanosecond)
				case 2:
					tr.CountDecision("FileOpen", "apparmor", "no-opinion")
				case 3:
					tr.Audit("line")
				}
				if i%512 == 0 {
					tr.Snapshot()
					tr.Histograms()
					tr.Counters()
					tr.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	if tr.Histogram("getpid").Count != 6*500 {
		t.Fatalf("getpid histogram count = %d, want %d", tr.Histogram("getpid").Count, 6*500)
	}
}

// BenchmarkEmission measures the cost the trace layer adds to one simulated
// syscall (an enter/exit pair plus the histogram observation). The
// acceptance bar is < 1µs per event pair.
func BenchmarkEmission(b *testing.B) {
	tr := New(DefaultCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.SyscallExit(tr.SyscallEnter("getpid", 1, 1000), nil)
	}
}

// BenchmarkEmissionParallel exercises contended emission.
func BenchmarkEmissionParallel(b *testing.B) {
	tr := New(DefaultCapacity)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			tr.SyscallExit(tr.SyscallEnter("getpid", 1, 1000), nil)
		}
	})
}

// BenchmarkRingAppend isolates the ring's append path.
func BenchmarkRingAppend(b *testing.B) {
	r := NewRing(DefaultCapacity)
	ev := Event{Kind: KindAudit, Name: "x", Time: time.Now()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Append(ev)
	}
}

// TestShardedCountersExact checks that the sharded decision counters
// lose no increments under parallel writers: N goroutines bumping the
// same key and disjoint keys must merge to exact totals, and existing
// slots must survive the copy-on-write publication of new keys.
func TestShardedCountersExact(t *testing.T) {
	tr := New(64)
	const (
		writers = 8
		bumps   = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			own := fmt.Sprintf("writer-%d", w)
			for i := 0; i < bumps; i++ {
				tr.CountDecision("Shared", "module", "grant")
				tr.CountDecision("Private", own, "grant")
				if i%100 == 0 {
					// New keys force COW snapshot publication mid-run.
					tr.CountDecision("Churn", own, fmt.Sprintf("d%d", i))
				}
			}
		}()
	}
	wg.Wait()
	ctrs := tr.Counters()
	shared := CounterKey{Hook: "Shared", Module: "module", Decision: "grant"}
	if ctrs[shared] != writers*bumps {
		t.Fatalf("shared counter = %d, want %d", ctrs[shared], writers*bumps)
	}
	for w := 0; w < writers; w++ {
		key := CounterKey{Hook: "Private", Module: fmt.Sprintf("writer-%d", w), Decision: "grant"}
		if ctrs[key] != bumps {
			t.Fatalf("%v = %d, want %d", key, ctrs[key], bumps)
		}
	}
}
