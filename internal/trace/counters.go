package trace

import (
	"math/rand/v2"
	"sync/atomic"
)

// Decision counters are the hottest tracer write path: every LSM module
// consulted on every hook bumps one, as does every netfilter verdict and
// auth check. A single mutex-protected map serializes all of them, so
// under concurrent syscall load the counters become the kernel-wide
// bottleneck. Instead, each counter is a per-CPU-style sharded slot: a
// cache-line-padded array of atomics. A writer picks a stripe with a
// cheap per-P random draw (math/rand/v2's top-level functions read the
// runtime's per-P generator, no lock) and increments it; readers merge
// the stripes. The key→slot map itself is a copy-on-write snapshot —
// once a key has been seen, bumping it is a lock-free map read plus one
// atomic add on a stripe that (with high probability) no other writer is
// touching.

// ctrStripes is the number of stripes per counter slot. A power of two
// so stripe selection is a mask. 16 comfortably covers the 8-writer
// target of the scaling benchmarks.
const ctrStripes = 16

// ctrStripe is one stripe, padded to a 64-byte cache line so concurrent
// writers on different stripes never false-share.
type ctrStripe struct {
	n atomic.Uint64
	_ [56]byte
}

// ctrSlot is the sharded value of one CounterKey.
type ctrSlot struct {
	stripes [ctrStripes]ctrStripe
}

// bump increments one randomly chosen stripe.
func (s *ctrSlot) bump() {
	s.stripes[rand.Uint32()&(ctrStripes-1)].n.Add(1)
}

// sum merges the stripes. The total is monotonic but, like a per-CPU
// counter read on a real kernel, not an instantaneous snapshot across
// concurrent writers.
func (s *ctrSlot) sum() uint64 {
	var total uint64
	for i := range s.stripes {
		total += s.stripes[i].n.Load()
	}
	return total
}

// slotFor returns the slot for key, creating and publishing it on first
// use. The fast path is a lock-free snapshot read; the slow path (a key
// never counted before) copies the map under ctrMu and publishes the
// new snapshot.
func (tr *Tracer) slotFor(key CounterKey) *ctrSlot {
	if slot := (*tr.counters.Load())[key]; slot != nil {
		return slot
	}
	tr.ctrMu.Lock()
	defer tr.ctrMu.Unlock()
	cur := *tr.counters.Load()
	if slot := cur[key]; slot != nil {
		return slot
	}
	next := make(map[CounterKey]*ctrSlot, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	slot := new(ctrSlot)
	next[key] = slot
	tr.counters.Store(&next)
	return slot
}
