// Package trace is the simulated kernel's observability substrate, modeled
// on Linux ftrace/perf plus the audit subsystem. Producers — the syscall
// dispatch layer, the LSM hook chain, netfilter, the monitoring daemon,
// and the authentication service — emit structured Event records into a
// fixed-capacity ring buffer with overwrite-oldest semantics, and feed
// per-syscall / per-hook latency histograms and per-module decision
// counters. Consumers (internal/bench, the /proc/trace files, and
// cmd/protego-trace) read snapshots; nothing in this package blocks a
// producer.
package trace

import (
	"fmt"
	"strings"
	"time"
)

// Kind classifies an event record.
type Kind uint8

// Event kinds.
const (
	// KindSyscallEnter marks entry into a system call.
	KindSyscallEnter Kind = iota
	// KindSyscallExit marks completion; Latency and Err are populated.
	KindSyscallExit
	// KindLSMDecision records one LSM chain hook evaluation; Module is
	// the module whose decision won the chain combination.
	KindLSMDecision
	// KindNetfilterVerdict records an OUTPUT-chain packet verdict; Module
	// holds the matching rule name (empty when the chain policy applied).
	KindNetfilterVerdict
	// KindMonitordSync records one monitord reparse/push cycle.
	KindMonitordSync
	// KindAuthCheck records an authentication-service check.
	KindAuthCheck
	// KindAudit is a legacy security-audit line (the Kernel.Auditf shim).
	KindAudit
	// KindFaultInject records one deliberate fault injection (site, action,
	// errno, hit count) so a failing sweep run replays exactly.
	KindFaultInject

	numKinds = 8
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSyscallEnter:
		return "sys-enter"
	case KindSyscallExit:
		return "sys-exit"
	case KindLSMDecision:
		return "lsm"
	case KindNetfilterVerdict:
		return "netfilter"
	case KindMonitordSync:
		return "monitord"
	case KindAuthCheck:
		return "auth"
	case KindAudit:
		return "audit"
	case KindFaultInject:
		return "fault"
	default:
		return "invalid"
	}
}

// KindNames lists every kind in declaration order (for stats rendering).
func KindNames() []string {
	out := make([]string, numKinds)
	for i := 0; i < numKinds; i++ {
		out[i] = Kind(i).String()
	}
	return out
}

// Event is one trace record. The zero value is invalid; Seq is assigned by
// the ring at emission.
type Event struct {
	// Seq is the global emission sequence number (dense, starts at 0).
	Seq uint64
	// Kind classifies the record.
	Kind Kind
	// Name is the syscall, hook, sync-target, or auth-subject name.
	Name string
	// PID and UID identify the emitting task (0/-1 when not task-bound).
	PID int
	UID int
	// Module tags the deciding LSM module, netfilter rule, or auth
	// mechanism; empty when base policy decided.
	Module string
	// Decision carries the LSM decision, netfilter verdict, or check
	// outcome ("ok"/"fail") as text.
	Decision string
	// Latency is the measured duration (exit, decision, and sync events).
	Latency time.Duration
	// Err is the error the operation returned, if any.
	Err string
	// Msg carries free-form detail (audit lines, sync targets).
	Msg string
	// Time is the wall-clock emission time.
	Time time.Time
}

// String renders the event as a single trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8d %-9s", e.Seq, e.Kind)
	if e.Name != "" {
		fmt.Fprintf(&b, " %-12s", e.Name)
	}
	if e.PID != 0 || e.Kind == KindSyscallEnter || e.Kind == KindSyscallExit {
		fmt.Fprintf(&b, " pid=%d uid=%d", e.PID, e.UID)
	}
	if e.Module != "" {
		fmt.Fprintf(&b, " module=%s", e.Module)
	}
	if e.Decision != "" {
		fmt.Fprintf(&b, " decision=%s", e.Decision)
	}
	if e.Latency > 0 {
		fmt.Fprintf(&b, " lat=%s", e.Latency)
	}
	if e.Err != "" {
		fmt.Fprintf(&b, " err=%q", e.Err)
	}
	if e.Msg != "" {
		fmt.Fprintf(&b, " %s", e.Msg)
	}
	return b.String()
}
