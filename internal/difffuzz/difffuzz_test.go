package difffuzz

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"protego/internal/kernel"
	"protego/internal/seccomp"
	"protego/internal/seccomp/profiles"
)

// runSweep executes n generated traces from the fixed seed under cfg,
// failing the test on the first unexplained divergence or invariant
// violation, and returns the total explained-divergence count.
func runSweep(t *testing.T, seed int64, n int, cfg Config, workers int) int {
	t.Helper()
	gen := NewGenerator(seed)
	traces := make([]Trace, n)
	for i := range traces {
		traces[i] = gen.Next()
	}
	type outcome struct {
		idx int
		res *Result
		err error
	}
	results := make([]outcome, n)
	if workers <= 1 {
		for i, tr := range traces {
			res, err := Run(tr, cfg)
			results[i] = outcome{i, res, err}
		}
	} else {
		// Each worker drives its own machine pairs; this is the
		// lock-sharding ablation — concurrent kernels under -race.
		var wg sync.WaitGroup
		idxCh := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idxCh {
					res, err := Run(traces[i], cfg)
					results[i] = outcome{i, res, err}
				}
			}()
		}
		for i := range traces {
			idxCh <- i
		}
		close(idxCh)
		wg.Wait()
	}
	explained := 0
	for _, o := range results {
		if o.err != nil {
			t.Fatalf("trace %d: %v", o.idx, o.err)
		}
		if o.res.Failed() {
			min := Shrink(traces[o.idx], cfg)
			t.Fatalf("trace %d (seed %d): %s\nminimal reproducer (%d steps):\n%s\nreplay literal:\n%s",
				o.idx, seed, o.res, len(min), min, min.GoLiteral())
		}
		explained += o.res.Explained
	}
	return explained
}

// learnedProfiles loads the committed golden profile set for the Protego
// image, which the sweep enforces as a standing audit invariant: no
// utility may ever exceed its learned syscall allowlist.
func learnedProfiles(t *testing.T) *seccomp.ProfileSet {
	t.Helper()
	set, err := profiles.Load(kernel.ModeProtego)
	if err != nil {
		t.Fatalf("load golden profiles: %v", err)
	}
	return set
}

// TestDiffFuzz is the deterministic differential sweep: fixed seeds, both
// dcache ablation arms, and a parallel arm that exercises the sharded
// task/lock structures under the race detector. Every arm audits against
// the committed golden seccomp profiles — a syscall outside a binary's
// learned allowlist is an invariant violation and fails the sweep.
func TestDiffFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow under -short")
	}
	audit := learnedProfiles(t)
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	cases := []struct {
		name    string
		seed    int64
		n       int
		cfg     Config
		workers int
	}{
		{"serial/dcache-on", 1, 200, Config{SeccompAudit: audit}, 1},
		{"serial/dcache-off", 2, 60, Config{DcacheOff: true, SeccompAudit: audit}, 1},
		{"parallel/dcache-on", 3, 60, Config{SeccompAudit: audit}, workers},
		{"parallel/dcache-off", 4, 60, Config{DcacheOff: true, SeccompAudit: audit}, workers},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			explained := runSweep(t, tc.seed, tc.n, tc.cfg, tc.workers)
			t.Logf("%d traces, %d explained (by-design) divergences, 0 unexplained, 0 violations",
				tc.n, explained)
		})
	}
}

// TestDiffFuzzDetectsBrokenPolicy proves the harness has teeth: with the
// mount whitelist deliberately disabled via the core test hook, the
// invariant checker must catch the rogue grant within a modest number of
// traces, and the shrinker must reduce the failure to a short reproducer.
func TestDiffFuzzDetectsBrokenPolicy(t *testing.T) {
	cfg := Config{BreakMountPolicy: true}
	gen := NewGenerator(1)
	for i := 0; i < 200; i++ {
		tr := gen.Next()
		res, err := Run(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Failed() {
			continue
		}
		min := Shrink(tr, cfg)
		if len(min) > 10 {
			t.Fatalf("reproducer did not shrink: %d steps\n%s", len(min), min)
		}
		minRes, err := Run(min, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !minRes.Failed() {
			t.Fatalf("shrunk trace no longer reproduces:\n%s", min)
		}
		t.Logf("broken policy caught on trace %d; shrunk %d -> %d steps: %s\nreplay:\n%s",
			i, len(tr), len(min), minRes, min.GoLiteral())
		// And the same traces must pass with the policy intact, proving
		// the failure is the injected fault rather than harness noise.
		okRes, err := Run(min, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if okRes.Failed() {
			t.Fatalf("reproducer fails even without the broken policy: %s", okRes)
		}
		return
	}
	t.Fatal("broken mount policy was never detected in 200 traces")
}

// TestSeccompAuditDetectsViolation proves the audit invariant has teeth:
// with a deliberately empty profile set every syscall on the Protego
// machine is out of profile, so the very first trace must surface
// seccomp-profile violations (without perturbing execution — audit mode
// records instead of denying, and the trace itself still runs).
func TestSeccompAuditDetectsViolation(t *testing.T) {
	empty := seccomp.NewSet(kernel.ModeProtego.String())
	tr := NewGenerator(1).Next()
	res, err := Run(tr, Config{SeccompAudit: empty})
	if err != nil {
		t.Fatal(err)
	}
	var hits int
	for _, v := range res.Violations {
		if v.Invariant != "seccomp-profile" {
			t.Fatalf("unexpected invariant %q: %+v", v.Invariant, v)
		}
		hits++
	}
	if hits == 0 {
		t.Fatal("empty profile set produced no seccomp-profile violations")
	}
	// The same trace under the learned profiles is violation-free,
	// proving the hits above are the crafted profile, not harness noise.
	res, err = Run(tr, Config{SeccompAudit: learnedProfiles(t)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("trace fails under the learned profiles: %s", res)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	gen := NewGenerator(42)
	for i := 0; i < 50; i++ {
		tr := gen.Next()
		got := DecodeTrace(tr.Encode())
		if len(got) != len(tr) {
			t.Fatalf("round trip length: got %d want %d", len(got), len(tr))
		}
		for j := range tr {
			if got[j] != tr[j] {
				t.Fatalf("step %d: got %+v want %+v", j, got[j], tr[j])
			}
		}
	}
}

func TestDecodeTraceTotal(t *testing.T) {
	inputs := [][]byte{
		nil,
		{},
		{0xff},
		{0xff, 0xff, 0xff, 0xff},       // partial step dropped
		{0xff, 0xff, 0xff, 0xff, 0xff}, // one step, op reduced
		bytes.Repeat([]byte{0xab}, 5*maxTraceLen+37), // overlong, capped
	}
	for _, in := range inputs {
		tr := DecodeTrace(in)
		if len(tr) > maxTraceLen {
			t.Fatalf("decoded %d steps from %d bytes, cap is %d", len(tr), len(in), maxTraceLen)
		}
		for _, s := range tr {
			if int(s.Op) >= int(opCount) {
				t.Fatalf("decoded invalid op %d", s.Op)
			}
		}
	}
}

func TestGoLiteralCompilesShape(t *testing.T) {
	tr := Trace{{Op: OpMount, Actor: 1, A: 2, B: 3, C: 4}}
	want := fmt.Sprintf("difffuzz.Trace{\n\t{Op: difffuzz.OpMount, Actor: 1, A: 2, B: 3, C: 4},\n}")
	if got := tr.GoLiteral(); got != want {
		t.Fatalf("GoLiteral:\n%s\nwant:\n%s", got, want)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a, b := NewGenerator(7), NewGenerator(7)
	for i := 0; i < 20; i++ {
		ta, tb := a.Next(), b.Next()
		if ta.String() != tb.String() {
			t.Fatalf("same seed diverged at trace %d", i)
		}
	}
}
