package difffuzz

import "testing"

// FuzzDiffTrace is the native fuzzing entry: the engine mutates raw bytes,
// DecodeTrace interprets them totally as a trace, and any unexplained
// divergence or invariant violation is a crasher. Run with
//
//	go test -fuzz=FuzzDiffTrace ./internal/difffuzz
//
// A failure report includes the shrunk replay literal; the engine also
// persists the raw input under testdata/fuzz/FuzzDiffTrace.
func FuzzDiffTrace(f *testing.F) {
	// Seed the corpus with generated traces plus hand-picked shapes that
	// exercise every relaxed path: whitelisted mount + user umount, raw
	// socket + filtered sendto, deferred setuid, and the dm ioctl.
	gen := NewGenerator(99)
	for i := 0; i < 4; i++ {
		f.Add(gen.Next().Encode())
	}
	f.Add(Trace{
		{Op: OpMount, Actor: 1, A: 0},        // bob mounts /dev/cdrom /cdrom
		{Op: OpUtility, Actor: 1, A: 7},      // bob: umount /cdrom
		{Op: OpSocket, Actor: 0, A: 0, B: 2}, // alice: raw ICMP socket, slot 0
		{Op: OpSendTo, Actor: 0, A: 0, B: 0}, // alice: echo request (allowed)
		{Op: OpSendTo, Actor: 0, A: 0, B: 4}, // alice: raw TCP (filtered)
		{Op: OpSetuid, Actor: 2, A: 0},       // charlie: setuid(0)
		{Op: OpIoctl, Actor: 0, A: 0},        // alice: DMGETINFO (denied)
		{Op: OpIoctl, Actor: 0, A: 1},        // alice: VIDIOCSMODE (granted)
	}.Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := DecodeTrace(data)
		if len(tr) == 0 {
			t.Skip()
		}
		res, err := Run(tr, Config{})
		if err != nil {
			t.Fatalf("harness error: %v", err)
		}
		if res.Failed() {
			min := Shrink(tr, Config{})
			t.Fatalf("%s\nminimal reproducer (%d steps):\n%s\nreplay literal:\n%s",
				res, len(min), min, min.GoLiteral())
		}
	})
}
