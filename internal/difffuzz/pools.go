package difffuzz

import (
	"fmt"

	"protego/internal/kernel"
	"protego/internal/netstack"
	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

// The pools are deliberately tiny so randomly chosen operations collide:
// two actors fight over the same file, the same mount point, the same
// port. Collisions are where policy asymmetries hide.

var actors = []string{"alice", "bob", "charlie"}

func actorName(i uint8) string { return actors[int(i)%len(actors)] }

// actorUID mirrors the world's uid assignment for the actor pool.
var actorUIDs = []int{world.UIDAlice, world.UIDBob, world.UIDCharlie}

// filePaths collide actors on shared, owned, and privileged files.
var filePaths = []string{
	"/tmp/shared",
	"/tmp/scratch",
	"/home/alice/file",
	"/home/bob/file",
	"/home/charlie/file",
	"/etc/fstab",
	"/etc/shadow",
	"/var/www/index.html",
}

// dirPaths is the mkdir pool (the final component is created).
var dirPaths = []string{
	"/tmp/d0",
	"/tmp/d1",
	"/home/alice/d",
	"/etc/d",
}

// fileModes for chmod; includes a setuid mode so the fuzzer creates
// setuid bits on ordinary files (the fingerprint must track them).
var fileModes = []vfs.Mode{0o600, 0o644, 0o666, 0o700, 0o4755}

// poolUIDs for chown/setuid/seteuid arguments: root plus the actors.
var poolUIDs = []int{0, world.UIDAlice, world.UIDBob, world.UIDCharlie}

// mountSpec is one (device, point, fstype, options) combination.
type mountSpec struct {
	device  string
	point   string
	fstype  string
	options []string
}

// mountSpecs mixes whitelisted rows, near-misses (right device, wrong
// point; unsafe options), a non-whitelisted device, and a fuse mount over
// an owned home directory.
var mountSpecs = []mountSpec{
	{"/dev/cdrom", "/cdrom", "iso9660", []string{"ro", "nosuid", "nodev"}},
	{"/dev/sdb1", "/media/usb", "vfat", []string{"rw", "nosuid", "nodev"}},
	{"/dev/cdrom", "/tmp", "iso9660", []string{"ro"}},
	{"/dev/cdrom", "/cdrom", "iso9660", []string{"suid"}},
	{"/dev/sdc1", "/mnt/backup", "ext4", []string{"rw"}},
	{"/dev/sdc1", "/home/alice", "ext4", []string{"rw"}},
	{"user-fs", "/home/alice", "fuse", []string{"rw", "nosuid", "nodev"}},
	{"user-fs", "/home/bob", "fuse", []string{"rw", "nosuid", "nodev"}},
}

// umountPoints is the umount pool.
var umountPoints = []string{"/cdrom", "/media/usb", "/mnt/backup", "/home/alice", "/home/bob", "/tmp"}

// socketKind is one socket-creation shape.
type socketKind struct {
	family, typ, proto int
	raw                bool
}

var socketKinds = []socketKind{
	{netstack.AF_INET, netstack.SOCK_DGRAM, netstack.IPPROTO_UDP, false},
	{netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP, false},
	{netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_ICMP, true},
	{netstack.AF_INET, netstack.SOCK_RAW, netstack.IPPROTO_RAW, true},
}

// socketSlots is the number of per-machine socket slots the trace can
// address; small so creates/binds/closes collide.
const socketSlots = 4

// bindPorts mixes privileged pool ports (25 is exim's, 80 is httpd's —
// neither belongs to a fuzz actor), an unprivileged port, and the
// ephemeral request.
var bindPorts = []int{25, 80, 8080, 0}

// packetSpec is one sendto shape. passesFilter mirrors the Protego
// raw-socket OUTPUT ruleset (netfilter.ProtegoDefaultRules): non-spoofed
// ICMP is allowed, UDP only within the traceroute probe range, and raw
// TCP/UDP/other fabrication is dropped with EPERM. The fuzzer asserts
// unprivileged raw sends obey exactly this table (invariant 3).
type packetSpec struct {
	proto        int
	dstPort      int
	icmpType     int
	passesFilter bool
}

var packetSpecs = []packetSpec{
	{proto: netstack.IPPROTO_ICMP, icmpType: 8, passesFilter: true},   // echo request
	{proto: netstack.IPPROTO_ICMP, icmpType: 13, passesFilter: true},  // timestamp: ICMP is not fabrication
	{proto: netstack.IPPROTO_UDP, dstPort: 33434, passesFilter: true}, // traceroute probe
	{proto: netstack.IPPROTO_UDP, dstPort: 53, passesFilter: false},   // DNS from raw
	{proto: netstack.IPPROTO_TCP, dstPort: 80, passesFilter: false},   // raw TCP (spoofable)
	{proto: netstack.IPPROTO_RAW, passesFilter: false},                // arbitrary IP payload
}

var packetDsts = []netstack.IP{
	netstack.IPv4(127, 0, 0, 1),
	netstack.IPv4(10, 0, 0, 2),
	netstack.IPv4(10, 0, 0, 99),
}

// ioctlSpec is one device-ioctl shape. dm-0's DMGETINFO discloses the
// encryption key and must never be granted; the video mode switch is the
// §4.4 KMS relaxation (granted on Protego, capability-gated on the
// baseline) with no observable state either way.
type ioctlSpec struct {
	dev string
	cmd uint32
}

var ioctlSpecs = []ioctlSpec{
	{"/dev/dm-0", kernel.DMGETINFO},
	{userspace.VideoDevice, kernel.VIDIOCSMODE},
}

// utilityArgvs is the whole-utility pool. Fuzz actors never hold real
// passwords (the asker always answers wrong), so every authentication
// path is exercised only as a denial; the NOPASSWD sudo rule and the
// plumbing utilities are the legitimate-success paths.
var utilityArgvs = [][]string{
	{userspace.BinID},
	{userspace.BinLs, "/tmp"},
	{userspace.BinSudo, userspace.BinLs, "/tmp"},
	{userspace.BinSudo, userspace.BinID},
	{userspace.BinMount, "/dev/cdrom", "/cdrom"},
	{userspace.BinMount, "/dev/sdb1", "/media/usb"},
	{userspace.BinMount, "/dev/sdc1", "/mnt/backup"},
	{userspace.BinUmount, "/cdrom"},
	{userspace.BinUmount, "/media/usb"},
	{userspace.BinPing, "-c", "1", "10.0.0.2"},
	{userspace.BinPasswd},
	{userspace.BinPppd, "ppp0"},
	{userspace.BinFping, "10.0.0.2"},
}

func pick[T any](pool []T, sel uint8) T { return pool[int(sel)%len(pool)] }

// describeStep resolves a step's selectors against the pools for the
// human-readable trace rendering.
func describeStep(s Step) string {
	switch s.Op {
	case OpRead, OpWrite, OpUnlink:
		return pick(filePaths, s.A)
	case OpChmod:
		return fmt.Sprintf("%s mode=%o", pick(filePaths, s.A), pick(fileModes, s.B))
	case OpChown:
		return fmt.Sprintf("%s uid=%d", pick(filePaths, s.A), pick(poolUIDs, s.B))
	case OpSetuid, OpSeteuid:
		return fmt.Sprintf("uid=%d", pick(poolUIDs, s.A))
	case OpMkdir:
		return pick(dirPaths, s.A)
	case OpMount:
		m := pick(mountSpecs, s.A)
		return fmt.Sprintf("%s %s %s %v", m.device, m.point, m.fstype, m.options)
	case OpUmount:
		return pick(umountPoints, s.A)
	case OpSocket:
		k := pick(socketKinds, s.B)
		return fmt.Sprintf("slot=%d family=%d type=%d proto=%d", int(s.A)%socketSlots, k.family, k.typ, k.proto)
	case OpBind:
		return fmt.Sprintf("slot=%d port=%d", int(s.A)%socketSlots, pick(bindPorts, s.B))
	case OpSendTo:
		p := pick(packetSpecs, s.B)
		return fmt.Sprintf("slot=%d proto=%d dst=%v port=%d", int(s.A)%socketSlots, p.proto, pick(packetDsts, s.C), p.dstPort)
	case OpCloseSock:
		return fmt.Sprintf("slot=%d", int(s.A)%socketSlots)
	case OpIoctl:
		i := pick(ioctlSpecs, s.A)
		return fmt.Sprintf("%s cmd=0x%x", i.dev, i.cmd)
	case OpUtility:
		return fmt.Sprintf("%v", pick(utilityArgvs, s.A))
	default:
		return ""
	}
}
