package difffuzz

import (
	"sync"

	"protego/internal/kernel"
	"protego/internal/world"
)

// Golden images: one booted machine per mode, frozen on first use. Every
// trace stamps a copy-on-write clone from the snapshot instead of paying
// a full world.Build, which is where the fuzzer used to spend most of
// its wall clock. Clones are fully independent (task table, netstack,
// policy, tracer), so traces never observe each other.
var (
	goldenMu sync.Mutex
	goldens  = map[kernel.Mode]*world.Snapshot{}
)

func goldenSnapshot(mode kernel.Mode) (*world.Snapshot, error) {
	goldenMu.Lock()
	defer goldenMu.Unlock()
	if s, ok := goldens[mode]; ok {
		return s, nil
	}
	m, err := world.Build(world.Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	s := m.Snapshot()
	goldens[mode] = s
	return s, nil
}
