package difffuzz

import "math/rand"

// opWeights biases generation toward the policy-guarded surface (mounts,
// sockets, utilities) while keeping enough plain-DAC traffic that state
// keeps changing under the policies' feet.
var opWeights = [opCount]int{
	OpForkExit:  1,
	OpRead:      2,
	OpWrite:     3,
	OpChmod:     2,
	OpChown:     1,
	OpSetuid:    1,
	OpSeteuid:   1,
	OpMkdir:     1,
	OpUnlink:    1,
	OpMount:     4,
	OpUmount:    3,
	OpSocket:    3,
	OpBind:      2,
	OpSendTo:    3,
	OpCloseSock: 1,
	OpIoctl:     1,
	OpUtility:   4,
}

var totalWeight = func() int {
	t := 0
	for _, w := range opWeights {
		t += w
	}
	return t
}()

// Generator produces random traces from a seed; the same seed always
// yields the same trace sequence (the deterministic sweep depends on it).
type Generator struct {
	rng *rand.Rand
}

// NewGenerator creates a seeded generator.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

func (g *Generator) pickOp() Op {
	n := g.rng.Intn(totalWeight)
	for op, w := range opWeights {
		if n < w {
			return Op(op)
		}
		n -= w
	}
	return OpRead // unreachable
}

// Next generates a trace of 4..maxTraceLen steps.
func (g *Generator) Next() Trace {
	n := 4 + g.rng.Intn(maxTraceLen-4+1)
	tr := make(Trace, 0, n)
	for i := 0; i < n; i++ {
		tr = append(tr, Step{
			Op:    g.pickOp(),
			Actor: uint8(g.rng.Intn(256)),
			A:     uint8(g.rng.Intn(256)),
			B:     uint8(g.rng.Intn(256)),
			C:     uint8(g.rng.Intn(256)),
		})
	}
	return tr
}
