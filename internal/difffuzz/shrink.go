package difffuzz

// ShrinkSlice reduces a failing sequence to a minimal reproducer using
// delta-debugging-style chunk removal: repeatedly try dropping spans
// (halves, then quarters, down to single elements), keeping any reduction
// for which fails still reports true. The predicate must be deterministic
// — here that holds because every machine pair is built fresh per check —
// or the result will not replay. Exported so other shrinking harnesses
// (internal/vulngen reduces misconfiguration scenarios with it) share the
// exact ddmin loop instead of reimplementing it.
func ShrinkSlice[T any](items []T, fails func([]T) bool) []T {
	if len(items) == 0 || !fails(items) {
		return items
	}
	cur := append([]T(nil), items...)
	chunk := len(cur) / 2
	if chunk < 1 {
		chunk = 1
	}
	for {
		reduced := false
		for start := 0; start+chunk <= len(cur); {
			cand := append([]T(nil), cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if len(cand) > 0 && fails(cand) {
				cur = cand
				reduced = true
				continue // retry the same start against the shorter sequence
			}
			start += chunk
		}
		if chunk > 1 {
			chunk /= 2
		} else if !reduced {
			return cur
		}
	}
}

// Shrink reduces a failing trace to a minimal reproducer under the same
// Config. Because every machine pair is built fresh inside Run, the
// predicate is deterministic and the result replays exactly.
func Shrink(tr Trace, cfg Config) Trace {
	return Trace(ShrinkSlice([]Step(tr), func(t []Step) bool {
		res, err := Run(Trace(t), cfg)
		return err == nil && res.Failed()
	}))
}
