package difffuzz

// Shrink reduces a failing trace to a minimal reproducer using
// delta-debugging-style chunk removal: repeatedly try dropping spans
// (halves, then quarters, down to single steps), keeping any reduction
// that still fails under the same Config. Because every machine pair is
// built fresh inside Run, the predicate is deterministic and the result
// replays exactly.
func Shrink(tr Trace, cfg Config) Trace {
	fails := func(t Trace) bool {
		if len(t) == 0 {
			return false
		}
		res, err := Run(t, cfg)
		return err == nil && res.Failed()
	}
	if !fails(tr) {
		return tr
	}
	cur := append(Trace(nil), tr...)
	chunk := len(cur) / 2
	if chunk < 1 {
		chunk = 1
	}
	for {
		reduced := false
		for start := 0; start+chunk <= len(cur); {
			cand := append(Trace(nil), cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if fails(cand) {
				cur = cand
				reduced = true
				continue // retry the same start against the shorter trace
			}
			start += chunk
		}
		if chunk > 1 {
			chunk /= 2
		} else if !reduced {
			return cur
		}
	}
}
