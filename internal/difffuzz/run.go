package difffuzz

import (
	"fmt"
	"strings"

	"protego/internal/errno"
	"protego/internal/kernel"
	"protego/internal/netstack"
	"protego/internal/seccomp"
	"protego/internal/userspace"
	"protego/internal/world"
)

// Config selects the ablations (and the deliberate-vulnerability hook used
// by the harness's self-test) a run executes under.
type Config struct {
	// DcacheOff disables the VFS dentry cache on both machines — the
	// fuzzer must see identical behavior with the fast path off.
	DcacheOff bool
	// BreakMountPolicy flips the core.Module test hook that grants every
	// unprivileged mount on the Protego image. Runs with this set MUST
	// fail; it proves the harness detects a broken policy.
	BreakMountPolicy bool
	// FreshBoot builds each machine with world.Build instead of cloning
	// the cached golden snapshot — the pre-snapshot behavior, kept so the
	// bench can measure the speedup and so a suspected snapshot bug can
	// be ruled out by rerunning a reproducer against fresh boots.
	FreshBoot bool
	// SeccompAudit, when non-nil, installs the learned syscall profiles
	// on the Protego image in audit mode and turns any observed
	// out-of-profile syscall into a "seccomp-profile" violation: the
	// standing invariant that no utility ever exceeds its learned
	// profile. Audit mode records instead of denying, so the trace under
	// test executes identically with or without the invariant armed.
	SeccompAudit *seccomp.ProfileSet
}

// Divergence is an unexplained behavioral difference between the images.
type Divergence struct {
	Step   int    // index into the trace
	Op     Op     // the operation that diverged
	Detail string // what differed
}

// Violation is a breach of a standing Protego security invariant; it is
// reported even when the two images agree with each other.
type Violation struct {
	Step      int
	Invariant string
	Detail    string
}

// Result summarizes one trace execution.
type Result struct {
	// Steps executed before stopping (the full trace unless it failed).
	Steps int
	// Divergence is the first unexplained mismatch, nil if none.
	Divergence *Divergence
	// Violations are the Protego invariant breaches observed.
	Violations []Violation
	// Explained counts by-design divergences that were reconciled: a
	// policy-authorized unprivileged operation succeeding on Protego
	// where the baseline requires the setuid helper's root privilege.
	Explained int
}

// Failed reports whether the trace found a bug (divergence or violation).
func (r *Result) Failed() bool {
	return r.Divergence != nil || len(r.Violations) > 0
}

func (r *Result) String() string {
	if !r.Failed() {
		return fmt.Sprintf("ok: %d steps, %d explained divergences", r.Steps, r.Explained)
	}
	s := fmt.Sprintf("FAILED after step %d:", r.Steps)
	if r.Divergence != nil {
		s += fmt.Sprintf(" divergence at step %d (%s): %s", r.Divergence.Step, r.Divergence.Op, r.Divergence.Detail)
	}
	for _, v := range r.Violations {
		s += fmt.Sprintf(" invariant %s at step %d: %s", v.Invariant, v.Step, v.Detail)
	}
	return s
}

// machineCtx is the per-image execution state of a trace.
type machineCtx struct {
	m        *world.Machine
	sessions []*kernel.Task
	socks    [socketSlots]*netstack.Socket
	// secAudit is the audit-mode seccomp module watching this machine
	// (Protego image with Config.SeccompAudit set only).
	secAudit *seccomp.Module
}

// newMachineCtx boots one image for a trace run. prep, when non-nil, runs
// after the ablations and before the actor sessions are created — the
// profiler installs its recorder there, so session-setup syscalls are
// observed at exactly the point an enforcing module would mediate them.
func newMachineCtx(mode kernel.Mode, cfg Config, prep func(*world.Machine)) (*machineCtx, error) {
	var m *world.Machine
	var err error
	if cfg.FreshBoot {
		m, err = world.Build(world.Options{Mode: mode})
	} else {
		var snap *world.Snapshot
		if snap, err = goldenSnapshot(mode); err == nil {
			m, err = snap.Clone()
		}
	}
	if err != nil {
		return nil, err
	}
	m.K.FS.SetDcacheEnabled(!cfg.DcacheOff)
	if cfg.BreakMountPolicy && m.Protego != nil {
		m.Protego.TestHookBreakMountPolicy(true)
	}
	c := &machineCtx{m: m}
	if cfg.SeccompAudit != nil && mode == kernel.ModeProtego {
		c.secAudit = seccomp.NewModule(cfg.SeccompAudit, true)
		m.K.LSM.Register(c.secAudit)
		m.K.SetSyscallGate(true)
	}
	if prep != nil {
		prep(m)
	}
	for _, name := range actors {
		sess, err := m.Session(name)
		if err != nil {
			return nil, err
		}
		c.sessions = append(c.sessions, sess)
	}
	return c, nil
}

func (c *machineCtx) sess(actor uint8) *kernel.Task {
	return c.sessions[int(actor)%len(c.sessions)]
}

// asRoot runs f as a transient root task (the stand-in for the setuid
// helper the baseline image would have used), then reaps it so the task
// table converges again.
func (c *machineCtx) asRoot(f func(root *kernel.Task) error) error {
	root := c.m.K.Fork(c.m.Init)
	defer c.m.K.Exit(root, 0)
	return f(root)
}

// stepOutcome is what one executed step reports back to the trace loop.
type stepOutcome struct {
	// strict marks ops whose errno must agree across images AND whose
	// failure must leave the Protego image unchanged (fail-closed).
	strict bool
	proErr error
	// unexplained, when non-empty, is an immediate divergence (errno
	// mismatch on a strict op, utility output mismatch, or a failed
	// reconciliation); the post-step fingerprint comparison catches
	// everything else.
	unexplained string
}

// Run executes the trace step-by-step on a fresh baseline/Protego image
// pair, comparing canonical fingerprints after every step, reconciling
// by-design privilege relaxations, and checking the standing invariants
// on the Protego image. It stops at the first failure.
func Run(tr Trace, cfg Config) (*Result, error) {
	lin, err := newMachineCtx(kernel.ModeLinux, cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("difffuzz: build baseline: %w", err)
	}
	pro, err := newMachineCtx(kernel.ModeProtego, cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("difffuzz: build protego: %w", err)
	}
	res := &Result{}
	prevProFP := pro.m.Fingerprint()
	for i, s := range tr {
		out := execStep(lin, pro, s, res, i)
		res.Steps = i + 1
		if out.unexplained != "" {
			res.Divergence = &Divergence{Step: i, Op: s.Op, Detail: out.unexplained}
			return res, nil
		}
		proFP := pro.m.Fingerprint()
		linFP := lin.m.Fingerprint()
		if linFP != proFP {
			res.Divergence = &Divergence{Step: i, Op: s.Op,
				Detail: "state fingerprints differ:\n" + diffFingerprints(linFP, proFP)}
			return res, nil
		}
		// Invariant 4 (fail closed): a denied strict operation must not
		// have moved the Protego image at all.
		if out.strict && out.proErr != nil && proFP != prevProFP {
			res.Violations = append(res.Violations, Violation{Step: i, Invariant: "fail-closed",
				Detail: fmt.Sprintf("%s failed with %v but changed state:\n%s",
					s.Op, out.proErr, diffFingerprints(prevProFP, proFP))})
		}
		checkTaskInvariant(pro, i, res)
		checkMountInvariant(pro, i, res)
		drainSeccompViolations(pro, i, res)
		if len(res.Violations) > 0 {
			return res, nil
		}
		prevProFP = proFP
	}
	return res, nil
}

// drainSeccompViolations converts audit-mode profile breaches observed up
// to (and including) step idx into "seccomp-profile" violations.
func drainSeccompViolations(pro *machineCtx, idx int, res *Result) {
	if pro.secAudit == nil {
		return
	}
	for _, v := range pro.secAudit.TakeViolations() {
		res.Violations = append(res.Violations, Violation{Step: idx, Invariant: "seccomp-profile",
			Detail: fmt.Sprintf("pid=%d bin=%s issued %s outside its learned profile",
				v.PID, v.Binary, v.Sysno)})
	}
}

// Replay executes the trace on a fresh golden-image pair with no
// fingerprint comparison or invariant checking — the cheap drive the
// seccomp profiler uses to push the difffuzz corpus through instrumented
// machines. prep receives each machine before its sessions are created.
func Replay(tr Trace, prep func(*world.Machine)) error {
	lin, err := newMachineCtx(kernel.ModeLinux, Config{}, prep)
	if err != nil {
		return fmt.Errorf("difffuzz: build baseline: %w", err)
	}
	pro, err := newMachineCtx(kernel.ModeProtego, Config{}, prep)
	if err != nil {
		return fmt.Errorf("difffuzz: build protego: %w", err)
	}
	res := &Result{}
	for i, s := range tr {
		_ = execStep(lin, pro, s, res, i)
	}
	return nil
}

// execStep applies one step to both machines and performs the op-specific
// comparison and reconciliation.
func execStep(lin, pro *machineCtx, s Step, res *Result, idx int) stepOutcome {
	switch s.Op {
	case OpForkExit:
		for _, c := range []*machineCtx{lin, pro} {
			child := c.m.K.Fork(c.sess(s.Actor))
			c.m.K.Exit(child, 0)
		}
		return stepOutcome{strict: true}

	case OpRead:
		path := pick(filePaths, s.A)
		_, errL := lin.m.K.ReadFile(lin.sess(s.Actor), path)
		_, errP := pro.m.K.ReadFile(pro.sess(s.Actor), path)
		return strictOutcome(s, errL, errP)

	case OpWrite:
		path := pick(filePaths, s.A)
		data := []byte(fmt.Sprintf("fuzz %d %d", s.Actor, s.B))
		errL := lin.m.K.WriteFile(lin.sess(s.Actor), path, data)
		errP := pro.m.K.WriteFile(pro.sess(s.Actor), path, data)
		return strictOutcome(s, errL, errP)

	case OpChmod:
		path, mode := pick(filePaths, s.A), pick(fileModes, s.B)
		errL := lin.m.K.Chmod(lin.sess(s.Actor), path, mode)
		errP := pro.m.K.Chmod(pro.sess(s.Actor), path, mode)
		return strictOutcome(s, errL, errP)

	case OpChown:
		path, uid := pick(filePaths, s.A), pick(poolUIDs, s.B)
		errL := lin.m.K.Chown(lin.sess(s.Actor), path, uid, -1)
		errP := pro.m.K.Chown(pro.sess(s.Actor), path, uid, -1)
		return strictOutcome(s, errL, errP)

	case OpSetuid, OpSeteuid:
		return execCredStep(lin, pro, s, res)

	case OpMkdir:
		path := pick(dirPaths, s.A)
		errL := lin.m.K.Mkdir(lin.sess(s.Actor), path, 0o755)
		errP := pro.m.K.Mkdir(pro.sess(s.Actor), path, 0o755)
		return strictOutcome(s, errL, errP)

	case OpUnlink:
		path := pick(filePaths, s.A)
		errL := lin.m.K.Unlink(lin.sess(s.Actor), path)
		errP := pro.m.K.Unlink(pro.sess(s.Actor), path)
		return strictOutcome(s, errL, errP)

	case OpMount:
		spec := pick(mountSpecs, s.A)
		errL := lin.m.K.Mount(lin.sess(s.Actor), spec.device, spec.point, spec.fstype, spec.options)
		errP := pro.m.K.Mount(pro.sess(s.Actor), spec.device, spec.point, spec.fstype, spec.options)
		out := reconcile(lin, res, errL, errP, fmt.Sprintf("mount %s %s", spec.device, spec.point),
			func(root *kernel.Task) error {
				return lin.m.K.Mount(root, spec.device, spec.point, spec.fstype, spec.options)
			})
		if out.unexplained == "" && errP == nil && errL != nil {
			// The replay ran as root, but setuid mount(8) records the
			// invoking user in mtab so that user may unmount later; mirror
			// that, or the images' umount policies drift apart.
			if mnt := lin.m.K.FS.MountAt(spec.point); mnt != nil {
				mnt.MountedBy = lin.sess(s.Actor).UID()
				mnt.UserMount = true
			}
		}
		return out

	case OpUmount:
		point := pick(umountPoints, s.A)
		errL := lin.m.K.Umount(lin.sess(s.Actor), point)
		errP := pro.m.K.Umount(pro.sess(s.Actor), point)
		return reconcile(lin, res, errL, errP, "umount "+point,
			func(root *kernel.Task) error { return lin.m.K.Umount(root, point) })

	case OpSocket:
		return execSocketStep(lin, pro, s, res)

	case OpBind:
		slot := int(s.A) % socketSlots
		port := pick(bindPorts, s.B)
		sockL, sockP := lin.socks[slot], pro.socks[slot]
		// Raw slots exist only on Protego (the §4.1.1 relaxation) and
		// never bind: binding them would register a port reservation on
		// one image only and every later fingerprint would "diverge".
		if sockL == nil || sockP == nil || sockL.IsRaw() || sockP.IsRaw() {
			return stepOutcome{}
		}
		errL := lin.m.K.Bind(lin.sess(s.Actor), sockL, port)
		errP := pro.m.K.Bind(pro.sess(s.Actor), sockP, port)
		return strictOutcome(s, errL, errP)

	case OpSendTo:
		return execSendToStep(lin, pro, s, res)

	case OpCloseSock:
		slot := int(s.A) % socketSlots
		var errL, errP error
		if sock := lin.socks[slot]; sock != nil {
			errL = lin.m.K.CloseSocket(lin.sess(s.Actor), sock)
			lin.socks[slot] = nil
		}
		if sock := pro.socks[slot]; sock != nil {
			errP = pro.m.K.CloseSocket(pro.sess(s.Actor), sock)
			pro.socks[slot] = nil
		}
		if (errL == nil) != (errP == nil) && lin.socks[slot] != nil && pro.socks[slot] != nil {
			return stepOutcome{unexplained: fmt.Sprintf("close: linux=%v protego=%v", errL, errP)}
		}
		return stepOutcome{}

	case OpIoctl:
		return execIoctlStep(lin, pro, s, res, idx)

	case OpUtility:
		argv := pick(utilityArgvs, s.A)
		asker := func(string) string { return "fuzz-wrong-password" }
		codeL, outL, _, _ := lin.m.Run(lin.sess(s.Actor), argv, asker)
		codeP, outP, _, _ := pro.m.Run(pro.sess(s.Actor), argv, asker)
		if codeL != codeP {
			return stepOutcome{unexplained: fmt.Sprintf("%v: exit linux=%d protego=%d", argv, codeL, codeP)}
		}
		if outL != outP {
			return stepOutcome{unexplained: fmt.Sprintf("%v: stdout linux=%q protego=%q", argv, outL, outP)}
		}
		return stepOutcome{}
	}
	return stepOutcome{}
}

// strictOutcome compares errnos for an op that must behave identically.
func strictOutcome(s Step, errL, errP error) stepOutcome {
	out := stepOutcome{strict: true, proErr: errP}
	if (errL == nil) != (errP == nil) || errno.Of(errL) != errno.Of(errP) {
		out.unexplained = fmt.Sprintf("errno: linux=%v protego=%v", errL, errP)
	}
	return out
}

// reconcile handles the relaxed privileged ops (mount/umount): when
// Protego's policy granted what the baseline kernel refuses to an
// unprivileged caller, the baseline's missing half is the setuid helper —
// replay the operation there with root privilege so the states converge,
// and count the divergence as explained. The policy-correctness of the
// grant itself is judged by the standing invariants, not here.
func reconcile(lin *machineCtx, res *Result, errL, errP error, what string, replay func(*kernel.Task) error) stepOutcome {
	switch {
	case errP == nil && errL != nil:
		if rerr := lin.asRoot(replay); rerr != nil {
			return stepOutcome{unexplained: fmt.Sprintf(
				"%s: protego granted (baseline: %v) but root replay failed: %v", what, errL, rerr)}
		}
		res.Explained++
		return stepOutcome{}
	case errL == nil && errP != nil:
		// An unprivileged caller succeeded on the baseline where Protego
		// refused: Protego lost functionality. The fingerprint comparison
		// will flag the state, but report the errnos too.
		return stepOutcome{unexplained: fmt.Sprintf("%s: baseline succeeded, protego: %v", what, errP)}
	default:
		return stepOutcome{}
	}
}

// execCredStep runs setuid/seteuid inside a disposable child — mirroring
// how the call is always made in practice (post-fork, pre-exec) — so a
// Protego DeferToExec "pending" transition dies with the child instead of
// arming the long-lived session task.
func execCredStep(lin, pro *machineCtx, s Step, res *Result) stepOutcome {
	uid := pick(poolUIDs, s.A)
	call := func(c *machineCtx) error {
		child := c.m.K.Fork(c.sess(s.Actor))
		defer c.m.K.Exit(child, 0)
		if s.Op == OpSetuid {
			return c.m.K.Setuid(child, uid)
		}
		return c.m.K.Seteuid(child, uid)
	}
	errL, errP := call(lin), call(pro)
	if errno.Of(errL) == errno.Of(errP) && (errL == nil) == (errP == nil) {
		return stepOutcome{}
	}
	if errP == nil && errL != nil && s.Op == OpSetuid {
		// By design: the sudoers delegation policy grants (or defers to
		// exec) transitions the baseline kernel refuses without the
		// setuid sudo binary. No state survives the child.
		res.Explained++
		return stepOutcome{}
	}
	return stepOutcome{unexplained: fmt.Sprintf("%s(%d): linux=%v protego=%v", s.Op, uid, errL, errP)}
}

func execSocketStep(lin, pro *machineCtx, s Step, res *Result) stepOutcome {
	slot := int(s.A) % socketSlots
	kind := pick(socketKinds, s.B)
	// Re-creating into an occupied slot closes the old socket first
	// (symmetrically, where present).
	for _, c := range []*machineCtx{lin, pro} {
		if sock := c.socks[slot]; sock != nil {
			_ = c.m.K.CloseSocket(c.sess(s.Actor), sock)
			c.socks[slot] = nil
		}
	}
	sockL, errL := lin.m.K.Socket(lin.sess(s.Actor), kind.family, kind.typ, kind.proto)
	sockP, errP := pro.m.K.Socket(pro.sess(s.Actor), kind.family, kind.typ, kind.proto)
	lin.socks[slot], pro.socks[slot] = sockL, sockP
	if !kind.raw {
		return strictOutcome(s, errL, errP)
	}
	// Raw sockets: Protego grants unprivileged creation (tagged for the
	// netfilter rules); the baseline demands CAP_NET_RAW.
	switch {
	case errP == nil && errL != nil:
		if !sockP.UnprivRaw {
			// Granted but untagged would bypass the filter entirely.
			res.Violations = append(res.Violations, Violation{Invariant: "raw-filter",
				Detail: "unprivileged raw socket granted without UnprivRaw tag"})
		}
		res.Explained++
		return stepOutcome{}
	case errL == nil:
		return stepOutcome{unexplained: fmt.Sprintf("raw socket: baseline granted to unprivileged caller (protego: %v)", errP)}
	default:
		return stepOutcome{}
	}
}

func execSendToStep(lin, pro *machineCtx, s Step, res *Result) stepOutcome {
	slot := int(s.A) % socketSlots
	spec := pick(packetSpecs, s.B)
	dst := pick(packetDsts, s.C)
	mkPkt := func() *netstack.Packet {
		return &netstack.Packet{
			Dst: dst, Proto: spec.proto, DstPort: spec.dstPort,
			ICMPType: spec.icmpType, TTL: 64, Payload: []byte("fuzz"),
		}
	}
	sockL, sockP := lin.socks[slot], pro.socks[slot]
	switch {
	case sockL != nil && sockP != nil:
		errL := lin.m.K.SendTo(lin.sess(s.Actor), sockL, mkPkt())
		errP := pro.m.K.SendTo(pro.sess(s.Actor), sockP, mkPkt())
		out := strictOutcome(s, errL, errP)
		// sendto auto-binds an ephemeral port before routing, so a failed
		// send (EHOSTUNREACH) legitimately leaves state behind; the bind
		// is symmetric and the fingerprint comparison covers it, so exempt
		// this op from the fail-closed invariant.
		out.strict = false
		return out
	case sockP != nil && sockP.IsRaw():
		// Protego-only raw socket: no baseline counterpart to compare, but
		// the send must obey the raw-socket filter exactly (invariant 3).
		errP := pro.m.K.SendTo(pro.sess(s.Actor), sockP, mkPkt())
		if sockP.UnprivRaw {
			if spec.passesFilter && errno.Of(errP) == errno.EPERM {
				res.Violations = append(res.Violations, Violation{Invariant: "raw-filter",
					Detail: fmt.Sprintf("filter dropped an allowed packet (proto=%d port=%d icmp=%d)",
						spec.proto, spec.dstPort, spec.icmpType)})
			}
			if !spec.passesFilter && errP == nil {
				res.Violations = append(res.Violations, Violation{Invariant: "raw-filter",
					Detail: fmt.Sprintf("filter passed a forbidden packet (proto=%d port=%d)",
						spec.proto, spec.dstPort)})
			}
		}
		res.Explained++
		return stepOutcome{}
	default:
		return stepOutcome{}
	}
}

func execIoctlStep(lin, pro *machineCtx, s Step, res *Result, idx int) stepOutcome {
	spec := pick(ioctlSpecs, s.A)
	var argL, argP any
	if spec.cmd == kernel.DMGETINFO {
		argL, argP = &userspace.DMInfo{}, &userspace.DMInfo{}
	} else {
		argL, argP = "1024x768", "1024x768"
	}
	errL := lin.m.K.Ioctl(lin.sess(s.Actor), spec.dev, spec.cmd, argL)
	errP := pro.m.K.Ioctl(pro.sess(s.Actor), spec.dev, spec.cmd, argP)
	if spec.cmd == kernel.DMGETINFO {
		// The dmcrypt metadata ioctl discloses the volume key; Protego
		// must never grant it to an unprivileged caller (§4.5).
		if errP == nil {
			res.Violations = append(res.Violations, Violation{Step: idx, Invariant: "dm-key",
				Detail: "unprivileged DMGETINFO succeeded on protego"})
		}
		return strictOutcome(s, errL, errP)
	}
	// VIDIOCSMODE: granted on Protego (§4.4 KMS), capability-gated on the
	// baseline; stateless either way.
	if errP == nil && errL != nil {
		res.Explained++
		return stepOutcome{}
	}
	return strictOutcome(s, errL, errP)
}

// checkTaskInvariant: no live Protego task may hold euid 0 or any
// capability unless it is the init task — fuzz actors never authenticate,
// so no legitimate elevation can outlive a step (transient elevated
// children, e.g. a NOPASSWD sudo, exit inside their utility run).
func checkTaskInvariant(pro *machineCtx, idx int, res *Result) {
	initPID := pro.m.Init.PID()
	for _, t := range pro.m.K.Tasks() {
		if t.PID() == initPID {
			continue
		}
		c := t.Creds()
		if c.EUID == 0 || !c.Effective.IsEmpty() || !c.Permitted.IsEmpty() {
			res.Violations = append(res.Violations, Violation{Step: idx, Invariant: "no-unauthorized-priv",
				Detail: fmt.Sprintf("task pid=%d holds euid=%d caps=%v/%v",
					t.PID(), c.EUID, c.Effective, c.Permitted)})
		}
	}
}

// checkMountInvariant: every user mount on the Protego image must be
// authorized — a fuse mount (ownership-checked at grant time) or a row of
// the in-kernel whitelist. This is what catches a broken MountCheck even
// though the reconciler "explains" the grant.
func checkMountInvariant(pro *machineCtx, idx int, res *Result) {
	if pro.m.Protego == nil {
		return
	}
	rules := pro.m.Protego.MountRules()
	for _, mnt := range pro.m.K.FS.Mounts() {
		if !mnt.UserMount {
			continue
		}
		if mnt.FSType == "fuse" {
			continue
		}
		ok := false
		for i := range rules {
			r := &rules[i]
			if r.Device == mnt.Device && r.MountPoint == mnt.Point &&
				(r.FSType == "" || r.FSType == "auto" || r.FSType == mnt.FSType) {
				ok = true
				break
			}
		}
		if !ok {
			res.Violations = append(res.Violations, Violation{Step: idx, Invariant: "mount-whitelist",
				Detail: fmt.Sprintf("user mount %s on %s (%s) matches no whitelist rule",
					mnt.Device, mnt.Point, mnt.FSType)})
		}
	}
}

// diffFingerprints reports only the lines the two fingerprints disagree on.
func diffFingerprints(a, b string) string {
	aSet := map[string]bool{}
	for _, l := range strings.Split(a, "\n") {
		aSet[l] = true
	}
	bSet := map[string]bool{}
	for _, l := range strings.Split(b, "\n") {
		bSet[l] = true
	}
	var out []string
	for _, l := range strings.Split(a, "\n") {
		if !bSet[l] {
			out = append(out, "  linux-only:   "+l)
		}
	}
	for _, l := range strings.Split(b, "\n") {
		if !aSet[l] {
			out = append(out, "  protego-only: "+l)
		}
	}
	return strings.Join(out, "\n")
}
