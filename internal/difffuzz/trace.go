// Package difffuzz implements differential syscall fuzzing between the
// baseline and Protego machine images (§5.3 made adversarial): the same
// randomized trace of syscalls and utility invocations is executed step by
// step on both images, the canonical state fingerprint
// (world.Machine.Fingerprint) is compared after every step, and standing
// security invariants are checked on the Protego image regardless of
// whether the traces diverge. Mismatches are shrunk to a minimal trace and
// emitted as a replayable Go literal.
package difffuzz

import (
	"fmt"
	"strings"
)

// Op is one operation kind of the trace grammar.
type Op uint8

// The grammar covers the syscall surface the paper's policies guard
// (mount, setuid family, raw sockets, privileged ports, device ioctls),
// the plain-DAC surface where the images must be boring and identical
// (open/read/write/chmod/chown), and whole-utility invocations through
// internal/userspace.
const (
	OpForkExit  Op = iota // fork a child of the actor's session and exit it
	OpRead                // read a pool file
	OpWrite               // write a pool file
	OpChmod               // chmod a pool file
	OpChown               // chown a pool file
	OpSetuid              // setuid(2) to a pool uid
	OpSeteuid             // seteuid(2) to a pool uid
	OpMkdir               // mkdir under a pool directory
	OpUnlink              // unlink a pool file
	OpMount               // mount(2) a pool (device, point, fstype, options) combo
	OpUmount              // umount(2) a pool mount point
	OpSocket              // socket(2) into a socket slot
	OpBind                // bind(2) a socket slot to a pool port
	OpSendTo              // sendto(2) a pool packet through a socket slot
	OpCloseSock           // close a socket slot
	OpIoctl               // a pool device ioctl
	OpUtility             // spawn a pool utility invocation
	opCount
)

var opNames = [opCount]string{
	"OpForkExit", "OpRead", "OpWrite", "OpChmod", "OpChown",
	"OpSetuid", "OpSeteuid", "OpMkdir", "OpUnlink", "OpMount",
	"OpUmount", "OpSocket", "OpBind", "OpSendTo", "OpCloseSock",
	"OpIoctl", "OpUtility",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Step is one trace operation. Actor selects the acting user session and
// A/B/C are op-specific selectors, each reduced modulo its pool size at
// execution time, so every byte sequence decodes to a runnable step (the
// property native fuzzing needs) and shrinking a field never produces an
// invalid trace.
type Step struct {
	Op      Op
	Actor   uint8
	A, B, C uint8
}

// Trace is a runnable operation sequence.
type Trace []Step

// maxTraceLen bounds decoded traces: long enough for interesting
// collisions, short enough that fuzzing throughput stays useful.
const maxTraceLen = 24

// Encode serializes the trace into the 5-bytes-per-step form consumed by
// DecodeTrace; it is how seed corpus entries are produced.
func (tr Trace) Encode() []byte {
	out := make([]byte, 0, len(tr)*5)
	for _, s := range tr {
		out = append(out, byte(s.Op), s.Actor, s.A, s.B, s.C)
	}
	return out
}

// DecodeTrace interprets arbitrary bytes as a trace: 5 bytes per step,
// opcode reduced modulo the op count, trailing partial steps dropped,
// length capped at maxTraceLen. It is total — every input decodes — so
// `go test -fuzz` explores the grammar directly.
func DecodeTrace(data []byte) Trace {
	n := len(data) / 5
	if n > maxTraceLen {
		n = maxTraceLen
	}
	tr := make(Trace, 0, n)
	for i := 0; i < n; i++ {
		b := data[i*5:]
		tr = append(tr, Step{
			Op:    Op(b[0] % uint8(opCount)),
			Actor: b[1],
			A:     b[2],
			B:     b[3],
			C:     b[4],
		})
	}
	return tr
}

// GoLiteral renders the trace as a compilable Go composite literal, the
// replay form embedded in failure reports: paste it into a test and pass
// it to Run to reproduce the exact divergence.
func (tr Trace) GoLiteral() string {
	var b strings.Builder
	b.WriteString("difffuzz.Trace{\n")
	for _, s := range tr {
		fmt.Fprintf(&b, "\t{Op: difffuzz.%s, Actor: %d, A: %d, B: %d, C: %d},\n",
			s.Op, s.Actor, s.A, s.B, s.C)
	}
	b.WriteString("}")
	return b.String()
}

// String renders a compact human-readable summary with the resolved pool
// choices, one step per line.
func (tr Trace) String() string {
	var b strings.Builder
	for i, s := range tr {
		fmt.Fprintf(&b, "%2d: %s actor=%s %s\n", i, s.Op, actorName(s.Actor), describeStep(s))
	}
	return b.String()
}
