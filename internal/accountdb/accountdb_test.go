package accountdb

import (
	"strings"
	"testing"
	"testing/quick"

	"protego/internal/vfs"
)

const samplePasswd = `root:x:0:0:root:/root:/bin/sh
alice:x:1000:100:Alice:/home/alice:/bin/sh
bob:x:1001:100:Bob:/home/bob:/bin/zsh
`

const sampleShadow = `root:$5$pgroot$abc:0:0:99999:7:::
alice:$5$pgalice$def:0:0:99999:7:::
bob:!:0:0:99999:7:::
`

const sampleGroup = `root:x:0:
users:x:100:alice,bob
ops:$5$pgops$ff:20:alice
`

func TestParsePasswd(t *testing.T) {
	users, err := ParsePasswd(samplePasswd)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != 3 {
		t.Fatalf("users = %d", len(users))
	}
	alice := users[1]
	if alice.Name != "alice" || alice.UID != 1000 || alice.GID != 100 ||
		alice.Home != "/home/alice" || alice.Shell != "/bin/sh" || alice.Gecos != "Alice" {
		t.Fatalf("alice: %+v", alice)
	}
}

func TestParsePasswdErrors(t *testing.T) {
	for _, in := range []string{"tooshort:x:1", "bad:x:NaN:0:::/bin/sh", "bad:x:0:NaN:::/bin/sh"} {
		if _, err := ParsePasswd(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestPasswdRoundTrip(t *testing.T) {
	users, err := ParsePasswd(samplePasswd)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParsePasswd(FormatPasswd(users))
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(users) {
		t.Fatal("round trip lost users")
	}
	for i := range users {
		if users[i] != again[i] {
			t.Fatalf("row %d: %+v != %+v", i, users[i], again[i])
		}
	}
}

func TestParseShadow(t *testing.T) {
	entries, err := ParseShadow(sampleShadow)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[2].Hash != "!" {
		t.Fatalf("entries: %+v", entries)
	}
}

func TestParseGroup(t *testing.T) {
	groups, err := ParseGroup(sampleGroup)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[1].Name != "users" || len(groups[1].Members) != 2 {
		t.Fatalf("users: %+v", groups[1])
	}
	if groups[0].Password != "" {
		t.Fatal("'x' must mean no password")
	}
	if groups[2].Password == "" {
		t.Fatal("ops password lost")
	}
}

func TestPasswordHashing(t *testing.T) {
	h := HashPassword("secret", "salt1")
	if !strings.HasPrefix(h, "$5$salt1$") {
		t.Fatalf("hash format: %q", h)
	}
	if !VerifyPassword(h, "secret") {
		t.Fatal("correct password rejected")
	}
	if VerifyPassword(h, "wrong") {
		t.Fatal("wrong password accepted")
	}
	if VerifyPassword(h, "") {
		t.Fatal("empty password accepted")
	}
	if HashPassword("secret", "salt2") == h {
		t.Fatal("salt ignored")
	}
	// Locked and malformed entries never verify.
	for _, locked := range []string{"!", "*", "", "$1$old$style", "!$5$salt1$deadbeef"} {
		if VerifyPassword(locked, "secret") {
			t.Errorf("locked hash %q verified", locked)
		}
	}
}

// Property: verify(hash(p, s), p) holds for arbitrary printable passwords
// and salts; verify with any *different* password fails.
func TestHashVerifyProperty(t *testing.T) {
	f := func(p, other, salt string) bool {
		if strings.ContainsAny(p, "$") || strings.ContainsAny(salt, "$") {
			return true
		}
		h := HashPassword(p, salt)
		if !VerifyPassword(h, p) {
			return false
		}
		if other != p && VerifyPassword(h, other) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func newDBFS(t *testing.T) *vfs.FS {
	t.Helper()
	fs := vfs.New()
	if _, err := fs.Mkdir(vfs.RootCred, "/etc", 0o755, 0, 0); err != nil {
		t.Fatal(err)
	}
	write := func(path, content string, mode vfs.Mode) {
		if err := fs.WriteFile(vfs.RootCred, path, []byte(content), mode, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	write(PasswdFile, samplePasswd, 0o644)
	write(ShadowFile, sampleShadow, 0o600)
	write(GroupFile, sampleGroup, 0o644)
	return fs
}

func TestDBLookups(t *testing.T) {
	db := NewDB(newDBFS(t))
	u, err := db.LookupUser("alice")
	if err != nil || u.UID != 1000 {
		t.Fatalf("lookup alice: %+v %v", u, err)
	}
	u, err = db.LookupUID(1001)
	if err != nil || u.Name != "bob" {
		t.Fatalf("lookup 1001: %+v %v", u, err)
	}
	if _, err := db.LookupUser("mallory"); err == nil {
		t.Fatal("phantom user")
	}
	g, err := db.LookupGroup("ops")
	if err != nil || g.GID != 20 {
		t.Fatalf("lookup ops: %+v %v", g, err)
	}
	g, err = db.LookupGID(100)
	if err != nil || g.Name != "users" {
		t.Fatalf("lookup 100: %+v %v", g, err)
	}
	names, err := db.GroupNamesOf("alice")
	if err != nil {
		t.Fatal(err)
	}
	// alice: users (primary) + ops (member)
	if len(names) != 2 {
		t.Fatalf("alice groups: %v", names)
	}
	gids, err := db.GroupIDsOf("alice")
	if err != nil || len(gids) != 1 || gids[0] != 20 {
		t.Fatalf("alice gids: %v %v", gids, err)
	}
}

func TestShadowHash(t *testing.T) {
	db := NewDB(newDBFS(t))
	h, err := db.ShadowHash("alice")
	if err != nil || !strings.Contains(h, "pgalice") {
		t.Fatalf("hash: %q %v", h, err)
	}
	if _, err := db.ShadowHash("mallory"); err == nil {
		t.Fatal("phantom shadow entry")
	}
}

func TestFragmentAndSynthesize(t *testing.T) {
	fs := newDBFS(t)
	if err := Fragment(fs); err != nil {
		t.Fatal(err)
	}
	// Per-user files exist with the right ownership and mode.
	ino, err := fs.Lookup(vfs.RootCred, PasswdsDir+"/alice")
	if err != nil {
		t.Fatal(err)
	}
	if ino.UID != 1000 || ino.Mode.Perm()&0o777 != 0o600 {
		t.Fatalf("fragment perms: uid=%d mode=%s", ino.UID, ino.Mode)
	}
	shadowIno, err := fs.Lookup(vfs.RootCred, ShadowsDir+"/alice")
	if err != nil || shadowIno.UID != 1000 {
		t.Fatalf("shadow fragment: %+v %v", shadowIno, err)
	}
	groupIno, err := fs.Lookup(vfs.RootCred, GroupsDir+"/ops")
	if err != nil || groupIno.GID != 20 || groupIno.Mode.Perm()&0o777 != 0o660 {
		t.Fatalf("group fragment: %+v %v", groupIno, err)
	}
	// The fragmented shadow hash survives round-tripping.
	data, _ := fs.ReadFile(vfs.RootCred, ShadowsDir+"/alice")
	if !strings.Contains(string(data), "pgalice") {
		t.Fatalf("shadow content: %q", data)
	}

	// Mutate a fragment (as chsh would), then synthesize the legacy
	// files and observe the change.
	newLine := "alice:x:1000:100:Alice:/home/alice:/bin/zsh\n"
	if err := fs.WriteFile(vfs.RootCred, PasswdsDir+"/alice", []byte(newLine), 0o600, 1000, 100); err != nil {
		t.Fatal(err)
	}
	if err := SynthesizeLegacy(fs); err != nil {
		t.Fatal(err)
	}
	db := NewDB(fs)
	u, err := db.LookupUser("alice")
	if err != nil || u.Shell != "/bin/zsh" {
		t.Fatalf("synthesized: %+v %v", u, err)
	}
	// Other users are unharmed.
	if u, _ := db.LookupUser("bob"); u.Shell != "/bin/zsh" && u.Shell == "" {
		t.Fatalf("bob lost: %+v", u)
	}
}

func TestFragmentIdempotent(t *testing.T) {
	fs := newDBFS(t)
	if err := Fragment(fs); err != nil {
		t.Fatal(err)
	}
	// A second fragmentation with identical inputs must not generate
	// watch events (monitord convergence).
	w := fs.Watch(PasswdsDir)
	defer w.Close()
	if err := Fragment(fs); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-w.C:
		t.Fatalf("unexpected event: %+v", ev)
	default:
	}
}

func TestValidatePasswdLine(t *testing.T) {
	good := "alice:x:1000:100:Alice A:/home/alice:/bin/zsh"
	if err := ValidatePasswdLine(good, "alice", 1000, 100); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		line string
		name string
		uid  int
	}{
		{"eve:x:1000:100:::/bin/sh", "alice", 1000},                      // renames
		{"alice:x:0:100:::/bin/sh", "alice", 1000},                       // uid change
		{"alice:x:1000:100:::/bin/sh\nx:x:0:0:::/bin/sh", "alice", 1000}, // two records
		{"alice:x:1000", "alice", 1000},                                  // malformed
	}
	for _, c := range cases {
		if err := ValidatePasswdLine(c.line, c.name, c.uid, 100); err == nil {
			t.Errorf("accepted %q", c.line)
		}
	}
}
