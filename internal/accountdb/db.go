package accountdb

import (
	"fmt"
	"strings"

	"protego/internal/errno"
	"protego/internal/vfs"
)

// Fragmented database locations (§4.4): one file per account, owned by the
// account, mode rw-------, inside root-owned rwxr-xr-x directories so
// unprivileged users cannot add accounts.
const (
	PasswdFile = "/etc/passwd"
	ShadowFile = "/etc/shadow"
	GroupFile  = "/etc/group"
	PasswdsDir = "/etc/passwds"
	ShadowsDir = "/etc/shadows"
	GroupsDir  = "/etc/groups"
)

// DB reads the account databases from a simulated file system. Reads are
// performed with kernel (root) credentials: the DB is consulted by the
// kernel's LSM and trusted services, never directly by untrusted tasks.
type DB struct {
	fs *vfs.FS
}

// NewDB creates a database view over fs.
func NewDB(fs *vfs.FS) *DB { return &DB{fs: fs} }

// Users returns all passwd records (from the legacy shared file).
func (db *DB) Users() ([]User, error) {
	data, err := db.fs.ReadFile(vfs.RootCred, PasswdFile)
	if err != nil {
		return nil, err
	}
	return ParsePasswd(string(data))
}

// LookupUser finds a user by name.
func (db *DB) LookupUser(name string) (*User, error) {
	users, err := db.Users()
	if err != nil {
		return nil, err
	}
	for i := range users {
		if users[i].Name == name {
			return &users[i], nil
		}
	}
	return nil, errno.ENOENT
}

// LookupUID finds a user by uid.
func (db *DB) LookupUID(uid int) (*User, error) {
	users, err := db.Users()
	if err != nil {
		return nil, err
	}
	for i := range users {
		if users[i].UID == uid {
			return &users[i], nil
		}
	}
	return nil, errno.ENOENT
}

// Groups returns all group records.
func (db *DB) Groups() ([]Group, error) {
	data, err := db.fs.ReadFile(vfs.RootCred, GroupFile)
	if err != nil {
		return nil, err
	}
	return ParseGroup(string(data))
}

// LookupGroup finds a group by name.
func (db *DB) LookupGroup(name string) (*Group, error) {
	groups, err := db.Groups()
	if err != nil {
		return nil, err
	}
	for i := range groups {
		if groups[i].Name == name {
			return &groups[i], nil
		}
	}
	return nil, errno.ENOENT
}

// LookupGID finds a group by gid.
func (db *DB) LookupGID(gid int) (*Group, error) {
	groups, err := db.Groups()
	if err != nil {
		return nil, err
	}
	for i := range groups {
		if groups[i].GID == gid {
			return &groups[i], nil
		}
	}
	return nil, errno.ENOENT
}

// GroupNamesOf returns the names of the groups user belongs to (primary
// group plus memberships).
func (db *DB) GroupNamesOf(user string) ([]string, error) {
	u, err := db.LookupUser(user)
	if err != nil {
		return nil, err
	}
	groups, err := db.Groups()
	if err != nil {
		return nil, err
	}
	var names []string
	for i := range groups {
		g := &groups[i]
		if g.GID == u.GID {
			names = append(names, g.Name)
			continue
		}
		for _, m := range g.Members {
			if m == user {
				names = append(names, g.Name)
				break
			}
		}
	}
	return names, nil
}

// GroupIDsOf returns the supplementary gids of user (excluding the primary).
func (db *DB) GroupIDsOf(user string) ([]int, error) {
	u, err := db.LookupUser(user)
	if err != nil {
		return nil, err
	}
	groups, err := db.Groups()
	if err != nil {
		return nil, err
	}
	var gids []int
	for i := range groups {
		g := &groups[i]
		if g.GID == u.GID {
			continue
		}
		for _, m := range g.Members {
			if m == user {
				gids = append(gids, g.GID)
				break
			}
		}
	}
	return gids, nil
}

// ShadowHash returns the stored password hash for user, consulting the
// fragmented per-user file first and falling back to the legacy shared
// shadow file.
func (db *DB) ShadowHash(user string) (string, error) {
	if data, err := db.fs.ReadFile(vfs.RootCred, ShadowsDir+"/"+user); err == nil {
		entries, perr := ParseShadow(string(data))
		if perr == nil && len(entries) == 1 {
			return entries[0].Hash, nil
		}
	}
	data, err := db.fs.ReadFile(vfs.RootCred, ShadowFile)
	if err != nil {
		return "", err
	}
	entries, err := ParseShadow(string(data))
	if err != nil {
		return "", err
	}
	for i := range entries {
		if entries[i].Name == user {
			return entries[i].Hash, nil
		}
	}
	return "", errno.ENOENT
}

// Fragment splits the shared database files into per-account files:
//
//	/etc/passwds/<user>  rw------- <user> <user-gid>  (one passwd line)
//	/etc/shadows/<user>  rw------- <user> <user-gid>  (one shadow line)
//	/etc/groups/<group>  rw-r----- root   <gid>       (one group line)
//
// The containing directories are rwxr-xr-x root:root so users cannot mint
// accounts. Existing fragments are overwritten from the shared files (the
// shared files remain authoritative at fragmentation time).
func Fragment(fs *vfs.FS) error {
	users, err := readUsers(fs)
	if err != nil {
		return err
	}
	shadow, err := readShadow(fs)
	if err != nil {
		return err
	}
	groups, err := readGroups(fs)
	if err != nil {
		return err
	}
	for _, dir := range []string{PasswdsDir, ShadowsDir, GroupsDir} {
		if !fs.Exists(vfs.RootCred, dir) {
			if _, err := fs.Mkdir(vfs.RootCred, dir, 0o755, 0, 0); err != nil {
				return fmt.Errorf("fragment: mkdir %s: %w", dir, err)
			}
		}
	}
	hashes := make(map[string]string, len(shadow))
	for i := range shadow {
		hashes[shadow[i].Name] = shadow[i].Hash
	}
	for i := range users {
		u := &users[i]
		if err := writeFragment(fs, PasswdsDir+"/"+u.Name, u.Line()+"\n", 0o600, u.UID, u.GID); err != nil {
			return err
		}
		se := ShadowEntry{Name: u.Name, Hash: hashes[u.Name]}
		if err := writeFragment(fs, ShadowsDir+"/"+u.Name, se.Line()+"\n", 0o600, u.UID, u.GID); err != nil {
			return err
		}
	}
	// Group fragments are root-owned but group-writable: membership and
	// group passwords are manageable by the group itself, matching DAC
	// granularity (§4.4).
	for i := range groups {
		g := &groups[i]
		if err := writeFragment(fs, GroupsDir+"/"+g.Name, g.Line()+"\n", 0o660, 0, g.GID); err != nil {
			return err
		}
	}
	return nil
}

func writeFragment(fs *vfs.FS, path, content string, mode vfs.Mode, uid, gid int) error {
	// Idempotence: skipping unchanged writes lets the monitoring daemon's
	// two-way synchronization converge instead of ping-ponging events.
	if existing, err := fs.ReadFile(vfs.RootCred, path); err == nil && string(existing) == content {
		return nil
	}
	if err := fs.WriteFile(vfs.RootCred, path, []byte(content), mode, uid, gid); err != nil {
		return fmt.Errorf("fragment: write %s: %w", path, err)
	}
	// WriteFile of an existing file keeps its ownership; enforce ours.
	if err := fs.Chown(vfs.RootCred, path, uid, gid); err != nil {
		return err
	}
	return fs.Chmod(vfs.RootCred, path, mode)
}

func readUsers(fs *vfs.FS) ([]User, error) {
	data, err := fs.ReadFile(vfs.RootCred, PasswdFile)
	if err != nil {
		return nil, err
	}
	return ParsePasswd(string(data))
}

func readShadow(fs *vfs.FS) ([]ShadowEntry, error) {
	data, err := fs.ReadFile(vfs.RootCred, ShadowFile)
	if err != nil {
		return nil, err
	}
	return ParseShadow(string(data))
}

func readGroups(fs *vfs.FS) ([]Group, error) {
	data, err := fs.ReadFile(vfs.RootCred, GroupFile)
	if err != nil {
		return nil, err
	}
	return ParseGroup(string(data))
}

// SynthesizeLegacy rebuilds the shared /etc/passwd, /etc/shadow, and
// /etc/group files from the per-account fragments — the backward
// compatibility direction maintained by the monitoring daemon so
// applications that read the legacy formats keep working (§2).
func SynthesizeLegacy(fs *vfs.FS) error {
	var users []User
	var shadows []ShadowEntry
	var groups []Group
	names, err := fs.ReadDir(vfs.RootCred, PasswdsDir)
	if err != nil {
		return err
	}
	for _, name := range names {
		data, err := fs.ReadFile(vfs.RootCred, PasswdsDir+"/"+name)
		if err != nil {
			return err
		}
		us, err := ParsePasswd(string(data))
		if err != nil {
			return fmt.Errorf("synthesize: fragment %s: %w", name, err)
		}
		users = append(users, us...)
	}
	shadowNames, err := fs.ReadDir(vfs.RootCred, ShadowsDir)
	if err != nil {
		return err
	}
	for _, name := range shadowNames {
		data, err := fs.ReadFile(vfs.RootCred, ShadowsDir+"/"+name)
		if err != nil {
			return err
		}
		es, err := ParseShadow(string(data))
		if err != nil {
			return fmt.Errorf("synthesize: shadow fragment %s: %w", name, err)
		}
		shadows = append(shadows, es...)
	}
	groupNames, err := fs.ReadDir(vfs.RootCred, GroupsDir)
	if err != nil {
		return err
	}
	for _, name := range groupNames {
		data, err := fs.ReadFile(vfs.RootCred, GroupsDir+"/"+name)
		if err != nil {
			return err
		}
		gs, err := ParseGroup(string(data))
		if err != nil {
			return fmt.Errorf("synthesize: group fragment %s: %w", name, err)
		}
		groups = append(groups, gs...)
	}
	// An empty fragment set means the tree was never (or only partially)
	// populated; rebuilding from it would wipe every account. Fail instead
	// and leave the legacy files as they are.
	if len(users) == 0 {
		return fmt.Errorf("synthesize: no passwd fragments, refusing to empty %s", PasswdFile)
	}
	if err := writeIfChanged(fs, PasswdFile, FormatPasswd(users), 0o644, 0, 0); err != nil {
		return err
	}
	if err := writeIfChanged(fs, ShadowFile, FormatShadow(shadows), 0o600, 0, 42); err != nil {
		return err
	}
	return writeIfChanged(fs, GroupFile, FormatGroup(groups), 0o644, 0, 0)
}

// writeIfChanged writes content to path only when it differs, keeping the
// monitoring daemon's bidirectional sync convergent.
func writeIfChanged(fs *vfs.FS, path, content string, mode vfs.Mode, uid, gid int) error {
	if existing, err := fs.ReadFile(vfs.RootCred, path); err == nil && string(existing) == content {
		return nil
	}
	return fs.WriteFile(vfs.RootCred, path, []byte(content), mode, uid, gid)
}

// ValidatePasswdLine checks that a user-supplied passwd line is a sane
// single record for the named user — the validation passwd/chsh perform
// before touching the database, now applied to per-user fragments.
func ValidatePasswdLine(line, user string, uid, gid int) error {
	if strings.ContainsAny(line, "\n") {
		return fmt.Errorf("record must be a single line")
	}
	users, err := ParsePasswd(line)
	if err != nil {
		return err
	}
	if len(users) != 1 {
		return fmt.Errorf("expected exactly one record")
	}
	u := users[0]
	if u.Name != user {
		return fmt.Errorf("record renames user %q to %q", user, u.Name)
	}
	if u.UID != uid || u.GID != gid {
		return fmt.Errorf("record changes uid/gid")
	}
	for _, field := range []string{u.Gecos, u.Home, u.Shell} {
		if strings.ContainsAny(field, ":") {
			return fmt.Errorf("field contains ':'")
		}
	}
	return nil
}
