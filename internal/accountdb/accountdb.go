// Package accountdb implements the credential databases of §4.4:
// /etc/passwd, /etc/shadow, and /etc/group parsing and serialization, the
// salted password hashing used by the authentication service, and the
// Protego fragmentation of the shared database files into per-account files
// (/etc/passwds/<user>, /etc/shadows/<user>, /etc/groups/<group>) whose DAC
// permissions match the policy granularity — so passwd and chsh no longer
// need root.
package accountdb

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// User is one /etc/passwd record.
type User struct {
	Name  string
	UID   int
	GID   int
	Gecos string
	Home  string
	Shell string
}

// Line renders the record in passwd(5) format (the password field is
// always "x": real hashes live in shadow).
func (u *User) Line() string {
	return fmt.Sprintf("%s:x:%d:%d:%s:%s:%s", u.Name, u.UID, u.GID, u.Gecos, u.Home, u.Shell)
}

// ShadowEntry is one /etc/shadow record (simplified to the fields the
// utilities use).
type ShadowEntry struct {
	Name string
	Hash string // "$5$salt$hex", "!" (locked), or "" (no password)
}

// Line renders the record in shadow(5) format.
func (s *ShadowEntry) Line() string {
	return fmt.Sprintf("%s:%s:0:0:99999:7:::", s.Name, s.Hash)
}

// Group is one /etc/group record. A non-empty Password makes it a
// password-protected group, joinable via newgrp after authentication.
type Group struct {
	Name     string
	Password string // hash, or "" for none
	GID      int
	Members  []string
}

// Line renders the record in group(5) format.
func (g *Group) Line() string {
	pw := g.Password
	if pw == "" {
		pw = "x"
	}
	return fmt.Sprintf("%s:%s:%d:%s", g.Name, pw, g.GID, strings.Join(g.Members, ","))
}

// ParsePasswd parses passwd(5) content.
func ParsePasswd(data string) ([]User, error) {
	var users []User
	for lineNo, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ":")
		if len(f) < 7 {
			return nil, fmt.Errorf("passwd line %d: expected 7 fields, got %d", lineNo+1, len(f))
		}
		uid, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("passwd line %d: bad uid %q", lineNo+1, f[2])
		}
		gid, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("passwd line %d: bad gid %q", lineNo+1, f[3])
		}
		users = append(users, User{Name: f[0], UID: uid, GID: gid, Gecos: f[4], Home: f[5], Shell: f[6]})
	}
	return users, nil
}

// FormatPasswd renders users in passwd(5) format, sorted by uid for
// stable output.
func FormatPasswd(users []User) string {
	sorted := append([]User(nil), users...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].UID < sorted[j].UID })
	var b strings.Builder
	for i := range sorted {
		b.WriteString(sorted[i].Line())
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseShadow parses shadow(5) content.
func ParseShadow(data string) ([]ShadowEntry, error) {
	var entries []ShadowEntry
	for lineNo, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ":")
		if len(f) < 2 {
			return nil, fmt.Errorf("shadow line %d: expected at least 2 fields", lineNo+1)
		}
		entries = append(entries, ShadowEntry{Name: f[0], Hash: f[1]})
	}
	return entries, nil
}

// FormatShadow renders entries in shadow(5) format.
func FormatShadow(entries []ShadowEntry) string {
	sorted := append([]ShadowEntry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var b strings.Builder
	for i := range sorted {
		b.WriteString(sorted[i].Line())
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseGroup parses group(5) content.
func ParseGroup(data string) ([]Group, error) {
	var groups []Group
	for lineNo, line := range strings.Split(data, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, ":")
		if len(f) < 4 {
			return nil, fmt.Errorf("group line %d: expected 4 fields, got %d", lineNo+1, len(f))
		}
		gid, err := strconv.Atoi(f[2])
		if err != nil {
			return nil, fmt.Errorf("group line %d: bad gid %q", lineNo+1, f[2])
		}
		g := Group{Name: f[0], GID: gid}
		if f[1] != "x" && f[1] != "" && f[1] != "*" {
			g.Password = f[1]
		}
		for _, m := range strings.Split(f[3], ",") {
			m = strings.TrimSpace(m)
			if m != "" {
				g.Members = append(g.Members, m)
			}
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// FormatGroup renders groups in group(5) format.
func FormatGroup(groups []Group) string {
	sorted := append([]Group(nil), groups...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].GID < sorted[j].GID })
	var b strings.Builder
	for i := range sorted {
		b.WriteString(sorted[i].Line())
		b.WriteByte('\n')
	}
	return b.String()
}

// HashPassword produces a salted SHA-256 hash in "$5$salt$hex" form — a
// stand-in for crypt(3) with the same structural properties (salted,
// one-way, constant-time comparable).
func HashPassword(password, salt string) string {
	h := sha256.New()
	h.Write([]byte(salt))
	h.Write([]byte("$"))
	h.Write([]byte(password))
	return "$5$" + salt + "$" + hex.EncodeToString(h.Sum(nil))
}

// VerifyPassword checks password against a stored hash. Locked ("!", "*")
// and empty hashes never verify.
func VerifyPassword(stored, password string) bool {
	if stored == "" || strings.HasPrefix(stored, "!") || stored == "*" {
		return false
	}
	parts := strings.Split(stored, "$")
	if len(parts) != 4 || parts[1] != "5" {
		return false
	}
	computed := HashPassword(password, parts[2])
	return subtle.ConstantTimeCompare([]byte(stored), []byte(computed)) == 1
}
