package survey

import (
	"math"
	"strings"
	"testing"
)

// TestWeightedAveragesMatchPaper recomputes the Wt.Avg column of Table 3
// from the per-distribution percentages and the survey population sizes.
// The published inputs are rounded to 2 decimals (and the paper's exact
// population snapshot may differ slightly), so rows are checked to ±0.03.
func TestWeightedAveragesMatchPaper(t *testing.T) {
	for i := range Table3 {
		p := &Table3[i]
		got := p.WeightedAvg()
		if math.Abs(got-p.PaperWtAvg) > 0.03 {
			t.Errorf("%s: recomputed %.3f, paper %.2f", p.Name, got, p.PaperWtAvg)
		}
	}
}

func TestTable3Properties(t *testing.T) {
	if len(Table3) != 20 {
		t.Fatalf("Table 3 has %d rows, want 20", len(Table3))
	}
	investigated := 0
	for i := range Table3 {
		p := &Table3[i]
		if p.UbuntuPct < 0 || p.UbuntuPct > 100 || p.DebianPct < 0 || p.DebianPct > 100 {
			t.Errorf("%s: percentage out of range", p.Name)
		}
		// Weighted average always lies between the two marginals.
		lo := math.Min(p.UbuntuPct, p.DebianPct)
		hi := math.Max(p.UbuntuPct, p.DebianPct)
		if w := p.WeightedAvg(); w < lo-1e-9 || w > hi+1e-9 {
			t.Errorf("%s: weighted avg %.2f outside [%.2f, %.2f]", p.Name, w, lo, hi)
		}
		if p.Investigated {
			investigated++
		}
	}
	if investigated != 15 {
		t.Errorf("investigated packages = %d, want 15 (through ecryptfs-utils)", investigated)
	}
}

func TestSortedByWeightMatchesPaperOrder(t *testing.T) {
	sorted := SortedByWeight()
	for i := range sorted {
		if sorted[i].Name != Table3[i].Name {
			t.Fatalf("row %d: sorted order %q differs from paper order %q", i, sorted[i].Name, Table3[i].Name)
		}
	}
}

func TestUbuntuDominatesWeight(t *testing.T) {
	// Ubuntu contributes ~94.9% of the weight; rows where the two
	// distributions disagree must land near the Ubuntu value.
	for i := range Table3 {
		p := &Table3[i]
		if math.Abs(p.UbuntuPct-p.DebianPct) > 20 {
			if math.Abs(p.WeightedAvg()-p.UbuntuPct) > math.Abs(p.WeightedAvg()-p.DebianPct) {
				t.Errorf("%s: weighted avg closer to Debian despite Ubuntu dominance", p.Name)
			}
		}
	}
}

func TestTable8Totals(t *testing.T) {
	if got := TotalTable8Binaries(); got != RemainingBinaries {
		t.Fatalf("table 8 binaries = %d, want %d", got, RemainingBinaries)
	}
	if got := AddressedBinaries(); got != 77 {
		t.Fatalf("addressed binaries = %d, want 77 (§5.4)", got)
	}
}

func TestFormatTables(t *testing.T) {
	t3 := FormatTable3()
	if !strings.Contains(t3, "mount") || !strings.Contains(t3, "99.99") {
		t.Fatalf("table 3 render: %q", t3)
	}
	t8 := FormatTable8()
	if !strings.Contains(t8, "77/91") {
		t.Fatalf("table 8 render: %q", t8)
	}
}

// TestCoveragePlausibility sanity-checks the published 89.5% coverage
// claim against what the marginals permit: coverage cannot exceed the
// probability that a system lacks the most popular uninvestigated package,
// and should be at least the share left after independently excluding all
// uninvestigated packages.
func TestCoveragePlausibility(t *testing.T) {
	upper := 100.0
	independentLower := 100.0
	for i := range Table3 {
		p := &Table3[i]
		if p.Investigated {
			continue
		}
		if u := 100 - p.WeightedAvg(); u < upper {
			upper = u
		}
		independentLower *= (100 - p.WeightedAvg()) / 100
	}
	if CoveragePct > upper {
		t.Fatalf("coverage %.1f%% exceeds upper bound %.1f%%", CoveragePct, upper)
	}
	// The independence assumption is pessimistic (installations of the
	// long-tail packages correlate), so the published figure should sit
	// between that bound and the upper bound.
	if CoveragePct < independentLower {
		t.Fatalf("coverage %.1f%% below independence lower bound %.1f%%", CoveragePct, independentLower)
	}
}
