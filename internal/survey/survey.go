// Package survey reproduces the installation-statistics analyses of the
// paper: Table 3 (the 20 most frequently installed packages containing
// setuid-to-root binaries, from the Debian and Ubuntu popularity-contest
// surveys of February 2013) and Table 8 (the remaining 67 packages' 91
// binaries grouped by the interface that requires privilege). The
// per-distribution percentages are the paper's published inputs; the
// weighted averages are recomputed here and checked against the published
// column in tests.
package survey

import (
	"fmt"
	"sort"
	"strings"
)

// Survey population sizes (§3.3).
const (
	UbuntuSystems = 2502647
	DebianSystems = 134020
)

// PackageStat is one row of Table 3.
type PackageStat struct {
	Name      string
	UbuntuPct float64
	DebianPct float64
	// PaperWtAvg is the weighted average as published, for validation.
	PaperWtAvg float64
	// Investigated marks packages fully covered by the §4 study
	// ("We have completely investigated all popular packages through
	// ecryptfs-utils").
	Investigated bool
}

// WeightedAvg recomputes the installation share weighted by the number of
// reporting systems in each survey.
func (p *PackageStat) WeightedAvg() float64 {
	total := float64(UbuntuSystems + DebianSystems)
	return (p.UbuntuPct*UbuntuSystems + p.DebianPct*DebianSystems) / total
}

// Table3 is the paper's Table 3 input data.
var Table3 = []PackageStat{
	{Name: "mount", UbuntuPct: 100.00, DebianPct: 99.75, PaperWtAvg: 99.99, Investigated: true},
	{Name: "login", UbuntuPct: 99.99, DebianPct: 99.82, PaperWtAvg: 99.98, Investigated: true},
	{Name: "passwd", UbuntuPct: 99.97, DebianPct: 99.84, PaperWtAvg: 99.97, Investigated: true},
	{Name: "iputils-ping", UbuntuPct: 99.87, DebianPct: 99.60, PaperWtAvg: 99.85, Investigated: true},
	{Name: "openssh-client", UbuntuPct: 99.54, DebianPct: 99.48, PaperWtAvg: 99.53, Investigated: true},
	{Name: "eject", UbuntuPct: 99.68, DebianPct: 90.95, PaperWtAvg: 99.24, Investigated: true},
	{Name: "sudo", UbuntuPct: 99.48, DebianPct: 74.34, PaperWtAvg: 98.21, Investigated: true},
	{Name: "ppp", UbuntuPct: 99.54, DebianPct: 45.65, PaperWtAvg: 96.81, Investigated: true},
	{Name: "iputils-tracepath", UbuntuPct: 99.78, DebianPct: 13.06, PaperWtAvg: 95.39, Investigated: true},
	{Name: "mtr-tiny", UbuntuPct: 99.54, DebianPct: 11.79, PaperWtAvg: 95.10, Investigated: true},
	{Name: "iputils-arping", UbuntuPct: 99.60, DebianPct: 3.55, PaperWtAvg: 94.74, Investigated: true},
	{Name: "libc-bin", UbuntuPct: 50.14, DebianPct: 86.15, PaperWtAvg: 51.96, Investigated: true},
	{Name: "fping", UbuntuPct: 27.70, DebianPct: 12.42, PaperWtAvg: 26.92, Investigated: true},
	{Name: "nfs-common", UbuntuPct: 9.76, DebianPct: 82.89, PaperWtAvg: 13.46, Investigated: true},
	{Name: "ecryptfs-utils", UbuntuPct: 11.64, DebianPct: 0.72, PaperWtAvg: 11.08, Investigated: true},
	{Name: "virtualbox", UbuntuPct: 10.56, DebianPct: 7.78, PaperWtAvg: 10.41},
	{Name: "kppp", UbuntuPct: 10.11, DebianPct: 4.97, PaperWtAvg: 9.85},
	{Name: "cifs-utils", UbuntuPct: 2.59, DebianPct: 19.23, PaperWtAvg: 3.43},
	{Name: "tcptraceroute", UbuntuPct: 0.33, DebianPct: 23.38, PaperWtAvg: 1.50},
	{Name: "chromium-browser", UbuntuPct: 0.48, DebianPct: 8.49, PaperWtAvg: 0.89},
}

// Headline statistics reported in Tables 1 and 3 and §3.3.
const (
	// TotalSetuidPackages is the number of Debian/Ubuntu packages
	// containing setuid-to-root binaries (Lintian, Feb 2013).
	TotalSetuidPackages = 82
	// CoveragePct is the paper's estimate of surveyed systems whose
	// complete setuid set the study covers (Table 1). It derives from
	// per-system package sets that the published marginals cannot
	// reconstruct, so it is carried as a published constant and
	// cross-checked for plausibility in tests.
	CoveragePct = 89.5
	// RemainingPackages / RemainingBinaries are the long tail of §5.4.
	RemainingPackages = 67
	RemainingBinaries = 91
)

// FormatTable3 renders the recomputed Table 3.
func FormatTable3() string {
	var b strings.Builder
	b.WriteString("Table 3: Percent of systems installing setuid-to-root packages\n")
	fmt.Fprintf(&b, "%-20s %10s %10s %12s %12s\n", "Package", "Ubuntu(%)", "Debian(%)", "Wt.Avg(%)", "Paper(%)")
	for i := range Table3 {
		p := &Table3[i]
		fmt.Fprintf(&b, "%-20s %10.2f %10.2f %12.2f %12.2f\n",
			p.Name, p.UbuntuPct, p.DebianPct, p.WeightedAvg(), p.PaperWtAvg)
	}
	fmt.Fprintf(&b, "\nSurveyed systems: %d Ubuntu + %d Debian\n", UbuntuSystems, DebianSystems)
	fmt.Fprintf(&b, "Investigated through ecryptfs-utils: ~%.1f%% of systems fully covered\n", CoveragePct)
	return b.String()
}

// InterfaceGroup is one row of Table 8: remaining setuid binaries grouped
// by the interface that requires privilege.
type InterfaceGroup struct {
	Interface string
	Binaries  int
	// Addressed reports whether Protego's existing mechanisms already
	// cover the interface (77 of 91 binaries); the rest need future
	// work (§5.4).
	Addressed bool
	// Note summarizes the path to deprivileging.
	Note string
}

// Table8 is the paper's Table 8 plus the §5.4 breakdown of the 14
// remaining binaries.
var Table8 = []InterfaceGroup{
	{Interface: "socket", Binaries: 14, Addressed: true, Note: "raw-socket policy (§4.1.1)"},
	{Interface: "bind", Binaries: 23, Addressed: true, Note: "port allocation table (§4.1.3)"},
	{Interface: "mount", Binaries: 3, Addressed: true, Note: "mount whitelist (§4.2)"},
	{Interface: "setuid, setgid", Binaries: 24, Addressed: true, Note: "delegation rules (§4.3)"},
	{Interface: "video driver control state", Binaries: 13, Addressed: true, Note: "KMS (§4.5)"},
	{Interface: "chroot/namespace", Binaries: 6, Addressed: false, Note: "unprivileged namespaces in Linux >= 3.8"},
	{Interface: "miscellaneous", Binaries: 8, Addressed: false, Note: "3 system administration, 5 custom virtualbox device"},
}

// AddressedBinaries counts long-tail binaries already covered by Protego
// interfaces.
func AddressedBinaries() int {
	n := 0
	for _, g := range Table8 {
		if g.Addressed {
			n += g.Binaries
		}
	}
	return n
}

// TotalTable8Binaries counts all long-tail binaries.
func TotalTable8Binaries() int {
	n := 0
	for _, g := range Table8 {
		n += g.Binaries
	}
	return n
}

// FormatTable8 renders Table 8.
func FormatTable8() string {
	var b strings.Builder
	b.WriteString("Table 8: Interfaces used by setuid binaries outside the Section 4 study\n")
	fmt.Fprintf(&b, "%-30s %10s  %s\n", "Interface", "Binaries", "Status")
	for _, g := range Table8 {
		status := "addressed by Protego"
		if !g.Addressed {
			status = "future work"
		}
		fmt.Fprintf(&b, "%-30s %10d  %s (%s)\n", g.Interface, g.Binaries, status, g.Note)
	}
	fmt.Fprintf(&b, "\n%d/%d binaries use interfaces Protego already mediates\n",
		AddressedBinaries(), TotalTable8Binaries())
	return b.String()
}

// SortedByWeight returns Table 3 sorted by recomputed weighted average,
// descending — the paper's presentation order.
func SortedByWeight() []PackageStat {
	out := append([]PackageStat(nil), Table3...)
	sort.Slice(out, func(i, j int) bool { return out[i].WeightedAvg() > out[j].WeightedAvg() })
	return out
}
