// Package monitord implements the trusted monitoring daemon of the Protego
// design (Table 2: 400 lines of Python in the paper, built on inotify).
// It watches the legacy, policy-relevant configuration files — /etc/fstab,
// /etc/sudoers (+/etc/sudoers.d), /etc/bind, /etc/ppp/options — and pushes
// their parsed contents into the kernel through the /proc/protego files,
// exactly the flow of Figure 1. It also keeps the fragmented per-account
// credential files and the legacy shared databases synchronized in both
// directions for backward compatibility (§2, §4.4). The daemon is only
// required for backward compatibility: an administrator can write the
// /proc files directly.
package monitord

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"time"

	"protego/internal/accountdb"
	"protego/internal/core"
	"protego/internal/errno"
	"protego/internal/faultinject"
	"protego/internal/kernel"
	"protego/internal/policy"
	"protego/internal/vfs"
)

// Config file locations the daemon watches.
const (
	FstabPath      = "/etc/fstab"
	SudoersPath    = "/etc/sudoers"
	SudoersDir     = "/etc/sudoers.d"
	BindPath       = "/etc/bind"
	PPPOptionsPath = "/etc/ppp/options"
)

// Daemon is the monitoring daemon. It runs with root privilege (it is part
// of the trusted computing base, alongside the authentication service).
type Daemon struct {
	k   *kernel.Kernel
	db  *accountdb.DB
	mod *core.Module

	// Debounce is the settle delay after a burst of file events.
	Debounce time.Duration

	// MaxRetries is how many times a failed sync pass is retried (with
	// doubling backoff starting at RetryBackoff) before the daemon gives
	// up for this round and keeps the last good policy. Transient faults
	// — a torn read racing an editor, a spurious EIO — heal on retry; a
	// persistently malformed file leaves the kernel's previous policy
	// untouched, so a bad reload can never empty a whitelist.
	MaxRetries   int
	RetryBackoff time.Duration

	mu    sync.Mutex
	syncs map[string]int
	// fragmentsSuspect latches after a failed legacy->fragments push. The
	// reverse direction (fragments -> legacy) is refused while set: a
	// partially written fragment tree must never be treated as
	// authoritative, or the rebuild would silently drop accounts from
	// /etc/passwd and /etc/shadow. A later successful push clears it.
	fragmentsSuspect bool
}

// New creates a daemon for the kernel. mod may be nil when the daemon is
// used only for account synchronization; policy syncs then fail.
func New(k *kernel.Kernel, db *accountdb.DB, mod *core.Module) *Daemon {
	return &Daemon{
		k:            k,
		db:           db,
		mod:          mod,
		Debounce:     5 * time.Millisecond,
		MaxRetries:   2,
		RetryBackoff: 500 * time.Microsecond,
		syncs:        make(map[string]int),
	}
}

// SyncCount reports how many synchronization passes completed for target
// ("mounts", "delegation", "bind", "ppp", "accounts-legacy",
// "accounts-fragments").
func (d *Daemon) SyncCount(target string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs[target]
}

func (d *Daemon) bump(target string) {
	d.mu.Lock()
	d.syncs[target]++
	d.mu.Unlock()
}

// traced runs one reparse/push cycle with bounded retry. Each attempt is
// timed and emitted on the trace ring; a pass that keeps failing after
// MaxRetries retries is abandoned, leaving the last good in-kernel policy
// in place (the /proc writers swap atomically, so a failed attempt never
// applies partially).
func (d *Daemon) traced(target string, fn func() error) error {
	var err error
	backoff := d.RetryBackoff
	for attempt := 0; ; attempt++ {
		start := time.Now()
		err = fn()
		d.k.Trace.MonitordSync(target, time.Since(start), err)
		if err == nil {
			d.bump(target)
			return nil
		}
		if attempt >= d.MaxRetries {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
	}
	d.k.Auditf("monitord: sync %s failed after %d attempts, keeping last good policy: %v",
		target, d.MaxRetries+1, err)
	return err
}

// readConfig reads a watched configuration file, routing the bytes
// through the kernel's fault injector (when armed) so tests can model
// torn reads — a half-written file caught mid-rename. Every watched file
// is text, so a NUL byte can only mean a torn or corrupt read; detecting
// it here fails the pass before any parser can quietly accept a prefix.
func (d *Daemon) readConfig(site, path string) ([]byte, error) {
	data, err := d.k.FS.ReadFile(vfs.RootCred, path)
	if err != nil {
		return nil, err
	}
	data, err = d.k.FaultInjector().CheckData(site, data)
	if err != nil {
		return nil, err
	}
	if bytes.IndexByte(data, 0) >= 0 {
		return nil, fmt.Errorf("monitord: %s: torn read (NUL in text config): %w", path, errno.EIO)
	}
	return data, nil
}

// writeProc writes data to a /proc policy file with root credentials (the
// daemon is root; the file is mode 0600 root).
func (d *Daemon) writeProc(path string, data string) error {
	ino, err := d.k.FS.Lookup(vfs.RootCred, path)
	if err != nil {
		return err
	}
	if ino.WriteFn == nil {
		return fmt.Errorf("monitord: %s is not a policy file: %w", path, errno.EINVAL)
	}
	return ino.WriteFn(vfs.RootCred, []byte(data))
}

// SyncMounts translates the user entries of /etc/fstab into the kernel's
// mount whitelist.
func (d *Daemon) SyncMounts() error { return d.traced("mounts", d.syncMounts) }

func (d *Daemon) syncMounts() error {
	data, err := d.readConfig(faultinject.SiteMonFstab, FstabPath)
	if err != nil {
		return err
	}
	entries, err := policy.ParseFstab(string(data))
	if err != nil {
		return fmt.Errorf("monitord: fstab: %w", err)
	}
	rules := core.MountRulesFromFstab(entries)
	var b strings.Builder
	b.WriteString("clear\n")
	for _, r := range rules {
		b.WriteString("add ")
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return d.writeProc(core.ProcMounts, b.String())
}

// SyncDelegation concatenates /etc/sudoers and /etc/sudoers.d/* and pushes
// the result to the kernel's delegation policy.
func (d *Daemon) SyncDelegation() error { return d.traced("delegation", d.syncDelegation) }

func (d *Daemon) syncDelegation() error {
	var b strings.Builder
	data, err := d.readConfig(faultinject.SiteMonSudoers, SudoersPath)
	if err != nil {
		return err
	}
	b.Write(data)
	b.WriteByte('\n')
	if names, err := d.k.FS.ReadDir(vfs.RootCred, SudoersDir); err == nil {
		for _, name := range names {
			frag, err := d.readConfig(faultinject.SiteMonSudoers, SudoersDir+"/"+name)
			if err != nil {
				return err
			}
			b.Write(frag)
			b.WriteByte('\n')
		}
	}
	return d.writeProc(core.ProcDelegation, b.String())
}

// SyncBind pushes /etc/bind (usernames resolved to uids) into the kernel's
// port allocation table.
func (d *Daemon) SyncBind() error { return d.traced("bind", d.syncBind) }

func (d *Daemon) syncBind() error {
	data, err := d.readConfig(faultinject.SiteMonBind, BindPath)
	if err != nil {
		return err
	}
	entries, err := policy.ParseBind(string(data))
	if err != nil {
		return fmt.Errorf("monitord: bind: %w", err)
	}
	var b strings.Builder
	b.WriteString("clear\n")
	for i := range entries {
		e := &entries[i]
		u, err := d.db.LookupUser(e.User)
		if err != nil {
			return fmt.Errorf("monitord: bind: unknown user %q", e.User)
		}
		fmt.Fprintf(&b, "add %d %s %s %d\n", e.Port, e.Proto, e.Binary, u.UID)
	}
	return d.writeProc(core.ProcBind, b.String())
}

// SyncPPP pushes /etc/ppp/options into the kernel's PPP policy.
func (d *Daemon) SyncPPP() error { return d.traced("ppp", d.syncPPP) }

func (d *Daemon) syncPPP() error {
	data, err := d.readConfig(faultinject.SiteMonPPP, PPPOptionsPath)
	if err != nil {
		return err
	}
	return d.writeProc(core.ProcPPP, string(data))
}

// SyncAccountsFromFragments rebuilds the legacy shared database files from
// the per-account fragments (called when a fragment changes — e.g. a user
// ran passwd or chsh).
func (d *Daemon) SyncAccountsFromFragments() error {
	return d.traced("accounts-legacy", func() error {
		if err := d.k.FaultInjector().Check(faultinject.SiteMonAccounts); err != nil {
			return err
		}
		d.mu.Lock()
		suspect := d.fragmentsSuspect
		d.mu.Unlock()
		if suspect {
			return fmt.Errorf("monitord: fragment tree incomplete after failed push, keeping legacy files: %w", errno.EIO)
		}
		if err := accountdb.SynthesizeLegacy(d.k.FS); err != nil {
			return err
		}
		if d.mod != nil {
			d.mod.InvalidateIdentity()
		}
		return nil
	})
}

// SyncAccountsToFragments re-fragments the shared files (called when the
// legacy files change — e.g. the administrator ran vipw or added a user).
func (d *Daemon) SyncAccountsToFragments() error {
	err := d.traced("accounts-fragments", func() error {
		// The legacy passwd file feeds the fragmenting; a torn read of it
		// must abort the whole pass before any fragment is rewritten.
		if _, err := d.readConfig(faultinject.SiteMonAccounts, accountdb.PasswdFile); err != nil {
			return err
		}
		if err := accountdb.Fragment(d.k.FS); err != nil {
			return err
		}
		if d.mod != nil {
			d.mod.InvalidateIdentity()
		}
		return nil
	})
	d.mu.Lock()
	d.fragmentsSuspect = err != nil
	d.mu.Unlock()
	return err
}

// SyncAll performs every synchronization once (boot-time initialization).
// Missing optional files (/etc/bind, /etc/ppp/options, fragments) are
// skipped silently; a malformed present file is an error.
func (d *Daemon) SyncAll() error {
	type step struct {
		name     string
		required bool
		fn       func() error
		present  func() bool
	}
	exists := func(path string) func() bool {
		return func() bool { return d.k.FS.Exists(vfs.RootCred, path) }
	}
	steps := []step{
		{"mounts", false, d.SyncMounts, exists(FstabPath)},
		{"delegation", false, d.SyncDelegation, exists(SudoersPath)},
		{"bind", false, d.SyncBind, exists(BindPath)},
		{"ppp", false, d.SyncPPP, exists(PPPOptionsPath)},
		{"accounts", false, d.SyncAccountsToFragments, exists(accountdb.PasswdFile)},
	}
	for _, s := range steps {
		if !s.present() {
			continue
		}
		if err := s.fn(); err != nil {
			return fmt.Errorf("monitord: sync %s: %w", s.name, err)
		}
	}
	return nil
}

// Run watches /etc and re-synchronizes the affected policy on each change
// until stop is closed. Events are debounced so editors that write
// temp+rename do not trigger half-parsed syncs. The watch is registered
// before Run returns control to the scheduler only when started via
// Start; prefer Start to avoid missing edits racing with daemon startup.
func (d *Daemon) Run(stop <-chan struct{}) {
	w := d.k.FS.Watch("/etc")
	d.loop(w, stop)
}

// Start registers the /etc watch synchronously and then services events on
// a background goroutine, so configuration edits made immediately after
// Start returns are guaranteed to be observed.
func (d *Daemon) Start(stop <-chan struct{}) {
	w := d.k.FS.Watch("/etc")
	go d.loop(w, stop)
}

func (d *Daemon) loop(w *vfs.Watch, stop <-chan struct{}) {
	defer w.Close()
	pending := make(map[string]bool)
	var timer *time.Timer
	var timerC <-chan time.Time
	for {
		select {
		case ev, ok := <-w.C:
			if !ok {
				return
			}
			if target := d.classify(ev.Path); target != "" {
				pending[target] = true
				if timer == nil {
					timer = time.NewTimer(d.Debounce)
				} else {
					timer.Reset(d.Debounce)
				}
				timerC = timer.C
			}
		case <-timerC:
			for target := range pending {
				d.dispatch(target)
			}
			pending = make(map[string]bool)
			timerC = nil
		case <-stop:
			return
		}
	}
}

// classify maps a changed path to the sync target it affects.
func (d *Daemon) classify(path string) string {
	switch {
	case path == FstabPath:
		return "mounts"
	case path == SudoersPath || vfs.IsUnder(path, SudoersDir):
		return "delegation"
	case path == BindPath:
		return "bind"
	case path == PPPOptionsPath:
		return "ppp"
	case vfs.IsUnder(path, accountdb.PasswdsDir),
		vfs.IsUnder(path, accountdb.ShadowsDir),
		vfs.IsUnder(path, accountdb.GroupsDir):
		return "accounts-legacy"
	case path == accountdb.PasswdFile, path == accountdb.ShadowFile, path == accountdb.GroupFile:
		return "accounts-fragments"
	default:
		return ""
	}
}

func (d *Daemon) dispatch(target string) {
	var err error
	switch target {
	case "mounts":
		err = d.SyncMounts()
	case "delegation":
		err = d.SyncDelegation()
	case "bind":
		err = d.SyncBind()
	case "ppp":
		err = d.SyncPPP()
	case "accounts-legacy":
		err = d.SyncAccountsFromFragments()
	case "accounts-fragments":
		err = d.SyncAccountsToFragments()
	}
	if err != nil {
		d.k.Auditf("monitord: sync %s failed: %v", target, err)
	}
}
