// Package monitord implements the trusted monitoring daemon of the Protego
// design (Table 2: 400 lines of Python in the paper, built on inotify).
// It watches the legacy, policy-relevant configuration files — /etc/fstab,
// /etc/sudoers (+/etc/sudoers.d), /etc/bind, /etc/ppp/options — and pushes
// their parsed contents into the kernel through the /proc/protego files,
// exactly the flow of Figure 1. It also keeps the fragmented per-account
// credential files and the legacy shared databases synchronized in both
// directions for backward compatibility (§2, §4.4). The daemon is only
// required for backward compatibility: an administrator can write the
// /proc files directly.
package monitord

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"protego/internal/accountdb"
	"protego/internal/core"
	"protego/internal/kernel"
	"protego/internal/policy"
	"protego/internal/vfs"
)

// Config file locations the daemon watches.
const (
	FstabPath      = "/etc/fstab"
	SudoersPath    = "/etc/sudoers"
	SudoersDir     = "/etc/sudoers.d"
	BindPath       = "/etc/bind"
	PPPOptionsPath = "/etc/ppp/options"
)

// Daemon is the monitoring daemon. It runs with root privilege (it is part
// of the trusted computing base, alongside the authentication service).
type Daemon struct {
	k   *kernel.Kernel
	db  *accountdb.DB
	mod *core.Module

	// Debounce is the settle delay after a burst of file events.
	Debounce time.Duration

	mu    sync.Mutex
	syncs map[string]int
}

// New creates a daemon for the kernel. mod may be nil when the daemon is
// used only for account synchronization; policy syncs then fail.
func New(k *kernel.Kernel, db *accountdb.DB, mod *core.Module) *Daemon {
	return &Daemon{
		k:        k,
		db:       db,
		mod:      mod,
		Debounce: 5 * time.Millisecond,
		syncs:    make(map[string]int),
	}
}

// SyncCount reports how many synchronization passes completed for target
// ("mounts", "delegation", "bind", "ppp", "accounts-legacy",
// "accounts-fragments").
func (d *Daemon) SyncCount(target string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncs[target]
}

func (d *Daemon) bump(target string) {
	d.mu.Lock()
	d.syncs[target]++
	d.mu.Unlock()
}

// traced times one reparse/push cycle, emits its trace event, and counts
// the pass on success.
func (d *Daemon) traced(target string, fn func() error) error {
	start := time.Now()
	err := fn()
	d.k.Trace.MonitordSync(target, time.Since(start), err)
	if err == nil {
		d.bump(target)
	}
	return err
}

// writeProc writes data to a /proc policy file with root credentials (the
// daemon is root; the file is mode 0600 root).
func (d *Daemon) writeProc(path string, data string) error {
	ino, err := d.k.FS.Lookup(vfs.RootCred, path)
	if err != nil {
		return err
	}
	if ino.WriteFn == nil {
		return fmt.Errorf("monitord: %s is not a policy file", path)
	}
	return ino.WriteFn(vfs.RootCred, []byte(data))
}

// SyncMounts translates the user entries of /etc/fstab into the kernel's
// mount whitelist.
func (d *Daemon) SyncMounts() error { return d.traced("mounts", d.syncMounts) }

func (d *Daemon) syncMounts() error {
	data, err := d.k.FS.ReadFile(vfs.RootCred, FstabPath)
	if err != nil {
		return err
	}
	entries, err := policy.ParseFstab(string(data))
	if err != nil {
		return fmt.Errorf("monitord: fstab: %w", err)
	}
	rules := core.MountRulesFromFstab(entries)
	var b strings.Builder
	b.WriteString("clear\n")
	for _, r := range rules {
		b.WriteString("add ")
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return d.writeProc(core.ProcMounts, b.String())
}

// SyncDelegation concatenates /etc/sudoers and /etc/sudoers.d/* and pushes
// the result to the kernel's delegation policy.
func (d *Daemon) SyncDelegation() error { return d.traced("delegation", d.syncDelegation) }

func (d *Daemon) syncDelegation() error {
	var b strings.Builder
	data, err := d.k.FS.ReadFile(vfs.RootCred, SudoersPath)
	if err != nil {
		return err
	}
	b.Write(data)
	b.WriteByte('\n')
	if names, err := d.k.FS.ReadDir(vfs.RootCred, SudoersDir); err == nil {
		for _, name := range names {
			frag, err := d.k.FS.ReadFile(vfs.RootCred, SudoersDir+"/"+name)
			if err != nil {
				return err
			}
			b.Write(frag)
			b.WriteByte('\n')
		}
	}
	return d.writeProc(core.ProcDelegation, b.String())
}

// SyncBind pushes /etc/bind (usernames resolved to uids) into the kernel's
// port allocation table.
func (d *Daemon) SyncBind() error { return d.traced("bind", d.syncBind) }

func (d *Daemon) syncBind() error {
	data, err := d.k.FS.ReadFile(vfs.RootCred, BindPath)
	if err != nil {
		return err
	}
	entries, err := policy.ParseBind(string(data))
	if err != nil {
		return fmt.Errorf("monitord: bind: %w", err)
	}
	var b strings.Builder
	b.WriteString("clear\n")
	for i := range entries {
		e := &entries[i]
		u, err := d.db.LookupUser(e.User)
		if err != nil {
			return fmt.Errorf("monitord: bind: unknown user %q", e.User)
		}
		fmt.Fprintf(&b, "add %d %s %s %d\n", e.Port, e.Proto, e.Binary, u.UID)
	}
	return d.writeProc(core.ProcBind, b.String())
}

// SyncPPP pushes /etc/ppp/options into the kernel's PPP policy.
func (d *Daemon) SyncPPP() error { return d.traced("ppp", d.syncPPP) }

func (d *Daemon) syncPPP() error {
	data, err := d.k.FS.ReadFile(vfs.RootCred, PPPOptionsPath)
	if err != nil {
		return err
	}
	return d.writeProc(core.ProcPPP, string(data))
}

// SyncAccountsFromFragments rebuilds the legacy shared database files from
// the per-account fragments (called when a fragment changes — e.g. a user
// ran passwd or chsh).
func (d *Daemon) SyncAccountsFromFragments() error {
	return d.traced("accounts-legacy", func() error {
		if err := accountdb.SynthesizeLegacy(d.k.FS); err != nil {
			return err
		}
		if d.mod != nil {
			d.mod.InvalidateIdentity()
		}
		return nil
	})
}

// SyncAccountsToFragments re-fragments the shared files (called when the
// legacy files change — e.g. the administrator ran vipw or added a user).
func (d *Daemon) SyncAccountsToFragments() error {
	return d.traced("accounts-fragments", func() error {
		if err := accountdb.Fragment(d.k.FS); err != nil {
			return err
		}
		if d.mod != nil {
			d.mod.InvalidateIdentity()
		}
		return nil
	})
}

// SyncAll performs every synchronization once (boot-time initialization).
// Missing optional files (/etc/bind, /etc/ppp/options, fragments) are
// skipped silently; a malformed present file is an error.
func (d *Daemon) SyncAll() error {
	type step struct {
		name     string
		required bool
		fn       func() error
		present  func() bool
	}
	exists := func(path string) func() bool {
		return func() bool { return d.k.FS.Exists(vfs.RootCred, path) }
	}
	steps := []step{
		{"mounts", false, d.SyncMounts, exists(FstabPath)},
		{"delegation", false, d.SyncDelegation, exists(SudoersPath)},
		{"bind", false, d.SyncBind, exists(BindPath)},
		{"ppp", false, d.SyncPPP, exists(PPPOptionsPath)},
		{"accounts", false, d.SyncAccountsToFragments, exists(accountdb.PasswdFile)},
	}
	for _, s := range steps {
		if !s.present() {
			continue
		}
		if err := s.fn(); err != nil {
			return fmt.Errorf("monitord: sync %s: %w", s.name, err)
		}
	}
	return nil
}

// Run watches /etc and re-synchronizes the affected policy on each change
// until stop is closed. Events are debounced so editors that write
// temp+rename do not trigger half-parsed syncs. The watch is registered
// before Run returns control to the scheduler only when started via
// Start; prefer Start to avoid missing edits racing with daemon startup.
func (d *Daemon) Run(stop <-chan struct{}) {
	w := d.k.FS.Watch("/etc")
	d.loop(w, stop)
}

// Start registers the /etc watch synchronously and then services events on
// a background goroutine, so configuration edits made immediately after
// Start returns are guaranteed to be observed.
func (d *Daemon) Start(stop <-chan struct{}) {
	w := d.k.FS.Watch("/etc")
	go d.loop(w, stop)
}

func (d *Daemon) loop(w *vfs.Watch, stop <-chan struct{}) {
	defer w.Close()
	pending := make(map[string]bool)
	var timer *time.Timer
	var timerC <-chan time.Time
	for {
		select {
		case ev, ok := <-w.C:
			if !ok {
				return
			}
			if target := d.classify(ev.Path); target != "" {
				pending[target] = true
				if timer == nil {
					timer = time.NewTimer(d.Debounce)
				} else {
					timer.Reset(d.Debounce)
				}
				timerC = timer.C
			}
		case <-timerC:
			for target := range pending {
				d.dispatch(target)
			}
			pending = make(map[string]bool)
			timerC = nil
		case <-stop:
			return
		}
	}
}

// classify maps a changed path to the sync target it affects.
func (d *Daemon) classify(path string) string {
	switch {
	case path == FstabPath:
		return "mounts"
	case path == SudoersPath || vfs.IsUnder(path, SudoersDir):
		return "delegation"
	case path == BindPath:
		return "bind"
	case path == PPPOptionsPath:
		return "ppp"
	case vfs.IsUnder(path, accountdb.PasswdsDir),
		vfs.IsUnder(path, accountdb.ShadowsDir),
		vfs.IsUnder(path, accountdb.GroupsDir):
		return "accounts-legacy"
	case path == accountdb.PasswdFile, path == accountdb.ShadowFile, path == accountdb.GroupFile:
		return "accounts-fragments"
	default:
		return ""
	}
}

func (d *Daemon) dispatch(target string) {
	var err error
	switch target {
	case "mounts":
		err = d.SyncMounts()
	case "delegation":
		err = d.SyncDelegation()
	case "bind":
		err = d.SyncBind()
	case "ppp":
		err = d.SyncPPP()
	case "accounts-legacy":
		err = d.SyncAccountsFromFragments()
	case "accounts-fragments":
		err = d.SyncAccountsToFragments()
	}
	if err != nil {
		d.k.Auditf("monitord: sync %s failed: %v", target, err)
	}
}
