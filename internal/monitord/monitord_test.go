package monitord_test

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"protego/internal/accountdb"
	"protego/internal/core"
	"protego/internal/errno"
	"protego/internal/faultinject"
	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

func protegoMachine(t *testing.T) *world.Machine {
	t.Helper()
	m, err := world.BuildProtego()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSyncAllAtBoot(t *testing.T) {
	m := protegoMachine(t) // Build runs SyncAll
	if got := len(m.Protego.MountRules()); got != 2 {
		t.Fatalf("mount rules = %d (cdrom + usb expected)", got)
	}
	if m.Protego.Sudoers() == nil {
		t.Fatal("delegation not synced")
	}
	if len(m.Protego.BindAllocations()) != 2 {
		t.Fatalf("bind allocations: %v", m.Protego.BindAllocations())
	}
	// Boot fragmentation happened.
	if !m.K.FS.Exists(vfs.RootCred, accountdb.PasswdsDir+"/alice") {
		t.Fatal("accounts not fragmented at boot")
	}
}

func TestSyncMountsReflectsFstabEdits(t *testing.T) {
	m := protegoMachine(t)
	fstab, _ := m.K.FS.ReadFile(vfs.RootCred, "/etc/fstab")
	updated := string(fstab) + "/dev/sdc1 /mnt/backup ext4 rw,user 0 0\n"
	if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/fstab", []byte(updated), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Monitor.SyncMounts(); err != nil {
		t.Fatal(err)
	}
	rules := m.Protego.MountRules()
	if len(rules) != 3 {
		t.Fatalf("rules = %d", len(rules))
	}
	// And removing all user entries empties the whitelist.
	if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/fstab", []byte("/dev/sda1 / ext4 defaults 0 1\n"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Monitor.SyncMounts(); err != nil {
		t.Fatal(err)
	}
	if len(m.Protego.MountRules()) != 0 {
		t.Fatal("whitelist not cleared")
	}
}

func TestSyncMountsRejectsMalformedFstab(t *testing.T) {
	m := protegoMachine(t)
	before := m.Protego.MountRules()
	if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/fstab", []byte("broken line\n"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Monitor.SyncMounts(); err == nil {
		t.Fatal("malformed fstab accepted")
	}
	// Old policy stays in force.
	if len(m.Protego.MountRules()) != len(before) {
		t.Fatal("policy clobbered by failed sync")
	}
}

func TestSyncDelegationIncludesSudoersD(t *testing.T) {
	m := protegoMachine(t)
	if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/sudoers.d/extra",
		[]byte("charlie ALL = (bob) NOPASSWD: /usr/bin/id\n"), 0o440, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Monitor.SyncDelegation(); err != nil {
		t.Fatal(err)
	}
	s := m.Protego.Sudoers()
	if _, ok := s.LookupTransition("charlie", nil, "bob"); !ok {
		t.Fatal("sudoers.d fragment not merged")
	}
}

func TestSyncBindResolvesUsers(t *testing.T) {
	m := protegoMachine(t)
	if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/bind",
		[]byte("587 tcp /usr/sbin/exim4 Debian-exim\n"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Monitor.SyncBind(); err != nil {
		t.Fatal(err)
	}
	allocs := m.Protego.BindAllocations()
	if len(allocs) != 1 || !strings.Contains(allocs[0], "587 tcp /usr/sbin/exim4 101") {
		t.Fatalf("allocations: %v", allocs)
	}
	// Unknown users abort the sync.
	if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/bind",
		[]byte("25 tcp /usr/sbin/exim4 ghost\n"), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Monitor.SyncBind(); err == nil {
		t.Fatal("unknown user accepted")
	}
}

func TestAccountRoundTrip(t *testing.T) {
	m := protegoMachine(t)
	// A user edits her fragment (what chsh does)...
	frag := accountdb.PasswdsDir + "/bob"
	if err := m.K.FS.WriteFile(vfs.RootCred, frag,
		[]byte("bob:x:1001:100:Bobby:/home/bob:/bin/zsh\n"), 0o600, 1001, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Monitor.SyncAccountsFromFragments(); err != nil {
		t.Fatal(err)
	}
	u, err := m.DB.LookupUser("bob")
	if err != nil || u.Shell != "/bin/zsh" || u.Gecos != "Bobby" {
		t.Fatalf("legacy not updated: %+v %v", u, err)
	}
	// ...and the admin edits the legacy file (what vipw does).
	data, _ := m.K.FS.ReadFile(vfs.RootCred, accountdb.PasswdFile)
	edited := strings.Replace(string(data), "/bin/zsh", "/bin/bash", 1)
	if err := m.K.FS.WriteFile(vfs.RootCred, accountdb.PasswdFile, []byte(edited), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Monitor.SyncAccountsToFragments(); err != nil {
		t.Fatal(err)
	}
	fragData, _ := m.K.FS.ReadFile(vfs.RootCred, frag)
	if !strings.Contains(string(fragData), "/bin/bash") {
		t.Fatalf("fragment not updated: %q", fragData)
	}
}

func TestWatcherLoopEndToEnd(t *testing.T) {
	m := protegoMachine(t)
	stop := make(chan struct{})
	m.Monitor.Start(stop)
	defer close(stop)

	baseline := m.Monitor.SyncCount("mounts")
	fstab, _ := m.K.FS.ReadFile(vfs.RootCred, "/etc/fstab")
	updated := string(fstab) + "/dev/sdc1 /mnt/backup ext4 rw,user 0 0\n"
	if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/fstab", []byte(updated), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.Monitor.SyncCount("mounts") <= baseline {
		if time.Now().After(deadline) {
			t.Fatal("watcher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	// The policy change is live: alice can mount the new entry.
	alice, err := m.Session("alice")
	if err != nil {
		t.Fatal(err)
	}
	code, _, errOut, _ := m.Run(alice, []string{userspace.BinMount, "/dev/sdc1", "/mnt/backup"}, nil)
	if code != 0 {
		t.Fatalf("mount after live sync: %s", errOut)
	}
}

func TestWatcherAccountConvergence(t *testing.T) {
	// A fragment edit triggers legacy regeneration, which must converge
	// (no event ping-pong).
	m := protegoMachine(t)
	stop := make(chan struct{})
	m.Monitor.Start(stop)
	defer close(stop)
	baseline := m.Monitor.SyncCount("accounts-legacy")
	frag := accountdb.PasswdsDir + "/bob"
	if err := m.K.FS.WriteFile(vfs.RootCred, frag,
		[]byte("bob:x:1001:100:B:/home/bob:/bin/zsh\n"), 0o600, 1001, 100); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for m.Monitor.SyncCount("accounts-legacy") <= baseline {
		if time.Now().After(deadline) {
			t.Fatal("account sync never ran")
		}
		time.Sleep(time.Millisecond)
	}
	// Allow any follow-on events to settle, then verify quiescence.
	time.Sleep(50 * time.Millisecond)
	countLegacy := m.Monitor.SyncCount("accounts-legacy")
	countFrag := m.Monitor.SyncCount("accounts-fragments")
	time.Sleep(100 * time.Millisecond)
	if m.Monitor.SyncCount("accounts-legacy") != countLegacy ||
		m.Monitor.SyncCount("accounts-fragments") != countFrag {
		t.Fatal("account sync did not converge (ping-pong)")
	}
}

// A torn fstab read must fail the reload and keep the previous mount
// whitelist intact — never an empty or partial one. Once the fault
// clears, a reload applies the new rules.
func TestTornFstabReloadKeepsLastGoodWhitelist(t *testing.T) {
	m := protegoMachine(t)
	before := m.Protego.MountRules()
	if len(before) == 0 {
		t.Fatal("boot sync left an empty whitelist")
	}
	fstab, err := m.K.FS.ReadFile(vfs.RootCred, "/etc/fstab")
	if err != nil {
		t.Fatal(err)
	}
	updated := string(fstab) + "/dev/sdc1 /mnt/backup ext4 rw,user 0 0\n"
	if err := m.K.FS.WriteFile(vfs.RootCred, "/etc/fstab", []byte(updated), 0o644, 0, 0); err != nil {
		t.Fatal(err)
	}

	in := faultinject.New(faultinject.Plan{Seed: 7, Rules: []faultinject.Rule{
		{Site: faultinject.SiteMonFstab, Action: faultinject.ActTorn, Every: 1},
	}})
	m.SetFaultInjector(in)
	m.Monitor.RetryBackoff = 50 * time.Microsecond
	if err := m.Monitor.SyncMounts(); err == nil {
		t.Fatal("reload of a torn fstab should fail")
	}
	if in.Injections() == 0 {
		t.Fatal("torn fault never fired")
	}
	after := m.Protego.MountRules()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("whitelist changed under torn reload:\n before: %v\n after:  %v", before, after)
	}

	// Fault cleared: the retried reload picks up the new entry.
	in.SetEnabled(false)
	if err := m.Monitor.SyncMounts(); err != nil {
		t.Fatalf("reload after fault cleared: %v", err)
	}
	if got := len(m.Protego.MountRules()); got != len(before)+1 {
		t.Fatalf("rules after recovery = %d, want %d", got, len(before)+1)
	}
}

// A partially parsed /proc/protego/mounts batch must not be applied: the
// write fails with EINVAL and the whitelist is untouched (the swap-on-
// success guarantee behind every monitord reload path).
func TestProcMountsWriteIsAtomic(t *testing.T) {
	m := protegoMachine(t)
	before := m.Protego.MountRules()
	ino, err := m.K.FS.Lookup(vfs.RootCred, core.ProcMounts)
	if err != nil {
		t.Fatal(err)
	}
	batch := "clear\nadd /dev/x /media/x vfat rw user\nadd broken-rule\n"
	err = ino.WriteFn(vfs.RootCred, []byte(batch))
	if err == nil {
		t.Fatal("malformed batch accepted")
	}
	if !errno.Is(err, errno.EINVAL) {
		t.Fatalf("err = %v, want EINVAL", err)
	}
	if !reflect.DeepEqual(before, m.Protego.MountRules()) {
		t.Fatalf("whitelist mutated by failed batch (cleared or partial): %v", m.Protego.MountRules())
	}
}
