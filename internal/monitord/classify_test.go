package monitord

import (
	"testing"

	"protego/internal/accountdb"
	"protego/internal/kernel"
	"protego/internal/netstack"
)

func TestClassify(t *testing.T) {
	k := kernel.New(kernel.ModeProtego, netstack.IPv4(10, 0, 0, 2))
	d := New(k, accountdb.NewDB(k.FS), nil)
	cases := map[string]string{
		"/etc/fstab":           "mounts",
		"/etc/sudoers":         "delegation",
		"/etc/sudoers.d/extra": "delegation",
		"/etc/bind":            "bind",
		"/etc/ppp/options":     "ppp",
		"/etc/passwds/alice":   "accounts-legacy",
		"/etc/shadows/alice":   "accounts-legacy",
		"/etc/groups/ops":      "accounts-legacy",
		"/etc/passwd":          "accounts-fragments",
		"/etc/shadow":          "accounts-fragments",
		"/etc/group":           "accounts-fragments",
		"/etc/motd":            "",
		"/etc/hostname":        "",
	}
	for path, want := range cases {
		if got := d.classify(path); got != want {
			t.Errorf("classify(%q) = %q want %q", path, got, want)
		}
	}
}
