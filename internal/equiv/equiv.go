// Package equiv implements the functional testing of §5.3: exhaustive
// scenario scripts for the setuid command-line utilities, each executed on
// the baseline and on Protego, validating that "the utilities have the
// same output and effects on both systems". The per-utility scenario pass
// rate is the runnable analog of the paper's Table 7 gcov coverage (the
// actual Go statement coverage of the utility implementations is reported
// separately by `go test -cover ./internal/userspace`).
package equiv

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"protego/internal/kernel"
	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

// Scenario is one functional test of a utility.
type Scenario struct {
	Name string
	// User runs Argv, answering prompts with Answers (matched by
	// substring; the "" key is the default answer).
	User    string
	Argv    []string
	Answers map[string]string
	// Setup prepares machine state before the run (optional).
	Setup func(m *world.Machine) error
	// Effect fingerprints post-run system state for comparison
	// (optional); it runs with root credentials.
	Effect func(m *world.Machine) string
}

func (s *Scenario) asker() func(string) string {
	if s.Answers == nil {
		return nil
	}
	return func(prompt string) string {
		for key, answer := range s.Answers {
			if key != "" && strings.Contains(prompt, key) {
				return answer
			}
		}
		return s.Answers[""]
	}
}

// Outcome is one mode's result of a scenario.
type Outcome struct {
	Code   int
	Stdout string
	Stderr string
	Effect string
	// State is the machine's canonical post-run fingerprint
	// (world.Machine.Fingerprint), shared with internal/difffuzz so the
	// two harnesses cannot drift apart in what "same effects" means.
	State string
}

// Golden image pair: each mode is booted once, then every scenario runs
// on a copy-on-write clone. RunAll's cost used to be dominated by the
// two world.Builds per scenario; now the whole table shares one pair.
var (
	goldenMu sync.Mutex
	goldens  = map[kernel.Mode]*world.Snapshot{}
)

func goldenSnapshot(mode kernel.Mode) (*world.Snapshot, error) {
	goldenMu.Lock()
	defer goldenMu.Unlock()
	if snap, ok := goldens[mode]; ok {
		return snap, nil
	}
	m, err := world.Build(world.Options{Mode: mode})
	if err != nil {
		return nil, err
	}
	snap := m.Snapshot()
	goldens[mode] = snap
	return snap, nil
}

// run executes the scenario on a private clone of the mode's golden image.
func (s *Scenario) run(mode kernel.Mode) (*Outcome, error) {
	snap, err := goldenSnapshot(mode)
	if err != nil {
		return nil, err
	}
	m, err := snap.Clone()
	if err != nil {
		return nil, err
	}
	if s.Setup != nil {
		if err := s.Setup(m); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
	}
	sess, err := m.Session(s.User)
	if err != nil {
		return nil, err
	}
	code, stdout, stderr, _ := m.Run(sess, s.Argv, s.asker())
	out := &Outcome{Code: code, Stdout: stdout, Stderr: stderr}
	if s.Effect != nil {
		out.Effect = s.Effect(m)
	}
	out.State = m.Fingerprint()
	return out, nil
}

// ReplayOn executes the scenario on m without judging the outcome. The
// seccomp profiler drives the learning corpus through it: the scenario's
// setup, session, run, and effect all execute, so every syscall the
// utility issues on that machine is observable by an installed recorder,
// but pass/fail comparison stays Compare's job.
func (s *Scenario) ReplayOn(m *world.Machine) error {
	if s.Setup != nil {
		if err := s.Setup(m); err != nil {
			return fmt.Errorf("setup: %w", err)
		}
	}
	sess, err := m.Session(s.User)
	if err != nil {
		return err
	}
	_, _, _, _ = m.Run(sess, s.Argv, s.asker())
	if s.Effect != nil {
		_ = s.Effect(m)
	}
	return nil
}

// Mismatch describes a divergence between the two systems.
type Mismatch struct {
	Scenario string
	Field    string
	Linux    string
	Protego  string
}

// Compare runs the scenario on both systems and reports divergences.
// Stderr is compared only for emptiness: the two systems legitimately
// produce different diagnostic phrasings ("only root can mount" vs the
// kernel's EPERM), but success/failure and stdout must agree.
func (s *Scenario) Compare() ([]Mismatch, error) {
	linux, err := s.run(kernel.ModeLinux)
	if err != nil {
		return nil, fmt.Errorf("%s (linux): %w", s.Name, err)
	}
	protego, err := s.run(kernel.ModeProtego)
	if err != nil {
		return nil, fmt.Errorf("%s (protego): %w", s.Name, err)
	}
	var out []Mismatch
	if linux.Code != protego.Code {
		out = append(out, Mismatch{s.Name, "exit code", fmt.Sprint(linux.Code), fmt.Sprint(protego.Code)})
	}
	if linux.Stdout != protego.Stdout {
		out = append(out, Mismatch{s.Name, "stdout", linux.Stdout, protego.Stdout})
	}
	if (linux.Stderr == "") != (protego.Stderr == "") {
		out = append(out, Mismatch{s.Name, "stderr presence", linux.Stderr, protego.Stderr})
	}
	if linux.Effect != protego.Effect {
		out = append(out, Mismatch{s.Name, "effect", linux.Effect, protego.Effect})
	}
	if linux.State != protego.State {
		out = append(out, Mismatch{s.Name, "state fingerprint",
			fingerprintDiff(linux.State, protego.State), ""})
	}
	return out, nil
}

// fingerprintDiff condenses two full machine fingerprints into just their
// differing lines (a whole fingerprint is thousands of lines; a mismatch
// report needs only the delta).
func fingerprintDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	inA := make(map[string]bool, len(al))
	for _, l := range al {
		inA[l] = true
	}
	inB := make(map[string]bool, len(bl))
	for _, l := range bl {
		inB[l] = true
	}
	var d strings.Builder
	for _, l := range al {
		if !inB[l] {
			d.WriteString("linux-only:   " + l + "\n")
		}
	}
	for _, l := range bl {
		if !inA[l] {
			d.WriteString("protego-only: " + l + "\n")
		}
	}
	return d.String()
}

// UtilityReport is one Table 7 row.
type UtilityReport struct {
	Utility    string
	Passed     int
	Total      int
	Mismatches []Mismatch
}

// PassPct is the scenario pass percentage.
func (r *UtilityReport) PassPct() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Passed) / float64(r.Total) * 100
}

// RunUtility executes every scenario of the named utility.
func RunUtility(utility string) (*UtilityReport, error) {
	scenarios, ok := Scenarios[utility]
	if !ok {
		return nil, fmt.Errorf("equiv: unknown utility %q", utility)
	}
	report := &UtilityReport{Utility: utility, Total: len(scenarios)}
	for i := range scenarios {
		mismatches, err := scenarios[i].Compare()
		if err != nil {
			return nil, err
		}
		if len(mismatches) == 0 {
			report.Passed++
		} else {
			report.Mismatches = append(report.Mismatches, mismatches...)
		}
	}
	return report, nil
}

// Utilities lists the Table 7 binaries in the paper's order, followed by
// the additional utilities this reproduction extends the corpus to.
func Utilities() []string {
	return []string{"chfn", "chsh", "gpasswd", "newgrp", "passwd", "su",
		"sudo", "sudoedit", "mount", "umount", "ping",
		"traceroute", "mtr", "arping", "fusermount", "pppd",
		"dmcrypt-get-device", "ssh-keysign", "X", "vipw",
		"chromium-sandbox", "login", "eject", "fping", "tracepath"}
}

// RunAll produces the full Table 7, sorted by utility name so golden
// output and CI diffs are stable regardless of the corpus declaration
// order.
func RunAll() ([]*UtilityReport, error) {
	var reports []*UtilityReport
	for _, u := range Utilities() {
		r, err := RunUtility(u)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Utility < reports[j].Utility })
	return reports, nil
}

// FormatTable7 renders the reports.
func FormatTable7(reports []*UtilityReport) string {
	var b strings.Builder
	b.WriteString("Table 7: Functional equivalence of command-line setuid binaries\n")
	fmt.Fprintf(&b, "%-12s %10s %10s\n", "Binary", "Scenarios", "Equiv. %")
	for _, r := range reports {
		fmt.Fprintf(&b, "%-12s %10d %9.1f%%\n", r.Utility, r.Total, r.PassPct())
	}
	return b.String()
}

// --- shared scenario helpers ---

func mountTableEffect(m *world.Machine) string { return m.K.FS.FormatMtab() }

func shellOf(user string) func(m *world.Machine) string {
	return func(m *world.Machine) string {
		// Converge Protego fragments into the legacy view first.
		if m.Monitor != nil {
			_ = m.Monitor.SyncAccountsFromFragments()
		}
		u, err := m.DB.LookupUser(user)
		if err != nil {
			return "lookup-error"
		}
		return u.Shell + "|" + u.Gecos
	}
}

func loginWorks(user, password string) func(m *world.Machine) string {
	return func(m *world.Machine) string {
		if m.Monitor != nil {
			_ = m.Monitor.SyncAccountsFromFragments()
		}
		root, err := m.Session("root")
		if err != nil {
			return "session-error"
		}
		code, _, _, _ := m.Run(root, []string{userspace.BinLogin, user}, world.AnswerWith(password))
		return fmt.Sprintf("login=%d", code)
	}
}

func queueEffect(m *world.Machine) string {
	data, err := m.K.FS.ReadFile(vfs.RootCred, "/var/spool/lpd/queue")
	if err != nil {
		return "queue-error"
	}
	return string(data)
}
