package equiv

import (
	"strings"
	"testing"
)

// TestTable7Equivalence runs the full scenario corpus: every utility must
// behave identically on the baseline and on Protego ("Protego provides
// users with the same functionality as Linux").
func TestTable7Equivalence(t *testing.T) {
	reports, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.Passed != r.Total {
			for _, mm := range r.Mismatches {
				t.Errorf("%s/%s: %s differs:\n  linux:   %q\n  protego: %q",
					r.Utility, mm.Scenario, mm.Field, mm.Linux, mm.Protego)
			}
		}
	}
}

func TestUtilitiesListed(t *testing.T) {
	for _, u := range Utilities() {
		if len(Scenarios[u]) == 0 {
			t.Errorf("no scenarios for %s", u)
		}
	}
}

func TestFormatTable7(t *testing.T) {
	reports, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTable7(reports)
	if !strings.Contains(out, "sudo") || !strings.Contains(out, "Equiv. %") {
		t.Fatalf("render: %q", out)
	}
}

func TestUnknownUtility(t *testing.T) {
	if _, err := RunUtility("nosuch"); err == nil {
		t.Fatal("expected error")
	}
}
