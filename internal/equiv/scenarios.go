package equiv

import (
	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

// Scenarios is the per-utility functional test corpus (§5.3). Scenario
// names describe the behaviour exercised; every scenario runs on both
// systems and must agree on exit status, stdout, and effects.
var Scenarios = map[string][]Scenario{
	"mount": {
		{Name: "list mount table", User: "alice", Argv: []string{userspace.BinMount}},
		{Name: "user mounts whitelisted cdrom", User: "alice",
			Argv:   []string{userspace.BinMount, "/dev/cdrom", "/cdrom"},
			Effect: mountTableEffect},
		{Name: "user mount by device only", User: "alice",
			Argv:   []string{userspace.BinMount, "/dev/cdrom"},
			Effect: mountTableEffect},
		{Name: "user mount with explicit safe options", User: "alice",
			Argv:   []string{userspace.BinMount, "-o", "ro,nosuid", "/dev/cdrom", "/cdrom"},
			Effect: mountTableEffect},
		{Name: "user mount non-whitelisted denied", User: "alice",
			Argv:   []string{userspace.BinMount, "/dev/sdc1", "/mnt/backup"},
			Effect: mountTableEffect},
		{Name: "user mount unsafe option denied", User: "alice",
			Argv:   []string{userspace.BinMount, "-o", "suid", "/dev/cdrom", "/cdrom"},
			Effect: mountTableEffect},
		{Name: "unknown device error", User: "alice",
			Argv: []string{userspace.BinMount, "/dev/floppy"}},
		{Name: "root mounts non-whitelisted", User: "root",
			Argv:   []string{userspace.BinMount, "/dev/sdc1", "/mnt/backup"},
			Effect: mountTableEffect},
		{Name: "usage error on bad flag", User: "alice",
			Argv: []string{userspace.BinMount, "-t"}},
	},
	"umount": {
		{Name: "umount not mounted", User: "alice",
			Argv: []string{userspace.BinUmount, "/cdrom"}},
		{Name: "owner unmounts user mount", User: "alice",
			Setup:  mountAs("alice", "/dev/cdrom", "/cdrom"),
			Argv:   []string{userspace.BinUmount, "/cdrom"},
			Effect: mountTableEffect},
		{Name: "other user cannot unmount user mount", User: "bob",
			Setup:  mountAs("alice", "/dev/cdrom", "/cdrom"),
			Argv:   []string{userspace.BinUmount, "/cdrom"},
			Effect: mountTableEffect},
		{Name: "any user unmounts users mount", User: "bob",
			Setup:  mountAs("alice", "/dev/sdb1", "/media/usb"),
			Argv:   []string{userspace.BinUmount, "/media/usb"},
			Effect: mountTableEffect},
		{Name: "usage error", User: "alice", Argv: []string{userspace.BinUmount}},
	},
	"ping": {
		{Name: "ping localhost once", User: "alice",
			Argv: []string{userspace.BinPing, "-c", "1", "127.0.0.1"}},
		{Name: "ping host thrice", User: "alice",
			Argv: []string{userspace.BinPing, "-c", "3", "10.0.0.2"}},
		{Name: "unknown host", User: "alice",
			Argv: []string{userspace.BinPing, "not-an-ip"}},
		{Name: "bad count", User: "alice",
			Argv: []string{userspace.BinPing, "-c", "zero", "10.0.0.2"}},
		{Name: "usage", User: "alice", Argv: []string{userspace.BinPing}},
		{Name: "root ping", User: "root",
			Argv: []string{userspace.BinPing, "-c", "1", "10.0.0.2"}},
	},
	"sudo": {
		{Name: "admin to root with password", User: "alice",
			Argv:    []string{userspace.BinSudo, "/usr/bin/id"},
			Answers: map[string]string{"": world.AlicePassword}},
		{Name: "wrong password denied", User: "alice",
			Argv:    []string{userspace.BinSudo, "/usr/bin/id"},
			Answers: map[string]string{"": "wrongpw"}},
		{Name: "nopasswd whitelisted command", User: "charlie",
			Argv: []string{userspace.BinSudo, "/bin/ls", "/tmp"}},
		{Name: "restricted command denied", User: "charlie",
			Argv: []string{userspace.BinSudo, "/usr/bin/id"}},
		{Name: "lateral delegation to alice", User: "bob",
			Setup:   writeFile("/tmp/doc.txt", "print me", 0o644),
			Argv:    []string{userspace.BinSudo, "-u", "alice", userspace.BinLpr, "/tmp/doc.txt"},
			Answers: map[string]string{"": world.BobPassword},
			Effect:  queueEffect},
		{Name: "usage", User: "alice", Argv: []string{userspace.BinSudo}},
	},
	"sudoedit": {
		{Name: "authorized delegated read", User: "bob",
			Setup:   writeFile("/etc/secret.conf", "root-only-data", 0o600),
			Argv:    []string{userspace.BinSudoedit, "/etc/secret.conf"},
			Answers: map[string]string{"": world.BobPassword}},
		{Name: "unauthorized user denied", User: "charlie",
			Setup:   writeFile("/etc/secret.conf", "root-only-data", 0o600),
			Argv:    []string{userspace.BinSudoedit, "/etc/secret.conf"},
			Answers: map[string]string{"": world.CharliePassword}},
		{Name: "usage", User: "bob", Argv: []string{userspace.BinSudoedit}},
	},
	"su": {
		{Name: "to root with target password", User: "charlie",
			Argv:    []string{userspace.BinSu, "root", "-c", "/usr/bin/id"},
			Answers: map[string]string{"": world.RootPassword}},
		{Name: "wrong password denied", User: "bob",
			Argv:    []string{userspace.BinSu, "root", "-c", "/usr/bin/id"},
			Answers: map[string]string{"": "nope"}},
		{Name: "lateral move with target password", User: "bob",
			Argv:    []string{userspace.BinSu, "alice", "-c", "/usr/bin/id"},
			Answers: map[string]string{"": world.AlicePassword}},
		{Name: "unknown target user", User: "bob",
			Argv: []string{userspace.BinSu, "mallory"}},
	},
	"passwd": {
		{Name: "change own password", User: "alice",
			Argv: []string{userspace.BinPasswd},
			Answers: map[string]string{
				"New password": "freshpw1", "": world.AlicePassword,
			},
			Effect: loginWorks("alice", "freshpw1")},
		{Name: "wrong current password denied", User: "alice",
			Argv:    []string{userspace.BinPasswd},
			Answers: map[string]string{"New password": "freshpw1", "": "wrongpw"},
			Effect:  loginWorks("alice", world.AlicePassword)},
		{Name: "cannot change another user", User: "bob",
			Argv:    []string{userspace.BinPasswd, "alice"},
			Answers: map[string]string{"New password": "evilpw", "": world.BobPassword},
			Effect:  loginWorks("alice", world.AlicePassword)},
		{Name: "empty new password rejected", User: "alice",
			Argv:    []string{userspace.BinPasswd},
			Answers: map[string]string{"New password": "", "": world.AlicePassword}},
		{Name: "usage", User: "alice",
			Argv: []string{userspace.BinPasswd, "a", "b"}},
	},
	"chsh": {
		{Name: "change to listed shell", User: "alice",
			Argv:    []string{userspace.BinChsh, "-s", "/bin/zsh"},
			Answers: map[string]string{"": world.AlicePassword},
			Effect:  shellOf("alice")},
		{Name: "unlisted shell rejected", User: "alice",
			Argv:    []string{userspace.BinChsh, "-s", "/tmp/evil"},
			Answers: map[string]string{"": world.AlicePassword},
			Effect:  shellOf("alice")},
		{Name: "usage", User: "alice", Argv: []string{userspace.BinChsh}},
	},
	"chfn": {
		{Name: "change full name", User: "bob",
			Argv:    []string{userspace.BinChfn, "-f", "Robert Tables"},
			Answers: map[string]string{"": world.BobPassword},
			Effect:  shellOf("bob")},
		{Name: "colon rejected", User: "bob",
			Argv:    []string{userspace.BinChfn, "-f", "evil:entry"},
			Answers: map[string]string{"": world.BobPassword},
			Effect:  shellOf("bob")},
		{Name: "usage", User: "bob", Argv: []string{userspace.BinChfn}},
	},
	"gpasswd": {
		{Name: "member sets group password", User: "alice",
			Argv:    []string{userspace.BinGpasswd, "ops"},
			Answers: map[string]string{"": "newopspw"}},
		{Name: "nonexistent group", User: "alice",
			Argv:    []string{userspace.BinGpasswd, "nosuch"},
			Answers: map[string]string{"": "x"}},
		{Name: "empty password rejected", User: "alice",
			Argv:    []string{userspace.BinGpasswd, "ops"},
			Answers: map[string]string{"": ""}},
		{Name: "usage", User: "alice", Argv: []string{userspace.BinGpasswd}},
	},
	"newgrp": {
		{Name: "protected group with password", User: "charlie",
			Argv:    []string{userspace.BinNewgrp, "ops"},
			Answers: map[string]string{"": world.OpsGroupPassword}},
		{Name: "protected group wrong password", User: "charlie",
			Argv:    []string{userspace.BinNewgrp, "ops"},
			Answers: map[string]string{"": "bad"}},
		{Name: "member joins without password", User: "alice",
			Argv: []string{userspace.BinNewgrp, "ops"}},
		{Name: "nonexistent group", User: "alice",
			Argv: []string{userspace.BinNewgrp, "nosuch"}},
		{Name: "usage", User: "alice", Argv: []string{userspace.BinNewgrp}},
	},
}

// extendedScenarios covers the non-Table-7 utilities of the study; they
// join the corpus via init so RunAll exercises everything.
var extendedScenarios = map[string][]Scenario{
	"traceroute": {
		{Name: "trace to host", User: "alice", Argv: []string{userspace.BinTraceroute, "10.0.0.2"}},
		{Name: "unknown host", User: "alice", Argv: []string{userspace.BinTraceroute, "nowhere"}},
	},
	"mtr": {
		{Name: "probe host", User: "alice", Argv: []string{userspace.BinMtr, "10.0.0.2"}},
		{Name: "unknown host", User: "alice", Argv: []string{userspace.BinMtr, "nowhere"}},
	},
	"arping": {
		{Name: "probe host", User: "alice", Argv: []string{userspace.BinArping, "10.0.0.2"}},
	},
	"fusermount": {
		{Name: "mount over foreign dir denied", User: "alice",
			Argv: []string{userspace.BinFusermount, "/mnt"}},
		{Name: "umount flag without target", User: "alice",
			Argv: []string{userspace.BinFusermount, "-u"}},
	},
	"pppd": {
		{Name: "safe session", User: "alice",
			Argv: []string{userspace.BinPppd, "ppp0", "--param=bsdcomp=15"}},
		{Name: "unsafe option denied", User: "alice",
			Argv: []string{userspace.BinPppd, "ppp0", "--param=defaultroute=1"}},
		{Name: "conflicting route denied", User: "alice",
			Argv: []string{userspace.BinPppd, "ppp0", "--route=10.0.0.0/24"}},
		{Name: "non-conflicting route", User: "alice",
			Argv: []string{userspace.BinPppd, "ppp0", "--route=192.168.77.0/24"}},
	},
	"dmcrypt-get-device": {
		{Name: "read physical device", User: "alice",
			Argv: []string{userspace.BinDmcrypt, "/dev/dm-0"}},
		{Name: "unknown device", User: "alice",
			Argv: []string{userspace.BinDmcrypt, "/dev/dm-9"}},
	},
	"ssh-keysign": {
		{Name: "sign payload", User: "alice",
			Argv: []string{userspace.BinSSHKeysign, "payload"}},
	},
	"X": {
		{Name: "start server", User: "alice", Argv: []string{userspace.BinXserver}},
	},
	"vipw": {
		{Name: "root edits shell", User: "root",
			Argv:   []string{userspace.BinVipw, "-s", "bob", "/bin/zsh"},
			Effect: shellOf("bob")},
		{Name: "non-root denied", User: "alice",
			Argv: []string{userspace.BinVipw, "-s", "alice", "/bin/zsh"}},
	},
	"chromium-sandbox": {
		{Name: "namespace sandbox", User: "alice",
			Argv: []string{userspace.BinChromiumSandbox}},
	},
	"eject": {
		{Name: "eject unmounted cdrom", User: "alice",
			Argv: []string{userspace.BinEject}, Effect: mountTableEffect},
		{Name: "eject own user mount", User: "alice",
			Setup:  mountAs("alice", "/dev/cdrom", "/cdrom"),
			Argv:   []string{userspace.BinEject, "/dev/cdrom"},
			Effect: mountTableEffect},
		{Name: "eject another user's mount denied", User: "bob",
			Setup:  mountAs("alice", "/dev/cdrom", "/cdrom"),
			Argv:   []string{userspace.BinEject, "/dev/cdrom"},
			Effect: mountTableEffect},
		{Name: "eject unknown device", User: "alice",
			Argv: []string{userspace.BinEject, "/dev/floppy"}},
	},
	"fping": {
		{Name: "multiple hosts", User: "alice",
			Argv: []string{userspace.BinFping, "10.0.0.2", "127.0.0.1"}},
		{Name: "bad host name", User: "alice",
			Argv: []string{userspace.BinFping, "nowhere"}},
		{Name: "usage", User: "alice", Argv: []string{userspace.BinFping}},
	},
	"tracepath": {
		{Name: "path to host", User: "alice",
			Argv: []string{userspace.BinTracepath, "10.0.0.2"}},
		{Name: "unknown host", User: "alice",
			Argv: []string{userspace.BinTracepath, "nowhere"}},
	},
	"login": {
		{Name: "successful login", User: "root",
			Argv:    []string{userspace.BinLogin, "charlie"},
			Answers: map[string]string{"": world.CharliePassword}},
		{Name: "wrong password", User: "root",
			Argv:    []string{userspace.BinLogin, "charlie"},
			Answers: map[string]string{"": "bad"}},
	},
}

// negativeScenarios asserts that *denials* are identical across images:
// the escalation paths the paper closes must be closed the same way on
// both systems (same exit status, same absence of effects), not merely
// closed somehow.
var negativeScenarios = map[string][]Scenario{
	"sudo": {
		// charlie's only sudoers rule is the %wheel NOPASSWD /bin/ls
		// entry; delegating to another *user* is not authorized for him
		// at all, so the -u request must fail identically everywhere.
		{Name: "non-sudoer delegation denied", User: "charlie",
			Argv:    []string{userspace.BinSudo, "-u", "alice", userspace.BinID},
			Answers: map[string]string{"": world.CharliePassword}},
	},
	"mount": {
		// Owning the mount point does not whitelist the device: sdc1 has
		// no "user" fstab option, so even over alice's own home directory
		// the mount must be refused (the Figure 1 flow keys on the
		// (device, point, options) row, not on DAC ownership).
		{Name: "owner cannot mount non-whitelisted device at owned point", User: "alice",
			Argv:   []string{userspace.BinMount, "/dev/sdc1", "/home/alice"},
			Effect: mountTableEffect},
	},
	"ping": {
		// With the raw-socket relaxation removed — setuid bit stripped on
		// the baseline, allow_unpriv_raw switched off on Protego — ping
		// must degrade to the same denial on both systems.
		{Name: "raw socket relaxation removed", User: "alice",
			Setup: func(m *world.Machine) error {
				if m.Protego != nil {
					m.Protego.SetAllowUnprivRaw(false)
					return nil
				}
				return m.K.FS.Chmod(vfs.RootCred, userspace.BinPing, 0o755)
			},
			Argv: []string{userspace.BinPing, "-c", "1", "10.0.0.2"}},
	},
}

func init() {
	for name, list := range extendedScenarios {
		Scenarios[name] = list
	}
	for name, list := range negativeScenarios {
		Scenarios[name] = append(Scenarios[name], list...)
	}
}

func mountAs(user, device, point string) func(m *world.Machine) error {
	return func(m *world.Machine) error {
		sess, err := m.Session(user)
		if err != nil {
			return err
		}
		_, _, _, err = m.Run(sess, []string{userspace.BinMount, device, point}, nil)
		return err
	}
}

func writeFile(path, content string, mode vfs.Mode) func(m *world.Machine) error {
	return func(m *world.Machine) error {
		return m.K.FS.WriteFile(vfs.RootCred, path, []byte(content), mode, 0, 0)
	}
}
