package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"protego/internal/trace"
)

func TestNsPerUnit(t *testing.T) {
	cases := map[string]float64{
		"us": 1e3, "µs": 1e3, "ms": 1e6, "KB/s": 0, "msgs/min": 0,
	}
	for unit, want := range cases {
		if got := nsPerUnit(unit); got != want {
			t.Errorf("nsPerUnit(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestMeasureTraceEmission(t *testing.T) {
	rep := MeasureTraceEmission(5000)
	if rep.Ops != 5000 || rep.NsPerOp <= 0 {
		t.Fatalf("emission report: %+v", rep)
	}
	// The acceptance bar for the trace layer is < 1µs per simulated
	// syscall; generous headroom even on loaded CI machines. The race
	// detector multiplies per-event cost well past the bar, so the
	// assertion only applies to uninstrumented builds.
	if !rep.Under1us && !raceEnabled {
		t.Errorf("trace emission %v ns/op exceeds the 1µs bar", rep.NsPerOp)
	}
}

func TestSplitHistograms(t *testing.T) {
	tr := trace.New(64)
	tr.SyscallExit(tr.SyscallEnter("open", 1, 2), nil)
	tr.LSMDecision("MountCheck", 1, 2, "grant", "protego", nil, 1000)
	tr.MonitordSync("mounts", 1000, nil)

	syscalls, hooks := splitHistograms(tr.Histograms())
	if len(syscalls) != 1 || syscalls[0].Name != "open" || syscalls[0].Count != 1 {
		t.Fatalf("syscalls = %+v", syscalls)
	}
	if len(hooks) != 1 || hooks[0].Name != "MountCheck" {
		t.Fatalf("hooks = %+v", hooks)
	}
}

func TestWriteReportRoundTrip(t *testing.T) {
	rows := []Row{{Name: "syscall", Unit: "us", Linux: 0.5, Protego: 0.6, PaperOverheadPct: 0}}
	rep := &Report{Tool: "protego-bench"}
	for _, r := range rows {
		br := BenchRow{Name: r.Name, Unit: r.Unit, Linux: r.Linux, Protego: r.Protego, OverheadPct: r.OverheadPct()}
		if f := nsPerUnit(r.Unit); f != 0 {
			br.LinuxNsPerOp = r.Linux * f
			br.ProtegoNsPerOp = r.Protego * f
		}
		rep.Benchmarks = append(rep.Benchmarks, br)
	}
	path := filepath.Join(t.TempDir(), "BENCH_protego.json")
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Benchmarks) != 1 || back.Benchmarks[0].LinuxNsPerOp != 500 {
		t.Fatalf("round trip: %+v", back.Benchmarks)
	}
	if back.Benchmarks[0].OverheadPct < 19.9 || back.Benchmarks[0].OverheadPct > 20.1 {
		t.Fatalf("overhead = %v, want ~20", back.Benchmarks[0].OverheadPct)
	}
}
