package bench

import (
	"fmt"
	"time"

	"protego/internal/kernel"
	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

// FastpathReport quantifies the kernel fast paths — the VFS dentry cache
// and the compiled policy indexes. The before/after timing pair is a
// lookup-bound stat loop over a deep path with the dentry cache disabled
// and enabled (the mount flow itself is dominated by process spawning, so
// the cache's effect would drown in its noise). The hit ratio and the
// counters come from the paper's Figure 1 flow (user mount + umount
// through the real /bin/mount and /bin/umount binaries), read from the
// tracer's fast-path registry — the same numbers /proc/trace/stats shows.
type FastpathReport struct {
	Iters             int     `json:"iters"`
	LookupColdNsPerOp float64 `json:"lookup_dcache_off_ns_per_op"`
	LookupWarmNsPerOp float64 `json:"lookup_dcache_on_ns_per_op"`
	// SpeedupPct is (cold-warm)/cold on the lookup loop, as a percentage.
	SpeedupPct float64 `json:"lookup_speedup_pct"`
	// MountFlowHitRatio is the dentry-cache hit ratio over the Figure 1
	// mount/umount flow (the acceptance bar is > 0.90).
	MountFlowHitRatio float64           `json:"mount_flow_dcache_hit_ratio"`
	Counters          map[string]uint64 `json:"counters"`
}

// statPath is the deep path the lookup loop resolves. Deep on purpose:
// every component is a directory the walk must permission-check.
const statPath = "/usr/share/doc/protego/fastpath/README"

// lookupLoop measures the mean ns per Stat of statPath as alice.
func lookupLoop(m *world.Machine, iters int) (float64, error) {
	alice, err := m.Session("alice")
	if err != nil {
		return 0, err
	}
	run := func(n int) error {
		for i := 0; i < n; i++ {
			if _, err := m.K.Stat(alice, statPath); err != nil {
				return err
			}
		}
		return nil
	}
	if err := run(iters/10 + 1); err != nil { // warm-up
		return 0, err
	}
	best := 0.0
	for rep := 0; rep < microReps; rep++ { // best-of, like RunMicro
		start := time.Now()
		if err := run(iters); err != nil {
			return 0, err
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		if rep == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// mountFlow runs the Figure 1 flow iters times on m as alice.
func mountFlow(m *world.Machine, iters int) error {
	alice, err := m.Session("alice")
	if err != nil {
		return err
	}
	for i := 0; i < iters; i++ {
		code, _, stderr, err := m.Run(alice, []string{userspace.BinMount, "/dev/cdrom", "/cdrom"}, nil)
		if err != nil || code != 0 {
			return fmt.Errorf("mount: code=%d err=%v stderr=%q", code, err, stderr)
		}
		code, _, stderr, err = m.Run(alice, []string{userspace.BinUmount, "/cdrom"}, nil)
		if err != nil || code != 0 {
			return fmt.Errorf("umount: code=%d err=%v stderr=%q", code, err, stderr)
		}
	}
	return nil
}

// buildFastpathMachine builds a Protego machine carrying statPath.
func buildFastpathMachine() (*world.Machine, error) {
	m, err := world.Build(world.Options{Mode: kernel.ModeProtego})
	if err != nil {
		return nil, err
	}
	fs := m.K.FS
	if err := fs.MkdirAll(vfs.RootCred, "/usr/share/doc/protego/fastpath", 0o755, 0, 0); err != nil {
		return nil, err
	}
	if err := fs.WriteFile(vfs.RootCred, statPath, []byte("fastpath probe\n"), 0o644, 0, 0); err != nil {
		return nil, err
	}
	return m, nil
}

// MeasureFastpath measures the lookup loop on two fresh Protego machines
// (dentry cache disabled vs enabled), then runs the Figure 1 mount flow
// on the cached machine and harvests its fast-path counters.
func MeasureFastpath(iters int) (*FastpathReport, error) {
	if iters <= 0 {
		iters = 20000
	}
	cold, err := buildFastpathMachine()
	if err != nil {
		return nil, err
	}
	cold.K.FS.SetDcacheEnabled(false)
	coldNs, err := lookupLoop(cold, iters)
	if err != nil {
		return nil, fmt.Errorf("fastpath cold: %w", err)
	}

	warm, err := buildFastpathMachine()
	if err != nil {
		return nil, err
	}
	warmNs, err := lookupLoop(warm, iters)
	if err != nil {
		return nil, fmt.Errorf("fastpath warm: %w", err)
	}

	// Figure 1 flow on the cached machine: hit ratio over mount/umount.
	preHits, preMisses := warm.K.FS.DcacheStats().Hits, warm.K.FS.DcacheStats().Misses
	if err := mountFlow(warm, iters/40+50); err != nil {
		return nil, fmt.Errorf("fastpath mount flow: %w", err)
	}
	st := warm.K.FS.DcacheStats()
	flowHits, flowMisses := st.Hits-preHits, st.Misses-preMisses
	hitRatio := 0.0
	if flowHits+flowMisses > 0 {
		hitRatio = float64(flowHits) / float64(flowHits+flowMisses)
	}

	rep := &FastpathReport{
		Iters:             iters,
		LookupColdNsPerOp: coldNs,
		LookupWarmNsPerOp: warmNs,
		MountFlowHitRatio: hitRatio,
		Counters:          warm.K.Trace.FastpathCounters(),
	}
	if coldNs > 0 {
		rep.SpeedupPct = (coldNs - warmNs) / coldNs * 100
	}
	return rep, nil
}
