package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"protego/internal/lsm"
	"protego/internal/netstack"
	"protego/internal/userspace"
	"protego/internal/vfs"
	"protego/internal/world"
)

// The parallel suite measures multi-core syscall throughput: every test
// is a hot path from the Table 5 / Figure 1 evaluation, re-run with N
// workers hammering one shared Protego machine. Each worker gets its own
// session (and, where the path mutates shared state, its own device and
// mountpoint), so the measured contention is the kernel's — task-table
// shards, copy-on-write registries, RWMutex substrates, sharded decision
// counters — not the harness's.

// ParallelOp is one worker's operation; iter is the iteration index.
type ParallelOp func(iter int) error

// ParallelTest is one entry of the parallel suite. Setup builds a fresh
// Protego machine plus per-worker state and returns one op per worker.
type ParallelTest struct {
	Name string
	// Iters is the per-worker iteration count of a full (non-quick) run,
	// sized so every test finishes in roughly the same wall time.
	Iters int
	Setup func(workers int) ([]ParallelOp, error)
}

// ParallelSuite returns the parallel hot-path tests: stat and open/close
// through the dentry cache, the mount-whitelist check, the netfilter
// verdict, sudo delegation, and the paper's full Figure 1 mount flow.
func ParallelSuite() []ParallelTest {
	return []ParallelTest{
		{Name: "stat-dcache-hit", Iters: 20000, Setup: setupStatDcache},
		{Name: "open-close", Iters: 10000, Setup: setupOpenClose},
		{Name: "mount-whitelist-check", Iters: 20000, Setup: setupMountCheck},
		{Name: "netfilter-verdict", Iters: 20000, Setup: setupNetfilterVerdict},
		{Name: "sudo-delegation", Iters: 200, Setup: setupSudoDelegation},
		{Name: "figure1-mount-flow", Iters: 60, Setup: setupMountFlow},
	}
}

// setupStatDcache: every worker stats the same deep path as its own
// alice session; after the first touch all lookups are dentry-cache hits.
func setupStatDcache(workers int) ([]ParallelOp, error) {
	m, err := buildFastpathMachine()
	if err != nil {
		return nil, err
	}
	ops := make([]ParallelOp, workers)
	for w := 0; w < workers; w++ {
		t, err := m.Session("alice")
		if err != nil {
			return nil, err
		}
		ops[w] = func(int) error {
			_, err := m.K.Stat(t, statPath)
			return err
		}
	}
	return ops, nil
}

// setupOpenClose: open+close of the shared probe file per iteration.
func setupOpenClose(workers int) ([]ParallelOp, error) {
	m, err := buildFastpathMachine()
	if err != nil {
		return nil, err
	}
	ops := make([]ParallelOp, workers)
	for w := 0; w < workers; w++ {
		t, err := m.Session("alice")
		if err != nil {
			return nil, err
		}
		ops[w] = func(int) error {
			fd, err := m.K.Open(t, statPath, 0 /* O_RDONLY */)
			if err != nil {
				return err
			}
			return m.K.CloseFD(t, fd)
		}
	}
	return ops, nil
}

// setupMountCheck: the pure LSM read path — probe the compiled mount
// whitelist with the fstab's cdrom rule; the decision must be Grant.
func setupMountCheck(workers int) ([]ParallelOp, error) {
	m, err := world.BuildProtego()
	if err != nil {
		return nil, err
	}
	ops := make([]ParallelOp, workers)
	for w := 0; w < workers; w++ {
		t, err := m.Session("alice")
		if err != nil {
			return nil, err
		}
		req := &lsm.MountRequest{
			Device: "/dev/cdrom", Point: "/cdrom", FSType: "iso9660",
			Options: []string{"ro"}, ReadOnly: true,
		}
		ops[w] = func(int) error {
			dec, err := m.K.LSM.MountCheck(t, req)
			if err != nil {
				return err
			}
			if dec != lsm.Grant {
				return fmt.Errorf("mount check: decision %v, want Grant", dec)
			}
			return nil
		}
	}
	return ops, nil
}

// setupNetfilterVerdict: the OUTPUT-chain verdict for an unprivileged raw
// ICMP echo (the packet ping sends under the Protego relaxation). Also
// the hottest writer of the tracer's sharded decision counters.
func setupNetfilterVerdict(workers int) ([]ParallelOp, error) {
	m, err := world.BuildProtego()
	if err != nil {
		return nil, err
	}
	ops := make([]ParallelOp, workers)
	for w := 0; w < workers; w++ {
		pkt := &netstack.Packet{
			Dst:      netstack.IPv4(10, 0, 0, 1),
			Proto:    netstack.IPPROTO_ICMP,
			ICMPType: netstack.ICMPEchoRequest,
			FromRaw:  true, UnprivRaw: true, SenderUID: 1000,
		}
		ops[w] = func(int) error {
			if v := m.K.Filter.Output(pkt); v != netstack.Accept {
				return fmt.Errorf("netfilter: verdict %v, want Accept", v)
			}
			return nil
		}
	}
	return ops, nil
}

// setupSudoDelegation: charlie is in wheel, whose sudoers rule grants
// /bin/ls as root NOPASSWD — the password-less delegation fast path,
// spawning a real sudo child per iteration (fork/exec/exit included).
func setupSudoDelegation(workers int) ([]ParallelOp, error) {
	m, err := world.BuildProtego()
	if err != nil {
		return nil, err
	}
	ops := make([]ParallelOp, workers)
	for w := 0; w < workers; w++ {
		t, err := m.Session("charlie")
		if err != nil {
			return nil, err
		}
		ops[w] = func(int) error {
			code, _, stderr, err := m.Run(t, []string{userspace.BinSudo, userspace.BinLs, "/"}, nil)
			if err != nil || code != 0 {
				return fmt.Errorf("sudo: code=%d err=%v stderr=%q", code, err, stderr)
			}
			return nil
		}
	}
	return ops, nil
}

// setupMountFlow: the paper's Figure 1 flow — user mount + umount through
// the real /bin/mount and /bin/umount binaries — with a private device,
// mountpoint, and fstab rule per worker so the flows do not serialize on
// VFS mount-table conflicts.
func setupMountFlow(workers int) ([]ParallelOp, error) {
	m, err := world.BuildProtego()
	if err != nil {
		return nil, err
	}
	fs := m.K.FS
	ops := make([]ParallelOp, workers)
	for w := 0; w < workers; w++ {
		dev := fmt.Sprintf("/dev/pbench%d", w)
		point := fmt.Sprintf("/mnt/pbench%d", w)
		if _, err := fs.Mknod(vfs.RootCred, dev, vfs.BlockDevice, 8, 100+w, 0o660, 0, 0); err != nil {
			return nil, err
		}
		if err := fs.MkdirAll(vfs.RootCred, point, 0o755, 0, 0); err != nil {
			return nil, err
		}
		line := fmt.Sprintf("%s %s ext4 rw,user,noauto 0 0\n", dev, point)
		if err := fs.AppendFile(vfs.RootCred, "/etc/fstab", []byte(line)); err != nil {
			return nil, err
		}
	}
	// One monitord reload publishes the per-worker rules to the kernel.
	if err := m.Monitor.SyncMounts(); err != nil {
		return nil, err
	}
	for w := 0; w < workers; w++ {
		dev := fmt.Sprintf("/dev/pbench%d", w)
		point := fmt.Sprintf("/mnt/pbench%d", w)
		t, err := m.Session("alice")
		if err != nil {
			return nil, err
		}
		ops[w] = func(int) error {
			code, _, stderr, err := m.Run(t, []string{userspace.BinMount, dev, point}, nil)
			if err != nil || code != 0 {
				return fmt.Errorf("mount %s: code=%d err=%v stderr=%q", dev, code, err, stderr)
			}
			code, _, stderr, err = m.Run(t, []string{userspace.BinUmount, point}, nil)
			if err != nil || code != 0 {
				return fmt.Errorf("umount %s: code=%d err=%v stderr=%q", point, code, err, stderr)
			}
			return nil
		}
	}
	return ops, nil
}

// ScalingPoint is one (GOMAXPROCS, throughput) sample.
type ScalingPoint struct {
	Procs     int     `json:"gomaxprocs"`
	Workers   int     `json:"workers"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// SpeedupVs1 is this point's throughput over the same test's
	// 1-proc throughput.
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// ScalingRow is one test's throughput curve across the sweep.
type ScalingRow struct {
	Name   string         `json:"name"`
	Points []ScalingPoint `json:"points"`
}

// ScalingReport is the `scaling` section of BENCH_protego.json.
type ScalingReport struct {
	// HostCPUs is runtime.NumCPU() on the measuring host. Speedups are
	// physically bounded by it: on a 1-core host every curve is flat
	// regardless of how scalable the kernel is, so consumers must read
	// the curves relative to this field.
	HostCPUs       int          `json:"host_cpus"`
	Procs          []int        `json:"gomaxprocs_sweep"`
	ItersPerWorker string       `json:"iters_per_worker"`
	Note           string       `json:"note,omitempty"`
	Rows           []ScalingRow `json:"rows"`
}

// scalingReps is the best-of repetition count per point (minimum wall
// time wins, like the micro harness).
const scalingReps = 3

// DefaultScalingSweep is the GOMAXPROCS sweep of the acceptance
// criterion: 1, 2, 4, and 8 procs.
func DefaultScalingSweep() []int { return []int{1, 2, 4, 8} }

// MeasureScaling runs every parallel test across the GOMAXPROCS sweep.
// iterScale scales each test's per-worker iteration count (1.0 = full
// run; quick runs pass a fraction). One machine is built per test and
// shared across the sweep, so later points run with warm caches; workers
// always equal procs, and each worker runs the test's per-worker op.
func MeasureScaling(procs []int, iterScale float64) (*ScalingReport, error) {
	if len(procs) == 0 {
		procs = DefaultScalingSweep()
	}
	if iterScale <= 0 {
		iterScale = 1.0
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	rep := &ScalingReport{
		HostCPUs:       runtime.NumCPU(),
		Procs:          procs,
		ItersPerWorker: fmt.Sprintf("suite defaults x %g", iterScale),
	}
	maxProcs := 0
	for _, p := range procs {
		if p > maxProcs {
			maxProcs = p
		}
	}
	if rep.HostCPUs < maxProcs {
		rep.Note = fmt.Sprintf("host has %d CPU(s): points beyond it time-slice "+
			"one core, so parallel speedup is physically capped at %dx",
			rep.HostCPUs, rep.HostCPUs)
	}

	for _, test := range ParallelSuite() {
		iters := int(float64(test.Iters) * iterScale)
		if iters < 1 {
			iters = 1
		}
		ops, err := test.Setup(maxProcs)
		if err != nil {
			return nil, fmt.Errorf("%s: setup: %w", test.Name, err)
		}
		// Warm every worker's path once (fills the dentry cache, the
		// compiled indexes, and the counter snapshots) and surface
		// setup errors outside the timed region.
		for _, op := range ops {
			if err := op(0); err != nil {
				return nil, fmt.Errorf("%s: warmup: %w", test.Name, err)
			}
		}
		row := ScalingRow{Name: test.Name}
		for _, p := range procs {
			sec, err := runParallelPoint(ops[:p], iters, p)
			if err != nil {
				return nil, fmt.Errorf("%s @%d procs: %w", test.Name, p, err)
			}
			pt := ScalingPoint{
				Procs: p, Workers: p, Ops: p * iters,
				OpsPerSec: float64(p*iters) / sec,
			}
			if len(row.Points) > 0 && row.Points[0].OpsPerSec > 0 {
				pt.SpeedupVs1 = pt.OpsPerSec / row.Points[0].OpsPerSec
			} else {
				pt.SpeedupVs1 = 1
			}
			row.Points = append(row.Points, pt)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// runParallelPoint times workers goroutines each running iters ops at
// the given GOMAXPROCS, best of scalingReps, returning seconds of wall
// time for the fastest rep.
func runParallelPoint(ops []ParallelOp, iters, procs int) (float64, error) {
	runtime.GOMAXPROCS(procs)
	best := 0.0
	for rep := 0; rep < scalingReps; rep++ {
		var (
			start = make(chan struct{})
			wg    sync.WaitGroup
			errMu sync.Mutex
			fail  error
		)
		for _, op := range ops {
			wg.Add(1)
			go func(op ParallelOp) {
				defer wg.Done()
				<-start
				for i := 0; i < iters; i++ {
					if err := op(i); err != nil {
						errMu.Lock()
						if fail == nil {
							fail = err
						}
						errMu.Unlock()
						return
					}
				}
			}(op)
		}
		t0 := time.Now()
		close(start)
		wg.Wait()
		sec := time.Since(t0).Seconds()
		if fail != nil {
			return 0, fail
		}
		if rep == 0 || sec < best {
			best = sec
		}
	}
	return best, nil
}

// FormatScaling renders the sweep as an aligned text table.
func FormatScaling(rep *ScalingReport) string {
	out := fmt.Sprintf("Parallel scaling sweep (host CPUs: %d)\n", rep.HostCPUs)
	if rep.Note != "" {
		out += "note: " + rep.Note + "\n"
	}
	out += fmt.Sprintf("%-24s %6s %12s %10s\n", "test", "procs", "ops/sec", "speedup")
	for _, row := range rep.Rows {
		for _, pt := range row.Points {
			out += fmt.Sprintf("%-24s %6d %12.0f %9.2fx\n",
				row.Name, pt.Procs, pt.OpsPerSec, pt.SpeedupVs1)
		}
	}
	return out
}
