package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"protego/internal/errno"
	"protego/internal/faultinject"
	"protego/internal/kernel"
	"protego/internal/monitord"
	"protego/internal/netstack"
	"protego/internal/userspace"
	"protego/internal/world"
)

// FaultCase is one (site, action, errno) combination from the injection
// catalog, exercised against a fresh machine.
type FaultCase struct {
	Site   string
	Action faultinject.Action
	Err    errno.Errno
}

func (c FaultCase) String() string {
	if c.Action == faultinject.ActErr {
		return fmt.Sprintf("%s/%s", c.Site, c.Err.Name())
	}
	return fmt.Sprintf("%s/%s", c.Site, strings.ToUpper(c.Action.String()))
}

// FaultCaseResult is the outcome of one case.
type FaultCaseResult struct {
	FaultCase
	// Injected is the total number of firings (workload + probes).
	Injected uint64
	// Records is the workload-phase injection log (the replay artifact).
	Records []faultinject.Record
	// Panic is the recovered panic message, if the workload panicked.
	Panic string
	// FailOpen lists fail-closed violations observed while faults were
	// armed: operations that must deny but were granted.
	FailOpen []string
	// Liveness lists operations that should have recovered after the
	// injector was disabled but still failed.
	Liveness []string
}

// FaultSweepResult aggregates a full sweep for one configuration.
type FaultSweepResult struct {
	Mode  kernel.Mode
	Seed  int64
	Cases []FaultCaseResult
}

// InjectedSites returns the distinct sites that fired at least once,
// sorted.
func (r *FaultSweepResult) InjectedSites() []string {
	seen := make(map[string]bool)
	for i := range r.Cases {
		if r.Cases[i].Injected > 0 {
			seen[r.Cases[i].Site] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Panics returns the cases whose workload panicked.
func (r *FaultSweepResult) Panics() []FaultCaseResult {
	var out []FaultCaseResult
	for i := range r.Cases {
		if r.Cases[i].Panic != "" {
			out = append(out, r.Cases[i])
		}
	}
	return out
}

// FailOpens returns every fail-closed violation across the sweep.
func (r *FaultSweepResult) FailOpens() []string {
	var out []string
	for i := range r.Cases {
		for _, v := range r.Cases[i].FailOpen {
			out = append(out, r.Cases[i].String()+": "+v)
		}
	}
	return out
}

// LivenessFailures returns every post-fault recovery failure.
func (r *FaultSweepResult) LivenessFailures() []string {
	var out []string
	for i := range r.Cases {
		for _, v := range r.Cases[i].Liveness {
			out = append(out, r.Cases[i].String()+": "+v)
		}
	}
	return out
}

// FaultCases expands the injection catalog into the case list. quick
// keeps only the first errno per error site (the full list sweeps every
// catalogued errno).
func FaultCases(quick bool) []FaultCase {
	var out []FaultCase
	for _, spec := range faultinject.Catalog() {
		for _, act := range spec.Actions {
			if act != faultinject.ActErr {
				out = append(out, FaultCase{Site: spec.Name, Action: act})
				continue
			}
			for i, e := range spec.Errnos {
				if quick && i > 0 {
					break
				}
				out = append(out, FaultCase{Site: spec.Name, Action: act, Err: e})
			}
		}
	}
	return out
}

// RunFaultSweep exercises every catalogued fault case against fresh
// machines of the given mode. Each case arms an injector that fires on
// every hit of its target site, runs the full-coverage workload under
// panic recovery, probes that policy decisions stay fail-closed while
// faults are still firing, then disables the injector and checks the
// machine recovered. The seed fixes torn-read offsets so the sweep
// replays identically.
func RunFaultSweep(mode kernel.Mode, seed int64, quick bool) (*FaultSweepResult, error) {
	res := &FaultSweepResult{Mode: mode, Seed: seed}
	for _, c := range FaultCases(quick) {
		cr, err := runFaultCase(mode, seed, c)
		if err != nil {
			return nil, fmt.Errorf("fault case %s: %v", c, err)
		}
		res.Cases = append(res.Cases, cr)
	}
	return res, nil
}

func runFaultCase(mode kernel.Mode, seed int64, c FaultCase) (FaultCaseResult, error) {
	out := FaultCaseResult{FaultCase: c}
	m, err := world.Build(world.Options{Mode: mode})
	if err != nil {
		return out, err
	}
	// Sessions are created before the injector is armed so probe setup
	// itself cannot be starved by the fault under test.
	root, err := m.Session("root")
	if err != nil {
		return out, err
	}
	alice, err := m.Session("alice")
	if err != nil {
		return out, err
	}

	in := faultinject.New(faultinject.Plan{Seed: seed, Rules: []faultinject.Rule{
		{Site: c.Site, Action: c.Action, Err: c.Err, Every: 1},
	}})
	m.SetFaultInjector(in)

	func() {
		defer func() {
			if r := recover(); r != nil {
				out.Panic = fmt.Sprint(r)
			}
		}()
		faultWorkload(m, root)
	}()
	out.Records = in.Records()

	// Fail-closed probes run with the fault still firing: an injected
	// fault may turn a grant into a denial, never a denial into a grant.
	out.FailOpen = failClosedProbes(m, alice)

	in.SetEnabled(false)
	out.Injected = in.Injections()
	out.Liveness = livenessProbes(m, alice)
	return out, nil
}

// faultWorkload drives one pass over every injection site: file syscalls
// and VFS operations, mount/umount, exec, setuid, socket creation and all
// three netstack send paths, the five monitord reload paths, and the
// authentication service. Errors are deliberately ignored — the workload
// asserts survival (no panic, no deadlock), not success.
func faultWorkload(m *world.Machine, root *kernel.Task) {
	k := m.K
	_ = k.Mkdir(root, "/tmp/fi", 0o755)
	_ = k.WriteFile(root, "/tmp/fi/a", []byte("payload"))
	if fd, err := k.Open(root, "/tmp/fi/a", kernel.O_RDONLY); err == nil {
		_, _ = k.Read(root, fd, 4)
		_ = k.CloseFD(root, fd)
	}
	if fd, err := k.Open(root, "/tmp/fi/created", kernel.O_CREAT|kernel.O_WRONLY); err == nil {
		_, _ = k.Write(root, fd, []byte("x"))
		_ = k.CloseFD(root, fd)
	}
	_, _ = k.ReadFile(root, "/tmp/fi/a")
	_ = k.Rename(root, "/tmp/fi/a", "/tmp/fi/b")
	_ = k.Unlink(root, "/tmp/fi/b")

	_ = k.Mount(root, "/dev/cdrom", "/cdrom", "iso9660", []string{"ro"})
	_ = k.Umount(root, "/cdrom")

	_, _ = k.Spawn(root, userspace.BinSh, []string{userspace.BinSh}, nil, kernel.SpawnOpts{})

	child := k.Fork(root)
	_ = k.Setuid(child, world.UIDAlice)
	k.Exit(child, 0)

	if s, err := k.Socket(root, netstack.AF_INET, netstack.SOCK_DGRAM, netstack.IPPROTO_UDP); err == nil {
		if k.Bind(root, s, 9191) == nil {
			pkt := &netstack.Packet{Dst: k.Net.HostIP(), DstPort: 9191, Payload: []byte("fi")}
			_ = k.SendTo(root, s, pkt)
			_ = k.SendTo(root, s, &netstack.Packet{Dst: k.Net.HostIP(), DstPort: 9191, Payload: []byte("fi2")})
		}
		_ = k.CloseSocket(root, s)
	}
	if srv, err := k.Socket(root, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP); err == nil {
		if k.Bind(root, srv, 8088) == nil && k.Listen(root, srv, 8) == nil {
			if cl, err := k.Socket(root, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP); err == nil {
				if k.Connect(root, cl, k.Net.HostIP(), 8088) == nil {
					if conn, err := k.Accept(root, srv, 200*time.Millisecond); err == nil {
						_, _ = k.Send(root, cl, []byte("ping"))
						_, _ = k.Send(root, cl, []byte("pong"))
						_ = k.CloseSocket(root, conn)
					}
				}
				_ = k.CloseSocket(root, cl)
			}
		}
		_ = k.CloseSocket(root, srv)
	}

	d := m.Monitor
	if d == nil {
		// The baseline has no daemon; a throwaway one still exercises the
		// config-read sites (its /proc pushes fail harmlessly).
		d = monitord.New(k, m.DB, nil)
	}
	d.RetryBackoff = 50 * time.Microsecond
	_ = d.SyncMounts()
	_ = d.SyncDelegation()
	_ = d.SyncBind()
	_ = d.SyncPPP()
	_ = d.SyncAccountsToFragments()
	_ = d.SyncAccountsFromFragments()

	_ = m.Auth.VerifyPassword("alice", world.AlicePassword)
}

// failClosedProbes checks decisions that must deny whatever faults are
// active. Each returned string is a violation: an operation that was
// granted under fault injection.
func failClosedProbes(m *world.Machine, alice *kernel.Task) []string {
	var bad []string
	// /dev/sdc1 -> /mnt/backup is in fstab without the user option:
	// unprivileged mount must fail in both configurations.
	if err := m.K.Mount(alice, "/dev/sdc1", "/mnt/backup", "ext4", nil); err == nil {
		bad = append(bad, "unprivileged mount of non-user fstab entry succeeded")
		_ = m.K.Umount(alice, "/mnt/backup")
	}
	if _, err := m.K.ReadFile(alice, "/etc/shadow"); err == nil {
		bad = append(bad, "unprivileged read of /etc/shadow succeeded")
	}
	if m.Auth.VerifyPassword("alice", "not-the-password") {
		bad = append(bad, "wrong password verified")
	}
	if sock, err := m.K.Socket(alice, netstack.AF_INET, netstack.SOCK_STREAM, netstack.IPPROTO_TCP); err == nil {
		if err := m.K.Bind(alice, sock, 25); err == nil {
			bad = append(bad, "unprivileged bind to port 25 succeeded")
		}
		_ = m.K.CloseSocket(alice, sock)
	}
	return bad
}

// livenessProbes checks that ordinary allowed operations work again once
// the injector is disabled — the machine must degrade, not break.
func livenessProbes(m *world.Machine, alice *kernel.Task) []string {
	var bad []string
	if _, err := m.K.ReadFile(alice, "/etc/motd"); err != nil {
		bad = append(bad, "read /etc/motd: "+err.Error())
	}
	if err := m.K.WriteFile(alice, "/home/alice/fi-live", []byte("ok")); err != nil {
		bad = append(bad, "write home file: "+err.Error())
	} else if _, err := m.K.ReadFile(alice, "/home/alice/fi-live"); err != nil {
		bad = append(bad, "read back home file: "+err.Error())
	}
	if !m.Auth.VerifyPassword("alice", world.AlicePassword) {
		bad = append(bad, "correct password no longer verifies")
	}
	res, err := m.K.Spawn(alice, userspace.BinSh, []string{userspace.BinSh}, nil, kernel.SpawnOpts{})
	if err != nil || res.Code != 0 {
		bad = append(bad, fmt.Sprintf("spawn sh: code=%d err=%v", res.Code, err))
	}
	return bad
}

// FormatFaultSweep renders both sweeps as the protego-bench -faults
// report.
func FormatFaultSweep(linux, protego *FaultSweepResult) string {
	var b strings.Builder
	b.WriteString("Fault-injection sweep (deterministic, seed-fixed)\n")
	for _, r := range []*FaultSweepResult{linux, protego} {
		if r == nil {
			continue
		}
		sites := r.InjectedSites()
		var injected uint64
		for i := range r.Cases {
			injected += r.Cases[i].Injected
		}
		fmt.Fprintf(&b, "\n%-8s seed=%d cases=%d injections=%d distinct-sites=%d\n",
			r.Mode, r.Seed, len(r.Cases), injected, len(sites))
		fmt.Fprintf(&b, "  panics=%d fail-open=%d liveness-failures=%d\n",
			len(r.Panics()), len(r.FailOpens()), len(r.LivenessFailures()))
		for _, p := range r.Panics() {
			fmt.Fprintf(&b, "  PANIC %s: %s\n", p.String(), p.Panic)
		}
		for _, v := range r.FailOpens() {
			fmt.Fprintf(&b, "  FAIL-OPEN %s\n", v)
		}
		for _, v := range r.LivenessFailures() {
			fmt.Fprintf(&b, "  NO-RECOVERY %s\n", v)
		}
	}
	return b.String()
}
